# Empty dependencies file for webdb_util.
# This may be replaced when dependencies are built.
