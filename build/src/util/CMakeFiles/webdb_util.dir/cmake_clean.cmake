file(REMOVE_RECURSE
  "CMakeFiles/webdb_util.dir/csv.cc.o"
  "CMakeFiles/webdb_util.dir/csv.cc.o.d"
  "CMakeFiles/webdb_util.dir/histogram.cc.o"
  "CMakeFiles/webdb_util.dir/histogram.cc.o.d"
  "CMakeFiles/webdb_util.dir/rng.cc.o"
  "CMakeFiles/webdb_util.dir/rng.cc.o.d"
  "CMakeFiles/webdb_util.dir/stats.cc.o"
  "CMakeFiles/webdb_util.dir/stats.cc.o.d"
  "CMakeFiles/webdb_util.dir/table.cc.o"
  "CMakeFiles/webdb_util.dir/table.cc.o.d"
  "libwebdb_util.a"
  "libwebdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
