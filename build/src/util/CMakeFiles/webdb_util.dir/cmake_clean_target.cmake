file(REMOVE_RECURSE
  "libwebdb_util.a"
)
