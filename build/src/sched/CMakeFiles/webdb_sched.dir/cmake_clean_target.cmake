file(REMOVE_RECURSE
  "libwebdb_sched.a"
)
