
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/admission.cc" "src/sched/CMakeFiles/webdb_sched.dir/admission.cc.o" "gcc" "src/sched/CMakeFiles/webdb_sched.dir/admission.cc.o.d"
  "/root/repo/src/sched/dual_queue_scheduler.cc" "src/sched/CMakeFiles/webdb_sched.dir/dual_queue_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/webdb_sched.dir/dual_queue_scheduler.cc.o.d"
  "/root/repo/src/sched/fifo_scheduler.cc" "src/sched/CMakeFiles/webdb_sched.dir/fifo_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/webdb_sched.dir/fifo_scheduler.cc.o.d"
  "/root/repo/src/sched/query_policy.cc" "src/sched/CMakeFiles/webdb_sched.dir/query_policy.cc.o" "gcc" "src/sched/CMakeFiles/webdb_sched.dir/query_policy.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/sched/CMakeFiles/webdb_sched.dir/scheduler.cc.o" "gcc" "src/sched/CMakeFiles/webdb_sched.dir/scheduler.cc.o.d"
  "/root/repo/src/sched/txn_queue.cc" "src/sched/CMakeFiles/webdb_sched.dir/txn_queue.cc.o" "gcc" "src/sched/CMakeFiles/webdb_sched.dir/txn_queue.cc.o.d"
  "/root/repo/src/sched/update_policy.cc" "src/sched/CMakeFiles/webdb_sched.dir/update_policy.cc.o" "gcc" "src/sched/CMakeFiles/webdb_sched.dir/update_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/webdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/qc/CMakeFiles/webdb_qc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/webdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/webdb_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
