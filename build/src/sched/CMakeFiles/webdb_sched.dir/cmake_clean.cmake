file(REMOVE_RECURSE
  "CMakeFiles/webdb_sched.dir/admission.cc.o"
  "CMakeFiles/webdb_sched.dir/admission.cc.o.d"
  "CMakeFiles/webdb_sched.dir/dual_queue_scheduler.cc.o"
  "CMakeFiles/webdb_sched.dir/dual_queue_scheduler.cc.o.d"
  "CMakeFiles/webdb_sched.dir/fifo_scheduler.cc.o"
  "CMakeFiles/webdb_sched.dir/fifo_scheduler.cc.o.d"
  "CMakeFiles/webdb_sched.dir/query_policy.cc.o"
  "CMakeFiles/webdb_sched.dir/query_policy.cc.o.d"
  "CMakeFiles/webdb_sched.dir/scheduler.cc.o"
  "CMakeFiles/webdb_sched.dir/scheduler.cc.o.d"
  "CMakeFiles/webdb_sched.dir/txn_queue.cc.o"
  "CMakeFiles/webdb_sched.dir/txn_queue.cc.o.d"
  "CMakeFiles/webdb_sched.dir/update_policy.cc.o"
  "CMakeFiles/webdb_sched.dir/update_policy.cc.o.d"
  "libwebdb_sched.a"
  "libwebdb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
