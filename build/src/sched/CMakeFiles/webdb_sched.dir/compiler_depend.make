# Empty compiler generated dependencies file for webdb_sched.
# This may be replaced when dependencies are built.
