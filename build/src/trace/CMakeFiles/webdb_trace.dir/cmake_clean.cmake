file(REMOVE_RECURSE
  "CMakeFiles/webdb_trace.dir/arrival_process.cc.o"
  "CMakeFiles/webdb_trace.dir/arrival_process.cc.o.d"
  "CMakeFiles/webdb_trace.dir/stock_trace_generator.cc.o"
  "CMakeFiles/webdb_trace.dir/stock_trace_generator.cc.o.d"
  "CMakeFiles/webdb_trace.dir/trace.cc.o"
  "CMakeFiles/webdb_trace.dir/trace.cc.o.d"
  "CMakeFiles/webdb_trace.dir/trace_io.cc.o"
  "CMakeFiles/webdb_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/webdb_trace.dir/trace_stats.cc.o"
  "CMakeFiles/webdb_trace.dir/trace_stats.cc.o.d"
  "libwebdb_trace.a"
  "libwebdb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
