# Empty dependencies file for webdb_trace.
# This may be replaced when dependencies are built.
