file(REMOVE_RECURSE
  "libwebdb_trace.a"
)
