file(REMOVE_RECURSE
  "libwebdb_qc.a"
)
