
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qc/profit_function.cc" "src/qc/CMakeFiles/webdb_qc.dir/profit_function.cc.o" "gcc" "src/qc/CMakeFiles/webdb_qc.dir/profit_function.cc.o.d"
  "/root/repo/src/qc/profit_ledger.cc" "src/qc/CMakeFiles/webdb_qc.dir/profit_ledger.cc.o" "gcc" "src/qc/CMakeFiles/webdb_qc.dir/profit_ledger.cc.o.d"
  "/root/repo/src/qc/qc_generator.cc" "src/qc/CMakeFiles/webdb_qc.dir/qc_generator.cc.o" "gcc" "src/qc/CMakeFiles/webdb_qc.dir/qc_generator.cc.o.d"
  "/root/repo/src/qc/qc_spec.cc" "src/qc/CMakeFiles/webdb_qc.dir/qc_spec.cc.o" "gcc" "src/qc/CMakeFiles/webdb_qc.dir/qc_spec.cc.o.d"
  "/root/repo/src/qc/quality_contract.cc" "src/qc/CMakeFiles/webdb_qc.dir/quality_contract.cc.o" "gcc" "src/qc/CMakeFiles/webdb_qc.dir/quality_contract.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/webdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
