# Empty compiler generated dependencies file for webdb_qc.
# This may be replaced when dependencies are built.
