file(REMOVE_RECURSE
  "CMakeFiles/webdb_qc.dir/profit_function.cc.o"
  "CMakeFiles/webdb_qc.dir/profit_function.cc.o.d"
  "CMakeFiles/webdb_qc.dir/profit_ledger.cc.o"
  "CMakeFiles/webdb_qc.dir/profit_ledger.cc.o.d"
  "CMakeFiles/webdb_qc.dir/qc_generator.cc.o"
  "CMakeFiles/webdb_qc.dir/qc_generator.cc.o.d"
  "CMakeFiles/webdb_qc.dir/qc_spec.cc.o"
  "CMakeFiles/webdb_qc.dir/qc_spec.cc.o.d"
  "CMakeFiles/webdb_qc.dir/quality_contract.cc.o"
  "CMakeFiles/webdb_qc.dir/quality_contract.cc.o.d"
  "libwebdb_qc.a"
  "libwebdb_qc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdb_qc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
