# Empty dependencies file for webdb_cluster.
# This may be replaced when dependencies are built.
