file(REMOVE_RECURSE
  "libwebdb_cluster.a"
)
