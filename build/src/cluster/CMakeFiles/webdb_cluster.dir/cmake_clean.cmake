file(REMOVE_RECURSE
  "CMakeFiles/webdb_cluster.dir/replica_selector.cc.o"
  "CMakeFiles/webdb_cluster.dir/replica_selector.cc.o.d"
  "CMakeFiles/webdb_cluster.dir/web_database_cluster.cc.o"
  "CMakeFiles/webdb_cluster.dir/web_database_cluster.cc.o.d"
  "libwebdb_cluster.a"
  "libwebdb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
