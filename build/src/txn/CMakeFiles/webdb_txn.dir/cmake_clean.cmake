file(REMOVE_RECURSE
  "CMakeFiles/webdb_txn.dir/lock_manager.cc.o"
  "CMakeFiles/webdb_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/webdb_txn.dir/transaction.cc.o"
  "CMakeFiles/webdb_txn.dir/transaction.cc.o.d"
  "libwebdb_txn.a"
  "libwebdb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
