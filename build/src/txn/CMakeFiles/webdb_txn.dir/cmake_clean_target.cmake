file(REMOVE_RECURSE
  "libwebdb_txn.a"
)
