# Empty compiler generated dependencies file for webdb_txn.
# This may be replaced when dependencies are built.
