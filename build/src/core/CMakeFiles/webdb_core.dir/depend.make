# Empty dependencies file for webdb_core.
# This may be replaced when dependencies are built.
