
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/quts_scheduler.cc" "src/core/CMakeFiles/webdb_core.dir/quts_scheduler.cc.o" "gcc" "src/core/CMakeFiles/webdb_core.dir/quts_scheduler.cc.o.d"
  "/root/repo/src/core/rho.cc" "src/core/CMakeFiles/webdb_core.dir/rho.cc.o" "gcc" "src/core/CMakeFiles/webdb_core.dir/rho.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/webdb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/qc/CMakeFiles/webdb_qc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/webdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/webdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/webdb_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
