file(REMOVE_RECURSE
  "CMakeFiles/webdb_core.dir/quts_scheduler.cc.o"
  "CMakeFiles/webdb_core.dir/quts_scheduler.cc.o.d"
  "CMakeFiles/webdb_core.dir/rho.cc.o"
  "CMakeFiles/webdb_core.dir/rho.cc.o.d"
  "libwebdb_core.a"
  "libwebdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
