file(REMOVE_RECURSE
  "libwebdb_core.a"
)
