file(REMOVE_RECURSE
  "CMakeFiles/webdb_server.dir/metrics.cc.o"
  "CMakeFiles/webdb_server.dir/metrics.cc.o.d"
  "CMakeFiles/webdb_server.dir/web_database_server.cc.o"
  "CMakeFiles/webdb_server.dir/web_database_server.cc.o.d"
  "libwebdb_server.a"
  "libwebdb_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdb_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
