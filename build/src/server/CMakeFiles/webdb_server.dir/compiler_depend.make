# Empty compiler generated dependencies file for webdb_server.
# This may be replaced when dependencies are built.
