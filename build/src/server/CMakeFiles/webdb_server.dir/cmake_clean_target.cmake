file(REMOVE_RECURSE
  "libwebdb_server.a"
)
