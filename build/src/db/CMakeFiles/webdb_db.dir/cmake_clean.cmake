file(REMOVE_RECURSE
  "CMakeFiles/webdb_db.dir/database.cc.o"
  "CMakeFiles/webdb_db.dir/database.cc.o.d"
  "CMakeFiles/webdb_db.dir/staleness.cc.o"
  "CMakeFiles/webdb_db.dir/staleness.cc.o.d"
  "CMakeFiles/webdb_db.dir/symbol_table.cc.o"
  "CMakeFiles/webdb_db.dir/symbol_table.cc.o.d"
  "CMakeFiles/webdb_db.dir/update_register.cc.o"
  "CMakeFiles/webdb_db.dir/update_register.cc.o.d"
  "libwebdb_db.a"
  "libwebdb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
