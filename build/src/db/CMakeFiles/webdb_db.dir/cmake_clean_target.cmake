file(REMOVE_RECURSE
  "libwebdb_db.a"
)
