# Empty compiler generated dependencies file for webdb_db.
# This may be replaced when dependencies are built.
