
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/webdb_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/webdb_db.dir/database.cc.o.d"
  "/root/repo/src/db/staleness.cc" "src/db/CMakeFiles/webdb_db.dir/staleness.cc.o" "gcc" "src/db/CMakeFiles/webdb_db.dir/staleness.cc.o.d"
  "/root/repo/src/db/symbol_table.cc" "src/db/CMakeFiles/webdb_db.dir/symbol_table.cc.o" "gcc" "src/db/CMakeFiles/webdb_db.dir/symbol_table.cc.o.d"
  "/root/repo/src/db/update_register.cc" "src/db/CMakeFiles/webdb_db.dir/update_register.cc.o" "gcc" "src/db/CMakeFiles/webdb_db.dir/update_register.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/webdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
