# Empty compiler generated dependencies file for webdb_sim.
# This may be replaced when dependencies are built.
