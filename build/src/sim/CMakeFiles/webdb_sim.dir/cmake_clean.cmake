file(REMOVE_RECURSE
  "CMakeFiles/webdb_sim.dir/processor.cc.o"
  "CMakeFiles/webdb_sim.dir/processor.cc.o.d"
  "CMakeFiles/webdb_sim.dir/simulator.cc.o"
  "CMakeFiles/webdb_sim.dir/simulator.cc.o.d"
  "libwebdb_sim.a"
  "libwebdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
