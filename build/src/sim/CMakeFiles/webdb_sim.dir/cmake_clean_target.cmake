file(REMOVE_RECURSE
  "libwebdb_sim.a"
)
