file(REMOVE_RECURSE
  "libwebdb_exp.a"
)
