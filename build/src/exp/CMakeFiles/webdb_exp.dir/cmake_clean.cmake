file(REMOVE_RECURSE
  "CMakeFiles/webdb_exp.dir/cluster_experiment.cc.o"
  "CMakeFiles/webdb_exp.dir/cluster_experiment.cc.o.d"
  "CMakeFiles/webdb_exp.dir/experiment.cc.o"
  "CMakeFiles/webdb_exp.dir/experiment.cc.o.d"
  "CMakeFiles/webdb_exp.dir/figures.cc.o"
  "CMakeFiles/webdb_exp.dir/figures.cc.o.d"
  "CMakeFiles/webdb_exp.dir/report.cc.o"
  "CMakeFiles/webdb_exp.dir/report.cc.o.d"
  "CMakeFiles/webdb_exp.dir/robustness.cc.o"
  "CMakeFiles/webdb_exp.dir/robustness.cc.o.d"
  "CMakeFiles/webdb_exp.dir/scheduler_factory.cc.o"
  "CMakeFiles/webdb_exp.dir/scheduler_factory.cc.o.d"
  "CMakeFiles/webdb_exp.dir/trace_feeder.cc.o"
  "CMakeFiles/webdb_exp.dir/trace_feeder.cc.o.d"
  "libwebdb_exp.a"
  "libwebdb_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdb_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
