# Empty compiler generated dependencies file for webdb_exp.
# This may be replaced when dependencies are built.
