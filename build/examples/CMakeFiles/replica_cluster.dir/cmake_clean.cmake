file(REMOVE_RECURSE
  "CMakeFiles/replica_cluster.dir/replica_cluster.cpp.o"
  "CMakeFiles/replica_cluster.dir/replica_cluster.cpp.o.d"
  "replica_cluster"
  "replica_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
