# Empty compiler generated dependencies file for replica_cluster.
# This may be replaced when dependencies are built.
