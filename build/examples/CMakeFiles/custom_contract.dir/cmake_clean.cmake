file(REMOVE_RECURSE
  "CMakeFiles/custom_contract.dir/custom_contract.cpp.o"
  "CMakeFiles/custom_contract.dir/custom_contract.cpp.o.d"
  "custom_contract"
  "custom_contract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
