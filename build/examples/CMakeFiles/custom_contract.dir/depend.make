# Empty dependencies file for custom_contract.
# This may be replaced when dependencies are built.
