file(REMOVE_RECURSE
  "CMakeFiles/preference_knob.dir/preference_knob.cpp.o"
  "CMakeFiles/preference_knob.dir/preference_knob.cpp.o.d"
  "preference_knob"
  "preference_knob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preference_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
