# Empty dependencies file for preference_knob.
# This may be replaced when dependencies are built.
