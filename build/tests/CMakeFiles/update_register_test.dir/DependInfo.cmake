
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/update_register_test.cc" "tests/CMakeFiles/update_register_test.dir/update_register_test.cc.o" "gcc" "tests/CMakeFiles/update_register_test.dir/update_register_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/webdb_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/webdb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/webdb_server.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/webdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/webdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/webdb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/webdb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/webdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/webdb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/qc/CMakeFiles/webdb_qc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/webdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
