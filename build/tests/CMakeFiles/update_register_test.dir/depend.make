# Empty dependencies file for update_register_test.
# This may be replaced when dependencies are built.
