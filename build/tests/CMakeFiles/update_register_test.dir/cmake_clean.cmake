file(REMOVE_RECURSE
  "CMakeFiles/update_register_test.dir/update_register_test.cc.o"
  "CMakeFiles/update_register_test.dir/update_register_test.cc.o.d"
  "update_register_test"
  "update_register_test.pdb"
  "update_register_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_register_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
