# Empty dependencies file for server_stress_test.
# This may be replaced when dependencies are built.
