file(REMOVE_RECURSE
  "CMakeFiles/server_stress_test.dir/server_stress_test.cc.o"
  "CMakeFiles/server_stress_test.dir/server_stress_test.cc.o.d"
  "server_stress_test"
  "server_stress_test.pdb"
  "server_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
