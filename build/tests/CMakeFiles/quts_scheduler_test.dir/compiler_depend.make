# Empty compiler generated dependencies file for quts_scheduler_test.
# This may be replaced when dependencies are built.
