file(REMOVE_RECURSE
  "CMakeFiles/quts_scheduler_test.dir/quts_scheduler_test.cc.o"
  "CMakeFiles/quts_scheduler_test.dir/quts_scheduler_test.cc.o.d"
  "quts_scheduler_test"
  "quts_scheduler_test.pdb"
  "quts_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quts_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
