# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for quts_scheduler_test.
