file(REMOVE_RECURSE
  "CMakeFiles/profit_function_test.dir/profit_function_test.cc.o"
  "CMakeFiles/profit_function_test.dir/profit_function_test.cc.o.d"
  "profit_function_test"
  "profit_function_test.pdb"
  "profit_function_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profit_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
