# Empty dependencies file for profit_function_test.
# This may be replaced when dependencies are built.
