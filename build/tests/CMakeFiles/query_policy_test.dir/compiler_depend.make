# Empty compiler generated dependencies file for query_policy_test.
# This may be replaced when dependencies are built.
