file(REMOVE_RECURSE
  "CMakeFiles/query_policy_test.dir/query_policy_test.cc.o"
  "CMakeFiles/query_policy_test.dir/query_policy_test.cc.o.d"
  "query_policy_test"
  "query_policy_test.pdb"
  "query_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
