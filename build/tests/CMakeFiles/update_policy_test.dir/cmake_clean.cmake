file(REMOVE_RECURSE
  "CMakeFiles/update_policy_test.dir/update_policy_test.cc.o"
  "CMakeFiles/update_policy_test.dir/update_policy_test.cc.o.d"
  "update_policy_test"
  "update_policy_test.pdb"
  "update_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
