file(REMOVE_RECURSE
  "CMakeFiles/profit_ledger_test.dir/profit_ledger_test.cc.o"
  "CMakeFiles/profit_ledger_test.dir/profit_ledger_test.cc.o.d"
  "profit_ledger_test"
  "profit_ledger_test.pdb"
  "profit_ledger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profit_ledger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
