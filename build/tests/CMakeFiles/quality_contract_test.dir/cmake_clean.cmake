file(REMOVE_RECURSE
  "CMakeFiles/quality_contract_test.dir/quality_contract_test.cc.o"
  "CMakeFiles/quality_contract_test.dir/quality_contract_test.cc.o.d"
  "quality_contract_test"
  "quality_contract_test.pdb"
  "quality_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
