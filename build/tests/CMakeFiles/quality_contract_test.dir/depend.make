# Empty dependencies file for quality_contract_test.
# This may be replaced when dependencies are built.
