file(REMOVE_RECURSE
  "CMakeFiles/qc_spec_test.dir/qc_spec_test.cc.o"
  "CMakeFiles/qc_spec_test.dir/qc_spec_test.cc.o.d"
  "qc_spec_test"
  "qc_spec_test.pdb"
  "qc_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
