# Empty compiler generated dependencies file for qc_spec_test.
# This may be replaced when dependencies are built.
