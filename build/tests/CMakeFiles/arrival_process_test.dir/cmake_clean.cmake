file(REMOVE_RECURSE
  "CMakeFiles/arrival_process_test.dir/arrival_process_test.cc.o"
  "CMakeFiles/arrival_process_test.dir/arrival_process_test.cc.o.d"
  "arrival_process_test"
  "arrival_process_test.pdb"
  "arrival_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrival_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
