# Empty dependencies file for server_edge_test.
# This may be replaced when dependencies are built.
