file(REMOVE_RECURSE
  "CMakeFiles/server_edge_test.dir/server_edge_test.cc.o"
  "CMakeFiles/server_edge_test.dir/server_edge_test.cc.o.d"
  "server_edge_test"
  "server_edge_test.pdb"
  "server_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
