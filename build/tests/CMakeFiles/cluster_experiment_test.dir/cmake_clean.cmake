file(REMOVE_RECURSE
  "CMakeFiles/cluster_experiment_test.dir/cluster_experiment_test.cc.o"
  "CMakeFiles/cluster_experiment_test.dir/cluster_experiment_test.cc.o.d"
  "cluster_experiment_test"
  "cluster_experiment_test.pdb"
  "cluster_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
