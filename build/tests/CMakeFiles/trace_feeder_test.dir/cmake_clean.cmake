file(REMOVE_RECURSE
  "CMakeFiles/trace_feeder_test.dir/trace_feeder_test.cc.o"
  "CMakeFiles/trace_feeder_test.dir/trace_feeder_test.cc.o.d"
  "trace_feeder_test"
  "trace_feeder_test.pdb"
  "trace_feeder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_feeder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
