# Empty dependencies file for trace_feeder_test.
# This may be replaced when dependencies are built.
