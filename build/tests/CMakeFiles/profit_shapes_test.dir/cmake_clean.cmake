file(REMOVE_RECURSE
  "CMakeFiles/profit_shapes_test.dir/profit_shapes_test.cc.o"
  "CMakeFiles/profit_shapes_test.dir/profit_shapes_test.cc.o.d"
  "profit_shapes_test"
  "profit_shapes_test.pdb"
  "profit_shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profit_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
