# Empty dependencies file for profit_shapes_test.
# This may be replaced when dependencies are built.
