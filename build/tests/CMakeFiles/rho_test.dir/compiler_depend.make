# Empty compiler generated dependencies file for rho_test.
# This may be replaced when dependencies are built.
