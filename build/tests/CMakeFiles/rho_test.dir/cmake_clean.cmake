file(REMOVE_RECURSE
  "CMakeFiles/rho_test.dir/rho_test.cc.o"
  "CMakeFiles/rho_test.dir/rho_test.cc.o.d"
  "rho_test"
  "rho_test.pdb"
  "rho_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rho_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
