# Empty compiler generated dependencies file for dual_queue_scheduler_test.
# This may be replaced when dependencies are built.
