file(REMOVE_RECURSE
  "CMakeFiles/dual_queue_scheduler_test.dir/dual_queue_scheduler_test.cc.o"
  "CMakeFiles/dual_queue_scheduler_test.dir/dual_queue_scheduler_test.cc.o.d"
  "dual_queue_scheduler_test"
  "dual_queue_scheduler_test.pdb"
  "dual_queue_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_queue_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
