file(REMOVE_RECURSE
  "CMakeFiles/qc_generator_test.dir/qc_generator_test.cc.o"
  "CMakeFiles/qc_generator_test.dir/qc_generator_test.cc.o.d"
  "qc_generator_test"
  "qc_generator_test.pdb"
  "qc_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
