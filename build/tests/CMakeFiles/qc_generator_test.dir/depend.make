# Empty dependencies file for qc_generator_test.
# This may be replaced when dependencies are built.
