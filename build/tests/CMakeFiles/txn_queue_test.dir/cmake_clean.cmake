file(REMOVE_RECURSE
  "CMakeFiles/txn_queue_test.dir/txn_queue_test.cc.o"
  "CMakeFiles/txn_queue_test.dir/txn_queue_test.cc.o.d"
  "txn_queue_test"
  "txn_queue_test.pdb"
  "txn_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
