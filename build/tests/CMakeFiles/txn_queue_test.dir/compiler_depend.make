# Empty compiler generated dependencies file for txn_queue_test.
# This may be replaced when dependencies are built.
