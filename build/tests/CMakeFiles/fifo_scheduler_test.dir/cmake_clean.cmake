file(REMOVE_RECURSE
  "CMakeFiles/fifo_scheduler_test.dir/fifo_scheduler_test.cc.o"
  "CMakeFiles/fifo_scheduler_test.dir/fifo_scheduler_test.cc.o.d"
  "fifo_scheduler_test"
  "fifo_scheduler_test.pdb"
  "fifo_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fifo_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
