# Empty compiler generated dependencies file for fifo_scheduler_test.
# This may be replaced when dependencies are built.
