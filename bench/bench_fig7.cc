// Figure 7 — FIFO profit percentage across the nine Table 4 QC sets
// (QODmax% = 0.1 ... 0.9).
//
// Reproduced claim: FIFO ignores the time constraints, gains the worst QoS
// profit percentage and the worst total despite a decent QoD share.

#include <cstdio>

#include "bench_common.h"
#include "exp/figures.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace webdb;
  const SweepConfig sweep = bench::BenchSweepConfig(argc, argv);
  bench::PrintHeader("Figure 7: FIFO across QC sets (Table 4)",
                     "worst QoS% of all policies; decent QoD%; worst total");

  const auto points =
      RunQcSweep(bench::FullTrace(), SchedulerKind::kFifo, /*qc_seed=*/7, sweep);
  AsciiTable table({"QODmax%", "QOS%", "QOD%", "total%", "QOSmax% (diag)"});
  for (const auto& p : points) {
    table.AddRow({AsciiTable::Num(p.qod_share_pct, 1),
                  AsciiTable::Num(p.qos_pct, 3), AsciiTable::Num(p.qod_pct, 3),
                  AsciiTable::Num(p.total_pct, 3),
                  AsciiTable::Num(p.qos_max_pct, 3)});
  }
  std::printf("%s", table.Render().c_str());
  bench::PrintSweepSummary();
  return 0;
}
