// Workload-robustness study (DESIGN.md calibration, EXPERIMENTS.md D1/D3):
// sweeps the two synthetic-trace features the reproduction leans on and
// replays the Figure 6 comparison at each point, on a 600 s slice.
//
// Expected shape: the scheduler ranking (QUTS ~ best, FIFO worst) is stable
// across the sweeps; higher popularity correlation and deeper flash crowds
// both widen the QoD gap that separates the freshness-blind policies.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "exp/figures.h"
#include "exp/robustness.h"
#include "util/table.h"

namespace {

void PrintRows(const char* knob_name,
               const std::vector<webdb::RobustnessRow>& rows) {
  webdb::AsciiTable table({knob_name, "FIFO", "UH", "QH", "QUTS",
                           "QUTS - best(UH,QH)"});
  for (const auto& row : rows) {
    table.AddRow({webdb::AsciiTable::Num(row.knob, 2),
                  webdb::AsciiTable::Num(row.fifo, 3),
                  webdb::AsciiTable::Num(row.uh, 3),
                  webdb::AsciiTable::Num(row.qh, 3),
                  webdb::AsciiTable::Num(row.quts, 3),
                  webdb::AsciiTable::Num(row.QutsVsBestFixed(), 3)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace webdb;
  const SweepConfig sweep = bench::BenchSweepConfig(argc, argv);
  StockTraceConfig base = bench::BenchTraceConfig();
  // A 600 s run per point keeps the 8-point sweep affordable.
  base.duration = std::min<SimDuration>(base.duration, Seconds(600));

  bench::PrintHeader(
      "Robustness: query/update popularity correlation (Fig. 5c knob)",
      "ranking stable; correlation feeds the staleness pressure");
  PrintRows("correlation",
            RunCorrelationRobustness(base, CorrelationRobustnessGrid(), 7,
                                     sweep));

  bench::PrintHeader(
      "Robustness: flash-crowd gain (Fig. 5a knob)",
      "ranking stable; deeper crowds punish fixed priorities");
  PrintRows("spike gain",
            RunSpikeRobustness(base, SpikeRobustnessGrid(), 7, sweep));
  bench::PrintSweepSummary();
  return 0;
}
