// Figure 6 — profit percentage of FIFO / UH / QH / QUTS under step and
// linear QCs with balanced preferences (qos_max, qod_max ~ U[$10, $50],
// rt_max ~ U[50, 100] ms, uu_max = 1).
//
// Reproduced claim: QUTS takes the "best" profit dimension of the other
// policies — high QoS from QH and high QoD from UH; FIFO has the lowest
// total.

#include <cstdio>

#include "bench_common.h"
#include "exp/figures.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace webdb;
  const SweepConfig sweep = bench::BenchSweepConfig(argc, argv);
  const Trace& trace = bench::FullTrace();

  for (const QcShape shape : {QcShape::kStep, QcShape::kLinear}) {
    bench::PrintHeader(
        "Figure 6" + std::string(shape == QcShape::kStep ? "a" : "b") +
            ": profit percentage, " + ToString(shape) + " QCs",
        "QUTS highest total; QH low QoD; UH low QoS; FIFO lowest total "
        "(max QOS% = QOD% = 0.5)");
    const auto rows = RunFigure6(trace, shape, /*qc_seed=*/7, sweep);
    AsciiTable table({"policy", "QOS%", "QOD%", "total%"});
    for (const auto& row : rows) {
      table.AddRow({row.policy, AsciiTable::Num(row.qos_pct, 3),
                    AsciiTable::Num(row.qod_pct, 3),
                    AsciiTable::Num(row.TotalPct(), 3)});
    }
    std::printf("%s", table.Render().c_str());
  }
  bench::PrintSweepSummary();
  return 0;
}
