// Ablations beyond the paper's figures (DESIGN.md A1-A3):
//   A1  QoS-Independent vs QoS-Dependent QC combination (Section 2.2 choice)
//   A2  low-level query policy inside QUTS (Section 3.1 discussion)
//   A3  staleness metric / combiner (Section 2.1 metrics)
//   +   aging factor α sweep ("the exact α does not matter much")

#include <cstdio>

#include "bench_common.h"
#include "exp/figures.h"
#include "util/table.h"

namespace {

void PrintAblation(const char* title,
                   const std::vector<webdb::AblationRow>& rows) {
  std::printf("--- %s ---\n", title);
  webdb::AsciiTable table({"variant", "QOS%", "QOD%", "total%"});
  for (const auto& row : rows) {
    table.AddRow({row.variant, webdb::AsciiTable::Num(row.qos_pct, 3),
                  webdb::AsciiTable::Num(row.qod_pct, 3),
                  webdb::AsciiTable::Num(row.total_pct, 3)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace webdb;
  const SweepConfig sweep = bench::BenchSweepConfig(argc, argv);
  const Trace& trace = bench::FullTrace();
  const Trace adapt = bench::AdaptabilityTrace();

  bench::PrintHeader("Ablation studies",
                     "design choices called out in DESIGN.md (A1-A3)");

  PrintAblation("A1: QC combination mode (balanced QCs)",
                RunCombinationAblation(trace, 7, sweep));
  PrintAblation("A2: QUTS low-level query policy (balanced QCs)",
                RunQueryPolicyAblation(trace, 7, sweep));
  PrintAblation("A3: staleness metric / combiner (QUTS, balanced QCs)",
                RunStalenessAblation(trace, 7, sweep));
  PrintAblation("A4: QUTS atom-side selection (QoD-heavy QCs, rho < 1)",
                RunSlicingAblation(trace, 7, sweep));
  PrintAblation("A5: admission control (QUTS, balanced QCs)",
                RunAdmissionAblation(trace, 7, sweep));
  PrintAblation("A6: concurrency control (QUTS, balanced QCs)",
                RunConcurrencyAblation(trace, 7, sweep));
  PrintAblation("A7: QUTS low-level update policy (QoD-heavy QCs)",
                RunUpdatePolicyAblation(trace, 7, sweep));

  std::printf("--- alpha sensitivity (Section 5.2 setup) ---\n");
  AsciiTable alpha_table({"alpha", "total profit %"});
  for (const auto& [alpha, pct] :
       RunAlphaSensitivity(adapt, AlphaSensitivityGrid(), 7, sweep)) {
    alpha_table.AddRow(
        {AsciiTable::Num(alpha, 2), AsciiTable::Num(pct, 3)});
  }
  std::printf("%s", alpha_table.Render().c_str());
  bench::PrintSweepSummary();
  return 0;
}
