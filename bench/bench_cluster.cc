// Replicated-cluster extension bench (DESIGN.md "Replicated cluster"):
// replica counts x routing policies on a slice of the stock trace. The
// expected shape — QC-aware routing earns at least as much as the
// state-blind policies, and replication pays mostly through query capacity
// (updates are replicated work).

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/quts_scheduler.h"
#include "exp/cluster_experiment.h"
#include "util/table.h"

int main() {
  using namespace webdb;
  const Trace trace = bench::AdaptabilityTrace();

  bench::PrintHeader(
      "Cluster extension: replicas x routing policy (300s slice, QUTS "
      "replicas, balanced QCs)",
      "QC-aware routing >= round-robin / least-loaded; profit grows with "
      "replica count");

  const WebDatabaseCluster::SchedulerFactory factory = [] {
    return std::make_unique<QutsScheduler>(QutsScheduler::Options{});
  };

  AsciiTable table({"replicas", "routing", "total%", "avg rt (ms)",
                    "avg staleness", "committed"});
  for (int replicas : {1, 2, 4}) {
    for (RoutingPolicy policy :
         {RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastLoaded,
          RoutingPolicy::kFreshest, RoutingPolicy::kQcAware}) {
      if (replicas == 1 && policy != RoutingPolicy::kRoundRobin) {
        continue;  // routing is moot with one replica
      }
      ClusterConfig config;
      config.num_replicas = replicas;
      config.routing.policy = policy;
      config.server.dispatch_overhead = Micros(20);
      const ClusterExperimentResult result = RunClusterExperiment(
          trace, factory, config, BalancedProfile(QcShape::kStep));
      table.AddRow({std::to_string(replicas), result.routing,
                    AsciiTable::Num(result.total_pct, 3),
                    AsciiTable::Num(result.avg_response_ms, 1),
                    AsciiTable::Num(result.avg_staleness, 3),
                    std::to_string(result.queries_committed)});
    }
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}
