// Replicated-cluster extension bench (DESIGN.md "Replicated cluster"):
// replica counts x routing policies on a slice of the stock trace. The
// expected shape — QC-aware routing earns at least as much as the
// state-blind policies, and replication pays mostly through query capacity
// (updates are replicated work).

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/quts_scheduler.h"
#include "exp/cluster_experiment.h"
#include "exp/sweep_runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace webdb;
  const SweepConfig sweep = bench::BenchSweepConfig(argc, argv);
  const Trace trace = bench::AdaptabilityTrace();

  bench::PrintHeader(
      "Cluster extension: replicas x routing policy (300s slice, QUTS "
      "replicas, balanced QCs)",
      "QC-aware routing >= round-robin / least-loaded; profit grows with "
      "replica count");

  const WebDatabaseCluster::SchedulerFactory factory = [] {
    return std::make_unique<QutsScheduler>(QutsScheduler::Options{});
  };

  // The (replicas x routing) grid is a sweep of independent cluster
  // simulations; fan it out like the figure sweeps.
  std::vector<ClusterConfig> grid;
  for (int replicas : {1, 2, 4}) {
    for (RoutingPolicy policy :
         {RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastLoaded,
          RoutingPolicy::kFreshest, RoutingPolicy::kQcAware}) {
      if (replicas == 1 && policy != RoutingPolicy::kRoundRobin) {
        continue;  // routing is moot with one replica
      }
      ClusterConfig config;
      config.num_replicas = replicas;
      config.routing.policy = policy;
      config.server.dispatch_overhead = Micros(20);
      grid.push_back(config);
    }
  }
  const std::vector<ClusterExperimentResult> results =
      SweepRunner(sweep).Map(grid.size(), [&](size_t i) {
        return RunClusterExperiment(trace, factory, grid[i],
                                    BalancedProfile(QcShape::kStep));
      });

  AsciiTable table({"replicas", "routing", "total%", "avg rt (ms)",
                    "avg staleness", "committed"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const ClusterExperimentResult& result = results[i];
    table.AddRow({std::to_string(grid[i].num_replicas), result.routing,
                  AsciiTable::Num(result.total_pct, 3),
                  AsciiTable::Num(result.avg_response_ms, 1),
                  AsciiTable::Num(result.avg_staleness, 3),
                  std::to_string(result.queries_committed)});
  }
  std::printf("%s", table.Render().c_str());
  bench::PrintSweepSummary();
  return 0;
}
