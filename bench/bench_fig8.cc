// Figure 8 — UH / QH / QUTS profit percentages across the nine Table 4 QC
// sets, plus the paper's headline improvement summary.
//
// Reproduced claims: UH earns nearly the maximal QoD but poor QoS; QH the
// mirror image; QUTS nearly maximal on both, "up to 101.3% better than UH
// and up to 40.1% better than QH, consistently performing better or as good
// as the best of the two".

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "exp/figures.h"
#include "exp/report.h"
#include "util/table.h"

namespace {

void PrintSweep(const char* name, const std::vector<webdb::SweepPoint>& points) {
  webdb::AsciiTable table(
      {"QODmax%", "QOS%", "QOD%", "total%", "QOSmax% (diag)"});
  for (const auto& p : points) {
    table.AddRow({webdb::AsciiTable::Num(p.qod_share_pct, 1),
                  webdb::AsciiTable::Num(p.qos_pct, 3),
                  webdb::AsciiTable::Num(p.qod_pct, 3),
                  webdb::AsciiTable::Num(p.total_pct, 3),
                  webdb::AsciiTable::Num(p.qos_max_pct, 3)});
  }
  std::printf("--- %s ---\n%s", name, table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace webdb;
  const SweepConfig sweep = bench::BenchSweepConfig(argc, argv);
  const Trace& trace = bench::FullTrace();

  bench::PrintHeader("Figure 8: UH / QH / QUTS across QC sets (Table 4)",
                     "QUTS up to 101.3% better than UH, up to 40.1% better "
                     "than QH, never worse than the best of the two");

  const auto uh = RunQcSweep(trace, SchedulerKind::kUpdateHigh, 7, sweep);
  const auto qh = RunQcSweep(trace, SchedulerKind::kQueryHigh, 7, sweep);
  const auto quts = RunQcSweep(trace, SchedulerKind::kQuts, 7, sweep);
  PrintSweep("Figure 8a: Update High (UH)", uh);
  PrintSweep("Figure 8b: Query High (QH)", qh);
  PrintSweep("Figure 8c: QUTS", quts);

  const auto summary = SummarizeImprovement(uh, qh, quts);
  std::printf("QUTS max improvement vs UH: %.1f%% (paper: up to 101.3%%)\n",
              summary.max_vs_uh * 100.0);
  std::printf("QUTS max improvement vs QH: %.1f%% (paper: up to 40.1%%)\n",
              summary.max_vs_qh * 100.0);
  std::printf("QUTS worst gap vs best(UH, QH): %+.3f total%% points "
              "(>= 0 means never worse)\n",
              summary.min_vs_best);

  if (const std::string dir = CsvDirFromEnv(); !dir.empty()) {
    auto totals = [](const std::vector<SweepPoint>& points) {
      std::vector<double> out;
      for (const auto& p : points) out.push_back(p.total_pct);
      return out;
    };
    WriteSeriesCsv(dir + "/fig8_totals.csv", {"uh", "qh", "quts"},
                   {totals(uh), totals(qh), totals(quts)});
    std::printf("[csv] wrote fig8_totals.csv to %s\n", dir.c_str());
  }
  bench::PrintSweepSummary();
  return 0;
}
