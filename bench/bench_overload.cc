// Overload-survival bench: adversarial traces (exp/overload_scenarios.h)
// swept over admission policies and CPU counts. Two headline numbers the CI
// gate checks: under a 10x market-open flash crowd at 4 CPUs, (1) demand-
// bound admission (dbf) must commit strictly more profit than admit-all and
// than a static queue cap — shedding the right work must beat shedding none
// and shedding blindly — and (2) shared execution (DESIGN.md §13) must buy
// at least 1.2x profit per CPU-busy-second over the unfused server on the
// same trace. Emits BENCH_overload.json for the perf-smoke job.
//
// Usage: bench_overload [--jobs N] [--smoke] [--audit-hash] [--out <path>]
//   --smoke   shorter traces, 10x scenarios only (the CI configuration)
//
// The full run adds the 100x scale-up row — the "does anything survive two
// orders of magnitude past saturation" experiment.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/experiment.h"
#include "exp/overload_scenarios.h"
#include "exp/sweep_runner.h"
#include "qc/qc_generator.h"
#include "util/logging.h"
#include "util/time.h"

namespace webdb {
namespace {

constexpr uint64_t kTraceSeed = 2007;
constexpr uint64_t kQcSeed = 99;
constexpr int64_t kQueueCap = 64;
// Base arrival rates. 450 queries/s at ~7 ms mean service is ~3.2 CPUs of
// standing query load — a 4-CPU box provisioned near capacity, the regime
// where a flash crowd actually hurts: the burst backlog cannot drain into
// spare capacity, so every admitted-but-doomed query displaces a fresh one
// for the rest of the window. The 10x market-open burst (9x extra on top)
// is ~28 CPUs of momentary demand.
constexpr double kQueryRate = 450.0;
constexpr double kUpdateRate = 60.0;
// QoS-heavy contracts (Table 4's 20% QoD point): flash-crowd users pay for
// latency, so a missed rt_max forfeits most of the contract. Under the
// balanced profile a late query still collects ~half its worth as QoD, and
// shedding can never pay for itself.
constexpr double kQodSharePct = 0.2;

struct Flags {
  int jobs = 1;
  bool smoke = false;
  bool audit_hash = false;
  std::string out = "BENCH_overload.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  if (const char* env = std::getenv("WEBDB_JOBS")) {
    flags.jobs = static_cast<int>(std::atol(env));
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      flags.smoke = true;
    } else if (std::strcmp(arg, "--audit-hash") == 0) {
      flags.audit_hash = true;
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      flags.jobs = static_cast<int>(std::atol(argv[++i]));
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      flags.jobs = static_cast<int>(std::atol(arg + 7));
    } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      flags.out = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--jobs N] [--smoke] [--audit-hash] [--out <path>]\n",
          argv[0]);
      std::exit(2);
    }
  }
  return flags;
}

// One generated trace, shared read-only by every point that sweeps it.
struct ScenarioTrace {
  OverloadScenario scenario;
  double scale = 0.0;
  Trace trace;
};

// One sweep row: (scenario trace, CPUs, admission policy).
struct RowKey {
  size_t trace_index = 0;
  int cpus = 0;
  AdmissionKind admission = AdmissionKind::kAdmitAll;
};

struct Row {
  OverloadScenario scenario;
  double scale = 0.0;
  int cpus = 0;
  AdmissionKind admission = AdmissionKind::kAdmitAll;
  double profit = 0.0;
  double total_pct = 0.0;
  int64_t committed = 0;
  int64_t dropped = 0;
  int64_t rejected = 0;
  int64_t shed = 0;
  uint64_t end_state_hash = 0;
};

SchedulerSpec SpecFor(const RowKey& key) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kQuts;
  spec.topology.num_cpus = key.cpus;
  spec.admission.kind = key.admission;
  spec.admission.queue_cap = kQueueCap;
  return spec;
}

ExperimentOptions BaseOptions() {
  ExperimentOptions options;
  options.qc_seed = kQcSeed;
  options.qc = Table4Profile(kQodSharePct, QcShape::kStep);
  options.compute_end_state_hash = true;
  return options;
}

double Profit(const ExperimentResult& result) {
  return result.qos_gained + result.qod_gained;
}

}  // namespace
}  // namespace webdb

int main(int argc, char** argv) {
  using namespace webdb;  // NOLINT(google-build-using-namespace)

  const Flags flags = ParseFlags(argc, argv);

  OverloadScenarioConfig base;
  base.seed = kTraceSeed;
  base.query_rate = kQueryRate;
  base.update_rate = kUpdateRate;
  if (flags.smoke) {
    base.duration = Seconds(8);
    base.num_stocks = 128;
  }

  // The scenario grid: every adversarial shape at 10x, plus (full runs
  // only) the 100x scale-up.
  std::vector<ScenarioTrace> traces;
  for (OverloadScenario scenario : AllOverloadScenarios()) {
    OverloadScenarioConfig config = base;
    config.scale = 10.0;
    traces.push_back({scenario, config.scale,
                      MakeOverloadTrace(scenario, config)});
  }
  if (!flags.smoke) {
    // The 100x row runs on a fifth of the window: two orders of magnitude
    // past saturation is a survival test (does admission keep the server
    // deterministic and the profit positive), not a throughput sweep, and
    // a full-length trace at 45k queries/s would dominate the bench's
    // runtime without changing the verdict.
    OverloadScenarioConfig config = base;
    config.scale = 100.0;
    config.duration = base.duration / 5;
    traces.push_back({OverloadScenario::kScaleUp, config.scale,
                      MakeOverloadTrace(OverloadScenario::kScaleUp, config)});
  }
  for (const ScenarioTrace& st : traces) {
    std::fprintf(stderr, "[bench_overload] %s %.0fx: %zu queries, %zu updates\n",
                 ToString(st.scenario).c_str(), st.scale,
                 st.trace.queries.size(), st.trace.updates.size());
  }

  const std::vector<AdmissionKind> admissions = {
      AdmissionKind::kAdmitAll, AdmissionKind::kQueueCap,
      AdmissionKind::kExpectedProfit, AdmissionKind::kDbf};

  std::vector<RowKey> keys;
  std::vector<SweepRunner::Point> points;
  for (size_t t = 0; t < traces.size(); ++t) {
    for (int cpus : {1, 4}) {
      for (AdmissionKind admission : admissions) {
        RowKey key;
        key.trace_index = t;
        key.cpus = cpus;
        key.admission = admission;
        keys.push_back(key);
        SweepRunner::Point point;
        point.trace = &traces[t].trace;
        point.spec = SpecFor(key);
        point.options = BaseOptions();
        points.push_back(point);
      }
    }
  }

  SweepConfig sweep;
  sweep.jobs = flags.jobs;
  sweep.base_seed = kTraceSeed;
  sweep.registry = &bench::BenchRegistry();
  sweep.print_audit_hash = flags.audit_hash;
  std::fprintf(stderr, "[bench_overload] %zu points, jobs %d\n", points.size(),
               ResolveJobs(sweep.jobs));
  SweepRunner runner(sweep);
  const std::vector<ExperimentResult> results = runner.RunPoints(points);

  bench::PrintHeader(
      "Overload survival: admission control under adversarial traces",
      "stress companion to Sec. 5 (traces pushed 10-100x past saturation)");

  std::vector<Row> rows;
  std::printf("%-13s %6s %4s %-16s %12s %7s %9s %8s %8s %7s\n", "scenario",
              "scale", "cpus", "admission", "profit", "total%", "committed",
              "dropped", "rejected", "shed");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioTrace& st = traces[keys[i].trace_index];
    Row row;
    row.scenario = st.scenario;
    row.scale = st.scale;
    row.cpus = keys[i].cpus;
    row.admission = keys[i].admission;
    row.profit = Profit(results[i]);
    row.total_pct = results[i].total_pct;
    row.committed = results[i].queries_committed;
    row.dropped = results[i].queries_dropped;
    row.rejected = results[i].queries_rejected;
    row.shed = results[i].queries_shed;
    row.end_state_hash = results[i].end_state_hash;
    rows.push_back(row);
    std::printf("%-13s %5.0fx %4d %-16s %12.0f %6.1f%% %9lld %8lld %8lld "
                "%7lld\n",
                ToString(row.scenario).c_str(), row.scale, row.cpus,
                ToString(row.admission).c_str(), row.profit,
                100.0 * row.total_pct, static_cast<long long>(row.committed),
                static_cast<long long>(row.dropped),
                static_cast<long long>(row.rejected),
                static_cast<long long>(row.shed));
  }

  // --- headline: 10x market-open at 4 CPUs ---------------------------------
  // The acceptance criterion this bench exists to demonstrate: dbf beats
  // both no admission control and a static cap on the flash crowd.
  auto headline_row = [&](AdmissionKind admission) -> const Row* {
    for (const Row& row : rows) {
      if (row.scenario == OverloadScenario::kMarketOpen && row.scale == 10.0 &&
          row.cpus == 4 && row.admission == admission) {
        return &row;
      }
    }
    return nullptr;
  };
  const Row* admit_all = headline_row(AdmissionKind::kAdmitAll);
  const Row* queue_cap = headline_row(AdmissionKind::kQueueCap);
  const Row* expected = headline_row(AdmissionKind::kExpectedProfit);
  const Row* dbf = headline_row(AdmissionKind::kDbf);
  WEBDB_CHECK(admit_all != nullptr && queue_cap != nullptr &&
              expected != nullptr && dbf != nullptr);
  const bool dbf_beats_admit_all = dbf->profit > admit_all->profit;
  const bool dbf_beats_queue_cap = dbf->profit > queue_cap->profit;

  std::printf("\nheadline (market-open 10x, 4 CPUs):\n");
  std::printf("  dbf %.0f vs admit-all %.0f (%.2fx) vs queue-cap %.0f "
              "(%.2fx)\n",
              dbf->profit, admit_all->profit,
              admit_all->profit > 0 ? dbf->profit / admit_all->profit : 0.0,
              queue_cap->profit,
              queue_cap->profit > 0 ? dbf->profit / queue_cap->profit : 0.0);

  // Determinism is part of the contract: rerunning the headline dbf point
  // must land on the same end-state hash.
  {
    RowKey key;
    key.trace_index = 0;  // market-open is always the first trace
    key.cpus = 4;
    key.admission = AdmissionKind::kDbf;
    WEBDB_CHECK(traces[0].scenario == OverloadScenario::kMarketOpen);
    const ExperimentResult rerun =
        RunExperiment(traces[0].trace, SpecFor(key), BaseOptions());
    if (rerun.end_state_hash != dbf->end_state_hash) {
      std::fprintf(stderr, "headline rerun diverged: %llx vs %llx\n",
                   static_cast<unsigned long long>(dbf->end_state_hash),
                   static_cast<unsigned long long>(rerun.end_state_hash));
      return 1;
    }
  }

  // --- tenant tiers ---------------------------------------------------------
  // The same flash crowd split 50/50 across a free tier (demand charged 4x)
  // and a premium tier: the weighted DBF squeezes free traffic out first.
  std::vector<ExperimentResult::TenantResult> tenant_rows;
  const std::string tenant_spec = "free:4,premium:1";
  {
    const TenantSet tenants = *TenantSet::Parse(tenant_spec);
    Trace trace = traces[0].trace;  // market-open 10x
    AssignTenants(&trace, tenants, kTraceSeed);
    RowKey key;
    key.cpus = 4;
    key.admission = AdmissionKind::kDbf;
    SchedulerSpec spec = SpecFor(key);
    spec.admission.tenants = tenants;
    const ExperimentResult result =
        RunExperiment(trace, spec, BaseOptions());
    tenant_rows = result.tenants;
    std::printf("\ntenant tiers (dbf, market-open 10x, 4 CPUs, %s):\n",
                tenant_spec.c_str());
    for (const auto& tenant : tenant_rows) {
      std::printf("  %-8s submitted %6lld committed %6lld rejected %6lld "
                  "shed %5lld dropped %5lld profit %10.0f\n",
                  tenant.name.c_str(),
                  static_cast<long long>(tenant.submitted),
                  static_cast<long long>(tenant.committed),
                  static_cast<long long>(tenant.rejected),
                  static_cast<long long>(tenant.shed),
                  static_cast<long long>(tenant.dropped), tenant.profit);
    }
  }

  // --- shared execution -----------------------------------------------------
  // The fusion headline (DESIGN.md §13): the same flash crowd at 4 CPUs,
  // admit-all so nothing but shared execution differs, fused vs unfused.
  // The gated figure is profit per CPU-busy-second — fusion must buy more
  // profit per cycle actually spent, not just shift work around. The CI
  // floor is 1.2x (tools/check_hotpath_regression.py --min-fusion-gain).
  struct FusionPoint {
    double profit = 0.0;
    double cpu_busy_s = 0.0;
    double profit_per_cpu_s = 0.0;
    int64_t fused = 0;
    int64_t groups = 0;
    int64_t committed = 0;
    int64_t cache_hits = 0;
    int64_t cache_fills = 0;
    uint64_t end_state_hash = 0;
  };
  auto fusion_point = [&](bool enabled, bool cache) {
    RowKey key;
    key.trace_index = 0;  // market-open 10x
    key.cpus = 4;
    key.admission = AdmissionKind::kAdmitAll;
    ExperimentOptions options = BaseOptions();
    options.server.fusion.enabled = enabled;
    options.server.fusion.result_cache = cache;
    const ExperimentResult result =
        RunExperiment(traces[0].trace, SpecFor(key), options);
    FusionPoint point;
    point.profit = Profit(result);
    point.cpu_busy_s = result.cpu_busy_ms / 1e3;
    point.profit_per_cpu_s =
        point.cpu_busy_s > 0.0 ? point.profit / point.cpu_busy_s : 0.0;
    point.fused = result.queries_fused;
    point.groups = result.fusion_groups;
    point.committed = result.queries_committed;
    point.cache_hits = result.queries_cache_hits;
    point.cache_fills = result.cache_fills;
    point.end_state_hash = result.end_state_hash;
    return point;
  };
  const FusionPoint fusion_off = fusion_point(false, false);
  const FusionPoint fusion_on = fusion_point(true, false);
  const FusionPoint fusion_rerun = fusion_point(true, false);
  const bool fusion_rerun_identical =
      fusion_rerun.end_state_hash == fusion_on.end_state_hash;
  const double fusion_gain = fusion_off.profit_per_cpu_s > 0.0
                                 ? fusion_on.profit_per_cpu_s /
                                       fusion_off.profit_per_cpu_s
                                 : 0.0;
  // The round-2 headline (DESIGN.md §14): same point with the fused-result
  // cache on top — hits answer repeat look-alikes for zero scan cost, so
  // the gain must only climb from here.
  const FusionPoint cache_on = fusion_point(true, true);
  const FusionPoint cache_rerun = fusion_point(true, true);
  const bool cache_rerun_identical =
      cache_rerun.end_state_hash == cache_on.end_state_hash;
  const double cache_gain = fusion_off.profit_per_cpu_s > 0.0
                                ? cache_on.profit_per_cpu_s /
                                      fusion_off.profit_per_cpu_s
                                : 0.0;
  std::printf("\nshared execution (market-open 10x, 4 CPUs, admit-all):\n");
  std::printf("  fusion off: profit %10.0f  cpu-busy %7.2fs  "
              "profit/cpu-s %10.1f\n",
              fusion_off.profit, fusion_off.cpu_busy_s,
              fusion_off.profit_per_cpu_s);
  std::printf("  fusion on : profit %10.0f  cpu-busy %7.2fs  "
              "profit/cpu-s %10.1f  (%lld fused in %lld groups)\n",
              fusion_on.profit, fusion_on.cpu_busy_s,
              fusion_on.profit_per_cpu_s,
              static_cast<long long>(fusion_on.fused),
              static_cast<long long>(fusion_on.groups));
  std::printf("  profit/cpu-s gain: %.3fx\n", fusion_gain);
  std::printf("  fusion on + result cache: profit %10.0f  cpu-busy %7.2fs  "
              "profit/cpu-s %10.1f\n",
              cache_on.profit, cache_on.cpu_busy_s,
              cache_on.profit_per_cpu_s);
  std::printf("    cache: %lld hits / %lld fills  gain vs off: %.3fx\n",
              static_cast<long long>(cache_on.cache_hits),
              static_cast<long long>(cache_on.cache_fills), cache_gain);
  if (!fusion_rerun_identical) {
    std::fprintf(stderr, "fusion rerun diverged: %llx vs %llx\n",
                 static_cast<unsigned long long>(fusion_on.end_state_hash),
                 static_cast<unsigned long long>(fusion_rerun.end_state_hash));
    return 1;
  }
  if (!cache_rerun_identical) {
    std::fprintf(stderr, "fusion-cache rerun diverged: %llx vs %llx\n",
                 static_cast<unsigned long long>(cache_on.end_state_hash),
                 static_cast<unsigned long long>(cache_rerun.end_state_hash));
    return 1;
  }

  bench::PrintSweepSummary();

  std::FILE* out = std::fopen(flags.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.out.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"overload\",\n"
               "  \"smoke\": %s,\n"
               "  \"queue_cap\": %lld,\n"
               "  \"rows\": [\n",
               flags.smoke ? "true" : "false",
               static_cast<long long>(kQueueCap));
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"scenario\": \"%s\", \"scale\": %.0f, \"cpus\": %d,\n"
                 "     \"admission\": \"%s\", \"profit\": %.3f,\n"
                 "     \"total_pct\": %.4f, \"committed\": %lld,\n"
                 "     \"dropped\": %lld, \"rejected\": %lld, \"shed\": %lld,\n"
                 "     \"end_state_hash\": \"%016llx\"}%s\n",
                 ToString(row.scenario).c_str(), row.scale, row.cpus,
                 ToString(row.admission).c_str(), row.profit, row.total_pct,
                 static_cast<long long>(row.committed),
                 static_cast<long long>(row.dropped),
                 static_cast<long long>(row.rejected),
                 static_cast<long long>(row.shed),
                 static_cast<unsigned long long>(row.end_state_hash),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"headline\": {\n"
               "    \"scenario\": \"market-open\", \"scale\": 10, \"cpus\": 4,\n"
               "    \"admit_all_profit\": %.3f,\n"
               "    \"queue_cap_profit\": %.3f,\n"
               "    \"expected_profit_profit\": %.3f,\n"
               "    \"dbf_profit\": %.3f,\n"
               "    \"dbf_beats_admit_all\": %s,\n"
               "    \"dbf_beats_queue_cap\": %s\n"
               "  },\n"
               "  \"fusion\": {\n"
               "    \"scenario\": \"market-open\", \"scale\": 10, \"cpus\": 4,\n"
               "    \"admission\": \"admit-all\",\n"
               "    \"profit_off\": %.3f, \"profit_on\": %.3f,\n"
               "    \"cpu_busy_s_off\": %.6f, \"cpu_busy_s_on\": %.6f,\n"
               "    \"profit_per_cpu_s_off\": %.3f,\n"
               "    \"profit_per_cpu_s_on\": %.3f,\n"
               "    \"queries_fused\": %lld, \"fusion_groups\": %lld,\n"
               "    \"gain\": %.4f,\n"
               "    \"end_state_hash\": \"%016llx\",\n"
               "    \"rerun_identical\": %s\n"
               "  },\n"
               "  \"fusion_cache\": {\n"
               "    \"scenario\": \"market-open\", \"scale\": 10, \"cpus\": 4,\n"
               "    \"admission\": \"admit-all\",\n"
               "    \"profit\": %.3f, \"cpu_busy_s\": %.6f,\n"
               "    \"profit_per_cpu_s\": %.3f,\n"
               "    \"cache_hits\": %lld, \"cache_fills\": %lld,\n"
               "    \"queries_fused\": %lld, \"fusion_groups\": %lld,\n"
               "    \"gain\": %.4f,\n"
               "    \"end_state_hash\": \"%016llx\",\n"
               "    \"rerun_identical\": %s\n"
               "  },\n"
               "  \"tenants\": {\"spec\": \"%s\", \"rows\": [\n",
               admit_all->profit, queue_cap->profit, expected->profit,
               dbf->profit, dbf_beats_admit_all ? "true" : "false",
               dbf_beats_queue_cap ? "true" : "false", fusion_off.profit,
               fusion_on.profit, fusion_off.cpu_busy_s, fusion_on.cpu_busy_s,
               fusion_off.profit_per_cpu_s, fusion_on.profit_per_cpu_s,
               static_cast<long long>(fusion_on.fused),
               static_cast<long long>(fusion_on.groups), fusion_gain,
               static_cast<unsigned long long>(fusion_on.end_state_hash),
               fusion_rerun_identical ? "true" : "false", cache_on.profit,
               cache_on.cpu_busy_s, cache_on.profit_per_cpu_s,
               static_cast<long long>(cache_on.cache_hits),
               static_cast<long long>(cache_on.cache_fills),
               static_cast<long long>(cache_on.fused),
               static_cast<long long>(cache_on.groups), cache_gain,
               static_cast<unsigned long long>(cache_on.end_state_hash),
               cache_rerun_identical ? "true" : "false",
               tenant_spec.c_str());
  for (size_t i = 0; i < tenant_rows.size(); ++i) {
    const auto& tenant = tenant_rows[i];
    std::fprintf(out,
                 "    {\"tenant\": \"%s\", \"submitted\": %lld,\n"
                 "     \"committed\": %lld, \"rejected\": %lld,\n"
                 "     \"shed\": %lld, \"dropped\": %lld, \"profit\": %.3f}%s\n",
                 tenant.name.c_str(),
                 static_cast<long long>(tenant.submitted),
                 static_cast<long long>(tenant.committed),
                 static_cast<long long>(tenant.rejected),
                 static_cast<long long>(tenant.shed),
                 static_cast<long long>(tenant.dropped), tenant.profit,
                 i + 1 < tenant_rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ]},\n"
               "  \"rerun_identical\": true\n"
               "}\n");
  std::fclose(out);
  std::fprintf(stderr, "[bench_overload] wrote %s\n", flags.out.c_str());

  // The headline comparison gates in CI via the JSON booleans
  // (tools/check_hotpath_regression.py --overload), not the exit code, so a
  // regression still uploads the full report for diagnosis.
  return 0;
}
