// Figure 5 + Table 3 — trace characteristics of the synthetic Stock.com /
// NYSE workload: per-second query/update rates (5a, 5b), query-vs-update
// skew across stocks (5c), and the Table 3 workload summary.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "trace/trace_stats.h"
#include "util/table.h"

namespace {

// Prints min/mean/max of per-second counts over consecutive windows —
// a textual rendering of the Fig. 5a/5b rate plots.
void PrintRateSeries(const char* title, const std::vector<int64_t>& per_s,
                     size_t window_s) {
  std::printf("%s (per-second rate, %zus windows)\n", title, window_s);
  webdb::AsciiTable table({"t (s)", "min/s", "mean/s", "max/s"});
  for (size_t start = 0; start < per_s.size(); start += window_s) {
    const size_t end = std::min(per_s.size(), start + window_s);
    int64_t lo = per_s[start], hi = per_s[start], sum = 0;
    for (size_t i = start; i < end; ++i) {
      lo = std::min(lo, per_s[i]);
      hi = std::max(hi, per_s[i]);
      sum += per_s[i];
    }
    table.AddRow({std::to_string(start), std::to_string(lo),
                  webdb::AsciiTable::Num(
                      static_cast<double>(sum) / static_cast<double>(end - start), 1),
                  std::to_string(hi)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace webdb;
  const int jobs = bench::ParseJobs(argc, argv);
  const Trace& trace = bench::FullTrace();

  // The characterization pass itself fans out over --jobs workers; the
  // chunk merge is exact, so any jobs value prints identical tables.
  // lint:allow(wall-clock) stderr timing line only; tables are unaffected
  const auto start = std::chrono::steady_clock::now();
  const TraceStats stats = ComputeTraceStats(trace, jobs);
  const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           // lint:allow(wall-clock) stderr timing line only
                           std::chrono::steady_clock::now() - start)
                           .count();
  std::fprintf(stderr, "[bench] trace stats in %.3f s (%d jobs)\n",
               static_cast<double>(wall_us) / 1e6, ResolveJobs(jobs));

  bench::PrintHeader("Table 3: workload information",
                     "82,129 queries / 496,892 updates / 4,608 stocks / "
                     "query exec 5-9ms / update exec 1-5ms");
  std::printf("%s", stats.Summary().c_str());

  bench::PrintHeader("Figure 5a: query distribution over time",
                     "small changes over time");
  PrintRateSeries("queries", stats.queries_per_second,
                  std::max<size_t>(1, stats.queries_per_second.size() / 12));

  bench::PrintHeader("Figure 5b: update distribution over time",
                     "downward trend over time");
  PrintRateSeries("updates", stats.updates_per_second,
                  std::max<size_t>(1, stats.updates_per_second.size() / 12));

  bench::PrintHeader("Figure 5c: query vs update frequency per stock",
                     "most stocks have more updates than queries "
                     "(points below the diagonal)");
  std::printf("fraction of active stocks with more updates than queries: "
              "%.3f\n",
              stats.FractionUpdateDominated());

  // Decile view of the scatter: stocks ranked by update count.
  std::vector<PerItemCounts> sorted = stats.per_item;
  std::sort(sorted.begin(), sorted.end(),
            [](const PerItemCounts& a, const PerItemCounts& b) {
              return a.updates > b.updates;
            });
  AsciiTable table({"stock decile (by #updates)", "avg #updates", "avg #queries"});
  const size_t decile = sorted.size() / 10;
  for (int d = 0; d < 10; ++d) {
    int64_t updates = 0, queries = 0;
    for (size_t i = d * decile; i < (d + 1) * decile; ++i) {
      updates += sorted[i].updates;
      queries += sorted[i].queries;
    }
    table.AddRow({std::to_string(d),
                  AsciiTable::Num(static_cast<double>(updates) /
                                      static_cast<double>(decile), 1),
                  AsciiTable::Num(static_cast<double>(queries) /
                                      static_cast<double>(decile), 1)});
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}
