// Figure 10 — sensitivity of QUTS to its two parameters, on the Section 5.2
// setup: (a) adaptation period ω swept 0.1 ... 100 s with τ = 10 ms;
// (b) atom time τ swept 1 ... 1000 ms with ω = 1000 ms.
//
// Reproduced claims: the total profit percentage is nearly flat across a
// wide range of ω; the best τ sits near the maximum query execution time
// (~10 ms).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "exp/figures.h"
#include "exp/report.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace webdb;
  const SweepConfig sweep = bench::BenchSweepConfig(argc, argv);
  const Trace trace = bench::AdaptabilityTrace();

  bench::PrintHeader("Figure 10a: sensitivity to adaptation period (omega)",
                     "overall performance varies very little for a wide "
                     "range of adaptation periods");
  const auto omega_points =
      RunOmegaSensitivity(trace, OmegaSensitivityGrid(), 7, sweep);
  AsciiTable omega_table({"omega (s)", "total profit %"});
  for (const auto& [omega, pct] : omega_points) {
    omega_table.AddRow(
        {AsciiTable::Num(omega, 1), AsciiTable::Num(pct, 3)});
  }
  std::printf("%s", omega_table.Render().c_str());

  bench::PrintHeader("Figure 10b: sensitivity to atom time (tau)",
                     "best performance around 10 ms, close to the maximum "
                     "query execution time (5-9 ms)");
  const auto tau_points = RunTauSensitivity(trace, TauSensitivityGrid(), 7, sweep);
  AsciiTable tau_table({"tau (ms)", "total profit %"});
  for (const auto& [tau, pct] : tau_points) {
    tau_table.AddRow({AsciiTable::Num(tau, 0), AsciiTable::Num(pct, 3)});
  }
  std::printf("%s", tau_table.Render().c_str());

  if (const std::string dir = CsvDirFromEnv(); !dir.empty()) {
    WritePairsCsv(dir + "/fig10a_omega.csv", "omega_s", "total_pct",
                  omega_points);
    WritePairsCsv(dir + "/fig10b_tau.csv", "tau_ms", "total_pct", tau_points);
    std::printf("[csv] wrote fig10a_omega.csv and fig10b_tau.csv to %s\n",
                dir.c_str());
  }
  bench::PrintSweepSummary();
  return 0;
}
