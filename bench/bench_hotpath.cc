// Hot-path microbenchmark: events/sec through the simulator core, pops/sec
// through TxnQueue, and heap allocations per event via an instrumented
// global operator new. Emits BENCH_hotpath.json for the perf-smoke CI job.
//
// The reference workload is transaction-shaped: every transaction schedules
// a completion and a far-future lifetime deadline, then the completion
// fires and cancels the deadline — the per-query event pattern of the
// actual server. To make the headline number machine-independent, the bench
// also carries a LegacySimulator — a faithful copy of the pre-arena core
// (std::function callbacks in an unordered_map side-table, lazy
// cancellation) — and reports the speedup of the slot-arena core over it,
// measured in the same process on the same workload. The CI gate checks
// both the absolute events/sec against a committed baseline and that the
// speedup stays >= 2x.
//
// Usage: bench_hotpath [--out <path>]   (default: BENCH_hotpath.json)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/experiment.h"
#include "sched/txn_queue.h"
#include "sim/simulator.h"
#include "trace/stock_trace_generator.h"
#include "txn/transaction.h"
#include "util/time.h"

// --- allocation instrumentation ---------------------------------------------
// Counts every heap allocation in the process. Single-threaded bench, but
// atomics keep the counters honest if a library thread appears.

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace webdb {
namespace {

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

// Wall-clock is what a throughput bench measures; results go to the JSON
// report, never into simulation state.
auto StartTimer() {
  return std::chrono::steady_clock::now();  // lint:allow(wall-clock)
}

double SecondsSince(decltype(StartTimer()) start) {
  const auto now = std::chrono::steady_clock::now();  // lint:allow(wall-clock)
  return std::chrono::duration<double>(now - start).count();
}

// --- the pre-arena simulator core, verbatim ---------------------------------
// Kept here (and only here) as the baseline the speedup is measured against:
// per event, one std::function plus an unordered_map node insert + erase.

class LegacySimulator {
 public:
  using EventId = uint64_t;

  SimTime Now() const { return now_; }

  EventId ScheduleAt(SimTime t, std::function<void()> fn) {
    const uint64_t seq = next_seq_++;
    const EventId id = seq;
    heap_.push(HeapEntry{t, seq, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }

  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  bool Cancel(EventId id) { return callbacks_.erase(id) > 0; }

  bool Step() {
    while (!heap_.empty()) {
      const HeapEntry top = heap_.top();
      heap_.pop();
      auto it = callbacks_.find(top.id);
      if (it == callbacks_.end()) continue;
      std::function<void()> fn = std::move(it->second);
      callbacks_.erase(it);
      now_ = top.time;
      fn();
      return true;
    }
    return false;
  }

  void Run() {
    while (Step()) {
    }
  }

 private:
  struct HeapEntry {
    SimTime time;
    uint64_t seq;
    EventId id;
    bool operator>(const HeapEntry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

// --- workloads --------------------------------------------------------------

constexpr int kTxnWidth = 64;         // concurrently in-flight transactions
constexpr SimTime kServiceTicks = 10;
constexpr SimTime kDeadlineTicks = 1000;
constexpr uint64_t kTxns = 2'000'000;  // 4M resolved events
constexpr int kReps = 3;               // interleaved best-of reps per core

constexpr int kRingWidth = 64;        // concurrently pending events
constexpr uint64_t kEvents = 4'000'000;
constexpr uint64_t kCancelPairs = 1'000'000;
constexpr int kQueueLive = 256;       // live txns during queue churn
constexpr uint64_t kQueueOps = 2'000'000;

struct Throughput {
  double per_sec = 0.0;
  double allocs_per_op = 0.0;
};

// The reference workload: transaction-shaped event churn. Each transaction
// schedules a completion (service time out) and a lifetime deadline (much
// further out); the completion fires, cancels the deadline, and starts the
// next transaction — exactly the server's per-query pattern (dispatch +
// deadline guard + wake-up). Nearly every deadline is cancelled long before
// its timestamp, so a core with lazy cancellation drags a heap of ~100x the
// live population in dead entries through every sift, while the arena's
// eager slot-indexed removal keeps the heap at the live size. All closures
// capture at most 16 bytes — the shape of the server's real [this] lambdas —
// so they fit both std::function's and EventCallback's small buffers: the
// comparison isolates the cores' bookkeeping, not closure-copy costs.
template <typename Sim>
struct TxnCtx {
  Sim* sim;
  uint64_t started = 0;
  uint64_t completed = 0;
  uint64_t total = 0;
};

template <typename Sim>
void StartTxn(TxnCtx<Sim>* ctx);

template <typename Sim>
struct Complete {
  TxnCtx<Sim>* ctx;
  uint64_t deadline;
  void operator()() const {
    ctx->sim->Cancel(deadline);
    ++ctx->completed;
    if (ctx->started < ctx->total) StartTxn(ctx);
  }
};

template <typename Sim>
void StartTxn(TxnCtx<Sim>* ctx) {
  ++ctx->started;
  const SimTime t = ctx->sim->Now();
  const uint64_t deadline = ctx->sim->ScheduleAt(t + kDeadlineTicks, [] {});
  ctx->sim->ScheduleAt(t + kServiceTicks, Complete<Sim>{ctx, deadline});
}

template <typename Sim>
Throughput RunTxnChurn(uint64_t txns) {
  Sim sim;
  TxnCtx<Sim> ctx;
  ctx.sim = &sim;
  ctx.total = txns;
  const auto start = StartTimer();
  const uint64_t allocs_before = AllocCount();
  for (int i = 0; i < kTxnWidth && ctx.started < txns; ++i) StartTxn(&ctx);
  sim.Run();
  const uint64_t allocs = AllocCount() - allocs_before;
  const double secs = SecondsSince(start);
  if (ctx.completed != txns) {
    std::fprintf(stderr, "txn churn completed %llu of %llu txns\n",
                 static_cast<unsigned long long>(ctx.completed),
                 static_cast<unsigned long long>(txns));
    std::exit(1);
  }
  // Each transaction resolves two events: a fired completion and a
  // cancelled deadline.
  const double events = 2.0 * static_cast<double>(txns);
  Throughput out;
  out.per_sec = events / secs;
  out.allocs_per_op = static_cast<double>(allocs) / events;
  return out;
}

// A ring of kRingWidth pending events; each firing schedules its successor:
// pure dispatch throughput with no cancellations (secondary metric).
template <typename Sim>
struct ChurnCtx {
  Sim* sim;
  uint64_t fired = 0;
  uint64_t total = 0;
};

template <typename Sim>
struct Tick {
  ChurnCtx<Sim>* ctx;
  void operator()() const {
    if (++ctx->fired + kRingWidth <= ctx->total) {
      ctx->sim->ScheduleAfter(kRingWidth, Tick{ctx});
    }
  }
};

template <typename Sim>
Throughput RunEventChurn(uint64_t total_events) {
  Sim sim;
  ChurnCtx<Sim> ctx;
  ctx.sim = &sim;
  ctx.total = total_events;
  const auto start = StartTimer();
  const uint64_t allocs_before = AllocCount();
  for (int i = 0; i < kRingWidth; ++i) sim.ScheduleAt(i, Tick<Sim>{&ctx});
  sim.Run();
  const uint64_t fired = ctx.fired;
  const uint64_t allocs = AllocCount() - allocs_before;
  const double secs = SecondsSince(start);
  if (fired != total_events) {
    std::fprintf(stderr, "event churn fired %llu of %llu events\n",
                 static_cast<unsigned long long>(fired),
                 static_cast<unsigned long long>(total_events));
    std::exit(1);
  }
  Throughput out;
  out.per_sec = static_cast<double>(fired) / secs;
  out.allocs_per_op =
      static_cast<double>(allocs) / static_cast<double>(fired);
  return out;
}

// Schedule + cancel pairs: the wake-event reschedule pattern in
// WebDatabaseServer::ScheduleWake (cancel the armed wake-up, arm a new one).
template <typename Sim>
Throughput RunCancelChurn(uint64_t pairs) {
  Sim sim;
  int sink = 0;
  const auto start = StartTimer();
  const uint64_t allocs_before = AllocCount();
  for (uint64_t i = 0; i < pairs; ++i) {
    const auto id = sim.ScheduleAt(static_cast<SimTime>(i + 1000),
                                   [&sink] { ++sink; });
    sim.Cancel(id);
  }
  sim.Run();
  const uint64_t allocs = AllocCount() - allocs_before;
  const double secs = SecondsSince(start);
  if (sink != 0) {
    std::fprintf(stderr, "cancelled events fired\n");
    std::exit(1);
  }
  Throughput out;
  out.per_sec = static_cast<double>(pairs) / secs;
  out.allocs_per_op = static_cast<double>(allocs) / static_cast<double>(pairs);
  return out;
}

// TxnQueue under the 2PL-HP restart-storm pattern: a fixed live population,
// each op removes one transaction and re-pushes it (tombstone + compaction
// churn), then pops/pushes to rotate the heap.
Throughput RunQueueChurn(uint64_t ops) {
  std::vector<Query> queries(kQueueLive);
  TxnQueue queue;
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].id = QueryTxnId(i);
    queries[i].arrival = static_cast<SimTime>(i);
    queue.Push(&queries[i], static_cast<double>(i % 17));
  }
  const auto start = StartTimer();
  const uint64_t allocs_before = AllocCount();
  uint64_t pops = 0;
  for (uint64_t i = 0; i < ops; ++i) {
    Query& victim = queries[i % kQueueLive];
    queue.Remove(&victim);
    queue.Push(&victim, static_cast<double>(i % 17));
    Transaction* top = queue.Pop();
    ++pops;
    queue.Push(top, static_cast<double>((i * 7) % 17));
  }
  const uint64_t allocs = AllocCount() - allocs_before;
  const double secs = SecondsSince(start);
  while (queue.Pop() != nullptr) ++pops;
  Throughput out;
  out.per_sec = static_cast<double>(pops) / secs;
  out.allocs_per_op = static_cast<double>(allocs) / static_cast<double>(ops);
  return out;
}

// --- multi-core scaling ------------------------------------------------------
// End-to-end profit throughput of sharded QUTS at 1/2/4 CPUs on a
// flash-crowd trace that saturates a single CPU. The figure of merit is
// profit per wall-second — committed profit divided by the wall time of the
// whole simulated run — so it folds both the schedule quality (more commits
// under overload) and the simulator's multi-CPU bookkeeping cost into one
// number. Every row is run twice; the end-state hashes must agree or the
// bench aborts (determinism is part of the contract being measured).

struct MulticoreRow {
  int cpus = 0;
  double profit = 0.0;
  double wall_s = 0.0;
  double profit_per_wall_s = 0.0;
  uint64_t end_state_hash = 0;
};

Trace MakeFlashCrowdTrace() {
  // A short, heavily overloaded open: the spike demand is several times one
  // CPU, so extra cores translate directly into committed queries.
  StockTraceConfig config = StockTraceConfig::Small(2024);
  config.query_rate = 1000.0;
  config.query_spike_gain = 6.0;
  config.update_rate_start = 400.0;
  config.update_rate_end = 300.0;
  return GenerateStockTrace(config);
}

MulticoreRow RunMulticorePoint(const Trace& trace, int cpus) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kQuts;
  spec.topology.num_cpus = cpus;
  ExperimentOptions options;
  options.qc_seed = 99;
  options.qc = BalancedProfile(QcShape::kStep);
  options.compute_end_state_hash = true;

  const auto start = StartTimer();
  const ExperimentResult result = RunExperiment(trace, spec, options);
  const double wall_s = SecondsSince(start);
  const ExperimentResult rerun = RunExperiment(trace, spec, options);
  if (rerun.end_state_hash != result.end_state_hash) {
    std::fprintf(stderr,
                 "multicore rerun diverged at %d CPUs: %llx vs %llx\n", cpus,
                 static_cast<unsigned long long>(result.end_state_hash),
                 static_cast<unsigned long long>(rerun.end_state_hash));
    std::exit(1);
  }

  MulticoreRow row;
  row.cpus = cpus;
  row.profit = result.qos_gained + result.qod_gained;
  row.wall_s = wall_s;
  row.profit_per_wall_s = row.profit / wall_s;
  row.end_state_hash = result.end_state_hash;
  return row;
}

}  // namespace
}  // namespace webdb

int main(int argc, char** argv) {
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  using namespace webdb;  // NOLINT(google-build-using-namespace)

  std::fprintf(stderr, "[bench_hotpath] txn churn (%llu txns, %d reps)...\n",
               static_cast<unsigned long long>(kTxns), kReps);
  // Warm both cores once (page in code, size the arena), then measure with
  // interleaved repetitions, keeping each core's best: machine noise hits
  // both cores alike, so best-of-N stabilises the ratio.
  RunTxnChurn<Simulator>(kTxns / 8);
  RunTxnChurn<LegacySimulator>(kTxns / 8);
  Throughput arena, legacy;
  for (int rep = 0; rep < kReps; ++rep) {
    const Throughput a = RunTxnChurn<Simulator>(kTxns);
    const Throughput l = RunTxnChurn<LegacySimulator>(kTxns);
    if (a.per_sec > arena.per_sec) arena = a;
    if (l.per_sec > legacy.per_sec) legacy = l;
  }

  std::fprintf(stderr, "[bench_hotpath] ring churn (%llu events)...\n",
               static_cast<unsigned long long>(kEvents));
  RunEventChurn<Simulator>(kEvents / 8);
  RunEventChurn<LegacySimulator>(kEvents / 8);
  const Throughput arena_ring = RunEventChurn<Simulator>(kEvents);
  const Throughput legacy_ring = RunEventChurn<LegacySimulator>(kEvents);

  std::fprintf(stderr, "[bench_hotpath] cancel churn (%llu pairs)...\n",
               static_cast<unsigned long long>(kCancelPairs));
  const Throughput arena_cancel = RunCancelChurn<Simulator>(kCancelPairs);
  const Throughput legacy_cancel = RunCancelChurn<LegacySimulator>(kCancelPairs);

  std::fprintf(stderr, "[bench_hotpath] txn-queue churn (%llu ops)...\n",
               static_cast<unsigned long long>(kQueueOps));
  const Throughput queue = RunQueueChurn(kQueueOps);

  std::fprintf(stderr, "[bench_hotpath] multicore scaling (1/2/4 CPUs)...\n");
  const Trace flash_trace = MakeFlashCrowdTrace();
  std::vector<MulticoreRow> multicore;
  for (int cpus : {1, 2, 4}) {
    multicore.push_back(RunMulticorePoint(flash_trace, cpus));
  }
  const double multicore_speedup =
      multicore.back().profit_per_wall_s / multicore.front().profit_per_wall_s;

  const double speedup = arena.per_sec / legacy.per_sec;
  const double ring_speedup = arena_ring.per_sec / legacy_ring.per_sec;

  std::printf("events/sec           : %12.0f (arena)\n", arena.per_sec);
  std::printf("events/sec           : %12.0f (legacy)\n", legacy.per_sec);
  std::printf("speedup              : %12.2fx\n", speedup);
  std::printf("allocs/event         : %12.4f (arena)\n", arena.allocs_per_op);
  std::printf("allocs/event         : %12.4f (legacy)\n",
              legacy.allocs_per_op);
  std::printf("ring events/sec      : %12.0f (arena, legacy %.0f, %.2fx)\n",
              arena_ring.per_sec, legacy_ring.per_sec, ring_speedup);
  std::printf("cancel pairs/sec     : %12.0f (arena, legacy %.0f)\n",
              arena_cancel.per_sec, legacy_cancel.per_sec);
  std::printf("txn-queue pops/sec   : %12.0f (allocs/op %.4f)\n",
              queue.per_sec, queue.allocs_per_op);
  for (const MulticoreRow& row : multicore) {
    std::printf("profit/wall-s %d cpu%s : %12.0f (profit %.0f, %.3fs, hash "
                "%016llx)\n",
                row.cpus, row.cpus == 1 ? " " : "s", row.profit_per_wall_s,
                row.profit, row.wall_s,
                static_cast<unsigned long long>(row.end_state_hash));
  }
  std::printf("multicore speedup    : %12.2fx (4 CPUs vs 1, profit/wall-s)\n",
              multicore_speedup);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"hotpath\",\n"
               "  \"workload\": {\"txns\": %llu, \"txn_width\": %d,\n"
               "    \"service_ticks\": %lld, \"deadline_ticks\": %lld,\n"
               "    \"reps\": %d, \"ring_events\": %llu, \"ring_width\": %d,\n"
               "    \"cancel_pairs\": %llu, \"queue_ops\": %llu,\n"
               "    \"queue_live\": %d},\n"
               "  \"events_per_sec\": %.0f,\n"
               "  \"legacy_events_per_sec\": %.0f,\n"
               "  \"speedup_vs_legacy\": %.3f,\n"
               "  \"allocs_per_event\": %.4f,\n"
               "  \"legacy_allocs_per_event\": %.4f,\n"
               "  \"ring_events_per_sec\": %.0f,\n"
               "  \"legacy_ring_events_per_sec\": %.0f,\n"
               "  \"ring_speedup_vs_legacy\": %.3f,\n"
               "  \"cancel_pairs_per_sec\": %.0f,\n"
               "  \"legacy_cancel_pairs_per_sec\": %.0f,\n"
               "  \"txnqueue_pops_per_sec\": %.0f,\n"
               "  \"txnqueue_allocs_per_op\": %.4f,\n",
               static_cast<unsigned long long>(kTxns), kTxnWidth,
               static_cast<long long>(kServiceTicks),
               static_cast<long long>(kDeadlineTicks), kReps,
               static_cast<unsigned long long>(kEvents), kRingWidth,
               static_cast<unsigned long long>(kCancelPairs),
               static_cast<unsigned long long>(kQueueOps), kQueueLive,
               arena.per_sec, legacy.per_sec, speedup, arena.allocs_per_op,
               legacy.allocs_per_op, arena_ring.per_sec, legacy_ring.per_sec,
               ring_speedup, arena_cancel.per_sec, legacy_cancel.per_sec,
               queue.per_sec, queue.allocs_per_op);
  std::fprintf(out, "  \"multicore\": [\n");
  for (size_t i = 0; i < multicore.size(); ++i) {
    const MulticoreRow& row = multicore[i];
    std::fprintf(out,
                 "    {\"cpus\": %d, \"profit\": %.3f, \"wall_s\": %.4f,\n"
                 "     \"profit_per_wall_s\": %.1f,\n"
                 "     \"end_state_hash\": \"%016llx\"}%s\n",
                 row.cpus, row.profit, row.wall_s, row.profit_per_wall_s,
                 static_cast<unsigned long long>(row.end_state_hash),
                 i + 1 < multicore.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"multicore_profit_speedup_4cpu\": %.3f,\n"
               "  \"multicore_rerun_identical\": true\n"
               "}\n",
               multicore_speedup);
  std::fclose(out);
  std::fprintf(stderr, "[bench_hotpath] wrote %s\n", out_path.c_str());
  return 0;
}
