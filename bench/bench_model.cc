// Eq. 3 model validation (Section 4.1): the paper derives QUTS's optimal ρ
// from Q(ρ) ≈ QOSmax·ρ + QODmax·ρ(1-ρ) but never plots the curve. This
// bench freezes ρ, sweeps it across [0.1, 1.0], and prints the measured
// profit share against the model — the check that Eq. 4's optimum (always
// in [0.5, 1]) is real on this workload.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/rho.h"
#include "exp/figures.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace webdb;
  const SweepConfig sweep = bench::BenchSweepConfig(argc, argv);
  // Full trace: the QoD cost of high ρ only materializes under the flash
  // crowds, which a short prefix can miss.
  const Trace& trace = bench::FullTrace();

  for (const double qod_share : {0.5, 0.8}) {
    bench::PrintHeader(
        "Eq. 3 validation: frozen-rho sweep, QODmax% = " +
            AsciiTable::Num(qod_share, 1),
        "measured profit should peak at Eq. 4's rho* and fall on both "
        "sides; model is an approximation, shapes should agree");
    const QcProfile profile = Table4Profile(qod_share, QcShape::kStep);
    const auto points =
        RunRhoModelValidation(trace, RhoValidationGrid(), profile, 7, sweep);

    AsciiTable table({"rho", "measured total%", "modeled total%"});
    double best_measured_rho = 0.0, best_measured = -1.0;
    for (const auto& point : points) {
      table.AddRow({AsciiTable::Num(point.rho, 2),
                    AsciiTable::Num(point.measured_total_pct, 3),
                    AsciiTable::Num(point.modeled_total_pct, 3)});
      if (point.measured_total_pct > best_measured) {
        best_measured = point.measured_total_pct;
        best_measured_rho = point.rho;
      }
    }
    std::printf("%s", table.Render().c_str());
    const double qos_share = profile.ExpectedQosSharePct();
    std::printf("Eq. 4 rho* = %.3f; best measured rho = %.1f\n",
                OptimalRho(qos_share, 1.0 - qos_share), best_measured_rho);
  }
  bench::PrintSweepSummary();
  return 0;
}
