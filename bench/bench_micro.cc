// Micro-benchmarks (google-benchmark): costs of the building blocks — event
// queue, transaction queues, QC evaluation, Zipf sampling, lock manager,
// trace generation, and a small end-to-end server run per scheduler.
//
// Extra flags (consumed before google-benchmark sees argv):
//   --trace <path>   after the benchmarks, run one end-to-end experiment with
//                    lifecycle tracing on and write the JSONL trace to <path>
//                    (inspect with `trace_tool summarize-spans <path>`)
//   --sched <name>   scheduler for that traced run (default: quts)
//   --cpus <n>       CPUs for that traced run (default: 1; n > 1 requires
//                    --sched quts — the sharded scheduler is QUTS-only)
//   --fusion         skip the benchmarks; run the market-open flash crowd
//                    twice under QUTS — fusion off, then on — and print
//                    profit-per-CPU-second for both plus the on/off ratio
//                    (DESIGN.md §13). Respects --cpus and
//                    --scan-atom-factor.
//   --fusion-cache   like --fusion, but with a third run that also enables
//                    the fused-result cache (DESIGN.md §14) and prints its
//                    hit/fill counts plus both profit/cpu-s ratios
//   --scan-atom-factor <f>  atom-length multiplier for scan-class queries
//                    in those comparisons (default 1.0 = class-blind)

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/quts_scheduler.h"
#include "obs/tracer.h"
#include "server/fusion.h"
#include "exp/experiment.h"
#include "exp/overload_scenarios.h"
#include "exp/scheduler_factory.h"
#include "qc/qc_generator.h"
#include "sched/txn_queue.h"
#include "sim/simulator.h"
#include "trace/stock_trace_generator.h"
#include "txn/lock_manager.h"
#include "util/rng.h"

namespace webdb {
namespace {

void BM_SimulatorScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.ScheduleAt(i, [&sink] { ++sink; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_TxnQueuePushPop(benchmark::State& state) {
  std::vector<Query> queries(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].id = QueryTxnId(i);
    queries[i].arrival = static_cast<SimTime>(i);
  }
  Rng rng(1);
  for (auto _ : state) {
    TxnQueue queue;
    for (auto& query : queries) queue.Push(&query, rng.NextDouble());
    while (queue.Pop() != nullptr) {
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TxnQueuePushPop)->Arg(1000)->Arg(10000);

void BM_QcEvaluate(benchmark::State& state) {
  const auto qc =
      QualityContract::Make(QcShape::kLinear, 10.0, Millis(50), 20.0, 2.0);
  SimDuration rt = 0;
  double staleness = 0.0;
  double sink = 0.0;
  for (auto _ : state) {
    rt = (rt + Millis(1)) % Millis(100);
    staleness = staleness >= 3.0 ? 0.0 : staleness + 0.1;
    sink += qc.Evaluate(rt, staleness).Total();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_QcEvaluate);

void BM_QcGeneratorNext(benchmark::State& state) {
  QcGenerator generator(BalancedProfile(QcShape::kStep));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Next(rng));
  }
}
BENCHMARK(BM_QcGeneratorNext);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(4608, 1.0);
  Rng rng(3);
  int64_t sink = 0;
  for (auto _ : state) sink += zipf.Sample(rng);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ZipfSample);

void BM_LockManagerAcquireRelease(benchmark::State& state) {
  LockManager lm;
  const std::vector<ItemId> items = {1, 2, 3, 4, 5};
  for (auto _ : state) {
    lm.Acquire(2, LockMode::kShared, items);
    benchmark::DoNotOptimize(lm.Conflicts(5, LockMode::kExclusive, {3}));
    lm.ReleaseAll(2);
  }
}
BENCHMARK(BM_LockManagerAcquireRelease);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    StockTraceConfig config = StockTraceConfig::Small(42);
    config.duration = Seconds(state.range(0));
    benchmark::DoNotOptimize(GenerateStockTrace(config));
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(10)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_EndToEndServerRun(benchmark::State& state) {
  const SchedulerKind kind = static_cast<SchedulerKind>(state.range(0));
  StockTraceConfig config = StockTraceConfig::Small(7);
  config.query_rate = 40.0;
  config.update_rate_start = 280.0;
  config.update_rate_end = 200.0;
  const Trace trace = GenerateStockTrace(config);
  for (auto _ : state) {
    auto scheduler = MakeScheduler(kind);
    ExperimentOptions options;
    options.qc = BalancedProfile(QcShape::kStep);
    benchmark::DoNotOptimize(
        RunExperiment(trace, scheduler.get(), options));
  }
  state.SetLabel(ToString(kind));
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(trace.queries.size() + trace.updates.size()));
}
BENCHMARK(BM_EndToEndServerRun)
    ->Arg(static_cast<int>(SchedulerKind::kFifo))
    ->Arg(static_cast<int>(SchedulerKind::kUpdateHigh))
    ->Arg(static_cast<int>(SchedulerKind::kQueryHigh))
    ->Arg(static_cast<int>(SchedulerKind::kQuts))
    ->Unit(benchmark::kMillisecond);

// Candidate collection over a bucket of N exact look-alikes: the cost that
// used to go quadratic in the taken() membership scan before the flat/hash
// switchover at 16 collected members (src/server/fusion.cc).
void BM_FusionCollectCandidates(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Query> queries(static_cast<size_t>(n));
  FusionIndex index;
  for (int i = 0; i < n; ++i) {
    Query& query = queries[static_cast<size_t>(i)];
    query.id = QueryTxnId(static_cast<uint64_t>(i));
    query.kind = TxnKind::kQuery;
    query.state = TxnState::kQueued;
    query.type = QueryType::kAggregation;
    query.items = {1, 2, 3};
    index.Insert(&query);
  }
  std::vector<TxnId> members;
  members.reserve(static_cast<size_t>(n));
  for (auto _ : state) {
    members.clear();
    index.CollectCandidates(queries[0], /*subset=*/true, n, &members);
    benchmark::DoNotOptimize(members.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FusionCollectCandidates)->Arg(8)->Arg(64)->Arg(512);

// Runs one end-to-end experiment with the tracer attached and writes the
// JSONL lifecycle trace to `path`. Returns an exit status.
int RunTracedExperiment(const std::string& path, const std::string& sched,
                        int cpus, const std::string& admission,
                        const std::string& tenants) {
  const std::optional<SchedulerKind> kind = SchedulerKindFromName(sched);
  if (!kind.has_value()) {
    std::fprintf(stderr, "error: unknown scheduler '%s'; valid names:",
                 sched.c_str());
    for (const std::string& name : ValidSchedulerNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  const std::optional<AdmissionKind> admission_kind =
      AdmissionKindFromName(admission);
  if (!admission_kind.has_value()) {
    std::fprintf(stderr, "error: unknown admission policy '%s'; valid names:",
                 admission.c_str());
    for (const std::string& name : ValidAdmissionNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  std::optional<TenantSet> tenant_set;
  if (!tenants.empty()) {
    tenant_set = TenantSet::Parse(tenants);
    if (!tenant_set.has_value()) {
      std::fprintf(stderr,
                   "error: bad --tenants spec '%s' (want name:weight pairs, "
                   "e.g. free:4,premium:1)\n",
                   tenants.c_str());
      return 1;
    }
  }
  if (cpus < 1) {
    std::fprintf(stderr, "error: --cpus must be >= 1 (got %d)\n", cpus);
    return 1;
  }
  if (cpus > 1 && *kind != SchedulerKind::kQuts) {
    std::fprintf(stderr,
                 "error: --cpus %d needs --sched quts (only QUTS shards "
                 "across cores)\n",
                 cpus);
    return 1;
  }
  StockTraceConfig config = StockTraceConfig::Small(7);
  config.query_rate = 40.0;
  config.update_rate_start = 280.0;
  config.update_rate_end = 200.0;
  Trace trace = GenerateStockTrace(config);
  if (tenant_set.has_value()) {
    AssignTenants(&trace, *tenant_set, config.seed);
  }

  Tracer tracer;
  SchedulerSpec spec;
  spec.kind = *kind;
  spec.topology.num_cpus = cpus;
  spec.admission.kind = *admission_kind;
  if (tenant_set.has_value()) spec.admission.tenants = *tenant_set;
  ExperimentOptions options;
  options.qc = BalancedProfile(QcShape::kStep);
  options.server.tracer = &tracer;
  const ExperimentResult result = RunExperiment(trace, spec, options);
  if (*admission_kind != AdmissionKind::kAdmitAll) {
    std::fprintf(stderr,
                 "admission %s: %lld committed, %lld rejected, %lld shed\n",
                 ToString(*admission_kind).c_str(),
                 static_cast<long long>(result.queries_committed),
                 static_cast<long long>(result.queries_rejected),
                 static_cast<long long>(result.queries_shed));
  }
  if (!tracer.WriteJsonlFile(path)) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu trace events (%s, %d cpu%s) to %s\n",
               tracer.NumEvents(), ToString(*kind).c_str(), cpus,
               cpus == 1 ? "" : "s", path.c_str());
  return 0;
}

// Runs the market-open flash crowd fusion-off, fusion-on and — under
// --fusion-cache — a third time with the fused-result cache, printing
// profit-per-CPU-second for each. The README quickstart entry point for
// shared execution (DESIGN.md §13-14); bench_overload publishes the gated
// version of the same comparison.
int RunFusionComparison(int cpus, double scan_atom_factor, bool with_cache) {
  if (cpus < 1) {
    std::fprintf(stderr, "error: --cpus must be >= 1 (got %d)\n", cpus);
    return 1;
  }
  if (scan_atom_factor <= 0.0) {
    std::fprintf(stderr, "error: --scan-atom-factor must be > 0 (got %g)\n",
                 scan_atom_factor);
    return 1;
  }
  // bench_overload's smoke regime: ~3.2 CPUs of standing query load on a
  // 4-CPU box, so the 10x burst builds the deep hot-symbol queues fusion
  // feeds on. A lighter trace would leave the queues empty and show 1.00x.
  OverloadScenarioConfig config;
  config.query_rate = 450.0;
  config.update_rate = 60.0;
  config.duration = Seconds(8);
  config.num_stocks = 128;
  const Trace trace =
      MakeOverloadTrace(OverloadScenario::kMarketOpen, config);
  const int modes = with_cache ? 3 : 2;
  double profit_per_cpu_s[3] = {0.0, 0.0, 0.0};
  for (int mode = 0; mode < modes; ++mode) {
    SchedulerSpec spec;
    spec.kind = SchedulerKind::kQuts;
    spec.topology.num_cpus = cpus;
    spec.quts.scan_atom_factor = scan_atom_factor;
    ExperimentOptions options;
    options.qc = BalancedProfile(QcShape::kStep);
    options.server.fusion.enabled = mode >= 1;
    options.server.fusion.result_cache = mode == 2;
    const ExperimentResult result = RunExperiment(trace, spec, options);
    const double busy_s = result.cpu_busy_ms / 1e3;
    const double profit = result.qos_gained + result.qod_gained;
    profit_per_cpu_s[mode] = busy_s > 0.0 ? profit / busy_s : 0.0;
    std::fprintf(stderr,
                 "fusion %-8s  profit %10.1f  cpu-busy %8.2fs  "
                 "profit/cpu-s %8.2f  committed %lld  fused %lld in %lld "
                 "groups",
                 mode == 0 ? "off" : mode == 1 ? "on" : "on+cache", profit,
                 busy_s, profit_per_cpu_s[mode],
                 static_cast<long long>(result.queries_committed),
                 static_cast<long long>(result.queries_fused),
                 static_cast<long long>(result.fusion_groups));
    if (mode == 2) {
      std::fprintf(stderr, "  cache %lld hits / %lld fills",
                   static_cast<long long>(result.queries_cache_hits),
                   static_cast<long long>(result.cache_fills));
    }
    std::fprintf(stderr, "\n");
  }
  std::fprintf(stderr, "profit/cpu-s ratio (on/off): %.3fx  (%d cpu%s, "
               "scan-atom-factor %g)\n",
               profit_per_cpu_s[0] > 0.0
                   ? profit_per_cpu_s[1] / profit_per_cpu_s[0]
                   : 0.0,
               cpus, cpus == 1 ? "" : "s", scan_atom_factor);
  if (with_cache) {
    std::fprintf(stderr, "profit/cpu-s ratio (on+cache/off): %.3fx\n",
                 profit_per_cpu_s[0] > 0.0
                     ? profit_per_cpu_s[2] / profit_per_cpu_s[0]
                     : 0.0);
  }
  return 0;
}

}  // namespace
}  // namespace webdb

int main(int argc, char** argv) {
  std::string trace_path;
  std::string sched = "quts";
  std::string admission = "admit-all";
  std::string tenants;
  int cpus = 1;
  bool fusion = false;
  bool fusion_cache = false;
  double scan_atom_factor = 1.0;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--sched" && i + 1 < argc) {
      sched = argv[++i];
    } else if (arg == "--cpus" && i + 1 < argc) {
      cpus = std::atoi(argv[++i]);
    } else if (arg == "--admission" && i + 1 < argc) {
      admission = argv[++i];
    } else if (arg == "--tenants" && i + 1 < argc) {
      tenants = argv[++i];
    } else if (arg == "--fusion") {
      fusion = true;
    } else if (arg == "--fusion-cache") {
      fusion_cache = true;
    } else if (arg == "--scan-atom-factor" && i + 1 < argc) {
      scan_atom_factor = std::atof(argv[++i]);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  if (fusion || fusion_cache) {
    return webdb::RunFusionComparison(cpus, scan_atom_factor, fusion_cache);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_path.empty()) {
    return webdb::RunTracedExperiment(trace_path, sched, cpus, admission,
                                      tenants);
  }
  return 0;
}
