// Shared setup for the figure benches: one full-scale synthetic trace,
// generated once per process (or scaled down via WEBDB_TRACE_SCALE for quick
// runs), the shared --jobs flag that fans sweeps out over a thread pool,
// plus small printing helpers.
//
// Flags (every figure bench):
//   --jobs N   run sweep points on N worker threads (N=0: one per core).
//              Results are bit-identical for any N — see exp/sweep_runner.h.
//
// Environment knobs:
//   WEBDB_JOBS=<n>            default for --jobs (flag wins)
//   WEBDB_TRACE_SCALE=<0..1>  scale trace duration (default 1.0, full 30 min)
//   WEBDB_TRACE_SEED=<n>      trace seed (default 2007)

#ifndef WEBDB_BENCH_BENCH_COMMON_H_
#define WEBDB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/sweep_runner.h"
#include "obs/metric_registry.h"
#include "trace/stock_trace_generator.h"
#include "trace/trace.h"
#include "util/time.h"

namespace webdb {
namespace bench {

// Process-wide sink for the sweep.* throughput metrics. Only ever touched
// from the main thread (SweepRunner records after its pool joins).
inline MetricRegistry& BenchRegistry() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

// The flags every figure bench accepts.
struct BenchFlags {
  int jobs = 1;            // --jobs N / --jobs=N (WEBDB_JOBS fallback)
  bool audit_hash = false; // --audit-hash: print combined end-state hash
};

// Parses the shared bench flags. Exits with a usage message on a malformed
// or unknown flag so a typo can't silently run a multi-hour sweep serially.
inline BenchFlags ParseBenchFlags(int argc, char** argv) {
  BenchFlags flags;
  long jobs = 1;
  if (const char* env = std::getenv("WEBDB_JOBS")) jobs = std::atol(env);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--audit-hash") == 0) {
      flags.audit_hash = true;
      continue;
    }
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s [--jobs N] [--audit-hash]\n", argv[0]);
        std::exit(2);
      }
      value = argv[++i];
    } else {
      std::fprintf(stderr,
                   "%s: unknown argument '%s'\n"
                   "usage: %s [--jobs N] [--audit-hash]\n",
                   argv[0], arg, argv[0]);
      std::exit(2);
    }
    char* end = nullptr;
    jobs = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || jobs < 0) {
      std::fprintf(stderr, "%s: invalid --jobs value '%s'\n", argv[0], value);
      std::exit(2);
    }
  }
  flags.jobs = static_cast<int>(jobs);
  return flags;
}

// Back-compat shim for benches that only fan out (no sweep config).
inline int ParseJobs(int argc, char** argv) {
  return ParseBenchFlags(argc, argv).jobs;
}

// The sweep configuration every bench hands to the figure drivers: --jobs
// fan-out, the optional --audit-hash end-state line, plus the process-wide
// metric sink.
inline SweepConfig BenchSweepConfig(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  SweepConfig sweep;
  sweep.jobs = flags.jobs;
  sweep.print_audit_hash = flags.audit_hash;
  sweep.registry = &BenchRegistry();
  std::fprintf(stderr, "[bench] sweep jobs: %d\n", ResolveJobs(sweep.jobs));
  return sweep;
}

// Prints the cumulative sweep.* metrics recorded by SweepRunner — the
// wall-clock / points-per-second line the --jobs comparisons quote. Goes to
// stderr so stdout stays byte-identical across --jobs values.
inline void PrintSweepSummary() {
  const MetricRegistry& registry = BenchRegistry();
  if (!registry.Has("sweep.runs")) return;
  const double runs = registry.Value("sweep.runs");
  const double wall_us = registry.Value("sweep.wall_us");
  std::fprintf(stderr, "[sweep] %.0f runs in %.2f s wall (%.2f points/s)\n",
               runs, wall_us / 1e6,
               wall_us > 0 ? runs * 1e6 / wall_us : 0.0);
}

inline double TraceScale() {
  const char* env = std::getenv("WEBDB_TRACE_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return (scale > 0.0 && scale <= 1.0) ? scale : 1.0;
}

inline StockTraceConfig BenchTraceConfig() {
  StockTraceConfig config;
  if (const char* env = std::getenv("WEBDB_TRACE_SEED")) {
    config.seed = static_cast<uint64_t>(std::atoll(env));
  }
  const double scale = TraceScale();
  config.duration =
      static_cast<SimDuration>(static_cast<double>(config.duration) * scale);
  return config;
}

inline const Trace& FullTrace() {
  static const Trace* trace = [] {
    const StockTraceConfig config = BenchTraceConfig();
    std::fprintf(stderr,
                 "[bench] generating trace (%.0f s, seed %llu)...\n",
                 ToSeconds(config.duration),
                 static_cast<unsigned long long>(config.seed));
    auto* t = new Trace(GenerateStockTrace(config));
    std::fprintf(stderr, "[bench] trace ready: %zu queries, %zu updates\n",
                 t->queries.size(), t->updates.size());
    return t;
  }();
  return *trace;
}

// The 300-second slice used by the Section 5.2 / 5.3 experiments (scaled
// along with the trace).
inline Trace AdaptabilityTrace() {
  const SimDuration window = static_cast<SimDuration>(
      static_cast<double>(Seconds(300)) * TraceScale());
  return FullTrace().Prefix(window);
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper reference: %s\n", paper.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace webdb

#endif  // WEBDB_BENCH_BENCH_COMMON_H_
