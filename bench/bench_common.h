// Shared setup for the figure benches: one full-scale synthetic trace,
// generated once per process (or scaled down via WEBDB_TRACE_SCALE for quick
// runs), plus small printing helpers.
//
// Environment knobs:
//   WEBDB_TRACE_SCALE=<0..1>  scale trace duration (default 1.0, full 30 min)
//   WEBDB_TRACE_SEED=<n>      trace seed (default 2007)

#ifndef WEBDB_BENCH_BENCH_COMMON_H_
#define WEBDB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/stock_trace_generator.h"
#include "trace/trace.h"
#include "util/time.h"

namespace webdb {
namespace bench {

inline double TraceScale() {
  const char* env = std::getenv("WEBDB_TRACE_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return (scale > 0.0 && scale <= 1.0) ? scale : 1.0;
}

inline StockTraceConfig BenchTraceConfig() {
  StockTraceConfig config;
  if (const char* env = std::getenv("WEBDB_TRACE_SEED")) {
    config.seed = static_cast<uint64_t>(std::atoll(env));
  }
  const double scale = TraceScale();
  config.duration =
      static_cast<SimDuration>(static_cast<double>(config.duration) * scale);
  return config;
}

inline const Trace& FullTrace() {
  static const Trace* trace = [] {
    const StockTraceConfig config = BenchTraceConfig();
    std::fprintf(stderr,
                 "[bench] generating trace (%.0f s, seed %llu)...\n",
                 ToSeconds(config.duration),
                 static_cast<unsigned long long>(config.seed));
    auto* t = new Trace(GenerateStockTrace(config));
    std::fprintf(stderr, "[bench] trace ready: %zu queries, %zu updates\n",
                 t->queries.size(), t->updates.size());
    return t;
  }();
  return *trace;
}

// The 300-second slice used by the Section 5.2 / 5.3 experiments (scaled
// along with the trace).
inline Trace AdaptabilityTrace() {
  const SimDuration window = static_cast<SimDuration>(
      static_cast<double>(Seconds(300)) * TraceScale());
  return FullTrace().Prefix(window);
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper reference: %s\n", paper.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace webdb

#endif  // WEBDB_BENCH_BENCH_COMMON_H_
