// Figure 9 — adaptability of QUTS to changing user preferences: a 300 s
// slice of the trace, four 75 s intervals alternating qos:qod = 1:5 / 5:1.
//
// Reproduced claims: (a-c) the gained profit closely tracks the maximal
// submitted profit as preferences flip; (d) ρ follows the QoS trend
// (low-high-low-high) within [~0.55, 1].

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "exp/figures.h"
#include "exp/report.h"
#include "util/table.h"

namespace {

void PrintProfitSeries(const char* title, const std::vector<double>& gained,
                       const std::vector<double>& max, size_t bucket_s) {
  std::printf("--- %s ($/s, 5s moving window, sampled every %zus) ---\n",
              title, bucket_s);
  webdb::AsciiTable table({"t (s)", "gained", "max"});
  for (size_t t = 0; t < gained.size(); t += bucket_s) {
    table.AddRow({std::to_string(t), webdb::AsciiTable::Num(gained[t], 1),
                  webdb::AsciiTable::Num(max[t], 1)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace webdb;
  const SweepConfig sweep = bench::BenchSweepConfig(argc, argv);
  const Trace trace = bench::AdaptabilityTrace();

  bench::PrintHeader(
      "Figure 9: QUTS under changing QCs (4 intervals, 1:5 <-> 5:1)",
      "gained profit tracks the maximal line; rho follows the QoS trend "
      "low-high-low-high in [~0.55, 1]");

  const AdaptabilityResult result = RunFigure9(trace);
  const size_t sample =
      result.total_gained.size() >= 30 ? result.total_gained.size() / 30 : 1;
  PrintProfitSeries("Figure 9a: total profit", result.total_gained,
                    result.total_max, sample);
  PrintProfitSeries("Figure 9b: QoS profit", result.qos_gained,
                    result.qos_max, sample);
  PrintProfitSeries("Figure 9c: QoD profit", result.qod_gained,
                    result.qod_max, sample);

  std::printf("--- Figure 9d: rho over time ---\n");
  AsciiTable rho_table({"t (s)", "rho"});
  const size_t rho_sample =
      result.rho.size() >= 30 ? result.rho.size() / 30 : 1;
  for (size_t i = 0; i < result.rho.size(); i += rho_sample) {
    rho_table.AddRow({AsciiTable::Num(ToSeconds(result.rho[i].first), 0),
                      AsciiTable::Num(result.rho[i].second, 3)});
  }
  std::printf("%s", rho_table.Render().c_str());

  std::printf("total profit percentage: %.3f (QOS%% %.3f + QOD%% %.3f)\n",
              result.raw.total_pct, result.raw.qos_pct, result.raw.qod_pct);

  if (const std::string dir = CsvDirFromEnv(); !dir.empty()) {
    WriteSeriesCsv(dir + "/fig9_profit.csv",
                   {"total_gained", "total_max", "qos_gained", "qos_max",
                    "qod_gained", "qod_max"},
                   {result.total_gained, result.total_max, result.qos_gained,
                    result.qos_max, result.qod_gained, result.qod_max});
    std::vector<std::pair<double, double>> rho_pairs;
    for (const auto& [t, rho] : result.rho) {
      rho_pairs.emplace_back(ToSeconds(t), rho);
    }
    WritePairsCsv(dir + "/fig9_rho.csv", "t_s", "rho", rho_pairs);
    std::printf("[csv] wrote fig9_profit.csv and fig9_rho.csv to %s\n",
                dir.c_str());
  }

  std::printf("--- beyond the paper: all schedulers on this schedule ---\n");
  AsciiTable comparison({"policy", "QOS%", "QOD%", "total%"});
  for (const auto& row : RunAdaptabilityComparison(trace, 7, sweep)) {
    comparison.AddRow({row.variant, AsciiTable::Num(row.qos_pct, 3),
                       AsciiTable::Num(row.qod_pct, 3),
                       AsciiTable::Num(row.total_pct, 3)});
  }
  std::printf("%s", comparison.Render().c_str());
  bench::PrintSweepSummary();
  return 0;
}
