// Figure 1 — Impact of scheduling on the response-time / staleness
// trade-off: FIFO vs FIFO-UH vs FIFO-QH with no Quality Contracts.
//
// Paper values (their trace): FIFO [322 ms, 0.07 uu], FIFO-UH [11591 ms,
// 0 uu], FIFO-QH [23 ms, 0.26 uu]. The reproduced claim is the dominance
// structure: UH freshest/slowest, QH fastest/stalest, FIFO in between.

#include <cstdio>

#include "bench_common.h"
#include "exp/figures.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace webdb;
  const SweepConfig sweep = bench::BenchSweepConfig(argc, argv);
  bench::PrintHeader(
      "Figure 1: staleness vs response time under naive policies",
      "FIFO [322ms, 0.07uu]  FIFO-UH [11591ms, 0uu]  FIFO-QH [23ms, 0.26uu]");

  const auto rows = RunFigure1(bench::FullTrace(), sweep);
  AsciiTable table({"policy", "avg response time (ms)", "avg staleness (#uu)",
                    "peak queued queries", "peak queued updates"});
  for (const auto& row : rows) {
    table.AddRow({row.policy, AsciiTable::Num(row.avg_response_ms, 1),
                  AsciiTable::Num(row.avg_staleness_uu, 3),
                  std::to_string(row.peak_queued_queries),
                  std::to_string(row.peak_queued_updates)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "expected shape: fifo-uh has lowest staleness & worst response time;\n"
      "fifo-qh has lowest response time & worst staleness; fifo in between.\n");
  bench::PrintSweepSummary();
  return 0;
}
