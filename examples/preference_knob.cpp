// Preference knob: the "cell phone plan" usability story of Section 2.2 —
// the service provider fixes the QC shape and the user only turns a knob
// between "fresh data" and "fast answers". Sweeps the knob and shows how
// QUTS re-allocates the CPU (rho) and how the earned profit mix follows.
//
//   $ ./examples/preference_knob

#include <cstdio>

#include "exp/experiment.h"
#include "exp/scheduler_factory.h"
#include "trace/stock_trace_generator.h"
#include "util/table.h"

using namespace webdb;

int main() {
  StockTraceConfig config;
  config.seed = 17;
  config.num_stocks = 512;
  config.duration = Seconds(120);
  config.query_rate = 40.0;
  config.query_spike_count = 2;
  config.query_spike_len_s = 15.0;
  config.update_rate_start = 260.0;
  config.update_rate_end = 200.0;
  const Trace trace = GenerateStockTrace(config);

  std::printf("the user's knob: 0.1 = \"I want speed\" ... 0.9 = \"I want "
              "freshness\"\n");
  AsciiTable table({"knob (QODmax%)", "final rho", "QOS%", "QOD%", "total%"});
  for (int i = 1; i <= 9; i += 2) {
    const double knob = static_cast<double>(i) / 10.0;
    auto scheduler = MakeScheduler(SchedulerKind::kQuts);
    ExperimentOptions options;
    options.qc = Table4Profile(knob, QcShape::kStep);
    const ExperimentResult result =
        RunExperiment(trace, scheduler.get(), options);
    const double final_rho =
        result.rho_series.empty() ? 0.0 : result.rho_series.back().second;
    table.AddRow({AsciiTable::Num(knob, 1), AsciiTable::Num(final_rho, 3),
                  AsciiTable::Num(result.qos_pct, 3),
                  AsciiTable::Num(result.qod_pct, 3),
                  AsciiTable::Num(result.total_pct, 3)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "as the knob moves toward freshness, rho falls from 1.0 toward the\n"
      "0.5 floor (Eq. 4) and the earned profit mix shifts from QoS to QoD.\n");
  return 0;
}
