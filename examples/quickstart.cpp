// Quickstart: build a tiny web-database, attach Quality Contracts to a
// handful of queries, run them under QUTS and inspect the outcome.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/quts_scheduler.h"
#include "db/database.h"
#include "db/symbol_table.h"
#include "server/web_database_server.h"

using namespace webdb;

int main() {
  // A 4-stock database with human-readable tickers.
  SymbolTable symbols;
  const ItemId ibm = symbols.Intern("IBM");
  const ItemId aapl = symbols.Intern("AAPL");
  symbols.Intern("MSFT");
  symbols.Intern("GOOG");
  Database db(symbols.Size());

  // QUTS with the paper's defaults: tau = 10 ms, omega = 1 s.
  QutsScheduler scheduler{QutsScheduler::Options{}};
  WebDatabaseServer server(&db, &scheduler);

  // A user who cares about freshness: $2 for fresh data, $1 for a fast
  // answer within 50 ms (Figure 2 of the paper).
  const QualityContract freshness_lover =
      QualityContract::Make(QcShape::kStep, /*qos_max=*/1.0,
                            /*rt_max=*/Millis(50), /*qod_max=*/2.0,
                            /*uu_max=*/1.0);
  // A user who cares about latency: linear decay, $2 at instant response.
  const QualityContract latency_lover =
      QualityContract::Make(QcShape::kLinear, /*qos_max=*/2.0,
                            /*rt_max=*/Millis(50), /*qod_max=*/1.0,
                            /*uu_max=*/2.0);

  // Updates stream in from the exchange while queries arrive.
  server.SubmitUpdate(ibm, 105.25, Millis(2));
  server.SubmitQuery(QueryType::kLookup, {ibm}, freshness_lover, Millis(6));
  server.sim().ScheduleAt(Millis(3), [&] {
    server.SubmitUpdate(aapl, 188.10, Millis(2));
    server.SubmitQuery(QueryType::kComparison, {ibm, aapl}, latency_lover,
                       Millis(8));
  });
  server.sim().ScheduleAt(Millis(5), [&] {
    server.SubmitUpdate(ibm, 105.30, Millis(2));  // supersedes nothing: applied
    server.SubmitQuery(QueryType::kMovingAverage, {ibm}, freshness_lover,
                       Millis(7));
  });

  server.Run();

  std::printf("=== per-query outcome ===\n");
  for (const Query& query : server.queries()) {
    std::printf(
        "%-15s items=%zu  state=%-9s  rt=%5.1fms  staleness=%.0f  "
        "profit=$%.2f (qos $%.2f + qod $%.2f)\n",
        ToString(query.type).c_str(), query.items.size(),
        ToString(query.state).c_str(), ToMillis(query.ResponseTime()),
        query.staleness, query.profit.Total(), query.profit.qos,
        query.profit.qod);
  }

  std::printf("\n=== server metrics ===\n%s",
              server.metrics().Summary().c_str());
  std::printf("earned $%.2f of a possible $%.2f (%.0f%%)\n",
              server.ledger().total_gained(), server.ledger().total_max(),
              server.ledger().TotalPct() * 100.0);
  std::printf("final IBM price: %.2f (fresh: %s)\n", db.Item(ibm).value,
              db.Item(ibm).IsFresh() ? "yes" : "no");
  return 0;
}
