// Flash crowd: the paper's motivating scenario — breaking news triggers a
// tsunami of stock trades (updates) at the same time as an avalanche of
// queries from jittery investors. Compares the four schedulers on the same
// burst and shows why a fixed priority between queries and updates loses.
//
//   $ ./examples/flash_crowd

#include <cstdio>

#include "exp/experiment.h"
#include "exp/scheduler_factory.h"
#include "trace/stock_trace_generator.h"
#include "util/table.h"

using namespace webdb;

int main() {
  // One minute of trading on 256 stocks with a violent mid-minute spike:
  // query rate x5 for 10 seconds while updates pour in.
  StockTraceConfig config;
  config.seed = 99;
  config.num_stocks = 256;
  config.duration = Seconds(60);
  config.query_rate = 40.0;
  config.query_rate_wobble = 0.1;
  config.query_spike_count = 1;
  config.query_spike_gain = 4.0;
  config.query_spike_len_s = 15.0;
  config.update_rate_start = 250.0;
  config.update_rate_end = 200.0;
  const Trace trace = GenerateStockTrace(config);
  std::printf("flash-crowd trace: %zu queries, %zu updates over %.0f s\n",
              trace.queries.size(), trace.updates.size(),
              ToSeconds(trace.EndTime()));

  // Users split between latency lovers and freshness lovers (balanced QCs).
  AsciiTable table({"policy", "QOS%", "QOD%", "total%", "avg rt (ms)",
                    "avg staleness", "dropped"});
  for (const SchedulerKind kind : PaperSchedulers()) {
    auto scheduler = MakeScheduler(kind);
    ExperimentOptions options;
    options.qc = BalancedProfile(QcShape::kStep);
    const ExperimentResult result =
        RunExperiment(trace, scheduler.get(), options);
    table.AddRow({result.scheduler, AsciiTable::Num(result.qos_pct, 3),
                  AsciiTable::Num(result.qod_pct, 3),
                  AsciiTable::Num(result.total_pct, 3),
                  AsciiTable::Num(result.avg_response_ms, 1),
                  AsciiTable::Num(result.avg_staleness, 3),
                  std::to_string(result.queries_dropped)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "UH keeps data fresh but starves queries during the burst; QH answers\n"
      "fast on stale prices; QUTS splits the CPU by the submitted QCs.\n");
  return 0;
}
