// Replica cluster: the QC framework applied to replica selection (the
// paper's cited follow-on application). Two replicas — one on a slow
// propagation link — serve a mixed crowd of latency lovers and freshness
// lovers; QC-aware routing sends each query where its contract is worth the
// most.
//
//   $ ./examples/replica_cluster

#include <cstdio>
#include <memory>

#include "cluster/web_database_cluster.h"
#include "core/quts_scheduler.h"
#include "qc/qc_spec.h"
#include "util/rng.h"
#include "util/table.h"

using namespace webdb;

int main() {
  QualityContract latency_lover, freshness_lover;
  std::string error;
  if (!ParseQcSpec("step qos=$8@40ms qod=$2@1", &latency_lover, &error) ||
      !ParseQcSpec("step qos=$2@200ms qod=$8@1", &freshness_lover, &error)) {
    std::fprintf(stderr, "bad spec: %s\n", error.c_str());
    return 1;
  }

  AsciiTable table({"routing", "total profit %", "replica-0 share",
                    "replica-1 share"});
  for (RoutingPolicy policy :
       {RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastLoaded,
        RoutingPolicy::kQcAware}) {
    ClusterConfig config;
    config.num_replicas = 2;
    config.routing.policy = policy;
    // Replica 1 sees updates 100 ms late (a WAN replica): fine for latency
    // lovers, costly for freshness lovers.
    config.replica_delays = {0, Millis(100)};
    WebDatabaseCluster cluster(
        64, [] { return std::make_unique<QutsScheduler>(
                     QutsScheduler::Options{}); },
        config);

    Rng rng(4);
    for (int i = 0; i < 400; ++i) {
      const SimTime t = Millis(5) * i;
      cluster.sim().ScheduleAt(t, [&cluster, &rng, &latency_lover,
                                   &freshness_lover, i] {
        const ItemId item = static_cast<ItemId>(rng.UniformInt(0, 63));
        cluster.SubmitUpdate(item, 100.0 + i, Millis(2));
        if (i % 2 == 0) {
          const bool fresh = rng.Bernoulli(0.5);
          cluster.SubmitQuery(QueryType::kLookup, {item},
                              fresh ? freshness_lover : latency_lover,
                              Millis(6));
        }
      });
    }
    cluster.Run();

    const int64_t total =
        cluster.RoutedCount(0) + cluster.RoutedCount(1);
    table.AddRow(
        {ToString(policy), AsciiTable::Num(cluster.TotalPct() * 100.0, 1),
         AsciiTable::Num(100.0 * cluster.RoutedCount(0) / total, 1) + "%",
         AsciiTable::Num(100.0 * cluster.RoutedCount(1) / total, 1) + "%"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "QC-aware routing keeps freshness lovers on the synchronous replica\n"
      "and uses the lagging replica for latency lovers' overflow.\n");
  return 0;
}
