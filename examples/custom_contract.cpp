// Custom contracts: Quality Contracts accept any non-increasing profit
// function, not just the step/linear shapes of the paper. This example
// defines a quadratic-decay QoS function and a two-tier QoD function, runs
// them against QUTS, and validates the non-increasing property up front.
//
//   $ ./examples/custom_contract

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/quts_scheduler.h"
#include "db/database.h"
#include "qc/profit_function.h"
#include "server/web_database_server.h"

using namespace webdb;

namespace {

// profit(rt) = max * (1 - (rt / cutoff)^2): forgiving for small delays,
// falling fast near the deadline.
class QuadraticDecay final : public ProfitFunction {
 public:
  QuadraticDecay(double max_profit, double cutoff_ms)
      : max_(max_profit), cutoff_(cutoff_ms) {}

  double Profit(double x) const override {
    if (x >= cutoff_) return 0.0;
    const double frac = x / cutoff_;
    return max_ * (1.0 - frac * frac);
  }
  double MaxProfit() const override { return max_; }
  double Cutoff() const override { return cutoff_; }
  std::string DebugString() const override { return "quadratic-decay"; }

 private:
  double max_;
  double cutoff_;
};

// Two-tier freshness: full profit for perfectly fresh data, half profit for
// at most two missed updates, nothing beyond.
class TieredFreshness final : public ProfitFunction {
 public:
  explicit TieredFreshness(double max_profit) : max_(max_profit) {}

  double Profit(double uu) const override {
    if (uu < 1.0) return max_;
    if (uu < 3.0) return max_ / 2.0;
    return 0.0;
  }
  double MaxProfit() const override { return max_; }
  double Cutoff() const override { return 3.0; }
  std::string DebugString() const override { return "tiered-freshness"; }

 private:
  double max_;
};

}  // namespace

int main() {
  auto qos = std::make_shared<QuadraticDecay>(/*max=*/4.0, /*cutoff=*/80.0);
  auto qod = std::make_shared<TieredFreshness>(/*max=*/6.0);

  // Validate the contract's core requirement before using it.
  if (!IsNonIncreasing(*qos, 200.0, 1000) ||
      !IsNonIncreasing(*qod, 10.0, 1000)) {
    std::fprintf(stderr, "custom profit functions must be non-increasing\n");
    return 1;
  }
  const QualityContract contract(qos, qod, QcCombination::kQosIndependent);
  std::printf("contract: %s\n", contract.DebugString().c_str());

  Database db(8);
  QutsScheduler::Options quts_options;
  quts_options.atom_time = Millis(5);
  QutsScheduler scheduler(quts_options);
  WebDatabaseServer server(&db, &scheduler);

  // Saturate item 0 with updates while queries keep asking for it.
  for (int i = 0; i < 40; ++i) {
    server.sim().ScheduleAt(Millis(3) * i, [&server, i] {
      server.SubmitUpdate(0, 100.0 + i, Millis(2));
      if (i % 2 == 0) {
        // Re-use the same contract for every query.
        // (Contracts are cheap shared-immutable handles.)
      }
    });
  }
  std::vector<const Query*> queries;
  for (int i = 0; i < 10; ++i) {
    server.sim().ScheduleAt(Millis(12) * i, [&server, &queries, contract] {
      queries.push_back(server.SubmitQuery(QueryType::kLookup, {0}, contract,
                                           Millis(7)));
    });
  }
  server.Run();

  std::printf("\n%-6s %-10s %-8s %-10s %s\n", "query", "rt (ms)", "uu",
              "profit", "tier");
  for (const Query* query : queries) {
    const char* tier = query->staleness < 1.0   ? "fresh"
                       : query->staleness < 3.0 ? "half-credit"
                                                : "stale";
    std::printf("%-6llu %-10.1f %-8.0f $%-9.2f %s\n",
                static_cast<unsigned long long>(TxnIndex(query->id)),
                ToMillis(query->ResponseTime()), query->staleness,
                query->profit.Total(), tier);
  }
  std::printf("\nearned $%.2f of $%.2f (%.0f%%), final rho %.2f\n",
              server.ledger().total_gained(), server.ledger().total_max(),
              server.ledger().TotalPct() * 100.0, scheduler.rho());
  return 0;
}
