#include "exp/trace_feeder.h"

#include <gtest/gtest.h>

#include "sched/fifo_scheduler.h"

namespace webdb {
namespace {

Trace TinyTrace() {
  Trace trace;
  trace.num_items = 2;
  trace.queries = {
      {Millis(10), QueryType::kLookup, {0}, Millis(5)},
      {Millis(30), QueryType::kLookup, {1}, Millis(5)},
  };
  trace.updates = {
      {Millis(10), 0, 1.0, Millis(2)},
      {Millis(20), 1, 2.0, Millis(2)},
  };
  return trace;
}

TEST(TraceFeederTest, SubmitsEveryRecordAtItsArrivalTime) {
  const Trace trace = TinyTrace();
  Database db(trace.num_items);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  TraceFeeder feeder(&server, &trace,
                     [](const QueryRecord&) { return QualityContract(); });
  feeder.Start();
  server.Run();
  EXPECT_TRUE(feeder.Done());
  ASSERT_EQ(server.queries().size(), 2u);
  ASSERT_EQ(server.updates().size(), 2u);
  EXPECT_EQ(server.queries()[0].arrival, Millis(10));
  EXPECT_EQ(server.queries()[1].arrival, Millis(30));
  EXPECT_EQ(server.updates()[0].arrival, Millis(10));
  EXPECT_EQ(server.updates()[1].arrival, Millis(20));
}

TEST(TraceFeederTest, UpdateSubmittedBeforeQueryOnTie) {
  const Trace trace = TinyTrace();
  Database db(trace.num_items);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  TraceFeeder feeder(&server, &trace,
                     [](const QueryRecord&) { return QualityContract(); });
  feeder.Start();
  server.Run();
  // Both arrive at 10ms; the update is registered first, so the FIFO queue
  // runs it first and the query reads fresh data.
  EXPECT_DOUBLE_EQ(server.queries()[0].staleness, 0.0);
}

TEST(TraceFeederTest, AssignerReceivesRecords) {
  const Trace trace = TinyTrace();
  Database db(trace.num_items);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  int calls = 0;
  TraceFeeder feeder(&server, &trace, [&](const QueryRecord& record) {
    ++calls;
    EXPECT_FALSE(record.items.empty());
    return QualityContract::Make(QcShape::kStep, 1.0, Millis(50), 1.0, 1.0);
  });
  feeder.Start();
  server.Run();
  EXPECT_EQ(calls, 2);
  EXPECT_DOUBLE_EQ(server.ledger().qos_max(), 2.0);
}

TEST(TraceFeederTest, EmptyTraceIsDoneImmediately) {
  Trace trace;
  trace.num_items = 1;
  Database db(1);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  TraceFeeder feeder(&server, &trace,
                     [](const QueryRecord&) { return QualityContract(); });
  feeder.Start();
  EXPECT_TRUE(feeder.Done());
  server.Run();
  EXPECT_EQ(server.Now(), 0);
}

}  // namespace
}  // namespace webdb
