#include "audit/invariant_auditor.h"

#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "exp/scheduler_factory.h"
#include "qc/qc_generator.h"
#include "server/web_database_server.h"
#include "util/rng.h"

namespace webdb {
namespace {

// --- FNV-1a known-answer vectors --------------------------------------------
// Reference values from the FNV specification (Fowler/Noll/Vo, 64-bit 1a).

TEST(Fnv1aHasherTest, EmptyInputIsOffsetBasis) {
  audit::Fnv1aHasher hasher;
  EXPECT_EQ(hasher.hash(), 0xcbf29ce484222325ULL);
}

TEST(Fnv1aHasherTest, KnownAnswerVectors) {
  {
    audit::Fnv1aHasher hasher;
    hasher.MixBytes("a", 1);
    EXPECT_EQ(hasher.hash(), 0xaf63dc4c8601ec8cULL);
  }
  {
    audit::Fnv1aHasher hasher;
    hasher.MixBytes("foobar", 6);
    EXPECT_EQ(hasher.hash(), 0x85944171f73967e8ULL);
  }
}

TEST(Fnv1aHasherTest, MixU64IsLittleEndianByteSequence) {
  audit::Fnv1aHasher by_word;
  by_word.MixU64(0x0102030405060708ULL);
  audit::Fnv1aHasher by_byte;
  for (uint8_t byte : {0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01}) {
    by_byte.MixByte(byte);
  }
  EXPECT_EQ(by_word.hash(), by_byte.hash());
}

TEST(Fnv1aHasherTest, MixDoubleCanonicalizesNegativeZero) {
  audit::Fnv1aHasher pos;
  pos.MixDouble(0.0);
  audit::Fnv1aHasher neg;
  neg.MixDouble(-0.0);
  EXPECT_EQ(pos.hash(), neg.hash());

  audit::Fnv1aHasher one;
  one.MixDouble(1.0);
  EXPECT_NE(one.hash(), pos.hash());
}

TEST(Fnv1aHasherTest, OrderSensitive) {
  audit::Fnv1aHasher ab;
  ab.MixU64(1);
  ab.MixU64(2);
  audit::Fnv1aHasher ba;
  ba.MixU64(2);
  ba.MixU64(1);
  EXPECT_NE(ab.hash(), ba.hash());
}

// --- invariant counters ------------------------------------------------------

TEST(InvariantCountersTest, NamesAreStableKebabCase) {
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kSimTimeMonotonic),
               "sim-time-monotonic");
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kLockTableConsistent),
               "lock-table-consistent");
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kConflictFree),
               "conflict-free");
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kDualQueueConservation),
               "dual-queue-conservation");
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kRegisterNewestWins),
               "register-newest-wins");
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kLedgerConservation),
               "ledger-conservation");
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kEventArenaConsistent),
               "event-arena-consistent");
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kTxnQueueConsistent),
               "txn-queue-consistent");
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kAdmissionConservation),
               "admission-conservation");
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kFusionGroup),
               "fusion-group");
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kFusionCache),
               "fusion-cache");
  EXPECT_STREQ(audit::InvariantName(audit::Invariant::kRendezvousGroup),
               "rendezvous-group");
}

TEST(InvariantCountersTest, CountAccumulatesPerInvariant) {
  audit::ResetCounters();
  EXPECT_EQ(audit::TotalChecksPerformed(), 0u);
  audit::Count(audit::Invariant::kSimTimeMonotonic);
  audit::Count(audit::Invariant::kSimTimeMonotonic);
  audit::Count(audit::Invariant::kLedgerConservation);
  EXPECT_EQ(audit::ChecksPerformed(audit::Invariant::kSimTimeMonotonic), 2u);
  EXPECT_EQ(audit::ChecksPerformed(audit::Invariant::kLedgerConservation), 1u);
  EXPECT_EQ(audit::ChecksPerformed(audit::Invariant::kConflictFree), 0u);
  EXPECT_EQ(audit::TotalChecksPerformed(), 3u);
  audit::ResetCounters();
  EXPECT_EQ(audit::TotalChecksPerformed(), 0u);
}

TEST(InvariantCountersTest, AuditThatMacroCountsAndPasses) {
  audit::ResetCounters();
  WEBDB_AUDIT_THAT(audit::Invariant::kConflictFree, 1 + 1 == 2, "arithmetic");
  EXPECT_EQ(audit::ChecksPerformed(audit::Invariant::kConflictFree), 1u);
}

TEST(InvariantAuditorDeathTest, FailAbortsWithInvariantName) {
  EXPECT_DEATH(audit::Fail(audit::Invariant::kRegisterNewestWins, "f.cc", 12,
                           "detail text"),
               "register-newest-wins");
}

TEST(InvariantAuditorDeathTest, FusionGroupFailureNamesTheInvariant) {
  EXPECT_DEATH(audit::Fail(audit::Invariant::kFusionGroup, "f.cc", 34,
                           "member settled before its group's scan completed"),
               "fusion-group.*settled before");
}

TEST(InvariantAuditorDeathTest, FusionGroupAuditThatAbortsOnViolation) {
  // The macro the server's fusion-group section is written in terms of:
  // a false condition must abort with the kebab-case name.
  EXPECT_DEATH(
      WEBDB_AUDIT_THAT(audit::Invariant::kFusionGroup, 1 == 2,
                       "membership not disjoint"),
      "fusion-group.*membership not disjoint");
}

TEST(InvariantAuditorDeathTest, FusionCacheFailureNamesTheInvariant) {
  EXPECT_DEATH(audit::Fail(audit::Invariant::kFusionCache, "f.cc", 56,
                           "entry outlived an update to item 3"),
               "fusion-cache.*outlived an update");
}

TEST(InvariantAuditorDeathTest, FusionCacheAuditThatAbortsOnViolation) {
  EXPECT_DEATH(
      WEBDB_AUDIT_THAT(audit::Invariant::kFusionCache, 1 == 2,
                       "hit settled against a later commit time"),
      "fusion-cache.*later commit time");
}

TEST(InvariantAuditorDeathTest, RendezvousGroupFailureNamesTheInvariant) {
  EXPECT_DEATH(audit::Fail(audit::Invariant::kRendezvousGroup, "f.cc", 78,
                           "member shard set differs from its leader's"),
               "rendezvous-group.*shard set differs");
}

TEST(InvariantAuditorDeathTest, RendezvousGroupAuditThatAbortsOnViolation) {
  EXPECT_DEATH(
      WEBDB_AUDIT_THAT(audit::Invariant::kRendezvousGroup, 1 == 2,
                       "group formed with rendezvous disabled"),
      "rendezvous-group.*rendezvous disabled");
}

// --- whole-server audit and end-state hash -----------------------------------

// A small deterministic workload that exercises commits, drops,
// invalidations, restarts and preemptions across two schedulers.
void RunWorkload(WebDatabaseServer& server, uint64_t seed) {
  Rng rng(seed);
  QcGenerator qc_gen(BalancedProfile(QcShape::kStep));
  SimTime t = 0;
  for (int round = 0; round < 300; ++round) {
    t += rng.UniformInt(0, Millis(3));
    const bool is_query = rng.Bernoulli(0.4);
    server.sim().ScheduleAt(t, [&server, &rng, &qc_gen, is_query] {
      if (is_query) {
        server.SubmitQuery(
            QueryType::kLookup,
            {static_cast<ItemId>(rng.UniformInt(0, 5))}, qc_gen.Next(rng),
            rng.UniformInt(Millis(1), Millis(6)));
      } else {
        server.SubmitUpdate(static_cast<ItemId>(rng.UniformInt(0, 5)),
                            rng.Uniform(1.0, 9.0),
                            rng.UniformInt(Millis(1), Millis(4)));
      }
    });
  }
  server.Run();
}

TEST(ServerAuditTest, AuditInvariantsPassesMidRunAndAfterDrain) {
  Database db(6);
  auto scheduler = MakeScheduler(SchedulerKind::kQuts);
  WebDatabaseServer server(&db, scheduler.get());
  // Mid-run audits (queues non-empty, CPU busy) must hold too.
  for (SimTime t : {Millis(50), Millis(200)}) {
    server.sim().ScheduleAt(t, [&server] { server.AuditInvariants(); });
  }
  audit::ResetCounters();
  RunWorkload(server, 77);
  server.AuditInvariants();
  EXPECT_GT(audit::ChecksPerformed(audit::Invariant::kDualQueueConservation),
            0u);
  EXPECT_GT(audit::ChecksPerformed(audit::Invariant::kLedgerConservation), 0u);
}

TEST(ServerAuditTest, FusedWorkloadAuditsCleanWithLiveGroups) {
  // The same contended workload with shared execution on: single-item
  // lookups over 6 items fuse heavily, so the mid-run audits walk live
  // groups and the fusion-group invariant actually fires its checks.
  Database db(6);
  auto scheduler = MakeScheduler(SchedulerKind::kQuts);
  ServerConfig config;
  config.fusion.enabled = true;
  WebDatabaseServer server(&db, scheduler.get(), config);
  for (SimTime t : {Millis(50), Millis(200), Millis(400)}) {
    server.sim().ScheduleAt(t, [&server] { server.AuditInvariants(); });
  }
  audit::ResetCounters();
  RunWorkload(server, 77);
  server.AuditInvariants();
  EXPECT_TRUE(server.IsQuiescent());
  EXPECT_TRUE(server.fusion_groups().empty());
  EXPECT_GT(server.metrics().queries_fused, 0);
  EXPECT_GT(audit::ChecksPerformed(audit::Invariant::kFusionGroup), 0u);
  EXPECT_GT(audit::ChecksPerformed(audit::Invariant::kDualQueueConservation),
            0u);
}

TEST(ServerAuditTest, CachedWorkloadAuditsCleanWithLiveEntries) {
  // Same contended workload with the fused-result cache on: lookups over 6
  // items refill and re-hit the cache between updates, so the strided
  // audits walk live entries (seq snapshots intact) and committed hits
  // (settled against their source's commit time).
  Database db(6);
  auto scheduler = MakeScheduler(SchedulerKind::kQuts);
  ServerConfig config;
  config.fusion.enabled = true;
  config.fusion.result_cache = true;
  WebDatabaseServer server(&db, scheduler.get(), config);
  for (SimTime t : {Millis(50), Millis(200), Millis(400)}) {
    server.sim().ScheduleAt(t, [&server] { server.AuditInvariants(); });
  }
  audit::ResetCounters();
  RunWorkload(server, 77);
  server.AuditInvariants();
  EXPECT_TRUE(server.IsQuiescent());
  EXPECT_GT(server.metrics().queries_cache_hits, 0);
  EXPECT_GT(server.metrics().cache_fills, 0);
  EXPECT_GT(audit::ChecksPerformed(audit::Invariant::kFusionCache), 0u);
  EXPECT_GT(audit::ChecksPerformed(audit::Invariant::kLedgerConservation), 0u);
}

TEST(ServerAuditTest, RendezvousWorkloadAuditsCleanWithLiveGroups) {
  // Cross-shard rendezvous on a 4-shard QUTS: two-item comparisons over 6
  // items straddle shards, so look-alike pairs fuse in rendezvous domains
  // and the strided audits walk those groups while they are live.
  Database db(6);
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kQuts;
  spec.topology.num_cpus = 4;
  auto scheduler = MakeScheduler(spec);
  ServerConfig config;
  config.fusion.enabled = true;
  config.fusion.cross_shard_rendezvous = true;
  WebDatabaseServer server(&db, scheduler.get(), config);

  Rng rng(77);
  QcGenerator qc_gen(BalancedProfile(QcShape::kStep));
  SimTime t = 0;
  for (int round = 0; round < 400; ++round) {
    t += rng.UniformInt(0, Millis(1));
    const bool is_query = rng.Bernoulli(0.8);
    server.sim().ScheduleAt(t, [&server, &rng, &qc_gen, is_query] {
      if (is_query) {
        // Two fixed flavors so exact look-alikes pile up in the queue.
        const bool flavor = rng.Bernoulli(0.5);
        const std::vector<ItemId> items =
            flavor ? std::vector<ItemId>{0, 3} : std::vector<ItemId>{1, 4};
        server.SubmitQuery(QueryType::kComparison, items, qc_gen.Next(rng),
                           rng.UniformInt(Millis(3), Millis(9)));
      } else {
        server.SubmitUpdate(static_cast<ItemId>(rng.UniformInt(0, 5)),
                            rng.Uniform(1.0, 9.0),
                            rng.UniformInt(Millis(1), Millis(4)));
      }
    });
  }
  // Dense mid-run audits: rendezvous groups live only while their leader
  // is in flight, so sample well inside the stride.
  for (SimTime at = Millis(5); at < Millis(300); at += Millis(5)) {
    server.sim().ScheduleAt(at, [&server] { server.AuditInvariants(); });
  }
  audit::ResetCounters();
  server.Run();
  server.AuditInvariants();
  EXPECT_TRUE(server.IsQuiescent());
  EXPECT_TRUE(server.fusion_groups().empty());
  EXPECT_GT(server.metrics().queries_fused, 0);
  EXPECT_GT(audit::ChecksPerformed(audit::Invariant::kRendezvousGroup), 0u);
}

TEST(ServerAuditTest, EndStateHashIsDeterministic) {
  uint64_t hashes[2];
  for (uint64_t& hash : hashes) {
    Database db(6);
    auto scheduler = MakeScheduler(SchedulerKind::kUpdateHigh);
    WebDatabaseServer server(&db, scheduler.get());
    RunWorkload(server, 123);
    hash = server.EndStateHash();
  }
  EXPECT_EQ(hashes[0], hashes[1]);
}

TEST(ServerAuditTest, EndStateHashIsScheduleSensitive) {
  uint64_t by_kind[2];
  const SchedulerKind kinds[] = {SchedulerKind::kFifo,
                                 SchedulerKind::kUpdateHigh};
  for (int i = 0; i < 2; ++i) {
    Database db(6);
    auto scheduler = MakeScheduler(kinds[i]);
    WebDatabaseServer server(&db, scheduler.get());
    RunWorkload(server, 123);
    by_kind[i] = server.EndStateHash();
  }
  // Different policies take different schedules on a contended trace, and
  // the hash must see that.
  EXPECT_NE(by_kind[0], by_kind[1]);
}

TEST(ServerAuditTest, EndStateHashSeesWorkloadDifferences) {
  uint64_t by_seed[2];
  const uint64_t seeds[] = {123, 124};
  for (int i = 0; i < 2; ++i) {
    Database db(6);
    auto scheduler = MakeScheduler(SchedulerKind::kFifo);
    WebDatabaseServer server(&db, scheduler.get());
    RunWorkload(server, seeds[i]);
    by_seed[i] = server.EndStateHash();
  }
  EXPECT_NE(by_seed[0], by_seed[1]);
}

TEST(ServerAuditTest, EmptyServerAuditsCleanAndHashesStably) {
  Database db(2);
  auto scheduler = MakeScheduler(SchedulerKind::kFifo);
  WebDatabaseServer server(&db, scheduler.get());
  server.AuditInvariants();
  const uint64_t before = server.EndStateHash();
  server.Run();  // nothing scheduled
  EXPECT_EQ(server.EndStateHash(), before);
}

}  // namespace
}  // namespace webdb
