// Property tests for shared execution (DESIGN.md §13) on random bursts:
// across seeds, scales and CPU counts — with tenants assigned and DBF
// admission shedding mid-burst — re-derive the fan-out conservation laws
// from the server's own books:
//   * every fused member settles exactly once: the count of committed
//     queries carrying a fused result as a member equals the
//     queries_fused counter, no query ends in kFused, and every group has
//     been torn down by drain time;
//   * arrived = committed + dropped + rejected + shed, globally and per
//     tenant (fusion settles members through the same CommitQuery path, so
//     the tenant books cannot tell a fused commit from a scheduled one);
//   * SweepRunner --jobs values are bit-identical: the worker count is an
//     execution detail, never a schedule input.

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "exp/experiment.h"
#include "exp/overload_scenarios.h"
#include "exp/scheduler_factory.h"
#include "exp/sweep_runner.h"
#include "exp/trace_feeder.h"
#include "qc/qc_generator.h"
#include "server/web_database_server.h"
#include "util/rng.h"

namespace webdb {
namespace {

struct BurstCase {
  uint64_t seed = 0;
  double scale = 0.0;
  int cpus = 1;
};

const std::vector<BurstCase>& Cases() {
  static const std::vector<BurstCase> cases = {
      {11, 5.0, 1}, {12, 10.0, 1}, {13, 20.0, 2},
      {14, 10.0, 4}, {15, 20.0, 4},
  };
  return cases;
}

Trace MakeBurst(const BurstCase& bc, const TenantSet& tenants) {
  OverloadScenarioConfig config;
  config.seed = bc.seed;
  config.scale = bc.scale;
  config.duration = Seconds(2);
  config.num_stocks = 64;
  config.query_rate = 300.0;
  config.update_rate = 60.0;
  Trace trace = MakeOverloadTrace(OverloadScenario::kMarketOpen, config);
  AssignTenants(&trace, tenants, bc.seed);
  return trace;
}

TEST(FusionPropertyTest, FanOutConservationOnRandomBursts) {
  const TenantSet tenants = *TenantSet::Parse("free:4,premium:1");
  for (const BurstCase& bc : Cases()) {
    SCOPED_TRACE("seed " + std::to_string(bc.seed) + " scale " +
                 std::to_string(bc.scale) + " cpus " +
                 std::to_string(bc.cpus));
    const Trace trace = MakeBurst(bc, tenants);

    SchedulerSpec spec;
    spec.kind = SchedulerKind::kQuts;
    spec.topology.num_cpus = bc.cpus;
    std::unique_ptr<CpuSetScheduler> scheduler = MakeScheduler(spec);

    // DBF shedding mid-burst is the adversarial part: shed plans race with
    // group formation, and fused members must be reported unsheddable.
    AdmissionSpec admission_spec;
    admission_spec.kind = AdmissionKind::kDbf;
    admission_spec.tenants = tenants;
    std::unique_ptr<AdmissionController> admission =
        MakeAdmission(admission_spec, bc.cpus);

    Database db(trace.num_items);
    ServerConfig config;
    config.fusion.enabled = true;
    config.admission = admission.get();
    config.tenants = &tenants;
    WebDatabaseServer server(&db, scheduler.get(), config);
    server.ReserveCapacity(trace.queries.size(), trace.updates.size());

    QcGenerator generator(BalancedProfile(QcShape::kStep));
    Rng qc_rng(bc.seed * 31 + 7);
    TraceFeeder feeder(&server, &trace, [&](const QueryRecord&) {
      return generator.Next(qc_rng);
    });
    feeder.Start();
    server.Run();
    ASSERT_TRUE(feeder.Done());
    EXPECT_TRUE(server.IsQuiescent());
    EXPECT_TRUE(server.fusion_groups().empty());
    server.AuditInvariants();

    // Every query settled exactly once, in a terminal state; fused members
    // are the committed queries still pointing at a shared scan result.
    const ServerMetrics& metrics = server.metrics();
    int64_t members_settled = 0;
    std::map<TenantId, int64_t> arrived_by_tenant;
    std::map<TenantId, int64_t> settled_by_tenant;
    for (const Query& query : server.queries()) {
      ++arrived_by_tenant[query.tenant];
      switch (query.state) {
        case TxnState::kCommitted:
          if (query.fused_into != 0) {
            ASSERT_NE(query.fused_result, nullptr);
            ++members_settled;
          }
          ++settled_by_tenant[query.tenant];
          break;
        case TxnState::kDropped:
        case TxnState::kRejected:
        case TxnState::kShed:
          EXPECT_EQ(query.fused_result, nullptr);
          ++settled_by_tenant[query.tenant];
          break;
        default:
          ADD_FAILURE() << "query " << query.id
                        << " not terminal: " << ToString(query.state);
      }
    }
    EXPECT_EQ(members_settled, metrics.queries_fused);
    EXPECT_GT(members_settled, 0) << "burst produced no fusion";
    EXPECT_EQ(arrived_by_tenant, settled_by_tenant);

    // arrived = committed + dropped + rejected + shed, globally...
    EXPECT_EQ(static_cast<int64_t>(trace.queries.size()),
              metrics.queries_committed + metrics.queries_dropped +
                  metrics.queries_rejected + metrics.queries_shed);
    // ...and per tenant against the tenant books the audit gates on.
    for (const auto& [tenant, counters] : metrics.tenants()) {
      EXPECT_EQ(counters.submitted->value(), arrived_by_tenant[tenant])
          << "tenant " << tenant;
      EXPECT_EQ(counters.submitted->value(),
                counters.committed->value() + counters.rejected->value() +
                    counters.shed->value() + counters.dropped->value())
          << "tenant " << tenant;
    }
  }
}

TEST(FusionPropertyTest, SweepJobsAreBitIdentical) {
  const TenantSet tenants = *TenantSet::Parse("free:4,premium:1");
  std::vector<Trace> traces;
  for (const BurstCase& bc : Cases()) traces.push_back(MakeBurst(bc, tenants));

  auto run_with_jobs = [&](int jobs) {
    std::vector<SweepRunner::Point> points;
    for (size_t i = 0; i < Cases().size(); ++i) {
      SweepRunner::Point point;
      point.trace = &traces[i];
      point.spec.kind = SchedulerKind::kQuts;
      point.spec.topology.num_cpus = Cases()[i].cpus;
      point.spec.admission.kind = AdmissionKind::kDbf;
      point.spec.admission.tenants = tenants;
      point.options.qc_seed = Cases()[i].seed * 31 + 7;
      point.options.qc = BalancedProfile(QcShape::kStep);
      point.options.server.fusion.enabled = true;
      point.options.compute_end_state_hash = true;
      points.push_back(point);
    }
    SweepConfig sweep;
    sweep.jobs = jobs;
    sweep.base_seed = 2007;
    return SweepRunner(sweep).RunPoints(points);
  };

  const std::vector<ExperimentResult> serial = run_with_jobs(1);
  const std::vector<ExperimentResult> parallel = run_with_jobs(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].end_state_hash, parallel[i].end_state_hash)
        << "point " << i;
    EXPECT_EQ(serial[i].queries_fused, parallel[i].queries_fused)
        << "point " << i;
    EXPECT_EQ(serial[i].fusion_groups, parallel[i].fusion_groups)
        << "point " << i;
    EXPECT_EQ(serial[i].queries_committed, parallel[i].queries_committed)
        << "point " << i;
    EXPECT_GT(serial[i].queries_fused, 0) << "point " << i;
  }
}

// Class-aware atoms (SchedulerSpec::quts.scan_atom_factor) must be
// bit-identical at the default factor of 1.0 — the knob only changes the
// schedule when actually turned.
TEST(FusionPropertyTest, ScanAtomFactorDefaultIsBitIdentical) {
  const TenantSet tenants = *TenantSet::Parse("free:4,premium:1");
  const Trace trace = MakeBurst(Cases()[3], tenants);
  auto run = [&](double factor) {
    SchedulerSpec spec;
    spec.kind = SchedulerKind::kQuts;
    spec.topology.num_cpus = Cases()[3].cpus;
    spec.quts.scan_atom_factor = factor;
    ExperimentOptions options;
    options.qc_seed = 5;
    options.qc = BalancedProfile(QcShape::kStep);
    options.compute_end_state_hash = true;
    return RunExperiment(trace, spec, options);
  };
  const ExperimentResult base = run(1.0);
  const ExperimentResult again = run(1.0);
  EXPECT_EQ(base.end_state_hash, again.end_state_hash);
  // A genuinely different factor must change the schedule on this
  // scan-heavy burst — otherwise the knob is dead code.
  const ExperimentResult wider = run(3.0);
  EXPECT_NE(base.end_state_hash, wider.end_state_hash);
}

}  // namespace
}  // namespace webdb
