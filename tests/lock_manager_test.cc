#include "txn/lock_manager.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "sched/dual_queue_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "server/web_database_server.h"
#include "util/logging.h"

namespace webdb {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Conflicts(2, LockMode::kShared, {1, 2}).empty());
  lm.Acquire(2, LockMode::kShared, {1, 2});
  EXPECT_TRUE(lm.Conflicts(4, LockMode::kShared, {1, 2}).empty());
  lm.Acquire(4, LockMode::kShared, {2, 3});
  EXPECT_TRUE(lm.HoldsAny(2));
  EXPECT_TRUE(lm.HoldsAny(4));
  const auto holders = lm.SharedHolders(2);
  EXPECT_EQ(holders.size(), 2u);
}

TEST(LockManagerTest, ExclusiveConflictsWithShared) {
  LockManager lm;
  lm.Acquire(2, LockMode::kShared, {5});
  const auto conflicts = lm.Conflicts(3, LockMode::kExclusive, {5});
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], 2u);
}

TEST(LockManagerTest, SharedConflictsWithExclusive) {
  LockManager lm;
  lm.Acquire(3, LockMode::kExclusive, {5});
  EXPECT_EQ(lm.ExclusiveHolder(5), 3u);
  const auto conflicts = lm.Conflicts(2, LockMode::kShared, {4, 5});
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], 3u);
}

TEST(LockManagerTest, NoSelfConflict) {
  LockManager lm;
  lm.Acquire(2, LockMode::kShared, {1});
  EXPECT_TRUE(lm.Conflicts(2, LockMode::kShared, {1}).empty());
}

TEST(LockManagerTest, ConflictsDeduplicated) {
  LockManager lm;
  lm.Acquire(2, LockMode::kShared, {1, 2, 3});
  const auto conflicts = lm.Conflicts(5, LockMode::kExclusive, {1});
  EXPECT_EQ(conflicts.size(), 1u);
  // A query over several items held by the same exclusive holder reports it
  // once.
  LockManager lm2;
  lm2.Acquire(3, LockMode::kExclusive, {1});
  lm2.Acquire(5, LockMode::kExclusive, {2});
  auto multi = lm2.Conflicts(2, LockMode::kShared, {1, 2});
  std::sort(multi.begin(), multi.end());
  EXPECT_EQ(multi, (std::vector<TxnId>{3, 5}));
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager lm;
  lm.Acquire(2, LockMode::kShared, {1, 2, 3});
  lm.ReleaseAll(2);
  EXPECT_FALSE(lm.HoldsAny(2));
  EXPECT_EQ(lm.NumLockedItems(), 0u);
  EXPECT_TRUE(lm.Conflicts(3, LockMode::kExclusive, {1, 2, 3}).empty());
}

TEST(LockManagerTest, ReleaseUnknownIsNoop) {
  LockManager lm;
  lm.ReleaseAll(99);  // must not crash
  EXPECT_FALSE(lm.HoldsAny(99));
}

TEST(LockManagerTest, ReentrantAcquireIsIdempotent) {
  LockManager lm;
  lm.Acquire(2, LockMode::kShared, {1});
  lm.Acquire(2, LockMode::kShared, {1, 2});  // re-acquire 1, add 2
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.NumLockedItems(), 0u);
}

TEST(LockManagerTest, ExclusiveThenReleaseAllowsNewExclusive) {
  LockManager lm;
  lm.Acquire(3, LockMode::kExclusive, {7});
  lm.ReleaseAll(3);
  EXPECT_TRUE(lm.Conflicts(5, LockMode::kExclusive, {7}).empty());
  lm.Acquire(5, LockMode::kExclusive, {7});
  EXPECT_EQ(lm.ExclusiveHolder(7), 5u);
}

TEST(LockManagerTest, AuditConsistencyPassesOnHealthyTable) {
  LockManager lm;
  lm.AuditConsistency();  // empty table is consistent
  lm.Acquire(2, LockMode::kShared, {1, 2});
  lm.Acquire(4, LockMode::kShared, {2, 3});
  lm.Acquire(5, LockMode::kExclusive, {7});
  lm.AuditConsistency();
  lm.ReleaseAll(4);
  lm.AuditConsistency();
  lm.ReleaseAll(2);
  lm.ReleaseAll(5);
  lm.AuditConsistency();
  EXPECT_EQ(lm.NumLockedItems(), 0u);
}

// Section 2.1 write-write handling when two updates on the same item carry
// the same arrival timestamp (same simulator tick): arrival order still
// decides — the later submission supersedes the earlier one, which is
// invalidated without ever running.
TEST(LockManagerServerTest, WriteWriteDropOnTimestampTie) {
  Database db(2);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  // A long-running query keeps the CPU busy so neither update dispatches
  // before both have arrived at the same instant t=0.
  server.SubmitQuery(QueryType::kLookup, {1},
                     QualityContract::Make(QcShape::kStep, 1.0, Millis(50),
                                           1.0, 1.0),
                     Millis(5));
  Update* first = server.SubmitUpdate(0, 1.0, Millis(2));
  Update* second = server.SubmitUpdate(0, 2.0, Millis(2));
  ASSERT_EQ(first->arrival, second->arrival);  // genuine timestamp tie
  EXPECT_GT(second->item_arrival_seq, first->item_arrival_seq);
  server.Run();
  EXPECT_EQ(first->state, TxnState::kInvalidated);
  EXPECT_EQ(second->state, TxnState::kCommitted);
  // The survivor inherited the dropped update's queue position.
  EXPECT_EQ(second->fifo_rank, first->fifo_rank);
  EXPECT_DOUBLE_EQ(db.Item(0).value, 2.0);
  EXPECT_EQ(server.metrics().updates_invalidated, 1);
  server.AuditInvariants();
}

// 2PL-HP priority inversion: a low-priority query is preempted while
// holding shared locks; the high-priority update that wants the item
// restarts it (the query loses its locks and its progress) and runs; the
// query then reacquires the lock from scratch and still commits.
TEST(LockManagerServerTest, RestartThenReacquireUnderPriorityInversion) {
  Database db(2);
  auto sched = MakeUpdateHigh();
  WebDatabaseServer server(&db, sched.get());
  Query* query = server.SubmitQuery(
      QueryType::kLookup, {0},
      QualityContract::Make(QcShape::kStep, 1.0, Millis(100), 1.0, 1.0),
      Millis(10));
  Update* update = nullptr;
  server.sim().ScheduleAt(Millis(1), [&] {
    update = server.SubmitUpdate(0, 3.5, Millis(2));
  });
  server.Run();
  ASSERT_NE(update, nullptr);
  // The conflicting update preempted and restarted the query (2PL-HP: the
  // running query is always the loser), then the query reacquired.
  EXPECT_EQ(update->state, TxnState::kCommitted);
  EXPECT_EQ(query->state, TxnState::kCommitted);
  EXPECT_EQ(query->restarts, 1);
  EXPECT_GT(query->commit_time, update->commit_time);
  EXPECT_DOUBLE_EQ(query->staleness, 0.0);  // reread after the write
  // No leaked locks on either side of the inversion.
  EXPECT_FALSE(server.IsCpuBusy());
  EXPECT_TRUE(server.IsQuiescent());
  server.AuditInvariants();
}

// The conflict-freedom precondition of Acquire is debug-tier
// (WEBDB_DCHECK / audit invariant [conflict-free]): absent in plain
// release builds, active in Debug and -DWEBDB_AUDIT=ON builds.
#if WEBDB_DCHECK_ENABLED
TEST(LockManagerDeathTest, AcquireWithConflictAborts) {
  LockManager lm;
  lm.Acquire(3, LockMode::kExclusive, {1});
  EXPECT_DEATH(lm.Acquire(5, LockMode::kExclusive, {1}), "conflict");
}
#endif

}  // namespace
}  // namespace webdb
