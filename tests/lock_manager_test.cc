#include "txn/lock_manager.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Conflicts(2, LockMode::kShared, {1, 2}).empty());
  lm.Acquire(2, LockMode::kShared, {1, 2});
  EXPECT_TRUE(lm.Conflicts(4, LockMode::kShared, {1, 2}).empty());
  lm.Acquire(4, LockMode::kShared, {2, 3});
  EXPECT_TRUE(lm.HoldsAny(2));
  EXPECT_TRUE(lm.HoldsAny(4));
  const auto holders = lm.SharedHolders(2);
  EXPECT_EQ(holders.size(), 2u);
}

TEST(LockManagerTest, ExclusiveConflictsWithShared) {
  LockManager lm;
  lm.Acquire(2, LockMode::kShared, {5});
  const auto conflicts = lm.Conflicts(3, LockMode::kExclusive, {5});
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], 2u);
}

TEST(LockManagerTest, SharedConflictsWithExclusive) {
  LockManager lm;
  lm.Acquire(3, LockMode::kExclusive, {5});
  EXPECT_EQ(lm.ExclusiveHolder(5), 3u);
  const auto conflicts = lm.Conflicts(2, LockMode::kShared, {4, 5});
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], 3u);
}

TEST(LockManagerTest, NoSelfConflict) {
  LockManager lm;
  lm.Acquire(2, LockMode::kShared, {1});
  EXPECT_TRUE(lm.Conflicts(2, LockMode::kShared, {1}).empty());
}

TEST(LockManagerTest, ConflictsDeduplicated) {
  LockManager lm;
  lm.Acquire(2, LockMode::kShared, {1, 2, 3});
  const auto conflicts = lm.Conflicts(5, LockMode::kExclusive, {1});
  EXPECT_EQ(conflicts.size(), 1u);
  // A query over several items held by the same exclusive holder reports it
  // once.
  LockManager lm2;
  lm2.Acquire(3, LockMode::kExclusive, {1});
  lm2.Acquire(5, LockMode::kExclusive, {2});
  auto multi = lm2.Conflicts(2, LockMode::kShared, {1, 2});
  std::sort(multi.begin(), multi.end());
  EXPECT_EQ(multi, (std::vector<TxnId>{3, 5}));
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager lm;
  lm.Acquire(2, LockMode::kShared, {1, 2, 3});
  lm.ReleaseAll(2);
  EXPECT_FALSE(lm.HoldsAny(2));
  EXPECT_EQ(lm.NumLockedItems(), 0u);
  EXPECT_TRUE(lm.Conflicts(3, LockMode::kExclusive, {1, 2, 3}).empty());
}

TEST(LockManagerTest, ReleaseUnknownIsNoop) {
  LockManager lm;
  lm.ReleaseAll(99);  // must not crash
  EXPECT_FALSE(lm.HoldsAny(99));
}

TEST(LockManagerTest, ReentrantAcquireIsIdempotent) {
  LockManager lm;
  lm.Acquire(2, LockMode::kShared, {1});
  lm.Acquire(2, LockMode::kShared, {1, 2});  // re-acquire 1, add 2
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.NumLockedItems(), 0u);
}

TEST(LockManagerTest, ExclusiveThenReleaseAllowsNewExclusive) {
  LockManager lm;
  lm.Acquire(3, LockMode::kExclusive, {7});
  lm.ReleaseAll(3);
  EXPECT_TRUE(lm.Conflicts(5, LockMode::kExclusive, {7}).empty());
  lm.Acquire(5, LockMode::kExclusive, {7});
  EXPECT_EQ(lm.ExclusiveHolder(7), 5u);
}

TEST(LockManagerDeathTest, AcquireWithConflictAborts) {
  LockManager lm;
  lm.Acquire(3, LockMode::kExclusive, {1});
  EXPECT_DEATH(lm.Acquire(5, LockMode::kExclusive, {1}), "conflict");
}

}  // namespace
}  // namespace webdb
