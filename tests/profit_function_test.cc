#include "qc/profit_function.h"

#include <memory>

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(StepProfitTest, FullProfitStrictlyBelowCutoff) {
  StepProfitFunction fn(10.0, 50.0);
  EXPECT_DOUBLE_EQ(fn.Profit(0.0), 10.0);
  EXPECT_DOUBLE_EQ(fn.Profit(49.999), 10.0);
  EXPECT_DOUBLE_EQ(fn.Profit(50.0), 0.0);  // cutoff is exclusive
  EXPECT_DOUBLE_EQ(fn.Profit(100.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.MaxProfit(), 10.0);
  EXPECT_DOUBLE_EQ(fn.Cutoff(), 50.0);
}

TEST(StepProfitTest, UuMaxOneMeansNoUpdateMissed) {
  // The paper's uu_max = 1 semantics: profit only when #uu == 0.
  StepProfitFunction fn(2.0, 1.0);
  EXPECT_DOUBLE_EQ(fn.Profit(0.0), 2.0);
  EXPECT_DOUBLE_EQ(fn.Profit(1.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.Profit(2.0), 0.0);
}

TEST(LinearProfitTest, InterpolatesToZeroAtCutoff) {
  LinearProfitFunction fn(10.0, 50.0);
  EXPECT_DOUBLE_EQ(fn.Profit(0.0), 10.0);
  EXPECT_DOUBLE_EQ(fn.Profit(25.0), 5.0);
  EXPECT_DOUBLE_EQ(fn.Profit(50.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.Profit(60.0), 0.0);
}

TEST(LinearProfitTest, ZeroMaxProfitIsAlwaysZero) {
  LinearProfitFunction fn(0.0, 50.0);
  EXPECT_DOUBLE_EQ(fn.Profit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.Profit(10.0), 0.0);
}

TEST(ZeroProfitTest, AlwaysZero) {
  ZeroProfitFunction fn;
  EXPECT_DOUBLE_EQ(fn.Profit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.Profit(1e9), 0.0);
  EXPECT_DOUBLE_EQ(fn.MaxProfit(), 0.0);
}

TEST(ProfitFunctionTest, DebugStringsMentionParameters) {
  EXPECT_NE(StepProfitFunction(3.0, 7.0).DebugString().find("step"),
            std::string::npos);
  EXPECT_NE(LinearProfitFunction(3.0, 7.0).DebugString().find("linear"),
            std::string::npos);
}

TEST(ProfitFunctionDeathTest, InvalidParamsAbort) {
  EXPECT_DEATH(StepProfitFunction(-1.0, 1.0), "");
  EXPECT_DEATH(StepProfitFunction(1.0, 0.0), "");
  EXPECT_DEATH(LinearProfitFunction(1.0, -5.0), "");
}

// Property: every built-in shape is non-increasing over a wide grid,
// for a sweep of (max_profit, cutoff) pairs.
class NonIncreasingTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(NonIncreasingTest, StepAndLinear) {
  const auto [max_profit, cutoff] = GetParam();
  StepProfitFunction step(max_profit, cutoff);
  LinearProfitFunction linear(max_profit, cutoff);
  EXPECT_TRUE(IsNonIncreasing(step, cutoff * 3.0, 1000));
  EXPECT_TRUE(IsNonIncreasing(linear, cutoff * 3.0, 1000));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NonIncreasingTest,
    ::testing::Combine(::testing::Values(0.0, 1.0, 10.0, 99.0),
                       ::testing::Values(0.5, 1.0, 50.0, 100.0)));

TEST(IsNonIncreasingTest, DetectsIncreasingFunction) {
  class Increasing final : public ProfitFunction {
   public:
    double Profit(double x) const override { return x; }
    double MaxProfit() const override { return 0.0; }
    double Cutoff() const override { return 0.0; }
    std::string DebugString() const override { return "inc"; }
  };
  Increasing fn;
  EXPECT_FALSE(IsNonIncreasing(fn, 10.0, 100));
}

}  // namespace
}  // namespace webdb
