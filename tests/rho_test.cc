#include "core/rho.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(RhoTest, EqualSharesGiveRhoOne) {
  // QOSmax == QODmax: ρ = 0.5/1 + 0.5 = 1 (Eq. 4).
  EXPECT_DOUBLE_EQ(OptimalRho(100.0, 100.0), 1.0);
}

TEST(RhoTest, QodHeavyPullsTowardHalf) {
  // QOSmax:QODmax = 1:9 -> ρ = 1/18 + 0.5 ≈ 0.5556 (the Fig. 9d low band).
  EXPECT_NEAR(OptimalRho(10.0, 90.0), 0.5556, 1e-3);
}

TEST(RhoTest, NeverBelowHalf) {
  // Even with zero QoS demand, queries keep half the CPU (paper's
  // observation below Eq. 4).
  EXPECT_DOUBLE_EQ(OptimalRho(0.0, 100.0), 0.5);
}

TEST(RhoTest, CappedAtOne) {
  EXPECT_DOUBLE_EQ(OptimalRho(1000.0, 1.0), 1.0);
}

TEST(RhoTest, ModeledProfitEndpoints) {
  // Eq. 3: Q(0) = 0, Q(1) = QOSmax.
  EXPECT_DOUBLE_EQ(ModeledTotalProfit(10.0, 90.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ModeledTotalProfit(10.0, 90.0, 1.0), 10.0);
}

TEST(RhoTest, SmoothingConverges) {
  double rho = 0.5;
  for (int i = 0; i < 200; ++i) rho = SmoothRho(rho, 0.9, 0.2);
  EXPECT_NEAR(rho, 0.9, 1e-6);
}

TEST(RhoTest, SmoothingWithAlphaOneJumps) {
  EXPECT_DOUBLE_EQ(SmoothRho(0.5, 0.8, 1.0), 0.8);
}

TEST(RhoTest, SmoothingStep) {
  EXPECT_DOUBLE_EQ(SmoothRho(0.5, 1.0, 0.2), 0.6);
}

// Property: Eq. 4's ρ* maximizes Eq. 3 over a fine grid, for a sweep of
// QOSmax/QODmax combinations.
class OptimalRhoTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(OptimalRhoTest, MaximizesModeledProfit) {
  const auto [qos_max, qod_max] = GetParam();
  const double rho_star = OptimalRho(qos_max, qod_max);
  EXPECT_GE(rho_star, 0.5);
  EXPECT_LE(rho_star, 1.0);
  const double best = ModeledTotalProfit(qos_max, qod_max, rho_star);
  for (int i = 0; i <= 1000; ++i) {
    const double rho = static_cast<double>(i) / 1000.0;
    EXPECT_LE(ModeledTotalProfit(qos_max, qod_max, rho), best + 1e-9)
        << "rho=" << rho;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimalRhoTest,
    ::testing::Combine(::testing::Values(0.0, 1.0, 10.0, 50.0, 500.0),
                       ::testing::Values(1.0, 10.0, 50.0, 500.0)));

TEST(RhoDeathTest, InvalidInputsAbort) {
  EXPECT_DEATH(OptimalRho(1.0, 0.0), "");
  EXPECT_DEATH(OptimalRho(-1.0, 1.0), "");
  EXPECT_DEATH(SmoothRho(0.5, 0.5, 0.0), "");
  EXPECT_DEATH(ModeledTotalProfit(1.0, 1.0, 1.5), "");
}

}  // namespace
}  // namespace webdb
