#include "obs/metric_registry.h"

#include <gtest/gtest.h>

#include "core/quts_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "test_txns.h"

namespace webdb {
namespace {

TEST(MetricRegistryTest, SameNameYieldsSameInstance) {
  MetricRegistry registry;
  Counter& a = registry.GetCounter("server.queries.committed");
  Counter& b = registry.GetCounter("server.queries.committed");
  EXPECT_EQ(&a, &b);
  ++a;
  a.Increment(2);
  EXPECT_EQ(b.value(), 3);
  EXPECT_EQ(registry.NumMetrics(), 1u);

  Gauge& g1 = registry.GetGauge("scheduler.quts.rho");
  Gauge& g2 = registry.GetGauge("scheduler.quts.rho");
  EXPECT_EQ(&g1, &g2);
  g1.Set(0.25);
  EXPECT_DOUBLE_EQ(g2.value(), 0.25);

  Histogram& h1 = registry.GetHistogram("server.response_time_ms",
                                        Histogram::Exponential(1.0, 2.0, 8));
  // The second prototype is ignored: the first registration wins.
  Histogram& h2 = registry.GetHistogram("server.response_time_ms",
                                        Histogram::Exponential(5.0, 3.0, 2));
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.NumBuckets(), 9u);  // 8 bounds + overflow
  EXPECT_EQ(registry.NumMetrics(), 3u);
  EXPECT_TRUE(registry.Has("scheduler.quts.rho"));
  EXPECT_FALSE(registry.Has("scheduler.quts.tau"));
}

TEST(MetricRegistryDeathTest, KindMismatchAborts) {
  MetricRegistry registry;
  registry.GetCounter("server.queries.committed");
  EXPECT_DEATH(registry.GetGauge("server.queries.committed"), "");
  EXPECT_DEATH(registry.GetHistogram("server.queries.committed",
                                     Histogram::Exponential(1.0, 2.0, 4)),
               "");
  EXPECT_DEATH(registry.Value("no.such.metric"), "");
}

TEST(MetricRegistryTest, SnapshotSortedAndExpandsHistograms) {
  MetricRegistry registry;
  registry.GetCounter("b.counter").Increment(7);
  registry.GetGauge("a.gauge").Set(1.5);
  Histogram& hist = registry.GetHistogram(
      "c.hist", Histogram::Exponential(1.0, 2.0, 8));
  hist.Add(3.0);
  hist.Add(3.0);

  const MetricSnapshot snap = registry.Snap(Seconds(2));
  EXPECT_EQ(snap.time, Seconds(2));
  // Sorted by name, histograms expanded to .count/.p50/.p99.
  for (size_t i = 1; i < snap.values.size(); ++i) {
    EXPECT_LT(snap.values[i - 1].first, snap.values[i].first);
  }
  ASSERT_NE(snap.Find("b.counter"), nullptr);
  EXPECT_DOUBLE_EQ(*snap.Find("b.counter"), 7.0);
  ASSERT_NE(snap.Find("a.gauge"), nullptr);
  EXPECT_DOUBLE_EQ(*snap.Find("a.gauge"), 1.5);
  ASSERT_NE(snap.Find("c.hist.count"), nullptr);
  EXPECT_DOUBLE_EQ(*snap.Find("c.hist.count"), 2.0);
  EXPECT_NE(snap.Find("c.hist.p50"), nullptr);
  EXPECT_NE(snap.Find("c.hist.p99"), nullptr);
  EXPECT_EQ(snap.Find("c.hist"), nullptr);
  EXPECT_EQ(snap.Find("zzz"), nullptr);
}

TEST(MetricRegistryTest, SeriesIsMonotoneAndCapturesGrowth) {
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("server.updates.applied");
  registry.RecordSnapshot(Seconds(1));
  counter.Increment(5);
  registry.RecordSnapshot(Seconds(2));
  counter.Increment(5);
  registry.RecordSnapshot(Seconds(3));

  const auto& series = registry.series();
  ASSERT_EQ(series.size(), 3u);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].time, series[i - 1].time);
    // Counters never move backwards between snapshots.
    EXPECT_GE(*series[i].Find("server.updates.applied"),
              *series[i - 1].Find("server.updates.applied"));
  }
  EXPECT_DOUBLE_EQ(*series.front().Find("server.updates.applied"), 0.0);
  EXPECT_DOUBLE_EQ(*series.back().Find("server.updates.applied"), 10.0);
}

TEST(MetricRegistryTest, FifoExportStatsUsesDefaultQueueGauges) {
  TxnPool pool;
  FifoScheduler scheduler;
  scheduler.OnQueryArrival(pool.NewQuery(Millis(1)), Millis(1));
  scheduler.OnQueryArrival(pool.NewQuery(Millis(2)), Millis(2));
  scheduler.OnUpdateArrival(pool.NewUpdate(Millis(3)), Millis(3));

  MetricRegistry registry;
  scheduler.ExportStats(registry);
  EXPECT_DOUBLE_EQ(registry.Value("scheduler.queue.queries"), 2.0);
  EXPECT_DOUBLE_EQ(registry.Value("scheduler.queue.updates"), 1.0);

  // Idempotent: draining the queue and re-exporting overwrites in place.
  scheduler.PopNext(Millis(4));
  scheduler.ExportStats(registry);
  EXPECT_DOUBLE_EQ(registry.Value("scheduler.queue.queries") +
                       registry.Value("scheduler.queue.updates"),
                   2.0);
}

TEST(MetricRegistryTest, QutsExportStatsPublishesRho) {
  TxnPool pool;
  QutsScheduler scheduler{QutsScheduler::Options()};
  scheduler.OnQueryArrival(pool.NewQuery(Millis(1)), Millis(1));
  scheduler.OnUpdateArrival(pool.NewUpdate(Millis(2)), Millis(2));

  MetricRegistry registry;
  scheduler.ExportStats(registry);
  EXPECT_TRUE(registry.Has("scheduler.quts.rho"));
  EXPECT_DOUBLE_EQ(registry.Value("scheduler.quts.rho"), scheduler.rho());
  EXPECT_GE(registry.Value("scheduler.quts.rho"), 0.0);
  EXPECT_LE(registry.Value("scheduler.quts.rho"), 1.0);
  // Generic queue gauges ride along with the QUTS-specific ones.
  EXPECT_DOUBLE_EQ(registry.Value("scheduler.queue.queries"), 1.0);
  EXPECT_DOUBLE_EQ(registry.Value("scheduler.queue.updates"), 1.0);
  EXPECT_TRUE(registry.Has("scheduler.quts.adaptations"));
  EXPECT_TRUE(registry.Has("scheduler.quts.atom.redraws"));
}

}  // namespace
}  // namespace webdb
