#include "sched/dual_queue_scheduler.h"

#include <gtest/gtest.h>

#include "test_txns.h"

namespace webdb {
namespace {

TEST(DualQueueTest, FactoryNames) {
  EXPECT_EQ(MakeUpdateHigh()->Name(), "UH");
  EXPECT_EQ(MakeQueryHigh()->Name(), "QH");
  EXPECT_EQ(MakeFifoUpdateHigh()->Name(), "FIFO-UH");
  EXPECT_EQ(MakeFifoQueryHigh()->Name(), "FIFO-QH");
}

TEST(DualQueueTest, DerivedNameMentionsPolicies) {
  DualQueueScheduler::Options options;
  options.high_side = TxnKind::kQuery;
  DualQueueScheduler sched(options);
  EXPECT_EQ(sched.Name(), "QH(vrd/fifo)");
}

TEST(DualQueueTest, UhServesUpdatesBeforeQueries) {
  TxnPool pool;
  auto sched = MakeUpdateHigh();
  Query* q = pool.NewQuery(0);
  Update* u = pool.NewUpdate(5);
  sched->OnQueryArrival(q, 0);
  sched->OnUpdateArrival(u, 5);
  EXPECT_EQ(sched->PopNext(5), u);
  EXPECT_EQ(sched->PopNext(5), q);
}

TEST(DualQueueTest, QhServesQueriesBeforeUpdates) {
  TxnPool pool;
  auto sched = MakeQueryHigh();
  Update* u = pool.NewUpdate(0);
  Query* q = pool.NewQuery(5);
  sched->OnUpdateArrival(u, 0);
  sched->OnQueryArrival(q, 5);
  EXPECT_EQ(sched->PopNext(5), q);
  EXPECT_EQ(sched->PopNext(5), u);
}

TEST(DualQueueTest, UhPreemptsRunningQuery) {
  TxnPool pool;
  auto sched = MakeUpdateHigh();
  Query* running = pool.NewQuery(0);
  Update* u = pool.NewUpdate(3);
  sched->OnUpdateArrival(u, 3);
  EXPECT_TRUE(sched->ShouldPreempt(*running, 3));
  // But a running update is never preempted by another update.
  Update* running_update = pool.NewUpdate(1);
  EXPECT_FALSE(sched->ShouldPreempt(*running_update, 3));
}

TEST(DualQueueTest, QhPreemptsRunningUpdate) {
  TxnPool pool;
  auto sched = MakeQueryHigh();
  Update* running = pool.NewUpdate(0);
  Query* q = pool.NewQuery(3);
  sched->OnQueryArrival(q, 3);
  EXPECT_TRUE(sched->ShouldPreempt(*running, 3));
  Query* running_query = pool.NewQuery(1);
  EXPECT_FALSE(sched->ShouldPreempt(*running_query, 3));
}

TEST(DualQueueTest, NoPreemptWithEmptyHighQueue) {
  TxnPool pool;
  auto sched = MakeUpdateHigh();
  Query* running = pool.NewQuery(0);
  Query* waiting = pool.NewQuery(1);
  sched->OnQueryArrival(waiting, 1);
  EXPECT_FALSE(sched->ShouldPreempt(*running, 1));
}

TEST(DualQueueTest, QueriesOrderedByVrdWithinQueue) {
  TxnPool pool;
  auto sched = MakeQueryHigh();
  Query* low = pool.NewQuery(0, Millis(5), 5.0, 5.0, Millis(100));
  Query* high = pool.NewQuery(1, Millis(5), 50.0, 50.0, Millis(50));
  sched->OnQueryArrival(low, 0);
  sched->OnQueryArrival(high, 1);
  EXPECT_EQ(sched->PopNext(1), high);
  EXPECT_EQ(sched->PopNext(1), low);
}

TEST(DualQueueTest, FifoVariantOrdersQueriesByArrival) {
  TxnPool pool;
  auto sched = MakeFifoQueryHigh();
  Query* early_low_value = pool.NewQuery(0, Millis(5), 1.0, 1.0, Millis(100));
  Query* late_high_value = pool.NewQuery(1, Millis(5), 99.0, 99.0, Millis(50));
  sched->OnQueryArrival(early_low_value, 0);
  sched->OnQueryArrival(late_high_value, 1);
  EXPECT_EQ(sched->PopNext(1), early_low_value);
}

TEST(DualQueueTest, UpdatesFifoWithinQueue) {
  TxnPool pool;
  auto sched = MakeUpdateHigh();
  Update* second = pool.NewUpdate(10);
  Update* first = pool.NewUpdate(5);
  sched->OnUpdateArrival(second, 10);
  sched->OnUpdateArrival(first, 10);
  EXPECT_EQ(sched->PopNext(10), first);
  EXPECT_EQ(sched->PopNext(10), second);
}

TEST(DualQueueTest, RequeuePutsBackInOwnQueue) {
  TxnPool pool;
  auto sched = MakeUpdateHigh();
  Update* u = pool.NewUpdate(0);
  sched->OnUpdateArrival(u, 0);
  Transaction* popped = sched->PopNext(0);
  EXPECT_EQ(popped, u);
  sched->Requeue(popped, 1);
  EXPECT_EQ(sched->UpdateQueueSize(), 1u);
  EXPECT_EQ(sched->PopNext(1), u);
}

TEST(DualQueueTest, RemoveQueuedAndSizes) {
  TxnPool pool;
  auto sched = MakeQueryHigh();
  Query* q = pool.NewQuery(0);
  Update* u = pool.NewUpdate(0);
  sched->OnQueryArrival(q, 0);
  sched->OnUpdateArrival(u, 0);
  EXPECT_EQ(sched->QueryQueueSize(), 1u);
  EXPECT_EQ(sched->UpdateQueueSize(), 1u);
  sched->RemoveQueued(q, 1);
  EXPECT_EQ(sched->QueryQueueSize(), 0u);
  EXPECT_TRUE(sched->HasWork());
  sched->RemoveQueued(u, 1);
  EXPECT_FALSE(sched->HasWork());
}

}  // namespace
}  // namespace webdb
