// Shared helpers for scheduler unit tests: hand-built queries/updates with
// stable ids, without going through a server.

#ifndef WEBDB_TESTS_TEST_TXNS_H_
#define WEBDB_TESTS_TEST_TXNS_H_

#include <memory>
#include <vector>

#include "qc/quality_contract.h"
#include "txn/transaction.h"
#include "util/time.h"

namespace webdb {

// Pool that owns test transactions; returned pointers stay valid for its
// lifetime.
class TxnPool {
 public:
  Query* NewQuery(SimTime arrival, SimDuration service = Millis(5),
                  double qos_max = 10.0, double qod_max = 10.0,
                  SimDuration rt_max = Millis(50)) {
    auto query = std::make_unique<Query>();
    query->id = QueryTxnId(next_query_++);
    query->kind = TxnKind::kQuery;
    query->state = TxnState::kQueued;
    query->arrival = arrival;
    query->service_time = service;
    query->remaining = service;
    query->items = {0};
    query->qc = QualityContract::Make(QcShape::kStep, qos_max, rt_max,
                                      qod_max, 1.0);
    queries_.push_back(std::move(query));
    return queries_.back().get();
  }

  Update* NewUpdate(SimTime arrival, SimDuration service = Millis(2),
                    ItemId item = 0) {
    auto update = std::make_unique<Update>();
    update->id = UpdateTxnId(next_update_++);
    update->kind = TxnKind::kUpdate;
    update->state = TxnState::kQueued;
    update->arrival = arrival;
    update->service_time = service;
    update->remaining = service;
    update->item = item;
    update->fifo_rank = arrival;
    updates_.push_back(std::move(update));
    return updates_.back().get();
  }

 private:
  uint64_t next_query_ = 0;
  uint64_t next_update_ = 0;
  std::vector<std::unique_ptr<Query>> queries_;
  std::vector<std::unique_ptr<Update>> updates_;
};

}  // namespace webdb

#endif  // WEBDB_TESTS_TEST_TXNS_H_
