#include "cluster/web_database_cluster.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/quts_scheduler.h"
#include "sched/fifo_scheduler.h"

namespace webdb {
namespace {

QualityContract StepQc(double qos = 10.0, double qod = 10.0,
                       SimDuration rt_max = Millis(50)) {
  return QualityContract::Make(QcShape::kStep, qos, rt_max, qod, 1.0);
}

WebDatabaseCluster::SchedulerFactory FifoFactory() {
  return [] { return std::make_unique<FifoScheduler>(); };
}

ClusterConfig ConfigWith(RoutingPolicy policy, int replicas = 2) {
  ClusterConfig config;
  config.num_replicas = replicas;
  config.routing.policy = policy;
  return config;
}

TEST(ClusterTest, UpdateFansOutToAllReplicas) {
  WebDatabaseCluster cluster(4, FifoFactory(),
                             ConfigWith(RoutingPolicy::kRoundRobin, 3));
  cluster.SubmitUpdate(2, 42.0, Millis(2));
  cluster.Run();
  for (size_t i = 0; i < cluster.NumReplicas(); ++i) {
    EXPECT_DOUBLE_EQ(cluster.replica(i).database().Item(2).value, 42.0);
    EXPECT_TRUE(cluster.replica(i).database().Item(2).IsFresh());
  }
  EXPECT_EQ(cluster.TotalUpdatesApplied(), 3);
  EXPECT_TRUE(cluster.IsQuiescent());
}

TEST(ClusterTest, PerReplicaDelayDefersVisibility) {
  ClusterConfig config = ConfigWith(RoutingPolicy::kRoundRobin, 2);
  config.replica_delays = {0, Millis(10)};
  WebDatabaseCluster cluster(2, FifoFactory(), config);
  cluster.SubmitUpdate(0, 7.0, Millis(1));
  cluster.sim().RunUntil(Millis(5));
  EXPECT_TRUE(cluster.replica(0).database().Item(0).IsFresh());
  // Replica 1 has not even seen the update arrive yet.
  EXPECT_EQ(cluster.replica(1).database().Item(0).arrival_seq, 0u);
  cluster.Run();
  EXPECT_TRUE(cluster.replica(1).database().Item(0).IsFresh());
  EXPECT_DOUBLE_EQ(cluster.replica(1).database().Item(0).value, 7.0);
}

TEST(ClusterTest, RoundRobinDistributesEvenly) {
  WebDatabaseCluster cluster(2, FifoFactory(),
                             ConfigWith(RoutingPolicy::kRoundRobin, 3));
  for (int i = 0; i < 9; ++i) {
    cluster.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(5));
  }
  cluster.Run();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.RoutedCount(i), 3);
  }
  EXPECT_EQ(cluster.TotalQueriesCommitted(), 9);
}

TEST(ClusterTest, LeastLoadedAvoidsBusyReplica) {
  WebDatabaseCluster cluster(2, FifoFactory(),
                             ConfigWith(RoutingPolicy::kLeastLoaded, 2));
  // Stack three queries; each submission sees the previous ones queued, so
  // the selector alternates between replicas instead of piling on one.
  cluster.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(5));
  cluster.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(5));
  cluster.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(5));
  cluster.Run();
  EXPECT_GE(cluster.RoutedCount(0), 1);
  EXPECT_GE(cluster.RoutedCount(1), 1);
}

TEST(ClusterTest, FreshestRoutesAwayFromUpdateBacklog) {
  ClusterConfig config = ConfigWith(RoutingPolicy::kFreshest, 2);
  WebDatabaseCluster cluster(8, FifoFactory(), config);
  // Replica 0 busy with a long query so updates queue there... both get the
  // updates; pin replica 0's queue by routing an initial long query to it
  // (round 0 of freshest routing with equal backlogs picks index 0).
  cluster.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(50));
  for (int i = 0; i < 4; ++i) {
    cluster.SubmitUpdate(static_cast<ItemId>(i), i, Millis(2));
  }
  // Replica 0 now has 4 queued updates (CPU held by the query); replica 1
  // has been draining them. The next query must go to replica 1.
  cluster.sim().RunUntil(Millis(20));
  Query* routed = cluster.SubmitQuery(QueryType::kLookup, {1}, StepQc(),
                                      Millis(5));
  cluster.Run();
  EXPECT_EQ(cluster.RoutedCount(1), 1);
  EXPECT_EQ(routed->state, TxnState::kCommitted);
}

TEST(ClusterTest, QcAwareRoutingBeatsRoundRobinUnderSkew) {
  // One replica is permanently hammered with background queries; QC-aware
  // routing should steer contract-carrying queries to the idle replica.
  for (RoutingPolicy policy :
       {RoutingPolicy::kRoundRobin, RoutingPolicy::kQcAware}) {
    WebDatabaseCluster cluster(2, FifoFactory(), ConfigWith(policy, 2));
    // Pre-load replica 0 via a round-robin-independent path: submit ~360 ms
    // of background work directly to it, far past the contracts' 200 ms
    // deadline.
    for (int i = 0; i < 40; ++i) {
      cluster.replica(0).SubmitQuery(QueryType::kLookup, {0},
                                     QualityContract(), Millis(9));
    }
    double gained_pct = 0.0;
    for (int i = 0; i < 10; ++i) {
      cluster.SubmitQuery(QueryType::kLookup, {1},
                          StepQc(10.0, 10.0, Millis(200)), Millis(5));
    }
    cluster.Run();
    gained_pct = cluster.TotalPct();
    if (policy == RoutingPolicy::kQcAware) {
      // All contract queries fit their deadlines on the idle replica.
      EXPECT_GT(gained_pct, 0.95);
      EXPECT_EQ(cluster.RoutedCount(1), 10);
    } else {
      // Round-robin sends half of them into the backlog.
      EXPECT_LT(gained_pct, 0.95);
    }
  }
}

TEST(ClusterTest, SingleReplicaMatchesStandaloneServer) {
  // A 1-replica cluster with zero delay is byte-for-byte the plain server.
  WebDatabaseCluster cluster(2, FifoFactory(),
                             ConfigWith(RoutingPolicy::kRoundRobin, 1));
  Database db(2);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);

  cluster.SubmitUpdate(0, 5.0, Millis(2));
  server.SubmitUpdate(0, 5.0, Millis(2));
  cluster.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(5));
  server.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(5));
  cluster.Run();
  server.Run();

  EXPECT_DOUBLE_EQ(cluster.TotalGained(), server.ledger().total_gained());
  EXPECT_DOUBLE_EQ(cluster.TotalMax(), server.ledger().total_max());
  EXPECT_EQ(cluster.TotalQueriesCommitted(),
            server.metrics().queries_committed);
}

TEST(ClusterTest, AggregateProfitBounded) {
  WebDatabaseCluster cluster(4, [] {
    return std::make_unique<QutsScheduler>(QutsScheduler::Options{});
  }, ConfigWith(RoutingPolicy::kQcAware, 3));
  for (int i = 0; i < 50; ++i) {
    cluster.sim().ScheduleAt(Millis(2) * i, [&cluster, i] {
      cluster.SubmitUpdate(static_cast<ItemId>(i % 4), i, Millis(2));
      if (i % 2 == 0) {
        cluster.SubmitQuery(QueryType::kLookup, {static_cast<ItemId>(i % 4)},
                            StepQc(), Millis(5));
      }
    });
  }
  cluster.Run();
  EXPECT_GT(cluster.TotalGained(), 0.0);
  EXPECT_LE(cluster.TotalGained(), cluster.TotalMax() + 1e-9);
  EXPECT_LE(cluster.TotalPct(), 1.0 + 1e-9);
  EXPECT_TRUE(cluster.IsQuiescent());
}

TEST(ReplicaSelectorTest, ExpectedProfitPrefersIdleFreshReplica) {
  ReplicaSelector selector{ReplicaSelector::Options{}};
  const QualityContract qc = StepQc(10.0, 10.0, Millis(50));
  ReplicaState idle;
  ReplicaState busy;
  busy.queued_queries = 20;   // 140ms predicted wait: deadline gone
  busy.queued_updates = 100;  // deep backlog: stale
  EXPECT_GT(selector.ExpectedProfit(qc, Millis(5), idle),
            selector.ExpectedProfit(qc, Millis(5), busy));
  EXPECT_EQ(selector.Select(qc, Millis(5), {busy, idle}), 1u);
}

TEST(ReplicaSelectorTest, NamesRoundTrip) {
  for (RoutingPolicy policy :
       {RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastLoaded,
        RoutingPolicy::kFreshest, RoutingPolicy::kQcAware}) {
    EXPECT_EQ(RoutingPolicyFromName(ToString(policy)), policy);
  }
}

}  // namespace
}  // namespace webdb
