// Golden regression for the overload scenarios (exp/overload_scenarios.h):
// a fixed grid of adversarial traces x admission controllers x CPU counts,
// snapshotted as tests/data/golden_overload.csv with the per-run end-state
// hashes pinned in the hash column. Any change to trace generation, tenant
// assignment, admission logic, shedding order or the multi-core schedule
// shows up as a hash or counter diff here.
//
// To regenerate after an *intended* behavior change:
//   WEBDB_REGEN_GOLDEN=1 ./overload_scenario_test
//       --gtest_filter='*MatchesGoldenSnapshot'
//
// The grid deliberately reuses the bench_overload headline regime (a 4-CPU
// box provisioned near capacity, QoS-heavy Table 4 contracts) at test
// scale, and the acceptance ordering — dbf strictly out-earns admit-all and
// queue-cap on the 10x market-open trace at 4 CPUs — is asserted in-test,
// so the ordering itself is pinned, not just the raw numbers.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "exp/overload_scenarios.h"
#include "exp/sweep_runner.h"
#include "util/csv.h"

namespace webdb {
namespace {

constexpr uint64_t kSeed = 2007;
constexpr int64_t kQueueCap = 64;

struct GridPoint {
  OverloadScenario scenario;
  double scale = 0.0;
  int cpus = 0;
  AdmissionKind admission = AdmissionKind::kAdmitAll;
};

class OverloadScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // ~3.2 CPUs of standing query load (see bench/bench_overload.cc): the
    // 4-CPU rows sit just under capacity so the burst backlog has nowhere
    // to drain, which is the regime where admission policy matters.
    OverloadScenarioConfig base;
    base.seed = kSeed;
    base.duration = Seconds(4);
    base.num_stocks = 128;
    base.query_rate = 450.0;
    base.update_rate = 60.0;

    traces_ = new std::vector<Trace>();
    OverloadScenarioConfig market = base;
    market.scale = 10.0;
    traces_->push_back(MakeOverloadTrace(OverloadScenario::kMarketOpen, market));
    OverloadScenarioConfig storm = base;
    storm.scale = 10.0;
    traces_->push_back(MakeOverloadTrace(OverloadScenario::kUpdateStorm, storm));
    // The 100x scale-up on a short window: two orders of magnitude past
    // saturation, the survival end of the acceptance range.
    OverloadScenarioConfig extreme = base;
    extreme.scale = 100.0;
    extreme.duration = Seconds(1);
    traces_->push_back(MakeOverloadTrace(OverloadScenario::kScaleUp, extreme));

    grid_ = new std::vector<GridPoint>();
    results_ = new std::vector<ExperimentResult>();
    const std::vector<AdmissionKind> admissions = {
        AdmissionKind::kAdmitAll, AdmissionKind::kQueueCap,
        AdmissionKind::kExpectedProfit, AdmissionKind::kDbf};
    std::vector<SweepRunner::Point> points;
    const struct {
      size_t trace;
      OverloadScenario scenario;
      double scale;
      std::vector<int> cpu_counts;
    } rows[] = {
        {0, OverloadScenario::kMarketOpen, 10.0, {1, 4}},
        {1, OverloadScenario::kUpdateStorm, 10.0, {1, 4}},
        {2, OverloadScenario::kScaleUp, 100.0, {4}},
    };
    for (const auto& row : rows) {
      for (int cpus : row.cpu_counts) {
        for (AdmissionKind admission : admissions) {
          grid_->push_back({row.scenario, row.scale, cpus, admission});
          SweepRunner::Point point;
          point.trace = &(*traces_)[row.trace];
          point.spec.kind = SchedulerKind::kQuts;
          point.spec.topology.num_cpus = cpus;
          point.spec.admission.kind = admission;
          point.spec.admission.queue_cap = kQueueCap;
          point.options.qc_seed = 99;
          point.options.qc = Table4Profile(0.2, QcShape::kStep);
          point.options.compute_end_state_hash = true;
          points.push_back(point);
        }
      }
    }
    SweepConfig sweep;
    sweep.jobs = 4;
    sweep.base_seed = kSeed;
    *results_ = SweepRunner(sweep).RunPoints(points);
  }

  static void TearDownTestSuite() {
    delete traces_;
    delete grid_;
    delete results_;
    traces_ = nullptr;
    grid_ = nullptr;
    results_ = nullptr;
  }

  static const ExperimentResult& ResultFor(OverloadScenario scenario,
                                           double scale, int cpus,
                                           AdmissionKind admission) {
    for (size_t i = 0; i < grid_->size(); ++i) {
      const GridPoint& point = (*grid_)[i];
      if (point.scenario == scenario && point.scale == scale &&
          point.cpus == cpus && point.admission == admission) {
        return (*results_)[i];
      }
    }
    ADD_FAILURE() << "grid point missing";
    static ExperimentResult empty;
    return empty;
  }

  static std::vector<Trace>* traces_;
  static std::vector<GridPoint>* grid_;
  static std::vector<ExperimentResult>* results_;
};

std::vector<Trace>* OverloadScenarioTest::traces_ = nullptr;
std::vector<GridPoint>* OverloadScenarioTest::grid_ = nullptr;
std::vector<ExperimentResult>* OverloadScenarioTest::results_ = nullptr;

TEST_F(OverloadScenarioTest, TraceShapesPinned) {
  ASSERT_EQ(traces_->size(), 3u);
  // Scenario generation is a pure function of the config.
  for (const Trace& trace : *traces_) {
    EXPECT_GT(trace.queries.size(), 0u);
    trace.CheckValid();
  }
  // market-open adds a burst on top of the same base trace: strictly more
  // queries than updates here, and the storm is update-dominated.
  EXPECT_GT((*traces_)[0].queries.size(), (*traces_)[0].updates.size());
  EXPECT_GT((*traces_)[1].updates.size(), (*traces_)[1].queries.size());
}

TEST_F(OverloadScenarioTest, ConservationHoldsOnEveryGridPoint) {
  for (size_t i = 0; i < grid_->size(); ++i) {
    const GridPoint& point = (*grid_)[i];
    const ExperimentResult& result = (*results_)[i];
    size_t trace_index = point.scenario == OverloadScenario::kMarketOpen ? 0
                         : point.scenario == OverloadScenario::kUpdateStorm
                             ? 1
                             : 2;
    EXPECT_EQ(static_cast<size_t>(
                  result.queries_committed + result.queries_dropped +
                  result.queries_rejected + result.queries_shed),
              (*traces_)[trace_index].queries.size())
        << ToString(point.scenario) << " cpus=" << point.cpus << " "
        << ToString(point.admission);
  }
}

TEST_F(OverloadScenarioTest, DbfOutEarnsAdmitAllAndQueueCapOnFlashCrowd) {
  // The PR's acceptance criterion, pinned as an ordering (robust to small
  // numeric drift that the golden CSV would flag anyway).
  const double admit_all =
      ResultFor(OverloadScenario::kMarketOpen, 10.0, 4,
                AdmissionKind::kAdmitAll)
          .total_pct;
  const double queue_cap =
      ResultFor(OverloadScenario::kMarketOpen, 10.0, 4,
                AdmissionKind::kQueueCap)
          .total_pct;
  const double dbf = ResultFor(OverloadScenario::kMarketOpen, 10.0, 4,
                               AdmissionKind::kDbf)
                         .total_pct;
  EXPECT_GT(dbf, admit_all);
  EXPECT_GT(dbf, queue_cap);
  // And shedding must actually have happened — the winning controller is
  // doing its job, not coasting through an underloaded trace.
  EXPECT_GT(ResultFor(OverloadScenario::kMarketOpen, 10.0, 4,
                      AdmissionKind::kDbf)
                .queries_shed,
            0);
}

TEST_F(OverloadScenarioTest, MatchesGoldenSnapshot) {
  const std::string golden_path =
      std::string(WEBDB_TEST_DATA_DIR) + "/golden_overload.csv";

  // Dedicated writer: golden_sweep.csv (WriteExperimentCsv) keeps its own
  // pinned header; this snapshot needs scenario/admission/hash columns.
  auto write = [&](const std::string& path) {
    CsvWriter writer(path);
    writer.WriteRow({"scenario", "scale", "cpus", "admission", "total_pct",
                     "qos_pct", "qod_pct", "committed", "dropped", "rejected",
                     "shed", "end_state_hash"});
    char buffer[32];
    for (size_t i = 0; i < grid_->size(); ++i) {
      const GridPoint& point = (*grid_)[i];
      const ExperimentResult& result = (*results_)[i];
      std::vector<std::string> row;
      row.push_back(ToString(point.scenario));
      std::snprintf(buffer, sizeof(buffer), "%.0f", point.scale);
      row.push_back(buffer);
      row.push_back(std::to_string(point.cpus));
      row.push_back(ToString(point.admission));
      std::snprintf(buffer, sizeof(buffer), "%.6f", result.total_pct);
      row.push_back(buffer);
      std::snprintf(buffer, sizeof(buffer), "%.6f", result.qos_pct);
      row.push_back(buffer);
      std::snprintf(buffer, sizeof(buffer), "%.6f", result.qod_pct);
      row.push_back(buffer);
      row.push_back(std::to_string(result.queries_committed));
      row.push_back(std::to_string(result.queries_dropped));
      row.push_back(std::to_string(result.queries_rejected));
      row.push_back(std::to_string(result.queries_shed));
      std::snprintf(buffer, sizeof(buffer), "%016llx",
                    static_cast<unsigned long long>(result.end_state_hash));
      row.push_back(buffer);
      writer.WriteRow(row);
    }
    return writer.Close();
  };

  if (std::getenv("WEBDB_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(write(golden_path));
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  const std::string actual_path = ::testing::TempDir() + "overload.csv";
  ASSERT_TRUE(write(actual_path));

  auto read = [](const std::string& path) {
    CsvReader reader(path);
    EXPECT_TRUE(reader.ok()) << "cannot open " << path;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> fields;
    while (reader.ReadRow(fields)) rows.push_back(fields);
    return rows;
  };
  const auto expected = read(golden_path);
  const auto actual = read(actual_path);
  ASSERT_EQ(actual.size(), expected.size());
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(actual[0], expected[0]);  // header
  for (size_t r = 1; r < expected.size(); ++r) {
    ASSERT_EQ(actual[r].size(), expected[r].size()) << "row " << r;
    for (size_t c = 0; c < expected[r].size(); ++c) {
      if (c >= 4 && c <= 6) {
        // Profit percentages: doubles, compared with cross-compiler slack.
        const double want = std::stod(expected[r][c]);
        const double got = std::stod(actual[r][c]);
        EXPECT_NEAR(got, want, std::max(1e-6, 1e-3 * std::abs(want)))
            << "row " << r << " col " << c << " (" << expected[0][c] << ")";
      } else {
        // Scenario names, counters and the end-state hash match exactly.
        EXPECT_EQ(actual[r][c], expected[r][c])
            << "row " << r << " col " << c << " (" << expected[0][c] << ")";
      }
    }
  }
}

}  // namespace
}  // namespace webdb
