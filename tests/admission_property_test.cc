// Property tests for demand-bound admission (sched/admission.h): random
// burst workloads at 1-4 CPUs, checking the invariants the design rests on
// rather than pinned outcomes:
//
//   * supply:       after every admission, each CPU lane's cumulative
//                   weighted demand fits (deadline - now) * supply_factor
//                   at every demand node — DbfAdmission never over-commits;
//   * conservation: at the server, arrived = committed + dropped +
//                   rejected + shed, for every CPU count and every seed;
//   * determinism:  the same sweep is bit-identical at --jobs 1, 2 and 4,
//                   and a rerun of any single point lands on the same
//                   end-state hash.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "exp/overload_scenarios.h"
#include "exp/sweep_runner.h"
#include "sched/admission.h"
#include "test_txns.h"
#include "util/rng.h"
#include "util/seed.h"

namespace webdb {
namespace {

// Rebuilds every lane from PlacementOf — the independent model the checks
// below compare the controller against. Placements whose deadline has
// passed are skipped: the controller prunes expired demand nodes lazily on
// Admit (their late queries stay tracked until they finish), so right
// after an Admit at `now` the lanes hold exactly the unexpired demand.
std::vector<std::map<SimTime, SimDuration>> RebuildLanes(
    const DbfAdmission& controller,
    const std::map<TxnId, const Query*>& tracked, SimTime now) {
  std::vector<std::map<SimTime, SimDuration>> lanes(
      static_cast<size_t>(controller.num_cpus()));
  for (const auto& [id, query] : tracked) {
    if (!controller.IsTracked(id)) continue;  // best-effort or finished
    const DbfAdmission::Placement placement = controller.PlacementOf(id);
    EXPECT_GE(placement.cpu, 0);
    EXPECT_LT(placement.cpu, controller.num_cpus());
    if (placement.deadline <= now) continue;  // node pruned, query late
    lanes[static_cast<size_t>(placement.cpu)][placement.deadline] +=
        placement.demand;
  }
  return lanes;
}

// Lane bookkeeping must match the unexpired tracked entries exactly.
void ExpectLaneSumsConsistent(const DbfAdmission& controller,
                              const std::map<TxnId, const Query*>& tracked,
                              SimTime now) {
  const auto lanes = RebuildLanes(controller, tracked, now);
  for (int32_t cpu = 0; cpu < controller.num_cpus(); ++cpu) {
    SimDuration total = 0;
    for (const auto& [deadline, demand] : lanes[static_cast<size_t>(cpu)]) {
      total += demand;
    }
    EXPECT_EQ(controller.QueuedDemand(cpu), total) << "lane " << cpu;
  }
}

// The admission guarantee, checked against the rebuilt model at the moment
// it is made: the freshly admitted query's lane satisfies the demand bound
// at its deadline and at every later node. (The bound is an admission-time
// promise — once the clock advances past idle time the harness never
// serviced, earlier placements may legitimately no longer fit.)
void ExpectAdmissionFeasible(const DbfAdmission& controller,
                             const std::map<TxnId, const Query*>& tracked,
                             const DbfAdmission::Placement& placement,
                             SimTime now, double supply_factor) {
  EXPECT_TRUE(controller.DemandFits(placement.cpu, placement.deadline, now));
  const auto lanes = RebuildLanes(controller, tracked, now);
  const auto& lane = lanes[static_cast<size_t>(placement.cpu)];
  SimDuration cumulative = 0;
  for (const auto& [deadline, demand] : lane) {
    cumulative += demand;
    if (deadline < placement.deadline) continue;
    EXPECT_LE(static_cast<double>(cumulative),
              static_cast<double>(deadline - now) * supply_factor)
        << "lane " << placement.cpu << " over-committed at deadline "
        << deadline;
  }
}

TEST(DbfAdmissionPropertyTest, AdmittedDemandNeverExceedsSupply) {
  for (uint64_t round = 0; round < 12; ++round) {
    Rng rng(DeriveSeed(0xD8FADBF, round));
    const int32_t cpus = 1 + static_cast<int32_t>(round % 4);
    const double supply_factor = round % 3 == 0 ? 0.8 : 1.0;
    DbfAdmission::Options options;
    options.num_cpus = cpus;
    options.supply_factor = supply_factor;
    DbfAdmission controller(std::move(options));

    TxnPool pool;
    AdmissionContext context;
    context.num_cpus = cpus;
    std::map<TxnId, const Query*> tracked;
    std::vector<const Query*> outstanding;

    SimTime now = 0;
    int64_t admitted = 0;
    int64_t rejected = 0;
    for (int i = 0; i < 300; ++i) {
      // Bursty arrivals: long quiet gaps between packed arrival trains. The
      // trains are several times oversubscribed even on 4 CPUs (mean 7 ms of
      // service arriving every ~1 ms against 10-40 ms deadline windows), so
      // every round must drive the controller into rejection.
      now += rng.Bernoulli(0.1) ? Millis(rng.UniformInt(20, 60))
                                : Millis(rng.UniformInt(0, 2));
      const SimDuration service = Millis(rng.UniformInt(2, 12));
      // A slice of the queries carries no QoS deadline (best-effort path):
      // those get the empty ZeroContracts-style contract.
      const SimDuration rt_max =
          rng.Bernoulli(0.1) ? 0 : Millis(rng.UniformInt(10, 40));
      Query* query = pool.NewQuery(now, service, rng.Uniform(1.0, 50.0),
                                   rng.Uniform(0.0, 20.0),
                                   rt_max > 0 ? rt_max : Millis(50));
      if (rt_max <= 0) query->qc = QualityContract();
      context.now = now;
      if (controller.Admit(*query, context)) {
        ++admitted;
        if (rt_max > 0) {
          EXPECT_TRUE(controller.IsTracked(query->id));
          tracked[query->id] = query;
          outstanding.push_back(query);
          ExpectAdmissionFeasible(controller, tracked,
                                  controller.PlacementOf(query->id), now,
                                  supply_factor);
        } else {
          EXPECT_FALSE(controller.IsTracked(query->id));
        }
      } else {
        ++rejected;
        EXPECT_FALSE(controller.IsTracked(query->id));
      }
      ExpectLaneSumsConsistent(controller, tracked, now);
      controller.AuditInvariants(now);

      // Drain a random suffix now and then — commits release demand. At
      // most half drains, so the standing backlog keeps the lanes loaded.
      if (rng.Bernoulli(0.15)) {
        const size_t keep = static_cast<size_t>(rng.UniformInt(
            static_cast<int64_t>(outstanding.size() / 2),
            static_cast<int64_t>(outstanding.size())));
        while (outstanding.size() > keep) {
          const Query* done = outstanding.back();
          outstanding.pop_back();
          controller.OnQueryFinished(*done, now);
          tracked.erase(done->id);
        }
      }
    }
    EXPECT_EQ(admitted, 300 - rejected);
    EXPECT_EQ(controller.RejectedCount(), rejected);
    // No shed sink was offered, so nothing may have been shed.
    EXPECT_EQ(controller.ShedCount(), 0);
    EXPECT_GT(rejected, 0) << "round " << round
                           << " never saturated a lane; property vacuous";
  }
}

// Random overload traces through the full server: the shed-conservation
// law must hold for every scenario shape, CPU count and seed.
TEST(DbfAdmissionPropertyTest, ServerShedConservationOnRandomBursts) {
  const std::vector<OverloadScenario> scenarios = AllOverloadScenarios();
  for (uint64_t round = 0; round < 6; ++round) {
    Rng rng(DeriveSeed(0x5EDC0, round));
    OverloadScenarioConfig config;
    config.seed = DeriveSeed(0x5EDC0, round + 100);
    config.scale = rng.Uniform(4.0, 16.0);
    config.duration = Seconds(2 + static_cast<SimTime>(rng.UniformInt(0, 2)));
    config.num_stocks = 64;
    config.query_rate = rng.Uniform(150.0, 400.0);
    config.update_rate = rng.Uniform(20.0, 80.0);
    const OverloadScenario scenario = scenarios[round % scenarios.size()];
    const Trace trace = MakeOverloadTrace(scenario, config);

    const int cpus = 1 + static_cast<int>(round % 4);
    SchedulerSpec spec;
    spec.kind = SchedulerKind::kQuts;
    spec.topology.num_cpus = cpus;
    spec.admission.kind = AdmissionKind::kDbf;

    ExperimentOptions options;
    options.qc_seed = DeriveSeed(0x9C, round);
    options.qc = Table4Profile(0.2, QcShape::kStep);
    options.compute_end_state_hash = true;
    const ExperimentResult result = RunExperiment(trace, spec, options);

    EXPECT_EQ(static_cast<size_t>(
                  result.queries_committed + result.queries_dropped +
                  result.queries_rejected + result.queries_shed),
              trace.queries.size())
        << ToString(scenario) << " at " << cpus << " CPUs, round " << round;
    // The traces are engineered to overload: admission must have acted.
    EXPECT_GT(result.queries_rejected + result.queries_shed, 0)
        << ToString(scenario) << " at " << cpus << " CPUs, round " << round;

    // Point determinism: the identical run lands on the identical hash.
    const ExperimentResult rerun = RunExperiment(trace, spec, options);
    EXPECT_EQ(rerun.end_state_hash, result.end_state_hash);
    EXPECT_EQ(rerun.queries_shed, result.queries_shed);
  }
}

// The sweep over (scenario, cpus) with dbf admission must be bit-identical
// at every --jobs value — shedding is per-run state and must not leak
// across SweepRunner workers.
TEST(DbfAdmissionPropertyTest, SweepBitIdenticalAcrossJobs) {
  OverloadScenarioConfig config;
  config.seed = 77;
  config.scale = 10.0;
  config.duration = Seconds(2);
  config.num_stocks = 64;
  config.query_rate = 250.0;
  config.update_rate = 40.0;
  std::vector<Trace> traces;
  for (OverloadScenario scenario : AllOverloadScenarios()) {
    traces.push_back(MakeOverloadTrace(scenario, config));
  }

  std::vector<SweepRunner::Point> points;
  for (const Trace& trace : traces) {
    for (int cpus : {1, 2, 4}) {
      SweepRunner::Point point;
      point.trace = &trace;
      point.spec.kind = SchedulerKind::kQuts;
      point.spec.topology.num_cpus = cpus;
      point.spec.admission.kind = AdmissionKind::kDbf;
      point.options.qc_seed = 99;
      point.options.qc = Table4Profile(0.2, QcShape::kStep);
      point.options.compute_end_state_hash = true;
      points.push_back(point);
    }
  }

  std::vector<std::vector<ExperimentResult>> by_jobs;
  for (int jobs : {1, 2, 4}) {
    SweepConfig sweep;
    sweep.jobs = jobs;
    sweep.base_seed = 77;
    by_jobs.push_back(SweepRunner(sweep).RunPoints(points));
  }
  for (size_t j = 1; j < by_jobs.size(); ++j) {
    ASSERT_EQ(by_jobs[j].size(), by_jobs[0].size());
    for (size_t i = 0; i < by_jobs[0].size(); ++i) {
      EXPECT_EQ(by_jobs[j][i].end_state_hash, by_jobs[0][i].end_state_hash)
          << "point " << i << " diverged at jobs index " << j;
      EXPECT_EQ(by_jobs[j][i].queries_shed, by_jobs[0][i].queries_shed);
      EXPECT_EQ(by_jobs[j][i].queries_rejected,
                by_jobs[0][i].queries_rejected);
      EXPECT_DOUBLE_EQ(by_jobs[j][i].qos_gained, by_jobs[0][i].qos_gained);
      EXPECT_DOUBLE_EQ(by_jobs[j][i].qod_gained, by_jobs[0][i].qod_gained);
    }
  }
}

// Tenant weights only squeeze — they never break conservation, and the
// premium tier's admitted share must be at least the free tier's when both
// offer the same traffic.
TEST(DbfAdmissionPropertyTest, TenantTiersSqueezeFreeTrafficFirst) {
  OverloadScenarioConfig config;
  config.seed = 4242;
  config.scale = 10.0;
  config.duration = Seconds(3);
  config.num_stocks = 64;
  config.query_rate = 300.0;
  config.update_rate = 40.0;
  Trace trace = MakeOverloadTrace(OverloadScenario::kMarketOpen, config);
  const TenantSet tenants = *TenantSet::Parse("free:4,premium:1");
  AssignTenants(&trace, tenants, config.seed);

  SchedulerSpec spec;
  spec.kind = SchedulerKind::kQuts;
  spec.topology.num_cpus = 2;
  spec.admission.kind = AdmissionKind::kDbf;
  spec.admission.tenants = tenants;

  ExperimentOptions options;
  options.qc_seed = 99;
  options.qc = Table4Profile(0.2, QcShape::kStep);
  const ExperimentResult result = RunExperiment(trace, spec, options);

  ASSERT_EQ(result.tenants.size(), 2u);
  const ExperimentResult::TenantResult& free = result.tenants[0];
  const ExperimentResult::TenantResult& premium = result.tenants[1];
  EXPECT_EQ(free.name, "free");
  EXPECT_EQ(premium.name, "premium");
  // Per-tenant conservation.
  for (const auto& tenant : result.tenants) {
    EXPECT_EQ(tenant.submitted, tenant.committed + tenant.dropped +
                                    tenant.rejected + tenant.shed);
  }
  EXPECT_EQ(free.submitted + premium.submitted,
            static_cast<int64_t>(trace.queries.size()));
  // The squeeze: the 4x-weighted free tier loses a larger fraction of its
  // traffic to rejection + shedding than the premium tier.
  ASSERT_GT(free.submitted, 0);
  ASSERT_GT(premium.submitted, 0);
  const double free_loss =
      static_cast<double>(free.rejected + free.shed) /
      static_cast<double>(free.submitted);
  const double premium_loss =
      static_cast<double>(premium.rejected + premium.shed) /
      static_cast<double>(premium.submitted);
  EXPECT_GT(free_loss, premium_loss);
  EXPECT_GT(free.rejected + free.shed, 0);
}

}  // namespace
}  // namespace webdb
