#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace webdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CsvTest, SplitBasic) {
  const auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvTest, SplitEmptyFields) {
  const auto fields = SplitCsvLine(",x,");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
}

TEST(CsvTest, SplitSingleField) {
  const auto fields = SplitCsvLine("solo");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "solo");
}

TEST(CsvTest, WriteReadRoundtrip) {
  const std::string path = TempPath("roundtrip.csv");
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"1", "2.5", "AAPL"});
    writer.WriteRow({"4", "5.5", "MSFT"});
    ASSERT_TRUE(writer.Close());
  }
  CsvReader reader(path);
  ASSERT_TRUE(reader.ok());
  std::vector<std::string> row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (std::vector<std::string>{"1", "2.5", "AAPL"}));
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (std::vector<std::string>{"4", "5.5", "MSFT"}));
  EXPECT_FALSE(reader.ReadRow(row));
  std::remove(path.c_str());
}

TEST(CsvTest, ReaderOnMissingFileNotOk) {
  CsvReader reader(TempPath("does-not-exist.csv"));
  EXPECT_FALSE(reader.ok());
}

TEST(CsvTest, HandlesCrLf) {
  const std::string path = TempPath("crlf.csv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b\r\n";
  }
  CsvReader reader(path);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.ReadRow(row));
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace webdb
