// Multi-core server model: the CPU-set protocol, the single-CPU adapter's
// bit-identity guarantee, and the sharded QUTS scheduler's determinism.
//
// The adapter tests are the load-bearing ones: the whole CPU-set redesign
// rests on "num_cpus = 1 through the new API reproduces the legacy
// schedule bit-for-bit", which lets the pinned goldens and end-state hashes
// stand untouched.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/sharded_quts_scheduler.h"
#include "db/database.h"
#include "exp/experiment.h"
#include "exp/scheduler_factory.h"
#include "server/web_database_server.h"
#include "trace/stock_trace_generator.h"
#include "util/rng.h"
#include "util/time.h"

namespace webdb {
namespace {

class MulticoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StockTraceConfig config = StockTraceConfig::Small(1234);
    config.query_rate = 40.0;
    config.update_rate_start = 280.0;
    config.update_rate_end = 200.0;
    trace_ = new Trace(GenerateStockTrace(config));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static ExperimentOptions Options() {
    ExperimentOptions options;
    options.qc_seed = 99;
    options.qc = BalancedProfile(QcShape::kStep);
    options.compute_end_state_hash = true;
    return options;
  }

  static ExperimentResult RunLegacy(SchedulerKind kind) {
    auto scheduler = MakeScheduler(kind);
    return RunExperiment(*trace_, scheduler.get(), Options());
  }

  static ExperimentResult RunSpec(const SchedulerSpec& spec) {
    return RunExperiment(*trace_, spec, Options());
  }

  static Trace* trace_;
};

Trace* MulticoreTest::trace_ = nullptr;

TEST_F(MulticoreTest, AdapterReproducesLegacyEndStateHashes) {
  // Every legacy policy driven through the CPU-set server via the factory's
  // SingleCpuAdapter path must take the exact same schedule as the legacy
  // Scheduler* overload — hash equality, not statistical closeness.
  for (SchedulerKind kind : PaperSchedulers()) {
    const ExperimentResult legacy = RunLegacy(kind);
    SchedulerSpec spec;
    spec.kind = kind;
    const ExperimentResult adapted = RunSpec(spec);
    EXPECT_EQ(adapted.end_state_hash, legacy.end_state_hash)
        << "adapter changed the schedule for " << ToString(kind);
    EXPECT_EQ(adapted.queries_committed, legacy.queries_committed);
    EXPECT_EQ(adapted.preemptions, legacy.preemptions);
    EXPECT_DOUBLE_EQ(adapted.total_pct, legacy.total_pct);
  }
}

TEST_F(MulticoreTest, AdapterKeepsPinnedHashes) {
  // Same pins as tests/regression_test.cc, reached through the new API.
  SchedulerSpec fifo;
  fifo.kind = SchedulerKind::kFifo;
  EXPECT_EQ(RunSpec(fifo).end_state_hash, 0x810cf025907877e9ULL);
  SchedulerSpec quts;
  quts.kind = SchedulerKind::kQuts;
  EXPECT_EQ(RunSpec(quts).end_state_hash, 0xe2f69fbc29174920ULL);
}

TEST_F(MulticoreTest, ShardedRunIsBitIdenticalAcrossReruns) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kQuts;
  spec.topology.num_cpus = 4;
  const ExperimentResult first = RunSpec(spec);
  const ExperimentResult second = RunSpec(spec);
  EXPECT_EQ(first.end_state_hash, second.end_state_hash);
  EXPECT_EQ(first.queries_committed, second.queries_committed);
  EXPECT_EQ(first.updates_applied, second.updates_applied);
  EXPECT_DOUBLE_EQ(first.qos_gained, second.qos_gained);
}

TEST_F(MulticoreTest, CpuCountsProduceDistinctSchedules) {
  // Sanity that the pool actually runs in parallel: more CPUs commit at
  // least as many queries on this overloaded trace, and the schedules
  // differ (different hash) while each stays self-deterministic.
  std::set<uint64_t> hashes;
  int64_t committed_1 = 0;
  for (int cpus : {1, 2, 4}) {
    SchedulerSpec spec;
    spec.kind = SchedulerKind::kQuts;
    spec.topology.num_cpus = cpus;
    const ExperimentResult result = RunSpec(spec);
    hashes.insert(result.end_state_hash);
    if (cpus == 1) committed_1 = result.queries_committed;
    EXPECT_GE(result.queries_committed, committed_1)
        << cpus << " CPUs committed fewer queries than one";
  }
  EXPECT_EQ(hashes.size(), 3u) << "CPU counts collided on one schedule";
}

TEST_F(MulticoreTest, WorkStealingPinnedAgainstSeededTrace) {
  // A 4-CPU run over the seeded trace must steal: the flash crowd
  // concentrates query mass on hot symbols, so some home shards run dry
  // while others back up. The steal count is part of the deterministic
  // schedule, so it must reproduce exactly across reruns.
  ShardedQutsScheduler::Options options;
  options.num_cpus = 4;
  auto run = [&] {
    ShardedQutsScheduler scheduler(options);
    const ExperimentResult result =
        RunExperiment(*trace_, &scheduler, Options());
    return std::pair<int64_t, uint64_t>(scheduler.steals(),
                                        result.end_state_hash);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_GT(first.first, 0) << "no steals on an imbalanced trace";
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST_F(MulticoreTest, StealingOffKeepsShardsIsolated) {
  ShardedQutsScheduler::Options options;
  options.num_cpus = 4;
  options.enable_stealing = false;
  ShardedQutsScheduler scheduler(options);
  const ExperimentResult result =
      RunExperiment(*trace_, &scheduler, Options());
  EXPECT_EQ(scheduler.steals(), 0);
  EXPECT_GT(result.queries_committed, 0);
}

TEST_F(MulticoreTest, ShardPlacementIsSeedStableAndHome) {
  ShardedQutsScheduler::Options options;
  options.num_cpus = 4;
  ShardedQutsScheduler a(options);
  ShardedQutsScheduler b(options);
  EXPECT_EQ(a.num_shards(), 4);
  for (ItemId item = 0; item < 64; ++item) {
    const int shard = a.ShardOfItem(item);
    EXPECT_EQ(shard, b.ShardOfItem(item));
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, a.num_shards());
  }
}

TEST_F(MulticoreTest, FactoryRejectsMultiCoreNonQuts) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kFifo;
  spec.topology.num_cpus = 4;
  EXPECT_DEATH(MakeScheduler(spec), "QUTS");
}

TEST_F(MulticoreTest, MidRunAuditHoldsAtFourCpus) {
  // Drive a 4-CPU server directly and audit invariants mid-flight, not
  // just at the drained end state (RunExperiment audits there already).
  ShardedQutsScheduler::Options options;
  options.num_cpus = 4;
  ShardedQutsScheduler scheduler(options);
  Database db(trace_->num_items);
  WebDatabaseServer server(&db, &scheduler);
  Rng rng(7);
  const SimTime horizon = Millis(2000);
  SimTime t = 0;
  int submitted = 0;
  while (t < horizon) {
    t += static_cast<SimTime>(rng.Exponential(0.002)) + 1;
    server.RunUntil(t);
    if (rng.Bernoulli(0.3)) {
      server.SubmitQuery(QueryType::kLookup,
                         {rng.UniformInt(0, trace_->num_items - 1)},
                         QualityContract(), Micros(rng.UniformInt(50, 500)));
    } else {
      server.SubmitUpdate(rng.UniformInt(0, trace_->num_items - 1), 1.0,
                          Micros(rng.UniformInt(20, 200)));
    }
    if (++submitted % 64 == 0) server.AuditInvariants();
  }
  server.Run();
  server.AuditInvariants();
  EXPECT_TRUE(server.IsQuiescent());
  EXPECT_EQ(server.NumCpus(), 4);
}

}  // namespace
}  // namespace webdb
