// Edge-case server tests: lock release on drop of a preempted holder,
// multi-holder conflict resolution, FIFO-rank inheritance, alternative
// staleness metrics end-to-end, and dispatch-overhead accounting.

#include <gtest/gtest.h>

#include "db/database.h"
#include "sched/dual_queue_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "server/web_database_server.h"

namespace webdb {
namespace {

QualityContract StepQc(double qos = 10.0, double qod = 20.0,
                       SimDuration rt_max = Millis(50), double uu_max = 1.0) {
  return QualityContract::Make(QcShape::kStep, qos, rt_max, qod, uu_max);
}

TEST(ServerEdgeTest, DroppedPreemptedQueryReleasesItsLocks) {
  Database db(2);
  auto sched = MakeUpdateHigh();
  ServerConfig config;
  config.lifetime_factor = 0.1;
  config.min_lifetime = Millis(5);  // the query will be dropped mid-flight
  WebDatabaseServer server(&db, sched.get(), config);
  // Query starts, gets preempted (holding its read lock) by an update on
  // the other item, and its 5 ms lifetime expires during that update.
  Query* query =
      server.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(10));
  server.sim().ScheduleAt(Millis(2), [&] {
    server.SubmitUpdate(1, 1.0, Millis(10));
  });
  server.Run();
  EXPECT_EQ(query->state, TxnState::kDropped);
  EXPECT_TRUE(server.IsQuiescent());  // in particular: no leaked lock
}

TEST(ServerEdgeTest, QueryRestartsMultiplePreemptedUpdates) {
  Database db(3);
  auto sched = MakeQueryHigh();
  WebDatabaseServer server(&db, sched.get());
  // Two updates on different items start (one runs, is preempted by the
  // arriving query; the other never gets the CPU). The comparison query
  // read-locks both items; the preempted update holding a write lock is
  // restarted under 2PL-HP.
  server.SubmitUpdate(0, 1.0, Millis(4));
  server.SubmitUpdate(1, 2.0, Millis(4));
  Query* query = nullptr;
  server.sim().ScheduleAt(Millis(1), [&] {
    query = server.SubmitQuery(QueryType::kComparison, {0, 1}, StepQc(),
                               Millis(5));
  });
  server.Run();
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(query->state, TxnState::kCommitted);
  EXPECT_EQ(server.metrics().update_restarts, 1);
  // Both updates still applied afterwards.
  EXPECT_EQ(server.metrics().updates_applied, 2);
  EXPECT_TRUE(db.Item(0).IsFresh());
  EXPECT_TRUE(db.Item(1).IsFresh());
}

TEST(ServerEdgeTest, SupersedingUpdateInheritsQueuePosition) {
  Database db(3);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  // CPU is blocked; three updates queue: A(item 0), B(item 1), then A2
  // (item 0) superseding A. A2 inherits A's FIFO rank, so it must be
  // applied BEFORE B despite arriving later.
  server.SubmitQuery(QueryType::kLookup, {2}, StepQc(), Millis(20));
  Update* b = nullptr;
  Update* a2 = nullptr;
  server.sim().ScheduleAt(Millis(1),
                          [&] { server.SubmitUpdate(0, 1.0, Millis(2)); });
  server.sim().ScheduleAt(Millis(2),
                          [&] { b = server.SubmitUpdate(1, 2.0, Millis(2)); });
  server.sim().ScheduleAt(Millis(3),
                          [&] { a2 = server.SubmitUpdate(0, 3.0, Millis(2)); });
  server.Run();
  ASSERT_NE(b, nullptr);
  ASSERT_NE(a2, nullptr);
  EXPECT_EQ(a2->state, TxnState::kCommitted);
  EXPECT_LT(a2->commit_time, b->commit_time);
  EXPECT_DOUBLE_EQ(db.Item(0).value, 3.0);
}

TEST(ServerEdgeTest, ValueDistanceMetricEndToEnd) {
  Database db(2);
  auto sched = MakeQueryHigh();
  ServerConfig config;
  config.staleness_metric = StalenessMetric::kValueDistance;
  WebDatabaseServer server(&db, sched.get(), config);
  // Apply 100.0 first so the item has a committed value, then leave 107.5
  // pending while the query reads: vd = 7.5.
  server.SubmitUpdate(0, 100.0, Millis(2));
  Query* query = nullptr;
  server.sim().ScheduleAt(Millis(5), [&] {
    server.SubmitUpdate(0, 107.5, Millis(2));
    query = server.SubmitQuery(QueryType::kLookup, {0},
                               StepQc(10.0, 20.0, Millis(50), /*uu_max=*/5.0),
                               Millis(5));
  });
  server.Run();
  ASSERT_NE(query, nullptr);
  EXPECT_DOUBLE_EQ(query->staleness, 7.5);
  // vd 7.5 >= cutoff 5.0: no QoD profit.
  EXPECT_DOUBLE_EQ(query->profit.qod, 0.0);
  EXPECT_DOUBLE_EQ(query->profit.qos, 10.0);
}

TEST(ServerEdgeTest, TimeDifferentialMetricEndToEnd) {
  Database db(2);
  FifoScheduler sched;
  ServerConfig config;
  config.staleness_metric = StalenessMetric::kTimeDifferential;
  WebDatabaseServer server(&db, &sched, config);
  // The reading query is queued BEFORE the update under non-preemptive
  // FIFO, so it reads item 0 at ~35ms with the update pending since t=1ms:
  // td ≈ 34ms > 20ms cutoff -> no QoD.
  server.SubmitQuery(QueryType::kLookup, {1}, StepQc(), Millis(30));
  Query* query = server.SubmitQuery(
      QueryType::kLookup, {0},
      StepQc(10.0, 20.0, Millis(100), /*uu_max(td ms)=*/20.0), Millis(5));
  server.sim().ScheduleAt(Millis(1),
                          [&] { server.SubmitUpdate(0, 1.0, Millis(2)); });
  server.Run();
  ASSERT_NE(query, nullptr);
  EXPECT_GT(query->staleness, 20.0);
  EXPECT_DOUBLE_EQ(query->profit.qod, 0.0);
}

TEST(ServerEdgeTest, DispatchOverheadExtendsExecution) {
  Database db(1);
  FifoScheduler sched;
  ServerConfig config;
  config.dispatch_overhead = Millis(1);
  WebDatabaseServer server(&db, &sched, config);
  Update* update = server.SubmitUpdate(0, 1.0, Millis(4));
  server.Run();
  EXPECT_EQ(update->commit_time, Millis(5));  // 4ms work + 1ms overhead
}

TEST(ServerEdgeTest, ZeroQcQueryCommitsWithZeroProfit) {
  Database db(1);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  Query* query = server.SubmitQuery(QueryType::kLookup, {0},
                                    QualityContract(), Millis(5));
  server.Run();
  EXPECT_EQ(query->state, TxnState::kCommitted);
  EXPECT_DOUBLE_EQ(query->profit.Total(), 0.0);
  EXPECT_DOUBLE_EQ(server.ledger().total_max(), 0.0);
}

TEST(ServerEdgeTest, BackToBackSubmissionsAtSameInstant) {
  Database db(4);
  auto sched = MakeUpdateHigh();
  WebDatabaseServer server(&db, sched.get());
  // Everything at t=0, including two updates on the same item.
  server.SubmitUpdate(0, 1.0, Millis(2));
  server.SubmitUpdate(0, 2.0, Millis(2));
  server.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(5));
  server.SubmitUpdate(1, 3.0, Millis(2));
  server.SubmitQuery(QueryType::kAggregation, {0, 1}, StepQc(), Millis(5));
  server.Run();
  EXPECT_EQ(server.metrics().queries_committed, 2);
  EXPECT_EQ(server.metrics().updates_applied +
                server.metrics().updates_invalidated,
            3);
  EXPECT_DOUBLE_EQ(db.Item(0).value, 2.0);
  EXPECT_TRUE(server.IsQuiescent());
}

}  // namespace
}  // namespace webdb
