#include "util/histogram.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(HistogramTest, BucketAssignment) {
  Histogram h({1.0, 10.0, 100.0});
  h.Add(0.5);    // bucket 0 (<= 1)
  h.Add(1.0);    // bucket 0 (lower_bound: 1.0 <= 1.0)
  h.Add(5.0);    // bucket 1
  h.Add(99.0);   // bucket 2
  h.Add(100.5);  // overflow
  EXPECT_EQ(h.TotalCount(), 5);
  ASSERT_EQ(h.NumBuckets(), 4u);
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 1);
  EXPECT_EQ(h.BucketCount(3), 1);
}

TEST(HistogramTest, ExponentialFactory) {
  Histogram h = Histogram::Exponential(1.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(2), 4.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(3), 8.0);
  EXPECT_TRUE(std::isinf(h.BucketUpperBound(4)));
}

TEST(HistogramTest, QuantileEmptyIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.Add(5.0);   // all in first bucket
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1e-9);   // halfway through [0, 10]
  EXPECT_NEAR(h.Quantile(1.0), 10.0, 1e-9);
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram h = Histogram::Exponential(1.0, 2.0, 10);
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i));
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, ToStringContainsCounts) {
  Histogram h({1.0});
  h.Add(0.5);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("<= 1"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace webdb
