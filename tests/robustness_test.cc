#include "exp/robustness.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

StockTraceConfig SmallBase() {
  StockTraceConfig config = StockTraceConfig::Small(51);
  config.query_rate = 35.0;
  config.update_rate_start = 250.0;
  config.update_rate_end = 180.0;
  return config;
}

TEST(RobustnessTest, CorrelationSweepProducesOneRowPerPoint) {
  const auto rows = RunCorrelationRobustness(SmallBase(), {0.0, 1.0});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].knob, 0.0);
  EXPECT_DOUBLE_EQ(rows[1].knob, 1.0);
  for (const auto& row : rows) {
    for (double v : {row.fifo, row.uh, row.qh, row.quts}) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-9);
    }
  }
}

TEST(RobustnessTest, SpikeSweepProducesOneRowPerPoint) {
  const auto rows = RunSpikeRobustness(SmallBase(), {1.0, 4.0});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].knob, 1.0);
  for (const auto& row : rows) {
    EXPECT_GT(row.quts, 0.0);
  }
}

TEST(RobustnessTest, QutsVsBestFixedMath) {
  RobustnessRow row;
  row.uh = 0.7;
  row.qh = 0.8;
  row.quts = 0.85;
  EXPECT_NEAR(row.QutsVsBestFixed(), 0.05, 1e-12);
}

TEST(RobustnessTest, DeterministicForSameInputs) {
  const auto a = RunCorrelationRobustness(SmallBase(), {0.5});
  const auto b = RunCorrelationRobustness(SmallBase(), {0.5});
  ASSERT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a[0].quts, b[0].quts);
  EXPECT_DOUBLE_EQ(a[0].fifo, b[0].fifo);
}

}  // namespace
}  // namespace webdb
