#include "trace/stock_trace_generator.h"

#include <set>

#include <gtest/gtest.h>

#include "trace/trace_stats.h"

namespace webdb {
namespace {

TEST(TraceGeneratorTest, SmallConfigProducesValidTrace) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(1));
  trace.CheckValid();
  EXPECT_GT(trace.queries.size(), 50u);
  EXPECT_GT(trace.updates.size(), 100u);
  EXPECT_EQ(trace.num_items, 64);
}

TEST(TraceGeneratorTest, DeterministicForSeed) {
  const Trace a = GenerateStockTrace(StockTraceConfig::Small(7));
  const Trace b = GenerateStockTrace(StockTraceConfig::Small(7));
  ASSERT_EQ(a.queries.size(), b.queries.size());
  ASSERT_EQ(a.updates.size(), b.updates.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].arrival, b.queries[i].arrival);
    EXPECT_EQ(a.queries[i].items, b.queries[i].items);
    EXPECT_EQ(a.queries[i].exec_time, b.queries[i].exec_time);
  }
  for (size_t i = 0; i < a.updates.size(); ++i) {
    EXPECT_EQ(a.updates[i].arrival, b.updates[i].arrival);
    EXPECT_EQ(a.updates[i].item, b.updates[i].item);
    EXPECT_DOUBLE_EQ(a.updates[i].value, b.updates[i].value);
  }
}

TEST(TraceGeneratorTest, DifferentSeedsDiffer) {
  const Trace a = GenerateStockTrace(StockTraceConfig::Small(1));
  const Trace b = GenerateStockTrace(StockTraceConfig::Small(2));
  EXPECT_NE(a.queries.size(), b.queries.size());
}

TEST(TraceGeneratorTest, ExecTimesWithinConfiguredRanges) {
  const StockTraceConfig config = StockTraceConfig::Small(3);
  const Trace trace = GenerateStockTrace(config);
  for (const QueryRecord& q : trace.queries) {
    EXPECT_GE(q.exec_time, config.query_exec_lo);
    EXPECT_LE(q.exec_time, config.query_exec_hi);
  }
  for (const UpdateRecord& u : trace.updates) {
    EXPECT_GE(u.exec_time, config.update_exec_lo);
    EXPECT_LE(u.exec_time, config.update_exec_hi);
  }
}

TEST(TraceGeneratorTest, MultiItemQueriesHaveDistinctItems) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(4));
  for (const QueryRecord& q : trace.queries) {
    if (q.type == QueryType::kLookup || q.type == QueryType::kMovingAverage) {
      EXPECT_EQ(q.items.size(), 1u);
    } else {
      EXPECT_GE(q.items.size(), 2u);
      EXPECT_LE(q.items.size(), 5u);
      const std::set<ItemId> distinct(q.items.begin(), q.items.end());
      EXPECT_EQ(distinct.size(), q.items.size());
    }
  }
}

TEST(TraceGeneratorTest, PricesArePositive) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(5));
  for (const UpdateRecord& u : trace.updates) {
    EXPECT_GT(u.value, 0.0);
  }
}

// Full-size trace checks (Table 3 / Figure 5 shape). One generation, many
// assertions: generation takes a moment at full scale.
class FullTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new Trace(GenerateStockTrace(StockTraceConfig()));
    stats_ = new TraceStats(ComputeTraceStats(*trace_));
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete stats_;
    trace_ = nullptr;
    stats_ = nullptr;
  }
  static Trace* trace_;
  static TraceStats* stats_;
};

Trace* FullTraceTest::trace_ = nullptr;
TraceStats* FullTraceTest::stats_ = nullptr;

TEST_F(FullTraceTest, CountsNearTable3) {
  // Table 3: 82,129 queries / 496,892 updates. Poisson noise allows a few
  // percent.
  EXPECT_NEAR(static_cast<double>(stats_->num_queries), 82129.0, 8000.0);
  EXPECT_NEAR(static_cast<double>(stats_->num_updates), 496892.0, 25000.0);
  EXPECT_EQ(stats_->num_items, 4608);
  EXPECT_NEAR(ToSeconds(stats_->duration), 1800.0, 2.0);
}

TEST_F(FullTraceTest, UpdateRateTrendsDownward) {
  // Figure 5b: compare first and last thirds of the trace (the calibrated
  // decay is gentler than the paper's plot; see StockTraceConfig).
  const auto& per_s = stats_->updates_per_second;
  const size_t third = per_s.size() / 3;
  int64_t head = 0, tail = 0;
  for (size_t i = 0; i < third; ++i) head += per_s[i];
  for (size_t i = per_s.size() - third; i < per_s.size(); ++i) {
    tail += per_s[i];
  }
  EXPECT_GT(static_cast<double>(head), static_cast<double>(tail) * 1.1);
}

TEST_F(FullTraceTest, MostStocksUpdateDominated) {
  // Figure 5c: most active stocks see more updates than queries.
  EXPECT_GT(stats_->FractionUpdateDominated(), 0.5);
}

TEST_F(FullTraceTest, OverloadIsTransientNotPermanent) {
  // The paper's regime: the opening burst overloads the CPU (queries starve
  // under update-first policies) but the full 30 minutes are processable,
  // so FIFO response times stay in the sub-second range.
  EXPECT_GT(stats_->offered_utilization, 0.70);
  EXPECT_LT(stats_->offered_utilization, 1.05);
  // Demand during the first 5 minutes runs essentially at capacity and
  // clearly above the trace-wide average.
  const SimTime head_window = Seconds(300);
  SimDuration head_demand = 0;
  for (const QueryRecord& q : trace_->queries) {
    if (q.arrival < head_window) head_demand += q.exec_time;
  }
  for (const UpdateRecord& u : trace_->updates) {
    if (u.arrival < head_window) head_demand += u.exec_time;
  }
  const double head_util = static_cast<double>(head_demand) /
                           static_cast<double>(head_window);
  EXPECT_GT(head_util, 0.93);
  EXPECT_GT(head_util, stats_->offered_utilization);
}

TEST_F(FullTraceTest, QueriesTouchThousandsOfStocks) {
  EXPECT_GT(stats_->stocks_queried, 2000);
  EXPECT_GT(stats_->stocks_updated, 3000);
}

}  // namespace
}  // namespace webdb
