#include "db/symbol_table.h"

#include <set>

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(SymbolTableTest, InternAssignsDenseIds) {
  SymbolTable table;
  EXPECT_EQ(table.Intern("IBM"), 0);
  EXPECT_EQ(table.Intern("AAPL"), 1);
  EXPECT_EQ(table.Intern("IBM"), 0);  // idempotent
  EXPECT_EQ(table.Size(), 2);
}

TEST(SymbolTableTest, LookupUnknownReturnsInvalid) {
  SymbolTable table;
  EXPECT_EQ(table.Lookup("NOPE"), kInvalidItem);
  table.Intern("X");
  EXPECT_EQ(table.Lookup("X"), 0);
}

TEST(SymbolTableTest, SymbolRoundTrip) {
  SymbolTable table;
  table.Intern("GOOG");
  EXPECT_EQ(table.Symbol(0), "GOOG");
}

TEST(SymbolTableTest, SyntheticGeneratesDistinctSymbols) {
  SymbolTable table = SymbolTable::Synthetic(1000);
  EXPECT_EQ(table.Size(), 1000);
  std::set<std::string> seen;
  for (ItemId i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(table.Symbol(i)).second)
        << "duplicate symbol " << table.Symbol(i);
  }
  // Base-26 naming: 0 -> "A", 25 -> "Z", 26 -> "AA".
  EXPECT_EQ(table.Symbol(0), "A");
  EXPECT_EQ(table.Symbol(25), "Z");
  EXPECT_EQ(table.Symbol(26), "AA");
}

TEST(SymbolTableTest, SyntheticRoundTripThroughLookup) {
  SymbolTable table = SymbolTable::Synthetic(100);
  for (ItemId i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Lookup(table.Symbol(i)), i);
  }
}

}  // namespace
}  // namespace webdb
