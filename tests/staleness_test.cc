#include "db/staleness.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

class StalenessTest : public ::testing::Test {
 protected:
  StalenessTest() : db_(4) {
    // Item 0: 2 unapplied (arrived at t=1000 and t=2000).
    db_.RecordUpdateArrival(0, 5.0, 1000);
    db_.RecordUpdateArrival(0, 9.0, 2000);
    // Item 1: 1 unapplied.
    db_.RecordUpdateArrival(1, 3.0, 1500);
    // Items 2, 3: fresh.
  }
  Database db_;
};

TEST_F(StalenessTest, UnappliedMetricCountsLiveUpdatesOnly) {
  // Item 0 saw two arrivals, but invalidation leaves at most one live
  // unapplied update: #uu is 1, not 2.
  EXPECT_DOUBLE_EQ(
      ItemStaleness(db_, 0, StalenessMetric::kUnappliedUpdates, 5000), 1.0);
  EXPECT_DOUBLE_EQ(
      ItemStaleness(db_, 2, StalenessMetric::kUnappliedUpdates, 5000), 0.0);
}

TEST_F(StalenessTest, UnappliedArrivalsMetricCountsAllMissedChanges) {
  EXPECT_DOUBLE_EQ(
      ItemStaleness(db_, 0, StalenessMetric::kUnappliedArrivals, 5000), 2.0);
  EXPECT_DOUBLE_EQ(
      ItemStaleness(db_, 1, StalenessMetric::kUnappliedArrivals, 5000), 1.0);
  EXPECT_DOUBLE_EQ(
      ItemStaleness(db_, 2, StalenessMetric::kUnappliedArrivals, 5000), 0.0);
}

TEST_F(StalenessTest, TimeDifferentialInMillis) {
  // Oldest unapplied of item 0 arrived at 1000us; at t=5000us td = 4000us =
  // 4ms... but ToMillis(4000) = 4.0? 4000us = 4ms.
  EXPECT_DOUBLE_EQ(
      ItemStaleness(db_, 0, StalenessMetric::kTimeDifferential, 5000), 4.0);
}

TEST_F(StalenessTest, ValueDistance) {
  // Item 0 current value 0 (never applied), newest arrival 9.0.
  EXPECT_DOUBLE_EQ(
      ItemStaleness(db_, 0, StalenessMetric::kValueDistance, 5000), 9.0);
}

TEST_F(StalenessTest, CombinerMax) {
  EXPECT_DOUBLE_EQ(
      QueryStaleness(db_, {0, 1, 2}, StalenessMetric::kUnappliedArrivals,
                     StalenessCombiner::kMax, 5000),
      2.0);
  EXPECT_DOUBLE_EQ(
      QueryStaleness(db_, {0, 1, 2}, StalenessMetric::kUnappliedUpdates,
                     StalenessCombiner::kMax, 5000),
      1.0);
}

TEST_F(StalenessTest, CombinerSum) {
  EXPECT_DOUBLE_EQ(
      QueryStaleness(db_, {0, 1, 2}, StalenessMetric::kUnappliedArrivals,
                     StalenessCombiner::kSum, 5000),
      3.0);
  // Under the live-update metric each stale item contributes 1.
  EXPECT_DOUBLE_EQ(
      QueryStaleness(db_, {0, 1, 2}, StalenessMetric::kUnappliedUpdates,
                     StalenessCombiner::kSum, 5000),
      2.0);
}

TEST_F(StalenessTest, CombinerAvg) {
  EXPECT_DOUBLE_EQ(
      QueryStaleness(db_, {0, 1, 2}, StalenessMetric::kUnappliedArrivals,
                     StalenessCombiner::kAvg, 5000),
      1.0);
}

TEST_F(StalenessTest, EmptyItemSetIsFresh) {
  EXPECT_DOUBLE_EQ(
      QueryStaleness(db_, {}, StalenessMetric::kUnappliedUpdates,
                     StalenessCombiner::kMax, 5000),
      0.0);
}

TEST_F(StalenessTest, FreshItemsGiveZeroUnderEveryCombiner) {
  for (StalenessCombiner combiner :
       {StalenessCombiner::kMax, StalenessCombiner::kSum,
        StalenessCombiner::kAvg}) {
    EXPECT_DOUBLE_EQ(QueryStaleness(db_, {2, 3},
                                    StalenessMetric::kUnappliedUpdates,
                                    combiner, 5000),
                     0.0);
  }
}

TEST(StalenessToStringTest, Names) {
  EXPECT_EQ(ToString(StalenessMetric::kUnappliedUpdates), "uu");
  EXPECT_EQ(ToString(StalenessMetric::kUnappliedArrivals), "uu-raw");
  EXPECT_EQ(ToString(StalenessMetric::kTimeDifferential), "td");
  EXPECT_EQ(ToString(StalenessMetric::kValueDistance), "vd");
  EXPECT_EQ(ToString(StalenessCombiner::kMax), "max");
  EXPECT_EQ(ToString(StalenessCombiner::kSum), "sum");
  EXPECT_EQ(ToString(StalenessCombiner::kAvg), "avg");
}

}  // namespace
}  // namespace webdb
