#include "db/update_register.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(UpdateRegisterTest, FirstRegistrationHasNoVictim) {
  UpdateRegister reg;
  EXPECT_EQ(reg.Register(5, 101), 0u);
  EXPECT_EQ(reg.PendingFor(5), 101u);
  EXPECT_EQ(reg.Size(), 1u);
  EXPECT_EQ(reg.TotalInvalidated(), 0u);
}

TEST(UpdateRegisterTest, NewArrivalInvalidatesPending) {
  UpdateRegister reg;
  reg.Register(5, 101);
  EXPECT_EQ(reg.Register(5, 103), 101u);
  EXPECT_EQ(reg.PendingFor(5), 103u);
  EXPECT_EQ(reg.Size(), 1u);
  EXPECT_EQ(reg.TotalInvalidated(), 1u);
}

TEST(UpdateRegisterTest, DistinctItemsIndependent) {
  UpdateRegister reg;
  reg.Register(1, 11);
  reg.Register(2, 13);
  EXPECT_EQ(reg.PendingFor(1), 11u);
  EXPECT_EQ(reg.PendingFor(2), 13u);
  EXPECT_EQ(reg.Size(), 2u);
}

TEST(UpdateRegisterTest, RemoveOnlyMatching) {
  UpdateRegister reg;
  reg.Register(1, 11);
  EXPECT_FALSE(reg.Remove(1, 99));  // superseded caller
  EXPECT_EQ(reg.PendingFor(1), 11u);
  EXPECT_TRUE(reg.Remove(1, 11));
  EXPECT_EQ(reg.PendingFor(1), 0u);
  EXPECT_FALSE(reg.Remove(1, 11));  // already gone
}

TEST(UpdateRegisterTest, PendingForUnknownItemIsZero) {
  UpdateRegister reg;
  EXPECT_EQ(reg.PendingFor(42), 0u);
}

TEST(UpdateRegisterTest, ChainOfInvalidations) {
  UpdateRegister reg;
  reg.Register(7, 1);
  EXPECT_EQ(reg.Register(7, 3), 1u);
  EXPECT_EQ(reg.Register(7, 5), 3u);
  EXPECT_EQ(reg.Register(7, 7), 5u);
  EXPECT_EQ(reg.TotalInvalidated(), 3u);
  EXPECT_EQ(reg.PendingFor(7), 7u);
}

}  // namespace
}  // namespace webdb
