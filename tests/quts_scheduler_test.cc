#include "core/quts_scheduler.h"

#include <gtest/gtest.h>

#include "test_txns.h"

namespace webdb {
namespace {

QutsScheduler::Options FastOptions() {
  QutsScheduler::Options options;
  options.atom_time = Millis(10);
  options.adaptation_period = Millis(100);
  options.alpha = 1.0;  // adapt instantly: simpler expectations
  options.seed = 1;
  return options;
}

TEST(QutsTest, StartsAtInitialRho) {
  QutsScheduler::Options options = FastOptions();
  options.initial_rho = 0.6;
  QutsScheduler sched(options);
  EXPECT_DOUBLE_EQ(sched.rho(), 0.6);
  EXPECT_EQ(sched.Name(), "QUTS");
  EXPECT_FALSE(sched.HasWork());
}

TEST(QutsTest, AdaptsTowardOneWhenQosDominates) {
  TxnPool pool;
  QutsScheduler sched(FastOptions());
  // Window 0: heavy QoS preference.
  Query* q = pool.NewQuery(0, Millis(5), /*qos=*/100.0, /*qod=*/1.0);
  sched.OnQueryArrival(q, 0);
  // Cross the adaptation boundary.
  sched.PopNext(Millis(150));
  EXPECT_DOUBLE_EQ(sched.rho(), 1.0);  // min(100/2 + 0.5, 1)
}

TEST(QutsTest, AdaptsTowardHalfWhenQodDominates) {
  TxnPool pool;
  QutsScheduler sched(FastOptions());
  Query* q = pool.NewQuery(0, Millis(5), /*qos=*/0.0, /*qod=*/100.0);
  sched.OnQueryArrival(q, 0);
  sched.PopNext(Millis(150));
  EXPECT_DOUBLE_EQ(sched.rho(), 0.5);
}

TEST(QutsTest, EmptyWindowLeavesRhoUnchanged) {
  QutsScheduler::Options options = FastOptions();
  options.initial_rho = 0.77;
  QutsScheduler sched(options);
  sched.PopNext(Millis(1000));  // many empty windows elapse
  EXPECT_DOUBLE_EQ(sched.rho(), 0.77);
}

TEST(QutsTest, AgingSmoothsRho) {
  TxnPool pool;
  QutsScheduler::Options options = FastOptions();
  options.alpha = 0.5;
  options.initial_rho = 0.5;
  QutsScheduler sched(options);
  Query* q = pool.NewQuery(0, Millis(5), 100.0, 1.0);  // ρ_new = 1
  sched.OnQueryArrival(q, 0);
  sched.PopNext(Millis(150));
  EXPECT_DOUBLE_EQ(sched.rho(), 0.75);  // 0.5*0.5 + 0.5*1.0
}

TEST(QutsTest, RhoSeriesRecordsAdaptations) {
  TxnPool pool;
  QutsScheduler sched(FastOptions());
  Query* q = pool.NewQuery(0, Millis(5), 100.0, 100.0);
  sched.OnQueryArrival(q, 0);
  sched.PopNext(Millis(350));  // 3 full windows elapsed
  // Initial point + one per window boundary.
  ASSERT_GE(sched.rho_series().size(), 4u);
  EXPECT_EQ(sched.rho_series()[0].first, 0);
  EXPECT_EQ(sched.rho_series()[1].first, Millis(100));
}

TEST(QutsTest, PopsFromNonEmptyQueueWhenPickedIsEmpty) {
  TxnPool pool;
  QutsScheduler sched(FastOptions());
  Update* u = pool.NewUpdate(0);
  sched.OnUpdateArrival(u, 0);
  // Whatever side the coin picks, the update must come out.
  EXPECT_EQ(sched.PopNext(0), u);
  EXPECT_FALSE(sched.HasWork());
}

TEST(QutsTest, WithRhoOneQueriesAlwaysWinTheDraw) {
  TxnPool pool;
  QutsScheduler::Options options = FastOptions();
  options.initial_rho = 1.0;
  QutsScheduler sched(options);
  for (int round = 0; round < 50; ++round) {
    Query* q = pool.NewQuery(round, Millis(5), 1.0, 1.0);
    Update* u = pool.NewUpdate(round);
    sched.OnQueryArrival(q, round);
    sched.OnUpdateArrival(u, round);
    // Fresh atom each pop (time advances far beyond τ).
    EXPECT_EQ(sched.PopNext(Millis(20) * (round + 1)), q);
    EXPECT_EQ(sched.PopNext(Millis(20) * (round + 1)), u);
  }
}

TEST(QutsTest, DrawFrequencyTracksRho) {
  TxnPool pool;
  QutsScheduler::Options options = FastOptions();
  options.initial_rho = 0.7;
  options.adaptation_period = Seconds(10000);  // never adapt
  QutsScheduler sched(options);
  int query_first = 0;
  const int rounds = 2000;
  for (int round = 0; round < rounds; ++round) {
    Query* q = pool.NewQuery(round, Millis(5), 1.0, 1.0);
    Update* u = pool.NewUpdate(round);
    const SimTime now = Millis(100) * (round + 1);
    sched.OnQueryArrival(q, now);
    sched.OnUpdateArrival(u, now);
    Transaction* first = sched.PopNext(now);
    if (first->kind == TxnKind::kQuery) ++query_first;
    sched.PopNext(now + 1);
    sched.PopNext(now + 2);  // drain (nullptr ok)
  }
  EXPECT_NEAR(static_cast<double>(query_first) / rounds, 0.7, 0.05);
}

TEST(QutsTest, NoPreemptionMidAtom) {
  TxnPool pool;
  QutsScheduler sched(FastOptions());
  Query* q = pool.NewQuery(0, Millis(5), 1.0, 1.0);
  sched.OnQueryArrival(q, 0);
  Transaction* running = sched.PopNext(0);
  ASSERT_EQ(running, q);
  Update* u = pool.NewUpdate(1);
  sched.OnUpdateArrival(u, 1);
  // Atom started at t=0 with τ=10ms: no preemption inside it.
  EXPECT_FALSE(sched.ShouldPreempt(*running, Millis(5)));
}

TEST(QutsTest, AtomExpiryAllowsSwitch) {
  TxnPool pool;
  QutsScheduler::Options options = FastOptions();
  options.initial_rho = 0.5;
  options.adaptation_period = Seconds(10000);
  QutsScheduler sched(options);
  Query* q = pool.NewQuery(0, Millis(5), 1.0, 1.0);
  sched.OnQueryArrival(q, 0);
  Transaction* running = sched.PopNext(0);
  Update* u = pool.NewUpdate(1);
  sched.OnUpdateArrival(u, 1);
  // With ρ = 0.5 the draw eventually lands on the update side; keep probing
  // successive atom boundaries.
  bool preempted = false;
  for (int k = 1; k <= 100 && !preempted; ++k) {
    preempted = sched.ShouldPreempt(*running, Millis(10) * k);
  }
  EXPECT_TRUE(preempted);
}

TEST(QutsTest, NextDecisionTimeIsAtomExpiryWhenBusy) {
  TxnPool pool;
  QutsScheduler sched(FastOptions());
  Query* q = pool.NewQuery(0, Millis(5), 1.0, 1.0);
  Query* q2 = pool.NewQuery(0, Millis(5), 1.0, 1.0);
  sched.OnQueryArrival(q, 0);
  sched.OnQueryArrival(q2, 0);
  sched.PopNext(0);  // starts an atom at t=0
  EXPECT_EQ(sched.NextDecisionTime(1), Millis(10));
}

TEST(QutsTest, NextDecisionTimeNeverWhenIdle) {
  QutsScheduler sched(FastOptions());
  EXPECT_EQ(sched.NextDecisionTime(0), kSimTimeMax);
}

TEST(QutsTest, NextDecisionTimeMakesProgressOnExpiredAtom) {
  TxnPool pool;
  QutsScheduler sched(FastOptions());
  Query* q = pool.NewQuery(0, Millis(5), 1.0, 1.0);
  sched.OnQueryArrival(q, 0);
  sched.PopNext(0);  // atom starts at t=0, expires at t=10ms
  Update* u = pool.NewUpdate(1);
  sched.OnUpdateArrival(u, Millis(25));
  // The atom expired 15ms ago. The old code answered `now`, which let the
  // server schedule a zero-delay wake-up every step; the decision time
  // must always be strictly in the future.
  const SimTime t = sched.NextDecisionTime(Millis(25));
  EXPECT_GT(t, Millis(25));
  EXPECT_EQ(t, Millis(25) + sched.options().atom_time);
}

// ShouldPreempt boundary behavior, random slicing pinned via degenerate ρ
// (ξ ∈ [0,1): ρ=1 always draws the query side, ρ=0 always the update side).

TEST(QutsTest, BoundaryDrawForRunningSideDoesNotPreempt) {
  TxnPool pool;
  QutsScheduler::Options options = FastOptions();
  options.initial_rho = 1.0;  // every draw picks the query side
  options.freeze_rho = true;
  QutsScheduler sched(options);
  Query* q = pool.NewQuery(0, Millis(5), 1.0, 1.0);
  sched.OnQueryArrival(q, 0);
  Transaction* running = sched.PopNext(0);
  ASSERT_EQ(running, q);
  Update* u = pool.NewUpdate(1);
  sched.OnUpdateArrival(u, 1);
  // Atom boundary at t=10ms: the draw picks the query side — the side of
  // the running transaction. Its queue is empty, but the running query IS
  // the query side's work: the old fallover flipped to the update side and
  // preempted anyway, switching sides against the draw.
  EXPECT_FALSE(sched.ShouldPreempt(*running, Millis(10)));
  EXPECT_EQ(sched.current_side(), TxnKind::kQuery);
  // Mid-atom after the boundary decision: still no preemption.
  EXPECT_FALSE(sched.ShouldPreempt(*running, Millis(15)));
}

TEST(QutsTest, BoundaryDrawForEmptyOppositeSideKeepsRunningSide) {
  TxnPool pool;
  QutsScheduler::Options options = FastOptions();
  options.initial_rho = 0.0;  // every draw picks the update side
  options.freeze_rho = true;
  QutsScheduler sched(options);
  Query* q1 = pool.NewQuery(0, Millis(5), 1.0, 1.0);
  Query* q2 = pool.NewQuery(0, Millis(5), 1.0, 1.0);
  sched.OnQueryArrival(q1, 0);
  sched.OnQueryArrival(q2, 0);
  Transaction* running = sched.PopNext(0);
  // Boundary: the draw picks the update side, but no update is queued —
  // immediate state change back to the only side with work (the running
  // query's). The scheduler must not park on an empty side while a query
  // runs.
  EXPECT_FALSE(sched.ShouldPreempt(*running, Millis(10)));
  EXPECT_EQ(sched.current_side(), TxnKind::kQuery);
  EXPECT_EQ(sched.PopNext(Millis(11)), q2);
}

TEST(QutsTest, BoundaryDrawForOppositeSideWithWorkPreempts) {
  TxnPool pool;
  QutsScheduler::Options options = FastOptions();
  options.initial_rho = 0.0;  // every draw picks the update side
  options.freeze_rho = true;
  QutsScheduler sched(options);
  Query* q = pool.NewQuery(0, Millis(5), 1.0, 1.0);
  sched.OnQueryArrival(q, 0);
  Transaction* running = sched.PopNext(0);
  Update* u = pool.NewUpdate(1);
  sched.OnUpdateArrival(u, 1);
  EXPECT_TRUE(sched.ShouldPreempt(*running, Millis(10)));
  EXPECT_EQ(sched.current_side(), TxnKind::kUpdate);
}

TEST(QutsTest, DeterministicSlicingBoundarySequencePinned) {
  TxnPool pool;
  QutsScheduler::Options options = FastOptions();
  options.slicing = QutsSlicing::kDeterministic;
  options.initial_rho = 0.5;
  options.freeze_rho = true;
  QutsScheduler sched(options);
  Query* q = pool.NewQuery(0, Millis(5), 1.0, 1.0);
  sched.OnQueryArrival(q, 0);
  // PopNext's draw: credit 0.0 + 0.5 < 1 → update side, falls over to the
  // query side (idle CPU, only a query queued).
  Transaction* running = sched.PopNext(0);
  ASSERT_EQ(running, q);
  Update* u = pool.NewUpdate(1);
  sched.OnUpdateArrival(u, 1);
  // With ρ=0.5 the credit accumulator alternates exactly: 0.5+0.5=1.0 →
  // query (credit wraps to 0), then 0.5 → update, ... Each probe below is
  // one atom boundary; the query keeps running through query draws and is
  // preempted on the first update draw.
  EXPECT_FALSE(sched.ShouldPreempt(*running, Millis(10)));  // draw: query
  EXPECT_EQ(sched.current_side(), TxnKind::kQuery);
  EXPECT_TRUE(sched.ShouldPreempt(*running, Millis(20)));   // draw: update
  EXPECT_EQ(sched.current_side(), TxnKind::kUpdate);
}

TEST(QutsTest, DeterministicAcrossInstancesWithSameSeed) {
  // Draw-side sequences must match between two identically seeded schedulers.
  QutsScheduler a(FastOptions()), b(FastOptions());
  TxnPool pool_a, pool_b;
  for (int round = 0; round < 200; ++round) {
    const SimTime now = Millis(20) * (round + 1);
    Query* qa = pool_a.NewQuery(now, Millis(5), 1.0, 1.0);
    Update* ua = pool_a.NewUpdate(now);
    Query* qb = pool_b.NewQuery(now, Millis(5), 1.0, 1.0);
    Update* ub = pool_b.NewUpdate(now);
    a.OnQueryArrival(qa, now);
    a.OnUpdateArrival(ua, now);
    b.OnQueryArrival(qb, now);
    b.OnUpdateArrival(ub, now);
    EXPECT_EQ(a.PopNext(now)->kind, b.PopNext(now)->kind);
    a.PopNext(now + 1);
    b.PopNext(now + 1);
  }
}

TEST(QutsTest, DeterministicSlicingMatchesRhoShare) {
  TxnPool pool;
  QutsScheduler::Options options = FastOptions();
  options.initial_rho = 0.6;
  options.adaptation_period = Seconds(10000);  // freeze rho
  options.slicing = QutsSlicing::kDeterministic;
  QutsScheduler sched(options);
  int query_first = 0;
  const int rounds = 1000;
  for (int round = 0; round < rounds; ++round) {
    Query* q = pool.NewQuery(round, Millis(5), 1.0, 1.0);
    Update* u = pool.NewUpdate(round);
    const SimTime now = Millis(100) * (round + 1);
    sched.OnQueryArrival(q, now);
    sched.OnUpdateArrival(u, now);
    if (sched.PopNext(now)->kind == TxnKind::kQuery) ++query_first;
    sched.PopNext(now + 1);
  }
  // Bresenham slicing hits the share exactly up to floating-point drift in
  // the credit accumulator (no sampling noise).
  EXPECT_NEAR(query_first, 600, 1);
}

TEST(QutsTest, DeterministicSlicingIsPeriodic) {
  TxnPool pool;
  QutsScheduler::Options options = FastOptions();
  options.initial_rho = 0.5;
  options.adaptation_period = Seconds(10000);
  options.slicing = QutsSlicing::kDeterministic;
  QutsScheduler sched(options);
  std::vector<TxnKind> sides;
  for (int round = 0; round < 8; ++round) {
    Query* q = pool.NewQuery(round, Millis(5), 1.0, 1.0);
    Update* u = pool.NewUpdate(round);
    const SimTime now = Millis(100) * (round + 1);
    sched.OnQueryArrival(q, now);
    sched.OnUpdateArrival(u, now);
    sides.push_back(sched.PopNext(now)->kind);
    sched.PopNext(now + 1);
  }
  // rho = 0.5 alternates strictly: U, Q, U, Q, ...
  for (size_t i = 0; i < sides.size(); ++i) {
    EXPECT_EQ(sides[i],
              i % 2 == 0 ? TxnKind::kUpdate : TxnKind::kQuery);
  }
}

TEST(QutsTest, FreezeRhoDisablesAdaptation) {
  TxnPool pool;
  QutsScheduler::Options options = FastOptions();
  options.freeze_rho = true;
  options.initial_rho = 0.3;  // below the Eq. 4 floor: only legal frozen
  QutsScheduler sched(options);
  Query* q = pool.NewQuery(0, Millis(5), /*qos=*/100.0, /*qod=*/1.0);
  sched.OnQueryArrival(q, 0);
  sched.PopNext(Seconds(10));  // many windows elapse
  EXPECT_DOUBLE_EQ(sched.rho(), 0.3);
  // Frozen runs still record only the initial point.
  EXPECT_EQ(sched.rho_series().size(), 1u);
}

TEST(QutsDeathTest, InvalidOptionsAbort) {
  QutsScheduler::Options options;
  options.atom_time = 0;
  EXPECT_DEATH(QutsScheduler{options}, "");
  QutsScheduler::Options options2;
  options2.alpha = 0.0;
  EXPECT_DEATH(QutsScheduler{options2}, "");
}

}  // namespace
}  // namespace webdb
