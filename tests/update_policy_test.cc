#include "sched/update_policy.h"

#include <gtest/gtest.h>

#include "test_txns.h"

namespace webdb {
namespace {

TEST(UpdatePolicyTest, FifoPrefersEarlierArrival) {
  TxnPool pool;
  Update* early = pool.NewUpdate(10);
  Update* late = pool.NewUpdate(20);
  EXPECT_GT(UpdatePriority(*early, UpdatePolicy::kFifo, nullptr),
            UpdatePriority(*late, UpdatePolicy::kFifo, nullptr));
}

TEST(UpdatePolicyTest, DemandWeightedUsesItemWeight) {
  TxnPool pool;
  const std::vector<double> weights = {1.0, 100.0};
  Update* cold = pool.NewUpdate(0, Millis(2), /*item=*/0);
  Update* hot = pool.NewUpdate(5, Millis(2), /*item=*/1);
  EXPECT_GT(UpdatePriority(*hot, UpdatePolicy::kDemandWeighted, &weights),
            UpdatePriority(*cold, UpdatePolicy::kDemandWeighted, &weights));
}

TEST(UpdatePolicyTest, Names) {
  EXPECT_EQ(ToString(UpdatePolicy::kFifo), "fifo");
  EXPECT_EQ(ToString(UpdatePolicy::kDemandWeighted), "demand-weighted");
}

TEST(UpdatePolicyDeathTest, DemandWeightedRequiresWeights) {
  TxnPool pool;
  Update* u = pool.NewUpdate(0);
  EXPECT_DEATH(UpdatePriority(*u, UpdatePolicy::kDemandWeighted, nullptr),
               "");
}

}  // namespace
}  // namespace webdb
