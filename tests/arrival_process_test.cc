#include "trace/arrival_process.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(ArrivalProcessTest, ConstantRateMatchesExpectation) {
  Rng rng(1);
  const auto arrivals = GenerateArrivals(
      rng, [](double) { return 100.0; }, 100.0, Seconds(100));
  // ~10000 arrivals expected; Poisson stddev ~100.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 10000.0, 500.0);
}

TEST(ArrivalProcessTest, ArrivalsSortedAndInRange) {
  Rng rng(2);
  const auto arrivals = GenerateArrivals(
      rng, [](double) { return 50.0; }, 50.0, Seconds(10));
  SimTime prev = -1;
  for (SimTime t : arrivals) {
    EXPECT_GT(t, prev);
    EXPECT_GE(t, 0);
    EXPECT_LT(t, Seconds(10));
    prev = t;
  }
}

TEST(ArrivalProcessTest, ThinningTracksProfile) {
  Rng rng(3);
  // Rate 200 in the first half, 0 in the second half.
  const auto arrivals = GenerateArrivals(
      rng, [](double t) { return t < 50.0 ? 200.0 : 0.0; }, 200.0,
      Seconds(100));
  for (SimTime t : arrivals) EXPECT_LT(t, Seconds(50));
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 10000.0, 500.0);
}

TEST(ArrivalProcessTest, DeterministicForSeed) {
  Rng a(4), b(4);
  const auto profile = [](double) { return 30.0; };
  EXPECT_EQ(GenerateArrivals(a, profile, 30.0, Seconds(20)),
            GenerateArrivals(b, profile, 30.0, Seconds(20)));
}

TEST(ArrivalProcessTest, DecayingRateTrendsDownward) {
  Rng rng(5);
  const auto profile = DecayingRate(400.0, 100.0, 0.0, Seconds(100), rng);
  EXPECT_NEAR(profile(0.0), 400.0, 1.0);
  EXPECT_NEAR(profile(50.0), 250.0, 1.0);
  EXPECT_NEAR(profile(100.0), 100.0, 1.0);
}

TEST(ArrivalProcessTest, DecayingRateNoiseBounded) {
  Rng rng(6);
  const auto profile = DecayingRate(100.0, 100.0, 0.2, Seconds(50), rng);
  for (double t = 0.0; t < 50.0; t += 0.5) {
    EXPECT_GE(profile(t), 80.0 - 1e-9);
    EXPECT_LE(profile(t), 120.0 + 1e-9);
  }
}

TEST(ArrivalProcessTest, WobblyRateStaysNearBase) {
  Rng rng(7);
  const auto profile =
      WobblyRate(100.0, 0.3, /*spike_count=*/0, 1.0, 10.0, Seconds(100), rng);
  for (double t = 0.0; t < 100.0; t += 1.0) {
    EXPECT_GE(profile(t), 70.0 - 1e-9);
    EXPECT_LE(profile(t), 130.0 + 1e-9);
  }
}

TEST(ArrivalProcessTest, SpikesRaiseRate) {
  Rng rng(8);
  const auto profile =
      WobblyRate(100.0, 0.0, /*spike_count=*/3, 5.0, 10.0, Seconds(100), rng);
  double peak = 0.0;
  for (double t = 0.0; t < 100.0; t += 0.25) peak = std::max(peak, profile(t));
  EXPECT_GE(peak, 400.0);
}

TEST(ArrivalProcessTest, RateBoundCoversWobbleAndSpikes) {
  EXPECT_GE(ProfileRateBound(100.0, 0.3, 5.0), 100.0 * 1.3 * 5.0);
}

TEST(OnOffRateTest, OnlyTwoRateLevels) {
  Rng rng(9);
  const auto profile = OnOffRate(200.0, 20.0, 5.0, 5.0, Seconds(100), rng);
  for (double t = 0.0; t < 100.0; t += 0.1) {
    const double r = profile(t);
    EXPECT_TRUE(r == 200.0 || r == 20.0) << "rate " << r;
  }
}

TEST(OnOffRateTest, SpendsRoughlyHalfTimeOnWithEqualDwells) {
  Rng rng(10);
  const auto profile = OnOffRate(200.0, 20.0, 3.0, 3.0, Seconds(2000), rng);
  int on_samples = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    if (profile(2000.0 * i / samples) == 200.0) ++on_samples;
  }
  EXPECT_NEAR(static_cast<double>(on_samples) / samples, 0.5, 0.1);
}

TEST(OnOffRateTest, StartsOff) {
  Rng rng(11);
  const auto profile = OnOffRate(100.0, 1.0, 10.0, 10.0, Seconds(50), rng);
  EXPECT_DOUBLE_EQ(profile(0.0), 1.0);
}

TEST(OnOffRateTest, DrivesBurstyArrivals) {
  Rng rng(12);
  const auto profile = OnOffRate(300.0, 10.0, 2.0, 8.0, Seconds(100), rng);
  Rng arr_rng(13);
  const auto arrivals = GenerateArrivals(arr_rng, profile, 300.0,
                                         Seconds(100));
  // Expected count ≈ (0.2*300 + 0.8*10) * 100 = 6800; generous envelope.
  EXPECT_GT(arrivals.size(), 2000u);
  EXPECT_LT(arrivals.size(), 15000u);
}

}  // namespace
}  // namespace webdb
