#include "util/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42);
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(5);
  Rng child1 = a.Split();
  Rng b(5);
  Rng child2 = b.Split();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child1.NextU64(), child2.NextU64());
  }
}

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfDistribution zipf(10, 0.0);
  for (int64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(1000, 0.8);
  double sum = 0.0;
  for (int64_t k = 0; k < zipf.n(); ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfDistribution zipf(100, 1.0);
  for (int64_t k = 1; k < 100; ++k) {
    EXPECT_GT(zipf.Pmf(0), zipf.Pmf(k));
  }
}

TEST(ZipfTest, SampleMatchesPmf) {
  ZipfDistribution zipf(50, 1.0);
  Rng rng(23);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[zipf.Sample(rng)]++;
  for (int64_t k : {0, 1, 5, 20}) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Pmf(k), 0.01);
  }
}

TEST(ZipfTest, SingleItem) {
  ZipfDistribution zipf(1, 2.0);
  Rng rng(29);
  EXPECT_EQ(zipf.Sample(rng), 0);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

// Property sweep: samples always in range for many (n, exponent) combos.
class ZipfRangeTest
    : public ::testing::TestWithParam<std::tuple<int64_t, double>> {};

TEST_P(ZipfRangeTest, SamplesInRange) {
  const auto [n, s] = GetParam();
  ZipfDistribution zipf(n, s);
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    const int64_t k = zipf.Sample(rng);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfRangeTest,
    ::testing::Combine(::testing::Values<int64_t>(1, 2, 17, 1000),
                       ::testing::Values(0.0, 0.5, 1.0, 2.0)));

}  // namespace
}  // namespace webdb
