#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/logging.h"

namespace webdb {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.NumPending(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ScheduleAfterUsesNow) {
  Simulator sim;
  SimTime inner_fire_time = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { inner_fire_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fire_time, 150);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(sim.IsPending(id));
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.IsPending(id));
  EXPECT_FALSE(sim.Cancel(id));  // double-cancel is a no-op
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelFromInsideEarlierEvent) {
  Simulator sim;
  bool fired = false;
  const EventId victim = sim.ScheduleAt(20, [&] { fired = true; });
  sim.ScheduleAt(10, [&] { sim.Cancel(victim); });
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.ScheduleAt(10, [&] { fired.push_back(10); });
  sim.ScheduleAt(20, [&] { fired.push_back(20); });
  sim.RunUntil(15);
  EXPECT_EQ(fired, (std::vector<SimTime>{10}));
  EXPECT_EQ(sim.Now(), 15);
  sim.RunUntil(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.Now(), 25);
}

TEST(SimulatorTest, RunUntilInclusiveOfBoundary) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(15, [&] { fired = true; });
  sim.RunUntil(15);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.ScheduleAt(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.NumExecuted(), 1u);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) sim.ScheduleAfter(1, chain);
  };
  sim.ScheduleAt(0, chain);
  sim.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.Now(), 99);
}

// The schedule-into-the-past check is debug-tier (WEBDB_DCHECK): absent in
// plain release builds, active in Debug and -DWEBDB_AUDIT=ON builds.
#if WEBDB_DCHECK_ENABLED
TEST(SimulatorDeathTest, SchedulingInPastAborts) {
  Simulator sim;
  sim.ScheduleAt(10, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(5, [] {}), "past");
}
#endif

}  // namespace
}  // namespace webdb
