#include "sim/simulator.h"

#include <array>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.h"

namespace webdb {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.NumPending(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ScheduleAfterUsesNow) {
  Simulator sim;
  SimTime inner_fire_time = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { inner_fire_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fire_time, 150);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(sim.IsPending(id));
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.IsPending(id));
  EXPECT_FALSE(sim.Cancel(id));  // double-cancel is a no-op
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelFromInsideEarlierEvent) {
  Simulator sim;
  bool fired = false;
  const EventId victim = sim.ScheduleAt(20, [&] { fired = true; });
  sim.ScheduleAt(10, [&] { sim.Cancel(victim); });
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.ScheduleAt(10, [&] { fired.push_back(10); });
  sim.ScheduleAt(20, [&] { fired.push_back(20); });
  sim.RunUntil(15);
  EXPECT_EQ(fired, (std::vector<SimTime>{10}));
  EXPECT_EQ(sim.Now(), 15);
  sim.RunUntil(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.Now(), 25);
}

TEST(SimulatorTest, RunUntilInclusiveOfBoundary) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(15, [&] { fired = true; });
  sim.RunUntil(15);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.ScheduleAt(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.NumExecuted(), 1u);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) sim.ScheduleAfter(1, chain);
  };
  sim.ScheduleAt(0, chain);
  sim.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.Now(), 99);
}

// --- slot-arena specifics ---------------------------------------------------

TEST(SimulatorTest, StaleIdCannotTouchRecycledSlot) {
  Simulator sim;
  int first = 0, second = 0;
  const EventId a = sim.ScheduleAt(10, [&] { ++first; });
  ASSERT_TRUE(sim.Step());  // fires `a`; its slot returns to the free list
  const EventId b = sim.ScheduleAt(20, [&] { ++second; });
  // The recycled slot has a new generation: the old handle is dead.
  EXPECT_NE(a, b);
  EXPECT_FALSE(sim.IsPending(a));
  EXPECT_FALSE(sim.Cancel(a));
  EXPECT_TRUE(sim.IsPending(b));
  sim.Run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(SimulatorTest, EventIdsAreNeverZero) {
  Simulator sim;
  for (int i = 0; i < 100; ++i) {
    const EventId id = sim.ScheduleAt(i, [] {});
    EXPECT_NE(id, 0u);
    if (i % 2 == 0) sim.Cancel(id);
  }
  sim.Run();
}

TEST(SimulatorTest, ArenaReusesSlotsInsteadOfGrowing) {
  Simulator sim;
  // A ping-pong chain keeps at most two events pending; a run of thousands
  // of events must not grow the arena past that.
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5000) sim.ScheduleAfter(1, chain);
  };
  sim.ScheduleAt(0, chain);
  sim.Run();
  EXPECT_EQ(count, 5000);
  EXPECT_LE(sim.stats().slots_allocated, 2u);
  EXPECT_EQ(sim.stats().scheduled, 5000u);
}

TEST(SimulatorTest, ReserveDoesNotChangeBehavior) {
  // Two identical runs, one through Reserve: same ids, same order.
  std::vector<EventId> plain_ids, reserved_ids;
  std::vector<int> plain_order, reserved_order;
  for (bool reserve : {false, true}) {
    Simulator sim;
    if (reserve) sim.Reserve(64);
    auto& ids = reserve ? reserved_ids : plain_ids;
    auto& order = reserve ? reserved_order : plain_order;
    for (int i = 0; i < 10; ++i) {
      ids.push_back(sim.ScheduleAt(10 - i, [&order, i] { order.push_back(i); }));
    }
    sim.Cancel(ids[3]);
    sim.Run();
  }
  EXPECT_EQ(plain_ids, reserved_ids);
  EXPECT_EQ(plain_order, reserved_order);
}

TEST(SimulatorTest, SmallCallbacksStayOffTheHeap) {
  Simulator sim;
  int fired = 0;
  int* counter = &fired;
  for (int i = 0; i < 50; ++i) {
    sim.ScheduleAt(i, [counter] { ++*counter; });
  }
  sim.Run();
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(sim.stats().callback_heap_spills, 0u);
}

TEST(SimulatorTest, OversizedCallbacksSpillToHeapAndStillFire) {
  Simulator sim;
  std::array<uint64_t, 16> big{};  // 128 bytes of capture: exceeds the SBO
  big[15] = 7;
  uint64_t seen = 0;
  sim.ScheduleAt(1, [big, &seen] { seen = big[15]; });
  sim.Run();
  EXPECT_EQ(seen, 7u);
  EXPECT_EQ(sim.stats().callback_heap_spills, 1u);
}

TEST(SimulatorTest, CancelDuringStormKeepsCountsExact) {
  Simulator sim;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.ScheduleAt(i / 4, [&] { ++fired; }));
  }
  size_t cancelled = 0;
  for (size_t i = 0; i < ids.size(); i += 3) {
    if (sim.Cancel(ids[i])) ++cancelled;
  }
  EXPECT_EQ(sim.NumPending(), 1000u - cancelled);
  sim.Run();
  EXPECT_EQ(static_cast<size_t>(fired), 1000u - cancelled);
  EXPECT_EQ(sim.NumPending(), 0u);
  EXPECT_EQ(sim.stats().cancelled, cancelled);
}

// The schedule-into-the-past check is debug-tier (WEBDB_DCHECK): absent in
// plain release builds, active in Debug and -DWEBDB_AUDIT=ON builds.
#if WEBDB_DCHECK_ENABLED
TEST(SimulatorDeathTest, SchedulingInPastAborts) {
  Simulator sim;
  sim.ScheduleAt(10, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(5, [] {}), "past");
}
#endif

}  // namespace
}  // namespace webdb
