#include "sched/admission.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "sched/fifo_scheduler.h"
#include "server/web_database_server.h"
#include "test_txns.h"

namespace webdb {
namespace {

TEST(AdmitAllTest, AlwaysAdmits) {
  TxnPool pool;
  AdmitAll controller;
  AdmissionContext context;
  context.queued_queries = 1 << 20;
  EXPECT_TRUE(controller.Admit(*pool.NewQuery(0), context));
  EXPECT_EQ(controller.Name(), "admit-all");
}

TEST(QueueCapTest, RejectsBeyondCap) {
  TxnPool pool;
  QueueCapAdmission controller(3);
  Query* q = pool.NewQuery(0);
  AdmissionContext context;
  context.queued_queries = 2;
  EXPECT_TRUE(controller.Admit(*q, context));
  context.queued_queries = 3;
  EXPECT_FALSE(controller.Admit(*q, context));
  context.queued_queries = 100;
  EXPECT_FALSE(controller.Admit(*q, context));
  EXPECT_EQ(controller.RejectedCount(), 2);
}

TEST(ExpectedProfitTest, AdmitsWhenDeadlineReachable) {
  TxnPool pool;
  ExpectedProfitAdmission controller(Millis(7), /*min_worth=*/1.0);
  // rt_max 50ms, 3 queued * 7ms wait + 5ms exec = 26ms < 50ms: reachable.
  Query* q = pool.NewQuery(0, Millis(5), 10.0, 0.0, Millis(50));
  AdmissionContext context;
  context.queued_queries = 3;
  EXPECT_TRUE(controller.Admit(*q, context));
}

TEST(ExpectedProfitTest, RejectsWhenOnlyWorthlessResidualRemains) {
  TxnPool pool;
  ExpectedProfitAdmission controller(Millis(7), /*min_worth=*/1.0);
  // Deep backlog: predicted 100*7 + 5 = 705ms >> 50ms, and qod_max = 0.
  Query* q = pool.NewQuery(0, Millis(5), 10.0, 0.0, Millis(50));
  AdmissionContext context;
  context.queued_queries = 100;
  EXPECT_FALSE(controller.Admit(*q, context));
  EXPECT_EQ(controller.RejectedCount(), 1);
}

TEST(ExpectedProfitTest, QodPotentialKeepsQueryAdmitted) {
  TxnPool pool;
  ExpectedProfitAdmission controller(Millis(7), /*min_worth=*/1.0);
  // Same hopeless deadline, but $10 of QoD is still on the table
  // (QoS-Independent contracts pay for freshness even when late).
  Query* q = pool.NewQuery(0, Millis(5), 10.0, 10.0, Millis(50));
  AdmissionContext context;
  context.queued_queries = 100;
  EXPECT_TRUE(controller.Admit(*q, context));
}

TEST(ServerAdmissionTest, RejectedQueriesNeverRun) {
  Database db(2);
  FifoScheduler sched;
  QueueCapAdmission controller(1);
  ServerConfig config;
  config.admission = &controller;
  WebDatabaseServer server(&db, &sched, config);
  // Block the CPU, then stack queries: the second submission sees one
  // queued query and is rejected.
  server.SubmitUpdate(0, 1.0, Millis(20));
  Query* admitted = nullptr;
  Query* rejected = nullptr;
  server.sim().ScheduleAt(Millis(1), [&] {
    admitted = server.SubmitQuery(
        QueryType::kLookup, {0},
        QualityContract::Make(QcShape::kStep, 5.0, Millis(100), 5.0, 1.0),
        Millis(5));
  });
  server.sim().ScheduleAt(Millis(2), [&] {
    rejected = server.SubmitQuery(
        QueryType::kLookup, {1},
        QualityContract::Make(QcShape::kStep, 5.0, Millis(100), 5.0, 1.0),
        Millis(5));
  });
  server.Run();
  ASSERT_NE(admitted, nullptr);
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(admitted->state, TxnState::kCommitted);
  EXPECT_EQ(rejected->state, TxnState::kRejected);
  EXPECT_EQ(server.metrics().queries_rejected, 1);
  EXPECT_EQ(server.metrics().queries_committed, 1);
  // The rejected query still counts toward the submitted maximum.
  EXPECT_DOUBLE_EQ(server.ledger().total_max(), 20.0);
  EXPECT_DOUBLE_EQ(server.ledger().total_gained(), 10.0);
  EXPECT_TRUE(server.IsQuiescent());
}

TEST(ServerAdmissionTest, ConservationIncludesRejections) {
  Database db(4);
  FifoScheduler sched;
  QueueCapAdmission controller(2);
  ServerConfig config;
  config.admission = &controller;
  WebDatabaseServer server(&db, &sched, config);
  server.SubmitUpdate(0, 1.0, Millis(50));
  for (int i = 0; i < 10; ++i) {
    server.sim().ScheduleAt(Millis(1 + i), [&server, i] {
      server.SubmitQuery(
          QueryType::kLookup, {static_cast<ItemId>(i % 4)},
          QualityContract::Make(QcShape::kStep, 1.0, Millis(100), 1.0, 1.0),
          Millis(5));
    });
  }
  server.Run();
  const ServerMetrics& metrics = server.metrics();
  EXPECT_EQ(metrics.queries_submitted, 10);
  EXPECT_EQ(metrics.queries_committed + metrics.queries_dropped +
                metrics.queries_rejected,
            metrics.queries_submitted);
  EXPECT_GT(metrics.queries_rejected, 0);
}

}  // namespace
}  // namespace webdb
