#include "sched/admission.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "sched/fifo_scheduler.h"
#include "server/web_database_server.h"
#include "test_txns.h"

namespace webdb {
namespace {

TEST(AdmitAllTest, AlwaysAdmits) {
  TxnPool pool;
  AdmitAll controller;
  AdmissionContext context;
  context.queued_queries = 1 << 20;
  EXPECT_TRUE(controller.Admit(*pool.NewQuery(0), context));
  EXPECT_EQ(controller.Name(), "admit-all");
}

TEST(QueueCapTest, RejectsBeyondCap) {
  TxnPool pool;
  QueueCapAdmission controller(3);
  Query* q = pool.NewQuery(0);
  AdmissionContext context;
  context.queued_queries = 2;
  EXPECT_TRUE(controller.Admit(*q, context));
  context.queued_queries = 3;
  EXPECT_FALSE(controller.Admit(*q, context));
  context.queued_queries = 100;
  EXPECT_FALSE(controller.Admit(*q, context));
  EXPECT_EQ(controller.RejectedCount(), 2);
}

TEST(ExpectedProfitTest, AdmitsWhenDeadlineReachable) {
  TxnPool pool;
  ExpectedProfitAdmission controller(Millis(7), /*min_worth=*/1.0);
  // rt_max 50ms, 3 queued * 7ms wait + 5ms exec = 26ms < 50ms: reachable.
  Query* q = pool.NewQuery(0, Millis(5), 10.0, 0.0, Millis(50));
  AdmissionContext context;
  context.queued_queries = 3;
  EXPECT_TRUE(controller.Admit(*q, context));
}

TEST(ExpectedProfitTest, RejectsWhenOnlyWorthlessResidualRemains) {
  TxnPool pool;
  ExpectedProfitAdmission controller(Millis(7), /*min_worth=*/1.0);
  // Deep backlog: predicted 100*7 + 5 = 705ms >> 50ms, and qod_max = 0.
  Query* q = pool.NewQuery(0, Millis(5), 10.0, 0.0, Millis(50));
  AdmissionContext context;
  context.queued_queries = 100;
  EXPECT_FALSE(controller.Admit(*q, context));
  EXPECT_EQ(controller.RejectedCount(), 1);
}

TEST(ExpectedProfitTest, QodPotentialKeepsQueryAdmitted) {
  TxnPool pool;
  ExpectedProfitAdmission controller(Millis(7), /*min_worth=*/1.0);
  // Same hopeless deadline, but $10 of QoD is still on the table
  // (QoS-Independent contracts pay for freshness even when late).
  Query* q = pool.NewQuery(0, Millis(5), 10.0, 10.0, Millis(50));
  AdmissionContext context;
  context.queued_queries = 100;
  EXPECT_TRUE(controller.Admit(*q, context));
}

TEST(ExpectedProfitTest, MinWorthBoundaryIsInclusive) {
  TxnPool pool;
  // qod_max = 3 is the only residual once the deadline is unreachable:
  // min_worth == residual admits (>=), one epsilon above rejects.
  Query* q = pool.NewQuery(0, Millis(5), 10.0, 3.0, Millis(50));
  AdmissionContext context;
  context.queued_queries = 100;
  ExpectedProfitAdmission at_boundary(Millis(7), /*min_worth=*/3.0);
  EXPECT_TRUE(at_boundary.Admit(*q, context));
  ExpectedProfitAdmission above_boundary(Millis(7), /*min_worth=*/3.0 + 1e-9);
  EXPECT_FALSE(above_boundary.Admit(*q, context));
}

TEST(ExpectedProfitTest, BusyCpuCountsTowardBacklog) {
  TxnPool pool;
  ExpectedProfitAdmission controller(Millis(10), /*min_worth=*/1.0);
  // 4 queued * 10ms + 5ms exec = 45ms < 50ms: reachable while idle...
  Query* q = pool.NewQuery(0, Millis(5), 10.0, 0.0, Millis(50));
  AdmissionContext context;
  context.queued_queries = 4;
  context.cpu_busy = false;
  EXPECT_TRUE(controller.Admit(*q, context));
  // ...but the in-flight transaction tips it over: (4+1)*10 + 5 = 55ms.
  context.cpu_busy = true;
  EXPECT_FALSE(controller.Admit(*q, context));
  EXPECT_EQ(controller.RejectedCount(), 1);
}

TEST(QueueCapTest, RejectedCountTracksMixedSequences) {
  TxnPool pool;
  QueueCapAdmission controller(2);
  Query* q = pool.NewQuery(0);
  AdmissionContext context;
  int64_t expected_rejected = 0;
  // Queue depth oscillates across the cap; only the at/above-cap calls
  // count, independent of ordering.
  for (int64_t depth : {0, 2, 1, 3, 2, 0, 5, 1, 2, 2}) {
    context.queued_queries = depth;
    const bool admitted = controller.Admit(*q, context);
    EXPECT_EQ(admitted, depth < 2) << "depth " << depth;
    if (!admitted) ++expected_rejected;
  }
  EXPECT_EQ(controller.RejectedCount(), expected_rejected);
  EXPECT_EQ(expected_rejected, 6);
}

TEST(TenantSetTest, ParseRoundTripsAndRejectsMalformed) {
  const std::optional<TenantSet> tenants = TenantSet::Parse("free:4,premium:1");
  ASSERT_TRUE(tenants.has_value());
  ASSERT_EQ(tenants->NumTiers(), 2);
  EXPECT_EQ(tenants->Tier(0).name, "free");
  EXPECT_DOUBLE_EQ(tenants->WeightFor(0), 4.0);
  EXPECT_EQ(tenants->Tier(1).name, "premium");
  EXPECT_DOUBLE_EQ(tenants->WeightFor(1), 1.0);
  // Unknown tenant ids fall back to weight 1.
  EXPECT_DOUBLE_EQ(tenants->WeightFor(7), 1.0);
  EXPECT_DOUBLE_EQ(tenants->WeightFor(-1), 1.0);
  EXPECT_EQ(tenants->Spec(), "free:4,premium:1");

  for (const char* bad : {"", "free", "free:", ":4", "free:0", "free:-1",
                          "free:4,", "free:4,,premium:1", "free:x"}) {
    EXPECT_FALSE(TenantSet::Parse(bad).has_value()) << "'" << bad << "'";
  }
}

// Records Shed calls without a server; answers true/false per a scripted
// allowance.
class TestShedSink final : public ShedSink {
 public:
  explicit TestShedSink(DbfAdmission* controller) : controller_(controller) {}

  bool Shed(TxnId id) override {
    shed_ids.push_back(id);
    if (!allow_shed) return false;
    // Mirror the server: release the controller's demand for the victim.
    if (victims != nullptr) {
      for (const Query* query : *victims) {
        if (query->id == id) {
          controller_->OnQueryFinished(*query, now);
          return true;
        }
      }
      ADD_FAILURE() << "shed of unknown victim";
      return false;
    }
    return true;
  }

  DbfAdmission* controller_;
  std::vector<TxnId> shed_ids;
  const std::vector<const Query*>* victims = nullptr;
  SimTime now = 0;
  bool allow_shed = true;
};

TEST(DbfAdmissionTest, AdmitsUntilLaneSupplyIsSpent) {
  TxnPool pool;
  DbfAdmission::Options options;
  options.num_cpus = 1;
  DbfAdmission controller(std::move(options));
  AdmissionContext context;  // no shed sink: reject-only
  // Each query: 10ms of demand against a 30ms deadline. Three fit
  // (30ms supply at the shared deadline), the fourth cannot.
  for (int i = 0; i < 3; ++i) {
    Query* q = pool.NewQuery(0, Millis(10), 10.0, 0.0, Millis(30));
    EXPECT_TRUE(controller.Admit(*q, context)) << i;
    EXPECT_TRUE(controller.IsTracked(q->id));
  }
  EXPECT_EQ(controller.QueuedDemand(0), Millis(30));
  Query* overflow = pool.NewQuery(0, Millis(10), 10.0, 0.0, Millis(30));
  EXPECT_FALSE(controller.Admit(*overflow, context));
  EXPECT_EQ(controller.RejectedCount(), 1);
  // A later deadline still has room: 40ms supply vs 30 + 5 demand.
  Query* later = pool.NewQuery(0, Millis(5), 10.0, 0.0, Millis(40));
  EXPECT_TRUE(controller.Admit(*later, context));
  // An earlier deadline does not: it must fit under every later node too.
  Query* earlier = pool.NewQuery(0, Millis(5), 10.0, 0.0, Millis(10));
  EXPECT_FALSE(controller.Admit(*earlier, context));
  EXPECT_EQ(controller.TrackedCount(), 4);
  controller.AuditInvariants(0);
}

TEST(DbfAdmissionTest, FinishedQueriesReleaseDemand) {
  TxnPool pool;
  DbfAdmission::Options options;
  options.num_cpus = 1;
  DbfAdmission controller(std::move(options));
  AdmissionContext context;
  Query* a = pool.NewQuery(0, Millis(15), 10.0, 0.0, Millis(30));
  Query* b = pool.NewQuery(0, Millis(15), 10.0, 0.0, Millis(30));
  EXPECT_TRUE(controller.Admit(*a, context));
  EXPECT_TRUE(controller.Admit(*b, context));
  Query* c = pool.NewQuery(0, Millis(15), 10.0, 0.0, Millis(30));
  EXPECT_FALSE(controller.Admit(*c, context));
  controller.OnQueryFinished(*a, Millis(1));
  EXPECT_FALSE(controller.IsTracked(a->id));
  // a's 15ms released; c now fits (15 + 15 <= 29ms remaining supply).
  context.now = Millis(1);
  Query* d = pool.NewQuery(Millis(1), Millis(14), 10.0, 0.0, Millis(29));
  EXPECT_TRUE(controller.Admit(*d, context));
  controller.AuditInvariants(Millis(1));
}

TEST(DbfAdmissionTest, ShedsLowerWorthWorkToFitHigherWorth) {
  TxnPool pool;
  DbfAdmission::Options options;
  options.num_cpus = 1;
  DbfAdmission controller(std::move(options));
  TestShedSink sink(&controller);
  AdmissionContext context;
  context.shed_sink = &sink;
  // Fill the lane with three cheap ($2) queries...
  std::vector<const Query*> victims;
  for (int i = 0; i < 3; ++i) {
    Query* q = pool.NewQuery(0, Millis(10), 2.0, 0.0, Millis(30));
    ASSERT_TRUE(controller.Admit(*q, context));
    victims.push_back(q);
  }
  sink.victims = &victims;
  // ...then a $40 query arrives: worth shedding one victim for.
  Query* vip = pool.NewQuery(0, Millis(10), 40.0, 0.0, Millis(30));
  EXPECT_TRUE(controller.Admit(*vip, context));
  EXPECT_EQ(sink.shed_ids.size(), 1u);
  EXPECT_EQ(sink.shed_ids[0], victims[0]->id);  // lowest worth, lowest id
  EXPECT_EQ(controller.ShedCount(), 1);
  EXPECT_TRUE(controller.IsTracked(vip->id));
  EXPECT_EQ(controller.QueuedDemand(0), Millis(30));
  controller.AuditInvariants(0);
}

TEST(DbfAdmissionTest, NeverShedsForAQueryThatStillWontFit) {
  TxnPool pool;
  DbfAdmission::Options options;
  options.num_cpus = 1;
  DbfAdmission controller(std::move(options));
  TestShedSink sink(&controller);
  AdmissionContext context;
  context.shed_sink = &sink;
  std::vector<const Query*> victims;
  // One cheap query, then a huge high-worth query that cannot fit even on
  // an empty lane: the plan is infeasible, so nothing may be shed.
  Query* cheap = pool.NewQuery(0, Millis(10), 2.0, 0.0, Millis(30));
  ASSERT_TRUE(controller.Admit(*cheap, context));
  victims.push_back(cheap);
  sink.victims = &victims;
  Query* huge = pool.NewQuery(0, Millis(50), 100.0, 0.0, Millis(30));
  EXPECT_FALSE(controller.Admit(*huge, context));
  EXPECT_TRUE(sink.shed_ids.empty());
  EXPECT_EQ(controller.ShedCount(), 0);
  EXPECT_TRUE(controller.IsTracked(cheap->id));
  EXPECT_EQ(controller.RejectedCount(), 1);
}

TEST(DbfAdmissionTest, EqualWorthNeverTriggersShedding) {
  TxnPool pool;
  DbfAdmission::Options options;
  options.num_cpus = 1;
  DbfAdmission controller(std::move(options));
  TestShedSink sink(&controller);
  AdmissionContext context;
  context.shed_sink = &sink;
  std::vector<const Query*> victims;
  for (int i = 0; i < 3; ++i) {
    Query* q = pool.NewQuery(0, Millis(10), 10.0, 0.0, Millis(30));
    ASSERT_TRUE(controller.Admit(*q, context));
    victims.push_back(q);
  }
  sink.victims = &victims;
  // Same worth as the queued work: strictly-below is required, so the
  // newcomer is rejected and the queue is left alone (no thrashing).
  Query* peer = pool.NewQuery(0, Millis(10), 10.0, 0.0, Millis(30));
  EXPECT_FALSE(controller.Admit(*peer, context));
  EXPECT_TRUE(sink.shed_ids.empty());
  EXPECT_EQ(controller.RejectedCount(), 1);
}

TEST(DbfAdmissionTest, BestEffortQueriesBypassDemandAccounting) {
  TxnPool pool;
  DbfAdmission::Options options;
  options.num_cpus = 1;
  DbfAdmission controller(std::move(options));
  AdmissionContext context;
  // An empty contract (rt_max = 0, the ZeroContracts mode) has no QoS
  // deadline: always admitted, never tracked.
  for (int i = 0; i < 100; ++i) {
    Query* q = pool.NewQuery(0, Millis(10));
    q->qc = QualityContract();
    EXPECT_TRUE(controller.Admit(*q, context));
    EXPECT_FALSE(controller.IsTracked(q->id));
  }
  EXPECT_EQ(controller.TrackedCount(), 0);
  EXPECT_EQ(controller.QueuedDemand(0), 0);
}

TEST(DbfAdmissionTest, TenantWeightMultipliesChargedDemand) {
  TxnPool pool;
  DbfAdmission::Options options;
  options.num_cpus = 1;
  options.tenants = *TenantSet::Parse("free:4,premium:1");
  DbfAdmission controller(std::move(options));
  AdmissionContext context;
  // A free-tier query is charged 4x its service time: 10ms costs 40ms of
  // budget, so only one fits under a 50ms deadline...
  Query* free1 = pool.NewQuery(0, Millis(10), 10.0, 0.0, Millis(50));
  free1->tenant = 0;
  EXPECT_TRUE(controller.Admit(*free1, context));
  EXPECT_EQ(controller.PlacementOf(free1->id).demand, Millis(40));
  Query* free2 = pool.NewQuery(0, Millis(10), 10.0, 0.0, Millis(50));
  free2->tenant = 0;
  EXPECT_FALSE(controller.Admit(*free2, context));
  // ...while premium demand is charged at face value and still fits.
  Query* premium = pool.NewQuery(0, Millis(10), 10.0, 0.0, Millis(50));
  premium->tenant = 1;
  EXPECT_TRUE(controller.Admit(*premium, context));
  EXPECT_EQ(controller.PlacementOf(premium->id).demand, Millis(10));
  controller.AuditInvariants(0);
}

TEST(DbfAdmissionTest, SpreadsDemandAcrossCpuLanes) {
  TxnPool pool;
  DbfAdmission::Options options;
  options.num_cpus = 2;
  DbfAdmission controller(std::move(options));
  AdmissionContext context;
  context.num_cpus = 2;
  // 30ms of demand saturates lane 0; the next admission must first-fit
  // into lane 1 instead of rejecting.
  std::vector<Query*> queries;
  for (int i = 0; i < 6; ++i) {
    Query* q = pool.NewQuery(0, Millis(10), 10.0, 0.0, Millis(30));
    queries.push_back(q);
    EXPECT_TRUE(controller.Admit(*q, context)) << i;
  }
  EXPECT_EQ(controller.QueuedDemand(0), Millis(30));
  EXPECT_EQ(controller.QueuedDemand(1), Millis(30));
  Query* overflow = pool.NewQuery(0, Millis(10), 10.0, 0.0, Millis(30));
  EXPECT_FALSE(controller.Admit(*overflow, context));
}

TEST(ServerAdmissionTest, RejectedQueriesNeverRun) {
  Database db(2);
  FifoScheduler sched;
  QueueCapAdmission controller(1);
  ServerConfig config;
  config.admission = &controller;
  WebDatabaseServer server(&db, &sched, config);
  // Block the CPU, then stack queries: the second submission sees one
  // queued query and is rejected.
  server.SubmitUpdate(0, 1.0, Millis(20));
  Query* admitted = nullptr;
  Query* rejected = nullptr;
  server.sim().ScheduleAt(Millis(1), [&] {
    admitted = server.SubmitQuery(
        QueryType::kLookup, {0},
        QualityContract::Make(QcShape::kStep, 5.0, Millis(100), 5.0, 1.0),
        Millis(5));
  });
  server.sim().ScheduleAt(Millis(2), [&] {
    rejected = server.SubmitQuery(
        QueryType::kLookup, {1},
        QualityContract::Make(QcShape::kStep, 5.0, Millis(100), 5.0, 1.0),
        Millis(5));
  });
  server.Run();
  ASSERT_NE(admitted, nullptr);
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(admitted->state, TxnState::kCommitted);
  EXPECT_EQ(rejected->state, TxnState::kRejected);
  EXPECT_EQ(server.metrics().queries_rejected, 1);
  EXPECT_EQ(server.metrics().queries_committed, 1);
  // The rejected query still counts toward the submitted maximum.
  EXPECT_DOUBLE_EQ(server.ledger().total_max(), 20.0);
  EXPECT_DOUBLE_EQ(server.ledger().total_gained(), 10.0);
  EXPECT_TRUE(server.IsQuiescent());
}

TEST(ServerAdmissionTest, ConservationIncludesRejections) {
  Database db(4);
  FifoScheduler sched;
  QueueCapAdmission controller(2);
  ServerConfig config;
  config.admission = &controller;
  WebDatabaseServer server(&db, &sched, config);
  server.SubmitUpdate(0, 1.0, Millis(50));
  for (int i = 0; i < 10; ++i) {
    server.sim().ScheduleAt(Millis(1 + i), [&server, i] {
      server.SubmitQuery(
          QueryType::kLookup, {static_cast<ItemId>(i % 4)},
          QualityContract::Make(QcShape::kStep, 1.0, Millis(100), 1.0, 1.0),
          Millis(5));
    });
  }
  server.Run();
  const ServerMetrics& metrics = server.metrics();
  EXPECT_EQ(metrics.queries_submitted, 10);
  EXPECT_EQ(metrics.queries_committed + metrics.queries_dropped +
                metrics.queries_rejected,
            metrics.queries_submitted);
  EXPECT_GT(metrics.queries_rejected, 0);
}

}  // namespace
}  // namespace webdb
