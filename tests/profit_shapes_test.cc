// Tests for the extended profit-function shapes (piecewise-linear,
// exponential decay) beyond the paper's step/linear.

#include <gtest/gtest.h>

#include "qc/profit_function.h"

namespace webdb {
namespace {

using Point = PiecewiseLinearProfitFunction::Point;

TEST(PiecewiseLinearTest, FlatBeforeFirstPoint) {
  PiecewiseLinearProfitFunction fn({{10.0, 8.0}, {20.0, 2.0}});
  EXPECT_DOUBLE_EQ(fn.Profit(0.0), 8.0);
  EXPECT_DOUBLE_EQ(fn.Profit(10.0), 8.0);
  EXPECT_DOUBLE_EQ(fn.MaxProfit(), 8.0);
}

TEST(PiecewiseLinearTest, InterpolatesBetweenPoints) {
  PiecewiseLinearProfitFunction fn({{10.0, 8.0}, {20.0, 2.0}});
  EXPECT_DOUBLE_EQ(fn.Profit(15.0), 5.0);
  EXPECT_DOUBLE_EQ(fn.Profit(12.5), 6.5);
}

TEST(PiecewiseLinearTest, ZeroAtAndBeyondLastPoint) {
  PiecewiseLinearProfitFunction fn({{10.0, 8.0}, {20.0, 2.0}});
  EXPECT_DOUBLE_EQ(fn.Profit(20.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.Profit(100.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.Cutoff(), 20.0);
}

TEST(PiecewiseLinearTest, SinglePointActsAsStep) {
  PiecewiseLinearProfitFunction fn({{5.0, 3.0}});
  EXPECT_DOUBLE_EQ(fn.Profit(4.9), 3.0);
  EXPECT_DOUBLE_EQ(fn.Profit(5.0), 3.0);  // flat up to the point itself
  EXPECT_DOUBLE_EQ(fn.Profit(5.1), 0.0);
}

TEST(PiecewiseLinearTest, ThreeTierContract) {
  // Full / half / nothing, with ramps between tiers.
  PiecewiseLinearProfitFunction fn({{1.0, 10.0}, {2.0, 5.0}, {4.0, 5.0}});
  EXPECT_DOUBLE_EQ(fn.Profit(0.5), 10.0);
  EXPECT_DOUBLE_EQ(fn.Profit(1.5), 7.5);
  EXPECT_DOUBLE_EQ(fn.Profit(3.0), 5.0);
  EXPECT_DOUBLE_EQ(fn.Profit(4.0), 0.0);
}

TEST(PiecewiseLinearTest, IsNonIncreasingProperty) {
  PiecewiseLinearProfitFunction fn(
      {{1.0, 10.0}, {2.0, 6.0}, {3.0, 6.0}, {8.0, 1.0}});
  EXPECT_TRUE(IsNonIncreasing(fn, 12.0, 2000));
}

TEST(PiecewiseLinearTest, DebugStringListsPoints) {
  PiecewiseLinearProfitFunction fn({{1.0, 2.0}});
  EXPECT_NE(fn.DebugString().find("piecewise"), std::string::npos);
  EXPECT_NE(fn.DebugString().find("1:2"), std::string::npos);
}

TEST(PiecewiseLinearDeathTest, RejectsBadPoints) {
  EXPECT_DEATH(PiecewiseLinearProfitFunction({}), "");
  EXPECT_DEATH(PiecewiseLinearProfitFunction({{2.0, 1.0}, {1.0, 0.5}}),
               "ascending");
  EXPECT_DEATH(PiecewiseLinearProfitFunction({{1.0, 1.0}, {2.0, 3.0}}),
               "non-increasing");
}

TEST(ExponentialDecayTest, DecaysFromMax) {
  ExponentialDecayProfitFunction fn(10.0, 5.0);
  EXPECT_DOUBLE_EQ(fn.Profit(0.0), 10.0);
  EXPECT_NEAR(fn.Profit(5.0), 10.0 / 2.718281828, 1e-6);
  EXPECT_NEAR(fn.Profit(10.0), 10.0 / (2.718281828 * 2.718281828), 1e-6);
}

TEST(ExponentialDecayTest, CutoffAtFloorRatio) {
  ExponentialDecayProfitFunction fn(10.0, 5.0, /*floor_ratio=*/0.01);
  // cutoff = 5 * ln(100) ≈ 23.03
  EXPECT_NEAR(fn.Cutoff(), 23.0259, 1e-3);
  EXPECT_GT(fn.Profit(fn.Cutoff() - 0.01), 0.0);
  EXPECT_DOUBLE_EQ(fn.Profit(fn.Cutoff()), 0.0);
  EXPECT_DOUBLE_EQ(fn.Profit(1000.0), 0.0);
}

TEST(ExponentialDecayTest, IsNonIncreasingProperty) {
  ExponentialDecayProfitFunction fn(7.0, 3.0, 0.05);
  EXPECT_TRUE(IsNonIncreasing(fn, 50.0, 2000));
}

TEST(ExponentialDecayDeathTest, RejectsBadParams) {
  EXPECT_DEATH(ExponentialDecayProfitFunction(1.0, 0.0), "");
  EXPECT_DEATH(ExponentialDecayProfitFunction(1.0, 1.0, 1.5), "");
}

}  // namespace
}  // namespace webdb
