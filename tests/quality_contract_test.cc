#include "qc/quality_contract.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(QualityContractTest, DefaultIsZeroContract) {
  QualityContract qc;
  EXPECT_DOUBLE_EQ(qc.qos_max(), 0.0);
  EXPECT_DOUBLE_EQ(qc.qod_max(), 0.0);
  EXPECT_DOUBLE_EQ(qc.total_max(), 0.0);
  const auto eval = qc.Evaluate(Millis(1), 0.0);
  EXPECT_DOUBLE_EQ(eval.Total(), 0.0);
}

TEST(QualityContractTest, StepContractFigure2) {
  // Figure 2: qos_max=$1, rt_max=50ms, qod_max=$2, uu_max=1.
  const auto qc = QualityContract::Make(QcShape::kStep, 1.0, Millis(50), 2.0,
                                        1.0);
  EXPECT_DOUBLE_EQ(qc.qos_max(), 1.0);
  EXPECT_DOUBLE_EQ(qc.qod_max(), 2.0);
  EXPECT_EQ(qc.rt_max(), Millis(50));
  EXPECT_DOUBLE_EQ(qc.uu_max(), 1.0);

  EXPECT_DOUBLE_EQ(qc.QosProfit(Millis(20)), 1.0);
  EXPECT_DOUBLE_EQ(qc.QosProfit(Millis(50)), 0.0);
  EXPECT_DOUBLE_EQ(qc.QodProfit(0.0), 2.0);
  EXPECT_DOUBLE_EQ(qc.QodProfit(1.0), 0.0);
}

TEST(QualityContractTest, LinearContractFigure3) {
  // Figure 3: qos_max=$2, rt_max=50ms, qod_max=$1, uu_max=2.
  const auto qc = QualityContract::Make(QcShape::kLinear, 2.0, Millis(50),
                                        1.0, 2.0);
  EXPECT_DOUBLE_EQ(qc.QosProfit(0), 2.0);
  EXPECT_DOUBLE_EQ(qc.QosProfit(Millis(25)), 1.0);
  EXPECT_DOUBLE_EQ(qc.QosProfit(Millis(50)), 0.0);
  EXPECT_DOUBLE_EQ(qc.QodProfit(1.0), 0.5);
  EXPECT_DOUBLE_EQ(qc.QodProfit(2.0), 0.0);
}

TEST(QualityContractTest, QosIndependentEarnsQodAfterDeadline) {
  const auto qc = QualityContract::Make(QcShape::kStep, 1.0, Millis(50), 2.0,
                                        1.0, QcCombination::kQosIndependent);
  const auto eval = qc.Evaluate(Millis(200), 0.0);  // late but fresh
  EXPECT_DOUBLE_EQ(eval.qos, 0.0);
  EXPECT_DOUBLE_EQ(eval.qod, 2.0);
  EXPECT_DOUBLE_EQ(eval.Total(), 2.0);
}

TEST(QualityContractTest, QosDependentForfeitsQodAfterDeadline) {
  const auto qc = QualityContract::Make(QcShape::kStep, 1.0, Millis(50), 2.0,
                                        1.0, QcCombination::kQosDependent);
  const auto late = qc.Evaluate(Millis(200), 0.0);
  EXPECT_DOUBLE_EQ(late.qod, 0.0);
  EXPECT_DOUBLE_EQ(late.Total(), 0.0);
  const auto in_time = qc.Evaluate(Millis(20), 0.0);
  EXPECT_DOUBLE_EQ(in_time.Total(), 3.0);
}

TEST(QualityContractTest, StaleQueryEarnsOnlyQos) {
  const auto qc = QualityContract::Make(QcShape::kStep, 1.0, Millis(50), 2.0,
                                        1.0);
  const auto eval = qc.Evaluate(Millis(10), 3.0);
  EXPECT_DOUBLE_EQ(eval.qos, 1.0);
  EXPECT_DOUBLE_EQ(eval.qod, 0.0);
}

TEST(QualityContractTest, CopyIsCheapAndShared) {
  const auto a =
      QualityContract::Make(QcShape::kStep, 5.0, Millis(80), 7.0, 1.0);
  const QualityContract b = a;  // shared immutable functions
  EXPECT_DOUBLE_EQ(b.qos_max(), 5.0);
  EXPECT_DOUBLE_EQ(b.qod_max(), 7.0);
  EXPECT_EQ(&a.qos_fn(), &b.qos_fn());
}

TEST(QualityContractTest, DebugStringMentionsShapeAndMode) {
  const auto qc =
      QualityContract::Make(QcShape::kLinear, 1.0, Millis(50), 2.0, 1.0);
  const std::string s = qc.DebugString();
  EXPECT_NE(s.find("linear"), std::string::npos);
  EXPECT_NE(s.find("qos-independent"), std::string::npos);
}

TEST(QualityContractTest, ToStringHelpers) {
  EXPECT_EQ(ToString(QcShape::kStep), "step");
  EXPECT_EQ(ToString(QcShape::kLinear), "linear");
  EXPECT_EQ(ToString(QcCombination::kQosDependent), "qos-dependent");
}

// Property: evaluation never exceeds the contract maxima and is monotone in
// response time and staleness.
class ContractBoundsTest : public ::testing::TestWithParam<QcShape> {};

TEST_P(ContractBoundsTest, BoundedAndMonotone) {
  const auto qc =
      QualityContract::Make(GetParam(), 13.0, Millis(60), 17.0, 3.0);
  double prev_qos = 1e18;
  for (SimDuration rt = 0; rt <= Millis(120); rt += Millis(5)) {
    const double qos = qc.QosProfit(rt);
    EXPECT_GE(qos, 0.0);
    EXPECT_LE(qos, qc.qos_max());
    EXPECT_LE(qos, prev_qos);
    prev_qos = qos;
  }
  double prev_qod = 1e18;
  for (double uu = 0.0; uu <= 6.0; uu += 0.25) {
    const double qod = qc.QodProfit(uu);
    EXPECT_GE(qod, 0.0);
    EXPECT_LE(qod, qc.qod_max());
    EXPECT_LE(qod, prev_qod);
    prev_qod = qod;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ContractBoundsTest,
                         ::testing::Values(QcShape::kStep, QcShape::kLinear));

}  // namespace
}  // namespace webdb
