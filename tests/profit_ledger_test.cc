#include "qc/profit_ledger.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

QualityContract MakeQc(double qos, double qod) {
  return QualityContract::Make(QcShape::kStep, qos, Millis(50), qod, 1.0);
}

TEST(ProfitLedgerTest, EmptyLedgerIsAllZero) {
  ProfitLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.total_max(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.TotalPct(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.QosMaxPct(), 0.0);
}

TEST(ProfitLedgerTest, TracksMaxOnSubmission) {
  ProfitLedger ledger;
  ledger.OnQuerySubmitted(MakeQc(10.0, 30.0), Seconds(1));
  ledger.OnQuerySubmitted(MakeQc(20.0, 40.0), Seconds(2));
  EXPECT_DOUBLE_EQ(ledger.qos_max(), 30.0);
  EXPECT_DOUBLE_EQ(ledger.qod_max(), 70.0);
  EXPECT_DOUBLE_EQ(ledger.total_max(), 100.0);
  EXPECT_DOUBLE_EQ(ledger.QosMaxPct(), 0.3);
  EXPECT_DOUBLE_EQ(ledger.QodMaxPct(), 0.7);
}

TEST(ProfitLedgerTest, TracksGainedOnCommit) {
  ProfitLedger ledger;
  ledger.OnQuerySubmitted(MakeQc(10.0, 10.0), 0);
  ledger.OnQueryCommitted({5.0, 10.0}, Seconds(1));
  EXPECT_DOUBLE_EQ(ledger.qos_gained(), 5.0);
  EXPECT_DOUBLE_EQ(ledger.qod_gained(), 10.0);
  EXPECT_DOUBLE_EQ(ledger.QosPct(), 0.25);
  EXPECT_DOUBLE_EQ(ledger.QodPct(), 0.5);
  EXPECT_DOUBLE_EQ(ledger.TotalPct(), 0.75);
}

TEST(ProfitLedgerTest, SeriesBucketedBySecond) {
  ProfitLedger ledger;
  ledger.OnQuerySubmitted(MakeQc(10.0, 20.0), Millis(500));   // second 0
  ledger.OnQuerySubmitted(MakeQc(30.0, 40.0), Millis(1500));  // second 1
  ledger.OnQueryCommitted({1.0, 2.0}, Millis(2500));          // second 2
  EXPECT_DOUBLE_EQ(ledger.qos_max_series().BucketSum(0), 10.0);
  EXPECT_DOUBLE_EQ(ledger.qod_max_series().BucketSum(0), 20.0);
  EXPECT_DOUBLE_EQ(ledger.qos_max_series().BucketSum(1), 30.0);
  EXPECT_DOUBLE_EQ(ledger.qos_gained_series().BucketSum(2), 1.0);
  EXPECT_DOUBLE_EQ(ledger.qod_gained_series().BucketSum(2), 2.0);
}

TEST(ProfitLedgerTest, PctNeverExceedsOneForValidEvaluations) {
  ProfitLedger ledger;
  for (int i = 0; i < 100; ++i) {
    const auto qc = MakeQc(10.0, 10.0);
    ledger.OnQuerySubmitted(qc, Seconds(i));
    ledger.OnQueryCommitted(qc.Evaluate(Millis(10), 0.0), Seconds(i));
  }
  EXPECT_DOUBLE_EQ(ledger.TotalPct(), 1.0);
}

}  // namespace
}  // namespace webdb
