#include "sched/fifo_scheduler.h"

#include <gtest/gtest.h>

#include "test_txns.h"

namespace webdb {
namespace {

TEST(FifoSchedulerTest, NameAndEmptyState) {
  FifoScheduler sched;
  EXPECT_EQ(sched.Name(), "FIFO");
  EXPECT_FALSE(sched.HasWork());
  EXPECT_EQ(sched.PopNext(0), nullptr);
}

TEST(FifoSchedulerTest, InterleavesByArrivalOrder) {
  TxnPool pool;
  FifoScheduler sched;
  Query* q1 = pool.NewQuery(10);
  Update* u1 = pool.NewUpdate(5);
  Update* u2 = pool.NewUpdate(20);
  sched.OnQueryArrival(q1, 10);
  sched.OnUpdateArrival(u1, 5);
  sched.OnUpdateArrival(u2, 20);
  EXPECT_TRUE(sched.HasWork());
  EXPECT_EQ(sched.PopNext(20), u1);
  EXPECT_EQ(sched.PopNext(20), q1);
  EXPECT_EQ(sched.PopNext(20), u2);
  EXPECT_FALSE(sched.HasWork());
}

TEST(FifoSchedulerTest, NeverPreempts) {
  TxnPool pool;
  FifoScheduler sched;
  Query* running = pool.NewQuery(0);
  Update* waiting = pool.NewUpdate(1);
  sched.OnUpdateArrival(waiting, 1);
  EXPECT_FALSE(sched.ShouldPreempt(*running, 1));
}

TEST(FifoSchedulerTest, RequeuedTransactionKeepsArrivalOrder) {
  TxnPool pool;
  FifoScheduler sched;
  Query* old = pool.NewQuery(1);
  Query* newer = pool.NewQuery(2);
  sched.OnQueryArrival(old, 1);
  sched.OnQueryArrival(newer, 2);
  Transaction* popped = sched.PopNext(3);
  EXPECT_EQ(popped, old);
  sched.Requeue(popped, 3);  // restarted: goes back before `newer`
  EXPECT_EQ(sched.PopNext(3), old);
  EXPECT_EQ(sched.PopNext(3), newer);
}

TEST(FifoSchedulerTest, RemoveQueuedDropsTransaction) {
  TxnPool pool;
  FifoScheduler sched;
  Query* q = pool.NewQuery(0);
  sched.OnQueryArrival(q, 0);
  sched.RemoveQueued(q, 1);
  EXPECT_FALSE(sched.HasWork());
  EXPECT_EQ(sched.PopNext(1), nullptr);
}

TEST(FifoSchedulerTest, NextDecisionTimeIsNever) {
  FifoScheduler sched;
  EXPECT_EQ(sched.NextDecisionTime(123), kSimTimeMax);
}

}  // namespace
}  // namespace webdb
