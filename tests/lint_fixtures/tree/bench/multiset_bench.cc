// Lint fixture — never compiled. bench/ is scanned too, and
// unordered_multiset must count as an unordered container.
#include <unordered_set>

namespace webdb {

void Run() {
  std::unordered_multiset<int> samples;
  // VIOLATION ambient-randomness.
  double x = drand48();
  // VIOLATION unordered-serialization: multiset iteration order.
  for (int v : samples) {
    Consume(v, x);
  }
}

}  // namespace webdb
