// Lint fixture — never compiled. Negatives: the lint:allow escape hatch
// and directory scoping. src/exp/ is off the hot path and off the
// lock-free path, so the mutex below is legal without any annotation.
#include <chrono>
#include <mutex>

namespace webdb {

std::mutex exp_mu;  // legal here: src/exp/ may coordinate worker threads

struct SweepOptions {
  int points = 0;
};

void Snapshot() {
  // lint:allow(wall-clock) progress display only, never in results
  auto now = std::chrono::system_clock::now();
  (void)now;
}

void Configure(SweepOptions options) {  // lint:allow(options-by-value) sink
  (void)options;
}

}  // namespace webdb
