// Lint fixture — never compiled. Seeds fused-result-mutation violations
// (waiters grabbing a mutable handle to the shared fan-out buffer) for
// tools/lint_selftest.py; expected findings are pinned in
// tests/lint_fixtures/expected.txt.

#include <memory>

namespace webdb {

struct FusionResult {
  double value = 0.0;
};

void Waiter(const std::shared_ptr<const FusionResult>& shared) {
  // Not a violation: the sanctioned const handle.
  std::shared_ptr<const FusionResult> mine = shared;
  // VIOLATION fused-result-mutation: a non-const shared handle aliases the
  // buffer every other group member reads.
  std::shared_ptr<FusionResult> writable;
  // VIOLATION fused-result-mutation: laundering the const away.
  auto* hack = const_cast<FusionResult*>(shared.get());
  (void)mine;
  (void)hack;
  // Not a violation: escaped with a reason, producer-side construction.
  std::shared_ptr<FusionResult> scratch;  // lint:allow(fused-result-mutation) producer fills before publishing
  (void)scratch;
}

}  // namespace webdb
