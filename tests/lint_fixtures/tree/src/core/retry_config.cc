// Lint fixture — never compiled. Seed arithmetic outside util/seed.h and
// iteration over an unordered_multimap (the multi* variants must count).
#include "core/retry_config.h"

#include <unordered_map>

namespace webdb {

// Not a violation: constructor definitions are sanctioned by-value sinks.
RetryConfig::RetryConfig(RetryOptions options) : options_(options) {}

uint64_t RetryConfig::StreamSeed(uint64_t base_seed, int lane) {
  // VIOLATION seed-arithmetic: derived streams must go through DeriveSeed.
  return base_seed + static_cast<uint64_t>(lane);
}

void RetryConfig::Dump() {
  std::unordered_multimap<int, int> retries;
  // VIOLATION unordered-serialization: multimap iteration order is
  // implementation-defined.
  for (const auto& [attempt, delay] : retries) {
    Print(attempt, delay);
  }
}

}  // namespace webdb
