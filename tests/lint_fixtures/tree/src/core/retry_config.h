// Lint fixture — never compiled. API-shape rules: Options structs are
// passed by const reference except at sanctioned constructor sinks.
#ifndef WEBDB_TESTS_LINT_FIXTURES_TREE_SRC_CORE_RETRY_CONFIG_H_
#define WEBDB_TESTS_LINT_FIXTURES_TREE_SRC_CORE_RETRY_CONFIG_H_

#include <cstdint>

namespace webdb {

struct RetryOptions {
  int attempts = 3;
};

class RetryConfig {
 public:
  // Not a violation: explicit constructors are sanctioned by-value sinks.
  explicit RetryConfig(RetryOptions options);

  // VIOLATION options-by-value: plain member function copying the struct.
  void Apply(RetryOptions options);

  // Not a violation: const reference is the required shape.
  void Tune(const RetryOptions& options);

  uint64_t StreamSeed(uint64_t base_seed, int lane);
  void Dump();

 private:
  RetryOptions options_;
};

}  // namespace webdb

#endif  // WEBDB_TESTS_LINT_FIXTURES_TREE_SRC_CORE_RETRY_CONFIG_H_
