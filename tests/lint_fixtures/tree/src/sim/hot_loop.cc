// Lint fixture — never compiled. Determinism and contract violations in
// one simulator TU, including a loop over a member container that is only
// declared in the paired header (hot_loop.h).
#include "sim/hot_loop.h"

#include <chrono>
#include <cstdlib>

namespace webdb {

void HotLoop::Flush() {
  // VIOLATION wall-clock: simulation logic must use SimTime.
  const auto t0 = std::chrono::steady_clock::now();
  // VIOLATION ambient-randomness: streams must come from util/rng.h.
  const int jitter = rand();
  // VIOLATION lock-on-sim-path: lock acquisition inside the event path.
  mu_.lock();
  // VIOLATION unordered-serialization: pending_ is declared in hot_loop.h.
  for (const auto& [id, weight] : pending_) {
    Emit(id, weight + jitter);
  }
  mu_.unlock();
  (void)t0;
}

}  // namespace webdb
