// Lint fixture — never compiled. Seeds hot-path contract violations on the
// simulator path for tools/lint_selftest.py; expected findings are pinned
// in tests/lint_fixtures/expected.txt.
#ifndef WEBDB_TESTS_LINT_FIXTURES_TREE_SRC_SIM_HOT_LOOP_H_
#define WEBDB_TESTS_LINT_FIXTURES_TREE_SRC_SIM_HOT_LOOP_H_

#include <functional>
#include <mutex>
#include <unordered_map>

namespace webdb {

class HotLoop {
 public:
  // VIOLATION std-function-hot-path: closure dispatch in src/sim must use
  // EventCallback, not std::function.
  void Schedule(std::function<void()> fn);

  void Flush();

 private:
  // VIOLATION lock-on-sim-path: no mutexes on the simulation path.
  std::mutex mu_;
  // Not a violation by itself — but hot_loop.cc iterates this member, and
  // the determinism linter must see the declaration through the header.
  std::unordered_map<int, int> pending_;
};

}  // namespace webdb

#endif  // WEBDB_TESTS_LINT_FIXTURES_TREE_SRC_SIM_HOT_LOOP_H_
