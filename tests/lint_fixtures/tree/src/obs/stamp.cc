// Lint fixture — never compiled. Negative: wall-clock reads are sanctioned
// inside src/obs/ (observability may timestamp); no finding expected here.
#include <chrono>

namespace webdb {

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace webdb
