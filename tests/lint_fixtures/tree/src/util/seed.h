// Lint fixture — never compiled. Negative: util/seed.h is the one
// sanctioned home for seed arithmetic; no finding expected here.
#ifndef WEBDB_TESTS_LINT_FIXTURES_TREE_SRC_UTIL_SEED_H_
#define WEBDB_TESTS_LINT_FIXTURES_TREE_SRC_UTIL_SEED_H_

#include <cstdint>

namespace webdb {

inline uint64_t DeriveSeed(uint64_t seed, uint64_t lane) {
  return seed * 0x9E3779B97F4A7C15ull + lane;
}

}  // namespace webdb

#endif  // WEBDB_TESTS_LINT_FIXTURES_TREE_SRC_UTIL_SEED_H_
