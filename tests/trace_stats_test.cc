#include "trace/trace_stats.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

Trace HandTrace() {
  Trace trace;
  trace.num_items = 4;
  trace.queries = {
      {Millis(100), QueryType::kLookup, {0}, Millis(5)},
      {Millis(200), QueryType::kComparison, {0, 1}, Millis(9)},
      {Seconds(2), QueryType::kLookup, {2}, Millis(7)},
  };
  trace.updates = {
      {Millis(50), 1, 10.0, Millis(1)},
      {Millis(60), 1, 11.0, Millis(2)},
      {Seconds(1), 3, 12.0, Millis(5)},
  };
  return trace;
}

TEST(TraceStatsTest, CountsAndRanges) {
  const TraceStats stats = ComputeTraceStats(HandTrace());
  EXPECT_EQ(stats.num_queries, 3);
  EXPECT_EQ(stats.num_updates, 3);
  EXPECT_EQ(stats.num_items, 4);
  EXPECT_EQ(stats.query_exec_min, Millis(5));
  EXPECT_EQ(stats.query_exec_max, Millis(9));
  EXPECT_EQ(stats.update_exec_min, Millis(1));
  EXPECT_EQ(stats.update_exec_max, Millis(5));
  EXPECT_EQ(stats.duration, Seconds(2));
}

TEST(TraceStatsTest, PerSecondBuckets) {
  const TraceStats stats = ComputeTraceStats(HandTrace());
  ASSERT_EQ(stats.queries_per_second.size(), 3u);
  EXPECT_EQ(stats.queries_per_second[0], 2);
  EXPECT_EQ(stats.queries_per_second[1], 0);
  EXPECT_EQ(stats.queries_per_second[2], 1);
  EXPECT_EQ(stats.updates_per_second[0], 2);
  EXPECT_EQ(stats.updates_per_second[1], 1);
}

TEST(TraceStatsTest, PerItemCountsIncludeMultiItemQueries) {
  const TraceStats stats = ComputeTraceStats(HandTrace());
  EXPECT_EQ(stats.per_item[0].queries, 2);  // lookup + comparison
  EXPECT_EQ(stats.per_item[1].queries, 1);
  EXPECT_EQ(stats.per_item[1].updates, 2);
  EXPECT_EQ(stats.per_item[3].updates, 1);
  EXPECT_EQ(stats.stocks_queried, 3);
  EXPECT_EQ(stats.stocks_updated, 2);
}

TEST(TraceStatsTest, FractionUpdateDominated) {
  const TraceStats stats = ComputeTraceStats(HandTrace());
  // Active items: 0 (2q/0u), 1 (1q/2u), 2 (1q/0u), 3 (0q/1u).
  // Update-dominated: items 1 and 3 -> 2/4.
  EXPECT_DOUBLE_EQ(stats.FractionUpdateDominated(), 0.5);
}

TEST(TraceStatsTest, OfferedUtilization) {
  const TraceStats stats = ComputeTraceStats(HandTrace());
  // (5+9+7 + 1+2+5) ms over 2 s = 29ms / 2000ms.
  EXPECT_NEAR(stats.offered_utilization, 0.0145, 1e-6);
}

TEST(TraceStatsTest, SummaryMentionsKeyNumbers) {
  const TraceStats stats = ComputeTraceStats(HandTrace());
  const std::string summary = stats.Summary();
  EXPECT_NE(summary.find("# queries"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);
}

TEST(TraceStatsTest, EmptyTrace) {
  Trace trace;
  trace.num_items = 2;
  const TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.num_queries, 0);
  EXPECT_DOUBLE_EQ(stats.offered_utilization, 0.0);
  EXPECT_DOUBLE_EQ(stats.FractionUpdateDominated(), 0.0);
}

TEST(TracePrefixTest, PrefixCutsBothStreams) {
  const Trace trace = HandTrace();
  const Trace prefix = trace.Prefix(Seconds(1));
  EXPECT_EQ(prefix.queries.size(), 2u);
  EXPECT_EQ(prefix.updates.size(), 2u);  // the t=1s update is excluded
  EXPECT_EQ(prefix.num_items, trace.num_items);
}

TEST(TraceEndTimeTest, EndTimeIsLatestArrival) {
  EXPECT_EQ(HandTrace().EndTime(), Seconds(2));
  Trace empty;
  EXPECT_EQ(empty.EndTime(), 0);
}

}  // namespace
}  // namespace webdb
