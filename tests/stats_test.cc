#include "util/stats.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of the classic sequence: 32/7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(TimeSeriesTest, BucketsByWidth) {
  TimeSeries series(10);
  series.Add(0, 1.0);
  series.Add(9, 2.0);
  series.Add(10, 4.0);
  series.Add(25, 8.0);
  ASSERT_EQ(series.NumBuckets(), 3u);
  EXPECT_DOUBLE_EQ(series.BucketSum(0), 3.0);
  EXPECT_EQ(series.BucketCount(0), 2);
  EXPECT_DOUBLE_EQ(series.BucketSum(1), 4.0);
  EXPECT_DOUBLE_EQ(series.BucketSum(2), 8.0);
  EXPECT_DOUBLE_EQ(series.BucketSum(99), 0.0);  // out of range reads as empty
}

TEST(TimeSeriesTest, BucketMean) {
  TimeSeries series(5);
  series.Add(1, 2.0);
  series.Add(2, 4.0);
  EXPECT_DOUBLE_EQ(series.BucketMean(0), 3.0);
  EXPECT_DOUBLE_EQ(series.BucketMean(1), 0.0);  // empty
}

TEST(TimeSeriesTest, SmoothedSumsWindowOne) {
  TimeSeries series(1);
  for (int t = 0; t < 5; ++t) series.Add(t, static_cast<double>(t));
  const std::vector<double> smoothed = series.SmoothedSums(1);
  ASSERT_EQ(smoothed.size(), 5u);
  for (int t = 0; t < 5; ++t) EXPECT_DOUBLE_EQ(smoothed[t], t);
}

TEST(TimeSeriesTest, SmoothedSumsCenteredWindow) {
  TimeSeries series(1);
  // Impulse at t=2 with window 3 spreads over t=1..3.
  series.Add(2, 9.0);
  series.Add(4, 0.0);  // extend to 5 buckets
  const std::vector<double> smoothed = series.SmoothedSums(3);
  ASSERT_EQ(smoothed.size(), 5u);
  EXPECT_DOUBLE_EQ(smoothed[0], 0.0);
  EXPECT_DOUBLE_EQ(smoothed[1], 3.0);
  EXPECT_DOUBLE_EQ(smoothed[2], 3.0);
  EXPECT_DOUBLE_EQ(smoothed[3], 3.0);
  EXPECT_DOUBLE_EQ(smoothed[4], 0.0);
}

TEST(TimeSeriesTest, SmoothingPreservesTotalMassForConstantSeries) {
  TimeSeries series(1);
  for (int t = 0; t < 100; ++t) series.Add(t, 2.0);
  const std::vector<double> smoothed = series.SmoothedSums(5);
  // Interior buckets keep their value exactly.
  for (int t = 5; t < 95; ++t) EXPECT_NEAR(smoothed[t], 2.0, 1e-12);
}

}  // namespace
}  // namespace webdb
