// Smoke tests for every figure driver on a small trace: shapes, ranges and
// structural invariants, not absolute values. Drivers run through the same
// SweepRunner path the benches use, at jobs=4, so these tests double as
// smoke coverage of the parallel fan-out.

#include "exp/figures.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "trace/stock_trace_generator.h"

namespace webdb {
namespace {

class FiguresTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StockTraceConfig config = StockTraceConfig::Small(31);
    config.query_rate = 30.0;
    config.update_rate_start = 200.0;
    config.update_rate_end = 120.0;
    trace_ = new Trace(GenerateStockTrace(config));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static SweepConfig Par() {
    SweepConfig config;
    config.jobs = 4;
    return config;
  }
  static Trace* trace_;
};

Trace* FiguresTest::trace_ = nullptr;

TEST_F(FiguresTest, Figure1HasThreePoliciesWithSaneValues) {
  const auto rows = RunFigure1(*trace_, Par());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].policy, "fifo");
  EXPECT_EQ(rows[1].policy, "fifo-uh");
  EXPECT_EQ(rows[2].policy, "fifo-qh");
  for (const auto& row : rows) {
    EXPECT_GT(row.avg_response_ms, 0.0);
    EXPECT_GE(row.avg_staleness_uu, 0.0);
  }
  // The paper's dominance structure: UH freshest, QH fastest.
  EXPECT_LE(rows[1].avg_staleness_uu, rows[0].avg_staleness_uu + 1e-9);
  EXPECT_LE(rows[2].avg_response_ms, rows[1].avg_response_ms);
}

TEST_F(FiguresTest, Figure6CoversFourSchedulersBothShapes) {
  for (QcShape shape : {QcShape::kStep, QcShape::kLinear}) {
    const auto rows = RunFigure6(*trace_, shape, 7, Par());
    ASSERT_EQ(rows.size(), 4u);
    for (const auto& row : rows) {
      EXPECT_GE(row.qos_pct, 0.0);
      EXPECT_GE(row.qod_pct, 0.0);
      EXPECT_LE(row.TotalPct(), 1.0 + 1e-9);
    }
  }
}

TEST_F(FiguresTest, QcSweepHasNinePointsWithMatchingDiagonal) {
  const auto points = RunQcSweep(*trace_, SchedulerKind::kQuts, 7, Par());
  ASSERT_EQ(points.size(), 9u);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_NEAR(points[i].qod_share_pct, 0.1 * (i + 1), 1e-9);
    // The diagonal reference: QOSmax% ≈ 1 - QODmax%.
    EXPECT_NEAR(points[i].qos_max_pct, 1.0 - points[i].qod_share_pct, 0.05);
    EXPECT_LE(points[i].total_pct, 1.0 + 1e-9);
  }
}

TEST_F(FiguresTest, ImprovementSummaryComputesRatios) {
  std::vector<SweepPoint> uh(2), qh(2), quts(2);
  uh[0].total_pct = 0.5;
  qh[0].total_pct = 0.8;
  quts[0].total_pct = 1.0;
  uh[1].total_pct = 0.8;
  qh[1].total_pct = 0.5;
  quts[1].total_pct = 0.9;
  const auto summary = SummarizeImprovement(uh, qh, quts);
  EXPECT_DOUBLE_EQ(summary.max_vs_uh, 1.0);   // (1.0-0.5)/0.5
  EXPECT_DOUBLE_EQ(summary.max_vs_qh, 0.8);   // (0.9-0.5)/0.5
  EXPECT_DOUBLE_EQ(summary.min_vs_best, 0.1);
}

TEST_F(FiguresTest, Figure9SeriesSmoothedAndRhoInBand) {
  const auto result = RunFigure9(*trace_, /*intervals=*/2, /*ratio=*/5.0);
  EXPECT_FALSE(result.total_gained.empty());
  EXPECT_EQ(result.total_gained.size(), result.total_max.size());
  ASSERT_FALSE(result.rho.empty());
  for (const auto& [time, rho] : result.rho) {
    EXPECT_GE(rho, 0.5 - 1e-9);
    EXPECT_LE(rho, 1.0 + 1e-9);
  }
  // Gained never exceeds max in aggregate.
  double gained = 0.0, max = 0.0;
  for (double v : result.total_gained) gained += v;
  for (double v : result.total_max) max += v;
  EXPECT_LE(gained, max * 1.05);
}

TEST_F(FiguresTest, OmegaSensitivityReturnsOnePointPerOmega) {
  const auto points = RunOmegaSensitivity(*trace_, {0.5, 1.0, 5.0}, 7, Par());
  ASSERT_EQ(points.size(), 3u);
  for (const auto& [omega, pct] : points) {
    EXPECT_GT(pct, 0.0);
    EXPECT_LE(pct, 1.0 + 1e-9);
  }
}

TEST_F(FiguresTest, TauSensitivityReturnsOnePointPerTau) {
  const auto points = RunTauSensitivity(*trace_, {1.0, 10.0, 100.0}, 7, Par());
  ASSERT_EQ(points.size(), 3u);
  for (const auto& [tau, pct] : points) {
    EXPECT_GT(pct, 0.0);
    EXPECT_LE(pct, 1.0 + 1e-9);
  }
}

TEST_F(FiguresTest, CombinationAblationCoversBothModes) {
  const auto rows = RunCombinationAblation(*trace_, 7, Par());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_NE(rows[0].variant.find("qos-independent"), std::string::npos);
  EXPECT_NE(rows[1].variant.find("qos-dependent"), std::string::npos);
  // QoS-dependent can only reduce the earned QoD.
  EXPECT_LE(rows[1].qod_pct, rows[0].qod_pct + 1e-9);
}

TEST_F(FiguresTest, QueryPolicyAblationCoversFourPolicies) {
  const auto rows = RunQueryPolicyAblation(*trace_, 7, Par());
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    EXPECT_LE(row.total_pct, 1.0 + 1e-9);
    EXPECT_GT(row.total_pct, 0.0);
  }
}

TEST_F(FiguresTest, StalenessAblationCoversVariants) {
  const auto rows = RunStalenessAblation(*trace_, 7, Par());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_NE(rows[0].variant.find("uu/max"), std::string::npos);
  EXPECT_NE(rows[3].variant.find("td"), std::string::npos);
}

TEST_F(FiguresTest, SlicingAblationCoversBothSchemes) {
  const auto rows = RunSlicingAblation(*trace_, 7, Par());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].variant, "quts/random");
  EXPECT_EQ(rows[1].variant, "quts/deterministic");
  // Same long-run share: totals within a few points of each other.
  EXPECT_NEAR(rows[0].total_pct, rows[1].total_pct, 0.1);
}

TEST_F(FiguresTest, AdmissionAblationCoversControllers) {
  const auto rows = RunAdmissionAblation(*trace_, 7, Par());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].variant, "admit-all");
  EXPECT_EQ(rows[1].variant, "queue-cap(64)");
  EXPECT_EQ(rows[2].variant, "expected-profit");
  for (const auto& row : rows) {
    EXPECT_GT(row.total_pct, 0.0);
    EXPECT_LE(row.total_pct, 1.0 + 1e-9);
  }
}

TEST_F(FiguresTest, ConcurrencyAblationCoversBothModes) {
  const auto rows = RunConcurrencyAblation(*trace_, 7, Par());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].variant, "2pl-hp");
  EXPECT_EQ(rows[1].variant, "no-cc");
}

TEST_F(FiguresTest, UpdatePolicyAblationCoversBothPolicies) {
  const auto rows = RunUpdatePolicyAblation(*trace_, 7, Par());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].variant, "quts/fifo");
  EXPECT_EQ(rows[1].variant, "quts/demand-weighted");
  for (const auto& row : rows) EXPECT_GT(row.total_pct, 0.0);
}

TEST_F(FiguresTest, AdaptabilityComparisonRanksQutsAtTop) {
  const auto rows = RunAdaptabilityComparison(*trace_, 7, Par());
  ASSERT_EQ(rows.size(), 4u);
  double quts_total = 0.0, best_other = 0.0;
  for (const auto& row : rows) {
    if (row.variant == "quts") {
      quts_total = row.total_pct;
    } else {
      best_other = std::max(best_other, row.total_pct);
    }
  }
  // At worst a near-tie on this heavily down-scaled schedule. The slack
  // covers QH edging ahead at test scale: QUTS no longer preempts a
  // running transaction when the atom draw picks its own side but its
  // waiting queue is empty (that flip over-served the opposite side
  // beyond the ρ share), which costs a fraction of a point here while the
  // full Figure 8/9 dominance results are unchanged.
  EXPECT_GT(quts_total, best_other - 0.06);
}

TEST_F(FiguresTest, RhoModelValidationProducesBothCurves) {
  const auto points = RunRhoModelValidation(
      *trace_, {0.2, 0.5, 0.8, 1.0}, Table4Profile(0.8), 7, Par());
  ASSERT_EQ(points.size(), 4u);
  for (const auto& point : points) {
    EXPECT_GE(point.measured_total_pct, 0.0);
    EXPECT_LE(point.measured_total_pct, 1.0 + 1e-9);
    EXPECT_GE(point.modeled_total_pct, 0.0);
    EXPECT_LE(point.modeled_total_pct, 1.0 + 1e-9);
  }
  // The model's optimum for QODmax% = 0.8 is rho* = 0.625: modeled profit
  // at 0.5 and 0.8 exceeds the rho = 0.2 end.
  EXPECT_GT(points[1].modeled_total_pct, points[0].modeled_total_pct);
}

TEST_F(FiguresTest, CanonicalGridsMatchPaperShapes) {
  // The bench grids are now shared declarations; pin their shapes so a
  // bench and the paper can't silently drift apart.
  EXPECT_EQ(Table4QodShares().size(), 9u);
  EXPECT_DOUBLE_EQ(Table4QodShares().front(), 0.1);
  EXPECT_DOUBLE_EQ(Table4QodShares().back(), 0.9);
  EXPECT_EQ(OmegaSensitivityGrid().size(), 9u);
  EXPECT_DOUBLE_EQ(OmegaSensitivityGrid().front(), 0.1);
  EXPECT_DOUBLE_EQ(OmegaSensitivityGrid().back(), 100.0);
  EXPECT_EQ(TauSensitivityGrid().size(), 7u);
  EXPECT_DOUBLE_EQ(TauSensitivityGrid().front(), 1.0);
  EXPECT_DOUBLE_EQ(TauSensitivityGrid().back(), 1000.0);
  EXPECT_EQ(AlphaSensitivityGrid().size(), 6u);
  EXPECT_EQ(RhoValidationGrid().size(), 7u);
  EXPECT_EQ(CorrelationRobustnessGrid().size(), 4u);
  EXPECT_EQ(SpikeRobustnessGrid().size(), 4u);
}

TEST_F(FiguresTest, DriversIdenticalSerialAndParallel) {
  // The same driver at jobs=1 and jobs=4 must produce bit-identical rows —
  // the figure-level version of the SweepRunner determinism contract.
  const auto serial = RunFigure6(*trace_, QcShape::kStep, 7, SweepConfig());
  const auto par = RunFigure6(*trace_, QcShape::kStep, 7, Par());
  ASSERT_EQ(serial.size(), par.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].policy, par[i].policy);
    EXPECT_EQ(serial[i].qos_pct, par[i].qos_pct);
    EXPECT_EQ(serial[i].qod_pct, par[i].qod_pct);
  }
  const auto sweep_serial =
      RunQcSweep(*trace_, SchedulerKind::kUpdateHigh, 7, SweepConfig());
  const auto sweep_par =
      RunQcSweep(*trace_, SchedulerKind::kUpdateHigh, 7, Par());
  ASSERT_EQ(sweep_serial.size(), sweep_par.size());
  for (size_t i = 0; i < sweep_serial.size(); ++i) {
    EXPECT_EQ(sweep_serial[i].total_pct, sweep_par[i].total_pct);
    EXPECT_EQ(sweep_serial[i].qos_max_pct, sweep_par[i].qos_max_pct);
  }
}

TEST_F(FiguresTest, AlphaSensitivityFlat) {
  const auto points = RunAlphaSensitivity(*trace_, {0.1, 0.5, 0.9}, 7, Par());
  ASSERT_EQ(points.size(), 3u);
  // "The exact α does not matter much": within a few points of each other.
  double lo = 1.0, hi = 0.0;
  for (const auto& [alpha, pct] : points) {
    lo = std::min(lo, pct);
    hi = std::max(hi, pct);
  }
  EXPECT_LT(hi - lo, 0.15);
}

}  // namespace
}  // namespace webdb
