#include "sched/txn_queue.h"

#include <gtest/gtest.h>

#include "test_txns.h"

namespace webdb {
namespace {

TEST(TxnQueueTest, EmptyQueue) {
  TxnQueue queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Peek(), nullptr);
  EXPECT_EQ(queue.Pop(), nullptr);
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(TxnQueueTest, PopsHighestPriorityFirst) {
  TxnPool pool;
  TxnQueue queue;
  Query* low = pool.NewQuery(0);
  Query* high = pool.NewQuery(1);
  queue.Push(low, 1.0);
  queue.Push(high, 2.0);
  EXPECT_EQ(queue.Pop(), high);
  EXPECT_EQ(queue.Pop(), low);
}

TEST(TxnQueueTest, TieBreaksOnEarlierArrival) {
  TxnPool pool;
  TxnQueue queue;
  Query* late = pool.NewQuery(100);
  Query* early = pool.NewQuery(50);
  queue.Push(late, 1.0);
  queue.Push(early, 1.0);
  EXPECT_EQ(queue.Pop(), early);
  EXPECT_EQ(queue.Pop(), late);
}

TEST(TxnQueueTest, TieBreaksOnIdWhenArrivalEqual) {
  TxnPool pool;
  TxnQueue queue;
  Query* first = pool.NewQuery(10);   // lower id
  Query* second = pool.NewQuery(10);  // higher id
  queue.Push(second, 1.0);
  queue.Push(first, 1.0);
  EXPECT_EQ(queue.Pop(), first);
}

TEST(TxnQueueTest, RemoveDropsLiveEntry) {
  TxnPool pool;
  TxnQueue queue;
  Query* a = pool.NewQuery(0);
  Query* b = pool.NewQuery(1);
  queue.Push(a, 2.0);
  queue.Push(b, 1.0);
  EXPECT_TRUE(queue.Remove(a));
  EXPECT_EQ(queue.Size(), 1u);
  EXPECT_EQ(queue.SlowSize(), 1u);
  EXPECT_EQ(queue.Peek(), b);
  EXPECT_EQ(queue.Pop(), b);
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(TxnQueueTest, RepushAfterRemoveYieldsSingleLiveEntry) {
  TxnPool pool;
  TxnQueue queue;
  Query* a = pool.NewQuery(0);
  queue.Push(a, 1.0);
  queue.Remove(a);
  queue.Push(a, 5.0);  // re-enqueue with a new priority
  EXPECT_EQ(queue.Size(), 1u);
  EXPECT_EQ(queue.Pop(), a);
  EXPECT_EQ(queue.Pop(), nullptr);
}

TEST(TxnQueueTest, StaticInvalidateHidesEntryButNotDepth) {
  TxnPool pool;
  TxnQueue queue_a, queue_b;
  Query* a = pool.NewQuery(0);
  queue_a.Push(a, 1.0);
  // Moving the txn to another queue implicitly kills the old entry; the
  // O(1) depth of the abandoned queue is only repaired lazily, which is why
  // schedulers use Remove() instead.
  queue_b.Push(a, 1.0);
  EXPECT_TRUE(queue_a.Empty());
  EXPECT_EQ(queue_a.SlowSize(), 0u);
  EXPECT_EQ(queue_b.Pop(), a);
}

TEST(TxnQueueTest, SizeTracksPushAndPop) {
  TxnPool pool;
  TxnQueue queue;
  for (int i = 0; i < 10; ++i) queue.Push(pool.NewQuery(i), 1.0);
  EXPECT_EQ(queue.Size(), 10u);
  EXPECT_EQ(queue.SlowSize(), 10u);
  for (int i = 0; i < 4; ++i) queue.Pop();
  EXPECT_EQ(queue.Size(), 6u);
  EXPECT_EQ(queue.SlowSize(), 6u);
}

TEST(TxnQueueTest, PeekDoesNotConsume) {
  TxnPool pool;
  TxnQueue queue;
  Query* a = pool.NewQuery(0);
  queue.Push(a, 1.0);
  EXPECT_EQ(queue.Peek(), a);
  EXPECT_EQ(queue.Peek(), a);
  EXPECT_EQ(queue.Pop(), a);
}

TEST(TxnQueueTest, ManyEntriesOrdered) {
  TxnPool pool;
  TxnQueue queue;
  for (int i = 0; i < 100; ++i) {
    queue.Push(pool.NewQuery(i), static_cast<double>(i % 10));
  }
  double prev = 1e18;
  SimTime prev_arrival = -1;
  while (Transaction* txn = queue.Pop()) {
    auto* query = static_cast<Query*>(txn);
    const double priority = static_cast<double>(query->arrival % 10);
    EXPECT_LE(priority, prev);
    if (priority == prev) {
      EXPECT_GT(query->arrival, prev_arrival);
    }
    prev = priority;
    prev_arrival = query->arrival;
  }
}

}  // namespace
}  // namespace webdb
