#include "sched/txn_queue.h"

#include <vector>

#include <gtest/gtest.h>

#include "test_txns.h"
#include "util/logging.h"

namespace webdb {
namespace {

TEST(TxnQueueTest, EmptyQueue) {
  TxnQueue queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Peek(), nullptr);
  EXPECT_EQ(queue.Pop(), nullptr);
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(TxnQueueTest, PopsHighestPriorityFirst) {
  TxnPool pool;
  TxnQueue queue;
  Query* low = pool.NewQuery(0);
  Query* high = pool.NewQuery(1);
  queue.Push(low, 1.0);
  queue.Push(high, 2.0);
  EXPECT_EQ(queue.Pop(), high);
  EXPECT_EQ(queue.Pop(), low);
}

TEST(TxnQueueTest, TieBreaksOnEarlierArrival) {
  TxnPool pool;
  TxnQueue queue;
  Query* late = pool.NewQuery(100);
  Query* early = pool.NewQuery(50);
  queue.Push(late, 1.0);
  queue.Push(early, 1.0);
  EXPECT_EQ(queue.Pop(), early);
  EXPECT_EQ(queue.Pop(), late);
}

TEST(TxnQueueTest, TieBreaksOnIdWhenArrivalEqual) {
  TxnPool pool;
  TxnQueue queue;
  Query* first = pool.NewQuery(10);   // lower id
  Query* second = pool.NewQuery(10);  // higher id
  queue.Push(second, 1.0);
  queue.Push(first, 1.0);
  EXPECT_EQ(queue.Pop(), first);
}

TEST(TxnQueueTest, RemoveDropsLiveEntry) {
  TxnPool pool;
  TxnQueue queue;
  Query* a = pool.NewQuery(0);
  Query* b = pool.NewQuery(1);
  queue.Push(a, 2.0);
  queue.Push(b, 1.0);
  EXPECT_TRUE(queue.Remove(a));
  EXPECT_EQ(queue.Size(), 1u);
  EXPECT_EQ(queue.SlowSize(), 1u);
  EXPECT_EQ(queue.Peek(), b);
  EXPECT_EQ(queue.Pop(), b);
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(TxnQueueTest, RepushAfterRemoveYieldsSingleLiveEntry) {
  TxnPool pool;
  TxnQueue queue;
  Query* a = pool.NewQuery(0);
  queue.Push(a, 1.0);
  queue.Remove(a);
  queue.Push(a, 5.0);  // re-enqueue with a new priority
  EXPECT_EQ(queue.Size(), 1u);
  EXPECT_EQ(queue.Pop(), a);
  EXPECT_EQ(queue.Pop(), nullptr);
}

TEST(TxnQueueTest, MoveBetweenQueuesViaRemove) {
  TxnPool pool;
  TxnQueue queue_a, queue_b;
  Query* a = pool.NewQuery(0);
  queue_a.Push(a, 1.0);
  // Moving a transaction between queues goes through Remove() so both
  // queues' O(1) depths stay exact (the old implicit-invalidation path left
  // the abandoned queue overcounting).
  EXPECT_TRUE(queue_a.Remove(a));
  queue_b.Push(a, 1.0);
  EXPECT_TRUE(queue_a.Empty());
  EXPECT_EQ(queue_a.Size(), 0u);
  EXPECT_EQ(queue_a.SlowSize(), 0u);
  EXPECT_EQ(queue_b.Size(), 1u);
  EXPECT_EQ(queue_b.Pop(), a);
}

#if WEBDB_DCHECK_ENABLED
TEST(TxnQueueDeathTest, PushWhileLiveElsewhereAborts) {
  TxnPool pool;
  TxnQueue queue_a, queue_b;
  Query* a = pool.NewQuery(0);
  queue_a.Push(a, 1.0);
  EXPECT_DEATH(queue_b.Push(a, 1.0), "still live in a queue");
}

TEST(TxnQueueDeathTest, RemoveFromWrongQueueAborts) {
  TxnPool pool;
  TxnQueue queue_a, queue_b;
  Query* a = pool.NewQuery(0);
  queue_a.Push(a, 1.0);
  EXPECT_DEATH(queue_b.Remove(a), "no live entry in this queue");
}

TEST(TxnQueueDeathTest, RemoveAfterPopAborts) {
  TxnPool pool;
  TxnQueue queue;
  Query* a = pool.NewQuery(0);
  queue.Push(a, 1.0);
  EXPECT_EQ(queue.Pop(), a);
  EXPECT_DEATH(queue.Remove(a), "no live entry");
}
#endif  // WEBDB_DCHECK_ENABLED

TEST(TxnQueueTest, CompactionBoundsHeapUnderChurn) {
  TxnPool pool;
  TxnQueue queue;
  // A restart storm at queue level: a small live population that gets
  // removed and re-pushed over and over. Without compaction the heap would
  // grow by one tombstone per cycle; with it, the heap stays within
  // 2 * live + slack of the live population.
  constexpr int kLive = 16;
  std::vector<Query*> txns;
  txns.reserve(kLive);
  for (int i = 0; i < kLive; ++i) {
    txns.push_back(pool.NewQuery(i));
    queue.Push(txns.back(), static_cast<double>(i));
  }
  for (int round = 0; round < 1000; ++round) {
    Query* victim = txns[static_cast<size_t>(round) % kLive];
    ASSERT_TRUE(queue.Remove(victim));
    queue.Push(victim, static_cast<double>(round % 7));
    ASSERT_EQ(queue.Size(), static_cast<size_t>(kLive));
    ASSERT_EQ(queue.Size(), queue.SlowSize());
    ASSERT_LE(queue.HeapEntries(),
              2 * queue.Size() + TxnQueue::kCompactMinStale + 1);
  }
  // Drain to prove every live transaction survived the compactions.
  size_t popped = 0;
  while (queue.Pop() != nullptr) ++popped;
  EXPECT_EQ(popped, static_cast<size_t>(kLive));
  EXPECT_TRUE(queue.Empty());
}

TEST(TxnQueueTest, CompactionPreservesPopOrder) {
  TxnPool pool;
  // Two identical workloads, one churned hard enough to trigger several
  // compactions: the pop sequences must be identical.
  TxnQueue plain, churned;
  std::vector<Query*> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(pool.NewQuery(i));
    b.push_back(pool.NewQuery(i));
    plain.Push(a.back(), static_cast<double>(i % 13));
    churned.Push(b.back(), static_cast<double>(i % 13));
  }
  // Churn: remove + re-push every transaction with its original priority.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(churned.Remove(b[static_cast<size_t>(i)]));
      churned.Push(b[static_cast<size_t>(i)], static_cast<double>(i % 13));
    }
  }
  while (true) {
    Transaction* x = plain.Pop();
    Transaction* y = churned.Pop();
    if (x == nullptr) {
      EXPECT_EQ(y, nullptr);
      break;
    }
    ASSERT_NE(y, nullptr);
    // Same arrival and same id modulo the two disjoint pools.
    EXPECT_EQ(x->arrival, y->arrival);
  }
}

TEST(TxnQueueTest, SizeTracksPushAndPop) {
  TxnPool pool;
  TxnQueue queue;
  for (int i = 0; i < 10; ++i) queue.Push(pool.NewQuery(i), 1.0);
  EXPECT_EQ(queue.Size(), 10u);
  EXPECT_EQ(queue.SlowSize(), 10u);
  for (int i = 0; i < 4; ++i) queue.Pop();
  EXPECT_EQ(queue.Size(), 6u);
  EXPECT_EQ(queue.SlowSize(), 6u);
}

TEST(TxnQueueTest, PeekDoesNotConsume) {
  TxnPool pool;
  TxnQueue queue;
  Query* a = pool.NewQuery(0);
  queue.Push(a, 1.0);
  EXPECT_EQ(queue.Peek(), a);
  EXPECT_EQ(queue.Peek(), a);
  EXPECT_EQ(queue.Pop(), a);
}

TEST(TxnQueueTest, ManyEntriesOrdered) {
  TxnPool pool;
  TxnQueue queue;
  for (int i = 0; i < 100; ++i) {
    queue.Push(pool.NewQuery(i), static_cast<double>(i % 10));
  }
  double prev = 1e18;
  SimTime prev_arrival = -1;
  while (Transaction* txn = queue.Pop()) {
    auto* query = static_cast<Query*>(txn);
    const double priority = static_cast<double>(query->arrival % 10);
    EXPECT_LE(priority, prev);
    if (priority == prev) {
      EXPECT_GT(query->arrival, prev_arrival);
    }
    prev = priority;
    prev_arrival = query->arrival;
  }
}

}  // namespace
}  // namespace webdb
