// Fused-result cache (DESIGN.md §14) and FusionIndex contract tests.
//
// FusionIndex half: the Remove/Insert contract fixes — Remove is
// symmetrically idempotent on both bucket tables, double-Insert dies, and
// a degenerate leader with repeated items collects each covered lookup
// exactly once — plus an exactness check for the hash-set membership path
// CollectCandidates switches to past its linear-scan threshold.
//
// Cache half: the TTL edges the honesty rule lives or dies on — a hit
// exactly at expiry (inclusive), a miss one tick past it, eviction by an
// update arriving in the same event batch as the lookup, a cache hit
// served while an overloaded admission controller is turning identical
// load away — and SweepRunner --jobs bit-identity of cached runs.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "exp/experiment.h"
#include "exp/overload_scenarios.h"
#include "exp/scheduler_factory.h"
#include "exp/sweep_runner.h"
#include "exp/trace_feeder.h"
#include "qc/qc_generator.h"
#include "server/fusion.h"
#include "server/web_database_server.h"
#include "util/rng.h"

namespace webdb {
namespace {

// --- FusionIndex contract --------------------------------------------------

Query MakeIndexQuery(uint64_t index, QueryType type,
                     std::vector<ItemId> items) {
  Query query;
  query.id = QueryTxnId(index);
  query.kind = TxnKind::kQuery;
  query.state = TxnState::kQueued;
  query.type = type;
  query.items = std::move(items);
  return query;
}

TEST(FusionIndexTest, RemoveIsIdempotentOnBothBucketTables) {
  FusionIndex index;
  // A subset joiner occupies both exact_ and single_; a scan only exact_.
  Query lookup = MakeIndexQuery(1, QueryType::kLookup, {3});
  Query scan = MakeIndexQuery(2, QueryType::kAggregation, {1, 2, 3});
  index.Insert(&lookup);
  index.Insert(&scan);
  ASSERT_EQ(index.Size(), 2);

  index.Remove(lookup);
  EXPECT_EQ(index.Size(), 1);
  EXPECT_FALSE(index.Contains(lookup));
  // Second Remove of the same query: a no-op on both tables, no abort.
  index.Remove(lookup);
  EXPECT_EQ(index.Size(), 1);

  index.Remove(scan);
  index.Remove(scan);
  EXPECT_EQ(index.Size(), 0);
  EXPECT_FALSE(index.Contains(scan));
}

TEST(FusionIndexTest, RemoveOfNeverIndexedQueryIsANoOp) {
  FusionIndex index;
  Query indexed = MakeIndexQuery(1, QueryType::kLookup, {5});
  Query stranger = MakeIndexQuery(2, QueryType::kLookup, {5});
  index.Insert(&indexed);
  // Same signature and same single_ bucket as `indexed`, but never
  // inserted: Remove must leave the indexed twin untouched.
  index.Remove(stranger);
  EXPECT_EQ(index.Size(), 1);
  EXPECT_TRUE(index.Contains(indexed));
}

TEST(FusionIndexDeathTest, DoubleInsertDies) {
  // Double-indexing used to double-count size_ and leave a dangling id;
  // the guarded Insert refuses with a CHECK naming the Contains guard.
  Query query = MakeIndexQuery(1, QueryType::kLookup, {0});
  EXPECT_DEATH(
      {
        FusionIndex index;
        index.Insert(&query);
        index.Insert(&query);
      },
      "CHECK failed.*Contains");
}

TEST(FusionIndexTest, DuplicateLeaderItemsCollectEachLookupOnce) {
  // Regression for the duplicate-leader-item rescan: a degenerate leader
  // whose item list repeats one symbol must yield each covered lookup
  // exactly once, in bucket order.
  FusionIndex index;
  std::vector<Query> lookups;
  lookups.reserve(3);
  for (uint64_t i = 0; i < 3; ++i) {
    lookups.push_back(MakeIndexQuery(10 + i, QueryType::kLookup, {7}));
    index.Insert(&lookups.back());
  }
  const Query leader =
      MakeIndexQuery(1, QueryType::kAggregation, {7, 7, 7, 7});
  std::vector<TxnId> members;
  index.CollectCandidates(leader, /*subset=*/true, /*max_members=*/64,
                          &members);
  EXPECT_EQ(members, std::vector<TxnId>(
                         {lookups[0].id, lookups[1].id, lookups[2].id}));
}

TEST(FusionIndexTest, CollectStaysExactPastTheLinearScanThreshold) {
  // 40 exact look-alikes push `out` well past the small-group linear scan,
  // onto the hash-set membership path: the result must still be every
  // candidate exactly once, in insertion order, capped by max_members.
  FusionIndex index;
  std::vector<Query> twins;
  twins.reserve(40);
  for (uint64_t i = 0; i < 40; ++i) {
    twins.push_back(MakeIndexQuery(100 + i, QueryType::kAggregation,
                                   {1, 2, 3}));
    index.Insert(&twins.back());
  }
  // A covered lookup after the exact pass exercises taken() on the set.
  Query lookup = MakeIndexQuery(200, QueryType::kLookup, {2});
  index.Insert(&lookup);

  const Query leader = MakeIndexQuery(1, QueryType::kAggregation, {1, 2, 3});
  std::vector<TxnId> members;
  index.CollectCandidates(leader, /*subset=*/true, /*max_members=*/64,
                          &members);
  ASSERT_EQ(members.size(), 41u);
  for (size_t i = 0; i < 40; ++i) EXPECT_EQ(members[i], twins[i].id);
  EXPECT_EQ(members[40], lookup.id);

  members.clear();
  index.CollectCandidates(leader, /*subset=*/true, /*max_members=*/25,
                          &members);
  ASSERT_EQ(members.size(), 25u);
  for (size_t i = 0; i < 25; ++i) EXPECT_EQ(members[i], twins[i].id);
}

// --- fused-result cache ----------------------------------------------------

constexpr SimDuration kTtl = Millis(50);

struct CacheHarness {
  Database db;
  // Legacy single-CPU FIFO; the server wraps it in its SingleCpuAdapter.
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<WebDatabaseServer> server;
  QcGenerator qc_gen{BalancedProfile(QcShape::kStep)};
  Rng qc_rng{42};

  explicit CacheHarness(ServerConfig config = ServerConfig(),
                        int num_items = 8)
      : db(num_items), scheduler(MakeScheduler(SchedulerKind::kFifo)) {
    config.lifetime_factor = 0.0;
    config.fusion.enabled = true;
    config.fusion.result_cache = true;
    config.fusion.cache_ttl = kTtl;
    server = std::make_unique<WebDatabaseServer>(&db, scheduler.get(),
                                                 config);
  }

  Query* Submit(std::vector<ItemId> items,
                SimDuration exec = Millis(10)) {
    return server->SubmitQuery(QueryType::kLookup, std::move(items),
                               qc_gen.Next(qc_rng), exec);
  }
};

TEST(FusionCacheTest, HitExactlyAtTtlExpiryThenMissOneTickPast) {
  CacheHarness h;
  Query* scan = h.Submit({0});
  h.server->RunUntil(Millis(30));
  ASSERT_EQ(scan->state, TxnState::kCommitted);
  const SimTime filled = scan->commit_time;
  ASSERT_EQ(h.server->result_cache().Size(), 1);

  // The TTL is inclusive: a lookup exactly at expiry is still served.
  Query* at_expiry = nullptr;
  h.server->sim().ScheduleAt(filled + kTtl,
                             [&] { at_expiry = h.Submit({0}); });
  // One microsecond later the entry is dead and the query runs for real.
  Query* past_expiry = nullptr;
  h.server->sim().ScheduleAt(filled + kTtl + Micros(1),
                             [&] { past_expiry = h.Submit({0}); });
  h.server->Run();

  ASSERT_NE(at_expiry, nullptr);
  EXPECT_EQ(at_expiry->state, TxnState::kCommitted);
  EXPECT_EQ(at_expiry->cache_source, scan->id);
  EXPECT_EQ(at_expiry->cached_commit_time, filled);
  // Zero scan cost: served at its own arrival instant.
  EXPECT_EQ(at_expiry->commit_time, at_expiry->arrival);
  ASSERT_NE(at_expiry->fused_result, nullptr);
  EXPECT_EQ(at_expiry->fused_result->leader, scan->id);

  ASSERT_NE(past_expiry, nullptr);
  EXPECT_EQ(past_expiry->state, TxnState::kCommitted);
  EXPECT_EQ(past_expiry->cache_source, 0u);
  EXPECT_GT(past_expiry->commit_time, past_expiry->arrival);

  EXPECT_EQ(h.server->metrics().queries_cache_hits, 1);
  // The expired-miss scan recommitted and refilled the cache.
  EXPECT_EQ(h.server->metrics().cache_fills, 2);
  h.server->AuditInvariants();
}

TEST(FusionCacheTest, UpdateArrivingInTheSameEventBatchEvictsFirst) {
  CacheHarness h;
  Query* scan = h.Submit({2});
  h.server->RunUntil(Millis(30));
  ASSERT_EQ(scan->state, TxnState::kCommitted);
  ASSERT_EQ(h.server->result_cache().Size(), 1);

  // Update arrival and lookup land at the same instant, update first (the
  // order they were scheduled): the arrival evicts, so the lookup in the
  // same batch must NOT be served a value the cache already knows is
  // stale-stamped wrong. Anchored at the drained clock (RunUntil advanced
  // it), still well inside the entry's TTL.
  const SimTime batch = h.server->sim().Now() + Millis(5);
  h.server->sim().ScheduleAt(
      batch, [&] { h.server->SubmitUpdate(2, 9.5, Millis(2)); });
  Query* lookup = nullptr;
  h.server->sim().ScheduleAt(batch, [&] { lookup = h.Submit({2}); });
  h.server->Run();

  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(lookup->state, TxnState::kCommitted);
  EXPECT_EQ(lookup->cache_source, 0u);
  EXPECT_EQ(h.server->metrics().queries_cache_hits, 0);
  h.server->AuditInvariants();
}

TEST(FusionCacheTest, ApplyOfAPreArrivalUpdateEvictsTheEntry) {
  // The update ARRIVES while the scan is still running (cache empty, so
  // the arrival hook evicts nothing), the scan commits and fills with that
  // update still unapplied, and only then does the update reach the CPU:
  // the *apply* hook is the only thing standing between the stale entry
  // and a dishonest hit.
  CacheHarness h;
  Query* scan = h.Submit({4});  // runs [0, 10ms) on the FIFO CPU
  h.server->sim().ScheduleAt(
      Millis(1), [&] { h.server->SubmitUpdate(4, 1.25, Millis(2)); });
  Query* lookup = nullptr;
  // Well within TTL of the ~10 ms fill, but after the ~12 ms apply.
  h.server->sim().ScheduleAt(Millis(20), [&] { lookup = h.Submit({4}); });
  h.server->Run();

  EXPECT_EQ(scan->state, TxnState::kCommitted);
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(lookup->state, TxnState::kCommitted);
  EXPECT_EQ(lookup->cache_source, 0u);
  EXPECT_EQ(h.server->metrics().queries_cache_hits, 0);
  // Both real scans filled (the second fill replacing the evicted one).
  EXPECT_EQ(h.server->metrics().cache_fills, 2);
  h.server->AuditInvariants();
}

TEST(FusionCacheTest, CacheHitIsServedWhileAdmissionIsSheddingLoad) {
  // A cached answer holds no resources, so it is served ahead of
  // admission: with DBF starved of supply and actively turning identical
  // load away, the covered lookup still commits from cache while its
  // uncovered twin is refused.
  const int kCpus = 1;
  AdmissionSpec admission_spec;
  admission_spec.kind = AdmissionKind::kDbf;
  // rt_max draws in [50, 100] ms; at 20% supply the lone 4 ms seed scan
  // always fits (supply >= 10 ms) while each 30 ms flood query never does
  // (supply <= 20 ms), independent of the QC draw.
  admission_spec.supply_factor = 0.2;
  std::unique_ptr<AdmissionController> admission =
      MakeAdmission(admission_spec, kCpus);
  ServerConfig config;
  config.admission = admission.get();
  CacheHarness h(config);

  Query* scan = h.Submit({1}, Millis(4));
  h.server->RunUntil(Millis(30));
  ASSERT_EQ(scan->state, TxnState::kCommitted);

  // Flood: long uncached queries on other items outstrip the throttled
  // supply, so the controller is rejecting when the covered lookup
  // arrives. Anchored at the drained clock, inside the entry's TTL.
  const SimTime burst = h.server->sim().Now() + Millis(2);
  std::vector<Query*> flood;
  h.server->sim().ScheduleAt(burst, [&] {
    for (int i = 0; i < 8; ++i) flood.push_back(h.Submit({5}, Millis(30)));
  });
  Query* covered = nullptr;
  h.server->sim().ScheduleAt(burst + Millis(1),
                             [&] { covered = h.Submit({1}, Millis(4)); });
  h.server->Run();

  ASSERT_NE(covered, nullptr);
  EXPECT_EQ(covered->state, TxnState::kCommitted);
  EXPECT_EQ(covered->cache_source, scan->id);
  EXPECT_GE(h.server->metrics().queries_rejected +
                h.server->metrics().queries_shed,
            1) << "flood did not overload admission";
  h.server->AuditInvariants();
}

TEST(FusionCacheTest, SweepJobsAreBitIdenticalWithCacheOn) {
  std::vector<Trace> traces;
  for (uint64_t seed : {21u, 22u, 23u}) {
    OverloadScenarioConfig config;
    config.seed = seed;
    config.scale = 10.0;
    config.duration = Seconds(2);
    config.num_stocks = 64;
    config.query_rate = 300.0;
    config.update_rate = 60.0;
    traces.push_back(MakeOverloadTrace(OverloadScenario::kMarketOpen,
                                       config));
  }

  auto run_with_jobs = [&](int jobs) {
    std::vector<SweepRunner::Point> points;
    for (size_t i = 0; i < traces.size(); ++i) {
      SweepRunner::Point point;
      point.trace = &traces[i];
      point.spec.kind = SchedulerKind::kQuts;
      point.spec.topology.num_cpus = i == 2 ? 4 : 1;
      point.options.qc_seed = 17 + i;
      point.options.qc = BalancedProfile(QcShape::kStep);
      point.options.server.fusion.enabled = true;
      point.options.server.fusion.result_cache = true;
      point.options.compute_end_state_hash = true;
      points.push_back(point);
    }
    SweepConfig sweep;
    sweep.jobs = jobs;
    sweep.base_seed = 2007;
    return SweepRunner(sweep).RunPoints(points);
  };

  const std::vector<ExperimentResult> serial = run_with_jobs(1);
  const std::vector<ExperimentResult> parallel = run_with_jobs(4);
  ASSERT_EQ(serial.size(), parallel.size());
  int64_t total_hits = 0;
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].end_state_hash, parallel[i].end_state_hash)
        << "point " << i;
    EXPECT_EQ(serial[i].queries_cache_hits, parallel[i].queries_cache_hits)
        << "point " << i;
    EXPECT_EQ(serial[i].cache_fills, parallel[i].cache_fills)
        << "point " << i;
    EXPECT_EQ(serial[i].queries_committed, parallel[i].queries_committed)
        << "point " << i;
    total_hits += serial[i].queries_cache_hits;
  }
  EXPECT_GT(total_hits, 0) << "sweep produced no cache hits";
}

}  // namespace
}  // namespace webdb
