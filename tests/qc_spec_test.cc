#include "qc/qc_spec.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(QcSpecTest, ParsesFigure2StepContract) {
  QualityContract qc;
  std::string error;
  ASSERT_TRUE(ParseQcSpec("step qos=$1@50ms qod=$2@1", &qc, &error)) << error;
  EXPECT_DOUBLE_EQ(qc.qos_max(), 1.0);
  EXPECT_DOUBLE_EQ(qc.qod_max(), 2.0);
  EXPECT_EQ(qc.rt_max(), Millis(50));
  EXPECT_DOUBLE_EQ(qc.uu_max(), 1.0);
  EXPECT_EQ(qc.combination(), QcCombination::kQosIndependent);
  EXPECT_DOUBLE_EQ(qc.QosProfit(Millis(10)), 1.0);
  EXPECT_DOUBLE_EQ(qc.QosProfit(Millis(60)), 0.0);
}

TEST(QcSpecTest, ParsesLinearWithSecondsAndMode) {
  QualityContract qc;
  ASSERT_TRUE(ParseQcSpec("linear qos=2@0.05s qod=1@2 mode=dependent", &qc));
  EXPECT_EQ(qc.rt_max(), Millis(50));
  EXPECT_EQ(qc.combination(), QcCombination::kQosDependent);
  EXPECT_DOUBLE_EQ(qc.QosProfit(Millis(25)), 1.0);  // linear midpoint
}

TEST(QcSpecTest, ParsesExpShape) {
  QualityContract qc;
  ASSERT_TRUE(ParseQcSpec("exp qos=4@20ms qod=6@1", &qc));
  EXPECT_DOUBLE_EQ(qc.qos_max(), 4.0);
  // exp decay: at x == scale the profit is max/e.
  EXPECT_NEAR(qc.QosProfit(Millis(20)), 4.0 / 2.718281828, 1e-6);
}

TEST(QcSpecTest, OmittedDimensionIsZero) {
  QualityContract qc;
  ASSERT_TRUE(ParseQcSpec("step qos=10@100ms", &qc));
  EXPECT_DOUBLE_EQ(qc.qos_max(), 10.0);
  EXPECT_DOUBLE_EQ(qc.qod_max(), 0.0);
}

TEST(QcSpecTest, MoneyWithoutDollarSign) {
  QualityContract qc;
  ASSERT_TRUE(ParseQcSpec("step qos=7.5@10ms", &qc));
  EXPECT_DOUBLE_EQ(qc.qos_max(), 7.5);
}

TEST(QcSpecTest, BareNumberDurationDefaultsToMs) {
  QualityContract qc;
  ASSERT_TRUE(ParseQcSpec("step qos=1@75", &qc));
  EXPECT_EQ(qc.rt_max(), Millis(75));
}

struct BadSpec {
  const char* spec;
  const char* expect_in_error;
};

class QcSpecErrorTest : public ::testing::TestWithParam<BadSpec> {};

TEST_P(QcSpecErrorTest, Rejects) {
  QualityContract qc;
  std::string error;
  EXPECT_FALSE(ParseQcSpec(GetParam().spec, &qc, &error));
  EXPECT_NE(error.find(GetParam().expect_in_error), std::string::npos)
      << "error was: " << error;
}

INSTANTIATE_TEST_SUITE_P(
    BadSpecs, QcSpecErrorTest,
    ::testing::Values(
        BadSpec{"", "empty"},
        BadSpec{"triangle qos=1@1ms", "unknown shape"},
        BadSpec{"step qos", "key=value"},
        BadSpec{"step qos=1", "profit@cutoff"},
        BadSpec{"step qos=abc@50ms", "bad profit"},
        BadSpec{"step qos=1@-5ms", "bad response-time cutoff"},
        BadSpec{"step qod=1@zero", "bad staleness cutoff"},
        BadSpec{"step mode=sometimes", "bad mode"},
        BadSpec{"step speed=1@1", "unknown field"}));

TEST(QcSpecTest, ErrorPointerOptional) {
  QualityContract qc;
  EXPECT_FALSE(ParseQcSpec("nonsense", &qc));  // must not crash
}

}  // namespace
}  // namespace webdb
