// Cross-scheduler property tests on small generated traces: conservation of
// transactions, profit bounds, determinism, and the qualitative orderings
// the paper takes for granted (UH freshest, QH fastest).

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "exp/scheduler_factory.h"
#include "trace/stock_trace_generator.h"

namespace webdb {
namespace {

// A deliberately overloaded small workload (offered utilization > 1) so the
// schedulers actually have to make trade-offs.
Trace LoadedTrace(uint64_t seed) {
  StockTraceConfig config = StockTraceConfig::Small(seed);
  config.query_rate = 40.0;
  config.update_rate_start = 280.0;
  config.update_rate_end = 200.0;
  return GenerateStockTrace(config);
}

ExperimentResult RunOnce(const Trace& trace, SchedulerKind kind,
                     uint64_t qc_seed = 7) {
  auto scheduler = MakeScheduler(kind);
  ExperimentOptions options;
  options.qc_seed = qc_seed;
  options.qc = BalancedProfile(QcShape::kStep);
  return RunExperiment(trace, scheduler.get(), options);
}

class SchedulerPropertyTest
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, uint64_t>> {};

TEST_P(SchedulerPropertyTest, EveryTransactionReachesATerminalState) {
  const auto [kind, seed] = GetParam();
  const Trace trace = LoadedTrace(seed);
  const ExperimentResult result = RunOnce(trace, kind);
  EXPECT_EQ(result.queries_committed + result.queries_dropped,
            static_cast<int64_t>(trace.queries.size()));
  EXPECT_EQ(result.updates_applied + result.updates_invalidated,
            static_cast<int64_t>(trace.updates.size()));
}

TEST_P(SchedulerPropertyTest, GainedProfitBoundedBySubmittedMax) {
  const auto [kind, seed] = GetParam();
  const ExperimentResult result = RunOnce(LoadedTrace(seed), kind);
  EXPECT_GE(result.qos_gained, 0.0);
  EXPECT_GE(result.qod_gained, 0.0);
  EXPECT_LE(result.qos_gained, result.qos_max + 1e-9);
  EXPECT_LE(result.qod_gained, result.qod_max + 1e-9);
  EXPECT_GE(result.total_pct, 0.0);
  EXPECT_LE(result.total_pct, 1.0 + 1e-9);
}

TEST_P(SchedulerPropertyTest, DeterministicAcrossRuns) {
  const auto [kind, seed] = GetParam();
  const Trace trace = LoadedTrace(seed);
  const ExperimentResult a = RunOnce(trace, kind);
  const ExperimentResult b = RunOnce(trace, kind);
  EXPECT_DOUBLE_EQ(a.qos_gained, b.qos_gained);
  EXPECT_DOUBLE_EQ(a.qod_gained, b.qod_gained);
  EXPECT_DOUBLE_EQ(a.avg_response_ms, b.avg_response_ms);
  EXPECT_EQ(a.queries_committed, b.queries_committed);
  EXPECT_EQ(a.updates_applied, b.updates_applied);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

TEST_P(SchedulerPropertyTest, UtilizationWithinPhysicalBounds) {
  const auto [kind, seed] = GetParam();
  const ExperimentResult result = RunOnce(LoadedTrace(seed), kind);
  EXPECT_GT(result.cpu_utilization, 0.0);
  EXPECT_LE(result.cpu_utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerPropertyTest,
    ::testing::Combine(::testing::Values(SchedulerKind::kFifo,
                                         SchedulerKind::kUpdateHigh,
                                         SchedulerKind::kQueryHigh,
                                         SchedulerKind::kFifoUpdateHigh,
                                         SchedulerKind::kFifoQueryHigh,
                                         SchedulerKind::kQuts),
                       ::testing::Values<uint64_t>(1, 2, 3)));

TEST(SchedulerOrderingTest, UpdateHighIsFreshestQueryHighIsFastest) {
  const Trace trace = LoadedTrace(4);
  const ExperimentResult uh = RunOnce(trace, SchedulerKind::kUpdateHigh);
  const ExperimentResult qh = RunOnce(trace, SchedulerKind::kQueryHigh);
  // UH keeps data essentially fresh; QH answers faster than UH.
  EXPECT_LT(uh.avg_staleness, 0.05);
  EXPECT_GE(qh.avg_staleness, uh.avg_staleness);
  EXPECT_LE(qh.avg_response_ms, uh.avg_response_ms);
}

TEST(SchedulerOrderingTest, QutsRhoStaysInTheFeasibleBand) {
  const Trace trace = LoadedTrace(5);
  auto scheduler = MakeScheduler(SchedulerKind::kQuts);
  ExperimentOptions options;
  options.qc = BalancedProfile(QcShape::kStep);
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);
  ASSERT_FALSE(result.rho_series.empty());
  for (const auto& [time, rho] : result.rho_series) {
    EXPECT_GE(rho, 0.5 - 1e-9);
    EXPECT_LE(rho, 1.0 + 1e-9);
  }
}

TEST(SchedulerOrderingTest, QutsBeatsFifoOnBalancedPreferences) {
  const Trace trace = LoadedTrace(6);
  const ExperimentResult fifo = RunOnce(trace, SchedulerKind::kFifo);
  const ExperimentResult quts = RunOnce(trace, SchedulerKind::kQuts);
  EXPECT_GT(quts.total_pct, fifo.total_pct);
}

}  // namespace
}  // namespace webdb
