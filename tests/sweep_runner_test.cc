// SweepRunner correctness: the determinism contract (bit-identical results
// at any jobs value), submission-order collection, exception propagation,
// edge cases, and the sweep.* metric accounting.

#include "exp/sweep_runner.h"

#include <cstddef>
#include <ios>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/stock_trace_generator.h"

namespace webdb {
namespace {

// Serializes every field of an ExperimentResult — hex floats, so two
// results compare byte-for-byte equal iff they are bit-identical.
std::string Serialize(const ExperimentResult& result) {
  std::ostringstream out;
  out << std::hexfloat;
  out << result.scheduler << '|' << result.qos_pct << '|' << result.qod_pct
      << '|' << result.total_pct << '|' << result.qos_max_pct << '|'
      << result.qod_max_pct << '|' << result.qos_gained << '|'
      << result.qod_gained << '|' << result.qos_max << '|' << result.qod_max
      << '|' << result.avg_response_ms << '|' << result.avg_staleness << '|'
      << result.cpu_utilization << '|' << result.queries_committed << '|'
      << result.queries_dropped << '|' << result.queries_expired << '|'
      << result.query_restarts << '|' << result.updates_applied << '|'
      << result.updates_invalidated << '|' << result.update_restarts << '|'
      << result.preemptions << '|' << result.peak_queued_queries << '|'
      << result.peak_queued_updates;
  for (double v : result.qos_gained_per_s) out << ',' << v;
  for (double v : result.qod_gained_per_s) out << ',' << v;
  for (double v : result.qos_max_per_s) out << ',' << v;
  for (double v : result.qod_max_per_s) out << ',' << v;
  for (const auto& [time, rho] : result.rho_series) {
    out << ';' << time << ':' << rho;
  }
  out << '#' << result.registry.time;
  for (const auto& [name, value] : result.registry.values) {
    out << ';' << name << '=' << value;
  }
  for (const MetricSnapshot& snap : result.registry_series) {
    out << '@' << snap.time;
    for (const auto& [name, value] : snap.values) {
      out << ';' << name << '=' << value;
    }
  }
  return out.str();
}

class SweepRunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StockTraceConfig config = StockTraceConfig::Small(77);
    config.query_rate = 25.0;
    config.update_rate_start = 150.0;
    config.update_rate_end = 100.0;
    trace_ = new Trace(GenerateStockTrace(config));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  // A 16-point sweep mixing schedulers and QC profiles, with per-run
  // derived seeds — the shape the figure sweeps use.
  static std::vector<SweepRunner::Point> SixteenPoints(
      const SweepRunner& runner) {
    const std::vector<SchedulerKind> kinds = PaperSchedulers();
    std::vector<SweepRunner::Point> points;
    for (size_t i = 0; i < 16; ++i) {
      SweepRunner::Point point;
      point.trace = trace_;
      point.spec.kind = kinds[i % kinds.size()];
      point.options.qc_seed = runner.SeedFor(i);
      point.options.qc =
          Table4Profile(0.1 * static_cast<double>(1 + i % 9), QcShape::kStep);
      points.push_back(point);
    }
    return points;
  }

  static Trace* trace_;
};

Trace* SweepRunnerTest::trace_ = nullptr;

TEST_F(SweepRunnerTest, BitIdenticalResultsAtAnyJobsValue) {
  std::vector<std::string> baseline;
  for (int jobs : {1, 4, 8}) {
    SweepConfig config;
    config.jobs = jobs;
    config.base_seed = 2007;
    const SweepRunner runner(config);
    const std::vector<ExperimentResult> results =
        runner.RunPoints(SixteenPoints(runner));
    ASSERT_EQ(results.size(), 16u);
    std::vector<std::string> serialized;
    for (const ExperimentResult& result : results) {
      serialized.push_back(Serialize(result));
    }
    if (jobs == 1) {
      baseline = serialized;
    } else {
      for (size_t i = 0; i < serialized.size(); ++i) {
        EXPECT_EQ(serialized[i], baseline[i])
            << "point " << i << " diverged at jobs=" << jobs;
      }
    }
  }
}

TEST_F(SweepRunnerTest, ResultsCollectedInSubmissionOrder) {
  SweepConfig config;
  config.jobs = 4;
  const SweepRunner runner(config);
  // Tasks deliberately finish out of order (later ids are cheaper).
  const std::vector<size_t> out = runner.Map(32, [](size_t i) { return i; });
  ASSERT_EQ(out.size(), 32u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST_F(SweepRunnerTest, EmptySweepReturnsEmpty) {
  SweepConfig config;
  config.jobs = 4;
  const SweepRunner runner(config);
  EXPECT_TRUE(runner.RunPoints({}).empty());
  EXPECT_TRUE(runner.Map(0, [](size_t) { return 1; }).empty());
}

TEST_F(SweepRunnerTest, SinglePointSweep) {
  SweepConfig config;
  config.jobs = 8;  // more workers than points
  const SweepRunner runner(config);
  const std::vector<int> out = runner.Map(1, [](size_t) { return 41; });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 41);
}

TEST_F(SweepRunnerTest, ExceptionPropagatesToCaller) {
  for (int jobs : {1, 4}) {
    SweepConfig config;
    config.jobs = jobs;
    const SweepRunner runner(config);
    EXPECT_THROW(runner.Map(8,
                            [](size_t i) -> int {
                              if (i == 3) throw std::runtime_error("boom");
                              return static_cast<int>(i);
                            }),
                 std::runtime_error)
        << "jobs=" << jobs;
  }
}

TEST_F(SweepRunnerTest, SeedForMatchesDeriveSeed) {
  SweepConfig config;
  config.base_seed = 99;
  const SweepRunner runner(config);
  for (uint64_t run_id : {uint64_t{0}, uint64_t{1}, uint64_t{1000}}) {
    EXPECT_EQ(runner.SeedFor(run_id), DeriveSeed(99, run_id));
  }
}

TEST_F(SweepRunnerTest, ResolveJobsContract) {
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_EQ(ResolveJobs(5), 5);
  EXPECT_GE(ResolveJobs(0), 1);   // hardware concurrency, at least one
  EXPECT_GE(ResolveJobs(-3), 1);
}

TEST_F(SweepRunnerTest, SweepMetricsRecordedOnSubmittingThread) {
  MetricRegistry registry;
  SweepConfig config;
  config.jobs = 4;
  config.registry = &registry;
  const SweepRunner runner(config);
  (void)runner.Map(10, [](size_t i) { return i; });
  (void)runner.Map(6, [](size_t i) { return i; });
  EXPECT_EQ(registry.Value("sweep.runs"), 16.0);
  EXPECT_EQ(registry.Value("sweep.sweeps"), 2.0);
  EXPECT_GE(registry.Value("sweep.wall_us"), 0.0);
}

}  // namespace
}  // namespace webdb
