#include "sim/processor.h"

#include <vector>

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(ProcessorTest, CompletesAfterServiceTime) {
  Simulator sim;
  Processor cpu(&sim);
  std::vector<uint64_t> done;
  sim.ScheduleAt(0, [&] {
    // The owner captures the task id; the callback itself takes nothing.
    cpu.Start(7, 100, [&] { done.push_back(7); });
  });
  sim.Run();
  EXPECT_EQ(done, (std::vector<uint64_t>{7}));
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_FALSE(cpu.busy());
  EXPECT_EQ(cpu.TotalBusyTime(), 100);
}

TEST(ProcessorTest, PreemptReturnsRemaining) {
  Simulator sim;
  Processor cpu(&sim);
  bool completed = false;
  SimDuration remaining = -1;
  sim.ScheduleAt(0, [&] {
    cpu.Start(1, 100, [&] { completed = true; });
  });
  sim.ScheduleAt(30, [&] { remaining = cpu.Preempt(); });
  sim.Run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(remaining, 70);
  EXPECT_FALSE(cpu.busy());
  EXPECT_EQ(cpu.TotalBusyTime(), 30);
}

TEST(ProcessorTest, ResumeAfterPreemptFinishesWithTotalService) {
  Simulator sim;
  Processor cpu(&sim);
  SimTime completion_time = -1;
  sim.ScheduleAt(0, [&] {
    cpu.Start(1, 100, [&] { completion_time = sim.Now(); });
  });
  sim.ScheduleAt(40, [&] {
    const SimDuration remaining = cpu.Preempt();
    // resume 10 later
    sim.ScheduleAfter(10, [&cpu, remaining, &completion_time, &sim] {
      cpu.Start(1, remaining, [&] { completion_time = sim.Now(); });
    });
  });
  sim.Run();
  EXPECT_EQ(completion_time, 110);  // 40 run + 10 pause + 60 remaining
  EXPECT_EQ(cpu.TotalBusyTime(), 100);
}

TEST(ProcessorTest, AbortDiscardsTask) {
  Simulator sim;
  Processor cpu(&sim);
  bool completed = false;
  sim.ScheduleAt(0, [&] {
    cpu.Start(1, 100, [&] { completed = true; });
  });
  sim.ScheduleAt(10, [&] { cpu.Abort(); });
  sim.Run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(cpu.TotalBusyTime(), 10);
}

TEST(ProcessorTest, ElapsedAndRemainingTrackProgress) {
  Simulator sim;
  Processor cpu(&sim);
  sim.ScheduleAt(0, [&] { cpu.Start(9, 50, [] {}); });
  sim.ScheduleAt(20, [&] {
    EXPECT_TRUE(cpu.busy());
    EXPECT_EQ(cpu.current_task(), 9u);
    EXPECT_EQ(cpu.Elapsed(), 20);
    EXPECT_EQ(cpu.Remaining(), 30);
  });
  sim.Run();
}

TEST(ProcessorTest, IdleByCompletionCallbackTime) {
  Simulator sim;
  Processor cpu(&sim);
  sim.ScheduleAt(0, [&] {
    cpu.Start(1, 10, [&] {
      EXPECT_FALSE(cpu.busy());
      // Back-to-back dispatch from the completion callback must work.
      cpu.Start(2, 5, [] {});
    });
  });
  sim.Run();
  EXPECT_EQ(sim.Now(), 15);
  EXPECT_EQ(cpu.TotalBusyTime(), 15);
}

TEST(ProcessorDeathTest, DoubleStartAborts) {
  Simulator sim;
  Processor cpu(&sim);
  sim.ScheduleAt(0, [&] {
    cpu.Start(1, 10, [] {});
    EXPECT_DEATH(cpu.Start(2, 10, [] {}), "busy");
  });
  sim.Run();
}

TEST(ProcessorDeathTest, PreemptIdleAborts) {
  Simulator sim;
  Processor cpu(&sim);
  EXPECT_DEATH(cpu.Preempt(), "idle");
}

}  // namespace
}  // namespace webdb
