#include "trace/trace_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "trace/stock_trace_generator.h"

namespace webdb {
namespace {

std::string TempBase(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveTraceFiles(const std::string& base) {
  std::remove((base + ".meta.csv").c_str());
  std::remove((base + ".queries.csv").c_str());
  std::remove((base + ".updates.csv").c_str());
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const Trace original = GenerateStockTrace(StockTraceConfig::Small(11));
  const std::string base = TempBase("roundtrip");
  ASSERT_TRUE(SaveTrace(original, base));
  Trace loaded;
  ASSERT_TRUE(LoadTrace(base, &loaded));
  EXPECT_EQ(loaded.num_items, original.num_items);
  ASSERT_EQ(loaded.queries.size(), original.queries.size());
  ASSERT_EQ(loaded.updates.size(), original.updates.size());
  for (size_t i = 0; i < original.queries.size(); ++i) {
    EXPECT_EQ(loaded.queries[i].arrival, original.queries[i].arrival);
    EXPECT_EQ(loaded.queries[i].type, original.queries[i].type);
    EXPECT_EQ(loaded.queries[i].exec_time, original.queries[i].exec_time);
    EXPECT_EQ(loaded.queries[i].items, original.queries[i].items);
  }
  for (size_t i = 0; i < original.updates.size(); ++i) {
    EXPECT_EQ(loaded.updates[i].arrival, original.updates[i].arrival);
    EXPECT_EQ(loaded.updates[i].item, original.updates[i].item);
    EXPECT_NEAR(loaded.updates[i].value, original.updates[i].value, 1e-5);
    EXPECT_EQ(loaded.updates[i].exec_time, original.updates[i].exec_time);
  }
  RemoveTraceFiles(base);
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  empty.num_items = 5;
  const std::string base = TempBase("empty");
  ASSERT_TRUE(SaveTrace(empty, base));
  Trace loaded;
  ASSERT_TRUE(LoadTrace(base, &loaded));
  EXPECT_EQ(loaded.num_items, 5);
  EXPECT_TRUE(loaded.queries.empty());
  EXPECT_TRUE(loaded.updates.empty());
  RemoveTraceFiles(base);
}

TEST(TraceIoTest, LoadMissingFilesFails) {
  Trace loaded;
  EXPECT_FALSE(LoadTrace(TempBase("missing"), &loaded));
}

}  // namespace
}  // namespace webdb
