#include "exp/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace webdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ReportTest, WriteExperimentCsvHasHeaderAndRows) {
  ExperimentResult a;
  a.scheduler = "QUTS";
  a.total_pct = 0.9;
  a.queries_committed = 42;
  ExperimentResult b;
  b.scheduler = "FIFO";
  b.total_pct = 0.5;
  const std::string path = TempPath("results.csv");
  ASSERT_TRUE(WriteExperimentCsv(path, {a, b}));
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("scheduler,qos_pct"), std::string::npos);
  EXPECT_NE(content.find("QUTS"), std::string::npos);
  EXPECT_NE(content.find("FIFO"), std::string::npos);
  EXPECT_NE(content.find("42"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportTest, WriteSeriesCsvPadsToLongest) {
  const std::string path = TempPath("series.csv");
  ASSERT_TRUE(WriteSeriesCsv(path, {"gained", "max"},
                             {{1.0, 2.0}, {3.0, 4.0, 5.0}}));
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("t,gained,max"), std::string::npos);
  // Row 2 has the padded zero for the shorter series.
  EXPECT_NE(content.find("2,0,5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportTest, WritePairsCsv) {
  const std::string path = TempPath("pairs.csv");
  ASSERT_TRUE(WritePairsCsv(path, "tau_ms", "total_pct",
                            {{1.0, 0.9}, {10.0, 0.85}}));
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("tau_ms,total_pct"), std::string::npos);
  EXPECT_NE(content.find("10,0.85"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportTest, WriteToUnwritablePathFails) {
  EXPECT_FALSE(WriteExperimentCsv("/nonexistent-dir/x.csv", {}));
}

TEST(ReportTest, CsvDirFromEnvEmptyByDefault) {
  // The test environment does not set WEBDB_CSV_DIR.
  EXPECT_TRUE(CsvDirFromEnv().empty());
}

}  // namespace
}  // namespace webdb
