#include "sched/query_policy.h"

#include <gtest/gtest.h>

#include "test_txns.h"

namespace webdb {
namespace {

TEST(QueryPolicyTest, FifoPrefersEarlierArrival) {
  TxnPool pool;
  Query* early = pool.NewQuery(10);
  Query* late = pool.NewQuery(20);
  EXPECT_GT(QueryPriority(*early, QueryPolicy::kFifo),
            QueryPriority(*late, QueryPolicy::kFifo));
}

TEST(QueryPolicyTest, VrdMatchesPaperFormula) {
  TxnPool pool;
  // VRD = (qos_max + qod_max) / rt_max.
  Query* q = pool.NewQuery(0, Millis(5), 30.0, 20.0, Millis(50));
  EXPECT_DOUBLE_EQ(QueryPriority(*q, QueryPolicy::kVrd), 50.0 / 50.0);
}

TEST(QueryPolicyTest, VrdPrefersHighValueTightDeadline) {
  TxnPool pool;
  Query* valuable = pool.NewQuery(0, Millis(5), 50.0, 50.0, Millis(50));
  Query* cheap = pool.NewQuery(0, Millis(5), 10.0, 10.0, Millis(50));
  Query* loose = pool.NewQuery(0, Millis(5), 50.0, 50.0, Millis(100));
  EXPECT_GT(QueryPriority(*valuable, QueryPolicy::kVrd),
            QueryPriority(*cheap, QueryPolicy::kVrd));
  EXPECT_GT(QueryPriority(*valuable, QueryPolicy::kVrd),
            QueryPriority(*loose, QueryPolicy::kVrd));
}

TEST(QueryPolicyTest, VrdZeroContractIsLowestValue) {
  TxnPool pool;
  Query* q = pool.NewQuery(0);
  q->qc = QualityContract();  // rt_max == 0
  EXPECT_DOUBLE_EQ(QueryPriority(*q, QueryPolicy::kVrd), 0.0);
}

TEST(QueryPolicyTest, EdfPrefersEarlierDeadline) {
  TxnPool pool;
  Query* tight = pool.NewQuery(0, Millis(5), 1.0, 1.0, Millis(50));
  Query* loose = pool.NewQuery(0, Millis(5), 99.0, 99.0, Millis(100));
  EXPECT_GT(QueryPriority(*tight, QueryPolicy::kEdf),
            QueryPriority(*loose, QueryPolicy::kEdf));
  // A later arrival with the same rt_max has a later absolute deadline.
  Query* later = pool.NewQuery(Millis(10), Millis(5), 1.0, 1.0, Millis(50));
  EXPECT_GT(QueryPriority(*tight, QueryPolicy::kEdf),
            QueryPriority(*later, QueryPolicy::kEdf));
}

TEST(QueryPolicyTest, ProfitDensityNormalizesByServiceTime) {
  TxnPool pool;
  Query* quick = pool.NewQuery(0, Millis(5), 10.0, 10.0);
  Query* slow = pool.NewQuery(0, Millis(10), 10.0, 10.0);
  EXPECT_GT(QueryPriority(*quick, QueryPolicy::kProfitDensity),
            QueryPriority(*slow, QueryPolicy::kProfitDensity));
}

TEST(QueryPolicyTest, SjfPrefersShortQueries) {
  TxnPool pool;
  Query* quick = pool.NewQuery(0, Millis(2), 1.0, 1.0);
  Query* slow = pool.NewQuery(0, Millis(9), 99.0, 99.0);
  EXPECT_GT(QueryPriority(*quick, QueryPolicy::kSjf),
            QueryPriority(*slow, QueryPolicy::kSjf));
}

TEST(QueryPolicyTest, Names) {
  EXPECT_EQ(ToString(QueryPolicy::kSjf), "sjf");
  EXPECT_EQ(ToString(QueryPolicy::kFifo), "fifo");
  EXPECT_EQ(ToString(QueryPolicy::kVrd), "vrd");
  EXPECT_EQ(ToString(QueryPolicy::kEdf), "edf");
  EXPECT_EQ(ToString(QueryPolicy::kProfitDensity), "profit-density");
}

}  // namespace
}  // namespace webdb
