// Randomized stress tests: hammer the server with adversarial submission
// patterns (hot-item storms, same-timestamp ties, zero-QC mixes, tiny
// lifetimes) under every scheduler and check the invariants that no nominal
// scenario exercises: quiescence after drain, terminal states for every
// transaction, resource-leak freedom, profit bounds.

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "audit/invariant_auditor.h"
#include "core/quts_scheduler.h"
#include "db/database.h"
#include "exp/scheduler_factory.h"
#include "qc/qc_generator.h"
#include "server/web_database_server.h"
#include "util/rng.h"

namespace webdb {
namespace {

struct StressConfig {
  int num_items = 8;           // tiny: maximal contention
  int rounds = 2000;
  SimDuration max_gap = Millis(4);
  double query_frac = 0.35;
  double zero_qc_frac = 0.1;
  ServerConfig server;
};

void RunStress(SchedulerKind kind, uint64_t seed, const StressConfig& cfg) {
  auto scheduler = MakeScheduler(kind);
  Database db(cfg.num_items);
  WebDatabaseServer server(&db, scheduler.get(), cfg.server);
  Rng rng(seed);
  QcGenerator qc_gen(BalancedProfile(QcShape::kStep));

  SimTime t = 0;
  for (int round = 0; round < cfg.rounds; ++round) {
    // Ties on purpose: ~25% of submissions share the previous timestamp.
    if (!rng.Bernoulli(0.25)) t += rng.UniformInt(1, cfg.max_gap);
    const bool is_query = rng.Bernoulli(cfg.query_frac);
    server.sim().ScheduleAt(t, [&server, &rng, &qc_gen, &cfg, is_query] {
      if (is_query) {
        std::vector<ItemId> items;
        const int n = static_cast<int>(rng.UniformInt(1, 3));
        for (int i = 0; i < n; ++i) {
          const ItemId item =
              static_cast<ItemId>(rng.UniformInt(0, cfg.num_items - 1));
          if (std::find(items.begin(), items.end(), item) == items.end()) {
            items.push_back(item);
          }
        }
        const QualityContract qc = rng.Bernoulli(cfg.zero_qc_frac)
                                       ? QualityContract()
                                       : qc_gen.Next(rng);
        server.SubmitQuery(QueryType::kLookup, std::move(items), qc,
                           rng.UniformInt(Millis(1), Millis(9)));
      } else {
        server.SubmitUpdate(
            static_cast<ItemId>(rng.UniformInt(0, cfg.num_items - 1)),
            rng.Uniform(1.0, 100.0), rng.UniformInt(Millis(1), Millis(5)));
      }
    });
  }
  server.Run();

  // --- invariants -----------------------------------------------------------
  // Deep structural audit of the drained end state (DESIGN.md §8); aborts
  // on violation. Under -DWEBDB_AUDIT=ON it also ran throughout the run,
  // strided across scheduling events.
  server.AuditInvariants();
  if constexpr (audit::kEnabled) {
    EXPECT_GT(audit::TotalChecksPerformed(), 0u)
        << "audit build ran without exercising any invariant check";
  }
  EXPECT_TRUE(server.IsQuiescent());
  const ServerMetrics& metrics = server.metrics();
  EXPECT_EQ(metrics.queries_committed + metrics.queries_dropped,
            metrics.queries_submitted);
  EXPECT_EQ(metrics.updates_applied + metrics.updates_invalidated,
            metrics.updates_submitted);
  for (const Query& query : server.queries()) {
    EXPECT_TRUE(query.state == TxnState::kCommitted ||
                query.state == TxnState::kDropped)
        << ToString(query.state);
    if (query.state == TxnState::kCommitted) {
      EXPECT_GE(query.ResponseTime(), query.service_time);
      EXPECT_GE(query.profit.qos, 0.0);
      EXPECT_LE(query.profit.qos, query.qc.qos_max());
      EXPECT_LE(query.profit.qod, query.qc.qod_max());
    }
  }
  for (const Update& update : server.updates()) {
    EXPECT_TRUE(update.state == TxnState::kCommitted ||
                update.state == TxnState::kInvalidated)
        << ToString(update.state);
    if (update.state == TxnState::kCommitted) {
      EXPECT_GE(update.ApplyLatency(), update.service_time);
    }
  }
  // Every item's committed value is the newest applied one; the database's
  // internal sequence checks would have aborted otherwise. Final freshness:
  // all updates either applied or superseded, so every item is fresh.
  for (ItemId i = 0; i < db.NumItems(); ++i) {
    EXPECT_TRUE(db.Item(i).IsFresh()) << "item " << i;
  }
  EXPECT_LE(server.ledger().total_gained(),
            server.ledger().total_max() + 1e-9);
}

class StressTest
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, uint64_t>> {};

TEST_P(StressTest, InvariantsHoldUnderRandomLoad) {
  const auto [kind, seed] = GetParam();
  RunStress(kind, seed, StressConfig());
}

TEST_P(StressTest, InvariantsHoldWithAggressiveLifetimes) {
  const auto [kind, seed] = GetParam();
  StressConfig cfg;
  cfg.server.lifetime_factor = 0.1;
  cfg.server.min_lifetime = Millis(5);  // most queued queries will drop
  RunStress(kind, seed, cfg);
}

TEST_P(StressTest, InvariantsHoldWithDispatchOverheadAndSampling) {
  const auto [kind, seed] = GetParam();
  StressConfig cfg;
  cfg.server.dispatch_overhead = Micros(50);
  cfg.server.queue_sample_period = Millis(10);
  RunStress(kind, seed, cfg);
}

TEST_P(StressTest, InvariantsHoldWithout2plHp) {
  const auto [kind, seed] = GetParam();
  StressConfig cfg;
  cfg.server.enable_2plhp = false;
  RunStress(kind, seed, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, StressTest,
    ::testing::Combine(::testing::Values(SchedulerKind::kFifo,
                                         SchedulerKind::kUpdateHigh,
                                         SchedulerKind::kQueryHigh,
                                         SchedulerKind::kQuts),
                       ::testing::Values<uint64_t>(11, 22)));

TEST(RestartStormTest, HeavyPreemptionKeepsQueueAccountingExact) {
  // Adversarial 2PL-HP restart storm: one hot item, long-running updates,
  // and a stream of short queries under the query-favoring scheduler. Every
  // dispatched query preempts the running update and then restarts it at
  // lock acquisition (write-lock conflict), so the update queue sees a
  // continuous Remove+Requeue churn — the exact pattern that builds
  // tombstones in TxnQueue. Auditing at every step checks that the O(1)
  // queue depths still match the per-state transaction populations (the
  // dual-queue conservation law), i.e. that compaction and the Remove()
  // bookkeeping never drift.
  auto scheduler = MakeScheduler(SchedulerKind::kQueryHigh);
  Database db(2);
  WebDatabaseServer server(&db, scheduler.get(), ServerConfig());
  Rng rng(7);

  SimTime t = 0;
  for (int round = 0; round < 400; ++round) {
    t += rng.UniformInt(Millis(1), Millis(3));
    const bool is_query = (round % 4) != 0;  // 3 queries per update
    server.sim().ScheduleAt(t, [&server, is_query] {
      if (is_query) {
        server.SubmitQuery(QueryType::kLookup, {0}, QualityContract(),
                           Millis(1));
      } else {
        server.SubmitUpdate(0, 1.0, Millis(20));  // long: preemption target
      }
    });
  }

  // Drive the run in slices, deep-auditing between slices so queue-depth
  // drift is caught while the storm is raging, not just after the drain.
  for (SimTime cut = Millis(50); cut <= t + Millis(100); cut += Millis(50)) {
    server.RunUntil(cut);
    server.AuditInvariants();
  }
  server.Run();
  server.AuditInvariants();

  const ServerMetrics& metrics = server.metrics();
  EXPECT_GT(metrics.preemptions, 50);
  EXPECT_GT(metrics.update_restarts, 50);
  EXPECT_TRUE(server.IsQuiescent());
  EXPECT_EQ(metrics.queries_committed + metrics.queries_dropped,
            metrics.queries_submitted);
  EXPECT_EQ(metrics.updates_applied + metrics.updates_invalidated,
            metrics.updates_submitted);
}

TEST(QueueSamplingTest, SamplesRecordedWhileBusy) {
  auto scheduler = MakeScheduler(SchedulerKind::kFifo);
  Database db(8);
  ServerConfig config;
  config.queue_sample_period = Millis(1);
  WebDatabaseServer server(&db, scheduler.get(), config);
  // 10 ms of queued work on distinct items -> ~10 samples.
  for (int i = 0; i < 5; ++i) {
    server.SubmitUpdate(static_cast<ItemId>(i), i, Millis(2));
  }
  server.Run();
  const auto& samples = server.metrics().queue_samples;
  ASSERT_GE(samples.size(), 5u);
  // Depth decreases monotonically as the FIFO drains.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i].updates, samples[i - 1].updates);
    EXPECT_EQ(samples[i].queries, 0);
  }
}

}  // namespace
}  // namespace webdb
