#include "exp/cluster_experiment.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/quts_scheduler.h"
#include "trace/stock_trace_generator.h"

namespace webdb {
namespace {

WebDatabaseCluster::SchedulerFactory QutsFactory() {
  return [] {
    return std::make_unique<QutsScheduler>(QutsScheduler::Options{});
  };
}

TEST(ClusterExperimentTest, RunsTraceThroughCluster) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(41));
  ClusterConfig config;
  config.num_replicas = 2;
  config.routing.policy = RoutingPolicy::kQcAware;
  const ClusterExperimentResult result = RunClusterExperiment(
      trace, QutsFactory(), config, BalancedProfile(QcShape::kStep));
  EXPECT_EQ(result.routing, "qc-aware");
  EXPECT_EQ(result.num_replicas, 2);
  ASSERT_EQ(result.routed.size(), 2u);
  EXPECT_EQ(result.routed[0] + result.routed[1],
            static_cast<int64_t>(trace.queries.size()));
  // Every update runs on every replica.
  EXPECT_LE(result.updates_applied,
            2 * static_cast<int64_t>(trace.updates.size()));
  EXPECT_GT(result.updates_applied, 0);
  EXPECT_GT(result.total_pct, 0.0);
  EXPECT_LE(result.total_pct, 1.0 + 1e-9);
  EXPECT_GT(result.avg_response_ms, 0.0);
}

TEST(ClusterExperimentTest, MoreReplicasNeverEarnLess) {
  StockTraceConfig trace_config = StockTraceConfig::Small(42);
  trace_config.query_rate = 60.0;  // enough load that capacity matters
  trace_config.update_rate_start = 250.0;
  trace_config.update_rate_end = 180.0;
  const Trace trace = GenerateStockTrace(trace_config);
  double prev_pct = -1.0;
  for (int replicas : {1, 2, 4}) {
    ClusterConfig config;
    config.num_replicas = replicas;
    config.routing.policy = RoutingPolicy::kQcAware;
    const ClusterExperimentResult result = RunClusterExperiment(
        trace, QutsFactory(), config, BalancedProfile(QcShape::kStep));
    EXPECT_GE(result.total_pct, prev_pct - 0.02)
        << replicas << " replicas earned less";
    prev_pct = result.total_pct;
  }
}

TEST(ClusterExperimentTest, DeterministicAcrossRuns) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(43));
  ClusterConfig config;
  config.num_replicas = 3;
  config.routing.policy = RoutingPolicy::kRoundRobin;
  const ClusterExperimentResult a = RunClusterExperiment(
      trace, QutsFactory(), config, BalancedProfile(QcShape::kStep));
  const ClusterExperimentResult b = RunClusterExperiment(
      trace, QutsFactory(), config, BalancedProfile(QcShape::kStep));
  EXPECT_DOUBLE_EQ(a.gained, b.gained);
  EXPECT_EQ(a.queries_committed, b.queries_committed);
  EXPECT_EQ(a.routed, b.routed);
}

}  // namespace
}  // namespace webdb
