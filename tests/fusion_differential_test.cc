// Differential proof that shared execution (DESIGN.md §13) is
// profit-neutral-or-better: the same seeded market-open flash crowd runs
// fused and unfused across policies x {1, 2, 4} CPUs, and for every grid
// point
//   * the per-query commit set is identical (with lifetime drops and
//     admission off, both runs must commit every query — fusion may only
//     change *when* a query settles, never *whether*);
//   * fused profit >= unfused profit (members settle no later than they
//     would have run);
//   * fused CPU-busy time <= unfused (a member's service time is charged
//     zero times, the leader's once);
//   * the fused schedule is deterministic — rerunning a grid point lands
//     on the same end-state hash, and the whole grid is pinned in
//     tests/data/golden_fusion.csv.
//
// Update applied/invalidated sets are deliberately NOT compared: newest-wins
// invalidation depends on whether an update reaches the CPU before its
// successor arrives, so those sets legitimately differ between any two
// schedules. The query commit set is the correctness claim.
//
// To regenerate the golden after an intended schedule change:
//   WEBDB_REGEN_GOLDEN=1 ./fusion_differential_test
//       --gtest_filter='*MatchesGoldenSnapshot'

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "exp/overload_scenarios.h"
#include "exp/scheduler_factory.h"
#include "exp/trace_feeder.h"
#include "qc/qc_generator.h"
#include "server/web_database_server.h"
#include "util/csv.h"
#include "util/rng.h"

namespace webdb {
namespace {

constexpr uint64_t kTraceSeed = 2007;
constexpr uint64_t kQcSeed = 99;

// One policy x CPU-count grid point; only QUTS shards past one CPU.
struct GridPoint {
  SchedulerKind kind = SchedulerKind::kQuts;
  int cpus = 1;
};

const std::vector<GridPoint>& Grid() {
  static const std::vector<GridPoint> grid = {
      {SchedulerKind::kFifo, 1},  {SchedulerKind::kUpdateHigh, 1},
      {SchedulerKind::kQueryHigh, 1}, {SchedulerKind::kQuts, 1},
      {SchedulerKind::kQuts, 2},  {SchedulerKind::kQuts, 4},
  };
  return grid;
}

struct RunOutcome {
  std::vector<TxnState> query_states;  // indexed by trace query order
  double profit = 0.0;
  SimDuration cpu_busy = 0;
  uint64_t end_state_hash = 0;
  int64_t committed = 0;
  int64_t fused = 0;
  int64_t groups = 0;
};

// The flash crowd every grid point replays: bench_overload's regime at test
// scale — enough standing load that even the 4-CPU rows queue deeply during
// the burst, which is what gives fusion look-alikes to find.
const Trace& FlashCrowd() {
  static const Trace* trace = [] {
    OverloadScenarioConfig config;
    config.seed = kTraceSeed;
    config.scale = 10.0;
    config.duration = Seconds(2);
    config.num_stocks = 128;
    config.query_rate = 450.0;
    config.update_rate = 60.0;
    return new Trace(
        MakeOverloadTrace(OverloadScenario::kMarketOpen, config));
  }();
  return *trace;
}

RunOutcome RunOnce(const GridPoint& point, bool fusion) {
  const Trace& trace = FlashCrowd();
  SchedulerSpec spec;
  spec.kind = point.kind;
  spec.topology.num_cpus = point.cpus;
  std::unique_ptr<CpuSetScheduler> scheduler = MakeScheduler(spec);

  Database db(trace.num_items);
  ServerConfig config;
  // No lifetime drops and no admission: every query must commit in both
  // runs, which is what makes "identical commit set" a meaningful claim
  // rather than a lucky seed.
  config.lifetime_factor = 0.0;
  config.fusion.enabled = fusion;
  WebDatabaseServer server(&db, scheduler.get(), config);
  server.ReserveCapacity(trace.queries.size(), trace.updates.size());

  QcGenerator generator(BalancedProfile(QcShape::kStep));
  Rng qc_rng(kQcSeed);
  TraceFeeder feeder(&server, &trace, [&](const QueryRecord&) {
    return generator.Next(qc_rng);
  });
  feeder.Start();
  server.Run();
  EXPECT_TRUE(feeder.Done());
  EXPECT_TRUE(server.IsQuiescent());
  server.AuditInvariants();

  RunOutcome outcome;
  for (const Query& query : server.queries()) {
    outcome.query_states.push_back(query.state);
  }
  outcome.profit = server.ledger().qos_gained() + server.ledger().qod_gained();
  outcome.cpu_busy = server.TotalBusyTime();
  outcome.end_state_hash = server.EndStateHash();
  outcome.committed = server.metrics().queries_committed;
  outcome.fused = server.metrics().queries_fused;
  outcome.groups = server.metrics().fusion_groups;
  return outcome;
}

std::string Label(const GridPoint& point) {
  return ToString(point.kind) + "/" + std::to_string(point.cpus) + "cpu";
}

class FusionDifferentialTest : public ::testing::Test {
 protected:
  // The whole grid runs once; every TEST_F reads the shared outcomes.
  static void SetUpTestSuite() {
    unfused_ = new std::vector<RunOutcome>();
    fused_ = new std::vector<RunOutcome>();
    for (const GridPoint& point : Grid()) {
      unfused_->push_back(RunOnce(point, /*fusion=*/false));
      fused_->push_back(RunOnce(point, /*fusion=*/true));
    }
  }

  static void TearDownTestSuite() {
    delete unfused_;
    delete fused_;
    unfused_ = nullptr;
    fused_ = nullptr;
  }

  static std::vector<RunOutcome>* unfused_;
  static std::vector<RunOutcome>* fused_;
};

std::vector<RunOutcome>* FusionDifferentialTest::unfused_ = nullptr;
std::vector<RunOutcome>* FusionDifferentialTest::fused_ = nullptr;

TEST_F(FusionDifferentialTest, FusionActuallyHappens) {
  // The differential claims below are vacuous on a trace where no group
  // ever forms; the burst must produce fusion on every grid point.
  for (size_t i = 0; i < Grid().size(); ++i) {
    EXPECT_GT((*fused_)[i].fused, 0) << Label(Grid()[i]);
    EXPECT_GT((*fused_)[i].groups, 0) << Label(Grid()[i]);
    EXPECT_EQ((*unfused_)[i].fused, 0) << Label(Grid()[i]);
  }
}

TEST_F(FusionDifferentialTest, CommitSetsAreIdentical) {
  for (size_t i = 0; i < Grid().size(); ++i) {
    const RunOutcome& off = (*unfused_)[i];
    const RunOutcome& on = (*fused_)[i];
    ASSERT_EQ(on.query_states.size(), off.query_states.size());
    ASSERT_EQ(on.query_states.size(), FlashCrowd().queries.size());
    for (size_t q = 0; q < on.query_states.size(); ++q) {
      // With drops and admission off the commit set is *every* query, so
      // set identity decomposes into per-query checks with exact blame.
      EXPECT_EQ(off.query_states[q], TxnState::kCommitted)
          << Label(Grid()[i]) << " query " << q;
      EXPECT_EQ(on.query_states[q], TxnState::kCommitted)
          << Label(Grid()[i]) << " query " << q;
    }
    EXPECT_EQ(on.committed, off.committed) << Label(Grid()[i]);
  }
}

TEST_F(FusionDifferentialTest, FusedProfitIsNeutralOrBetter) {
  for (size_t i = 0; i < Grid().size(); ++i) {
    EXPECT_GE((*fused_)[i].profit, (*unfused_)[i].profit) << Label(Grid()[i]);
  }
}

TEST_F(FusionDifferentialTest, FusedCpuBusyNeverExceedsUnfused) {
  for (size_t i = 0; i < Grid().size(); ++i) {
    // SimDuration is integral, so this is exact: members charged zero
    // service time can only shrink the busy total.
    EXPECT_LE((*fused_)[i].cpu_busy, (*unfused_)[i].cpu_busy)
        << Label(Grid()[i]);
    EXPECT_LT((*fused_)[i].cpu_busy, (*unfused_)[i].cpu_busy)
        << Label(Grid()[i]) << ": groups formed but no service time saved";
  }
}

TEST_F(FusionDifferentialTest, RerunIsBitIdentical) {
  // Fusion must not perturb determinism: replaying a grid point reproduces
  // the exact schedule, profit and hash.
  for (size_t i = 0; i < Grid().size(); ++i) {
    const RunOutcome rerun = RunOnce(Grid()[i], /*fusion=*/true);
    EXPECT_EQ(rerun.end_state_hash, (*fused_)[i].end_state_hash)
        << Label(Grid()[i]);
    EXPECT_EQ(rerun.profit, (*fused_)[i].profit) << Label(Grid()[i]);
    EXPECT_EQ(rerun.fused, (*fused_)[i].fused) << Label(Grid()[i]);
  }
}

TEST_F(FusionDifferentialTest, MatchesGoldenSnapshot) {
  const std::string golden_path =
      std::string(WEBDB_TEST_DATA_DIR) + "/golden_fusion.csv";

  auto write = [&](const std::string& path) {
    CsvWriter writer(path);
    writer.WriteRow({"policy", "cpus", "committed", "fused", "groups",
                     "hash_unfused", "hash_fused"});
    char buffer[32];
    for (size_t i = 0; i < Grid().size(); ++i) {
      std::vector<std::string> row;
      row.push_back(ToString(Grid()[i].kind));
      row.push_back(std::to_string(Grid()[i].cpus));
      row.push_back(std::to_string((*fused_)[i].committed));
      row.push_back(std::to_string((*fused_)[i].fused));
      row.push_back(std::to_string((*fused_)[i].groups));
      std::snprintf(buffer, sizeof(buffer), "%016llx",
                    static_cast<unsigned long long>(
                        (*unfused_)[i].end_state_hash));
      row.push_back(buffer);
      std::snprintf(buffer, sizeof(buffer), "%016llx",
                    static_cast<unsigned long long>(
                        (*fused_)[i].end_state_hash));
      row.push_back(buffer);
      writer.WriteRow(row);
    }
    return writer.Close();
  };

  if (std::getenv("WEBDB_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(write(golden_path));
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  const std::string actual_path = ::testing::TempDir() + "fusion.csv";
  ASSERT_TRUE(write(actual_path));

  auto read = [](const std::string& path) {
    CsvReader reader(path);
    EXPECT_TRUE(reader.ok()) << "cannot open " << path;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> fields;
    while (reader.ReadRow(fields)) rows.push_back(fields);
    return rows;
  };
  const auto expected = read(golden_path);
  const auto actual = read(actual_path);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(actual[r], expected[r]) << "row " << r;
  }
}

}  // namespace
}  // namespace webdb
