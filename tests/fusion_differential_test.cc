// Differential proof that shared execution (DESIGN.md §13) is
// profit-neutral-or-better: the same seeded market-open flash crowd runs
// fused and unfused across policies x {1, 2, 4} CPUs, and for every grid
// point
//   * the per-query commit set is identical (with lifetime drops and
//     admission off, both runs must commit every query — fusion may only
//     change *when* a query settles, never *whether*);
//   * fused profit >= unfused profit (members settle no later than they
//     would have run);
//   * fused CPU-busy time <= unfused (a member's service time is charged
//     zero times, the leader's once);
//   * the fused schedule is deterministic — rerunning a grid point lands
//     on the same end-state hash, and the whole grid is pinned in
//     tests/data/golden_fusion.csv.
//
// Update applied/invalidated sets are deliberately NOT compared: newest-wins
// invalidation depends on whether an update reaches the CPU before its
// successor arrives, so those sets legitimately differ between any two
// schedules. The query commit set is the correctness claim.
//
// Round 2 runs the same grid twice more — with the fused-result cache on,
// and with cross-shard rendezvous on — and holds each to the same
// differential bar against the fusion-off baseline. Cache and rendezvous
// hashes are pinned in tests/data/golden_fusion_cache.csv; the round-1
// golden_fusion.csv stays byte-identical because features default off.
//
// To regenerate the goldens after an intended schedule change:
//   WEBDB_REGEN_GOLDEN=1 ./fusion_differential_test
//       --gtest_filter='*GoldenSnapshot'

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "exp/overload_scenarios.h"
#include "exp/scheduler_factory.h"
#include "exp/trace_feeder.h"
#include "qc/qc_generator.h"
#include "server/web_database_server.h"
#include "util/csv.h"
#include "util/rng.h"

namespace webdb {
namespace {

constexpr uint64_t kTraceSeed = 2007;
constexpr uint64_t kQcSeed = 99;

// One policy x CPU-count grid point; only QUTS shards past one CPU.
struct GridPoint {
  SchedulerKind kind = SchedulerKind::kQuts;
  int cpus = 1;
};

const std::vector<GridPoint>& Grid() {
  static const std::vector<GridPoint> grid = {
      {SchedulerKind::kFifo, 1},  {SchedulerKind::kUpdateHigh, 1},
      {SchedulerKind::kQueryHigh, 1}, {SchedulerKind::kQuts, 1},
      {SchedulerKind::kQuts, 2},  {SchedulerKind::kQuts, 4},
  };
  return grid;
}

struct RunOutcome {
  std::vector<TxnState> query_states;  // indexed by trace query order
  double profit = 0.0;
  SimDuration cpu_busy = 0;
  uint64_t end_state_hash = 0;
  int64_t committed = 0;
  int64_t fused = 0;
  int64_t groups = 0;
  int64_t cache_hits = 0;
  int64_t cache_fills = 0;
};

// Which fusion features a run switches on; every mode past kOff keeps the
// round-1 attach-at-dispatch machinery enabled.
enum class Mode { kOff, kFused, kCache, kRendezvous };

FusionConfig FusionFor(Mode mode) {
  FusionConfig fusion;
  fusion.enabled = mode != Mode::kOff;
  fusion.result_cache = mode == Mode::kCache;
  fusion.cross_shard_rendezvous = mode == Mode::kRendezvous;
  return fusion;
}

// The flash crowd every grid point replays: bench_overload's regime at test
// scale — enough standing load that even the 4-CPU rows queue deeply during
// the burst, which is what gives fusion look-alikes to find.
const Trace& FlashCrowd() {
  static const Trace* trace = [] {
    OverloadScenarioConfig config;
    config.seed = kTraceSeed;
    config.scale = 10.0;
    config.duration = Seconds(2);
    config.num_stocks = 128;
    config.query_rate = 450.0;
    config.update_rate = 60.0;
    return new Trace(
        MakeOverloadTrace(OverloadScenario::kMarketOpen, config));
  }();
  return *trace;
}

RunOutcome RunOnce(const GridPoint& point, Mode mode) {
  const Trace& trace = FlashCrowd();
  SchedulerSpec spec;
  spec.kind = point.kind;
  spec.topology.num_cpus = point.cpus;
  std::unique_ptr<CpuSetScheduler> scheduler = MakeScheduler(spec);

  Database db(trace.num_items);
  ServerConfig config;
  // No lifetime drops and no admission: every query must commit in both
  // runs, which is what makes "identical commit set" a meaningful claim
  // rather than a lucky seed.
  config.lifetime_factor = 0.0;
  config.fusion = FusionFor(mode);
  WebDatabaseServer server(&db, scheduler.get(), config);
  server.ReserveCapacity(trace.queries.size(), trace.updates.size());

  QcGenerator generator(BalancedProfile(QcShape::kStep));
  Rng qc_rng(kQcSeed);
  TraceFeeder feeder(&server, &trace, [&](const QueryRecord&) {
    return generator.Next(qc_rng);
  });
  feeder.Start();
  server.Run();
  EXPECT_TRUE(feeder.Done());
  EXPECT_TRUE(server.IsQuiescent());
  server.AuditInvariants();

  RunOutcome outcome;
  for (const Query& query : server.queries()) {
    outcome.query_states.push_back(query.state);
  }
  outcome.profit = server.ledger().qos_gained() + server.ledger().qod_gained();
  outcome.cpu_busy = server.TotalBusyTime();
  outcome.end_state_hash = server.EndStateHash();
  outcome.committed = server.metrics().queries_committed;
  outcome.fused = server.metrics().queries_fused;
  outcome.groups = server.metrics().fusion_groups;
  outcome.cache_hits = server.metrics().queries_cache_hits;
  outcome.cache_fills = server.metrics().cache_fills;
  return outcome;
}

std::string Label(const GridPoint& point) {
  return ToString(point.kind) + "/" + std::to_string(point.cpus) + "cpu";
}

class FusionDifferentialTest : public ::testing::Test {
 protected:
  // The whole grid runs once per mode; every TEST_F reads the shared
  // outcomes.
  static void SetUpTestSuite() {
    unfused_ = new std::vector<RunOutcome>();
    fused_ = new std::vector<RunOutcome>();
    cached_ = new std::vector<RunOutcome>();
    rendezvous_ = new std::vector<RunOutcome>();
    for (const GridPoint& point : Grid()) {
      unfused_->push_back(RunOnce(point, Mode::kOff));
      fused_->push_back(RunOnce(point, Mode::kFused));
      cached_->push_back(RunOnce(point, Mode::kCache));
      rendezvous_->push_back(RunOnce(point, Mode::kRendezvous));
    }
  }

  static void TearDownTestSuite() {
    delete unfused_;
    delete fused_;
    delete cached_;
    delete rendezvous_;
    unfused_ = nullptr;
    fused_ = nullptr;
    cached_ = nullptr;
    rendezvous_ = nullptr;
  }

  // Identical-commit-set + profit + CPU-busy differential of one feature
  // mode against the fusion-off baseline; shared by every mode's test.
  static void CheckDifferential(const std::vector<RunOutcome>& on) {
    for (size_t i = 0; i < Grid().size(); ++i) {
      const RunOutcome& off = (*unfused_)[i];
      ASSERT_EQ(on[i].query_states.size(), off.query_states.size());
      for (size_t q = 0; q < on[i].query_states.size(); ++q) {
        ASSERT_EQ(on[i].query_states[q], TxnState::kCommitted)
            << Label(Grid()[i]) << " query " << q;
      }
      EXPECT_EQ(on[i].committed, off.committed) << Label(Grid()[i]);
      EXPECT_GE(on[i].profit, off.profit) << Label(Grid()[i]);
      EXPECT_LE(on[i].cpu_busy, off.cpu_busy) << Label(Grid()[i]);
    }
  }

  static std::vector<RunOutcome>* unfused_;
  static std::vector<RunOutcome>* fused_;
  static std::vector<RunOutcome>* cached_;
  static std::vector<RunOutcome>* rendezvous_;
};

std::vector<RunOutcome>* FusionDifferentialTest::unfused_ = nullptr;
std::vector<RunOutcome>* FusionDifferentialTest::fused_ = nullptr;
std::vector<RunOutcome>* FusionDifferentialTest::cached_ = nullptr;
std::vector<RunOutcome>* FusionDifferentialTest::rendezvous_ = nullptr;

TEST_F(FusionDifferentialTest, FusionActuallyHappens) {
  // The differential claims below are vacuous on a trace where no group
  // ever forms; the burst must produce fusion on every grid point.
  for (size_t i = 0; i < Grid().size(); ++i) {
    EXPECT_GT((*fused_)[i].fused, 0) << Label(Grid()[i]);
    EXPECT_GT((*fused_)[i].groups, 0) << Label(Grid()[i]);
    EXPECT_EQ((*unfused_)[i].fused, 0) << Label(Grid()[i]);
  }
}

TEST_F(FusionDifferentialTest, CommitSetsAreIdentical) {
  for (size_t i = 0; i < Grid().size(); ++i) {
    const RunOutcome& off = (*unfused_)[i];
    const RunOutcome& on = (*fused_)[i];
    ASSERT_EQ(on.query_states.size(), off.query_states.size());
    ASSERT_EQ(on.query_states.size(), FlashCrowd().queries.size());
    for (size_t q = 0; q < on.query_states.size(); ++q) {
      // With drops and admission off the commit set is *every* query, so
      // set identity decomposes into per-query checks with exact blame.
      EXPECT_EQ(off.query_states[q], TxnState::kCommitted)
          << Label(Grid()[i]) << " query " << q;
      EXPECT_EQ(on.query_states[q], TxnState::kCommitted)
          << Label(Grid()[i]) << " query " << q;
    }
    EXPECT_EQ(on.committed, off.committed) << Label(Grid()[i]);
  }
}

TEST_F(FusionDifferentialTest, FusedProfitIsNeutralOrBetter) {
  for (size_t i = 0; i < Grid().size(); ++i) {
    EXPECT_GE((*fused_)[i].profit, (*unfused_)[i].profit) << Label(Grid()[i]);
  }
}

TEST_F(FusionDifferentialTest, FusedCpuBusyNeverExceedsUnfused) {
  for (size_t i = 0; i < Grid().size(); ++i) {
    // SimDuration is integral, so this is exact: members charged zero
    // service time can only shrink the busy total.
    EXPECT_LE((*fused_)[i].cpu_busy, (*unfused_)[i].cpu_busy)
        << Label(Grid()[i]);
    EXPECT_LT((*fused_)[i].cpu_busy, (*unfused_)[i].cpu_busy)
        << Label(Grid()[i]) << ": groups formed but no service time saved";
  }
}

TEST_F(FusionDifferentialTest, RerunIsBitIdentical) {
  // Fusion must not perturb determinism: replaying a grid point reproduces
  // the exact schedule, profit and hash.
  for (size_t i = 0; i < Grid().size(); ++i) {
    const RunOutcome rerun = RunOnce(Grid()[i], Mode::kFused);
    EXPECT_EQ(rerun.end_state_hash, (*fused_)[i].end_state_hash)
        << Label(Grid()[i]);
    EXPECT_EQ(rerun.profit, (*fused_)[i].profit) << Label(Grid()[i]);
    EXPECT_EQ(rerun.fused, (*fused_)[i].fused) << Label(Grid()[i]);
  }
}

TEST_F(FusionDifferentialTest, CacheGridHoldsTheDifferentialBar) {
  // Cache on must still commit every query, never lose profit and never
  // burn more CPU than the fusion-off baseline: a hit is a zero-cost
  // commit, and the honesty rule settles its QoD against the cached age.
  CheckDifferential(*cached_);
}

TEST_F(FusionDifferentialTest, CacheActuallyHits) {
  // The flash crowd repeats hot symbols well inside the 50 ms TTL, so a
  // vacuously-passing differential (zero hits) is itself a bug.
  for (size_t i = 0; i < Grid().size(); ++i) {
    EXPECT_GT((*cached_)[i].cache_hits, 0) << Label(Grid()[i]);
    EXPECT_GT((*cached_)[i].cache_fills, 0) << Label(Grid()[i]);
    EXPECT_EQ((*fused_)[i].cache_hits, 0) << Label(Grid()[i]);
  }
}

TEST_F(FusionDifferentialTest, CacheHitsShrinkTheBusyTotal) {
  // Every hit skips a scan outright, so cache-on busy time must come in
  // strictly under plain fusion on every grid point.
  for (size_t i = 0; i < Grid().size(); ++i) {
    EXPECT_LT((*cached_)[i].cpu_busy, (*fused_)[i].cpu_busy)
        << Label(Grid()[i]);
  }
}

TEST_F(FusionDifferentialTest, RendezvousGridHoldsTheDifferentialBar) {
  CheckDifferential(*rendezvous_);
}

TEST_F(FusionDifferentialTest, RendezvousFusesCrossShardLookAlikes) {
  for (size_t i = 0; i < Grid().size(); ++i) {
    const GridPoint& point = Grid()[i];
    if (point.kind == SchedulerKind::kQuts && point.cpus > 1) {
      // Sharded points gain fusion: multi-shard look-alikes that round 1
      // left unfusable (domain -1) now meet in a rendezvous domain.
      EXPECT_GT((*rendezvous_)[i].fused, (*fused_)[i].fused) << Label(point);
    } else {
      // Single-CPU points have no cross-shard sets; rendezvous must be a
      // pure no-op there, down to the schedule hash.
      EXPECT_EQ((*rendezvous_)[i].fused, (*fused_)[i].fused) << Label(point);
      EXPECT_EQ((*rendezvous_)[i].end_state_hash, (*fused_)[i].end_state_hash)
          << Label(point);
    }
  }
}

TEST_F(FusionDifferentialTest, CacheAndRendezvousRerunsAreBitIdentical) {
  for (size_t i = 0; i < Grid().size(); ++i) {
    const RunOutcome cache_rerun = RunOnce(Grid()[i], Mode::kCache);
    EXPECT_EQ(cache_rerun.end_state_hash, (*cached_)[i].end_state_hash)
        << Label(Grid()[i]);
    EXPECT_EQ(cache_rerun.cache_hits, (*cached_)[i].cache_hits)
        << Label(Grid()[i]);
    const RunOutcome rdv_rerun = RunOnce(Grid()[i], Mode::kRendezvous);
    EXPECT_EQ(rdv_rerun.end_state_hash, (*rendezvous_)[i].end_state_hash)
        << Label(Grid()[i]);
    EXPECT_EQ(rdv_rerun.fused, (*rendezvous_)[i].fused) << Label(Grid()[i]);
  }
}

TEST_F(FusionDifferentialTest, MatchesCacheGoldenSnapshot) {
  const std::string golden_path =
      std::string(WEBDB_TEST_DATA_DIR) + "/golden_fusion_cache.csv";

  auto write = [&](const std::string& path) {
    CsvWriter writer(path);
    writer.WriteRow({"policy", "cpus", "cache_hits", "cache_fills",
                     "rendezvous_fused", "hash_cache", "hash_rendezvous"});
    char buffer[32];
    for (size_t i = 0; i < Grid().size(); ++i) {
      std::vector<std::string> row;
      row.push_back(ToString(Grid()[i].kind));
      row.push_back(std::to_string(Grid()[i].cpus));
      row.push_back(std::to_string((*cached_)[i].cache_hits));
      row.push_back(std::to_string((*cached_)[i].cache_fills));
      row.push_back(std::to_string((*rendezvous_)[i].fused));
      std::snprintf(buffer, sizeof(buffer), "%016llx",
                    static_cast<unsigned long long>(
                        (*cached_)[i].end_state_hash));
      row.push_back(buffer);
      std::snprintf(buffer, sizeof(buffer), "%016llx",
                    static_cast<unsigned long long>(
                        (*rendezvous_)[i].end_state_hash));
      row.push_back(buffer);
      writer.WriteRow(row);
    }
    return writer.Close();
  };

  if (std::getenv("WEBDB_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(write(golden_path));
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  const std::string actual_path = ::testing::TempDir() + "fusion_cache.csv";
  ASSERT_TRUE(write(actual_path));

  auto read = [](const std::string& path) {
    CsvReader reader(path);
    EXPECT_TRUE(reader.ok()) << "cannot open " << path;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> fields;
    while (reader.ReadRow(fields)) rows.push_back(fields);
    return rows;
  };
  const auto expected = read(golden_path);
  const auto actual = read(actual_path);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(actual[r], expected[r]) << "row " << r;
  }
}

TEST_F(FusionDifferentialTest, MatchesGoldenSnapshot) {
  const std::string golden_path =
      std::string(WEBDB_TEST_DATA_DIR) + "/golden_fusion.csv";

  auto write = [&](const std::string& path) {
    CsvWriter writer(path);
    writer.WriteRow({"policy", "cpus", "committed", "fused", "groups",
                     "hash_unfused", "hash_fused"});
    char buffer[32];
    for (size_t i = 0; i < Grid().size(); ++i) {
      std::vector<std::string> row;
      row.push_back(ToString(Grid()[i].kind));
      row.push_back(std::to_string(Grid()[i].cpus));
      row.push_back(std::to_string((*fused_)[i].committed));
      row.push_back(std::to_string((*fused_)[i].fused));
      row.push_back(std::to_string((*fused_)[i].groups));
      std::snprintf(buffer, sizeof(buffer), "%016llx",
                    static_cast<unsigned long long>(
                        (*unfused_)[i].end_state_hash));
      row.push_back(buffer);
      std::snprintf(buffer, sizeof(buffer), "%016llx",
                    static_cast<unsigned long long>(
                        (*fused_)[i].end_state_hash));
      row.push_back(buffer);
      writer.WriteRow(row);
    }
    return writer.Close();
  };

  if (std::getenv("WEBDB_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(write(golden_path));
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  const std::string actual_path = ::testing::TempDir() + "fusion.csv";
  ASSERT_TRUE(write(actual_path));

  auto read = [](const std::string& path) {
    CsvReader reader(path);
    EXPECT_TRUE(reader.ok()) << "cannot open " << path;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> fields;
    while (reader.ReadRow(fields)) rows.push_back(fields);
    return rows;
  };
  const auto expected = read(golden_path);
  const auto actual = read(actual_path);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(actual[r], expected[r]) << "row " << r;
  }
}

}  // namespace
}  // namespace webdb
