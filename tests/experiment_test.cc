#include "exp/experiment.h"

#include <gtest/gtest.h>

#include "exp/scheduler_factory.h"
#include "trace/stock_trace_generator.h"

namespace webdb {
namespace {

TEST(SchedulerFactoryTest, NamesRoundTrip) {
  for (SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kUpdateHigh,
        SchedulerKind::kQueryHigh, SchedulerKind::kFifoUpdateHigh,
        SchedulerKind::kFifoQueryHigh, SchedulerKind::kQuts}) {
    ASSERT_TRUE(SchedulerKindFromName(ToString(kind)).has_value());
    EXPECT_EQ(*SchedulerKindFromName(ToString(kind)), kind);
    EXPECT_NE(MakeScheduler(kind), nullptr);
  }
}

TEST(SchedulerFactoryTest, UnknownNameIsNullopt) {
  EXPECT_EQ(SchedulerKindFromName("no-such-policy"), std::nullopt);
  EXPECT_EQ(SchedulerKindFromName(""), std::nullopt);
  EXPECT_EQ(SchedulerKindFromName("FIFO"), std::nullopt);  // case-sensitive
}

TEST(SchedulerFactoryTest, ValidSchedulerNamesCoversEveryKind) {
  const std::vector<std::string> names = ValidSchedulerNames();
  ASSERT_EQ(names.size(), 6u);
  for (const std::string& name : names) {
    EXPECT_TRUE(SchedulerKindFromName(name).has_value()) << name;
  }
}

TEST(SchedulerFactoryTest, PaperSchedulersAreTheFourCompared) {
  const auto kinds = PaperSchedulers();
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], SchedulerKind::kFifo);
  EXPECT_EQ(kinds[3], SchedulerKind::kQuts);
}

TEST(ExperimentTest, FillsResultFields) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(21));
  auto scheduler = MakeScheduler(SchedulerKind::kQuts);
  ExperimentOptions options;
  options.qc = BalancedProfile(QcShape::kStep);
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);
  EXPECT_EQ(result.scheduler, "QUTS");
  EXPECT_GT(result.queries_committed, 0);
  EXPECT_GT(result.updates_applied, 0);
  EXPECT_GT(result.total_pct, 0.0);
  EXPECT_NEAR(result.qos_max_pct + result.qod_max_pct, 1.0, 1e-9);
  EXPECT_FALSE(result.qos_gained_per_s.empty());
  EXPECT_FALSE(result.rho_series.empty());
}

TEST(ExperimentTest, RegistrySnapshotMirrorsCountersAndRho) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(21));
  auto scheduler = MakeScheduler(SchedulerKind::kQuts);
  ExperimentOptions options;
  options.qc = BalancedProfile(QcShape::kStep);
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);

  const double* committed = result.registry.Find("server.queries.committed");
  ASSERT_NE(committed, nullptr);
  EXPECT_EQ(static_cast<int64_t>(*committed), result.queries_committed);
  const double* applied = result.registry.Find("server.updates.applied");
  ASSERT_NE(applied, nullptr);
  EXPECT_EQ(static_cast<int64_t>(*applied), result.updates_applied);

  // QUTS exposes its final rho, matching the recorded series.
  const double* rho = result.registry.Find("scheduler.quts.rho");
  ASSERT_NE(rho, nullptr);
  ASSERT_FALSE(result.rho_series.empty());
  EXPECT_DOUBLE_EQ(*rho, result.rho_series.back().second);
}

TEST(ExperimentTest, PeriodicRegistrySeriesTracksTheRun) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(26));
  auto scheduler = MakeScheduler(SchedulerKind::kQuts);
  ExperimentOptions options;
  options.qc = BalancedProfile(QcShape::kStep);
  options.server.metric_snapshot_period = Seconds(1);
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);
  ASSERT_GT(result.registry_series.size(), 1u);
  for (size_t i = 1; i < result.registry_series.size(); ++i) {
    EXPECT_GT(result.registry_series[i].time,
              result.registry_series[i - 1].time);
  }
  // Every periodic snapshot carries the scheduler's gauges.
  EXPECT_NE(result.registry_series.front().Find("scheduler.quts.rho"),
            nullptr);
}

TEST(ExperimentTest, NonQutsSchedulerHasNoRhoSeries) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(22));
  auto scheduler = MakeScheduler(SchedulerKind::kFifo);
  ExperimentOptions options;
  options.qc = BalancedProfile(QcShape::kStep);
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);
  EXPECT_TRUE(result.rho_series.empty());
  EXPECT_EQ(result.scheduler, "FIFO");
}

TEST(ExperimentTest, ZeroContractsModeEarnsNothing) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(23));
  auto scheduler = MakeScheduler(SchedulerKind::kFifo);
  ExperimentOptions options;
  options.qc = ZeroContracts{};
  options.server.lifetime_factor = 0.0;
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);
  EXPECT_DOUBLE_EQ(result.qos_max, 0.0);
  EXPECT_DOUBLE_EQ(result.qos_gained, 0.0);
  EXPECT_EQ(result.queries_committed,
            static_cast<int64_t>(trace.queries.size()));
  EXPECT_GT(result.avg_response_ms, 0.0);
}

TEST(ExperimentTest, ScheduleModeUsesTimeVaryingProfiles) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(24));
  const auto schedule = TimeVaryingQcGenerator::AlternatingPreference(
      trace.EndTime() + 1, 2, 5.0, QcShape::kStep);
  auto scheduler = MakeScheduler(SchedulerKind::kQuts);
  ExperimentOptions options;
  options.qc = QcSchedule{&schedule};
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);
  EXPECT_GT(result.total_pct, 0.0);
  // First half QoD-heavy, second half QoS-heavy: the per-second max series
  // must reflect the flip.
  const size_t half = result.qos_max_per_s.size() / 2;
  double qos_head = 0.0, qos_tail = 0.0, qod_head = 0.0, qod_tail = 0.0;
  for (size_t i = 0; i < half; ++i) {
    qos_head += result.qos_max_per_s[i];
    qod_head += result.qod_max_per_s[i];
  }
  for (size_t i = half; i < result.qos_max_per_s.size(); ++i) {
    qos_tail += result.qos_max_per_s[i];
    qod_tail += result.qod_max_per_s[i];
  }
  EXPECT_GT(qod_head, qos_head);
  EXPECT_GT(qos_tail, qod_tail);
}

TEST(ExperimentDeathTest, ScheduleSourceRequiresAGenerator) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(25));
  auto scheduler = MakeScheduler(SchedulerKind::kFifo);
  ExperimentOptions options;
  options.qc = QcSchedule{};  // null generator
  EXPECT_DEATH(RunExperiment(trace, scheduler.get(), options), "");
}

}  // namespace
}  // namespace webdb
