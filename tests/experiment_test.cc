#include "exp/experiment.h"

#include <gtest/gtest.h>

#include "exp/scheduler_factory.h"
#include "trace/stock_trace_generator.h"

namespace webdb {
namespace {

TEST(SchedulerFactoryTest, NamesRoundTrip) {
  for (SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kUpdateHigh,
        SchedulerKind::kQueryHigh, SchedulerKind::kFifoUpdateHigh,
        SchedulerKind::kFifoQueryHigh, SchedulerKind::kQuts}) {
    EXPECT_EQ(SchedulerKindFromName(ToString(kind)), kind);
    EXPECT_NE(MakeScheduler(kind), nullptr);
  }
}

TEST(SchedulerFactoryTest, PaperSchedulersAreTheFourCompared) {
  const auto kinds = PaperSchedulers();
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], SchedulerKind::kFifo);
  EXPECT_EQ(kinds[3], SchedulerKind::kQuts);
}

TEST(ExperimentTest, FillsResultFields) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(21));
  auto scheduler = MakeScheduler(SchedulerKind::kQuts);
  ExperimentOptions options;
  options.profile = BalancedProfile(QcShape::kStep);
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);
  EXPECT_EQ(result.scheduler, "QUTS");
  EXPECT_GT(result.queries_committed, 0);
  EXPECT_GT(result.updates_applied, 0);
  EXPECT_GT(result.total_pct, 0.0);
  EXPECT_NEAR(result.qos_max_pct + result.qod_max_pct, 1.0, 1e-9);
  EXPECT_FALSE(result.qos_gained_per_s.empty());
  EXPECT_FALSE(result.rho_series.empty());
}

TEST(ExperimentTest, NonQutsSchedulerHasNoRhoSeries) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(22));
  auto scheduler = MakeScheduler(SchedulerKind::kFifo);
  ExperimentOptions options;
  options.profile = BalancedProfile(QcShape::kStep);
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);
  EXPECT_TRUE(result.rho_series.empty());
  EXPECT_EQ(result.scheduler, "FIFO");
}

TEST(ExperimentTest, ZeroContractsModeEarnsNothing) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(23));
  auto scheduler = MakeScheduler(SchedulerKind::kFifo);
  ExperimentOptions options;
  options.zero_contracts = true;
  options.server.lifetime_factor = 0.0;
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);
  EXPECT_DOUBLE_EQ(result.qos_max, 0.0);
  EXPECT_DOUBLE_EQ(result.qos_gained, 0.0);
  EXPECT_EQ(result.queries_committed,
            static_cast<int64_t>(trace.queries.size()));
  EXPECT_GT(result.avg_response_ms, 0.0);
}

TEST(ExperimentTest, ScheduleModeUsesTimeVaryingProfiles) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(24));
  const auto schedule = TimeVaryingQcGenerator::AlternatingPreference(
      trace.EndTime() + 1, 2, 5.0, QcShape::kStep);
  auto scheduler = MakeScheduler(SchedulerKind::kQuts);
  ExperimentOptions options;
  options.schedule = &schedule;
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);
  EXPECT_GT(result.total_pct, 0.0);
  // First half QoD-heavy, second half QoS-heavy: the per-second max series
  // must reflect the flip.
  const size_t half = result.qos_max_per_s.size() / 2;
  double qos_head = 0.0, qos_tail = 0.0, qod_head = 0.0, qod_tail = 0.0;
  for (size_t i = 0; i < half; ++i) {
    qos_head += result.qos_max_per_s[i];
    qod_head += result.qod_max_per_s[i];
  }
  for (size_t i = half; i < result.qos_max_per_s.size(); ++i) {
    qos_tail += result.qos_max_per_s[i];
    qod_tail += result.qod_max_per_s[i];
  }
  EXPECT_GT(qod_head, qos_head);
  EXPECT_GT(qos_tail, qod_tail);
}

TEST(ExperimentDeathTest, RequiresAQcSource) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(25));
  auto scheduler = MakeScheduler(SchedulerKind::kFifo);
  ExperimentOptions options;  // no source configured
  EXPECT_DEATH(RunExperiment(trace, scheduler.get(), options), "");
}

}  // namespace
}  // namespace webdb
