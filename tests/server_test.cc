#include "server/web_database_server.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/quts_scheduler.h"
#include "sched/dual_queue_scheduler.h"
#include "sched/fifo_scheduler.h"

namespace webdb {
namespace {

QualityContract StepQc(double qos = 10.0, double qod = 20.0,
                       SimDuration rt_max = Millis(50), double uu_max = 1.0) {
  return QualityContract::Make(QcShape::kStep, qos, rt_max, qod, uu_max);
}

TEST(ServerTest, SingleQueryCommitsWithFullProfit) {
  Database db(2);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  Query* query = server.SubmitQuery(QueryType::kLookup, {0}, StepQc(),
                                    Millis(5));
  server.Run();
  EXPECT_EQ(query->state, TxnState::kCommitted);
  EXPECT_EQ(query->ResponseTime(), Millis(5));
  EXPECT_DOUBLE_EQ(query->staleness, 0.0);
  EXPECT_DOUBLE_EQ(query->profit.qos, 10.0);
  EXPECT_DOUBLE_EQ(query->profit.qod, 20.0);
  EXPECT_DOUBLE_EQ(server.ledger().TotalPct(), 1.0);
  EXPECT_EQ(server.metrics().queries_committed, 1);
}

TEST(ServerTest, SingleUpdateApplies) {
  Database db(2);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  Update* update = server.SubmitUpdate(1, 42.5, Millis(2));
  server.Run();
  EXPECT_EQ(update->state, TxnState::kCommitted);
  EXPECT_DOUBLE_EQ(db.Item(1).value, 42.5);
  EXPECT_TRUE(db.Item(1).IsFresh());
  EXPECT_EQ(server.metrics().updates_applied, 1);
  EXPECT_EQ(server.Now(), Millis(2));
}

TEST(ServerTest, QueryHighSeesStaleData) {
  Database db(2);
  auto sched = MakeQueryHigh();
  WebDatabaseServer server(&db, sched.get());
  server.SubmitUpdate(0, 1.0, Millis(2));
  // Update begins executing immediately (CPU idle). A query arriving right
  // after preempts it under QH and reads the item with 1 unapplied update.
  Query* query = nullptr;
  server.sim().ScheduleAt(Micros(100), [&] {
    query = server.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(5));
  });
  server.Run();
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(query->state, TxnState::kCommitted);
  EXPECT_DOUBLE_EQ(query->staleness, 1.0);
  EXPECT_DOUBLE_EQ(query->profit.qos, 10.0);
  EXPECT_DOUBLE_EQ(query->profit.qod, 0.0);  // uu_max = 1: no staleness paid
}

TEST(ServerTest, UpdateHighGivesFreshReads) {
  Database db(2);
  auto sched = MakeUpdateHigh();
  WebDatabaseServer server(&db, sched.get());
  Query* query =
      server.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(5));
  server.sim().ScheduleAt(Micros(100), [&] {
    server.SubmitUpdate(0, 1.0, Millis(2));
  });
  server.Run();
  EXPECT_EQ(query->state, TxnState::kCommitted);
  // The update preempted and (conflicting) restarted the query; at commit
  // the data is fresh.
  EXPECT_DOUBLE_EQ(query->staleness, 0.0);
  EXPECT_DOUBLE_EQ(query->profit.qod, 20.0);
  EXPECT_EQ(server.metrics().query_restarts, 1);
  EXPECT_GE(server.metrics().preemptions, 1);
}

TEST(ServerTest, PreemptResumeWithoutConflictKeepsProgress) {
  Database db(2);
  auto sched = MakeUpdateHigh();
  WebDatabaseServer server(&db, sched.get());
  // Query reads item 0; update writes item 1: no data conflict.
  Query* query =
      server.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(5));
  server.sim().ScheduleAt(Millis(2), [&] {
    server.SubmitUpdate(1, 1.0, Millis(3));
  });
  server.Run();
  EXPECT_EQ(query->state, TxnState::kCommitted);
  EXPECT_EQ(server.metrics().query_restarts, 0);
  EXPECT_EQ(server.metrics().preemptions, 1);
  // 2ms run + 3ms update + 3ms remaining = commits at 8ms.
  EXPECT_EQ(query->commit_time, Millis(8));
}

TEST(ServerTest, ConflictingUpdateRestartsPreemptedQuery) {
  Database db(2);
  auto sched = MakeUpdateHigh();
  WebDatabaseServer server(&db, sched.get());
  Query* query =
      server.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(5));
  server.sim().ScheduleAt(Millis(2), [&] {
    server.SubmitUpdate(0, 1.0, Millis(3));
  });
  server.Run();
  EXPECT_EQ(query->state, TxnState::kCommitted);
  EXPECT_EQ(server.metrics().query_restarts, 1);
  // 2ms wasted + 3ms update + full 5ms re-execution = commits at 10ms.
  EXPECT_EQ(query->commit_time, Millis(10));
}

TEST(ServerTest, NewerUpdateAbortsRunningOlderOne) {
  Database db(2);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  Update* first = server.SubmitUpdate(0, 1.0, Millis(5));  // starts running
  Update* second = nullptr;
  server.sim().ScheduleAt(Millis(1), [&] {
    second = server.SubmitUpdate(0, 2.0, Millis(2));
  });
  server.Run();
  EXPECT_EQ(first->state, TxnState::kInvalidated);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->state, TxnState::kCommitted);
  EXPECT_DOUBLE_EQ(db.Item(0).value, 2.0);
  EXPECT_TRUE(db.Item(0).IsFresh());
  EXPECT_EQ(server.metrics().updates_invalidated, 1);
  EXPECT_EQ(server.metrics().updates_applied, 1);
}

TEST(ServerTest, NewerUpdateInvalidatesQueuedOlderOne) {
  Database db(2);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  // A long query keeps the CPU busy (FIFO never preempts), so both updates
  // queue up and the register drops the older one.
  server.SubmitQuery(QueryType::kMovingAverage, {1}, StepQc(), Millis(20));
  Update* first = nullptr;
  Update* second = nullptr;
  server.sim().ScheduleAt(Millis(1),
                          [&] { first = server.SubmitUpdate(0, 1.0, Millis(2)); });
  server.sim().ScheduleAt(Millis(2),
                          [&] { second = server.SubmitUpdate(0, 2.0, Millis(2)); });
  server.Run();
  EXPECT_EQ(first->state, TxnState::kInvalidated);
  EXPECT_EQ(second->state, TxnState::kCommitted);
  EXPECT_DOUBLE_EQ(db.Item(0).value, 2.0);
  // The invalidated update never ran: only one update's work was spent.
  EXPECT_EQ(server.metrics().updates_applied, 1);
}

TEST(ServerTest, QueuedQueryDroppedAtLifetimeDeadline) {
  Database db(2);
  FifoScheduler sched;
  ServerConfig config;
  config.lifetime_factor = 0.2;       // 0.2 * 50ms = 10ms
  config.min_lifetime = Millis(10);
  WebDatabaseServer server(&db, &sched, config);
  // Block the CPU for 30ms, past the query's 10ms lifetime.
  server.SubmitUpdate(0, 1.0, Millis(30));
  Query* query = nullptr;
  server.sim().ScheduleAt(Millis(1), [&] {
    query = server.SubmitQuery(QueryType::kLookup, {1}, StepQc(), Millis(5));
  });
  server.Run();
  EXPECT_EQ(query->state, TxnState::kDropped);
  EXPECT_EQ(server.metrics().queries_dropped, 1);
  EXPECT_EQ(server.metrics().queries_committed, 0);
  EXPECT_DOUBLE_EQ(server.ledger().total_gained(), 0.0);
  // The dropped query still counts in the submitted maximum.
  EXPECT_DOUBLE_EQ(server.ledger().total_max(), 30.0);
}

TEST(ServerTest, RunningQueryPastDeadlineCommitsWithZeroProfit) {
  Database db(2);
  FifoScheduler sched;
  ServerConfig config;
  config.lifetime_factor = 0.2;
  config.min_lifetime = Millis(10);
  WebDatabaseServer server(&db, &sched, config);
  Query* query =
      server.SubmitQuery(QueryType::kLookup, {0}, StepQc(), Millis(30));
  server.Run();
  EXPECT_EQ(query->state, TxnState::kCommitted);
  EXPECT_EQ(server.metrics().queries_expired, 1);
  EXPECT_DOUBLE_EQ(query->profit.Total(), 0.0);
}

TEST(ServerTest, LifetimeDisabledNeverDrops) {
  Database db(2);
  FifoScheduler sched;
  ServerConfig config;
  config.lifetime_factor = 0.0;
  WebDatabaseServer server(&db, &sched, config);
  server.SubmitUpdate(0, 1.0, Seconds(2));
  Query* query = nullptr;
  server.sim().ScheduleAt(Millis(1), [&] {
    query = server.SubmitQuery(QueryType::kLookup, {1}, StepQc(), Millis(5));
  });
  server.Run();
  EXPECT_EQ(query->state, TxnState::kCommitted);
  EXPECT_EQ(server.metrics().queries_dropped, 0);
}

TEST(ServerTest, MultiItemQueryStalenessUsesMaxCombiner) {
  Database db(3);
  auto sched = MakeQueryHigh();
  // The raw-arrivals metric exposes the full combiner math (the default
  // live-update metric saturates at 1 per item).
  ServerConfig config;
  config.staleness_metric = StalenessMetric::kUnappliedArrivals;
  WebDatabaseServer server(&db, sched.get(), config);
  server.SubmitUpdate(0, 1.0, Millis(2));
  server.sim().ScheduleAt(Micros(10), [&] {
    server.SubmitUpdate(0, 2.0, Millis(2));  // item 0 now 2 unapplied
  });
  Query* query = nullptr;
  server.sim().ScheduleAt(Micros(50), [&] {
    query = server.SubmitQuery(QueryType::kComparison, {0, 1, 2}, StepQc(),
                               Millis(5));
  });
  server.Run();
  ASSERT_NE(query, nullptr);
  EXPECT_DOUBLE_EQ(query->staleness, 2.0);
}

TEST(ServerTest, CpuUtilizationReflectsBusyTime) {
  Database db(1);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  server.SubmitUpdate(0, 1.0, Millis(4));
  server.Run();
  server.sim().RunUntil(Millis(8));
  EXPECT_NEAR(server.CpuUtilization(), 0.5, 1e-9);
}

TEST(ServerTest, QutsEndToEndSmallMix) {
  Database db(4);
  QutsScheduler::Options options;
  options.atom_time = Millis(1);
  options.adaptation_period = Millis(10);
  QutsScheduler sched(options);
  WebDatabaseServer server(&db, &sched);
  for (int i = 0; i < 20; ++i) {
    server.sim().ScheduleAt(Millis(i), [&server, i] {
      server.SubmitQuery(QueryType::kLookup, {i % 4}, StepQc(), Millis(3));
      server.SubmitUpdate((i + 1) % 4, i, Millis(1));
    });
  }
  server.Run();
  EXPECT_EQ(server.metrics().queries_committed +
                server.metrics().queries_dropped,
            20);
  EXPECT_EQ(server.metrics().updates_applied +
                server.metrics().updates_invalidated,
            20);
  EXPECT_GT(server.ledger().total_gained(), 0.0);
  EXPECT_LE(server.ledger().total_gained(), server.ledger().total_max());
}

TEST(ServerDeathTest, InvalidSubmissionsAbort) {
  Database db(1);
  FifoScheduler sched;
  WebDatabaseServer server(&db, &sched);
  EXPECT_DEATH(server.SubmitQuery(QueryType::kLookup, {5}, StepQc(),
                                  Millis(5)),
               "");
  EXPECT_DEATH(server.SubmitUpdate(0, 1.0, 0), "");
}

}  // namespace
}  // namespace webdb
