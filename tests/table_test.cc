#include "util/table.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(AsciiTableTest, RendersHeadersAndRows) {
  AsciiTable table({"policy", "profit"});
  table.AddRow({"QUTS", "0.95"});
  table.AddRow({"FIFO", "0.40"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("policy"), std::string::npos);
  EXPECT_NE(out.find("QUTS"), std::string::npos);
  EXPECT_NE(out.find("0.40"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiTableTest, ColumnsAlignToWidestCell) {
  AsciiTable table({"x"});
  table.AddRow({"aaaaaaaaaa"});
  const std::string out = table.Render();
  // The separator must span the widest cell plus padding.
  EXPECT_NE(out.find("+------------+"), std::string::npos);
}

TEST(AsciiTableTest, NumFormatting) {
  EXPECT_EQ(AsciiTable::Num(1.23456, 2), "1.23");
  EXPECT_EQ(AsciiTable::Num(1.0, 0), "1");
  EXPECT_EQ(AsciiTable::Num(-0.5, 1), "-0.5");
}

TEST(AsciiTableTest, EmptyTableStillRenders) {
  AsciiTable table({"only-header"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("only-header"), std::string::npos);
}

}  // namespace
}  // namespace webdb
