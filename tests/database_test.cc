#include "db/database.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(DatabaseTest, FreshOnCreation) {
  Database db(10);
  EXPECT_EQ(db.NumItems(), 10);
  for (ItemId i = 0; i < 10; ++i) {
    EXPECT_TRUE(db.Item(i).IsFresh());
    EXPECT_EQ(db.UnappliedCount(i), 0u);
    EXPECT_DOUBLE_EQ(db.ValueDistance(i), 0.0);
    EXPECT_EQ(db.TimeDifferential(i, 1000), 0);
  }
  EXPECT_EQ(db.StaleItemCount(), 0);
}

TEST(DatabaseTest, ArrivalIncrementsUnapplied) {
  Database db(2);
  const uint64_t seq1 = db.RecordUpdateArrival(0, 10.0, 100);
  EXPECT_EQ(seq1, 1u);
  EXPECT_EQ(db.UnappliedCount(0), 1u);
  const uint64_t seq2 = db.RecordUpdateArrival(0, 20.0, 200);
  EXPECT_EQ(seq2, 2u);
  EXPECT_EQ(db.UnappliedCount(0), 2u);
  EXPECT_EQ(db.UnappliedCount(1), 0u);
  EXPECT_EQ(db.TotalArrivals(), 2u);
  EXPECT_EQ(db.StaleItemCount(), 1);
  EXPECT_EQ(db.TotalUnapplied(), 2u);
}

TEST(DatabaseTest, ApplyNewestMakesFresh) {
  Database db(1);
  db.RecordUpdateArrival(0, 10.0, 100);
  const uint64_t seq2 = db.RecordUpdateArrival(0, 20.0, 200);
  db.ApplyUpdate(0, seq2, 20.0, 300);
  EXPECT_TRUE(db.Item(0).IsFresh());
  EXPECT_DOUBLE_EQ(db.Item(0).value, 20.0);
  EXPECT_EQ(db.UnappliedCount(0), 0u);
  EXPECT_EQ(db.TimeDifferential(0, 400), 0);
  EXPECT_DOUBLE_EQ(db.ValueDistance(0), 0.0);
}

TEST(DatabaseTest, ApplyOlderLeavesNewerUnapplied) {
  Database db(1);
  const uint64_t seq1 = db.RecordUpdateArrival(0, 10.0, 100);
  db.RecordUpdateArrival(0, 20.0, 200);
  db.ApplyUpdate(0, seq1, 10.0, 300);
  EXPECT_FALSE(db.Item(0).IsFresh());
  EXPECT_EQ(db.UnappliedCount(0), 1u);
  EXPECT_DOUBLE_EQ(db.Item(0).value, 10.0);
  // Value distance against the newest arrived value.
  EXPECT_DOUBLE_EQ(db.ValueDistance(0), 10.0);
}

TEST(DatabaseTest, TimeDifferentialFromOldestUnapplied) {
  Database db(1);
  db.RecordUpdateArrival(0, 1.0, 100);
  db.RecordUpdateArrival(0, 2.0, 250);
  // Oldest unapplied arrived at t=100.
  EXPECT_EQ(db.TimeDifferential(0, 400), 300);
}

TEST(DatabaseTest, InvalidationCountsOnly) {
  Database db(1);
  db.RecordUpdateArrival(0, 1.0, 100);
  db.RecordInvalidation(0);
  EXPECT_EQ(db.TotalInvalidated(), 1u);
  EXPECT_EQ(db.Item(0).invalidated_count, 1u);
  // Invalidation does not change freshness math.
  EXPECT_EQ(db.UnappliedCount(0), 1u);
}

TEST(DatabaseDeathTest, ApplyUnknownSequenceAborts) {
  Database db(1);
  EXPECT_DEATH(db.ApplyUpdate(0, 1, 5.0, 10), "never saw");
}

TEST(DatabaseDeathTest, ApplyStaleSequenceAborts) {
  Database db(1);
  db.RecordUpdateArrival(0, 1.0, 10);
  const uint64_t seq2 = db.RecordUpdateArrival(0, 2.0, 20);
  db.ApplyUpdate(0, seq2, 2.0, 30);
  EXPECT_DEATH(db.ApplyUpdate(0, 1, 1.0, 40), "older");
}

TEST(DatabaseDeathTest, OutOfRangeItemAborts) {
  Database db(3);
  EXPECT_DEATH(db.Item(3), "");
  EXPECT_DEATH(db.Item(-1), "");
}

}  // namespace
}  // namespace webdb
