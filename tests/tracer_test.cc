#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/scheduler_factory.h"
#include "obs/span_summary.h"
#include "trace/stock_trace_generator.h"

namespace webdb {
namespace {

TEST(TracerTest, RecordsEventsInOrder) {
  Tracer tracer;
  tracer.Record(Millis(1), 0, false, TraceEventType::kSubmit);
  tracer.Record(Millis(1), 0, false, TraceEventType::kEnqueue);
  tracer.Record(Millis(2), 1, true, TraceEventType::kSubmit);
  tracer.Record(Millis(3), 0, false, TraceEventType::kDispatch);
  tracer.Record(Millis(8), 0, false, TraceEventType::kCommit, 1.5);

  ASSERT_EQ(tracer.NumEvents(), 5u);
  const std::vector<TraceEvent>& events = tracer.events();
  EXPECT_EQ(events[0].type, TraceEventType::kSubmit);
  EXPECT_EQ(events[1].type, TraceEventType::kEnqueue);
  EXPECT_EQ(events[3].type, TraceEventType::kDispatch);
  EXPECT_EQ(events[4].type, TraceEventType::kCommit);
  EXPECT_DOUBLE_EQ(events[4].detail, 1.5);
  EXPECT_TRUE(events[2].is_update);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time);
  }
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(/*enabled=*/false);
  tracer.Record(Millis(1), 0, false, TraceEventType::kSubmit);
  tracer.Record(Millis(2), 0, false, TraceEventType::kCommit, 3.0);
  EXPECT_EQ(tracer.NumEvents(), 0u);
  EXPECT_FALSE(tracer.enabled());
}

TEST(TracerTest, JsonlRoundTrip) {
  Tracer tracer;
  tracer.Record(Millis(1), 2, false, TraceEventType::kSubmit);
  tracer.Record(Millis(2), 2, false, TraceEventType::kEnqueue);
  tracer.Record(Millis(3), 2, false, TraceEventType::kDispatch);
  tracer.Record(Millis(4), 3, true, TraceEventType::kRestart, 2.25);
  tracer.Record(Millis(9), 2, false, TraceEventType::kCommit, 0.5);

  std::stringstream stream;
  tracer.WriteJsonl(stream);

  std::vector<TraceEvent> parsed;
  ASSERT_TRUE(ReadTraceEventsJsonl(stream, &parsed));
  ASSERT_EQ(parsed.size(), tracer.events().size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i], tracer.events()[i]) << "event " << i;
  }
}

TEST(TracerTest, JsonlParserRejectsMalformedLines) {
  std::stringstream stream;
  stream << "{\"t\":1,\"txn\":0,\"kind\":\"query\",\"ev\":\"submit\",\"v\":0}\n"
         << "not json at all\n";
  std::vector<TraceEvent> parsed;
  EXPECT_FALSE(ReadTraceEventsJsonl(stream, &parsed));
}

TEST(TracerTest, CsvHasHeaderAndOneRowPerEvent) {
  Tracer tracer;
  tracer.Record(Millis(1), 0, false, TraceEventType::kSubmit);
  tracer.Record(Millis(2), 1, true, TraceEventType::kCommit, 4.0);
  std::stringstream stream;
  tracer.WriteCsv(stream);
  std::string line;
  ASSERT_TRUE(std::getline(stream, line));
  EXPECT_EQ(line, "time_us,txn,kind,event,value");
  size_t rows = 0;
  while (std::getline(stream, line)) ++rows;
  EXPECT_EQ(rows, 2u);
}

TEST(TracerTest, EventTypeNamesRoundTrip) {
  for (TraceEventType type :
       {TraceEventType::kSubmit, TraceEventType::kEnqueue,
        TraceEventType::kDispatch, TraceEventType::kPreempt,
        TraceEventType::kRestart, TraceEventType::kCommit,
        TraceEventType::kDrop, TraceEventType::kInvalidate,
        TraceEventType::kReject, TraceEventType::kShed}) {
    TraceEventType parsed = TraceEventType::kSubmit;
    ASSERT_TRUE(TraceEventTypeFromName(ToString(type), &parsed))
        << ToString(type);
    EXPECT_EQ(parsed, type);
  }
  TraceEventType unused = TraceEventType::kSubmit;
  EXPECT_FALSE(TraceEventTypeFromName("bogus", &unused));
}

// End-to-end: run a server with the tracer attached and check the lifecycle
// stream agrees with the server's own counters, both directly and through
// the span summarizer (the `trace_tool summarize-spans` path).
TEST(TracerTest, ServerTraceMatchesMetrics) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(31));
  auto scheduler = MakeScheduler(SchedulerKind::kQuts);
  Tracer tracer;
  ExperimentOptions options;
  options.qc = BalancedProfile(QcShape::kStep);
  options.server.tracer = &tracer;
  const ExperimentResult result =
      RunExperiment(trace, scheduler.get(), options);
  ASSERT_GT(tracer.NumEvents(), 0u);

  int64_t query_commits = 0, update_commits = 0, preempts = 0, drops = 0;
  for (const TraceEvent& event : tracer.events()) {
    if (event.type == TraceEventType::kCommit) {
      (event.is_update ? update_commits : query_commits)++;
    }
    if (event.type == TraceEventType::kPreempt) ++preempts;
    if (event.type == TraceEventType::kDrop) ++drops;
  }
  EXPECT_EQ(query_commits, result.queries_committed);
  EXPECT_EQ(update_commits, result.updates_applied);
  EXPECT_EQ(preempts, result.preemptions);
  EXPECT_EQ(drops, result.queries_dropped);

  const SpanSummary summary = SummarizeSpans(tracer.events());
  EXPECT_EQ(summary.queries.committed, result.queries_committed);
  EXPECT_EQ(summary.updates.committed, result.updates_applied);
  EXPECT_EQ(summary.queries.dropped, result.queries_dropped);
  EXPECT_EQ(summary.queries.restarts + summary.updates.restarts,
            result.query_restarts + result.update_restarts);
  // Committed queries spend nonzero time in the system.
  ASSERT_GT(summary.queries.response_ms.count, 0);
  EXPECT_GT(summary.queries.response_ms.mean, 0.0);
  EXPECT_GE(summary.queries.response_ms.p99, summary.queries.response_ms.p50);
  EXPECT_GE(summary.queries.response_ms.max, summary.queries.response_ms.p99);

  // The rendered report mentions both transaction classes.
  const std::string report = RenderSpanSummary(summary);
  EXPECT_NE(report.find("queries"), std::string::npos);
  EXPECT_NE(report.find("updates"), std::string::npos);
}

// The summarize-spans pipeline consumes the serialized form too: JSONL out,
// parse back, summarize — identical totals.
TEST(TracerTest, SummaryStableAcrossJsonlRoundTrip) {
  const Trace trace = GenerateStockTrace(StockTraceConfig::Small(33));
  auto scheduler = MakeScheduler(SchedulerKind::kFifo);
  Tracer tracer;
  ExperimentOptions options;
  options.qc = BalancedProfile(QcShape::kStep);
  options.server.tracer = &tracer;
  RunExperiment(trace, scheduler.get(), options);

  std::stringstream stream;
  tracer.WriteJsonl(stream);
  std::vector<TraceEvent> parsed;
  ASSERT_TRUE(ReadTraceEventsJsonl(stream, &parsed));

  const SpanSummary direct = SummarizeSpans(tracer.events());
  const SpanSummary reparsed = SummarizeSpans(std::move(parsed));
  EXPECT_EQ(direct.num_events, reparsed.num_events);
  EXPECT_EQ(direct.queries.committed, reparsed.queries.committed);
  EXPECT_EQ(direct.updates.committed, reparsed.updates.committed);
  EXPECT_DOUBLE_EQ(direct.queries.response_ms.mean,
                   reparsed.queries.response_ms.mean);
}

}  // namespace
}  // namespace webdb
