#include "qc/qc_generator.h"

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(QcProfileTest, BalancedProfileHasEqualShares) {
  const QcProfile p = BalancedProfile(QcShape::kStep);
  EXPECT_DOUBLE_EQ(p.ExpectedQosSharePct(), 0.5);
  EXPECT_DOUBLE_EQ(p.uu_max, 1.0);
}

TEST(QcProfileTest, Table4ProfileMatchesPaper) {
  // QODmax% = 0.1: qod ~ U[$10, $19], qos ~ U[$90, $99].
  const QcProfile p = Table4Profile(0.1);
  EXPECT_DOUBLE_EQ(p.qod_max_lo, 10.0);
  EXPECT_DOUBLE_EQ(p.qod_max_hi, 19.0);
  EXPECT_DOUBLE_EQ(p.qos_max_lo, 90.0);
  EXPECT_DOUBLE_EQ(p.qos_max_hi, 99.0);
  // QODmax% = 0.9 mirrors it.
  const QcProfile q = Table4Profile(0.9);
  EXPECT_DOUBLE_EQ(q.qod_max_lo, 90.0);
  EXPECT_DOUBLE_EQ(q.qos_max_lo, 10.0);
}

TEST(QcProfileTest, Table4ExpectedShareTracksKnob) {
  for (int i = 1; i <= 9; ++i) {
    const double p = static_cast<double>(i) / 10.0;
    const QcProfile profile = Table4Profile(p);
    EXPECT_NEAR(1.0 - profile.ExpectedQosSharePct(), p, 0.05);
  }
}

class QcGeneratorRangeTest : public ::testing::TestWithParam<double> {};

TEST_P(QcGeneratorRangeTest, DrawsWithinProfileRanges) {
  const QcProfile profile = Table4Profile(GetParam());
  QcGenerator generator(profile);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const QualityContract qc = generator.Next(rng);
    EXPECT_GE(qc.qos_max(), profile.qos_max_lo);
    EXPECT_LE(qc.qos_max(), profile.qos_max_hi);
    EXPECT_GE(qc.qod_max(), profile.qod_max_lo);
    EXPECT_LE(qc.qod_max(), profile.qod_max_hi);
    EXPECT_GE(qc.rt_max(), profile.rt_max_lo);
    EXPECT_LE(qc.rt_max(), profile.rt_max_hi);
    EXPECT_DOUBLE_EQ(qc.uu_max(), profile.uu_max);
  }
}

INSTANTIATE_TEST_SUITE_P(Table4, QcGeneratorRangeTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(QcGeneratorTest, DeterministicForSameSeed) {
  QcGenerator generator(BalancedProfile(QcShape::kLinear));
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    const auto qa = generator.Next(a);
    const auto qb = generator.Next(b);
    EXPECT_DOUBLE_EQ(qa.qos_max(), qb.qos_max());
    EXPECT_DOUBLE_EQ(qa.qod_max(), qb.qod_max());
    EXPECT_EQ(qa.rt_max(), qb.rt_max());
  }
}

TEST(TimeVaryingTest, AlternatingScheduleSegments) {
  const auto schedule = TimeVaryingQcGenerator::AlternatingPreference(
      Seconds(300), 4, 5.0, QcShape::kStep);
  ASSERT_EQ(schedule.segments().size(), 4u);
  EXPECT_EQ(schedule.segments()[0].start, 0);
  EXPECT_EQ(schedule.segments()[1].start, Seconds(75));
  EXPECT_EQ(schedule.segments()[3].start, Seconds(225));
  // Even segments QoD-heavy, odd segments QoS-heavy.
  EXPECT_LT(schedule.ProfileAt(0).ExpectedQosSharePct(), 0.5);
  EXPECT_GT(schedule.ProfileAt(Seconds(80)).ExpectedQosSharePct(), 0.5);
  EXPECT_LT(schedule.ProfileAt(Seconds(160)).ExpectedQosSharePct(), 0.5);
  EXPECT_GT(schedule.ProfileAt(Seconds(299)).ExpectedQosSharePct(), 0.5);
}

TEST(TimeVaryingTest, RatioIsFiveToOne) {
  const auto schedule = TimeVaryingQcGenerator::AlternatingPreference(
      Seconds(100), 2, 5.0, QcShape::kStep);
  const QcProfile& qod_heavy = schedule.ProfileAt(0);
  EXPECT_DOUBLE_EQ(qod_heavy.qod_max_lo, 5.0 * qod_heavy.qos_max_lo);
  const QcProfile& qos_heavy = schedule.ProfileAt(Seconds(60));
  EXPECT_DOUBLE_EQ(qos_heavy.qos_max_lo, 5.0 * qos_heavy.qod_max_lo);
}

TEST(TimeVaryingTest, NextDrawsFromActiveSegment) {
  const auto schedule = TimeVaryingQcGenerator::AlternatingPreference(
      Seconds(100), 2, 5.0, QcShape::kStep);
  Rng rng(3);
  // First half is QoD-heavy: qod_max in [50, 95].
  for (int i = 0; i < 50; ++i) {
    const auto qc = schedule.Next(Seconds(10), rng);
    EXPECT_GT(qc.qod_max(), qc.qos_max());
  }
  // Second half is QoS-heavy.
  for (int i = 0; i < 50; ++i) {
    const auto qc = schedule.Next(Seconds(60), rng);
    EXPECT_GT(qc.qos_max(), qc.qod_max());
  }
}

TEST(TimeVaryingDeathTest, FirstSegmentMustStartAtZero) {
  std::vector<TimeVaryingQcGenerator::Segment> segments = {
      {Seconds(1), BalancedProfile(QcShape::kStep)}};
  EXPECT_DEATH(TimeVaryingQcGenerator{std::move(segments)}, "time 0");
}

}  // namespace
}  // namespace webdb
