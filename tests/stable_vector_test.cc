#include "util/stable_vector.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace webdb {
namespace {

TEST(StableVectorTest, StartsEmpty) {
  StableVector<int> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.begin(), v.end());
}

TEST(StableVectorTest, EmplaceBackAndIndex) {
  StableVector<int> v;
  for (int i = 0; i < 100; ++i) {
    int& ref = v.emplace_back(i * 3);
    EXPECT_EQ(ref, i * 3);
  }
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i * 3);
  EXPECT_EQ(v.back(), 99 * 3);
}

TEST(StableVectorTest, AddressesStableAcrossGrowth) {
  // Use a small chunk so the test crosses many chunk boundaries.
  StableVector<std::string, 4> v;
  std::vector<const std::string*> addresses;
  for (int i = 0; i < 64; ++i) {
    addresses.push_back(&v.emplace_back(std::to_string(i)));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(&v[static_cast<size_t>(i)], addresses[static_cast<size_t>(i)]);
    EXPECT_EQ(*addresses[static_cast<size_t>(i)], std::to_string(i));
  }
}

TEST(StableVectorTest, RangeForIterationMutableAndConst) {
  StableVector<int, 8> v;
  for (int i = 0; i < 20; ++i) v.emplace_back(i);
  int sum = 0;
  for (int& x : v) sum += x;
  EXPECT_EQ(sum, 190);
  const StableVector<int, 8>& cv = v;
  int csum = 0;
  for (const int& x : cv) csum += x;
  EXPECT_EQ(csum, 190);
}

TEST(StableVectorTest, ReservePreallocatesWithoutChangingContents) {
  StableVector<int, 8> v;
  v.emplace_back(1);
  v.reserve(1000);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1);
  for (int i = 0; i < 999; ++i) v.emplace_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[999], 998);
}

TEST(StableVectorTest, DestroysOnlyConstructedElements) {
  // Reserve more capacity than is used: destruction must only touch the
  // `size()` constructed elements. shared_ptr use-counts make leaks or
  // double-destroys visible.
  auto probe = std::make_shared<int>(42);
  {
    StableVector<std::shared_ptr<int>, 4> v;
    v.reserve(100);
    for (int i = 0; i < 10; ++i) v.emplace_back(probe);
    EXPECT_EQ(probe.use_count(), 11);
  }
  EXPECT_EQ(probe.use_count(), 1);
}

TEST(StableVectorTest, MoveOnlyElements) {
  StableVector<std::unique_ptr<int>, 4> v;
  for (int i = 0; i < 10; ++i) v.emplace_back(std::make_unique<int>(i));
  EXPECT_EQ(*v[9], 9);
}

}  // namespace
}  // namespace webdb
