// Golden regression tests: pin end-to-end results for fixed seeds so that
// accidental behavior changes in any layer (RNG, simulator ordering,
// scheduler logic, profit math) surface immediately. Tolerances are loose
// enough for cross-compiler floating-point differences but tight enough to
// catch real logic changes.
//
// If a change is *intended* to alter scheduling behavior, update these
// constants and say so in the commit message.

#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "exp/scheduler_factory.h"
#include "trace/stock_trace_generator.h"

namespace webdb {
namespace {

class RegressionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StockTraceConfig config = StockTraceConfig::Small(1234);
    config.query_rate = 40.0;
    config.update_rate_start = 280.0;
    config.update_rate_end = 200.0;
    trace_ = new Trace(GenerateStockTrace(config));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static ExperimentResult Run(SchedulerKind kind) {
    auto scheduler = MakeScheduler(kind);
    ExperimentOptions options;
    options.qc_seed = 99;
    options.qc = BalancedProfile(QcShape::kStep);
    return RunExperiment(*trace_, scheduler.get(), options);
  }

  static Trace* trace_;
};

Trace* RegressionTest::trace_ = nullptr;

TEST_F(RegressionTest, TraceShapePinned) {
  // Trace generation is fully determined by the seed.
  EXPECT_EQ(trace_->queries.size(), 908u);
  EXPECT_EQ(trace_->updates.size(), 2222u);
  EXPECT_EQ(trace_->queries.front().arrival, trace_->queries.front().arrival);
}

TEST_F(RegressionTest, FifoOutcomePinned) {
  const ExperimentResult result = Run(SchedulerKind::kFifo);
  EXPECT_EQ(result.queries_committed + result.queries_dropped, 908);
  EXPECT_NEAR(result.total_pct, result.total_pct, 0.0);  // self-consistency
  // Integer counters must be exactly reproducible.
  static const ExperimentResult pinned = Run(SchedulerKind::kFifo);
  EXPECT_EQ(result.queries_committed, pinned.queries_committed);
  EXPECT_EQ(result.updates_invalidated, pinned.updates_invalidated);
  EXPECT_DOUBLE_EQ(result.qos_gained, pinned.qos_gained);
}

TEST_F(RegressionTest, SchedulerTotalsPinned) {
  // This 10-second workload is dominated by a flash crowd, so UH (pure
  // freshness) leads and the query-favoring policies trail — a deliberately
  // different regime from the full-trace figures. Values pinned with a
  // tolerance wide enough for cross-compiler floating-point noise.
  const double fifo = Run(SchedulerKind::kFifo).total_pct;
  const double uh = Run(SchedulerKind::kUpdateHigh).total_pct;
  const double qh = Run(SchedulerKind::kQueryHigh).total_pct;
  const double quts = Run(SchedulerKind::kQuts).total_pct;
  EXPECT_GT(quts, fifo);
  EXPECT_GT(qh, fifo);
  EXPECT_NEAR(uh, 0.751, 0.05);
  EXPECT_NEAR(quts, 0.596, 0.05);
  for (double v : {fifo, uh, qh, quts}) {
    EXPECT_GT(v, 0.2);
    EXPECT_LT(v, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace webdb
