// Golden regression tests: pin end-to-end results for fixed seeds so that
// accidental behavior changes in any layer (RNG, simulator ordering,
// scheduler logic, profit math) surface immediately. Tolerances are loose
// enough for cross-compiler floating-point differences but tight enough to
// catch real logic changes.
//
// If a change is *intended* to alter scheduling behavior, update these
// constants and say so in the commit message.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "exp/report.h"
#include "exp/scheduler_factory.h"
#include "exp/sweep_runner.h"
#include "trace/stock_trace_generator.h"
#include "util/csv.h"

namespace webdb {
namespace {

class RegressionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StockTraceConfig config = StockTraceConfig::Small(1234);
    config.query_rate = 40.0;
    config.update_rate_start = 280.0;
    config.update_rate_end = 200.0;
    trace_ = new Trace(GenerateStockTrace(config));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static ExperimentResult Run(SchedulerKind kind) {
    auto scheduler = MakeScheduler(kind);
    ExperimentOptions options;
    options.qc_seed = 99;
    options.qc = BalancedProfile(QcShape::kStep);
    options.compute_end_state_hash = true;
    return RunExperiment(*trace_, scheduler.get(), options);
  }

  static Trace* trace_;
};

Trace* RegressionTest::trace_ = nullptr;

TEST_F(RegressionTest, TraceShapePinned) {
  // Trace generation is fully determined by the seed.
  EXPECT_EQ(trace_->queries.size(), 908u);
  EXPECT_EQ(trace_->updates.size(), 2222u);
  EXPECT_EQ(trace_->queries.front().arrival, trace_->queries.front().arrival);
}

TEST_F(RegressionTest, FifoOutcomePinned) {
  const ExperimentResult result = Run(SchedulerKind::kFifo);
  EXPECT_EQ(result.queries_committed + result.queries_dropped, 908);
  EXPECT_NEAR(result.total_pct, result.total_pct, 0.0);  // self-consistency
  // Integer counters must be exactly reproducible.
  static const ExperimentResult pinned = Run(SchedulerKind::kFifo);
  EXPECT_EQ(result.queries_committed, pinned.queries_committed);
  EXPECT_EQ(result.updates_invalidated, pinned.updates_invalidated);
  EXPECT_DOUBLE_EQ(result.qos_gained, pinned.qos_gained);
}

TEST_F(RegressionTest, SchedulerTotalsPinned) {
  // This 10-second workload is dominated by a flash crowd, so UH (pure
  // freshness) leads and the query-favoring policies trail — a deliberately
  // different regime from the full-trace figures. Values pinned with a
  // tolerance wide enough for cross-compiler floating-point noise.
  const double fifo = Run(SchedulerKind::kFifo).total_pct;
  const double uh = Run(SchedulerKind::kUpdateHigh).total_pct;
  const double qh = Run(SchedulerKind::kQueryHigh).total_pct;
  const double quts = Run(SchedulerKind::kQuts).total_pct;
  EXPECT_GT(quts, fifo);
  EXPECT_GT(qh, fifo);
  EXPECT_NEAR(uh, 0.751, 0.05);
  EXPECT_NEAR(quts, 0.596, 0.05);
  for (double v : {fifo, uh, qh, quts}) {
    EXPECT_GT(v, 0.2);
    EXPECT_LT(v, 1.0 + 1e-9);
  }
}

TEST_F(RegressionTest, EndStateHashPinned) {
  // The FNV-1a end-state hash (WebDatabaseServer::EndStateHash) reduces the
  // whole schedule — every transaction outcome, every item's sequence
  // numbers, the lifecycle counters, the final clock — to one number. Only
  // integer state and moved (never computed) doubles are mixed, so the
  // pinned values hold across compilers and libm versions. If a change
  // *intends* to alter scheduling, update these constants and say so in the
  // commit message; the failure message prints the new values.
  const ExperimentResult fifo = Run(SchedulerKind::kFifo);
  const ExperimentResult quts = Run(SchedulerKind::kQuts);
  EXPECT_EQ(fifo.end_state_hash, 0x810cf025907877e9ULL)
      << "fifo end-state hash changed: 0x" << std::hex << fifo.end_state_hash;
  // QUTS hash re-pinned when ShouldPreempt stopped flipping to the
  // opposite side on a boundary draw for the running side with an empty
  // waiting queue (the running transaction counts as its side's work), and
  // NextDecisionTime stopped answering `now` for an expired atom.
  EXPECT_EQ(quts.end_state_hash, 0xe2f69fbc29174920ULL)
      << "quts end-state hash changed: 0x" << std::hex << quts.end_state_hash;
  // Same run twice -> same hash, and different policies must not collide.
  EXPECT_EQ(Run(SchedulerKind::kFifo).end_state_hash, fifo.end_state_hash);
  EXPECT_NE(fifo.end_state_hash, quts.end_state_hash);
}

// Reads every row of a headline-results CSV (see WriteExperimentCsv).
std::vector<std::vector<std::string>> ReadCsv(const std::string& path) {
  CsvReader reader(path);
  EXPECT_TRUE(reader.ok()) << "cannot open " << path;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> fields;
  while (reader.ReadRow(fields)) rows.push_back(fields);
  return rows;
}

TEST_F(RegressionTest, ParallelSweepMatchesGoldenSnapshot) {
  // A coarse Figure-5-style grid (3 QoD shares x the 4 paper schedulers)
  // run through SweepRunner at jobs=4, snapshotted as a committed CSV.
  // Counters compare exactly; doubles with a tolerance wide enough for
  // cross-compiler floating-point noise. SweepRunner guarantees the rows
  // are independent of thread count, so the snapshot doubles as an
  // end-to-end determinism check for the parallel path.
  //
  // To regenerate after an *intended* behavior change:
  //   WEBDB_REGEN_GOLDEN=1 ./regression_test
  //       --gtest_filter='*ParallelSweepMatchesGoldenSnapshot'
  const std::string golden_path =
      std::string(WEBDB_TEST_DATA_DIR) + "/golden_sweep.csv";

  const std::vector<SchedulerKind> kinds = PaperSchedulers();
  std::vector<SweepRunner::Point> points;
  for (double qod_share : {0.2, 0.5, 0.8}) {
    for (SchedulerKind kind : kinds) {
      SweepRunner::Point point;
      point.trace = trace_;
      point.spec.kind = kind;
      point.options.qc_seed = 99;
      point.options.qc = Table4Profile(qod_share, QcShape::kStep);
      points.push_back(point);
    }
  }

  SweepConfig config;
  config.jobs = 4;
  config.base_seed = 1234;
  const std::vector<ExperimentResult> results =
      SweepRunner(config).RunPoints(points);
  ASSERT_EQ(results.size(), points.size());

  if (std::getenv("WEBDB_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(WriteExperimentCsv(golden_path, results));
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  const std::string actual_path =
      ::testing::TempDir() + "regression_sweep.csv";
  ASSERT_TRUE(WriteExperimentCsv(actual_path, results));

  const auto expected = ReadCsv(golden_path);
  const auto actual = ReadCsv(actual_path);
  ASSERT_EQ(actual.size(), expected.size());
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(actual[0], expected[0]);  // header
  // Columns 1..7 are doubles, everything else (scheduler name, lifecycle
  // counters) must match exactly.
  for (size_t r = 1; r < expected.size(); ++r) {
    ASSERT_EQ(actual[r].size(), expected[r].size()) << "row " << r;
    for (size_t c = 0; c < expected[r].size(); ++c) {
      if (c >= 1 && c <= 7) {
        const double want = std::stod(expected[r][c]);
        const double got = std::stod(actual[r][c]);
        EXPECT_NEAR(got, want, std::max(1e-6, 1e-3 * std::abs(want)))
            << "row " << r << " col " << c << " (" << expected[0][c] << ")";
      } else {
        EXPECT_EQ(actual[r][c], expected[r][c])
            << "row " << r << " col " << c << " (" << expected[0][c] << ")";
      }
    }
  }
}

}  // namespace
}  // namespace webdb
