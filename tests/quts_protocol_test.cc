// Exhaustive QUTS Table-2 protocol check (core/quts_protocol.h).
//
// Drivers arrange the real schedulers — QutsScheduler and
// ShardedQutsScheduler at one and two shards — into every abstract
// (state, event) pair of the declarative transition table and compare the
// observed action against RequiredAction. The regression fixtures
// reintroduce the two historical hand-fixed bugs into the reference model
// and prove the checker rejects exactly them, i.e. it would have flagged
// both defects before merge.

#include "core/quts_protocol.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/quts_scheduler.h"
#include "core/sharded_quts_scheduler.h"
#include "test_txns.h"
#include "util/rng.h"
#include "util/seed.h"
#include "util/time.h"

namespace webdb {
namespace {

constexpr SimDuration kTau = Millis(10);

TxnKind RunningKindOf(QutsRunning running) {
  return running == QutsRunning::kQuery ? TxnKind::kQuery : TxnKind::kUpdate;
}

bool HasQueued(QutsQueues queues, TxnKind kind) {
  if (queues == QutsQueues::kBoth) return true;
  if (queues == QutsQueues::kQueryOnly) return kind == TxnKind::kQuery;
  if (queues == QutsQueues::kUpdateOnly) return kind == TxnKind::kUpdate;
  return false;
}

// The ξ draw QutsScheduler makes at ρ = 1/2 from a given stream.
TxnKind DrawFrom(Rng& rng) {
  return rng.NextDouble() < 0.5 ? TxnKind::kQuery : TxnKind::kUpdate;
}

// Smallest seed whose ξ stream (after `transform`ing the seed the way the
// scheduler under test does) opens with exactly {first, second}. The
// drivers use it to make "the next draw picks side X" a constructible
// arrangement instead of a probabilistic one.
template <typename SeedTransform>
uint64_t SeedForDraws(TxnKind first, TxnKind second, SeedTransform transform) {
  for (uint64_t candidate = 1;; ++candidate) {
    Rng probe(transform(candidate));
    if (DrawFrom(probe) == first && DrawFrom(probe) == second) {
      return candidate;
    }
  }
}

QutsAction PopActionOf(const Transaction* txn) {
  if (txn == nullptr) return QutsAction::kPopNone;
  return txn->kind == TxnKind::kQuery ? QutsAction::kPopQuery
                                      : QutsAction::kPopUpdate;
}

// Arranges a single-CPU QutsScheduler: ρ frozen at 1/2 so the seeded ξ
// stream alone decides draws; a primer transaction of the state's side is
// popped at t=0 to commit the side and start the atom clock (consuming
// draw #1, which the seed pins to the side); the queue occupancy arrives
// mid-atom; the event fires either mid-atom (τ/2) or at the boundary (τ),
// where it consumes draw #2 — pinned to the state's `draw`.
class RealQutsDriver final : public QutsProtocolDriver {
 public:
  void Arrange(const QutsProtoState& state) override {
    pool_ = std::make_unique<TxnPool>();
    QutsScheduler::Options options;
    options.atom_time = kTau;
    options.adaptation_period = Seconds(1000);
    options.initial_rho = 0.5;
    options.freeze_rho = true;
    options.slicing = QutsSlicing::kRandom;
    options.seed =
        SeedForDraws(state.side, state.draw, [](uint64_t s) { return s; });
    scheduler_ = std::make_unique<QutsScheduler>(options);

    Transaction* primer = Submit(state.side, 0);
    runner_ = scheduler_->PopNext(0);
    EXPECT_EQ(runner_, primer);
    EXPECT_EQ(scheduler_->current_side(), state.side);

    if (HasQueued(state.queues, TxnKind::kQuery)) {
      Submit(TxnKind::kQuery, Millis(2));
    }
    if (HasQueued(state.queues, TxnKind::kUpdate)) {
      Submit(TxnKind::kUpdate, Millis(2));
    }
    // Arrivals are pure enqueues: they must not move the atom or the side.
    EXPECT_EQ(scheduler_->current_side(), state.side);
    now_ = state.atom == QutsAtom::kExpired ? kTau : kTau / 2;
  }

  QutsAction Fire(QutsProtoEvent event) override {
    switch (event) {
      case QutsProtoEvent::kPopNext:
        return PopActionOf(scheduler_->PopNext(now_));
      case QutsProtoEvent::kShouldPreempt:
        return scheduler_->ShouldPreempt(*runner_, now_)
                   ? QutsAction::kPreempt
                   : QutsAction::kKeepRunning;
      case QutsProtoEvent::kNextDecisionTime:
        return ClassifyWake(scheduler_->NextDecisionTime(now_), now_, kTau);
    }
    return QutsAction::kPopNone;
  }

 private:
  Transaction* Submit(TxnKind kind, SimTime at) {
    if (kind == TxnKind::kQuery) {
      Query* query = pool_->NewQuery(at);
      scheduler_->OnQueryArrival(query, at);
      return query;
    }
    Update* update = pool_->NewUpdate(at);
    scheduler_->OnUpdateArrival(update, at);
    return update;
  }

  std::unique_ptr<TxnPool> pool_;
  std::unique_ptr<QutsScheduler> scheduler_;
  Transaction* runner_ = nullptr;
  SimTime now_ = 0;
};

// Same arrangement against ShardedQutsScheduler through the CPU-set
// protocol, all work homed on shard 0 and driven from CPU 0. With more
// than one shard the other shards stay empty, so shard 0's Table 2 machine
// must behave exactly like the single-CPU one (the steal scan finds no
// victims).
class RealShardedQutsDriver final : public QutsProtocolDriver {
 public:
  explicit RealShardedQutsDriver(int num_shards) : num_shards_(num_shards) {}

  void Arrange(const QutsProtoState& state) override {
    pool_ = std::make_unique<TxnPool>();
    ShardedQutsScheduler::Options options;
    options.quts.atom_time = kTau;
    options.quts.adaptation_period = Seconds(1000);
    options.quts.initial_rho = 0.5;
    options.quts.freeze_rho = true;
    options.quts.slicing = QutsSlicing::kRandom;
    // Shard 0 draws from Rng(DeriveSeed(seed, 0)); pin that stream.
    options.quts.seed = SeedForDraws(
        state.side, state.draw, [](uint64_t s) { return DeriveSeed(s, 0); });
    options.num_cpus = 1;
    options.num_shards = num_shards_;
    scheduler_ = std::make_unique<ShardedQutsScheduler>(options);

    // An item that homes on shard 0 under this scheduler's salt.
    item_ = 0;
    while (scheduler_->ShardOfItem(item_) != 0) ++item_;

    Transaction* primer = Submit(state.side, 0);
    runner_ = scheduler_->PopNext(0, 0);
    EXPECT_EQ(runner_, primer);

    if (HasQueued(state.queues, TxnKind::kQuery)) {
      Submit(TxnKind::kQuery, Millis(2));
    }
    if (HasQueued(state.queues, TxnKind::kUpdate)) {
      Submit(TxnKind::kUpdate, Millis(2));
    }
    now_ = state.atom == QutsAtom::kExpired ? kTau : kTau / 2;
  }

  QutsAction Fire(QutsProtoEvent event) override {
    switch (event) {
      case QutsProtoEvent::kPopNext:
        return PopActionOf(scheduler_->PopNext(0, now_));
      case QutsProtoEvent::kShouldPreempt:
        return scheduler_->ShouldPreempt(0, *runner_, now_)
                   ? QutsAction::kPreempt
                   : QutsAction::kKeepRunning;
      case QutsProtoEvent::kNextDecisionTime:
        return ClassifyWake(scheduler_->NextDecisionTime(0, now_), now_,
                            kTau);
    }
    return QutsAction::kPopNone;
  }

 private:
  Transaction* Submit(TxnKind kind, SimTime at) {
    if (kind == TxnKind::kQuery) {
      Query* query = pool_->NewQuery(at);
      query->items = {item_};
      scheduler_->OnQueryArrival(query, at);
      return query;
    }
    Update* update = pool_->NewUpdate(at, Millis(2), item_);
    scheduler_->OnUpdateArrival(update, at);
    return update;
  }

  int num_shards_;
  ItemId item_ = 0;
  std::unique_ptr<TxnPool> pool_;
  std::unique_ptr<ShardedQutsScheduler> scheduler_;
  Transaction* runner_ = nullptr;
  SimTime now_ = 0;
};

std::string Report(const std::vector<QutsProtoViolation>& violations) {
  std::string out;
  for (const QutsProtoViolation& v : violations) out += v.Describe() + "\n";
  return out;
}

// --- the state space itself -------------------------------------------------

TEST(QutsProtocolTable, EnumerationIsExhaustive) {
  // 2 sides × 2 atom phases × 4 occupancies × 2 draws × 3 CPU states.
  EXPECT_EQ(AllQutsProtoStates().size(), 96u);
  // Valid pairs: PopNext and ShouldPreempt each see 32 states (idle CPU /
  // matching running side), NextDecisionTime sees both sets. The checker
  // walks every one of them.
  size_t valid = 0;
  for (const QutsProtoState& state : AllQutsProtoStates()) {
    for (QutsProtoEvent event : kAllQutsProtoEvents) {
      if (StateValidFor(state, event)) ++valid;
    }
  }
  EXPECT_EQ(valid, 128u);
}

TEST(QutsProtocolTable, RequiredActionWitnesses) {
  // The two historical defects, as direct table lookups.
  // Defect 1 witness: atom expired while a query runs, draw picks the
  // update side but no update is queued — Table 2 keeps the CPU.
  QutsProtoState witness1;
  witness1.side = TxnKind::kQuery;
  witness1.atom = QutsAtom::kExpired;
  witness1.queues = QutsQueues::kQueryOnly;
  witness1.draw = TxnKind::kUpdate;
  witness1.running = QutsRunning::kQuery;
  EXPECT_EQ(RequiredAction(witness1, QutsProtoEvent::kShouldPreempt),
            QutsAction::kKeepRunning);
  // Defect 2 witness: expired atom with queued work — the wake-up must be
  // a full atom out, never at/before now.
  QutsProtoState witness2 = witness1;
  EXPECT_EQ(RequiredAction(witness2, QutsProtoEvent::kNextDecisionTime),
            QutsAction::kWakeAfterFullAtom);
}

// --- real schedulers vs the table -------------------------------------------

TEST(QutsProtocolCheck, ReferenceModelMatchesTable) {
  ModelQutsDriver driver(QutsBug::kNone);
  const auto violations = CheckQutsProtocol(driver);
  EXPECT_TRUE(violations.empty()) << Report(violations);
}

TEST(QutsProtocolCheck, QutsSchedulerMatchesTable) {
  RealQutsDriver driver;
  const auto violations = CheckQutsProtocol(driver);
  EXPECT_TRUE(violations.empty()) << Report(violations);
}

TEST(QutsProtocolCheck, ShardedQutsSingleShardMatchesTable) {
  RealShardedQutsDriver driver(1);
  const auto violations = CheckQutsProtocol(driver);
  EXPECT_TRUE(violations.empty()) << Report(violations);
}

TEST(QutsProtocolCheck, ShardedQutsTwoShardsMatchesTable) {
  RealShardedQutsDriver driver(2);
  const auto violations = CheckQutsProtocol(driver);
  EXPECT_TRUE(violations.empty()) << Report(violations);
}

// --- regression fixtures: the checker rejects the historical bugs -----------

TEST(QutsProtocolRegression, RejectsPreemptOntoEmptySide) {
  ModelQutsDriver driver(QutsBug::kPreemptOntoEmptySide);
  const auto violations = CheckQutsProtocol(driver);
  // Exactly the states the hotfix was about: boundary draw for the other,
  // empty side. Per running kind there are two occupancies that leave the
  // drawn side empty.
  EXPECT_EQ(violations.size(), 4u) << Report(violations);
  for (const QutsProtoViolation& v : violations) {
    EXPECT_EQ(v.event, QutsProtoEvent::kShouldPreempt);
    EXPECT_EQ(v.state.atom, QutsAtom::kExpired);
    EXPECT_NE(v.state.draw, RunningKindOf(v.state.running));
    EXPECT_FALSE(HasQueued(v.state.queues, v.state.draw));
    EXPECT_EQ(v.required, QutsAction::kKeepRunning);
    EXPECT_EQ(v.observed, QutsAction::kPreempt);
  }
}

TEST(QutsProtocolRegression, RejectsZeroDelayWakeup) {
  ModelQutsDriver driver(QutsBug::kZeroDelayWakeup);
  const auto violations = CheckQutsProtocol(driver);
  // Every expired-atom state with queued work answers "wake now" instead
  // of "wake a full atom out": 2 sides × 3 non-empty occupancies × 2 draws
  // × 2 valid CPU states.
  EXPECT_EQ(violations.size(), 24u) << Report(violations);
  for (const QutsProtoViolation& v : violations) {
    EXPECT_EQ(v.event, QutsProtoEvent::kNextDecisionTime);
    EXPECT_EQ(v.state.atom, QutsAtom::kExpired);
    EXPECT_NE(v.state.queues, QutsQueues::kBothEmpty);
    EXPECT_EQ(v.required, QutsAction::kWakeAfterFullAtom);
    EXPECT_EQ(v.observed, QutsAction::kWakeImmediate);
  }
}

// A deliberately wrong side-kept variant would also be caught: flipping any
// single required action makes the clean model fail. Spot-check by diffing
// the model against a table probe on one PopNext pair.
TEST(QutsProtocolCheck, TableAndModelAgreePointwise) {
  ModelQutsDriver driver(QutsBug::kNone);
  QutsProtoState state;
  state.side = TxnKind::kUpdate;
  state.atom = QutsAtom::kExpired;
  state.queues = QutsQueues::kUpdateOnly;
  state.draw = TxnKind::kQuery;  // drawn queue empty -> fall over to update
  state.running = QutsRunning::kIdle;
  driver.Arrange(state);
  EXPECT_EQ(driver.Fire(QutsProtoEvent::kPopNext), QutsAction::kPopUpdate);
  EXPECT_EQ(RequiredAction(state, QutsProtoEvent::kPopNext),
            QutsAction::kPopUpdate);
}

}  // namespace
}  // namespace webdb
