#!/usr/bin/env python3
"""Self-test for the lint pack: both linters versus a seeded fixture corpus.

Copies tests/lint_fixtures/tree/ into a temp directory, runs
lint_determinism.py and lint_contracts.py with --root pointed there, and
asserts the EXACT finding set (linter, file, line, rule) recorded in
tests/lint_fixtures/expected.txt — no missing findings, no extras. The
corpus seeds at least one violation per rule plus the negatives (directory
scoping, lint:allow escapes, sanctioned constructor sinks, the obs/ and
util/seed.h carve-outs), so a regression in any rule regex, in the escape
machinery or in the header-aware member lookup fails this test instead of
silently going quiet on the real tree.

Exit status: 0 exact match, 1 mismatch. Wired into ctest as `lint_selftest`.
"""

import os
import re
import shutil
import subprocess
import sys
import tempfile

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")

LINTERS = {
    "determinism": os.path.join(TOOLS_DIR, "lint_determinism.py"),
    "contracts": os.path.join(TOOLS_DIR, "lint_contracts.py"),
}

FINDING_RE = re.compile(r"^(?P<rel>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z0-9\-]+)\]")


def load_expected():
    expected = set()
    with open(os.path.join(FIXTURES, "expected.txt"), encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            linter, rel, lineno, rule = line.split()
            if linter not in LINTERS:
                print(f"expected.txt: unknown linter {linter!r}", file=sys.stderr)
                return None
            expected.add((linter, rel, int(lineno), rule))
    return expected


def run_linter(name, script, root):
    proc = subprocess.run(
        [sys.executable, script, "--root", root],
        capture_output=True,
        text=True,
        check=False,
    )
    findings = set()
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings.add(
                (
                    name,
                    match.group("rel").replace(os.sep, "/"),
                    int(match.group("line")),
                    match.group("rule"),
                )
            )
    return proc.returncode, findings


def main():
    expected = load_expected()
    if expected is None:
        return 1

    failures = []
    observed = set()
    with tempfile.TemporaryDirectory(prefix="lint_selftest_") as tmp:
        # A copy, not the checkout path: proves --root relocatability and
        # that nothing resolves against the real repo root.
        tree = os.path.join(tmp, "tree")
        shutil.copytree(os.path.join(FIXTURES, "tree"), tree)
        for name, script in sorted(LINTERS.items()):
            returncode, findings = run_linter(name, script, tree)
            want_rc = 1 if any(f[0] == name for f in expected) else 0
            if returncode != want_rc:
                failures.append(f"{name}: exit status {returncode}, want {want_rc}")
            observed |= findings

    for linter, rel, line, rule in sorted(expected - observed):
        failures.append(f"missing: {linter} {rel}:{line} [{rule}]")
    for linter, rel, line, rule in sorted(observed - expected):
        failures.append(f"extra:   {linter} {rel}:{line} [{rule}]")

    if failures:
        print("lint_selftest: corpus mismatch", file=sys.stderr)
        for failure in failures:
            print("  " + failure, file=sys.stderr)
        return 1
    print(f"lint_selftest: {len(expected)} expected finding(s) matched exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
