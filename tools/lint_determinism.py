#!/usr/bin/env python3
"""Determinism linter for the qcsched tree.

PR 2 made every experiment sweep parallel-yet-bit-identical; this linter is
the mechanical enforcement of the contract that makes that true. It scans
src/ and bench/ for constructs that silently break reproduction of the
paper's figures:

  ambient-randomness      rand()/srand()/random()/drand48(),
                          std::random_device - any RNG whose stream is not
                          derived from util/rng.h + util/seed.h.
  wall-clock              std::chrono::{system,steady,high_resolution}_clock,
                          time(nullptr), gettimeofday, clock_gettime,
                          clock() - wall-clock reads anywhere outside
                          src/obs/ (observability may timestamp; simulation
                          logic must use SimTime).
  unordered-serialization iteration over a std::unordered_{map,set,
                          multimap,multiset} declared in the same file OR in
                          the file's own header (foo.cc sees the members of
                          the foo.h it includes). Unordered iteration order
                          is implementation-defined, so any loop over one
                          that feeds CSV/stdout serialization reorders output
                          between standard libraries. Keyed access is fine;
                          loops must either use an ordered container or be
                          annotated.
  seed-arithmetic         arithmetic on identifiers containing `seed`
                          (base_seed + i, seed ^ x, ...) outside
                          util/seed.h|cc. All derived streams must go
                          through DeriveSeed(), whose injectivity is
                          golden-pinned by tests/seed_derivation_test.cc.

Escape hatch - same line or the immediately preceding line:

    std::chrono::steady_clock::now();  // lint:allow(wall-clock) reason...
    // lint:allow(unordered-serialization) sorted before serialization
    for (const auto& [k, v] : index_) ...

Exit status: 0 clean, 1 findings, 2 usage error. Wired into ctest as the
`lint_determinism` test, so tier-1 runs it.
"""

import argparse
import os
import re
import sys

SCAN_DIRS = ("src", "bench")
EXTENSIONS = (".h", ".cc")

ALLOW_RE = re.compile(r"lint:allow\(([a-z0-9_,\- ]+)\)")

# Matches string/char literals and comments. Literals are matched first so a
# comment marker inside a string does not start a comment.
_STRIP_RE = re.compile(
    r'"(?:\\.|[^"\\])*"'      # string literal
    r"|'(?:\\.|[^'\\])*'"     # char literal
    r"|//[^\n]*"              # line comment
    r"|/\*.*?\*/",            # block comment (single line after splitting)
    re.DOTALL,
)


def strip_code(line):
    """Removes literals and comments so rule regexes see only code."""
    return _STRIP_RE.sub(" ", line)


RULES = {
    "ambient-randomness": re.compile(
        r"\b(?:std\s*::\s*)?random_device\b"
        r"|(?<![\w:])(?:std\s*::\s*)?s?rand\s*\("
        r"|(?<![\w:])(?:std\s*::\s*)?random\s*\("
        r"|\bd?rand48\s*\("
    ),
    "wall-clock": re.compile(
        r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
        r"|(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"
        r"|\bgettimeofday\s*\("
        r"|\bclock_gettime\s*\("
        r"|(?<![\w:_])clock\s*\(\s*\)"
    ),
    "seed-arithmetic": re.compile(
        # <something>seed<something> combined with an arithmetic/bitwise
        # operator on either side. Pure assignment, comparison and
        # passing-as-argument are fine.
        r"\w*seed\w*\s*(?:\+|-|\*|\^|%|<<|>>|\|(?!\|)|&(?!&))(?!=\s*$)[^=]"
        r"|[^=(,<\s](?:\+|-|\*|\^|%|<<|>>|\|)\s*\w*seed\w*\b"
    ),
}

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)\s*[;={(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*([\w.\->]+)\s*\)")
ITERATOR_LOOP_RE = re.compile(r"\bfor\s*\([^)]*=\s*([\w.\->]+)\.begin\(\)")
INCLUDE_RE = re.compile(r'#include\s+"([^"]+)"')


def find_unordered_names(stripped_lines):
    names = set()
    for line in stripped_lines:
        for match in UNORDERED_DECL_RE.finditer(line):
            names.add(match.group(1))
    return names


def strip_block_comments(raw):
    """Blanks /* */ comments, keeping line numbers stable."""
    return re.sub(
        r"/\*.*?\*/", lambda m: "\n" * m.group(0).count("\n"), raw, flags=re.DOTALL
    )


def paired_header_names(path, raw, root):
    """Unordered-container members declared in the file's own header.

    A loop in foo.cc over a member container usually iterates one declared
    in foo.h, not in the .cc itself. Resolve the '#include "..."' whose
    basename matches this file, the way the build does (include roots are
    src/ and the file's own directory), and lift its declarations into the
    .cc's name set.
    """
    base, ext = os.path.splitext(os.path.basename(path))
    if ext != ".cc":
        return set()
    for match in INCLUDE_RE.finditer(raw):
        include = match.group(1)
        if os.path.splitext(os.path.basename(include))[0] != base:
            continue
        candidates = (
            os.path.join(root, "src", include),
            os.path.join(os.path.dirname(path), include),
            os.path.join(os.path.dirname(path), os.path.basename(include)),
        )
        for candidate in candidates:
            if os.path.isfile(candidate):
                try:
                    with open(candidate, encoding="utf-8") as f:
                        header_raw = f.read()
                except OSError:
                    return set()
                header_lines = strip_block_comments(header_raw).split("\n")
                return find_unordered_names(
                    strip_code(line) for line in header_lines
                )
    return set()


def allowed_rules(raw_lines, index):
    """Rules allowed on line `index` (same line or the line above)."""
    rules = set()
    for i in (index, index - 1):
        if 0 <= i < len(raw_lines):
            match = ALLOW_RE.search(raw_lines[i])
            if match:
                rules.update(r.strip() for r in match.group(1).split(","))
    return rules


def lint_file(path, rel, root):
    findings = []
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
    except OSError as err:
        return [(rel, 0, "io", str(err))]

    raw_lines = raw.split("\n")
    # Collapse block comments spanning lines before per-line stripping.
    stripped = [strip_code(line) for line in strip_block_comments(raw).split("\n")]

    in_obs = rel.replace(os.sep, "/").startswith("src/obs/")
    in_seed_impl = os.path.basename(rel) in ("seed.h", "seed.cc") and "util" in rel

    unordered_names = find_unordered_names(stripped)
    unordered_names |= paired_header_names(path, raw, root)

    for i, line in enumerate(stripped):
        here = allowed_rules(raw_lines, i)

        for rule, pattern in RULES.items():
            if rule == "wall-clock" and in_obs:
                continue
            if rule == "seed-arithmetic" and in_seed_impl:
                continue
            if rule in here:
                continue
            if pattern.search(line):
                findings.append(
                    (rel, i + 1, rule, raw_lines[i].strip()[:100])
                )

        if unordered_names and "unordered-serialization" not in here:
            targets = [m.group(1) for m in RANGE_FOR_RE.finditer(line)]
            targets += [m.group(1) for m in ITERATOR_LOOP_RE.finditer(line)]
            for target in targets:
                base = target.split(".")[-1].split("->")[-1]
                if base in unordered_names:
                    findings.append(
                        (
                            rel,
                            i + 1,
                            "unordered-serialization",
                            raw_lines[i].strip()[:100],
                        )
                    )
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    parser.add_argument("paths", nargs="*", help="extra files to scan")
    args = parser.parse_args()

    if args.list_rules:
        for rule in sorted(list(RULES) + ["unordered-serialization"]):
            print(rule)
        return 0

    root = os.path.abspath(args.root)
    files = []
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            print(f"lint_determinism: missing directory {base}", file=sys.stderr)
            return 2
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    files.extend(os.path.abspath(p) for p in args.paths)

    findings = []
    for path in sorted(files):
        rel = os.path.relpath(path, root)
        findings.extend(lint_file(path, rel, root))

    for rel, line, rule, snippet in findings:
        print(f"{rel}:{line}: [{rule}] {snippet}")
    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s). Fix them or "
            "annotate with // lint:allow(<rule>) and a reason.",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
