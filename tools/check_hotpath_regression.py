#!/usr/bin/env python3
"""Perf-smoke gate for bench_hotpath.

Compares a fresh BENCH_hotpath.json against the committed baseline
(bench/baseline/BENCH_hotpath.json) and fails on:

  * events/sec regression of more than --tolerance (default 20%) against
    the baseline's events_per_sec — the machine-sensitive check the CI
    perf-smoke job exists for;
  * speedup_vs_legacy below --min-speedup (default 2.0) — the
    machine-independent acceptance criterion: the slot-arena core must stay
    at least 2x faster than the embedded pre-arena core, measured in the
    same process on the same workload;
  * any allocations per event on the arena hot path (allocs_per_event must
    round to zero after warm-up; the committed baseline documents the
    expected value);
  * when the JSON carries the multi-core scaling section: 4-CPU sharded
    QUTS profit-per-wall-second below --min-multicore-speedup (default
    2.0) over the single-CPU run, or a rerun that was not bit-identical.
    Old baselines without the section are accepted for the other checks.

With --overload it also gates a BENCH_overload.json (bench_overload):
the headline flash-crowd point must show dbf admission strictly
out-earning both admit-all and queue-cap, and the rerun of the headline
point must have been bit-identical. These are machine-independent
booleans computed by the bench itself.

Usage:
  python3 tools/check_hotpath_regression.py \
      --current BENCH_hotpath.json \
      [--baseline bench/baseline/BENCH_hotpath.json] \
      [--overload BENCH_overload.json] \
      [--tolerance 0.20] [--min-speedup 2.0]
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_hotpath.json")
    parser.add_argument("--baseline",
                        default="bench/baseline/BENCH_hotpath.json",
                        help="committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional events/sec regression")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required speedup over the legacy core")
    parser.add_argument("--min-multicore-speedup", type=float, default=2.0,
                        help="required 4-CPU profit/wall-s speedup over "
                             "1 CPU (sharded QUTS, flash-crowd trace)")
    parser.add_argument("--overload", default=None,
                        help="optional BENCH_overload.json to gate the "
                             "admission-policy headline on")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []

    cur_eps = float(current["events_per_sec"])
    base_eps = float(baseline["events_per_sec"])
    floor = base_eps * (1.0 - args.tolerance)
    print(f"events/sec: current {cur_eps:,.0f}, baseline {base_eps:,.0f}, "
          f"floor {floor:,.0f}")
    if cur_eps < floor:
        failures.append(
            f"events/sec regressed more than {args.tolerance:.0%}: "
            f"{cur_eps:,.0f} < {floor:,.0f}")

    speedup = float(current["speedup_vs_legacy"])
    print(f"speedup vs legacy core: {speedup:.2f}x "
          f"(required >= {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        failures.append(
            f"speedup over the legacy core fell below "
            f"{args.min_speedup:.2f}x: {speedup:.2f}x")

    allocs = float(current["allocs_per_event"])
    print(f"allocs/event on the arena path: {allocs:.4f}")
    if allocs >= 0.01:
        failures.append(
            f"arena hot path is allocating again: {allocs:.4f} allocs/event")

    if "multicore_profit_speedup_4cpu" in current:
        mc = float(current["multicore_profit_speedup_4cpu"])
        print(f"multicore profit speedup (4 CPUs vs 1): {mc:.2f}x "
              f"(required >= {args.min_multicore_speedup:.2f}x)")
        if mc < args.min_multicore_speedup:
            failures.append(
                f"4-CPU sharded QUTS profit/wall-s speedup fell below "
                f"{args.min_multicore_speedup:.2f}x: {mc:.2f}x")
        if not current.get("multicore_rerun_identical", False):
            failures.append(
                "multicore runs were not bit-identical across reruns")

    if args.overload:
        overload = load(args.overload)
        headline = overload["headline"]
        print(f"overload headline ({headline['scenario']} x{headline['scale']:g} "
              f"@ {headline['cpus']} CPUs): "
              f"dbf {headline['dbf_profit']:,.2f}, "
              f"admit-all {headline['admit_all_profit']:,.2f}, "
              f"queue-cap {headline['queue_cap_profit']:,.2f}")
        if not headline.get("dbf_beats_admit_all", False):
            failures.append(
                "dbf admission no longer out-earns admit-all on the "
                "flash-crowd headline")
        if not headline.get("dbf_beats_queue_cap", False):
            failures.append(
                "dbf admission no longer out-earns queue-cap on the "
                "flash-crowd headline")
        if not overload.get("rerun_identical", False):
            failures.append(
                "overload headline rerun was not bit-identical")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: hot-path performance within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
