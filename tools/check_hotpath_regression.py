#!/usr/bin/env python3
"""Perf-smoke gate for bench_hotpath.

Compares a fresh BENCH_hotpath.json against the committed baseline
(bench/baseline/BENCH_hotpath.json) and fails on:

  * events/sec regression of more than --tolerance (default 20%) against
    the baseline's events_per_sec — the machine-sensitive check the CI
    perf-smoke job exists for;
  * speedup_vs_legacy below --min-speedup (default 2.0) — the
    machine-independent acceptance criterion: the slot-arena core must stay
    at least 2x faster than the embedded pre-arena core, measured in the
    same process on the same workload;
  * any allocations per event on the arena hot path (allocs_per_event must
    round to zero after warm-up; the committed baseline documents the
    expected value);
  * when the JSON carries the multi-core scaling section: 4-CPU sharded
    QUTS profit-per-wall-second below --min-multicore-speedup (default
    2.0) over the single-CPU run, or a rerun that was not bit-identical.
    Old baselines without the section are accepted for the other checks.

With --overload it also gates a BENCH_overload.json (bench_overload):
the headline flash-crowd point must show dbf admission strictly
out-earning both admit-all and queue-cap, and the rerun of the headline
point must have been bit-identical; the shared-execution section must
show at least --min-fusion-gain profit per CPU-busy-second for
fusion-on over fusion-off (default 1.2x), again with a bit-identical
rerun; and the fused-result-cache section must show at least
--min-fusion-cache-gain over fusion-off (default: the fusion floor)
with cache hits actually served and a bit-identical rerun. These are
machine-independent numbers computed by the bench itself — the
simulation is deterministic, so they do not drift with the host. A
fresh overload JSON without the "fusion" or "fusion_cache" section is
itself a failure: it means the bench predates shared execution or the
result cache.

With --committed-hotpath / --committed-overload it gates the checked-in
BENCH_*.json trajectory files (the publication gap the ROADMAP calls
out): the committed file must exist and agree with the fresh run on
every machine-independent field — end-state hashes, counters, gate
booleans, and (for the fully deterministic overload report) the entire
document. A missing or stale committed file fails the build until the
fresh report is committed.

Usage:
  python3 tools/check_hotpath_regression.py \
      --current BENCH_hotpath.json \
      [--baseline bench/baseline/BENCH_hotpath.json] \
      [--overload BENCH_overload.json] \
      [--committed-hotpath BENCH_hotpath.json] \
      [--committed-overload BENCH_overload.json] \
      [--tolerance 0.20] [--min-speedup 2.0] [--min-fusion-gain 1.2]
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


# Fields of BENCH_hotpath.json that are pure simulation outputs: identical
# on every host and compiler, so the committed trajectory must match the
# fresh run exactly. Timing-derived fields (events/sec, speedups, wall
# times) legitimately differ between machines and are not compared.
HOTPATH_DETERMINISTIC_FIELDS = (
    "bench",
    "workload",
    "allocs_per_event",
    "legacy_allocs_per_event",
    "txnqueue_allocs_per_op",
    "multicore_rerun_identical",
)


def check_committed_hotpath(fresh, committed_path, failures):
    if not os.path.exists(committed_path):
        failures.append(
            f"committed hotpath trajectory {committed_path} is missing; "
            f"commit the fresh BENCH_hotpath.json")
        return
    committed = load(committed_path)
    for field in HOTPATH_DETERMINISTIC_FIELDS:
        if committed.get(field) != fresh.get(field):
            failures.append(
                f"committed hotpath trajectory {committed_path} is stale: "
                f"field '{field}' is {committed.get(field)!r}, fresh run "
                f"says {fresh.get(field)!r}")
    fresh_hashes = [row.get("end_state_hash")
                    for row in fresh.get("multicore", [])]
    committed_hashes = [row.get("end_state_hash")
                        for row in committed.get("multicore", [])]
    if fresh_hashes != committed_hashes:
        failures.append(
            f"committed hotpath trajectory {committed_path} is stale: "
            f"multicore end-state hashes changed "
            f"({committed_hashes} -> {fresh_hashes})")
    print(f"committed hotpath trajectory {committed_path}: "
          f"deterministic fields match")


def json_equivalent(a, b, rel_tol=1e-3):
    """Structural equality, with relative slack on floats.

    The overload bench is a deterministic simulation end to end, but its
    profit figures are doubles formatted from libm-dependent arithmetic;
    the golden CSV suite compares those with 1e-3 relative slack and this
    check follows suit. Hashes, counters, names and booleans must match
    exactly.
    """
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        return abs(a - b) <= max(1e-6, rel_tol * max(abs(a), abs(b)))
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(
            json_equivalent(a[k], b[k], rel_tol) for k in a)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(
            json_equivalent(x, y, rel_tol) for x, y in zip(a, b))
    return a == b


def check_committed_overload(fresh, committed_path, failures):
    if not os.path.exists(committed_path):
        failures.append(
            f"committed overload trajectory {committed_path} is missing; "
            f"commit the fresh BENCH_overload.json")
        return
    committed = load(committed_path)
    if not json_equivalent(committed, fresh):
        diff_keys = [key for key in sorted(set(fresh) | set(committed))
                     if not json_equivalent(fresh.get(key),
                                            committed.get(key))]
        failures.append(
            f"committed overload trajectory {committed_path} is stale "
            f"(differs in {', '.join(diff_keys)}); commit the fresh "
            f"BENCH_overload.json")
        return
    print(f"committed overload trajectory {committed_path}: identical")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_hotpath.json")
    parser.add_argument("--baseline",
                        default="bench/baseline/BENCH_hotpath.json",
                        help="committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional events/sec regression")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required speedup over the legacy core")
    parser.add_argument("--min-multicore-speedup", type=float, default=2.0,
                        help="required 4-CPU profit/wall-s speedup over "
                             "1 CPU (sharded QUTS, flash-crowd trace)")
    parser.add_argument("--min-fusion-gain", type=float, default=1.2,
                        help="required profit/CPU-s gain for fusion-on vs "
                             "fusion-off on the flash-crowd headline")
    parser.add_argument("--min-fusion-cache-gain", type=float, default=None,
                        help="required profit/CPU-s gain for fusion + result "
                             "cache vs fusion-off (default: --min-fusion-gain "
                             "— the cache must never cost the headline)")
    parser.add_argument("--overload", default=None,
                        help="optional BENCH_overload.json to gate the "
                             "admission-policy and fusion headlines on")
    parser.add_argument("--committed-hotpath", default=None,
                        help="checked-in BENCH_hotpath.json trajectory; "
                             "fails when missing or stale on "
                             "machine-independent fields")
    parser.add_argument("--committed-overload", default=None,
                        help="checked-in BENCH_overload.json trajectory; "
                             "fails when missing or not identical to the "
                             "fresh report")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []

    cur_eps = float(current["events_per_sec"])
    base_eps = float(baseline["events_per_sec"])
    floor = base_eps * (1.0 - args.tolerance)
    print(f"events/sec: current {cur_eps:,.0f}, baseline {base_eps:,.0f}, "
          f"floor {floor:,.0f}")
    if cur_eps < floor:
        failures.append(
            f"events/sec regressed more than {args.tolerance:.0%}: "
            f"{cur_eps:,.0f} < {floor:,.0f}")

    speedup = float(current["speedup_vs_legacy"])
    print(f"speedup vs legacy core: {speedup:.2f}x "
          f"(required >= {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        failures.append(
            f"speedup over the legacy core fell below "
            f"{args.min_speedup:.2f}x: {speedup:.2f}x")

    allocs = float(current["allocs_per_event"])
    print(f"allocs/event on the arena path: {allocs:.4f}")
    if allocs >= 0.01:
        failures.append(
            f"arena hot path is allocating again: {allocs:.4f} allocs/event")

    if "multicore_profit_speedup_4cpu" in current:
        mc = float(current["multicore_profit_speedup_4cpu"])
        print(f"multicore profit speedup (4 CPUs vs 1): {mc:.2f}x "
              f"(required >= {args.min_multicore_speedup:.2f}x)")
        if mc < args.min_multicore_speedup:
            failures.append(
                f"4-CPU sharded QUTS profit/wall-s speedup fell below "
                f"{args.min_multicore_speedup:.2f}x: {mc:.2f}x")
        if not current.get("multicore_rerun_identical", False):
            failures.append(
                "multicore runs were not bit-identical across reruns")

    if args.overload:
        overload = load(args.overload)
        headline = overload["headline"]
        print(f"overload headline ({headline['scenario']} x{headline['scale']:g} "
              f"@ {headline['cpus']} CPUs): "
              f"dbf {headline['dbf_profit']:,.2f}, "
              f"admit-all {headline['admit_all_profit']:,.2f}, "
              f"queue-cap {headline['queue_cap_profit']:,.2f}")
        if not headline.get("dbf_beats_admit_all", False):
            failures.append(
                "dbf admission no longer out-earns admit-all on the "
                "flash-crowd headline")
        if not headline.get("dbf_beats_queue_cap", False):
            failures.append(
                "dbf admission no longer out-earns queue-cap on the "
                "flash-crowd headline")
        if not overload.get("rerun_identical", False):
            failures.append(
                "overload headline rerun was not bit-identical")
        fusion = overload.get("fusion")
        if fusion is None:
            failures.append(
                "overload report has no 'fusion' section — bench_overload "
                "predates shared execution; rebuild and rerun it")
        else:
            gain = float(fusion["gain"])
            print(f"fusion headline ({fusion['scenario']} "
                  f"x{fusion['scale']:g} @ {fusion['cpus']} CPUs): "
                  f"profit/cpu-s {fusion['profit_per_cpu_s_off']:,.1f} -> "
                  f"{fusion['profit_per_cpu_s_on']:,.1f}, gain {gain:.3f}x "
                  f"(required >= {args.min_fusion_gain:.2f}x, "
                  f"{fusion['queries_fused']} fused in "
                  f"{fusion['fusion_groups']} groups)")
            if gain < args.min_fusion_gain:
                failures.append(
                    f"fusion profit/CPU-s gain fell below "
                    f"{args.min_fusion_gain:.2f}x: {gain:.3f}x")
            if int(fusion.get("queries_fused", 0)) <= 0:
                failures.append(
                    "fusion headline fused no queries — the flash crowd "
                    "no longer produces shareable scans")
            if not fusion.get("rerun_identical", False):
                failures.append(
                    "fusion headline rerun was not bit-identical")
        cache = overload.get("fusion_cache")
        min_cache_gain = (args.min_fusion_cache_gain
                          if args.min_fusion_cache_gain is not None
                          else args.min_fusion_gain)
        if cache is None:
            failures.append(
                "overload report has no 'fusion_cache' section — "
                "bench_overload predates the fused-result cache; rebuild "
                "and rerun it")
        else:
            cache_gain = float(cache["gain"])
            print(f"fusion-cache headline ({cache['scenario']} "
                  f"x{cache['scale']:g} @ {cache['cpus']} CPUs): "
                  f"profit/cpu-s {cache['profit_per_cpu_s']:,.1f}, "
                  f"gain {cache_gain:.3f}x "
                  f"(required >= {min_cache_gain:.2f}x, "
                  f"{cache['cache_hits']} hits / "
                  f"{cache['cache_fills']} fills)")
            if cache_gain < min_cache_gain:
                failures.append(
                    f"fusion-cache profit/CPU-s gain fell below "
                    f"{min_cache_gain:.2f}x: {cache_gain:.3f}x")
            if int(cache.get("cache_hits", 0)) <= 0:
                failures.append(
                    "fusion-cache headline served no hits — the flash "
                    "crowd no longer repeats cached look-alikes")
            if not cache.get("rerun_identical", False):
                failures.append(
                    "fusion-cache headline rerun was not bit-identical")
        if args.committed_overload:
            check_committed_overload(overload, args.committed_overload,
                                     failures)

    if args.committed_hotpath:
        check_committed_hotpath(current, args.committed_hotpath, failures)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: hot-path performance within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
