#!/usr/bin/env python3
"""Contract linter for the qcsched tree: hot-path and API-shape rules.

Companion to lint_determinism.py (which guards reproducibility); this pack
guards the performance and locking contracts that the simulator's design
notes promise but the compiler cannot see:

  std-function-hot-path   std::function on the simulator/scheduler hot path
                          (src/sim/, src/core/). Closure dispatch there must
                          use EventCallback (src/sim/event_callback.h): a
                          move-only erased callable with a guaranteed inline
                          buffer, so scheduling an event never heap-allocates.
                          std::function is fine in cold configuration code
                          (factories, trace loading) outside these dirs.
  options-by-value        a function parameter taking a *Options struct by
                          value. Options structs are plumbed through many
                          layers; by-value copies at each hop are both a perf
                          tax and a mutation hazard. Pass `const Options&`.
                          Sanctioned sinks: `explicit` constructors and
                          constructor definitions (Type::Type(Options ...)),
                          which deliberately take by value and move/copy once
                          into the member.
  lock-on-sim-path        mutex primitives (std::mutex & friends,
                          util::Mutex/MutexLock, .lock()/.Lock() calls) in
                          src/sim/, src/core/, src/sched/ or src/server/.
                          Event callbacks and scheduler decision points run
                          on the single-threaded simulation path; a lock
                          acquired there is at best dead weight and at worst
                          a deadlock with the sweep worker pool. Cross-thread
                          state belongs in src/exp//src/obs/ behind
                          util::Mutex + WEBDB_GUARDED_BY.
  fused-result-mutation   a mutable handle to a FusionResult: a non-const
                          shared_ptr<FusionResult>, or a const_cast that
                          names the type. A fused scan's result buffer is
                          produced once (make_shared<const FusionResult> in
                          SettleFusionGroup) and fanned out to every waiter
                          in the group (DESIGN.md §13); a waiter that
                          mutates through the shared pointer corrupts every
                          other member's answer. The const in the element
                          type is the contract — this rule catches code that
                          launders it away.

Escape hatch is shared with the determinism linter - same line or the
immediately preceding line:

    void Install(SimOptions options);  // lint:allow(options-by-value) sink

Exit status: 0 clean, 1 findings, 2 usage error. Wired into ctest as the
`lint_contracts` test, so tier-1 runs it.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_determinism as det  # noqa: E402  (shared strip/allow helpers)

# Directories (relative, forward-slash) each rule is scoped to. `None` means
# every scanned file.
HOT_PATH_DIRS = ("src/sim/", "src/core/")
LOCK_FREE_DIRS = ("src/sim/", "src/core/", "src/sched/", "src/server/")

STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\b")

# A *Options type passed by value as a parameter: preceded by '(' or ',' (or
# line start, for wrapped signatures), followed by a parameter name and then
# ',' or ')'. References/pointers ('Options&', 'Options*') and local
# declarations ('Options o = ...;', 'Options o;') do not match.
OPTIONS_PARAM_RE = re.compile(
    r"(?:[(,]|^)\s*((?:\w+\s*::\s*)*\w*Options)\s+\w+\s*[,)]"
)
EXPLICIT_RE = re.compile(r"\bexplicit\b")
CTOR_DEF_RE = re.compile(r"\b(\w+)\s*::\s*\1\s*\(")

LOCK_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|shared_mutex|recursive_mutex|timed_mutex"
    r"|recursive_timed_mutex|lock_guard|unique_lock|shared_lock"
    r"|scoped_lock|condition_variable|condition_variable_any)\b"
    r"|\butil\s*::\s*(?:Mutex|MutexLock)\b"
    r"|\.\s*(?:lock|try_lock|try_lock_for|Lock|TryLock)\s*\("
)

# A mutable handle to the shared fan-out buffer: shared_ptr<FusionResult>
# without const in the element type, or a const_cast naming the type.
# `shared_ptr<const FusionResult>` (the sanctioned handle) does not match.
FUSED_RESULT_MUTATION_RE = re.compile(
    r"\bshared_ptr\s*<\s*FusionResult\b"
    r"|\bconst_cast\s*<[^<>]*\bFusionResult\b[^<>]*>"
)

RULE_NAMES = (
    "std-function-hot-path",
    "options-by-value",
    "lock-on-sim-path",
    "fused-result-mutation",
)


def _in_dirs(rel, dirs):
    rel = rel.replace(os.sep, "/")
    return any(rel.startswith(d) for d in dirs)


def lint_file(path, rel):
    findings = []
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
    except OSError as err:
        return [(rel, 0, "io", str(err))]

    raw_lines = raw.split("\n")
    no_blocks = re.sub(
        r"/\*.*?\*/", lambda m: "\n" * m.group(0).count("\n"), raw, flags=re.DOTALL
    )
    stripped = [det.strip_code(line) for line in no_blocks.split("\n")]

    on_hot_path = _in_dirs(rel, HOT_PATH_DIRS)
    on_lock_free_path = _in_dirs(rel, LOCK_FREE_DIRS)
    # The annotated lock primitives themselves live in util/.
    is_lock_impl = rel.replace(os.sep, "/") == "src/util/mutex.h"

    for i, line in enumerate(stripped):
        here = det.allowed_rules(raw_lines, i)

        def report(rule):
            findings.append((rel, i + 1, rule, raw_lines[i].strip()[:100]))

        if (
            on_hot_path
            and "std-function-hot-path" not in here
            and STD_FUNCTION_RE.search(line)
        ):
            report("std-function-hot-path")

        if "options-by-value" not in here and OPTIONS_PARAM_RE.search(line):
            if not EXPLICIT_RE.search(line) and not CTOR_DEF_RE.search(line):
                report("options-by-value")

        if (
            on_lock_free_path
            and not is_lock_impl
            and "lock-on-sim-path" not in here
            and LOCK_RE.search(line)
        ):
            report("lock-on-sim-path")

        if (
            "fused-result-mutation" not in here
            and FUSED_RESULT_MUTATION_RE.search(line)
        ):
            report("fused-result-mutation")

    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    parser.add_argument("paths", nargs="*", help="extra files to scan")
    args = parser.parse_args()

    if args.list_rules:
        for rule in sorted(RULE_NAMES):
            print(rule)
        return 0

    root = os.path.abspath(args.root)
    files = []
    for scan_dir in det.SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            print(f"lint_contracts: missing directory {base}", file=sys.stderr)
            return 2
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(det.EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    files.extend(os.path.abspath(p) for p in args.paths)

    findings = []
    for path in sorted(files):
        rel = os.path.relpath(path, root)
        findings.extend(lint_file(path, rel))

    for rel, line, rule, snippet in findings:
        print(f"{rel}:{line}: [{rule}] {snippet}")
    if findings:
        print(
            f"lint_contracts: {len(findings)} finding(s). Fix them or "
            "annotate with // lint:allow(<rule>) and a reason.",
            file=sys.stderr,
        )
        return 1
    print(f"lint_contracts: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
