// trace_tool — generate, inspect and spot-check synthetic stock traces from
// the command line.
//
// Usage:
//   trace_tool generate <base> [seed] [duration_s]   write <base>.*.csv
//   trace_tool stats <base>                          Table-3 style summary
//   trace_tool head <base> [n]                       first n records per stream
//   trace_tool summarize-spans <trace.jsonl>         per-phase latency stats
//                                                    from a lifecycle trace
//                                                    (bench_micro --trace)
//
// Exit status: 0 on success, 1 on usage or IO errors.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/span_summary.h"
#include "obs/tracer.h"
#include "trace/stock_trace_generator.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "txn/transaction.h"

namespace {

using namespace webdb;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool generate <base> [seed] [duration_s]\n"
               "  trace_tool stats <base>\n"
               "  trace_tool head <base> [n]\n"
               "  trace_tool summarize-spans <trace.jsonl>\n");
  return 1;
}

int SummarizeSpansCmd(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::vector<TraceEvent> events;
  if (!ReadTraceEventsJsonlFile(argv[2], &events)) {
    std::fprintf(stderr, "error: cannot parse trace '%s'\n", argv[2]);
    return 1;
  }
  const SpanSummary summary = SummarizeSpans(std::move(events));
  std::printf("%s", RenderSpanSummary(summary).c_str());
  return 0;
}

int Generate(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string base = argv[2];
  StockTraceConfig config;
  if (argc > 3) config.seed = static_cast<uint64_t>(std::atoll(argv[3]));
  if (argc > 4) config.duration = Seconds(std::atoll(argv[4]));
  std::fprintf(stderr, "generating %.0f s trace with seed %llu...\n",
               ToSeconds(config.duration),
               static_cast<unsigned long long>(config.seed));
  const Trace trace = GenerateStockTrace(config);
  if (!SaveTrace(trace, base)) {
    std::fprintf(stderr, "error: cannot write %s.*.csv\n", base.c_str());
    return 1;
  }
  std::printf("wrote %zu queries and %zu updates under %s.*.csv\n",
              trace.queries.size(), trace.updates.size(), base.c_str());
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) return Usage();
  Trace trace;
  if (!LoadTrace(argv[2], &trace)) {
    std::fprintf(stderr, "error: cannot load trace '%s'\n", argv[2]);
    return 1;
  }
  const TraceStats stats = ComputeTraceStats(trace);
  std::printf("%s", stats.Summary().c_str());
  std::printf("update-dominated stocks  %.3f\n",
              stats.FractionUpdateDominated());
  return 0;
}

int Head(int argc, char** argv) {
  if (argc < 3) return Usage();
  Trace trace;
  if (!LoadTrace(argv[2], &trace)) {
    std::fprintf(stderr, "error: cannot load trace '%s'\n", argv[2]);
    return 1;
  }
  const size_t n = argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 10;
  std::printf("-- queries --\n");
  for (size_t i = 0; i < trace.queries.size() && i < n; ++i) {
    const QueryRecord& q = trace.queries[i];
    std::printf("%10.3fms  %-15s exec=%.1fms items=[", ToMillis(q.arrival),
                ToString(q.type).c_str(), ToMillis(q.exec_time));
    for (size_t k = 0; k < q.items.size(); ++k) {
      std::printf("%s%d", k > 0 ? "," : "", q.items[k]);
    }
    std::printf("]\n");
  }
  std::printf("-- updates --\n");
  for (size_t i = 0; i < trace.updates.size() && i < n; ++i) {
    const UpdateRecord& u = trace.updates[i];
    std::printf("%10.3fms  item=%-5d value=%-10.2f exec=%.1fms\n",
                ToMillis(u.arrival), u.item, u.value, ToMillis(u.exec_time));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return Generate(argc, argv);
  if (command == "stats") return Stats(argc, argv);
  if (command == "head") return Head(argc, argv);
  if (command == "summarize-spans") return SummarizeSpansCmd(argc, argv);
  return Usage();
}
