// Staleness metrics (Section 2.1) and per-query combiners.
//
// A query touches a set of items; its staleness is a combination of the
// per-item staleness values. The paper measures staleness in number of
// unapplied updates (#uu); time differential and value distance are also
// supported for the ablation benches.

#ifndef WEBDB_DB_STALENESS_H_
#define WEBDB_DB_STALENESS_H_

#include <string>
#include <vector>

#include "db/database.h"

namespace webdb {

enum class StalenessMetric {
  // #uu (paper default): unapplied updates still *in the system*. Because a
  // new arrival invalidates any pending update on the same item, at most one
  // live unapplied update exists per item, so the per-item value is 0 or 1.
  // (This is what makes the paper's sub-1.0 average staleness and
  // uu_max = 1 contracts meaningful.)
  kUnappliedUpdates,
  // Raw count of update arrivals not yet reflected in the value, including
  // superseded (dropped) ones — "how many changes did I miss" (ablation).
  kUnappliedArrivals,
  kTimeDifferential,  // td, in milliseconds
  kValueDistance,     // vd
};

enum class StalenessCombiner {
  kMax,  // worst item determines the query's staleness (default)
  kSum,
  kAvg,
};

std::string ToString(StalenessMetric metric);
std::string ToString(StalenessCombiner combiner);

// Per-item staleness under `metric` (td reported in milliseconds so all
// metrics live on comparable human-scale numbers).
double ItemStaleness(const Database& db, ItemId id, StalenessMetric metric,
                     SimTime now);

// Combined staleness of a query over `items`. An empty item set is fresh.
double QueryStaleness(const Database& db, const std::vector<ItemId>& items,
                      StalenessMetric metric, StalenessCombiner combiner,
                      SimTime now);

}  // namespace webdb

#endif  // WEBDB_DB_STALENESS_H_
