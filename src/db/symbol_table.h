// Bidirectional mapping between stock ticker symbols and dense item ids,
// modelling the hash-based access path the paper assumes ("data items are
// hash-based accessed", indexed by stock ticker symbol).

#ifndef WEBDB_DB_SYMBOL_TABLE_H_
#define WEBDB_DB_SYMBOL_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "db/data_item.h"

namespace webdb {

class SymbolTable {
 public:
  SymbolTable() = default;

  // Interns `symbol`, returning its id (existing or newly assigned).
  ItemId Intern(const std::string& symbol);

  // Returns the id of `symbol`, or kInvalidItem if unknown.
  ItemId Lookup(const std::string& symbol) const;

  // Returns the symbol for `id`. Requires a valid id.
  const std::string& Symbol(ItemId id) const;

  int32_t Size() const { return static_cast<int32_t>(symbols_.size()); }

  // Generates `n` distinct synthetic ticker symbols (base-26 letters, "A",
  // "B", ..., "AA", ...) and interns them in order, so ids are 0..n-1.
  static SymbolTable Synthetic(int32_t n);

 private:
  std::unordered_map<std::string, ItemId> ids_;
  std::vector<std::string> symbols_;
};

}  // namespace webdb

#endif  // WEBDB_DB_SYMBOL_TABLE_H_
