#include "db/database.h"

#include <cmath>

#include "util/logging.h"

namespace webdb {

Database::Database(int32_t num_items) {
  WEBDB_CHECK(num_items > 0);
  items_.resize(static_cast<size_t>(num_items));
}

const DataItem& Database::Item(ItemId id) const {
  WEBDB_CHECK(id >= 0 && id < NumItems());
  return items_[static_cast<size_t>(id)];
}

DataItem& Database::MutableItem(ItemId id) {
  WEBDB_CHECK(id >= 0 && id < NumItems());
  return items_[static_cast<size_t>(id)];
}

uint64_t Database::RecordUpdateArrival(ItemId id, double value, SimTime now) {
  DataItem& item = MutableItem(id);
  if (item.IsFresh()) item.oldest_unapplied_arrival = now;
  ++item.arrival_seq;
  item.newest_value = value;
  ++total_arrivals_;
  return item.arrival_seq;
}

void Database::ApplyUpdate(ItemId id, uint64_t arrival_seq, double value,
                           SimTime now) {
  DataItem& item = MutableItem(id);
  WEBDB_CHECK_MSG(arrival_seq <= item.arrival_seq,
                  "applying an update the item never saw arrive");
  WEBDB_CHECK_MSG(arrival_seq > item.applied_seq,
                  "applying an update older than the committed one");
  item.value = value;
  item.applied_seq = arrival_seq;
  ++item.applied_count;
  ++total_applied_;
  // If arrivals newer than this update exist, the oldest unapplied one is the
  // one right after `arrival_seq`; we do not track individual arrival times,
  // so approximate with `now` (the newer arrival is by definition no older
  // than the one just applied, and the register holds only the newest).
  item.oldest_unapplied_arrival = item.IsFresh() ? 0 : now;
}

void Database::RecordInvalidation(ItemId id) {
  DataItem& item = MutableItem(id);
  ++item.invalidated_count;
  ++total_invalidated_;
}

uint64_t Database::UnappliedCount(ItemId id) const {
  return Item(id).UnappliedCount();
}

SimDuration Database::TimeDifferential(ItemId id, SimTime now) const {
  const DataItem& item = Item(id);
  if (item.IsFresh()) return 0;
  return now - item.oldest_unapplied_arrival;
}

double Database::ValueDistance(ItemId id) const {
  const DataItem& item = Item(id);
  if (item.IsFresh()) return 0.0;
  return std::fabs(item.newest_value - item.value);
}

int64_t Database::StaleItemCount() const {
  int64_t n = 0;
  for (const auto& item : items_) {
    if (!item.IsFresh()) ++n;
  }
  return n;
}

uint64_t Database::TotalUnapplied() const {
  uint64_t n = 0;
  for (const auto& item : items_) n += item.UnappliedCount();
  return n;
}

}  // namespace webdb
