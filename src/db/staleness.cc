#include "db/staleness.h"

#include <algorithm>

#include "util/logging.h"

namespace webdb {

std::string ToString(StalenessMetric metric) {
  switch (metric) {
    case StalenessMetric::kUnappliedUpdates:
      return "uu";
    case StalenessMetric::kUnappliedArrivals:
      return "uu-raw";
    case StalenessMetric::kTimeDifferential:
      return "td";
    case StalenessMetric::kValueDistance:
      return "vd";
  }
  return "?";
}

std::string ToString(StalenessCombiner combiner) {
  switch (combiner) {
    case StalenessCombiner::kMax:
      return "max";
    case StalenessCombiner::kSum:
      return "sum";
    case StalenessCombiner::kAvg:
      return "avg";
  }
  return "?";
}

double ItemStaleness(const Database& db, ItemId id, StalenessMetric metric,
                     SimTime now) {
  switch (metric) {
    case StalenessMetric::kUnappliedUpdates:
      // At most one unapplied update survives invalidation per item.
      return db.UnappliedCount(id) > 0 ? 1.0 : 0.0;
    case StalenessMetric::kUnappliedArrivals:
      return static_cast<double>(db.UnappliedCount(id));
    case StalenessMetric::kTimeDifferential:
      return ToMillis(db.TimeDifferential(id, now));
    case StalenessMetric::kValueDistance:
      return db.ValueDistance(id);
  }
  WEBDB_CHECK_MSG(false, "unknown staleness metric");
  return 0.0;
}

double QueryStaleness(const Database& db, const std::vector<ItemId>& items,
                      StalenessMetric metric, StalenessCombiner combiner,
                      SimTime now) {
  if (items.empty()) return 0.0;
  double acc = 0.0;
  for (ItemId id : items) {
    const double s = ItemStaleness(db, id, metric, now);
    acc = combiner == StalenessCombiner::kMax ? std::max(acc, s) : acc + s;
  }
  if (combiner == StalenessCombiner::kAvg) {
    acc /= static_cast<double>(items.size());
  }
  return acc;
}

}  // namespace webdb
