// Main-memory database of independently refreshed data items.
//
// The database models the information-portal replica of Section 2 of the
// paper: external sources own the master copies; this replica only ever
// needs the most recent value per item. Access is by dense ItemId; the
// string-keyed view (stock tickers) lives in SymbolTable.

#ifndef WEBDB_DB_DATABASE_H_
#define WEBDB_DB_DATABASE_H_

#include <cstdint>
#include <vector>

#include "db/data_item.h"
#include "util/time.h"

namespace webdb {

class Database {
 public:
  // Creates `num_items` items, all fresh with value 0.
  explicit Database(int32_t num_items);

  int32_t NumItems() const { return static_cast<int32_t>(items_.size()); }

  const DataItem& Item(ItemId id) const;

  // Records the arrival of an update carrying `value`. Returns the item's new
  // arrival sequence number, which the update transaction must remember and
  // present to ApplyUpdate on commit.
  uint64_t RecordUpdateArrival(ItemId id, double value, SimTime now);

  // Commits an update: installs `value` and marks every update that arrived
  // up to and including `arrival_seq` as reflected. Newer arrivals (if any)
  // remain unapplied. `arrival_seq` must not exceed the item's arrival_seq
  // and must be newer than the currently applied one.
  void ApplyUpdate(ItemId id, uint64_t arrival_seq, double value, SimTime now);

  // Records an update that was invalidated/dropped without being applied
  // (bookkeeping only; freshness math is driven by the sequences above).
  void RecordInvalidation(ItemId id);

  // --- staleness primitives (per item) -----------------------------------
  uint64_t UnappliedCount(ItemId id) const;
  // Time since the oldest unapplied update arrived; 0 when fresh.
  SimDuration TimeDifferential(ItemId id, SimTime now) const;
  // |current value - most recently arrived value|; 0 when fresh.
  double ValueDistance(ItemId id) const;

  // --- aggregate statistics -----------------------------------------------
  uint64_t TotalArrivals() const { return total_arrivals_; }
  uint64_t TotalApplied() const { return total_applied_; }
  uint64_t TotalInvalidated() const { return total_invalidated_; }
  // Number of items with at least one unapplied update.
  int64_t StaleItemCount() const;
  // Sum of unapplied counts over all items.
  uint64_t TotalUnapplied() const;

 private:
  DataItem& MutableItem(ItemId id);

  std::vector<DataItem> items_;
  uint64_t total_arrivals_ = 0;
  uint64_t total_applied_ = 0;
  uint64_t total_invalidated_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_DB_DATABASE_H_
