// A single hash-accessed data item of the main-memory database.
//
// Each item tracks, besides its current value, enough bookkeeping to compute
// the three staleness metrics of Section 2.1 of the paper:
//   #uu  — number of unapplied updates (arrival sequence minus applied
//          sequence),
//   td   — time differential since the oldest unapplied update arrived,
//   vd   — value distance between current and most up-to-date value.

#ifndef WEBDB_DB_DATA_ITEM_H_
#define WEBDB_DB_DATA_ITEM_H_

#include <cstdint>

#include "util/time.h"

namespace webdb {

// Dense item identifier (index into the database's item table).
using ItemId = int32_t;

constexpr ItemId kInvalidItem = -1;

struct DataItem {
  // Current committed value.
  double value = 0.0;

  // Monotonic per-item count of update arrivals.
  uint64_t arrival_seq = 0;
  // `arrival_seq` captured by the most recently applied update at its own
  // arrival. arrival_seq - applied_seq == number of unapplied updates.
  uint64_t applied_seq = 0;

  // Arrival time of the oldest update not yet reflected in `value`; only
  // meaningful when arrival_seq > applied_seq.
  SimTime oldest_unapplied_arrival = 0;

  // Most recently arrived (not necessarily applied) value, for the value
  // distance metric.
  double newest_value = 0.0;

  // Lifetime counters (exposed through Database statistics).
  uint64_t applied_count = 0;
  uint64_t invalidated_count = 0;

  uint64_t UnappliedCount() const { return arrival_seq - applied_seq; }
  bool IsFresh() const { return arrival_seq == applied_seq; }
};

}  // namespace webdb

#endif  // WEBDB_DB_DATA_ITEM_H_
