#include "db/update_register.h"

#include <algorithm>

#include "util/logging.h"

namespace webdb {

uint64_t UpdateRegister::Register(ItemId item, uint64_t txn_id) {
  WEBDB_CHECK(txn_id != 0);
  auto [it, inserted] = pending_.try_emplace(item, txn_id);
  if (inserted) return 0;
  const uint64_t invalidated = it->second;
  it->second = txn_id;
  ++total_invalidated_;
  return invalidated;
}

bool UpdateRegister::Remove(ItemId item, uint64_t txn_id) {
  auto it = pending_.find(item);
  if (it == pending_.end() || it->second != txn_id) return false;
  pending_.erase(it);
  return true;
}

uint64_t UpdateRegister::PendingFor(ItemId item) const {
  auto it = pending_.find(item);
  return it == pending_.end() ? 0 : it->second;
}

std::vector<std::pair<ItemId, uint64_t>> UpdateRegister::PendingEntries()
    const {
  std::vector<std::pair<ItemId, uint64_t>> entries(pending_.begin(),
                                                   pending_.end());
  std::sort(entries.begin(), entries.end());
  return entries;
}

}  // namespace webdb
