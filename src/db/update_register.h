// Update register table (Section 2.1 of the paper).
//
// One pending-update slot per data item: the arrival of a new update
// automatically invalidates any pending update on the same item, which is
// simply dropped from the system. Entries are keyed by item id and hold the
// transaction id of the pending (newest, not yet executing/committed) update.

#ifndef WEBDB_DB_UPDATE_REGISTER_H_
#define WEBDB_DB_UPDATE_REGISTER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/data_item.h"

namespace webdb {

class UpdateRegister {
 public:
  UpdateRegister() = default;

  // Registers `txn_id` as the pending update for `item`. Returns the
  // transaction id of the previously pending update that this arrival
  // invalidates, or 0 if there was none.
  uint64_t Register(ItemId item, uint64_t txn_id);

  // Removes the pending entry for `item` if it is `txn_id` (called when the
  // update is dispatched to the CPU). Returns false when `txn_id` is not the
  // registered pending update (it was superseded in the meantime).
  bool Remove(ItemId item, uint64_t txn_id);

  // Transaction id pending for `item`, or 0 if none.
  uint64_t PendingFor(ItemId item) const;

  size_t Size() const { return pending_.size(); }
  uint64_t TotalInvalidated() const { return total_invalidated_; }

  // Every (item, pending txn) entry, sorted by item id so callers iterate
  // deterministically. For the invariant auditor and tests; O(n log n).
  std::vector<std::pair<ItemId, uint64_t>> PendingEntries() const;

 private:
  std::unordered_map<ItemId, uint64_t> pending_;
  uint64_t total_invalidated_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_DB_UPDATE_REGISTER_H_
