#include "db/symbol_table.h"

#include "util/logging.h"

namespace webdb {

ItemId SymbolTable::Intern(const std::string& symbol) {
  auto it = ids_.find(symbol);
  if (it != ids_.end()) return it->second;
  const ItemId id = static_cast<ItemId>(symbols_.size());
  symbols_.push_back(symbol);
  ids_.emplace(symbol, id);
  return id;
}

ItemId SymbolTable::Lookup(const std::string& symbol) const {
  auto it = ids_.find(symbol);
  return it == ids_.end() ? kInvalidItem : it->second;
}

const std::string& SymbolTable::Symbol(ItemId id) const {
  WEBDB_CHECK(id >= 0 && id < Size());
  return symbols_[static_cast<size_t>(id)];
}

SymbolTable SymbolTable::Synthetic(int32_t n) {
  WEBDB_CHECK(n >= 0);
  SymbolTable table;
  for (int32_t i = 0; i < n; ++i) {
    std::string sym;
    int32_t v = i;
    do {
      sym.insert(sym.begin(), static_cast<char>('A' + v % 26));
      v = v / 26 - 1;
    } while (v >= 0);
    table.Intern(sym);
  }
  return table;
}

}  // namespace webdb
