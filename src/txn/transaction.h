// Transaction model (Section 2.1 of the paper): read-only user queries and
// blind write-only updates.

#ifndef WEBDB_TXN_TRANSACTION_H_
#define WEBDB_TXN_TRANSACTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/data_item.h"
#include "qc/quality_contract.h"
#include "util/time.h"

namespace webdb {

class TxnQueue;

// Globally unique transaction id; 0 is reserved as "no transaction".
using TxnId = uint64_t;

// Tenant (QC class) a transaction belongs to; an index into the run's
// TenantSet. 0 is the default tier when no tenants are configured.
using TenantId = int32_t;

enum class TxnKind { kQuery, kUpdate };

enum class TxnState {
  kPending,      // in the trace, not yet arrived
  kQueued,       // waiting in a scheduler queue
  kRunning,      // occupying the CPU
  kPreempted,    // paused mid-execution, progress retained, still holds locks
  kCommitted,    // finished successfully
  kDropped,      // query: lifetime deadline expired before commit
  kInvalidated,  // update: superseded by a newer update on the same item
  kRejected,     // query: refused by admission control at submission
  kShed,         // query: admitted, then evicted from the queue by admission
                 // control to make room for higher-worth work
  kFused,        // query: attached to a running fused scan; settles (commits)
                 // when the scan completes, or re-queues if the scan aborts
};

std::string ToString(TxnKind kind);
std::string ToString(TxnState state);

// Read-only query types (Section 5, "Query Traces").
enum class QueryType {
  kLookup,         // single-item point read
  kMovingAverage,  // single item, heavier computation
  kComparison,     // multi-item comparison
  kAggregation,    // multi-item aggregate
};

std::string ToString(QueryType type);

// Coarse service classes over the query types (Qserv-style scan vs
// interactive split): interactive point work vs computation-heavy scans.
// Shared execution fuses within a class (and lets interactive lookups ride
// on a covering scan); class-aware atom sizing keys off it too.
enum class ServiceClass {
  kInteractive,  // lookup, comparison: cheap point reads
  kScan,         // moving-average, aggregation: computation over a range
};

inline ServiceClass ServiceClassOf(QueryType type) {
  return (type == QueryType::kMovingAverage ||
          type == QueryType::kAggregation)
             ? ServiceClass::kScan
             : ServiceClass::kInteractive;
}

std::string ToString(ServiceClass service_class);

// The answer of a fused scan, produced once by the group leader at commit
// and fanned out to every waiter. Immutable after construction: waiters
// share the buffer and must never mutate it (enforced by the
// fused-result-mutation lint rule).
struct FusionResult {
  TxnId leader = 0;
  std::vector<ItemId> items;   // the leader's (covering) item set
  std::vector<double> values;  // item values at scan completion
  SimTime scan_complete = 0;
};

struct Transaction {
  TxnId id = 0;
  TxnKind kind = TxnKind::kQuery;
  TxnState state = TxnState::kPending;
  SimTime arrival = 0;
  // Full CPU demand of one uninterrupted execution.
  SimDuration service_time = 0;
  // Remaining CPU demand of the current attempt (== service_time after a
  // restart, less after a preempt-resume).
  SimDuration remaining = 0;
  // Number of 2PL-HP restarts suffered.
  int restarts = 0;
  // Bumped on every scheduler enqueue; lets queues with lazy deletion tell
  // live entries from stale ones (see TxnQueue).
  uint64_t enqueue_epoch = 0;
  // CPU currently executing this transaction (valid iff state == kRunning;
  // -1 otherwise). Maintained by the server's dispatch/complete paths so
  // cross-CPU aborts (update invalidation, 2PL-HP restarts) find their
  // processor in O(1).
  int32_t cpu = -1;
  // The queue currently holding this transaction's live entry, or nullptr.
  // Maintained by TxnQueue; a transaction is live in at most one queue.
  TxnQueue* live_queue = nullptr;
  // Tenant tier this transaction was submitted under.
  TenantId tenant = 0;
};

struct Query : Transaction {
  QueryType type = QueryType::kLookup;
  std::vector<ItemId> items;
  QualityContract qc;
  // Absolute drop deadline (arrival + lifetime), set by the server.
  SimTime lifetime_deadline = kSimTimeMax;
  // Commit-time outcome (valid once state == kCommitted).
  SimTime commit_time = 0;
  double staleness = 0.0;
  QualityContract::Evaluation profit;

  // Shared execution (DESIGN.md §13). While state == kFused this query is a
  // member of the fusion group led by `fused_into`; after settlement both
  // leader and members hold the shared immutable scan answer. 0 / nullptr
  // for queries that never fused.
  TxnId fused_into = 0;
  std::shared_ptr<const FusionResult> fused_result;

  // Fused-result cache (DESIGN.md §14). Non-zero iff this query was
  // answered from the cache at submit time: `cache_source` is the committed
  // scan that produced the cached result and `cached_commit_time` its
  // commit instant — the anchor the QoD contract is settled against
  // (staleness is charged from the cached data's age, never from "now").
  TxnId cache_source = 0;
  SimTime cached_commit_time = 0;

  SimDuration ResponseTime() const { return commit_time - arrival; }
};

struct Update : Transaction {
  ItemId item = kInvalidItem;
  double value = 0.0;
  // The item's arrival sequence number assigned when this update arrived;
  // presented to Database::ApplyUpdate at commit.
  uint64_t item_arrival_seq = 0;
  // FIFO rank used by update queues. The register table has one entry per
  // data item, so an update that supersedes a pending one inherits its queue
  // position (set by the server); otherwise equals `arrival`.
  SimTime fifo_rank = 0;
  // When the update was applied (valid once state == kCommitted).
  SimTime commit_time = 0;

  // Freshness lag this update experienced (arrival -> applied).
  SimDuration ApplyLatency() const { return commit_time - arrival; }
};

// Queries and updates draw ids from disjoint spaces so an id alone reveals
// the transaction kind (bit 0: 0 = query, 1 = update).
inline TxnId QueryTxnId(uint64_t index) { return (index + 1) << 1; }
inline TxnId UpdateTxnId(uint64_t index) { return ((index + 1) << 1) | 1; }
inline bool IsUpdateTxnId(TxnId id) { return (id & 1) != 0; }
inline uint64_t TxnIndex(TxnId id) { return (id >> 1) - 1; }

}  // namespace webdb

#endif  // WEBDB_TXN_TRANSACTION_H_
