// 2PL-HP lock manager (Two Phase Locking - High Priority, Abbott &
// Garcia-Molina), specialized for the paper's workload: read-only queries
// acquire shared locks on their whole item set at dispatch; blind updates
// acquire one exclusive lock.
//
// Conflict *detection* lives here; conflict *resolution* (restarting the
// lower-priority holder, dropping the older update) is driven by the server,
// which knows the schedulers' current priorities. With a single CPU, a
// conflict can only involve the transaction being dispatched and
// transactions that were preempted while holding locks.

#ifndef WEBDB_TXN_LOCK_MANAGER_H_
#define WEBDB_TXN_LOCK_MANAGER_H_

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/data_item.h"
#include "txn/transaction.h"

namespace webdb {

enum class LockMode { kShared, kExclusive };

class LockManager {
 public:
  LockManager() = default;

  // Transactions (other than `txn`) whose current locks conflict with `txn`
  // locking `items` in `mode`. Duplicates removed; order unspecified.
  std::vector<TxnId> Conflicts(TxnId txn, LockMode mode,
                               const std::vector<ItemId>& items) const;

  // Acquires locks on `items` in `mode`. All conflicts must have been
  // resolved (checked). Re-entrant acquisition by the same holder is a no-op
  // per item.
  void Acquire(TxnId txn, LockMode mode, const std::vector<ItemId>& items);

  // Releases every lock held by `txn` (commit, restart, or abort).
  void ReleaseAll(TxnId txn);

  bool HoldsAny(TxnId txn) const;
  // Exclusive holder of `item`, or 0.
  TxnId ExclusiveHolder(ItemId item) const;
  // Shared holders of `item` (order unspecified).
  std::vector<TxnId> SharedHolders(ItemId item) const;

  size_t NumLockedItems() const { return locks_.size(); }

  // Deep consistency audit (invariant [lock-table-consistent], DESIGN.md
  // §8): the per-item lock table and the per-transaction held-items index
  // must describe the same set of locks, no item may carry shared and
  // exclusive holders simultaneously (2PL-HP resolves every conflict before
  // Acquire), and no empty entry may linger. Aborts on violation. O(locks);
  // compiled in every build, called automatically under -DWEBDB_AUDIT=ON
  // and directly by tests.
  void AuditConsistency() const;

 private:
  struct ItemLocks {
    TxnId exclusive = 0;
    std::unordered_set<TxnId> shared;
    bool Empty() const { return exclusive == 0 && shared.empty(); }
  };

  std::unordered_map<ItemId, ItemLocks> locks_;
  std::unordered_map<TxnId, std::vector<ItemId>> held_;
};

}  // namespace webdb

#endif  // WEBDB_TXN_LOCK_MANAGER_H_
