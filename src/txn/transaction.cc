#include "txn/transaction.h"

namespace webdb {

std::string ToString(TxnKind kind) {
  return kind == TxnKind::kQuery ? "query" : "update";
}

std::string ToString(TxnState state) {
  switch (state) {
    case TxnState::kPending:
      return "pending";
    case TxnState::kQueued:
      return "queued";
    case TxnState::kRunning:
      return "running";
    case TxnState::kPreempted:
      return "preempted";
    case TxnState::kCommitted:
      return "committed";
    case TxnState::kDropped:
      return "dropped";
    case TxnState::kInvalidated:
      return "invalidated";
    case TxnState::kRejected:
      return "rejected";
    case TxnState::kShed:
      return "shed";
    case TxnState::kFused:
      return "fused";
  }
  return "?";
}

std::string ToString(QueryType type) {
  switch (type) {
    case QueryType::kLookup:
      return "lookup";
    case QueryType::kMovingAverage:
      return "moving-average";
    case QueryType::kComparison:
      return "comparison";
    case QueryType::kAggregation:
      return "aggregation";
  }
  return "?";
}

std::string ToString(ServiceClass service_class) {
  return service_class == ServiceClass::kScan ? "scan" : "interactive";
}

}  // namespace webdb
