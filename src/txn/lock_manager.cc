#include "txn/lock_manager.h"

#include <algorithm>

#include "util/logging.h"

namespace webdb {

std::vector<TxnId> LockManager::Conflicts(
    TxnId txn, LockMode mode, const std::vector<ItemId>& items) const {
  std::vector<TxnId> out;
  for (ItemId item : items) {
    auto it = locks_.find(item);
    if (it == locks_.end()) continue;
    const ItemLocks& entry = it->second;
    if (entry.exclusive != 0 && entry.exclusive != txn) {
      out.push_back(entry.exclusive);
    }
    if (mode == LockMode::kExclusive) {
      for (TxnId holder : entry.shared) {
        if (holder != txn) out.push_back(holder);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void LockManager::Acquire(TxnId txn, LockMode mode,
                          const std::vector<ItemId>& items) {
  WEBDB_CHECK(txn != 0);
  WEBDB_CHECK_MSG(Conflicts(txn, mode, items).empty(),
                  "Acquire with unresolved conflicts");
  auto& held = held_[txn];
  for (ItemId item : items) {
    ItemLocks& entry = locks_[item];
    if (mode == LockMode::kExclusive) {
      if (entry.exclusive == txn) continue;  // re-entrant
      entry.exclusive = txn;
    } else {
      if (!entry.shared.insert(txn).second) continue;  // re-entrant
    }
    held.push_back(item);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (ItemId item : it->second) {
    auto lit = locks_.find(item);
    WEBDB_CHECK(lit != locks_.end());
    ItemLocks& entry = lit->second;
    if (entry.exclusive == txn) entry.exclusive = 0;
    entry.shared.erase(txn);
    if (entry.Empty()) locks_.erase(lit);
  }
  held_.erase(it);
}

bool LockManager::HoldsAny(TxnId txn) const { return held_.count(txn) > 0; }

TxnId LockManager::ExclusiveHolder(ItemId item) const {
  auto it = locks_.find(item);
  return it == locks_.end() ? 0 : it->second.exclusive;
}

std::vector<TxnId> LockManager::SharedHolders(ItemId item) const {
  auto it = locks_.find(item);
  if (it == locks_.end()) return {};
  return std::vector<TxnId>(it->second.shared.begin(),
                            it->second.shared.end());
}

}  // namespace webdb
