#include "txn/lock_manager.h"

#include <algorithm>
#include <string>

#include "audit/invariant_auditor.h"
#include "util/logging.h"

namespace webdb {

std::vector<TxnId> LockManager::Conflicts(
    TxnId txn, LockMode mode, const std::vector<ItemId>& items) const {
  std::vector<TxnId> out;
  for (ItemId item : items) {
    auto it = locks_.find(item);
    if (it == locks_.end()) continue;
    const ItemLocks& entry = it->second;
    if (entry.exclusive != 0 && entry.exclusive != txn) {
      out.push_back(entry.exclusive);
    }
    if (mode == LockMode::kExclusive) {
      // lint:allow(unordered-serialization) collected, then sorted below
      for (TxnId holder : entry.shared) {
        if (holder != txn) out.push_back(holder);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void LockManager::Acquire(TxnId txn, LockMode mode,
                          const std::vector<ItemId>& items) {
  // Lock-table probe on every dispatch: the conflict re-scan is O(items)
  // and the server has just resolved conflicts itself, so this whole
  // precondition block is debug-tier (2PL-HP conflict-freedom).
  WEBDB_DCHECK(txn != 0);
  if constexpr (audit::kEnabled) {
    WEBDB_AUDIT_THAT(audit::Invariant::kConflictFree,
                     Conflicts(txn, mode, items).empty(),
                     "Acquire with unresolved conflicts by txn " +
                         std::to_string(txn));
  } else {
    WEBDB_DCHECK_MSG(Conflicts(txn, mode, items).empty(),
                     "Acquire with unresolved conflicts");
  }
  auto& held = held_[txn];
  for (ItemId item : items) {
    ItemLocks& entry = locks_[item];
    if (mode == LockMode::kExclusive) {
      if (entry.exclusive == txn) continue;  // re-entrant
      entry.exclusive = txn;
    } else {
      if (!entry.shared.insert(txn).second) continue;  // re-entrant
    }
    held.push_back(item);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (ItemId item : it->second) {
    auto lit = locks_.find(item);
    WEBDB_DCHECK(lit != locks_.end());
    ItemLocks& entry = lit->second;
    if (entry.exclusive == txn) entry.exclusive = 0;
    entry.shared.erase(txn);
    if (entry.Empty()) locks_.erase(lit);
  }
  held_.erase(it);
}

bool LockManager::HoldsAny(TxnId txn) const { return held_.count(txn) > 0; }

TxnId LockManager::ExclusiveHolder(ItemId item) const {
  auto it = locks_.find(item);
  return it == locks_.end() ? 0 : it->second.exclusive;
}

std::vector<TxnId> LockManager::SharedHolders(ItemId item) const {
  auto it = locks_.find(item);
  if (it == locks_.end()) return {};
  return std::vector<TxnId>(it->second.shared.begin(),
                            it->second.shared.end());
}

void LockManager::AuditConsistency() const {
  using audit::Invariant;
  // Count how many (txn, item) lock grants the table side describes; the
  // held_ side must describe exactly the same number, and every held item
  // must be found in the table — together that proves the two indexes are
  // the same relation (no leaked and no phantom locks).
  size_t table_grants = 0;
  // lint:allow(unordered-serialization) commutative grant count
  for (const auto& [item, entry] : locks_) {
    WEBDB_AUDIT_THAT(Invariant::kLockTableConsistent, !entry.Empty(),
                     "empty lock entry lingers for item " +
                         std::to_string(item));
    WEBDB_AUDIT_THAT(
        Invariant::kLockTableConsistent,
        entry.exclusive == 0 || entry.shared.empty(),
        "item " + std::to_string(item) + " has shared and exclusive holders");
    table_grants += entry.shared.size() + (entry.exclusive != 0 ? 1 : 0);
  }
  size_t held_grants = 0;
  // lint:allow(unordered-serialization) commutative grant count
  for (const auto& [txn, items] : held_) {
    WEBDB_AUDIT_THAT(Invariant::kLockTableConsistent, !items.empty(),
                     "txn " + std::to_string(txn) + " holds an empty set");
    held_grants += items.size();
    for (ItemId item : items) {
      auto it = locks_.find(item);
      const bool granted =
          it != locks_.end() && (it->second.exclusive == txn ||
                                 it->second.shared.count(txn) > 0);
      WEBDB_AUDIT_THAT(Invariant::kLockTableConsistent, granted,
                       "txn " + std::to_string(txn) + " lists item " +
                           std::to_string(item) +
                           " but the lock table does not grant it");
    }
  }
  WEBDB_AUDIT_THAT(Invariant::kLockTableConsistent,
                   table_grants == held_grants,
                   "lock table describes " + std::to_string(table_grants) +
                       " grants but held index describes " +
                       std::to_string(held_grants));
}

}  // namespace webdb
