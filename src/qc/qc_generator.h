// Random Quality-Contract generators matching the experimental setups of
// Section 5 of the paper: uniform parameter ranges (Figure 6), the nine
// QODmax% sweep points of Table 4 (Figures 7-8), and piecewise-constant
// time-varying preference schedules (Figure 9).

#ifndef WEBDB_QC_QC_GENERATOR_H_
#define WEBDB_QC_QC_GENERATOR_H_

#include <vector>

#include "qc/quality_contract.h"
#include "util/rng.h"
#include "util/time.h"

namespace webdb {

// Uniform ranges the four QC parameters are drawn from.
struct QcProfile {
  QcShape shape = QcShape::kStep;
  QcCombination combination = QcCombination::kQosIndependent;
  double qos_max_lo = 10.0;  // dollars
  double qos_max_hi = 50.0;
  double qod_max_lo = 10.0;
  double qod_max_hi = 50.0;
  SimDuration rt_max_lo = Millis(50);
  SimDuration rt_max_hi = Millis(100);
  double uu_max = 1.0;

  // Expected QOSmax% = E[qos_max] / (E[qos_max] + E[qod_max]).
  double ExpectedQosSharePct() const;
};

// The Figure 6 setup: qos_max, qod_max ~ U[$10, $50], rt_max ~ U[50, 100] ms,
// uu_max = 1.
QcProfile BalancedProfile(QcShape shape);

// The Table 4 setup for a given QoD share. `qod_share_pct` must be one of
// 0.1 ... 0.9 (a multiple of 0.1): qod_max ~ U[100p, 100p + 9],
// qos_max ~ U[100(1-p), 100(1-p) + 9].
QcProfile Table4Profile(double qod_share_pct, QcShape shape = QcShape::kStep);

// Draws contracts from a profile.
class QcGenerator {
 public:
  explicit QcGenerator(QcProfile profile);

  QualityContract Next(Rng& rng) const;

  const QcProfile& profile() const { return profile_; }

 private:
  QcProfile profile_;
};

// Piecewise-constant schedule of profiles over time, for the adaptability
// experiment (Section 5.2): each segment starts at `start` and uses its
// profile until the next segment.
class TimeVaryingQcGenerator {
 public:
  struct Segment {
    SimTime start;
    QcProfile profile;
  };

  // Requires at least one segment, segments sorted by ascending start, and
  // the first start at time 0.
  explicit TimeVaryingQcGenerator(std::vector<Segment> segments);

  // The Figure 9 schedule: `total` duration split into `intervals` equal
  // segments alternating qos:qod = 1:ratio and ratio:1 (starting QoD-heavy,
  // matching the low-high-low-high QoS trend in Fig. 9b).
  static TimeVaryingQcGenerator AlternatingPreference(SimDuration total,
                                                      int intervals,
                                                      double ratio,
                                                      QcShape shape);

  QualityContract Next(SimTime now, Rng& rng) const;
  const QcProfile& ProfileAt(SimTime now) const;
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  std::vector<Segment> segments_;
};

}  // namespace webdb

#endif  // WEBDB_QC_QC_GENERATOR_H_
