#include "qc/profit_ledger.h"

namespace webdb {

ProfitLedger::ProfitLedger()
    : qos_max_series_(Seconds(1)),
      qod_max_series_(Seconds(1)),
      qos_gained_series_(Seconds(1)),
      qod_gained_series_(Seconds(1)) {}

void ProfitLedger::OnQuerySubmitted(const QualityContract& qc, SimTime now) {
  ++queries_submitted_;
  qos_max_ += qc.qos_max();
  qod_max_ += qc.qod_max();
  qos_max_series_.Add(now, qc.qos_max());
  qod_max_series_.Add(now, qc.qod_max());
}

void ProfitLedger::OnQueryCommitted(const QualityContract::Evaluation& eval,
                                    SimTime now) {
  ++queries_committed_;
  qos_gained_ += eval.qos;
  qod_gained_ += eval.qod;
  qos_gained_series_.Add(now, eval.qos);
  qod_gained_series_.Add(now, eval.qod);
}

double ProfitLedger::QosPct() const {
  return total_max() <= 0.0 ? 0.0 : qos_gained_ / total_max();
}

double ProfitLedger::QodPct() const {
  return total_max() <= 0.0 ? 0.0 : qod_gained_ / total_max();
}

double ProfitLedger::TotalPct() const { return QosPct() + QodPct(); }

double ProfitLedger::QosMaxPct() const {
  return total_max() <= 0.0 ? 0.0 : qos_max_ / total_max();
}

double ProfitLedger::QodMaxPct() const {
  return total_max() <= 0.0 ? 0.0 : qod_max_ / total_max();
}

}  // namespace webdb
