// Quality Contracts (Section 2.2 of the paper).
//
// A QC attaches two non-increasing profit functions to a query: one over
// response time (QoS) and one over staleness (QoD). Evaluating the contract
// at commit time yields the profit the server earns from that query.
//
// Two combination modes are supported:
//  - QoS-Independent (paper default): QoD profit is earned regardless of the
//    QoS outcome, as long as the query commits before its lifetime deadline
//    (the deadline itself is enforced by the server, not the contract).
//  - QoS-Dependent: QoD profit is earned only when the QoS profit is > 0.

#ifndef WEBDB_QC_QUALITY_CONTRACT_H_
#define WEBDB_QC_QUALITY_CONTRACT_H_

#include <memory>
#include <string>

#include "qc/profit_function.h"
#include "util/time.h"

namespace webdb {

enum class QcShape { kStep, kLinear };
enum class QcCombination { kQosIndependent, kQosDependent };

std::string ToString(QcShape shape);
std::string ToString(QcCombination combination);

class QualityContract {
 public:
  struct Evaluation {
    double qos = 0.0;
    double qod = 0.0;
    double Total() const { return qos + qod; }
  };

  // Zero contract: no profit on either dimension.
  QualityContract();

  // Contract from arbitrary (immutable) profit functions. The QoS function's
  // domain is response time in milliseconds; the QoD function's domain is the
  // configured staleness metric (#uu by default).
  QualityContract(std::shared_ptr<const ProfitFunction> qos_fn,
                  std::shared_ptr<const ProfitFunction> qod_fn,
                  QcCombination combination);

  // Four-parameter contracts of the paper (Figures 2 and 3).
  static QualityContract Make(QcShape shape, double qos_max,
                              SimDuration rt_max, double qod_max,
                              double uu_max,
                              QcCombination combination =
                                  QcCombination::kQosIndependent);

  // QoS profit for the given response time.
  double QosProfit(SimDuration response_time) const;
  // QoD profit for the given staleness (ignores the combination mode).
  double QodProfit(double staleness) const;

  // Combined evaluation honoring the combination mode.
  Evaluation Evaluate(SimDuration response_time, double staleness) const;

  double qos_max() const { return qos_fn_->MaxProfit(); }
  double qod_max() const { return qod_fn_->MaxProfit(); }
  double total_max() const { return qos_max() + qod_max(); }

  // Relative QC deadline: response time at/after which QoS profit is zero.
  SimDuration rt_max() const;
  // Staleness at/after which QoD profit is zero.
  double uu_max() const { return qod_fn_->Cutoff(); }

  QcCombination combination() const { return combination_; }

  const ProfitFunction& qos_fn() const { return *qos_fn_; }
  const ProfitFunction& qod_fn() const { return *qod_fn_; }

  std::string DebugString() const;

 private:
  std::shared_ptr<const ProfitFunction> qos_fn_;
  std::shared_ptr<const ProfitFunction> qod_fn_;
  QcCombination combination_;
};

}  // namespace webdb

#endif  // WEBDB_QC_QUALITY_CONTRACT_H_
