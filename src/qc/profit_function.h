// Non-increasing profit functions, the building block of Quality Contracts
// (Section 2.2 of the paper).
//
// A profit function maps a quality metric value x >= 0 (response time in
// milliseconds for QoS, staleness for QoD) to a dollar profit. The paper
// studies step and linear shapes; arbitrary user-defined non-increasing
// functions are supported through the ProfitFunction interface.
//
// Cutoff semantics: profit is earned strictly below the cutoff. For the
// staleness axis this matches the paper's reading of uu_max = 1 as "QoD
// profit is gained only when no update is missed".

#ifndef WEBDB_QC_PROFIT_FUNCTION_H_
#define WEBDB_QC_PROFIT_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

namespace webdb {

class ProfitFunction {
 public:
  virtual ~ProfitFunction() = default;

  // Profit for metric value `x` (>= 0). Must be non-increasing in x and
  // non-negative.
  virtual double Profit(double x) const = 0;

  // Maximum attainable profit (== Profit(0)).
  virtual double MaxProfit() const = 0;

  // Smallest metric value at and beyond which the profit is zero.
  virtual double Cutoff() const = 0;

  virtual std::string DebugString() const = 0;
};

// profit(x) = max_profit for x < cutoff, else 0.
class StepProfitFunction final : public ProfitFunction {
 public:
  // Requires max_profit >= 0 and cutoff > 0.
  StepProfitFunction(double max_profit, double cutoff);

  double Profit(double x) const override;
  double MaxProfit() const override { return max_profit_; }
  double Cutoff() const override { return cutoff_; }
  std::string DebugString() const override;

 private:
  double max_profit_;
  double cutoff_;
};

// profit(x) = max_profit * (1 - x / cutoff) for x < cutoff, else 0.
class LinearProfitFunction final : public ProfitFunction {
 public:
  // Requires max_profit >= 0 and cutoff > 0.
  LinearProfitFunction(double max_profit, double cutoff);

  double Profit(double x) const override;
  double MaxProfit() const override { return max_profit_; }
  double Cutoff() const override { return cutoff_; }
  std::string DebugString() const override;

 private:
  double max_profit_;
  double cutoff_;
};

// Piecewise-linear profit over explicit (metric, profit) control points:
// flat at points.front().profit before the first point, linear between
// consecutive points, 0 after the last. Generalizes both built-in shapes
// and lets service providers publish arbitrary tiered contracts.
class PiecewiseLinearProfitFunction final : public ProfitFunction {
 public:
  struct Point {
    double x;       // metric value
    double profit;  // profit at that value
  };

  // Requires: at least one point; strictly ascending x >= 0; non-increasing
  // non-negative profits.
  explicit PiecewiseLinearProfitFunction(std::vector<Point> points);

  double Profit(double x) const override;
  double MaxProfit() const override;
  double Cutoff() const override;
  std::string DebugString() const override;

 private:
  std::vector<Point> points_;
};

// profit(x) = max_profit * exp(-x / scale) above `floor_profit` share, then
// 0: a smooth "the sooner the better" contract with an explicit cutoff at
// the point where the decayed profit falls below floor_ratio * max_profit.
class ExponentialDecayProfitFunction final : public ProfitFunction {
 public:
  // Requires max_profit >= 0, scale > 0, 0 < floor_ratio < 1.
  ExponentialDecayProfitFunction(double max_profit, double scale,
                                 double floor_ratio = 0.01);

  double Profit(double x) const override;
  double MaxProfit() const override { return max_profit_; }
  double Cutoff() const override { return cutoff_; }
  std::string DebugString() const override;

 private:
  double max_profit_;
  double scale_;
  double cutoff_;
};

// A profit function that is identically zero (used for queries that attach
// no preference on one of the two quality dimensions).
class ZeroProfitFunction final : public ProfitFunction {
 public:
  ZeroProfitFunction() = default;

  double Profit(double) const override { return 0.0; }
  double MaxProfit() const override { return 0.0; }
  double Cutoff() const override { return 0.0; }
  std::string DebugString() const override { return "zero"; }
};

// Validates the non-increasing property by probing `fn` on a uniform grid of
// `samples` points over [0, hi]. Returns true when no increase is found.
// Used by tests and by debug assertions on user-supplied functions.
bool IsNonIncreasing(const ProfitFunction& fn, double hi, int samples);

}  // namespace webdb

#endif  // WEBDB_QC_PROFIT_FUNCTION_H_
