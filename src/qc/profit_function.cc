#include "qc/profit_function.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace webdb {

StepProfitFunction::StepProfitFunction(double max_profit, double cutoff)
    : max_profit_(max_profit), cutoff_(cutoff) {
  WEBDB_CHECK(max_profit >= 0.0);
  WEBDB_CHECK(cutoff > 0.0);
}

double StepProfitFunction::Profit(double x) const {
  WEBDB_CHECK(x >= 0.0);
  return x < cutoff_ ? max_profit_ : 0.0;
}

std::string StepProfitFunction::DebugString() const {
  std::ostringstream out;
  out << "step(max=$" << max_profit_ << ", cutoff=" << cutoff_ << ")";
  return out.str();
}

LinearProfitFunction::LinearProfitFunction(double max_profit, double cutoff)
    : max_profit_(max_profit), cutoff_(cutoff) {
  WEBDB_CHECK(max_profit >= 0.0);
  WEBDB_CHECK(cutoff > 0.0);
}

double LinearProfitFunction::Profit(double x) const {
  WEBDB_CHECK(x >= 0.0);
  return x < cutoff_ ? max_profit_ * (1.0 - x / cutoff_) : 0.0;
}

std::string LinearProfitFunction::DebugString() const {
  std::ostringstream out;
  out << "linear(max=$" << max_profit_ << ", cutoff=" << cutoff_ << ")";
  return out.str();
}

PiecewiseLinearProfitFunction::PiecewiseLinearProfitFunction(
    std::vector<Point> points)
    : points_(std::move(points)) {
  WEBDB_CHECK(!points_.empty());
  WEBDB_CHECK(points_.front().x >= 0.0);
  for (size_t i = 0; i < points_.size(); ++i) {
    WEBDB_CHECK(points_[i].profit >= 0.0);
    if (i > 0) {
      WEBDB_CHECK_MSG(points_[i].x > points_[i - 1].x,
                      "control points must have strictly ascending x");
      WEBDB_CHECK_MSG(points_[i].profit <= points_[i - 1].profit,
                      "profit must be non-increasing");
    }
  }
}

double PiecewiseLinearProfitFunction::Profit(double x) const {
  WEBDB_CHECK(x >= 0.0);
  if (x <= points_.front().x) return points_.front().profit;
  if (x >= points_.back().x) return 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    if (x <= points_[i].x) {
      const Point& a = points_[i - 1];
      const Point& b = points_[i];
      const double frac = (x - a.x) / (b.x - a.x);
      return a.profit + frac * (b.profit - a.profit);
    }
  }
  return 0.0;
}

double PiecewiseLinearProfitFunction::MaxProfit() const {
  return points_.front().profit;
}

double PiecewiseLinearProfitFunction::Cutoff() const {
  return points_.back().x;
}

std::string PiecewiseLinearProfitFunction::DebugString() const {
  std::ostringstream out;
  out << "piecewise(";
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) out << ' ';
    out << points_[i].x << ":" << points_[i].profit;
  }
  out << ")";
  return out.str();
}

ExponentialDecayProfitFunction::ExponentialDecayProfitFunction(
    double max_profit, double scale, double floor_ratio)
    : max_profit_(max_profit), scale_(scale) {
  WEBDB_CHECK(max_profit >= 0.0);
  WEBDB_CHECK(scale > 0.0);
  WEBDB_CHECK(floor_ratio > 0.0 && floor_ratio < 1.0);
  cutoff_ = scale * -std::log(floor_ratio);
}

double ExponentialDecayProfitFunction::Profit(double x) const {
  WEBDB_CHECK(x >= 0.0);
  if (x >= cutoff_) return 0.0;
  return max_profit_ * std::exp(-x / scale_);
}

std::string ExponentialDecayProfitFunction::DebugString() const {
  std::ostringstream out;
  out << "exp-decay(max=$" << max_profit_ << ", scale=" << scale_ << ")";
  return out.str();
}

bool IsNonIncreasing(const ProfitFunction& fn, double hi, int samples) {
  WEBDB_CHECK(hi > 0.0 && samples >= 2);
  double prev = fn.Profit(0.0);
  if (prev < 0.0) return false;
  for (int i = 1; i < samples; ++i) {
    const double x = hi * static_cast<double>(i) /
                     static_cast<double>(samples - 1);
    const double p = fn.Profit(x);
    if (p < 0.0 || p > prev + 1e-12) return false;
    prev = p;
  }
  return true;
}

}  // namespace webdb
