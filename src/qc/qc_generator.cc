#include "qc/qc_generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace webdb {

double QcProfile::ExpectedQosSharePct() const {
  const double eqos = (qos_max_lo + qos_max_hi) / 2.0;
  const double eqod = (qod_max_lo + qod_max_hi) / 2.0;
  const double total = eqos + eqod;
  return total <= 0.0 ? 0.0 : eqos / total;
}

QcProfile BalancedProfile(QcShape shape) {
  QcProfile p;
  p.shape = shape;
  return p;
}

QcProfile Table4Profile(double qod_share_pct, QcShape shape) {
  WEBDB_CHECK(qod_share_pct >= 0.05 && qod_share_pct <= 0.95);
  QcProfile p;
  p.shape = shape;
  const double qod_base = std::round(qod_share_pct * 100.0);
  const double qos_base = std::round((1.0 - qod_share_pct) * 100.0);
  p.qod_max_lo = qod_base;
  p.qod_max_hi = qod_base + 9.0;
  p.qos_max_lo = qos_base;
  p.qos_max_hi = qos_base + 9.0;
  return p;
}

QcGenerator::QcGenerator(QcProfile profile) : profile_(profile) {
  WEBDB_CHECK(profile_.qos_max_lo >= 0 &&
              profile_.qos_max_hi >= profile_.qos_max_lo);
  WEBDB_CHECK(profile_.qod_max_lo >= 0 &&
              profile_.qod_max_hi >= profile_.qod_max_lo);
  WEBDB_CHECK(profile_.rt_max_lo > 0 &&
              profile_.rt_max_hi >= profile_.rt_max_lo);
  WEBDB_CHECK(profile_.uu_max > 0);
}

QualityContract QcGenerator::Next(Rng& rng) const {
  const double qos_max =
      rng.Uniform(profile_.qos_max_lo, profile_.qos_max_hi);
  const double qod_max =
      rng.Uniform(profile_.qod_max_lo, profile_.qod_max_hi);
  const SimDuration rt_max =
      rng.UniformInt(profile_.rt_max_lo, profile_.rt_max_hi);
  return QualityContract::Make(profile_.shape, qos_max, rt_max, qod_max,
                               profile_.uu_max, profile_.combination);
}

TimeVaryingQcGenerator::TimeVaryingQcGenerator(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  WEBDB_CHECK(!segments_.empty());
  WEBDB_CHECK_MSG(segments_.front().start == 0,
                  "first segment must start at time 0");
  for (size_t i = 1; i < segments_.size(); ++i) {
    WEBDB_CHECK(segments_[i].start > segments_[i - 1].start);
  }
}

TimeVaryingQcGenerator TimeVaryingQcGenerator::AlternatingPreference(
    SimDuration total, int intervals, double ratio, QcShape shape) {
  WEBDB_CHECK(intervals >= 1 && ratio >= 1.0 && total > 0);
  std::vector<Segment> segments;
  segments.reserve(static_cast<size_t>(intervals));
  for (int i = 0; i < intervals; ++i) {
    QcProfile p;
    p.shape = shape;
    // Base side ~ U[$10, $19]; heavy side is `ratio` times that. Even
    // intervals are QoD-heavy so the QoS-profit trend over time is
    // low-high-low-high, as in Figure 9(b).
    const bool qod_heavy = (i % 2 == 0);
    const double lo = 10.0, hi = 19.0;
    if (qod_heavy) {
      p.qos_max_lo = lo;
      p.qos_max_hi = hi;
      p.qod_max_lo = lo * ratio;
      p.qod_max_hi = hi * ratio;
    } else {
      p.qos_max_lo = lo * ratio;
      p.qos_max_hi = hi * ratio;
      p.qod_max_lo = lo;
      p.qod_max_hi = hi;
    }
    segments.push_back(Segment{total * i / intervals, p});
  }
  return TimeVaryingQcGenerator(std::move(segments));
}

const QcProfile& TimeVaryingQcGenerator::ProfileAt(SimTime now) const {
  // Segments are few (single digits); linear scan is fine and obvious.
  const Segment* active = &segments_.front();
  for (const Segment& seg : segments_) {
    if (seg.start <= now) active = &seg;
  }
  return active->profile;
}

QualityContract TimeVaryingQcGenerator::Next(SimTime now, Rng& rng) const {
  return QcGenerator(ProfileAt(now)).Next(rng);
}

}  // namespace webdb
