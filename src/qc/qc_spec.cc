#include "qc/qc_spec.h"

#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

#include "qc/profit_function.h"
#include "util/logging.h"

namespace webdb {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> tokens;
  std::istringstream in(s);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

// Parses a float with optional leading '$'. Returns false on garbage.
bool ParseMoney(const std::string& s, double* out) {
  std::string body = s;
  if (!body.empty() && body[0] == '$') body = body.substr(1);
  if (body.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(body.c_str(), &end);
  return end == body.c_str() + body.size() && *out >= 0.0;
}

// Parses a duration with optional "ms" (default) or "s" suffix, to ms.
bool ParseDurationMs(const std::string& s, double* out_ms) {
  std::string body = s;
  double unit = 1.0;
  if (body.size() >= 2 && body.substr(body.size() - 2) == "ms") {
    body = body.substr(0, body.size() - 2);
  } else if (!body.empty() && body.back() == 's') {
    unit = 1000.0;
    body = body.substr(0, body.size() - 1);
  }
  if (body.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(body.c_str(), &end);
  if (end != body.c_str() + body.size() || value <= 0.0) return false;
  *out_ms = value * unit;
  return true;
}

// Parses "<money>@<cutoff>" into its halves.
bool SplitAt(const std::string& s, std::string* lhs, std::string* rhs) {
  const size_t at = s.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= s.size()) return false;
  *lhs = s.substr(0, at);
  *rhs = s.substr(at + 1);
  return true;
}

std::shared_ptr<const ProfitFunction> MakeFunction(const std::string& shape,
                                                   double max_profit,
                                                   double cutoff) {
  if (shape == "step") {
    return std::make_shared<StepProfitFunction>(max_profit, cutoff);
  }
  if (shape == "linear") {
    return std::make_shared<LinearProfitFunction>(max_profit, cutoff);
  }
  // "exp": the given cutoff acts as the decay scale.
  return std::make_shared<ExponentialDecayProfitFunction>(max_profit, cutoff);
}

}  // namespace

bool ParseQcSpec(const std::string& spec, QualityContract* qc,
                 std::string* error) {
  WEBDB_CHECK(qc != nullptr);
  const std::vector<std::string> tokens = SplitWhitespace(spec);
  if (tokens.empty()) return Fail(error, "empty spec");

  const std::string& shape = tokens[0];
  if (shape != "step" && shape != "linear" && shape != "exp") {
    return Fail(error, "unknown shape '" + shape +
                           "' (want step | linear | exp)");
  }

  std::shared_ptr<const ProfitFunction> qos_fn =
      std::make_shared<ZeroProfitFunction>();
  std::shared_ptr<const ProfitFunction> qod_fn =
      std::make_shared<ZeroProfitFunction>();
  QcCombination combination = QcCombination::kQosIndependent;

  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& field = tokens[i];
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Fail(error, "field '" + field + "' is not key=value");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "mode") {
      if (value == "independent") {
        combination = QcCombination::kQosIndependent;
      } else if (value == "dependent") {
        combination = QcCombination::kQosDependent;
      } else {
        return Fail(error, "bad mode '" + value + "'");
      }
    } else if (key == "qos" || key == "qod") {
      std::string money_str, cutoff_str;
      if (!SplitAt(value, &money_str, &cutoff_str)) {
        return Fail(error, "field '" + field + "' wants profit@cutoff");
      }
      double money = 0.0;
      if (!ParseMoney(money_str, &money)) {
        return Fail(error, "bad profit '" + money_str + "'");
      }
      double cutoff = 0.0;
      if (key == "qos") {
        if (!ParseDurationMs(cutoff_str, &cutoff)) {
          return Fail(error, "bad response-time cutoff '" + cutoff_str + "'");
        }
        qos_fn = MakeFunction(shape, money, cutoff);
      } else {
        char* end = nullptr;
        cutoff = std::strtod(cutoff_str.c_str(), &end);
        if (end != cutoff_str.c_str() + cutoff_str.size() || cutoff <= 0.0) {
          return Fail(error, "bad staleness cutoff '" + cutoff_str + "'");
        }
        qod_fn = MakeFunction(shape, money, cutoff);
      }
    } else {
      return Fail(error, "unknown field '" + key + "'");
    }
  }

  *qc = QualityContract(std::move(qos_fn), std::move(qod_fn), combination);
  return true;
}

}  // namespace webdb
