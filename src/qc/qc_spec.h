// Textual Quality-Contract specs, for tools, config files and examples.
//
// Grammar (whitespace-separated fields after the shape):
//
//   spec  := shape field*
//   shape := "step" | "linear" | "exp"
//   field := "qos=" money "@" duration     (QoS: profit @ rt cutoff)
//          | "qod=" money "@" number       (QoD: profit @ staleness cutoff)
//          | "mode=" ("independent" | "dependent")
//
//   money    := float, optional leading '$'
//   duration := float, optional unit "ms" (default) or "s"
//
// Examples:
//   "step qos=$1@50ms qod=$2@1"                 (Figure 2 of the paper)
//   "linear qos=2@0.05s qod=1@2 mode=dependent" (Figure 3, QoS-dependent)
//   "exp qos=4@20ms qod=6@1"   (exponential decay with that scale; the
//                               cutoff falls where profit decays to 1%)
//
// Omitted dimensions default to zero profit.

#ifndef WEBDB_QC_QC_SPEC_H_
#define WEBDB_QC_QC_SPEC_H_

#include <string>

#include "qc/quality_contract.h"

namespace webdb {

// Parses `spec` into `qc`. On failure returns false and, if `error` is
// non-null, stores a human-readable message; `qc` is left unspecified.
bool ParseQcSpec(const std::string& spec, QualityContract* qc,
                 std::string* error = nullptr);

}  // namespace webdb

#endif  // WEBDB_QC_QC_SPEC_H_
