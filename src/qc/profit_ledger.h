// Profit accounting (Table 1 of the paper).
//
// The ledger tracks, globally and as 1-second time series:
//   QOSmax / QODmax  — the maximal submitted profit (attributed at query
//                      arrival time),
//   QOS / QOD        — the gained profit (attributed at query commit time).
// The time series drive the Figure 9 plots; the global totals drive the
// profit-percentage bars of Figures 6-8.

#ifndef WEBDB_QC_PROFIT_LEDGER_H_
#define WEBDB_QC_PROFIT_LEDGER_H_

#include "qc/quality_contract.h"
#include "util/stats.h"
#include "util/time.h"

namespace webdb {

class ProfitLedger {
 public:
  ProfitLedger();

  // Called once per query when it is submitted.
  void OnQuerySubmitted(const QualityContract& qc, SimTime now);

  // Called once per query when it commits (dropped queries never earn, so
  // they simply never reach this).
  void OnQueryCommitted(const QualityContract::Evaluation& eval, SimTime now);

  // --- conservation counters ----------------------------------------------
  // One OnQuerySubmitted / OnQueryCommitted call per query, so these must
  // equal the server.queries.submitted / server.queries.committed registry
  // counters — the invariant auditor cross-checks them (DESIGN.md §8).
  uint64_t queries_submitted() const { return queries_submitted_; }
  uint64_t queries_committed() const { return queries_committed_; }

  // --- global totals (symbols of Table 1) ---------------------------------
  double qos_gained() const { return qos_gained_; }
  double qod_gained() const { return qod_gained_; }
  double total_gained() const { return qos_gained_ + qod_gained_; }
  double qos_max() const { return qos_max_; }
  double qod_max() const { return qod_max_; }
  double total_max() const { return qos_max_ + qod_max_; }

  // Gained profit as a fraction of the total submitted maximum (the bar
  // heights of Figures 6-8). All return 0 when nothing was submitted.
  double QosPct() const;
  double QodPct() const;
  double TotalPct() const;
  // Share of the submitted maximum that is QoS (the diagonal QOSmax% line of
  // Figures 7-8).
  double QosMaxPct() const;
  double QodMaxPct() const;

  // --- 1-second time series (Figure 9) ------------------------------------
  const TimeSeries& qos_max_series() const { return qos_max_series_; }
  const TimeSeries& qod_max_series() const { return qod_max_series_; }
  const TimeSeries& qos_gained_series() const { return qos_gained_series_; }
  const TimeSeries& qod_gained_series() const { return qod_gained_series_; }

 private:
  uint64_t queries_submitted_ = 0;
  uint64_t queries_committed_ = 0;
  double qos_gained_ = 0.0;
  double qod_gained_ = 0.0;
  double qos_max_ = 0.0;
  double qod_max_ = 0.0;
  TimeSeries qos_max_series_;
  TimeSeries qod_max_series_;
  TimeSeries qos_gained_series_;
  TimeSeries qod_gained_series_;
};

}  // namespace webdb

#endif  // WEBDB_QC_PROFIT_LEDGER_H_
