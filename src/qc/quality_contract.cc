#include "qc/quality_contract.h"

#include <sstream>

#include "util/logging.h"

namespace webdb {

std::string ToString(QcShape shape) {
  return shape == QcShape::kStep ? "step" : "linear";
}

std::string ToString(QcCombination combination) {
  return combination == QcCombination::kQosIndependent ? "qos-independent"
                                                       : "qos-dependent";
}

QualityContract::QualityContract()
    : qos_fn_(std::make_shared<ZeroProfitFunction>()),
      qod_fn_(std::make_shared<ZeroProfitFunction>()),
      combination_(QcCombination::kQosIndependent) {}

QualityContract::QualityContract(
    std::shared_ptr<const ProfitFunction> qos_fn,
    std::shared_ptr<const ProfitFunction> qod_fn, QcCombination combination)
    : qos_fn_(std::move(qos_fn)),
      qod_fn_(std::move(qod_fn)),
      combination_(combination) {
  WEBDB_CHECK(qos_fn_ != nullptr && qod_fn_ != nullptr);
}

QualityContract QualityContract::Make(QcShape shape, double qos_max,
                                      SimDuration rt_max, double qod_max,
                                      double uu_max,
                                      QcCombination combination) {
  WEBDB_CHECK(rt_max > 0);
  WEBDB_CHECK(uu_max > 0);
  const double rt_max_ms = ToMillis(rt_max);
  std::shared_ptr<const ProfitFunction> qos, qod;
  if (shape == QcShape::kStep) {
    qos = std::make_shared<StepProfitFunction>(qos_max, rt_max_ms);
    qod = std::make_shared<StepProfitFunction>(qod_max, uu_max);
  } else {
    qos = std::make_shared<LinearProfitFunction>(qos_max, rt_max_ms);
    qod = std::make_shared<LinearProfitFunction>(qod_max, uu_max);
  }
  return QualityContract(std::move(qos), std::move(qod), combination);
}

double QualityContract::QosProfit(SimDuration response_time) const {
  WEBDB_CHECK(response_time >= 0);
  return qos_fn_->Profit(ToMillis(response_time));
}

double QualityContract::QodProfit(double staleness) const {
  return qod_fn_->Profit(staleness);
}

QualityContract::Evaluation QualityContract::Evaluate(
    SimDuration response_time, double staleness) const {
  Evaluation eval;
  eval.qos = QosProfit(response_time);
  eval.qod = QodProfit(staleness);
  if (combination_ == QcCombination::kQosDependent && eval.qos <= 0.0) {
    eval.qod = 0.0;
  }
  return eval;
}

SimDuration QualityContract::rt_max() const {
  return static_cast<SimDuration>(qos_fn_->Cutoff() * 1000.0);
}

std::string QualityContract::DebugString() const {
  std::ostringstream out;
  out << "QC{qos=" << qos_fn_->DebugString()
      << ", qod=" << qod_fn_->DebugString() << ", " << ToString(combination_)
      << "}";
  return out.str();
}

}  // namespace webdb
