#include "cluster/replica_selector.h"

#include <cmath>

#include "util/logging.h"

namespace webdb {

std::string ToString(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kRoundRobin:
      return "round-robin";
    case RoutingPolicy::kLeastLoaded:
      return "least-loaded";
    case RoutingPolicy::kFreshest:
      return "freshest";
    case RoutingPolicy::kQcAware:
      return "qc-aware";
  }
  return "?";
}

RoutingPolicy RoutingPolicyFromName(const std::string& name) {
  for (RoutingPolicy policy :
       {RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastLoaded,
        RoutingPolicy::kFreshest, RoutingPolicy::kQcAware}) {
    if (ToString(policy) == name) return policy;
  }
  WEBDB_CHECK_MSG(false, "unknown routing policy name");
  return RoutingPolicy::kRoundRobin;
}

ReplicaSelector::ReplicaSelector(Options options) : options_(options) {
  WEBDB_CHECK(options_.typical_query_exec > 0);
  WEBDB_CHECK(options_.freshness_scale > 0.0);
}

double ReplicaSelector::ExpectedProfit(const QualityContract& qc,
                                       SimDuration exec_time,
                                       const ReplicaState& state) const {
  const SimDuration predicted_wait =
      state.queued_queries * options_.typical_query_exec +
      (state.cpu_busy ? options_.typical_query_exec / 2 : 0);
  const double expected_qos = qc.QosProfit(predicted_wait + exec_time);
  // A replica with a deep update backlog is likely to serve stale data:
  // discount the QoD potential exponentially in the backlog.
  const double freshness = std::exp(-static_cast<double>(state.queued_updates) /
                                    options_.freshness_scale);
  return expected_qos + qc.qod_max() * freshness;
}

size_t ReplicaSelector::Select(const QualityContract& qc,
                               SimDuration exec_time,
                               const std::vector<ReplicaState>& states) {
  WEBDB_CHECK(!states.empty());
  switch (options_.policy) {
    case RoutingPolicy::kRoundRobin: {
      const size_t pick = next_round_robin_ % states.size();
      ++next_round_robin_;
      return pick;
    }
    case RoutingPolicy::kLeastLoaded: {
      size_t best = 0;
      for (size_t i = 1; i < states.size(); ++i) {
        if (states[i].queued_queries < states[best].queued_queries) best = i;
      }
      return best;
    }
    case RoutingPolicy::kFreshest: {
      size_t best = 0;
      for (size_t i = 1; i < states.size(); ++i) {
        if (states[i].queued_updates < states[best].queued_updates) best = i;
      }
      return best;
    }
    case RoutingPolicy::kQcAware: {
      size_t best = 0;
      double best_score = ExpectedProfit(qc, exec_time, states[0]);
      for (size_t i = 1; i < states.size(); ++i) {
        const double score = ExpectedProfit(qc, exec_time, states[i]);
        if (score > best_score) {
          best = i;
          best_score = score;
        }
      }
      return best;
    }
  }
  WEBDB_CHECK_MSG(false, "unknown routing policy");
  return 0;
}

}  // namespace webdb
