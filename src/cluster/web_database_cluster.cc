#include "cluster/web_database_cluster.h"

#include <utility>

#include "util/logging.h"

namespace webdb {

WebDatabaseCluster::WebDatabaseCluster(int32_t num_items,
                                       SchedulerFactory scheduler_factory,
                                       ClusterConfig config)
    : config_(std::move(config)), selector_(config_.routing) {
  WEBDB_CHECK(config_.num_replicas >= 1);
  WEBDB_CHECK(scheduler_factory != nullptr);
  replicas_.reserve(static_cast<size_t>(config_.num_replicas));
  for (int i = 0; i < config_.num_replicas; ++i) {
    Replica replica;
    replica.db = std::make_unique<Database>(num_items);
    replica.scheduler = scheduler_factory();
    WEBDB_CHECK(replica.scheduler != nullptr);
    replica.server = std::make_unique<WebDatabaseServer>(
        &sim_, replica.db.get(), replica.scheduler.get(), config_.server);
    if (static_cast<size_t>(i) < config_.replica_delays.size()) {
      replica.delay = config_.replica_delays[static_cast<size_t>(i)];
      WEBDB_CHECK(replica.delay >= 0);
    }
    replicas_.push_back(std::move(replica));
  }
}

std::vector<ReplicaState> WebDatabaseCluster::SnapshotStates() const {
  std::vector<ReplicaState> states;
  states.reserve(replicas_.size());
  for (const Replica& replica : replicas_) {
    ReplicaState state;
    state.queued_queries = replica.scheduler->NumQueuedQueries();
    state.queued_updates = replica.scheduler->NumQueuedUpdates();
    state.cpu_busy = replica.server->IsCpuBusy();
    states.push_back(state);
  }
  return states;
}

Query* WebDatabaseCluster::SubmitQuery(QueryType type,
                                       std::vector<ItemId> items,
                                       QualityContract qc,
                                       SimDuration exec_time) {
  const size_t pick = selector_.Select(qc, exec_time, SnapshotStates());
  Replica& replica = replicas_[pick];
  ++replica.routed;
  return replica.server->SubmitQuery(type, std::move(items), std::move(qc),
                                     exec_time);
}

void WebDatabaseCluster::SubmitUpdate(ItemId item, double value,
                                      SimDuration exec_time) {
  for (Replica& replica : replicas_) {
    WebDatabaseServer* server = replica.server.get();
    if (replica.delay == 0) {
      server->SubmitUpdate(item, value, exec_time);
    } else {
      sim_.ScheduleAfter(replica.delay, [server, item, value, exec_time] {
        server->SubmitUpdate(item, value, exec_time);
      });
    }
  }
}

void WebDatabaseCluster::ReserveCapacity(size_t num_queries,
                                         size_t num_updates) {
  for (Replica& replica : replicas_) {
    replica.server->ReserveCapacity(num_queries, num_updates);
  }
}

const WebDatabaseServer& WebDatabaseCluster::replica(size_t i) const {
  WEBDB_CHECK(i < replicas_.size());
  return *replicas_[i].server;
}

WebDatabaseServer& WebDatabaseCluster::replica(size_t i) {
  WEBDB_CHECK(i < replicas_.size());
  return *replicas_[i].server;
}

int64_t WebDatabaseCluster::RoutedCount(size_t i) const {
  WEBDB_CHECK(i < replicas_.size());
  return replicas_[i].routed;
}

double WebDatabaseCluster::TotalGained() const {
  double total = 0.0;
  for (const Replica& replica : replicas_) {
    total += replica.server->ledger().total_gained();
  }
  return total;
}

double WebDatabaseCluster::TotalMax() const {
  double total = 0.0;
  for (const Replica& replica : replicas_) {
    total += replica.server->ledger().total_max();
  }
  return total;
}

double WebDatabaseCluster::TotalPct() const {
  const double max = TotalMax();
  return max <= 0.0 ? 0.0 : TotalGained() / max;
}

int64_t WebDatabaseCluster::TotalQueriesCommitted() const {
  int64_t total = 0;
  for (const Replica& replica : replicas_) {
    total += replica.server->metrics().queries_committed;
  }
  return total;
}

int64_t WebDatabaseCluster::TotalUpdatesApplied() const {
  int64_t total = 0;
  for (const Replica& replica : replicas_) {
    total += replica.server->metrics().updates_applied;
  }
  return total;
}

bool WebDatabaseCluster::IsQuiescent() const {
  for (const Replica& replica : replicas_) {
    if (!replica.server->IsQuiescent()) return false;
  }
  return true;
}

}  // namespace webdb
