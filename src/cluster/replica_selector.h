// Replica selection policies for the replicated web-database — the
// application of Quality Contracts the paper points to through its citation
// [17] (replication-aware query processing): given several replicas that
// each apply the full update stream independently, route each query to the
// replica expected to earn the most of its contract.

#ifndef WEBDB_CLUSTER_REPLICA_SELECTOR_H_
#define WEBDB_CLUSTER_REPLICA_SELECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qc/quality_contract.h"
#include "util/time.h"

namespace webdb {

enum class RoutingPolicy {
  kRoundRobin,   // ignore state, rotate
  kLeastLoaded,  // fewest queued queries (classic load balancing)
  kFreshest,     // smallest update backlog (QoD-only routing)
  kQcAware,      // maximize the query's expected QC profit (QoS and QoD)
};

std::string ToString(RoutingPolicy policy);

// Parses "round-robin" | "least-loaded" | "freshest" | "qc-aware"; aborts on
// unknown names.
RoutingPolicy RoutingPolicyFromName(const std::string& name);

// Per-replica state snapshot offered to the selector.
struct ReplicaState {
  int64_t queued_queries = 0;
  int64_t queued_updates = 0;
  bool cpu_busy = false;
};

class ReplicaSelector {
 public:
  struct Options {
    RoutingPolicy policy = RoutingPolicy::kQcAware;
    // Assumed per-query CPU demand for the queue-wait estimate.
    SimDuration typical_query_exec = Millis(7);
    // Update-backlog scale for the freshness estimate: a replica with
    // `freshness_scale` queued updates retains ~37% of the QoD potential.
    double freshness_scale = 32.0;
  };

  explicit ReplicaSelector(Options options);

  // Picks the replica for a query with contract `qc` and CPU demand
  // `exec_time`. `states` must be non-empty; ties break toward the lower
  // index, so routing is deterministic.
  size_t Select(const QualityContract& qc, SimDuration exec_time,
                const std::vector<ReplicaState>& states);

  // Expected profit of running the query on a replica in `state` (exposed
  // for tests and for the cluster's metrics).
  double ExpectedProfit(const QualityContract& qc, SimDuration exec_time,
                        const ReplicaState& state) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  size_t next_round_robin_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_CLUSTER_REPLICA_SELECTOR_H_
