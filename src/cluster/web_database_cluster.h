// A replicated web-database: N single-CPU replicas on one simulation clock,
// each holding a full copy of the data and applying the full update stream
// independently (the paper's model pushes all updates to all replicas as
// the master changes). Queries are routed to exactly one replica by a
// ReplicaSelector.
//
// Update propagation may carry a per-replica delivery delay, modelling the
// master-to-replica link; within a replica updates still arrive in source
// order (delays are per replica, not per message, so streams never
// reorder).

#ifndef WEBDB_CLUSTER_WEB_DATABASE_CLUSTER_H_
#define WEBDB_CLUSTER_WEB_DATABASE_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "cluster/replica_selector.h"
#include "db/database.h"
#include "qc/quality_contract.h"
#include "sched/scheduler.h"
#include "server/server_config.h"
#include "server/web_database_server.h"
#include "sim/simulator.h"

namespace webdb {

struct ClusterConfig {
  int num_replicas = 2;
  ReplicaSelector::Options routing;
  // Per-replica server configuration (shared by all replicas).
  ServerConfig server;
  // Master-to-replica delivery delay per replica; missing entries default
  // to 0 (update visible to the replica instantly).
  std::vector<SimDuration> replica_delays;
};

class WebDatabaseCluster {
 public:
  // Builds one scheduler per replica. `scheduler_factory` must produce a
  // fresh scheduler on every call.
  using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

  WebDatabaseCluster(int32_t num_items, SchedulerFactory scheduler_factory,
                     ClusterConfig config);

  WebDatabaseCluster(const WebDatabaseCluster&) = delete;
  WebDatabaseCluster& operator=(const WebDatabaseCluster&) = delete;

  // Routes the query to one replica (per the routing policy) at the current
  // simulation time. Returns the created query on that replica.
  Query* SubmitQuery(QueryType type, std::vector<ItemId> items,
                     QualityContract qc, SimDuration exec_time);

  // Fans the update out to every replica (honoring per-replica delays).
  void SubmitUpdate(ItemId item, double value, SimDuration exec_time);

  // Pre-sizes every replica's transaction pools and the shared event arena
  // for a workload of known shape. Updates fan out to all replicas, so each
  // replica sees all `num_updates`; queries route to one replica, so
  // `num_queries` is a conservative per-replica bound. Performance hint.
  void ReserveCapacity(size_t num_queries, size_t num_updates);

  Simulator& sim() { return sim_; }
  void Run() { sim_.Run(); }

  size_t NumReplicas() const { return replicas_.size(); }
  const WebDatabaseServer& replica(size_t i) const;
  WebDatabaseServer& replica(size_t i);
  // Queries routed to replica i so far.
  int64_t RoutedCount(size_t i) const;

  // --- aggregates over all replicas ----------------------------------------
  double TotalGained() const;
  double TotalMax() const;
  // Earned fraction of the submitted maximum across the cluster.
  double TotalPct() const;
  int64_t TotalQueriesCommitted() const;
  int64_t TotalUpdatesApplied() const;
  bool IsQuiescent() const;

 private:
  struct Replica {
    std::unique_ptr<Database> db;
    std::unique_ptr<Scheduler> scheduler;
    std::unique_ptr<WebDatabaseServer> server;
    SimDuration delay = 0;
    int64_t routed = 0;
  };

  std::vector<ReplicaState> SnapshotStates() const;

  ClusterConfig config_;
  Simulator sim_;
  ReplicaSelector selector_;
  std::vector<Replica> replicas_;
};

}  // namespace webdb

#endif  // WEBDB_CLUSTER_WEB_DATABASE_CLUSTER_H_
