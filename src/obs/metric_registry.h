// MetricRegistry: a flat namespace of named counters, gauges and histograms,
// plus a time-series of snapshots taken on the simulator clock.
//
// Naming convention (enforced by convention, documented in DESIGN.md §6):
//   server.*     transaction lifecycle counters owned by the server
//   scheduler.*  queue depths and policy state exported by the scheduler
//                (scheduler.quts.* for QUTS-specific state such as rho)
//   txn.*        cross-cutting transaction mechanics (restarts, preemptions)
//
// A name is bound to exactly one metric kind for the registry's lifetime;
// re-registering the same name with a different kind is a CHECK failure.
// Handles returned by Get* stay valid for the registry's lifetime.
//
// Threading contract: a MetricRegistry is single-threaded — no locking,
// by design, because the simulator is single-threaded and parallelism
// happens at the run level (exp/sweep_runner.h). Each experiment run owns
// its own registry (RunExperiment builds one per server), so sweep workers
// never share an instance. A sweep-level registry (SweepConfig::registry)
// must only be touched from the submitting thread after the pool joins.
// Sharing one instance across concurrently running threads is a data race.
// The contract is compiler-enforced through a util::SequenceGuard
// capability: the registry maps are WEBDB_GUARDED_BY(sequence_) and every
// method asserts the capability, so under Clang's -Wthread-safety a method
// that touches them without the assertion does not compile; Debug/audit
// builds additionally verify thread affinity at runtime (DetachSequence()
// releases it at legitimate cross-thread handoffs).

#ifndef WEBDB_OBS_METRIC_REGISTRY_H_
#define WEBDB_OBS_METRIC_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"
#include "util/sequence_guard.h"
#include "util/thread_annotations.h"
#include "util/time.h"

namespace webdb {

// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  Counter& operator++() {
    ++value_;
    return *this;
  }
  int64_t value() const { return value_; }
  operator int64_t() const { return value_; }  // NOLINT: thin-view reads

 private:
  int64_t value_ = 0;
};

// Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// One (time, name -> value) observation of every counter and gauge, plus
// count/p50/p99 summaries of every histogram. Values are sorted by name.
struct MetricSnapshot {
  SimTime time = 0;
  std::vector<std::pair<std::string, double>> values;

  // nullptr when `name` was not captured.
  const double* Find(const std::string& name) const;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Get-or-create. The same name always yields the same object; a kind
  // mismatch aborts.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `prototype` supplies the bucket layout on first registration and is
  // ignored afterwards.
  Histogram& GetHistogram(const std::string& name, Histogram prototype);

  bool Has(const std::string& name) const;
  size_t NumMetrics() const {
    sequence_.Check();
    return entries_.size();
  }
  std::vector<std::string> Names() const;

  // Current value of a counter or gauge; aborts on unknown names and on
  // histograms (use Snap() for their summaries).
  double Value(const std::string& name) const;

  // Captures every metric at `now`.
  MetricSnapshot Snap(SimTime now) const;

  // Appends Snap(now) to the snapshot series (the periodic sampler the
  // server drives off the simulator clock).
  void RecordSnapshot(SimTime now);
  const std::vector<MetricSnapshot>& series() const {
    sequence_.Check();
    return series_;
  }

  // Releases debug-build thread affinity at a synchronization point (e.g.
  // a sweep worker handing its registry to the submitting thread).
  void DetachSequence() const { sequence_.Detach(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  util::SequenceGuard sequence_;
  // std::map: snapshots iterate in sorted name order, deterministically.
  std::map<std::string, Entry> entries_ WEBDB_GUARDED_BY(sequence_);
  std::vector<MetricSnapshot> series_ WEBDB_GUARDED_BY(sequence_);
};

}  // namespace webdb

#endif  // WEBDB_OBS_METRIC_REGISTRY_H_
