#include "obs/metric_registry.h"

#include <algorithm>

#include "util/logging.h"

namespace webdb {

const double* MetricSnapshot::Find(const std::string& name) const {
  const auto it = std::lower_bound(
      values.begin(), values.end(), name,
      [](const std::pair<std::string, double>& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it == values.end() || it->first != name) return nullptr;
  return &it->second;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  sequence_.Check();
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kCounter;
    it->second.counter = std::make_unique<Counter>();
  }
  WEBDB_CHECK_MSG(it->second.kind == Kind::kCounter,
                  "metric name already bound to a different kind");
  return *it->second.counter;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  sequence_.Check();
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kGauge;
    it->second.gauge = std::make_unique<Gauge>();
  }
  WEBDB_CHECK_MSG(it->second.kind == Kind::kGauge,
                  "metric name already bound to a different kind");
  return *it->second.gauge;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name,
                                        Histogram prototype) {
  sequence_.Check();
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kHistogram;
    it->second.histogram = std::make_unique<Histogram>(std::move(prototype));
  }
  WEBDB_CHECK_MSG(it->second.kind == Kind::kHistogram,
                  "metric name already bound to a different kind");
  return *it->second.histogram;
}

bool MetricRegistry::Has(const std::string& name) const {
  sequence_.Check();
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> MetricRegistry::Names() const {
  sequence_.Check();
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

double MetricRegistry::Value(const std::string& name) const {
  sequence_.Check();
  const auto it = entries_.find(name);
  WEBDB_CHECK_MSG(it != entries_.end(), "unknown metric name");
  switch (it->second.kind) {
    case Kind::kCounter:
      return static_cast<double>(it->second.counter->value());
    case Kind::kGauge:
      return it->second.gauge->value();
    case Kind::kHistogram:
      WEBDB_CHECK_MSG(false, "Value() on a histogram; use Snap()");
  }
  return 0.0;
}

MetricSnapshot MetricRegistry::Snap(SimTime now) const {
  sequence_.Check();
  MetricSnapshot snapshot;
  snapshot.time = now;
  snapshot.values.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snapshot.values.emplace_back(
            name, static_cast<double>(entry.counter->value()));
        break;
      case Kind::kGauge:
        snapshot.values.emplace_back(name, entry.gauge->value());
        break;
      case Kind::kHistogram:
        snapshot.values.emplace_back(
            name + ".count",
            static_cast<double>(entry.histogram->TotalCount()));
        snapshot.values.emplace_back(name + ".p50",
                                     entry.histogram->Quantile(0.5));
        snapshot.values.emplace_back(name + ".p99",
                                     entry.histogram->Quantile(0.99));
        break;
    }
  }
  // Histogram expansion can break the map's ordering (e.g. "x.count" vs a
  // sibling "x.y"); restore it so MetricSnapshot::Find can binary-search.
  std::sort(snapshot.values.begin(), snapshot.values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snapshot;
}

void MetricRegistry::RecordSnapshot(SimTime now) {
  sequence_.Check();
  series_.push_back(Snap(now));
}

}  // namespace webdb
