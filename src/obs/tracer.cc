#include "obs/tracer.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

namespace webdb {

std::string ToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSubmit:
      return "submit";
    case TraceEventType::kEnqueue:
      return "enqueue";
    case TraceEventType::kDispatch:
      return "dispatch";
    case TraceEventType::kPreempt:
      return "preempt";
    case TraceEventType::kRestart:
      return "restart";
    case TraceEventType::kCommit:
      return "commit";
    case TraceEventType::kDrop:
      return "drop";
    case TraceEventType::kInvalidate:
      return "invalidate";
    case TraceEventType::kReject:
      return "reject";
    case TraceEventType::kShed:
      return "shed";
    case TraceEventType::kFuse:
      return "fuse";
    case TraceEventType::kCacheHit:
      return "cache-hit";
  }
  return "?";
}

bool TraceEventTypeFromName(const std::string& name, TraceEventType* out) {
  for (TraceEventType type :
       {TraceEventType::kSubmit, TraceEventType::kEnqueue,
        TraceEventType::kDispatch, TraceEventType::kPreempt,
        TraceEventType::kRestart, TraceEventType::kCommit,
        TraceEventType::kDrop, TraceEventType::kInvalidate,
        TraceEventType::kReject, TraceEventType::kShed,
        TraceEventType::kFuse, TraceEventType::kCacheHit}) {
    if (ToString(type) == name) {
      *out = type;
      return true;
    }
  }
  return false;
}

namespace {

void AppendEventJson(const TraceEvent& event, std::string* out) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "{\"t\":%" PRId64 ",\"txn\":%" PRIu64
                ",\"kind\":\"%s\",\"ev\":\"%s\",\"v\":%.6g}\n",
                event.time, event.txn, event.is_update ? "update" : "query",
                ToString(event.type).c_str(), event.detail);
  *out += buffer;
}

// Extracts the raw token after `"key":` in a single-line JSON object of the
// fixed schema above; quotes are stripped from string values. Returns false
// when the key is absent.
bool ExtractField(const std::string& line, const std::string& key,
                  std::string* value) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  size_t begin = pos + needle.size();
  if (begin >= line.size()) return false;
  bool quoted = line[begin] == '"';
  if (quoted) ++begin;
  size_t end = begin;
  while (end < line.size()) {
    const char c = line[end];
    if (quoted ? c == '"' : (c == ',' || c == '}')) break;
    ++end;
  }
  if (quoted && (end >= line.size() || line[end] != '"')) return false;
  *value = line.substr(begin, end - begin);
  return true;
}

bool ParseEventLine(const std::string& line, TraceEvent* event) {
  std::string t, txn, kind, ev, v;
  if (!ExtractField(line, "t", &t) || !ExtractField(line, "txn", &txn) ||
      !ExtractField(line, "kind", &kind) || !ExtractField(line, "ev", &ev) ||
      !ExtractField(line, "v", &v)) {
    return false;
  }
  if (kind != "query" && kind != "update") return false;
  if (!TraceEventTypeFromName(ev, &event->type)) return false;
  char* end = nullptr;
  event->time = static_cast<SimTime>(std::strtoll(t.c_str(), &end, 10));
  if (end == t.c_str() || *end != '\0') return false;
  event->txn = std::strtoull(txn.c_str(), &end, 10);
  if (end == txn.c_str() || *end != '\0') return false;
  event->detail = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') return false;
  event->is_update = kind == "update";
  return true;
}

}  // namespace

void Tracer::WriteJsonl(std::ostream& out) const {
  sequence_.Check();
  std::string buffer;
  buffer.reserve(events_.size() * 64);
  for (const TraceEvent& event : events_) AppendEventJson(event, &buffer);
  out << buffer;
}

void Tracer::WriteCsv(std::ostream& out) const {
  sequence_.Check();
  out << "time_us,txn,kind,event,value\n";
  char buffer[160];
  for (const TraceEvent& event : events_) {
    std::snprintf(buffer, sizeof(buffer),
                  "%" PRId64 ",%" PRIu64 ",%s,%s,%.6g\n", event.time,
                  event.txn, event.is_update ? "update" : "query",
                  ToString(event.type).c_str(), event.detail);
    out << buffer;
  }
}

bool Tracer::WriteJsonlFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  WriteJsonl(out);
  return out.good();
}

bool Tracer::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  WriteCsv(out);
  return out.good();
}

bool ReadTraceEventsJsonl(std::istream& in, std::vector<TraceEvent>* out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceEvent event;
    if (!ParseEventLine(line, &event)) return false;
    out->push_back(event);
  }
  return true;
}

bool ReadTraceEventsJsonlFile(const std::string& path,
                              std::vector<TraceEvent>* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  return ReadTraceEventsJsonl(in, out);
}

}  // namespace webdb
