// Tracer: append-only recorder of per-transaction lifecycle events, with
// JSONL and CSV exporters.
//
// The server holds a nullable Tracer* (ServerConfig::tracer); every hook is
// guarded by a null/enabled check, so runs without tracing pay a single
// predictable branch per lifecycle transition and allocate nothing.
//
// JSONL schema (one object per line, documented in DESIGN.md §6):
//   {"t":<microseconds>,"txn":<id>,"kind":"query"|"update",
//    "ev":"submit"|...,"v":<detail>}
//
// Threading contract: like MetricRegistry, a Tracer is single-threaded and
// unlocked. Parallel sweeps (exp/sweep_runner.h) require each run point to
// own its Tracer — never point two concurrently running experiments'
// ServerConfig::tracer at the same instance. The contract is
// compiler-enforced: every member is guarded by a util::SequenceGuard
// capability, every method asserts it, and Clang's -Wthread-safety rejects
// a new method that touches state without the assertion. Debug/audit
// builds also verify thread affinity at runtime; a run that hands a Tracer
// to another thread after a join calls DetachSequence() at the handoff.

#ifndef WEBDB_OBS_TRACER_H_
#define WEBDB_OBS_TRACER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_event.h"
#include "util/sequence_guard.h"
#include "util/thread_annotations.h"

namespace webdb {

class Tracer {
 public:
  explicit Tracer(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const {
    sequence_.Check();
    return enabled_;
  }
  void set_enabled(bool enabled) {
    sequence_.Check();
    enabled_ = enabled;
  }

  void Record(SimTime time, uint64_t txn, bool is_update, TraceEventType type,
              double detail = 0.0) {
    sequence_.Check();
    if (!enabled_) return;
    events_.push_back(TraceEvent{time, txn, is_update, type, detail});
  }

  const std::vector<TraceEvent>& events() const {
    sequence_.Check();
    return events_;
  }
  size_t NumEvents() const {
    sequence_.Check();
    return events_.size();
  }
  void Clear() {
    sequence_.Check();
    events_.clear();
  }

  // Releases debug-build thread affinity at a synchronization point (e.g.
  // the submitting thread exporting after a worker-built run joins).
  void DetachSequence() const { sequence_.Detach(); }

  // --- exporters -----------------------------------------------------------
  void WriteJsonl(std::ostream& out) const;
  void WriteCsv(std::ostream& out) const;  // header + one row per event
  // Convenience file variants; return false on IO errors.
  bool WriteJsonlFile(const std::string& path) const;
  bool WriteCsvFile(const std::string& path) const;

 private:
  util::SequenceGuard sequence_;
  bool enabled_ WEBDB_GUARDED_BY(sequence_);
  std::vector<TraceEvent> events_ WEBDB_GUARDED_BY(sequence_);
};

// Parses events written by Tracer::WriteJsonl. Stops at the first malformed
// line and returns false (events parsed so far are kept in `out`). Blank
// lines are skipped.
bool ReadTraceEventsJsonl(std::istream& in, std::vector<TraceEvent>* out);
bool ReadTraceEventsJsonlFile(const std::string& path,
                              std::vector<TraceEvent>* out);

}  // namespace webdb

#endif  // WEBDB_OBS_TRACER_H_
