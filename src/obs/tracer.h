// Tracer: append-only recorder of per-transaction lifecycle events, with
// JSONL and CSV exporters.
//
// The server holds a nullable Tracer* (ServerConfig::tracer); every hook is
// guarded by a null/enabled check, so runs without tracing pay a single
// predictable branch per lifecycle transition and allocate nothing.
//
// JSONL schema (one object per line, documented in DESIGN.md §6):
//   {"t":<microseconds>,"txn":<id>,"kind":"query"|"update",
//    "ev":"submit"|...,"v":<detail>}
//
// Threading contract: like MetricRegistry, a Tracer is single-threaded and
// unlocked. Parallel sweeps (exp/sweep_runner.h) require each run point to
// own its Tracer — never point two concurrently running experiments'
// ServerConfig::tracer at the same instance.

#ifndef WEBDB_OBS_TRACER_H_
#define WEBDB_OBS_TRACER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace webdb {

class Tracer {
 public:
  explicit Tracer(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void Record(SimTime time, uint64_t txn, bool is_update, TraceEventType type,
              double detail = 0.0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{time, txn, is_update, type, detail});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t NumEvents() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // --- exporters -----------------------------------------------------------
  void WriteJsonl(std::ostream& out) const;
  void WriteCsv(std::ostream& out) const;  // header + one row per event
  // Convenience file variants; return false on IO errors.
  bool WriteJsonlFile(const std::string& path) const;
  bool WriteCsvFile(const std::string& path) const;

 private:
  bool enabled_;
  std::vector<TraceEvent> events_;
};

// Parses events written by Tracer::WriteJsonl. Stops at the first malformed
// line and returns false (events parsed so far are kept in `out`). Blank
// lines are skipped.
bool ReadTraceEventsJsonl(std::istream& in, std::vector<TraceEvent>* out);
bool ReadTraceEventsJsonlFile(const std::string& path,
                              std::vector<TraceEvent>* out);

}  // namespace webdb

#endif  // WEBDB_OBS_TRACER_H_
