// Per-phase latency breakdown reconstructed from a lifecycle event stream:
// where did each transaction spend its life — waiting in queues, executing
// on the CPU, or losing work to 2PL-HP restarts?
//
// Phase definitions (per transaction, committed ones feed the percentiles):
//   queue-wait    sum of every queue-entry -> dispatch interval
//   service       total CPU occupancy (all dispatch -> preempt/commit
//                 intervals, including work later discarded by a restart and
//                 any configured dispatch overhead)
//   restart-lost  CPU time accrued and then discarded by 2PL-HP restarts
//                 (the kRestart event's detail, summed)
//   response      submit -> commit
//
// Used by `trace_tool summarize-spans` and the tracer tests.

#ifndef WEBDB_OBS_SPAN_SUMMARY_H_
#define WEBDB_OBS_SPAN_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace webdb {

// Order statistics over one phase, in milliseconds.
struct PhaseStats {
  int64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

// One transaction kind's lifecycle accounting.
struct SpanBreakdown {
  int64_t committed = 0;
  int64_t dropped = 0;      // queries only
  int64_t invalidated = 0;  // updates only
  int64_t rejected = 0;     // queries only
  int64_t shed = 0;         // queries only
  int64_t preempts = 0;
  int64_t restarts = 0;
  PhaseStats queue_wait_ms;
  PhaseStats service_ms;
  PhaseStats restart_lost_ms;
  PhaseStats response_ms;
};

struct SpanSummary {
  int64_t num_events = 0;
  SpanBreakdown queries;
  SpanBreakdown updates;
};

// Events may arrive in any order; they are stably sorted by time first.
SpanSummary SummarizeSpans(std::vector<TraceEvent> events);

// Multi-line human-readable rendering.
std::string RenderSpanSummary(const SpanSummary& summary);

}  // namespace webdb

#endif  // WEBDB_OBS_SPAN_SUMMARY_H_
