#include "obs/span_summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace webdb {

namespace {

// Streaming per-transaction state while walking the event sequence.
struct TxnSpan {
  SimTime submit = -1;
  SimTime queued_since = -1;     // earliest not-yet-dispatched queue entry
  SimTime dispatched_at = -1;    // valid while running
  bool running = false;
  double wait_us = 0.0;
  double service_us = 0.0;
  double lost_ms = 0.0;
};

struct PhaseSamples {
  std::vector<double> values;
  void Add(double v) { values.push_back(v); }
};

PhaseStats Finalize(PhaseSamples& samples) {
  PhaseStats stats;
  std::vector<double>& v = samples.values;
  stats.count = static_cast<int64_t>(v.size());
  if (v.empty()) return stats;
  std::sort(v.begin(), v.end());
  double sum = 0.0;
  for (double x : v) sum += x;
  stats.mean = sum / static_cast<double>(v.size());
  stats.max = v.back();
  const auto quantile = [&v](double q) {
    const double pos = q * static_cast<double>(v.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
  };
  stats.p50 = quantile(0.5);
  stats.p90 = quantile(0.9);
  stats.p99 = quantile(0.99);
  return stats;
}

struct BreakdownSamples {
  SpanBreakdown counts;
  PhaseSamples wait, service, lost, response;
};

void AppendPhase(const char* label, const PhaseStats& stats,
                 std::string* out) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "  %-12s n=%-7lld mean=%-9.3f p50=%-9.3f p90=%-9.3f "
                "p99=%-9.3f max=%.3f\n",
                label, static_cast<long long>(stats.count), stats.mean,
                stats.p50, stats.p90, stats.p99, stats.max);
  *out += buffer;
}

}  // namespace

SpanSummary SummarizeSpans(std::vector<TraceEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time < b.time;
                   });
  SpanSummary summary;
  summary.num_events = static_cast<int64_t>(events.size());

  std::unordered_map<uint64_t, TxnSpan> spans;
  BreakdownSamples queries, updates;

  for (const TraceEvent& event : events) {
    BreakdownSamples& bucket = event.is_update ? updates : queries;
    TxnSpan& span = spans[event.txn];
    switch (event.type) {
      case TraceEventType::kSubmit:
        span.submit = event.time;
        break;
      case TraceEventType::kEnqueue:
        // A restart's re-enqueue keeps the original waiting anchor: the
        // transaction never left the queue.
        if (span.queued_since < 0) span.queued_since = event.time;
        break;
      case TraceEventType::kDispatch:
        if (span.queued_since >= 0) {
          span.wait_us += static_cast<double>(event.time - span.queued_since);
          span.queued_since = -1;
        }
        span.running = true;
        span.dispatched_at = event.time;
        break;
      case TraceEventType::kPreempt:
        if (span.running) {
          span.service_us +=
              static_cast<double>(event.time - span.dispatched_at);
          span.running = false;
        }
        ++bucket.counts.preempts;
        break;
      case TraceEventType::kRestart:
        span.lost_ms += event.detail;
        ++bucket.counts.restarts;
        break;
      case TraceEventType::kCommit: {
        if (span.running) {
          span.service_us +=
              static_cast<double>(event.time - span.dispatched_at);
          span.running = false;
        }
        ++bucket.counts.committed;
        bucket.wait.Add(span.wait_us / 1e3);
        bucket.service.Add(span.service_us / 1e3);
        bucket.lost.Add(span.lost_ms);
        if (span.submit >= 0) {
          bucket.response.Add(static_cast<double>(event.time - span.submit) /
                              1e3);
        }
        spans.erase(event.txn);
        break;
      }
      case TraceEventType::kDrop:
        ++bucket.counts.dropped;
        spans.erase(event.txn);
        break;
      case TraceEventType::kInvalidate:
        if (span.running) {
          span.service_us +=
              static_cast<double>(event.time - span.dispatched_at);
        }
        ++bucket.counts.invalidated;
        spans.erase(event.txn);
        break;
      case TraceEventType::kReject:
        ++bucket.counts.rejected;
        spans.erase(event.txn);
        break;
      case TraceEventType::kShed:
        ++bucket.counts.shed;
        spans.erase(event.txn);
        break;
      case TraceEventType::kFuse:
        // The member leaves its queue to ride a fused scan; the wait until
        // its (group) commit still counts as queue wait, so the anchor
        // stays put.
        break;
    }
  }

  const auto finalize = [](BreakdownSamples& samples) {
    SpanBreakdown out = samples.counts;
    out.queue_wait_ms = Finalize(samples.wait);
    out.service_ms = Finalize(samples.service);
    out.restart_lost_ms = Finalize(samples.lost);
    out.response_ms = Finalize(samples.response);
    return out;
  };
  summary.queries = finalize(queries);
  summary.updates = finalize(updates);
  return summary;
}

std::string RenderSpanSummary(const SpanSummary& summary) {
  std::string out;
  char buffer[200];
  std::snprintf(buffer, sizeof(buffer), "%lld lifecycle events\n",
                static_cast<long long>(summary.num_events));
  out += buffer;

  std::snprintf(buffer, sizeof(buffer),
                "queries: committed=%lld dropped=%lld rejected=%lld "
                "shed=%lld preempts=%lld restarts=%lld\n",
                static_cast<long long>(summary.queries.committed),
                static_cast<long long>(summary.queries.dropped),
                static_cast<long long>(summary.queries.rejected),
                static_cast<long long>(summary.queries.shed),
                static_cast<long long>(summary.queries.preempts),
                static_cast<long long>(summary.queries.restarts));
  out += buffer;
  AppendPhase("queue-wait", summary.queries.queue_wait_ms, &out);
  AppendPhase("service", summary.queries.service_ms, &out);
  AppendPhase("restart-lost", summary.queries.restart_lost_ms, &out);
  AppendPhase("response", summary.queries.response_ms, &out);

  std::snprintf(buffer, sizeof(buffer),
                "updates: applied=%lld invalidated=%lld preempts=%lld "
                "restarts=%lld\n",
                static_cast<long long>(summary.updates.committed),
                static_cast<long long>(summary.updates.invalidated),
                static_cast<long long>(summary.updates.preempts),
                static_cast<long long>(summary.updates.restarts));
  out += buffer;
  AppendPhase("queue-wait", summary.updates.queue_wait_ms, &out);
  AppendPhase("service", summary.updates.service_ms, &out);
  AppendPhase("restart-lost", summary.updates.restart_lost_ms, &out);
  AppendPhase("response", summary.updates.response_ms, &out);
  out += "(all figures in milliseconds; percentiles over committed "
         "transactions)\n";
  return out;
}

}  // namespace webdb
