// Structured per-transaction lifecycle events recorded by obs::Tracer.
//
// One event marks one transition in the transaction lifecycle the server
// plays out (see server/web_database_server.h). Events carry the raw
// transaction id plus an explicit query/update flag so the observability
// layer stays independent of the txn layer's id-encoding convention.
//
// The `detail` field is event-specific, always in milliseconds where it is a
// duration:
//   kPreempt  remaining service time at the moment of preemption
//   kRestart  CPU time lost (work already accrued and discarded by 2PL-HP)
//   kCommit   staleness of the answer (queries) / apply latency (updates)
//   others    0

#ifndef WEBDB_OBS_TRACE_EVENT_H_
#define WEBDB_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <string>

#include "util/time.h"

namespace webdb {

enum class TraceEventType : uint8_t {
  kSubmit,      // client handed the transaction to the server
  kEnqueue,     // entered a scheduler queue (initial, or after preempt/restart)
  kDispatch,    // started (or resumed) on the CPU
  kPreempt,     // paused mid-execution, progress retained
  kRestart,     // 2PL-HP loser: progress discarded, back to the queue
  kCommit,      // query committed / update applied
  kDrop,        // query dropped at its lifetime deadline
  kInvalidate,  // update superseded by a newer arrival on the same item
  kReject,      // query refused by admission control
  kShed,        // queued query evicted by admission control under overload
  kFuse,        // queued query attached to a dispatching fused scan
  kCacheHit,    // query answered from the fused-result cache at submit
};

std::string ToString(TraceEventType type);

// Parses the ToString spelling; returns false on unknown names.
bool TraceEventTypeFromName(const std::string& name, TraceEventType* out);

struct TraceEvent {
  SimTime time = 0;       // microseconds since simulation start
  uint64_t txn = 0;       // transaction id (0 is never valid)
  bool is_update = false;
  TraceEventType type = TraceEventType::kSubmit;
  double detail = 0.0;

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.time == b.time && a.txn == b.txn && a.is_update == b.is_update &&
           a.type == b.type && a.detail == b.detail;
  }
};

}  // namespace webdb

#endif  // WEBDB_OBS_TRACE_EVENT_H_
