// Update priority policies for the low-level update queue.
//
// The paper uses FIFO ("for its simplicity"). A demand-weighted policy —
// updates on items that queries ask for more often run first — is provided
// for the ablation study; it takes a per-item weight table that the caller
// (server or experiment driver) maintains.

#ifndef WEBDB_SCHED_UPDATE_POLICY_H_
#define WEBDB_SCHED_UPDATE_POLICY_H_

#include <string>
#include <vector>

#include "txn/transaction.h"

namespace webdb {

enum class UpdatePolicy {
  kFifo,            // earlier arrival first (paper)
  kDemandWeighted,  // higher item weight first, FIFO within equal weight
};

std::string ToString(UpdatePolicy policy);

// Priority value for `u` under `policy`; higher pops first. `item_weights`
// may be null for kFifo; for kDemandWeighted it must cover u.item.
double UpdatePriority(const Update& u, UpdatePolicy policy,
                      const std::vector<double>* item_weights);

}  // namespace webdb

#endif  // WEBDB_SCHED_UPDATE_POLICY_H_
