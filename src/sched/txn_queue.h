// Priority queue of transactions with lazy deletion.
//
// Entries carry the priority computed at enqueue time plus the transaction's
// enqueue epoch; Pop/Peek skip entries whose epoch no longer matches (the
// transaction was removed, restarted or re-enqueued since). Higher priority
// pops first; ties break on earlier arrival, then lower id, so ordering is
// fully deterministic.

#ifndef WEBDB_SCHED_TXN_QUEUE_H_
#define WEBDB_SCHED_TXN_QUEUE_H_

#include <cstddef>
#include <queue>
#include <vector>

#include "txn/transaction.h"

namespace webdb {

class TxnQueue {
 public:
  TxnQueue() = default;

  // Enqueues `txn` with the given priority and bumps its enqueue epoch,
  // invalidating any stale entries for it in any queue. Precondition: `txn`
  // has no live entry in this queue (the caller pops or Removes first).
  void Push(Transaction* txn, double priority);

  // Highest-priority live entry, or nullptr when empty.
  Transaction* Peek() const;

  // Pops and returns the highest-priority live entry, or nullptr.
  Transaction* Pop();

  // Removes `txn`'s live entry from this queue (lazy: the heap entry turns
  // stale). Precondition: the transaction HAS a live entry and it is in
  // this queue.
  bool Remove(Transaction* txn);

  // Logically removes `txn` without depth bookkeeping — only for callers
  // that do not know which queue holds the entry. Prefer Remove().
  static void Invalidate(Transaction* txn) { ++txn->enqueue_epoch; }

  bool Empty() const { return Peek() == nullptr; }
  // Number of live entries, O(1). Accurate as long as removals go through
  // Pop()/Remove() rather than the static Invalidate().
  size_t Size() const { return live_; }
  // Exact live-entry count by heap scan; for tests.
  size_t SlowSize() const;

 private:
  struct Entry {
    double priority;
    SimTime arrival;
    TxnId id;
    uint64_t epoch;
    Transaction* txn;
    // std::priority_queue is a max-heap on operator<.
    bool operator<(const Entry& o) const {
      if (priority != o.priority) return priority < o.priority;
      if (arrival != o.arrival) return arrival > o.arrival;
      return id > o.id;
    }
  };

  bool IsLive(const Entry& e) const { return e.epoch == e.txn->enqueue_epoch; }
  void DropStale();

  // Mutable so Peek() can shed stale heads.
  mutable std::priority_queue<Entry> heap_;
  size_t live_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_SCHED_TXN_QUEUE_H_
