// Priority queue of transactions with lazy deletion and stale compaction.
//
// Entries carry the priority computed at enqueue time plus the transaction's
// enqueue epoch; Pop/Peek skip entries whose epoch no longer matches (the
// transaction was removed, restarted or re-enqueued since). Higher priority
// pops first; ties break on earlier arrival, then lower id, so ordering is
// fully deterministic.
//
// Removal is lazy (the heap entry turns into a tombstone) but no longer
// unbounded: whenever the tombstone count exceeds max(kCompactMinStale,
// live count), the heap is rebuilt with only live entries, so the heap
// never holds more than 2*Size() + kCompactMinStale entries even under
// 2PL-HP restart storms. Size() is exact — every removal goes through
// Pop()/Remove(), both of which maintain the transaction's live_queue
// backpointer, so a transaction can be in at most one queue and Remove()
// can assert it is this one.

#ifndef WEBDB_SCHED_TXN_QUEUE_H_
#define WEBDB_SCHED_TXN_QUEUE_H_

#include <cstddef>
#include <vector>

#include "txn/transaction.h"

namespace webdb {

class TxnQueue {
 public:
  // Tombstone slack tolerated before a rebuild; keeps tiny queues from
  // compacting on every removal.
  static constexpr size_t kCompactMinStale = 64;

  TxnQueue() = default;

  // Enqueues `txn` with the given priority and bumps its enqueue epoch.
  // Precondition: `txn` has no live entry in any queue (the caller pops or
  // Removes first).
  void Push(Transaction* txn, double priority);

  // Highest-priority live entry, or nullptr when empty. Logically const:
  // only sheds stale tombstones from the mutable heap.
  Transaction* Peek() const;

  // Pops and returns the highest-priority live entry, or nullptr.
  Transaction* Pop();

  // Removes `txn`'s live entry from this queue (lazy: the heap entry turns
  // stale). Precondition: the transaction HAS a live entry and it is in
  // this queue.
  bool Remove(Transaction* txn);

  bool Empty() const { return live_ == 0; }
  // Number of live entries, O(1) and exact.
  size_t Size() const { return live_; }
  // Exact live-entry count by heap scan; for tests.
  size_t SlowSize() const;
  // Total heap entries including tombstones; for the compaction tests.
  size_t HeapEntries() const { return heap_.size(); }

 private:
  struct Entry {
    double priority;
    SimTime arrival;
    TxnId id;
    uint64_t epoch;
    Transaction* txn;
    // Max-heap on operator< (std::push_heap and friends).
    bool operator<(const Entry& o) const {
      if (priority != o.priority) return priority < o.priority;
      if (arrival != o.arrival) return arrival > o.arrival;
      return id > o.id;
    }
  };

  bool IsLive(const Entry& e) const { return e.epoch == e.txn->enqueue_epoch; }
  void DropStale() const;
  void MaybeCompact();

  // Mutable so Peek() can shed stale heads without breaking its const
  // contract; live_ never changes on the const path.
  mutable std::vector<Entry> heap_;
  size_t live_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_SCHED_TXN_QUEUE_H_
