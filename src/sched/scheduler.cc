#include "sched/scheduler.h"

#include "obs/metric_registry.h"

namespace webdb {

void Scheduler::ExportStats(MetricRegistry& registry) const {
  registry.GetGauge("scheduler.queue.queries")
      .Set(static_cast<double>(NumQueuedQueries()));
  registry.GetGauge("scheduler.queue.updates")
      .Set(static_cast<double>(NumQueuedUpdates()));
}

}  // namespace webdb
