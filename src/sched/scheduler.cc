#include "sched/scheduler.h"

// Interface-only translation unit; keeps the header self-contained and gives
// the vtable a home when compilers want one.
