#include "sched/update_policy.h"

#include "util/logging.h"

namespace webdb {

std::string ToString(UpdatePolicy policy) {
  switch (policy) {
    case UpdatePolicy::kFifo:
      return "fifo";
    case UpdatePolicy::kDemandWeighted:
      return "demand-weighted";
  }
  return "?";
}

double UpdatePriority(const Update& u, UpdatePolicy policy,
                      const std::vector<double>* item_weights) {
  switch (policy) {
    case UpdatePolicy::kFifo:
      // fifo_rank, not arrival: a superseding update keeps the register
      // entry's (per-item) queue position.
      return -static_cast<double>(u.fifo_rank);
    case UpdatePolicy::kDemandWeighted: {
      WEBDB_CHECK(item_weights != nullptr);
      WEBDB_CHECK(u.item >= 0 &&
                  static_cast<size_t>(u.item) < item_weights->size());
      return (*item_weights)[static_cast<size_t>(u.item)];
    }
  }
  WEBDB_CHECK_MSG(false, "unknown update policy");
  return 0.0;
}

}  // namespace webdb
