// Preemptive dual-priority-queue schedulers with a fixed high side
// (Section 3.2): Update-High (UH) and Query-High (QH), plus the naive
// FIFO-UH / FIFO-QH variants used in the paper's introduction (Figure 1).
//
// The high-side queue preempts the low side: whenever a transaction of the
// high kind is waiting, a running low-kind transaction is preempted
// (preempt-resume; 2PL-HP data conflicts, resolved by the server, turn this
// into a restart). Within each queue the configured low-level policy orders
// transactions; the paper's configuration is VRD for queries, FIFO for
// updates.

#ifndef WEBDB_SCHED_DUAL_QUEUE_SCHEDULER_H_
#define WEBDB_SCHED_DUAL_QUEUE_SCHEDULER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sched/query_policy.h"
#include "sched/scheduler.h"
#include "sched/txn_queue.h"
#include "sched/update_policy.h"

namespace webdb {

class DualQueueScheduler final : public Scheduler {
 public:
  struct Options {
    TxnKind high_side = TxnKind::kUpdate;
    QueryPolicy query_policy = QueryPolicy::kVrd;
    UpdatePolicy update_policy = UpdatePolicy::kFifo;
    // Required when update_policy == kDemandWeighted; not owned, must
    // outlive the scheduler.
    const std::vector<double>* item_weights = nullptr;
    // Display name; empty derives one from the configuration.
    std::string name;
  };

  explicit DualQueueScheduler(Options options);

  std::string Name() const override { return name_; }

  void OnQueryArrival(Query* query, SimTime now) override;
  void OnUpdateArrival(Update* update, SimTime now) override;
  void Requeue(Transaction* txn, SimTime now) override;
  Transaction* PopNext(SimTime now) override;
  bool ShouldPreempt(const Transaction& running, SimTime now) override;
  bool HasWork() const override;
  int64_t NumQueuedQueries() const override {
    return static_cast<int64_t>(queries_.Size());
  }
  int64_t NumQueuedUpdates() const override {
    return static_cast<int64_t>(updates_.Size());
  }
  void RemoveQueued(Transaction* txn, SimTime now) override;

  size_t QueryQueueSize() const { return queries_.Size(); }
  size_t UpdateQueueSize() const { return updates_.Size(); }

 private:
  void Enqueue(Transaction* txn);
  TxnQueue& HighQueue();
  TxnQueue& LowQueue();

  Options options_;
  std::string name_;
  TxnQueue queries_;
  TxnQueue updates_;
};

// The four named configurations used in the paper.
std::unique_ptr<DualQueueScheduler> MakeUpdateHigh();    // UH
std::unique_ptr<DualQueueScheduler> MakeQueryHigh();     // QH
std::unique_ptr<DualQueueScheduler> MakeFifoUpdateHigh();  // FIFO-UH (Fig. 1)
std::unique_ptr<DualQueueScheduler> MakeFifoQueryHigh();   // FIFO-QH (Fig. 1)

}  // namespace webdb

#endif  // WEBDB_SCHED_DUAL_QUEUE_SCHEDULER_H_
