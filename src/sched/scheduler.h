// Scheduler interface between the web-database server and the scheduling
// policies (baselines in src/sched, QUTS in src/core).
//
// The server owns the CPU and the transaction lifecycle; the scheduler owns
// the waiting queues and the dispatch/preemption policy. The protocol:
//
//   arrival            -> OnQueryArrival / OnUpdateArrival
//   CPU idle           -> PopNext to pick the next transaction
//   after any arrival  -> ShouldPreempt(running) to decide queue preemption
//   preempt / restart  -> Requeue puts the transaction back in its queue
//   commit/drop/inval  -> OnTxnFinished
//   NextDecisionTime   -> lets time-sliced schedulers (QUTS) request a
//                         wake-up even when no arrival happens

#ifndef WEBDB_SCHED_SCHEDULER_H_
#define WEBDB_SCHED_SCHEDULER_H_

#include <string>

#include "txn/transaction.h"
#include "util/time.h"

namespace webdb {

class MetricRegistry;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string Name() const = 0;

  // A freshly arrived query/update enters the scheduler's queues.
  virtual void OnQueryArrival(Query* query, SimTime now) = 0;
  virtual void OnUpdateArrival(Update* update, SimTime now) = 0;

  // A preempted or restarted transaction re-enters its queue. (`txn` still
  // carries its remaining service time; restarted transactions have had it
  // reset by the server.)
  virtual void Requeue(Transaction* txn, SimTime now) = 0;

  // Pops the next transaction to dispatch, or nullptr when no work is
  // queued.
  virtual Transaction* PopNext(SimTime now) = 0;

  // True when `running` should be preempted in favor of whatever PopNext
  // would return now. Must not pop.
  virtual bool ShouldPreempt(const Transaction& running, SimTime now) = 0;

  // Next instant at which preemption must be re-evaluated even without an
  // arrival (e.g. QUTS atom expiry). kSimTimeMax when event-driven only.
  virtual SimTime NextDecisionTime(SimTime /*now*/) { return kSimTimeMax; }

  // A dispatched transaction left the system (committed, dropped, or
  // invalidated). Default: no-op.
  virtual void OnTxnFinished(const Transaction& /*txn*/, SimTime /*now*/) {}

  // True when at least one transaction is queued.
  virtual bool HasWork() const = 0;

  // Current queue depths (live entries), for metrics sampling. O(1).
  virtual int64_t NumQueuedQueries() const = 0;
  virtual int64_t NumQueuedUpdates() const = 0;

  // Removes a queued transaction (query lifetime drop, update
  // invalidation). Implementations with lazy queues only need the epoch
  // bump; exposed virtually so stateful schedulers can adjust accounting.
  virtual void RemoveQueued(Transaction* txn, SimTime now) = 0;

  // Publishes the scheduler's current state into `registry` under
  // `scheduler.*` names. Idempotent (gauges, last-write-wins): the server
  // calls it at every periodic snapshot and the experiment harness once at
  // the end of a run. The default exports the generic queue depths; policies
  // with internal state (QUTS) override and extend it.
  virtual void ExportStats(MetricRegistry& registry) const;
};

}  // namespace webdb

#endif  // WEBDB_SCHED_SCHEDULER_H_
