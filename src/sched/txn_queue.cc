#include "sched/txn_queue.h"

#include <algorithm>
#include <string>

#include "audit/invariant_auditor.h"
#include "util/logging.h"

namespace webdb {

void TxnQueue::Push(Transaction* txn, double priority) {
  WEBDB_CHECK(txn != nullptr);
  WEBDB_DCHECK_MSG(txn->live_queue == nullptr,
                   "Push on a transaction that is still live in a queue");
  ++txn->enqueue_epoch;
  txn->live_queue = this;
  heap_.push_back(
      Entry{priority, txn->arrival, txn->id, txn->enqueue_epoch, txn});
  std::push_heap(heap_.begin(), heap_.end());
  ++live_;
}

void TxnQueue::DropStale() const {
  while (!heap_.empty() && !IsLive(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
}

Transaction* TxnQueue::Peek() const {
  DropStale();
  return heap_.empty() ? nullptr : heap_.front().txn;
}

Transaction* TxnQueue::Pop() {
  DropStale();
  if (heap_.empty()) return nullptr;
  Transaction* txn = heap_.front().txn;
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.pop_back();
  WEBDB_CHECK(live_ > 0);
  WEBDB_DCHECK(txn->live_queue == this);
  txn->live_queue = nullptr;
  --live_;
  return txn;
}

bool TxnQueue::Remove(Transaction* txn) {
  WEBDB_CHECK(txn != nullptr);
  // The entry itself stays in the heap as a tombstone; the backpointer
  // proves the live entry is here, which keeps the O(1) depth math exact.
  WEBDB_DCHECK_MSG(txn->live_queue == this,
                   "Remove on a transaction with no live entry in this queue");
  ++txn->enqueue_epoch;
  txn->live_queue = nullptr;
  WEBDB_CHECK_MSG(live_ > 0, "Remove on a transaction with no live entry");
  --live_;
  MaybeCompact();
  return true;
}

void TxnQueue::MaybeCompact() {
  WEBDB_DCHECK(heap_.size() >= live_);
  const size_t stale = heap_.size() - live_;
  if (stale <= kCompactMinStale || stale <= live_) return;
  auto dead = std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) { return !IsLive(e); });
  heap_.erase(dead, heap_.end());
  std::make_heap(heap_.begin(), heap_.end());
  if constexpr (audit::kEnabled) {
    // After a rebuild every surviving entry is live, so the heap size must
    // equal the O(1) depth counter exactly — this is the conservation law
    // the old static Invalidate() path used to break.
    WEBDB_AUDIT_THAT(audit::Invariant::kTxnQueueConsistent,
                     heap_.size() == live_,
                     "compacted heap holds " + std::to_string(heap_.size()) +
                         " entries but live count is " +
                         std::to_string(live_));
  }
}

size_t TxnQueue::SlowSize() const {
  size_t n = 0;
  for (const Entry& e : heap_) {
    if (IsLive(e)) ++n;
  }
  return n;
}

}  // namespace webdb
