#include "sched/txn_queue.h"

#include "util/logging.h"

namespace webdb {

void TxnQueue::Push(Transaction* txn, double priority) {
  WEBDB_CHECK(txn != nullptr);
  ++txn->enqueue_epoch;
  heap_.push(Entry{priority, txn->arrival, txn->id, txn->enqueue_epoch, txn});
  ++live_;
}

void TxnQueue::DropStale() {
  while (!heap_.empty() && !IsLive(heap_.top())) heap_.pop();
}

Transaction* TxnQueue::Peek() const {
  const_cast<TxnQueue*>(this)->DropStale();
  return heap_.empty() ? nullptr : heap_.top().txn;
}

Transaction* TxnQueue::Pop() {
  DropStale();
  if (heap_.empty()) return nullptr;
  Transaction* txn = heap_.top().txn;
  heap_.pop();
  WEBDB_CHECK(live_ > 0);
  --live_;
  return txn;
}

bool TxnQueue::Remove(Transaction* txn) {
  WEBDB_CHECK(txn != nullptr);
  // The entry itself is invisible from here; the precondition (the caller
  // only removes transactions it knows are queued here) keeps the depth
  // math exact.
  ++txn->enqueue_epoch;
  WEBDB_CHECK_MSG(live_ > 0, "Remove on a transaction with no live entry");
  --live_;
  return true;
}

size_t TxnQueue::SlowSize() const {
  auto copy = heap_;
  size_t n = 0;
  while (!copy.empty()) {
    if (IsLive(copy.top())) ++n;
    copy.pop();
  }
  return n;
}

}  // namespace webdb
