#include "sched/admission.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "audit/invariant_auditor.h"
#include "util/logging.h"

namespace webdb {

// --- TenantSet -------------------------------------------------------------

TenantSet::TenantSet() : tiers_(1) {}

TenantSet::TenantSet(std::vector<TenantTier> tiers) : tiers_(std::move(tiers)) {
  WEBDB_CHECK(!tiers_.empty());
  for (const TenantTier& tier : tiers_) {
    WEBDB_CHECK(tier.admission_weight > 0.0);
    WEBDB_CHECK(tier.traffic_share >= 0.0);
  }
}

std::optional<TenantSet> TenantSet::Parse(const std::string& spec) {
  std::vector<TenantTier> tiers;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string field = spec.substr(pos, comma - pos);
    const size_t colon = field.find(':');
    if (field.empty() || colon == std::string::npos || colon == 0) {
      return std::nullopt;
    }
    TenantTier tier;
    tier.name = field.substr(0, colon);
    const std::string weight = field.substr(colon + 1);
    char* end = nullptr;
    tier.admission_weight = std::strtod(weight.c_str(), &end);
    if (weight.empty() || end == nullptr || *end != '\0' ||
        !(tier.admission_weight > 0.0)) {
      return std::nullopt;
    }
    tiers.push_back(std::move(tier));
    pos = comma + 1;
    if (comma == spec.size()) break;
  }
  if (tiers.empty()) return std::nullopt;
  return TenantSet(std::move(tiers));
}

const TenantTier& TenantSet::Tier(TenantId tenant) const {
  WEBDB_CHECK(tenant >= 0 && tenant < NumTiers());
  return tiers_[static_cast<size_t>(tenant)];
}

double TenantSet::WeightFor(TenantId tenant) const {
  if (tenant < 0 || tenant >= NumTiers()) return 1.0;
  return tiers_[static_cast<size_t>(tenant)].admission_weight;
}

std::string TenantSet::Spec() const {
  std::string out;
  char buffer[64];
  for (const TenantTier& tier : tiers_) {
    if (!out.empty()) out += ',';
    std::snprintf(buffer, sizeof(buffer), "%s:%g", tier.name.c_str(),
                  tier.admission_weight);
    out += buffer;
  }
  return out;
}

// --- Static policies -------------------------------------------------------

QueueCapAdmission::QueueCapAdmission(int64_t max_queued_queries)
    : max_queued_(max_queued_queries) {
  WEBDB_CHECK(max_queued_queries > 0);
}

bool QueueCapAdmission::Admit(const Query&, const AdmissionContext& context) {
  if (context.queued_queries < max_queued_) return true;
  ++rejected_;
  return false;
}

ExpectedProfitAdmission::ExpectedProfitAdmission(SimDuration typical_exec,
                                                 double min_worth)
    : typical_exec_(typical_exec), min_worth_(min_worth) {
  WEBDB_CHECK(typical_exec > 0);
  WEBDB_CHECK(min_worth >= 0.0);
}

bool ExpectedProfitAdmission::Admit(const Query& query,
                                    const AdmissionContext& context) {
  const int64_t backlog = context.queued_queries + (context.cpu_busy ? 1 : 0);
  const SimDuration predicted_wait = backlog * typical_exec_;
  const SimDuration predicted_rt = predicted_wait + query.service_time;
  const double reachable_qos = query.qc.QosProfit(predicted_rt);
  // QoD potential survives a missed deadline under QoS-Independent QCs.
  const double residual = reachable_qos + query.qc.qod_max();
  if (residual >= min_worth_) return true;
  ++rejected_;
  return false;
}

// --- Shed policy -----------------------------------------------------------

double ExpectedProfitShedPolicy::Worth(const Query& query, SimTime now) const {
  const SimDuration best_response = (now - query.arrival) + query.remaining;
  return query.qc.QosProfit(best_response) + query.qc.qod_max();
}

// --- DbfAdmission ----------------------------------------------------------

DbfAdmission::DbfAdmission(Options options)
    : num_cpus_(options.num_cpus),
      supply_factor_(options.supply_factor),
      tenants_(std::move(options.tenants)),
      shed_policy_(std::move(options.shed_policy)) {
  WEBDB_CHECK(num_cpus_ >= 1);
  WEBDB_CHECK(supply_factor_ > 0.0);
  if (shed_policy_ == nullptr) {
    shed_policy_ = std::make_unique<ExpectedProfitShedPolicy>();
  }
  demand_.resize(static_cast<size_t>(num_cpus_));
}

DbfAdmission::~DbfAdmission() = default;

std::optional<DbfAdmission::Entry> DbfAdmission::DemandOf(const Query& query,
                                                          SimTime now) const {
  const SimDuration rt_max = query.qc.rt_max();
  if (rt_max <= 0) return std::nullopt;  // no QoS deadline: best effort
  Entry entry;
  entry.deadline = now + rt_max;
  entry.demand = static_cast<SimDuration>(
      std::llround(static_cast<double>(query.service_time) *
                   tenants_.WeightFor(query.tenant)));
  entry.demand = std::max<SimDuration>(entry.demand, 1);
  entry.query = &query;
  return entry;
}

bool DbfAdmission::FitsWith(int32_t cpu, SimTime deadline, SimDuration demand,
                            SimTime now,
                            const std::vector<TxnId>& excluded) const {
  WEBDB_DCHECK(cpu >= 0 && cpu < num_cpus_);
  // Demand of planned evictions, grouped by node deadline on this lane.
  std::map<SimTime, SimDuration> minus;
  for (TxnId id : excluded) {
    const auto it = entries_.find(id);
    WEBDB_DCHECK(it != entries_.end());
    if (it->second.cpu == cpu) minus[it->second.deadline] += it->second.demand;
  }
  const auto supply = [&](SimTime t) {
    return static_cast<double>(t - now) * supply_factor_;
  };
  double cum = 0.0;
  bool placed = false;
  for (const auto& [t, d] : demand_[static_cast<size_t>(cpu)]) {
    if (!placed && t >= deadline) {
      cum += static_cast<double>(demand);
      if (cum > supply(deadline)) return false;
      placed = true;
    }
    const auto minus_it = minus.find(t);
    const SimDuration node =
        d - (minus_it == minus.end() ? 0 : minus_it->second);
    WEBDB_DCHECK(node >= 0);
    cum += static_cast<double>(node);
    // Nodes before the new deadline are unaffected by the new demand; only
    // the new node and later ones need (re)checking.
    if (placed && cum > supply(t)) return false;
  }
  if (!placed) {
    cum += static_cast<double>(demand);
    if (cum > supply(deadline)) return false;
  }
  return true;
}

void DbfAdmission::Register(const Query& query, const Entry& entry) {
  WEBDB_DCHECK(entries_.count(query.id) == 0);
  entries_[query.id] = entry;
  demand_[static_cast<size_t>(entry.cpu)][entry.deadline] += entry.demand;
}

void DbfAdmission::Release(TxnId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  const Entry& entry = it->second;
  auto& lane = demand_[static_cast<size_t>(entry.cpu)];
  const auto node = lane.find(entry.deadline);
  // The node may already be gone: PruneExpired drops past-deadline nodes
  // while their (late) queries are still in flight.
  if (node != lane.end()) {
    node->second -= entry.demand;
    if (node->second <= 0) lane.erase(node);
  }
  entries_.erase(it);
}

void DbfAdmission::PruneExpired(SimTime now) {
  for (auto& lane : demand_) {
    while (!lane.empty() && lane.begin()->first <= now) {
      lane.erase(lane.begin());
    }
  }
}

bool DbfAdmission::Admit(const Query& query, const AdmissionContext& context) {
  WEBDB_DCHECK(context.num_cpus == num_cpus_);
  PruneExpired(context.now);
  std::optional<Entry> want = DemandOf(query, context.now);
  if (!want) return true;  // no deadline, no demand: best effort

  static const std::vector<TxnId> kNoEvictions;
  for (int32_t cpu = 0; cpu < num_cpus_; ++cpu) {
    if (FitsWith(cpu, want->deadline, want->demand, context.now,
                 kNoEvictions)) {
      want->cpu = cpu;
      Register(query, *want);
      return true;
    }
  }

  // No lane fits. Plan the cheapest eviction set per lane among queued
  // queries whose tier-adjusted worth is strictly below the incoming one,
  // then commit the best plan — or reject without shedding anything.
  if (context.shed_sink == nullptr) {
    ++rejected_;
    return false;
  }
  const double incoming_worth = shed_policy_->Worth(query, context.now) /
                                tenants_.WeightFor(query.tenant);

  struct Candidate {
    double worth = 0.0;
    TxnId id = 0;
    int32_t cpu = -1;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    const double worth = shed_policy_->Worth(*entry.query, context.now) /
                         tenants_.WeightFor(entry.query->tenant);
    if (worth < incoming_worth) candidates.push_back({worth, id, entry.cpu});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.worth != b.worth) return a.worth < b.worth;
              return a.id < b.id;  // deterministic tie-break
            });

  std::vector<TxnId> best_plan;
  double best_cost = 0.0;
  int32_t best_cpu = -1;
  for (int32_t cpu = 0; cpu < num_cpus_; ++cpu) {
    std::vector<TxnId> plan;
    double cost = 0.0;
    bool feasible = false;
    for (const Candidate& candidate : candidates) {
      if (candidate.cpu != cpu) continue;
      plan.push_back(candidate.id);
      cost += candidate.worth;
      if (FitsWith(cpu, want->deadline, want->demand, context.now, plan)) {
        feasible = true;
        break;
      }
    }
    if (feasible && (best_cpu < 0 || cost < best_cost)) {
      best_plan = std::move(plan);
      best_cost = cost;
      best_cpu = cpu;
    }
  }
  if (best_cpu < 0) {
    ++rejected_;
    return false;
  }

  for (TxnId id : best_plan) {
    // The sink calls back OnQueryFinished, releasing the victim's demand.
    if (context.shed_sink->Shed(id)) {
      ++shed_;
    } else {
      // The server no longer holds the victim in a queue (desync would be a
      // bug upstream); drop our bookkeeping so the lane is freed anyway.
      Release(id);
    }
    WEBDB_DCHECK(entries_.count(id) == 0);
  }
  WEBDB_DCHECK(
      FitsWith(best_cpu, want->deadline, want->demand, context.now,
               kNoEvictions));
  want->cpu = best_cpu;
  Register(query, *want);
  return true;
}

void DbfAdmission::OnQueryFinished(const Query& query, SimTime now) {
  (void)now;
  Release(query.id);
}

DbfAdmission::Placement DbfAdmission::PlacementOf(TxnId id) const {
  const auto it = entries_.find(id);
  WEBDB_CHECK(it != entries_.end());
  return Placement{it->second.cpu, it->second.deadline, it->second.demand};
}

SimDuration DbfAdmission::QueuedDemand(int32_t cpu) const {
  WEBDB_CHECK(cpu >= 0 && cpu < num_cpus_);
  SimDuration total = 0;
  for (const auto& [deadline, demand] : demand_[static_cast<size_t>(cpu)]) {
    (void)deadline;
    total += demand;
  }
  return total;
}

bool DbfAdmission::DemandFits(int32_t cpu, SimTime from_deadline,
                              SimTime now) const {
  WEBDB_CHECK(cpu >= 0 && cpu < num_cpus_);
  double cum = 0.0;
  for (const auto& [t, d] : demand_[static_cast<size_t>(cpu)]) {
    cum += static_cast<double>(d);
    if (t < from_deadline) continue;
    if (cum > static_cast<double>(t - now) * supply_factor_) return false;
  }
  return true;
}

void DbfAdmission::AuditInvariants(SimTime now) const {
  // Per-lane node sums must be reproducible from the tracked entries,
  // modulo nodes dropped by PruneExpired (those only ever shrink a lane).
  std::vector<std::map<SimTime, SimDuration>> rebuilt(
      static_cast<size_t>(num_cpus_));
  for (const auto& [id, entry] : entries_) {
    (void)id;
    WEBDB_AUDIT_THAT(audit::Invariant::kAdmissionConservation,
                     entry.cpu >= 0 && entry.cpu < num_cpus_,
                     "dbf entry on unknown cpu lane");
    WEBDB_AUDIT_THAT(audit::Invariant::kAdmissionConservation,
                     entry.demand > 0 && entry.query != nullptr,
                     "dbf entry with empty demand or dangling query");
    rebuilt[static_cast<size_t>(entry.cpu)][entry.deadline] += entry.demand;
  }
  for (int32_t cpu = 0; cpu < num_cpus_; ++cpu) {
    for (const auto& [t, d] : demand_[static_cast<size_t>(cpu)]) {
      const auto& lane = rebuilt[static_cast<size_t>(cpu)];
      const auto it = lane.find(t);
      // Pruning is lazy (runs at the next Admit), so a node may outlive its
      // deadline here — but never its entries.
      (void)now;
      WEBDB_AUDIT_THAT(audit::Invariant::kAdmissionConservation,
                       it != lane.end() && it->second == d && d > 0,
                       "dbf demand node does not match tracked entries");
    }
  }
}

}  // namespace webdb
