#include "sched/admission.h"

#include "util/logging.h"

namespace webdb {

QueueCapAdmission::QueueCapAdmission(int64_t max_queued_queries)
    : max_queued_(max_queued_queries) {
  WEBDB_CHECK(max_queued_queries > 0);
}

bool QueueCapAdmission::Admit(const Query&, const AdmissionContext& context) {
  if (context.queued_queries < max_queued_) return true;
  ++rejected_;
  return false;
}

ExpectedProfitAdmission::ExpectedProfitAdmission(SimDuration typical_exec,
                                                 double min_worth)
    : typical_exec_(typical_exec), min_worth_(min_worth) {
  WEBDB_CHECK(typical_exec > 0);
  WEBDB_CHECK(min_worth >= 0.0);
}

bool ExpectedProfitAdmission::Admit(const Query& query,
                                    const AdmissionContext& context) {
  const SimDuration predicted_wait = context.queued_queries * typical_exec_;
  const SimDuration predicted_rt = predicted_wait + query.service_time;
  const double reachable_qos = query.qc.QosProfit(predicted_rt);
  // QoD potential survives a missed deadline under QoS-Independent QCs.
  const double residual = reachable_qos + query.qc.qod_max();
  if (residual >= min_worth_) return true;
  ++rejected_;
  return false;
}

}  // namespace webdb
