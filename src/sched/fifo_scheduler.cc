#include "sched/fifo_scheduler.h"

namespace webdb {

namespace {
// Earlier arrival first; requeued transactions (which only exist after 2PL-HP
// restarts, FIFO itself never preempts) keep their original arrival order.
// Updates order by fifo_rank rather than arrival: the register table has one
// entry per item, so a superseding update keeps the superseded one's
// position in the combined queue too.
double FifoPriority(const Transaction& txn) {
  if (txn.kind == TxnKind::kUpdate) {
    return -static_cast<double>(static_cast<const Update&>(txn).fifo_rank);
  }
  return -static_cast<double>(txn.arrival);
}
}  // namespace

int64_t& FifoScheduler::CounterFor(const Transaction& txn) {
  return txn.kind == TxnKind::kQuery ? queued_queries_ : queued_updates_;
}

void FifoScheduler::OnQueryArrival(Query* query, SimTime) {
  queue_.Push(query, FifoPriority(*query));
  ++queued_queries_;
}

void FifoScheduler::OnUpdateArrival(Update* update, SimTime) {
  queue_.Push(update, FifoPriority(*update));
  ++queued_updates_;
}

void FifoScheduler::Requeue(Transaction* txn, SimTime) {
  queue_.Push(txn, FifoPriority(*txn));
  ++CounterFor(*txn);
}

Transaction* FifoScheduler::PopNext(SimTime) {
  Transaction* txn = queue_.Pop();
  if (txn != nullptr) --CounterFor(*txn);
  return txn;
}

bool FifoScheduler::ShouldPreempt(const Transaction&, SimTime) {
  return false;  // non-preemptive
}

bool FifoScheduler::HasWork() const { return !queue_.Empty(); }

void FifoScheduler::RemoveQueued(Transaction* txn, SimTime) {
  queue_.Remove(txn);
  --CounterFor(*txn);
}

}  // namespace webdb
