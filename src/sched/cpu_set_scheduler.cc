#include "sched/cpu_set_scheduler.h"

#include "obs/metric_registry.h"
#include "util/logging.h"

namespace webdb {

void CpuSetScheduler::ExportStats(MetricRegistry& registry) const {
  registry.GetGauge("scheduler.queue.queries")
      .Set(static_cast<double>(NumQueuedQueries()));
  registry.GetGauge("scheduler.queue.updates")
      .Set(static_cast<double>(NumQueuedUpdates()));
}

SingleCpuAdapter::SingleCpuAdapter(Scheduler* inner) : inner_(inner) {
  WEBDB_CHECK(inner != nullptr);
}

SingleCpuAdapter::SingleCpuAdapter(std::unique_ptr<Scheduler> inner)
    : owned_(std::move(inner)), inner_(owned_.get()) {
  WEBDB_CHECK(inner_ != nullptr);
}

Transaction* SingleCpuAdapter::PopNext(CpuId cpu, SimTime now) {
  WEBDB_DCHECK(cpu == 0);
  (void)cpu;
  return inner_->PopNext(now);
}

bool SingleCpuAdapter::ShouldPreempt(CpuId cpu, const Transaction& running,
                                     SimTime now) {
  WEBDB_DCHECK(cpu == 0);
  (void)cpu;
  return inner_->ShouldPreempt(running, now);
}

SimTime SingleCpuAdapter::NextDecisionTime(CpuId cpu, SimTime now) {
  WEBDB_DCHECK(cpu == 0);
  (void)cpu;
  return inner_->NextDecisionTime(now);
}

}  // namespace webdb
