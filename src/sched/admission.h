// Admission control for incoming queries — the extension the paper points
// to through its UNIT citation [14] (user-centric transaction management):
// under overload it can be more profitable to reject a query outright than
// to let it rot in the queue past its deadline and lifetime.
//
// The server consults the controller (when configured) at submission time;
// rejected queries are dropped immediately, earn nothing, and still count
// against the submitted maximum (rejecting is not free).

#ifndef WEBDB_SCHED_ADMISSION_H_
#define WEBDB_SCHED_ADMISSION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "txn/transaction.h"
#include "util/time.h"

namespace webdb {

// Snapshot of the system state offered to the controller.
struct AdmissionContext {
  SimTime now = 0;
  int64_t queued_queries = 0;
  int64_t queued_updates = 0;
  bool cpu_busy = false;
};

class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  virtual std::string Name() const = 0;

  // True to admit `query` given the current state.
  virtual bool Admit(const Query& query, const AdmissionContext& context) = 0;
};

// Admits everything (the paper's implicit policy).
class AdmitAll final : public AdmissionController {
 public:
  std::string Name() const override { return "admit-all"; }
  bool Admit(const Query&, const AdmissionContext&) override { return true; }
};

// Rejects queries once the query queue exceeds a fixed depth.
class QueueCapAdmission final : public AdmissionController {
 public:
  explicit QueueCapAdmission(int64_t max_queued_queries);

  std::string Name() const override { return "queue-cap"; }
  bool Admit(const Query& query, const AdmissionContext& context) override;

  int64_t RejectedCount() const { return rejected_; }

 private:
  int64_t max_queued_;
  int64_t rejected_ = 0;
};

// Rejects queries whose QoS profit is already unreachable at submission
// time: the backlog-predicted response time exceeds rt_max and the
// remaining (QoD-only) potential is below `min_worth`. Uses a conservative
// wait estimate of queued_queries * typical_exec.
class ExpectedProfitAdmission final : public AdmissionController {
 public:
  // `typical_exec` is the assumed per-query CPU demand used for the wait
  // estimate; `min_worth` the smallest residual profit worth queueing for.
  ExpectedProfitAdmission(SimDuration typical_exec, double min_worth);

  std::string Name() const override { return "expected-profit"; }
  bool Admit(const Query& query, const AdmissionContext& context) override;

  int64_t RejectedCount() const { return rejected_; }

 private:
  SimDuration typical_exec_;
  double min_worth_;
  int64_t rejected_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_SCHED_ADMISSION_H_
