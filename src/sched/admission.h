// Admission control for incoming queries — the extension the paper points
// to through its UNIT citation [14] (user-centric transaction management):
// under overload it can be more profitable to reject a query outright than
// to let it rot in the queue past its deadline and lifetime.
//
// The server consults the controller (when configured) at submission time;
// rejected queries are dropped immediately, earn nothing, and still count
// against the submitted maximum (rejecting is not free).
//
// Beyond the static policies (queue cap, expected profit), DbfAdmission
// implements demand-bound-function feasibility in the style of per-worker
// deadline accounting in serverless runtimes: each CPU lane keeps demand
// nodes keyed by absolute deadline, a query is admitted only when its
// weighted CPU demand fits the remaining supply on some lane at every
// deadline at or after its own, and when it does not fit, the controller may
// shed already-queued lower-worth work through the server's ShedSink.
// Tenant tiers make the squeeze deliberately unfair: a tier's
// admission_weight multiplies the demand it is charged, so heavy-weight
// (free) tenants run out of room first while premium traffic still fits.

#ifndef WEBDB_SCHED_ADMISSION_H_
#define WEBDB_SCHED_ADMISSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "txn/transaction.h"
#include "util/time.h"

namespace webdb {

// One tenant tier (QC class). Tenant ids index the TenantSet's tiers.
struct TenantTier {
  std::string name = "default";
  // DBF demand multiplier: a tier charged weight w consumes w seconds of
  // demand budget per second of service time. Higher weight = squeezed out
  // of an overloaded lane first.
  double admission_weight = 1.0;
  // Relative share of trace arrivals assigned to this tier by
  // AssignTenants (src/exp/overload_scenarios.h); not used by admission.
  double traffic_share = 1.0;
};

// The run's tenant tiers. Default-constructed: one "default" tier of
// weight 1, which reproduces tenant-unaware behavior exactly.
class TenantSet {
 public:
  TenantSet();
  explicit TenantSet(std::vector<TenantTier> tiers);

  // Parses "name:weight,name:weight" (e.g. "free:4,premium:1"); tenant ids
  // follow the listed order. Returns nullopt on malformed specs.
  static std::optional<TenantSet> Parse(const std::string& spec);

  int32_t NumTiers() const { return static_cast<int32_t>(tiers_.size()); }
  const TenantTier& Tier(TenantId tenant) const;
  // Admission weight for `tenant`; unknown ids fall back to weight 1.
  double WeightFor(TenantId tenant) const;

  const std::vector<TenantTier>& tiers() const { return tiers_; }

  // Round-trips through Parse ("free:4,premium:1").
  std::string Spec() const;

 private:
  std::vector<TenantTier> tiers_;
};

// Server-side hook through which a controller evicts already-admitted,
// still-queued work. Implemented by WebDatabaseServer.
class ShedSink {
 public:
  virtual ~ShedSink() = default;

  // Evict the queued query `id` (state -> kShed, locks released, traced,
  // counted). Returns false when the query is no longer sheddable (already
  // running or finished). The sink calls the admission controller's
  // OnQueryFinished before returning, so internal demand is released.
  virtual bool Shed(TxnId id) = 0;
};

// Snapshot of the system state offered to the controller.
struct AdmissionContext {
  SimTime now = 0;
  int64_t queued_queries = 0;
  int64_t queued_updates = 0;
  bool cpu_busy = false;
  // Number of CPUs in the server's processor pool.
  int32_t num_cpus = 1;
  // Eviction hook for load-shedding controllers; may be null (then
  // controllers must admit or reject without shedding).
  ShedSink* shed_sink = nullptr;
};

class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  virtual std::string Name() const = 0;

  // True to admit `query` given the current state.
  virtual bool Admit(const Query& query, const AdmissionContext& context) = 0;

  // Called when an admitted query leaves the system (commit, lifetime drop,
  // or shed) so stateful controllers can release its resources.
  virtual void OnQueryFinished(const Query& query, SimTime now) {
    (void)query;
    (void)now;
  }

  // WEBDB_AUDIT hook: verify internal bookkeeping; called from the server's
  // strided audit pass.
  virtual void AuditInvariants(SimTime now) const { (void)now; }
};

// Admits everything (the paper's implicit policy).
class AdmitAll final : public AdmissionController {
 public:
  std::string Name() const override { return "admit-all"; }
  bool Admit(const Query&, const AdmissionContext&) override { return true; }
};

// Rejects queries once the query queue exceeds a fixed depth.
class QueueCapAdmission final : public AdmissionController {
 public:
  explicit QueueCapAdmission(int64_t max_queued_queries);

  std::string Name() const override { return "queue-cap"; }
  bool Admit(const Query& query, const AdmissionContext& context) override;

  int64_t RejectedCount() const { return rejected_; }

 private:
  int64_t max_queued_;
  int64_t rejected_ = 0;
};

// Rejects queries whose QoS profit is already unreachable at submission
// time: the backlog-predicted response time exceeds rt_max and the
// remaining (QoD-only) potential is below `min_worth`. Uses a conservative
// wait estimate of (queued_queries + cpu_busy) * typical_exec — the
// in-flight transaction counts toward the backlog too.
class ExpectedProfitAdmission final : public AdmissionController {
 public:
  // `typical_exec` is the assumed per-query CPU demand used for the wait
  // estimate; `min_worth` the smallest residual profit worth queueing for.
  ExpectedProfitAdmission(SimDuration typical_exec, double min_worth);

  std::string Name() const override { return "expected-profit"; }
  bool Admit(const Query& query, const AdmissionContext& context) override;

  int64_t RejectedCount() const { return rejected_; }

 private:
  SimDuration typical_exec_;
  double min_worth_;
  int64_t rejected_ = 0;
};

// Ranks queued work for eviction; lower Worth is shed first.
class ShedPolicy {
 public:
  virtual ~ShedPolicy() = default;
  virtual std::string Name() const = 0;
  // Value of keeping `query` queued at `now`.
  virtual double Worth(const Query& query, SimTime now) const = 0;
};

// Default policy: residual expected profit assuming immediate dispatch —
// the QoS profit still reachable given the time already spent waiting, plus
// the QoD potential (which survives a missed deadline under QoS-Independent
// contracts).
class ExpectedProfitShedPolicy final : public ShedPolicy {
 public:
  std::string Name() const override { return "expected-profit"; }
  double Worth(const Query& query, SimTime now) const override;
};

// Demand-bound-function admission (see the file comment). Each of the
// server's CPUs is a demand lane holding nodes keyed by absolute deadline
// (arrival + rt_max); a node's supply at time t is (t - now) *
// supply_factor. A query fits a lane when, with its weighted demand added,
// cumulative demand at its own deadline and at every later node stays
// within supply. Queries whose contract has no QoS deadline (rt_max <= 0)
// are best-effort: admitted without demand accounting.
//
// When no lane fits, the controller plans the cheapest eviction set per
// lane — queued queries whose tier-adjusted worth (ShedPolicy::Worth /
// admission_weight) is strictly below the incoming query's — and commits
// the plan through the context's ShedSink only if it actually frees enough
// supply; otherwise the incoming query is rejected and nothing is shed.
class DbfAdmission final : public AdmissionController {
 public:
  struct Options {
    // Demand lanes; must match the server topology's num_cpus (which is
    // also the default shard count of ShardedQutsScheduler).
    int32_t num_cpus = 1;
    // Fraction of each lane's wall-clock supply handed out to queries;
    // < 1 reserves headroom for updates and scheduling overhead.
    double supply_factor = 1.0;
    TenantSet tenants;
    // Eviction ranking; null selects ExpectedProfitShedPolicy.
    std::unique_ptr<ShedPolicy> shed_policy;
  };

  // Note: admitted queries are tracked by pointer until OnQueryFinished;
  // the caller must keep them at stable addresses (the server's txn pools
  // do).
  explicit DbfAdmission(Options options);
  ~DbfAdmission() override;

  std::string Name() const override { return "dbf"; }
  bool Admit(const Query& query, const AdmissionContext& context) override;
  void OnQueryFinished(const Query& query, SimTime now) override;
  void AuditInvariants(SimTime now) const override;

  int64_t RejectedCount() const { return rejected_; }
  int64_t ShedCount() const { return shed_; }
  int64_t TrackedCount() const { return static_cast<int64_t>(entries_.size()); }

  // Where an admitted deadline-bearing query's demand was registered.
  struct Placement {
    int32_t cpu = -1;
    SimTime deadline = 0;
    SimDuration demand = 0;  // weighted
  };
  bool IsTracked(TxnId id) const { return entries_.count(id) != 0; }
  Placement PlacementOf(TxnId id) const;

  // Total weighted demand currently registered on `cpu`.
  SimDuration QueuedDemand(int32_t cpu) const;

  // True when every demand node at/after `from_deadline` on `cpu` fits its
  // supply at `now` — the exact predicate Admit enforces for the admitted
  // query's lane (test/audit introspection).
  bool DemandFits(int32_t cpu, SimTime from_deadline, SimTime now) const;

  int32_t num_cpus() const { return num_cpus_; }
  const TenantSet& tenants() const { return tenants_; }
  const ShedPolicy& shed_policy() const { return *shed_policy_; }

 private:
  struct Entry {
    int32_t cpu = -1;
    SimTime deadline = 0;
    SimDuration demand = 0;
    const Query* query = nullptr;
  };

  // Weighted demand of `query` at `now`, or nullopt for best-effort
  // (no-deadline) queries.
  std::optional<Entry> DemandOf(const Query& query, SimTime now) const;
  // Feasibility of adding (deadline, demand) to `cpu` at `now`, with the
  // demand in `excluded` (TxnIds planned for eviction) ignored.
  bool FitsWith(int32_t cpu, SimTime deadline, SimDuration demand,
                SimTime now, const std::vector<TxnId>& excluded) const;
  void Register(const Query& query, const Entry& entry);
  void Release(TxnId id);
  // Drop demand nodes whose deadline has passed; their queries either
  // already missed QoS (commit with QoD only) or will be lifetime-dropped,
  // and a node with non-positive supply would poison the lane forever.
  void PruneExpired(SimTime now);

  int32_t num_cpus_;
  double supply_factor_;
  TenantSet tenants_;
  std::unique_ptr<ShedPolicy> shed_policy_;

  // deadline -> summed weighted demand, one map per CPU lane. std::map so
  // iteration order (ascending deadline) is deterministic.
  std::vector<std::map<SimTime, SimDuration>> demand_;
  std::map<TxnId, Entry> entries_;

  int64_t rejected_ = 0;
  int64_t shed_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_SCHED_ADMISSION_H_
