// Plain FIFO on a single combined queue (Section 3.1): queries and updates
// execute strictly in arrival order, non-preemptively.

#ifndef WEBDB_SCHED_FIFO_SCHEDULER_H_
#define WEBDB_SCHED_FIFO_SCHEDULER_H_

#include <string>

#include "sched/scheduler.h"
#include "sched/txn_queue.h"

namespace webdb {

class FifoScheduler final : public Scheduler {
 public:
  FifoScheduler() = default;

  std::string Name() const override { return "FIFO"; }

  void OnQueryArrival(Query* query, SimTime now) override;
  void OnUpdateArrival(Update* update, SimTime now) override;
  void Requeue(Transaction* txn, SimTime now) override;
  Transaction* PopNext(SimTime now) override;
  bool ShouldPreempt(const Transaction& running, SimTime now) override;
  bool HasWork() const override;
  int64_t NumQueuedQueries() const override { return queued_queries_; }
  int64_t NumQueuedUpdates() const override { return queued_updates_; }
  void RemoveQueued(Transaction* txn, SimTime now) override;

 private:
  int64_t& CounterFor(const Transaction& txn);

  TxnQueue queue_;
  int64_t queued_queries_ = 0;
  int64_t queued_updates_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_SCHED_FIFO_SCHEDULER_H_
