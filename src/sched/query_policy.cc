#include "sched/query_policy.h"

#include "util/logging.h"

namespace webdb {

std::string ToString(QueryPolicy policy) {
  switch (policy) {
    case QueryPolicy::kFifo:
      return "fifo";
    case QueryPolicy::kVrd:
      return "vrd";
    case QueryPolicy::kEdf:
      return "edf";
    case QueryPolicy::kProfitDensity:
      return "profit-density";
    case QueryPolicy::kSjf:
      return "sjf";
  }
  return "?";
}

double QueryPriority(const Query& q, QueryPolicy policy) {
  switch (policy) {
    case QueryPolicy::kFifo:
      return -static_cast<double>(q.arrival);
    case QueryPolicy::kVrd: {
      const double rt_max_ms = ToMillis(q.qc.rt_max());
      // A contract with no QoS cutoff yields priority 0 (lowest value).
      return rt_max_ms <= 0.0 ? 0.0 : q.qc.total_max() / rt_max_ms;
    }
    case QueryPolicy::kEdf:
      return -static_cast<double>(q.arrival + q.qc.rt_max());
    case QueryPolicy::kProfitDensity: {
      WEBDB_CHECK(q.service_time > 0);
      return q.qc.total_max() / static_cast<double>(q.service_time);
    }
    case QueryPolicy::kSjf:
      return -static_cast<double>(q.service_time);
  }
  WEBDB_CHECK_MSG(false, "unknown query policy");
  return 0.0;
}

}  // namespace webdb
