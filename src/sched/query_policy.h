// Query priority policies for the low-level query queue (Section 3.1 / 3.2).
//
// The paper uses VRD (Value over Relative Deadline, Haritsa et al.) for all
// dual-queue schedulers and for QUTS; FIFO, EDF and profit-density are
// provided for the ablation study — any of them plugs into the dual-queue
// and QUTS schedulers, which is exactly the "orthogonal lower level" point
// the paper makes.

#ifndef WEBDB_SCHED_QUERY_POLICY_H_
#define WEBDB_SCHED_QUERY_POLICY_H_

#include <string>

#include "txn/transaction.h"

namespace webdb {

enum class QueryPolicy {
  kFifo,           // earlier arrival first
  kVrd,            // (qos_max + qod_max) / rt_max, higher first (paper)
  kEdf,            // earlier absolute deadline (arrival + rt_max) first
  kProfitDensity,  // total_max / service_time, higher first
  kSjf,            // shortest service time first (profit-blind baseline)
};

std::string ToString(QueryPolicy policy);

// Priority value for `q` under `policy`; higher pops first.
double QueryPriority(const Query& q, QueryPolicy policy);

}  // namespace webdb

#endif  // WEBDB_SCHED_QUERY_POLICY_H_
