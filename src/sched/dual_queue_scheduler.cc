#include "sched/dual_queue_scheduler.h"

#include "util/logging.h"

namespace webdb {

DualQueueScheduler::DualQueueScheduler(Options options)
    : options_(std::move(options)) {
  if (options_.update_policy == UpdatePolicy::kDemandWeighted) {
    WEBDB_CHECK(options_.item_weights != nullptr);
  }
  if (!options_.name.empty()) {
    name_ = options_.name;
  } else {
    name_ = options_.high_side == TxnKind::kUpdate ? "UH" : "QH";
    name_ += "(" + ToString(options_.query_policy) + "/" +
             ToString(options_.update_policy) + ")";
  }
}

void DualQueueScheduler::Enqueue(Transaction* txn) {
  if (txn->kind == TxnKind::kQuery) {
    auto* query = static_cast<Query*>(txn);
    queries_.Push(query, QueryPriority(*query, options_.query_policy));
  } else {
    auto* update = static_cast<Update*>(txn);
    updates_.Push(update, UpdatePriority(*update, options_.update_policy,
                                         options_.item_weights));
  }
}

void DualQueueScheduler::OnQueryArrival(Query* query, SimTime) {
  Enqueue(query);
}

void DualQueueScheduler::OnUpdateArrival(Update* update, SimTime) {
  Enqueue(update);
}

void DualQueueScheduler::Requeue(Transaction* txn, SimTime) { Enqueue(txn); }

TxnQueue& DualQueueScheduler::HighQueue() {
  return options_.high_side == TxnKind::kQuery ? queries_ : updates_;
}

TxnQueue& DualQueueScheduler::LowQueue() {
  return options_.high_side == TxnKind::kQuery ? updates_ : queries_;
}

Transaction* DualQueueScheduler::PopNext(SimTime) {
  Transaction* txn = HighQueue().Pop();
  return txn != nullptr ? txn : LowQueue().Pop();
}

bool DualQueueScheduler::ShouldPreempt(const Transaction& running, SimTime) {
  // Preemption only across queues: a waiting high-kind transaction preempts
  // a running low-kind one. Within a queue execution is non-preemptive.
  return running.kind != options_.high_side && !HighQueue().Empty();
}

bool DualQueueScheduler::HasWork() const {
  return !queries_.Empty() || !updates_.Empty();
}

void DualQueueScheduler::RemoveQueued(Transaction* txn, SimTime) {
  (txn->kind == TxnKind::kQuery ? queries_ : updates_).Remove(txn);
}

std::unique_ptr<DualQueueScheduler> MakeUpdateHigh() {
  DualQueueScheduler::Options options;
  options.high_side = TxnKind::kUpdate;
  options.query_policy = QueryPolicy::kVrd;
  options.name = "UH";
  return std::make_unique<DualQueueScheduler>(options);
}

std::unique_ptr<DualQueueScheduler> MakeQueryHigh() {
  DualQueueScheduler::Options options;
  options.high_side = TxnKind::kQuery;
  options.query_policy = QueryPolicy::kVrd;
  options.name = "QH";
  return std::make_unique<DualQueueScheduler>(options);
}

std::unique_ptr<DualQueueScheduler> MakeFifoUpdateHigh() {
  DualQueueScheduler::Options options;
  options.high_side = TxnKind::kUpdate;
  options.query_policy = QueryPolicy::kFifo;
  options.name = "FIFO-UH";
  return std::make_unique<DualQueueScheduler>(options);
}

std::unique_ptr<DualQueueScheduler> MakeFifoQueryHigh() {
  DualQueueScheduler::Options options;
  options.high_side = TxnKind::kQuery;
  options.query_policy = QueryPolicy::kFifo;
  options.name = "FIFO-QH";
  return std::make_unique<DualQueueScheduler>(options);
}

}  // namespace webdb
