// CPU-set scheduling protocol: the multi-core generalization of the
// single-CPU Scheduler interface (sched/scheduler.h).
//
// The server owns a set of CPUs (sim/processor_pool.h) on one simulator
// clock; the scheduler owns the waiting queues and decides, per CPU, what
// runs next and when a running transaction yields. The protocol mirrors the
// single-CPU one, with every dispatch-side entry point taking the CpuId it
// is asked about:
//
//   arrival            -> OnQueryArrival / OnUpdateArrival   (CPU-agnostic:
//                         the scheduler routes work to its internal queues
//                         or shards itself)
//   CPU c idle         -> PopNext(c) to pick c's next transaction
//   after any arrival  -> ShouldPreempt(c, running) per busy CPU
//   preempt / restart  -> Requeue puts the transaction back in its queue
//   commit/drop/inval  -> OnTxnFinished
//   NextDecisionTime(c)-> per-CPU wake-up for time-sliced policies
//
// Determinism contract: the server iterates CPUs in fixed ascending order,
// so any scheduler whose own decisions are seeded-deterministic yields
// bit-identical schedules across runs.
//
// Single-CPU policies do not implement this interface; they stay on the
// plain Scheduler interface and are lifted onto it by SingleCpuAdapter
// below, which pins num_cpus() == 1 and forwards verbatim. The adapter is
// deliberately transparent: a server driving an adapted scheduler performs
// exactly the call sequence of the legacy single-CPU server, so pinned
// goldens and end-state hashes are preserved bit-for-bit.

#ifndef WEBDB_SCHED_CPU_SET_SCHEDULER_H_
#define WEBDB_SCHED_CPU_SET_SCHEDULER_H_

#include <memory>
#include <string>
#include <utility>

#include "sched/scheduler.h"
#include "txn/transaction.h"
#include "util/time.h"

namespace webdb {

class MetricRegistry;

// Index of a CPU in the server's processor pool, 0 <= cpu < num_cpus.
using CpuId = int32_t;

class CpuSetScheduler {
 public:
  virtual ~CpuSetScheduler() = default;

  virtual std::string Name() const = 0;

  // Number of CPUs this scheduler dispatches for; fixed for its lifetime.
  // The server sizes its processor pool from this.
  virtual int num_cpus() const = 0;

  // A freshly arrived query/update enters the scheduler's queues. The
  // scheduler owns the routing (e.g. symbol-hash sharding).
  virtual void OnQueryArrival(Query* query, SimTime now) = 0;
  virtual void OnUpdateArrival(Update* update, SimTime now) = 0;

  // A preempted or restarted transaction re-enters its queue (its home
  // queue/shard — a transaction stolen by another CPU still requeues home).
  virtual void Requeue(Transaction* txn, SimTime now) = 0;

  // Pops the next transaction for CPU `cpu`, or nullptr when the scheduler
  // has nothing for that CPU.
  virtual Transaction* PopNext(CpuId cpu, SimTime now) = 0;

  // True when `running` (on CPU `cpu`) should be preempted in favor of
  // whatever PopNext(cpu) would return now. Must not pop.
  virtual bool ShouldPreempt(CpuId cpu, const Transaction& running,
                             SimTime now) = 0;

  // Next instant at which CPU `cpu`'s decision must be re-evaluated even
  // without an arrival (e.g. QUTS atom expiry). kSimTimeMax when
  // event-driven only.
  virtual SimTime NextDecisionTime(CpuId /*cpu*/, SimTime /*now*/) {
    return kSimTimeMax;
  }

  // A dispatched transaction left the system. Default: no-op.
  virtual void OnTxnFinished(const Transaction& /*txn*/, SimTime /*now*/) {}

  // Shared-execution domain of `query`: two queries may only fuse when
  // their domains are equal and non-negative. Negative means "never fuse".
  // The default (one global domain) suits single-queue schedulers; the
  // sharded scheduler returns the shard when the whole item set lives on
  // one shard and -1 otherwise, so cross-shard queries never fuse.
  virtual int FusionDomain(const Query& /*query*/) const { return 0; }

  // Rendezvous domain for queries FusionDomain rejects (returns -1 for):
  // a stable, deterministic id shared by all queries with the same
  // *shard-set* signature, so cross-shard look-alikes can still fuse when
  // FusionConfig::cross_shard_rendezvous is on. Non-const: implementations
  // intern shard sets on first sight. Default: no rendezvous (-1). Ids
  // must never collide with FusionDomain's range.
  virtual int RendezvousDomain(const Query& /*query*/) { return -1; }

  // True when at least one transaction is queued on any shard/queue.
  virtual bool HasWork() const = 0;

  // Aggregate queue depths across all internal queues/shards. O(1).
  virtual int64_t NumQueuedQueries() const = 0;
  virtual int64_t NumQueuedUpdates() const = 0;

  // Removes a queued transaction (query lifetime drop, update
  // invalidation) from whichever queue holds it.
  virtual void RemoveQueued(Transaction* txn, SimTime now) = 0;

  // Publishes scheduler state into `registry` under `scheduler.*` names.
  // Idempotent (gauges, last-write-wins). The default exports the generic
  // queue depths.
  virtual void ExportStats(MetricRegistry& registry) const;
};

// Lifts a single-CPU Scheduler onto the CPU-set protocol with num_cpus()
// pinned to 1. Every call forwards verbatim (the CpuId, asserted 0, is
// dropped), so legacy policies — FIFO, UH/QH, dual-queue, QUTS — run
// unchanged behind the new server loop and reproduce their pinned goldens
// bit-identically.
//
// The adapter optionally owns the wrapped scheduler: the factory hands out
// self-contained adapters, while tests that want to inspect the inner
// policy after a run can keep ownership outside.
class SingleCpuAdapter final : public CpuSetScheduler {
 public:
  // Non-owning: `inner` must outlive the adapter.
  explicit SingleCpuAdapter(Scheduler* inner);
  // Owning.
  explicit SingleCpuAdapter(std::unique_ptr<Scheduler> inner);

  std::string Name() const override { return inner_->Name(); }
  int num_cpus() const override { return 1; }

  void OnQueryArrival(Query* query, SimTime now) override {
    inner_->OnQueryArrival(query, now);
  }
  void OnUpdateArrival(Update* update, SimTime now) override {
    inner_->OnUpdateArrival(update, now);
  }
  void Requeue(Transaction* txn, SimTime now) override {
    inner_->Requeue(txn, now);
  }
  Transaction* PopNext(CpuId cpu, SimTime now) override;
  bool ShouldPreempt(CpuId cpu, const Transaction& running,
                     SimTime now) override;
  SimTime NextDecisionTime(CpuId cpu, SimTime now) override;
  void OnTxnFinished(const Transaction& txn, SimTime now) override {
    inner_->OnTxnFinished(txn, now);
  }
  bool HasWork() const override { return inner_->HasWork(); }
  int64_t NumQueuedQueries() const override {
    return inner_->NumQueuedQueries();
  }
  int64_t NumQueuedUpdates() const override {
    return inner_->NumQueuedUpdates();
  }
  void RemoveQueued(Transaction* txn, SimTime now) override {
    inner_->RemoveQueued(txn, now);
  }
  void ExportStats(MetricRegistry& registry) const override {
    inner_->ExportStats(registry);
  }

  // The wrapped single-CPU policy (for rho-series extraction and tests).
  Scheduler* inner() { return inner_; }
  const Scheduler* inner() const { return inner_; }

 private:
  std::unique_ptr<Scheduler> owned_;  // null when non-owning
  Scheduler* inner_;
};

}  // namespace webdb

#endif  // WEBDB_SCHED_CPU_SET_SCHEDULER_H_
