// Trace representation: timestamped query and update records, the unit of
// input for the experiment harness. Synthetic traces stand in for the
// paper's proprietary Stock.com / NYSE traces (see DESIGN.md, section 2).

#ifndef WEBDB_TRACE_TRACE_H_
#define WEBDB_TRACE_TRACE_H_

#include <cstdint>
#include <vector>

#include "db/data_item.h"
#include "txn/transaction.h"
#include "util/time.h"

namespace webdb {

struct QueryRecord {
  SimTime arrival = 0;
  QueryType type = QueryType::kLookup;
  std::vector<ItemId> items;
  SimDuration exec_time = 0;
  // Tenant tier the query is submitted under (see sched/admission.h;
  // assigned by exp/overload_scenarios.h AssignTenants, 0 by default).
  TenantId tenant = 0;
};

struct UpdateRecord {
  SimTime arrival = 0;
  ItemId item = kInvalidItem;
  double value = 0.0;
  SimDuration exec_time = 0;
};

struct Trace {
  // Item-id space the records draw from ([0, num_items)).
  int32_t num_items = 0;
  // Both sorted by ascending arrival time.
  std::vector<QueryRecord> queries;
  std::vector<UpdateRecord> updates;

  // Latest arrival timestamp (0 for an empty trace).
  SimTime EndTime() const;

  // Validates ordering, id ranges and positive execution times; aborts on
  // violation (traces are trusted inputs everywhere downstream).
  void CheckValid() const;

  // Restriction of the trace to arrivals in [0, cutoff); used to run the
  // short adaptability experiment on a prefix of the full trace.
  Trace Prefix(SimTime cutoff) const;
};

}  // namespace webdb

#endif  // WEBDB_TRACE_TRACE_H_
