#include "trace/arrival_process.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/logging.h"

namespace webdb {

std::vector<SimTime> GenerateArrivals(Rng& rng, const RateProfile& profile,
                                      double rate_max, SimDuration duration) {
  WEBDB_CHECK(rate_max > 0.0 && duration > 0);
  std::vector<SimTime> arrivals;
  const double horizon = ToSeconds(duration);
  double t = 0.0;
  while (true) {
    t += rng.Exponential(rate_max);
    if (t >= horizon) break;
    const double rate = std::clamp(profile(t), 0.0, rate_max);
    if (rng.NextDouble() * rate_max < rate) {
      arrivals.push_back(static_cast<SimTime>(t * 1e6));
    }
  }
  return arrivals;
}

RateProfile WobblyRate(double base_rate, double wobble, int spike_count,
                       double spike_gain, double spike_len_s,
                       SimDuration duration, Rng& rng) {
  WEBDB_CHECK(base_rate > 0.0 && wobble >= 0.0 && wobble < 1.0);
  WEBDB_CHECK(spike_count >= 0 && spike_gain >= 1.0 && spike_len_s > 0.0);
  const double horizon = ToSeconds(duration);
  // Random phase so different seeds wobble differently.
  const double phase = rng.Uniform(0.0, 2.0 * 3.14159265358979323846);
  auto spikes = std::make_shared<std::vector<double>>();
  for (int i = 0; i < spike_count; ++i) {
    spikes->push_back(rng.Uniform(0.0, horizon));
  }
  return [=](double t) {
    double rate =
        base_rate *
        (1.0 + wobble * std::sin(phase + 2.0 * 3.14159265358979323846 * t /
                                             (horizon / 3.0)));
    for (double s : *spikes) {
      if (t >= s && t < s + spike_len_s) rate *= spike_gain;
    }
    return rate;
  };
}

RateProfile DecayingRate(double start_rate, double end_rate, double noise,
                         SimDuration duration, Rng& rng) {
  WEBDB_CHECK(start_rate > 0.0 && end_rate > 0.0);
  WEBDB_CHECK(noise >= 0.0 && noise < 1.0);
  const double horizon = ToSeconds(duration);
  // One multiplicative noise factor per second, fixed up front so the
  // profile is a pure function of t.
  auto factors = std::make_shared<std::vector<double>>();
  const size_t steps = static_cast<size_t>(horizon) + 1;
  factors->reserve(steps);
  for (size_t i = 0; i < steps; ++i) {
    factors->push_back(1.0 + rng.Uniform(-noise, noise));
  }
  return [=](double t) {
    const double frac = std::clamp(t / horizon, 0.0, 1.0);
    const double base = start_rate + (end_rate - start_rate) * frac;
    const size_t i =
        std::min(static_cast<size_t>(t), factors->size() - 1);
    return base * (*factors)[i];
  };
}

RateProfile OnOffRate(double on_rate, double off_rate, double on_mean_s,
                      double off_mean_s, SimDuration duration, Rng& rng) {
  WEBDB_CHECK(on_rate > 0.0 && off_rate >= 0.0);
  WEBDB_CHECK(on_mean_s > 0.0 && off_mean_s > 0.0);
  const double horizon = ToSeconds(duration);
  // Precompute the state-change instants so the profile is a pure function.
  auto switches = std::make_shared<std::vector<double>>();
  bool on = false;  // start off; index parity encodes the state
  double t = 0.0;
  while (t < horizon) {
    t += rng.Exponential(1.0 / (on ? on_mean_s : off_mean_s));
    switches->push_back(t);
    on = !on;
  }
  return [=](double time) {
    // Number of switches before `time`: even -> off, odd -> on.
    const auto it =
        std::upper_bound(switches->begin(), switches->end(), time);
    const bool is_on = ((it - switches->begin()) % 2) == 1;
    return is_on ? on_rate : off_rate;
  };
}

double ProfileRateBound(double base_rate, double wobble, double spike_gain) {
  return base_rate * (1.0 + wobble) * std::max(1.0, spike_gain) * 1.05;
}

}  // namespace webdb
