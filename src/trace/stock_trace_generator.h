// Synthetic Stock.com / NYSE trace generator.
//
// Reproduces the workload shape of Section 5 (Table 3, Figure 5):
//  - ~82k queries and ~497k updates over a 30-minute trading window on
//    ~4,608 stocks;
//  - query rate roughly steady with small fluctuations and short bursts
//    (Fig. 5a), update rate trending downward (Fig. 5b);
//  - Zipf stock popularity with queries more concentrated than updates, so
//    most stocks see more updates than queries (Fig. 5c);
//  - query execution times 5-9 ms, update execution times 1-5 ms;
//  - look-up / moving-average / comparison / aggregation query mix;
//  - per-stock prices follow independent random walks.
//
// Everything is determined by `seed`.

#ifndef WEBDB_TRACE_STOCK_TRACE_GENERATOR_H_
#define WEBDB_TRACE_STOCK_TRACE_GENERATOR_H_

#include <cstdint>

#include "trace/trace.h"
#include "util/time.h"

namespace webdb {

struct StockTraceConfig {
  uint64_t seed = 2007;

  int32_t num_stocks = 4608;
  SimDuration duration = Seconds(1800);  // 9:30-10:00am

  // Arrival rates (per second). Defaults land near Table 3's totals:
  // 45.6/s * 1800s ≈ 82k queries; (310+242)/2 /s * 1800s ≈ 497k updates.
  // The downward update trend (Figure 5b) is kept but calibrated so the
  // offered load sits just above 1.0 at the open and ~0.93 at the close —
  // steeper decay with these exec times would either keep the CPU
  // overloaded for the whole trace (contradicting the paper's sub-second
  // FIFO response times) or leave it idle (removing every trade-off).
  double query_rate = 35.0;
  double query_rate_wobble = 0.25;
  // Flash-crowd episodes (Figure 5a shows bursts of several times the base
  // rate, up to ~200/s): during a spike the query demand alone exceeds the
  // CPU, so a fixed-priority scheduler must starve one side — this is what
  // differentiates the policies.
  int query_spike_count = 6;
  double query_spike_gain = 4.5;
  double query_spike_len_s = 30.0;
  double update_rate_start = 310.0;
  double update_rate_end = 242.0;
  double update_rate_noise = 0.25;

  // Stock popularity skew. Queries concentrate on fewer stocks than updates.
  double query_zipf = 1.0;
  double update_zipf = 0.6;
  // Rank alignment between the two popularity orders. Figure 5c's
  // observation ("many of the updates occur on the stocks with very few
  // queries") means the orders are largely independent: with probability
  // (1 - popularity_correlation) an item's update-popularity rank is drawn
  // from a random permutation instead of matching its query rank.
  double popularity_correlation = 0.1;

  // Execution time ranges. Query times are uniform in [lo, hi]. Update
  // times span the same 1-5 ms range the paper reports but are skewed
  // toward the low end (most trades are cheap single-price writes):
  // exec = lo + min(hi - lo, Exp(mean = (hi - lo)/4)), average ≈ 2 ms.
  // With uniform update times the offered load would exceed 100% for the
  // whole 30 minutes, which contradicts the paper's measured FIFO response
  // times; the skew makes overload transient (the opening burst), matching
  // the Figure 1 regime. Set update_exec_skewed = false for uniform.
  SimDuration query_exec_lo = Millis(5);
  SimDuration query_exec_hi = Millis(9);
  SimDuration update_exec_lo = Millis(1);
  SimDuration update_exec_hi = Millis(5);
  bool update_exec_skewed = true;
  // Mean of the exponential part as a fraction of (hi - lo); 0.30 puts the
  // sustained offered load around 0.92 (so even Update-High leaves just
  // enough CPU for queries to eventually commit, as the paper's UH results
  // require), with overload at the open and during query spikes.
  double update_exec_skew_mean_frac = 0.30;

  // Query type mix (must sum to 1). Multi-item queries draw 2..max_items
  // distinct stocks.
  double lookup_frac = 0.50;
  double moving_average_frac = 0.30;
  double comparison_frac = 0.15;
  double aggregation_frac = 0.05;
  int max_items = 5;

  // Price random walk.
  double price_lo = 10.0;
  double price_hi = 500.0;
  double price_step_stddev = 0.05;  // relative per-update step

  // Convenience: a small config for unit tests (hundreds of transactions).
  static StockTraceConfig Small(uint64_t seed = 1);
};

Trace GenerateStockTrace(const StockTraceConfig& config);

}  // namespace webdb

#endif  // WEBDB_TRACE_STOCK_TRACE_GENERATOR_H_
