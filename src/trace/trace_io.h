// Trace persistence: save and reload traces as a pair of CSV files so
// expensive generated traces can be reused across benchmark runs and
// inspected with standard tools.
//
// Format (no header rows):
//   <base>.queries.csv : arrival_us,type,exec_us,item[;item]*
//   <base>.updates.csv : arrival_us,item,value,exec_us
// plus a one-line <base>.meta.csv holding num_items.

#ifndef WEBDB_TRACE_TRACE_IO_H_
#define WEBDB_TRACE_TRACE_IO_H_

#include <string>

#include "trace/trace.h"

namespace webdb {

// Writes the trace under the `base` path prefix. Returns false on IO error.
bool SaveTrace(const Trace& trace, const std::string& base);

// Loads a trace written by SaveTrace. Returns false on IO or parse error
// (leaving `trace` unspecified).
bool LoadTrace(const std::string& base, Trace* trace);

}  // namespace webdb

#endif  // WEBDB_TRACE_TRACE_IO_H_
