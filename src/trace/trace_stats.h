// Trace characterization, reproducing the statistics behind Figure 5 and
// Table 3 of the paper: per-second arrival rates and per-stock query/update
// counts.

#ifndef WEBDB_TRACE_TRACE_STATS_H_
#define WEBDB_TRACE_TRACE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace webdb {

struct PerItemCounts {
  int64_t queries = 0;  // accesses (an n-item query counts once per item)
  int64_t updates = 0;
};

struct TraceStats {
  int64_t num_queries = 0;
  int64_t num_updates = 0;
  int32_t num_items = 0;
  // Distinct stocks referenced by at least one query / update.
  int32_t stocks_queried = 0;
  int32_t stocks_updated = 0;
  SimDuration duration = 0;
  SimDuration query_exec_min = 0, query_exec_max = 0;
  SimDuration update_exec_min = 0, update_exec_max = 0;
  // Offered CPU load: total service demand / duration (>1 means overload
  // before update invalidation savings).
  double offered_utilization = 0.0;

  std::vector<int64_t> queries_per_second;  // Figure 5a
  std::vector<int64_t> updates_per_second;  // Figure 5b
  std::vector<PerItemCounts> per_item;      // Figure 5c

  // Fraction of stocks (with any activity) that receive more updates than
  // queries — the "points below the diagonal" observation of Figure 5c.
  double FractionUpdateDominated() const;

  // Table 3-style summary block.
  std::string Summary() const;
};

// Single-threaded characterization pass.
TraceStats ComputeTraceStats(const Trace& trace);

// Same result, computed by `jobs` workers over disjoint record ranges and
// merged (jobs <= 0: one per hardware thread). Every aggregate is an exact
// integer sum / min / max, so the output is bit-identical to the serial
// pass for any jobs value.
TraceStats ComputeTraceStats(const Trace& trace, int jobs);

}  // namespace webdb

#endif  // WEBDB_TRACE_TRACE_STATS_H_
