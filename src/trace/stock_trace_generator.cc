#include "trace/stock_trace_generator.h"

#include <algorithm>
#include <cmath>

#include "trace/arrival_process.h"
#include "util/logging.h"
#include "util/rng.h"

namespace webdb {

StockTraceConfig StockTraceConfig::Small(uint64_t seed) {
  StockTraceConfig config;
  config.seed = seed;
  config.num_stocks = 64;
  config.duration = Seconds(10);
  config.query_rate = 20.0;
  config.query_spike_count = 1;
  config.update_rate_start = 60.0;
  config.update_rate_end = 30.0;
  return config;
}

namespace {

QueryType DrawQueryType(const StockTraceConfig& config, Rng& rng) {
  const double u = rng.NextDouble();
  if (u < config.lookup_frac) return QueryType::kLookup;
  if (u < config.lookup_frac + config.moving_average_frac) {
    return QueryType::kMovingAverage;
  }
  if (u < config.lookup_frac + config.moving_average_frac +
              config.comparison_frac) {
    return QueryType::kComparison;
  }
  return QueryType::kAggregation;
}

std::vector<ItemId> DrawItems(QueryType type, const StockTraceConfig& config,
                              const ZipfDistribution& popularity, Rng& rng) {
  const bool multi =
      type == QueryType::kComparison || type == QueryType::kAggregation;
  const int count =
      multi ? static_cast<int>(rng.UniformInt(2, config.max_items)) : 1;
  std::vector<ItemId> items;
  items.reserve(static_cast<size_t>(count));
  while (static_cast<int>(items.size()) < count) {
    const ItemId item = static_cast<ItemId>(popularity.Sample(rng));
    if (std::find(items.begin(), items.end(), item) == items.end()) {
      items.push_back(item);
    }
  }
  return items;
}

}  // namespace

Trace GenerateStockTrace(const StockTraceConfig& config) {
  WEBDB_CHECK(config.num_stocks > 0 && config.duration > 0);
  WEBDB_CHECK(std::fabs(config.lookup_frac + config.moving_average_frac +
                        config.comparison_frac + config.aggregation_frac -
                        1.0) < 1e-9);
  Rng rng(config.seed);
  Rng arrivals_rng = rng.Split();
  Rng items_rng = rng.Split();
  Rng exec_rng = rng.Split();
  Rng price_rng = rng.Split();

  Trace trace;
  trace.num_items = config.num_stocks;

  // --- query stream --------------------------------------------------------
  const RateProfile query_profile = WobblyRate(
      config.query_rate, config.query_rate_wobble, config.query_spike_count,
      config.query_spike_gain, config.query_spike_len_s, config.duration,
      arrivals_rng);
  const double query_bound = ProfileRateBound(
      config.query_rate, config.query_rate_wobble, config.query_spike_gain);
  const std::vector<SimTime> query_arrivals = GenerateArrivals(
      arrivals_rng, query_profile, query_bound, config.duration);

  const ZipfDistribution query_popularity(config.num_stocks,
                                          config.query_zipf);
  trace.queries.reserve(query_arrivals.size());
  for (SimTime arrival : query_arrivals) {
    QueryRecord record;
    record.arrival = arrival;
    record.type = DrawQueryType(config, items_rng);
    record.items = DrawItems(record.type, config, query_popularity, items_rng);
    record.exec_time =
        exec_rng.UniformInt(config.query_exec_lo, config.query_exec_hi);
    trace.queries.push_back(std::move(record));
  }

  // --- update stream -------------------------------------------------------
  const RateProfile update_profile =
      DecayingRate(config.update_rate_start, config.update_rate_end,
                   config.update_rate_noise, config.duration, arrivals_rng);
  const double update_bound =
      std::max(config.update_rate_start, config.update_rate_end) *
      (1.0 + config.update_rate_noise) * 1.05;
  const std::vector<SimTime> update_arrivals = GenerateArrivals(
      arrivals_rng, update_profile, update_bound, config.duration);

  const ZipfDistribution update_popularity(config.num_stocks,
                                           config.update_zipf);
  // Map update-popularity ranks to items. Ranks start aligned with the
  // query-popularity order (rank r -> item r); a (1 - correlation) fraction
  // of ranks is then shuffled so heavily-traded stocks are mostly not the
  // heavily-queried ones (Figure 5c).
  std::vector<ItemId> update_rank_to_item(
      static_cast<size_t>(config.num_stocks));
  {
    WEBDB_CHECK(config.popularity_correlation >= 0.0 &&
                config.popularity_correlation <= 1.0);
    std::vector<size_t> free_ranks;
    for (size_t r = 0; r < update_rank_to_item.size(); ++r) {
      update_rank_to_item[r] = static_cast<ItemId>(r);
      if (!items_rng.Bernoulli(config.popularity_correlation)) {
        free_ranks.push_back(r);
      }
    }
    // Fisher-Yates over the free positions only.
    for (size_t i = free_ranks.size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(items_rng.UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(update_rank_to_item[free_ranks[i - 1]],
                update_rank_to_item[free_ranks[j]]);
    }
  }
  std::vector<double> price(static_cast<size_t>(config.num_stocks));
  for (double& p : price) {
    p = price_rng.Uniform(config.price_lo, config.price_hi);
  }
  trace.updates.reserve(update_arrivals.size());
  for (SimTime arrival : update_arrivals) {
    UpdateRecord record;
    record.arrival = arrival;
    record.item = update_rank_to_item[static_cast<size_t>(
        update_popularity.Sample(items_rng))];
    double& p = price[static_cast<size_t>(record.item)];
    p = std::max(0.01, p * (1.0 + price_rng.Normal(
                                      0.0, config.price_step_stddev)));
    record.value = p;
    if (config.update_exec_skewed) {
      const double span =
          static_cast<double>(config.update_exec_hi - config.update_exec_lo);
      const double extra = std::min(
          span, exec_rng.Exponential(
                    1.0 / (config.update_exec_skew_mean_frac * span)));
      record.exec_time =
          config.update_exec_lo + static_cast<SimDuration>(extra);
    } else {
      record.exec_time =
          exec_rng.UniformInt(config.update_exec_lo, config.update_exec_hi);
    }
    trace.updates.push_back(record);
  }

  trace.CheckValid();
  return trace;
}

}  // namespace webdb
