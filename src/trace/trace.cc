#include "trace/trace.h"

#include <algorithm>

#include "util/logging.h"

namespace webdb {

SimTime Trace::EndTime() const {
  SimTime end = 0;
  if (!queries.empty()) end = std::max(end, queries.back().arrival);
  if (!updates.empty()) end = std::max(end, updates.back().arrival);
  return end;
}

void Trace::CheckValid() const {
  WEBDB_CHECK(num_items > 0 || (queries.empty() && updates.empty()));
  SimTime prev = 0;
  for (const QueryRecord& q : queries) {
    WEBDB_CHECK(q.arrival >= prev);
    prev = q.arrival;
    WEBDB_CHECK(q.exec_time > 0);
    WEBDB_CHECK(q.tenant >= 0);
    WEBDB_CHECK(!q.items.empty());
    for (ItemId item : q.items) {
      WEBDB_CHECK(item >= 0 && item < num_items);
    }
  }
  prev = 0;
  for (const UpdateRecord& u : updates) {
    WEBDB_CHECK(u.arrival >= prev);
    prev = u.arrival;
    WEBDB_CHECK(u.exec_time > 0);
    WEBDB_CHECK(u.item >= 0 && u.item < num_items);
  }
}

Trace Trace::Prefix(SimTime cutoff) const {
  Trace out;
  out.num_items = num_items;
  for (const QueryRecord& q : queries) {
    if (q.arrival >= cutoff) break;
    out.queries.push_back(q);
  }
  for (const UpdateRecord& u : updates) {
    if (u.arrival >= cutoff) break;
    out.updates.push_back(u);
  }
  return out;
}

}  // namespace webdb
