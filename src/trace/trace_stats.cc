#include "trace/trace_stats.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace webdb {

TraceStats ComputeTraceStats(const Trace& trace) {
  TraceStats stats;
  stats.num_queries = static_cast<int64_t>(trace.queries.size());
  stats.num_updates = static_cast<int64_t>(trace.updates.size());
  stats.num_items = trace.num_items;
  stats.duration = trace.EndTime();
  stats.per_item.resize(static_cast<size_t>(trace.num_items));

  const size_t seconds =
      static_cast<size_t>(stats.duration / Seconds(1)) + 1;
  stats.queries_per_second.assign(seconds, 0);
  stats.updates_per_second.assign(seconds, 0);

  SimDuration total_demand = 0;
  bool first = true;
  for (const QueryRecord& q : trace.queries) {
    stats.queries_per_second[static_cast<size_t>(q.arrival / Seconds(1))]++;
    for (ItemId item : q.items) {
      stats.per_item[static_cast<size_t>(item)].queries++;
    }
    total_demand += q.exec_time;
    if (first) {
      stats.query_exec_min = stats.query_exec_max = q.exec_time;
      first = false;
    } else {
      stats.query_exec_min = std::min(stats.query_exec_min, q.exec_time);
      stats.query_exec_max = std::max(stats.query_exec_max, q.exec_time);
    }
  }
  first = true;
  for (const UpdateRecord& u : trace.updates) {
    stats.updates_per_second[static_cast<size_t>(u.arrival / Seconds(1))]++;
    stats.per_item[static_cast<size_t>(u.item)].updates++;
    total_demand += u.exec_time;
    if (first) {
      stats.update_exec_min = stats.update_exec_max = u.exec_time;
      first = false;
    } else {
      stats.update_exec_min = std::min(stats.update_exec_min, u.exec_time);
      stats.update_exec_max = std::max(stats.update_exec_max, u.exec_time);
    }
  }

  for (const PerItemCounts& counts : stats.per_item) {
    if (counts.queries > 0) ++stats.stocks_queried;
    if (counts.updates > 0) ++stats.stocks_updated;
  }
  if (stats.duration > 0) {
    stats.offered_utilization = static_cast<double>(total_demand) /
                                static_cast<double>(stats.duration);
  }
  return stats;
}

double TraceStats::FractionUpdateDominated() const {
  int64_t active = 0, dominated = 0;
  for (const PerItemCounts& counts : per_item) {
    if (counts.queries == 0 && counts.updates == 0) continue;
    ++active;
    if (counts.updates > counts.queries) ++dominated;
  }
  return active == 0 ? 0.0
                     : static_cast<double>(dominated) /
                           static_cast<double>(active);
}

std::string TraceStats::Summary() const {
  std::ostringstream out;
  out << "# queries           " << num_queries << '\n';
  out << "# updates           " << num_updates << '\n';
  out << "# stocks            " << num_items << " (queried: " << stocks_queried
      << ", updated: " << stocks_updated << ")\n";
  out << "duration            " << ToSeconds(duration) << " s\n";
  out << "query exec time     " << ToMillis(query_exec_min) << " ~ "
      << ToMillis(query_exec_max) << " ms\n";
  out << "update exec time    " << ToMillis(update_exec_min) << " ~ "
      << ToMillis(update_exec_max) << " ms\n";
  out << "offered utilization " << offered_utilization << '\n';
  return out.str();
}

}  // namespace webdb
