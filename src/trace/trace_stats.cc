#include "trace/trace_stats.h"

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace webdb {

namespace {

// Partial aggregates over a [begin, end) slice of the query and update
// records. All fields are exact (integer) aggregates, so merging partials
// in any grouping reproduces the serial pass bit for bit.
struct PartialStats {
  std::vector<int64_t> queries_per_second;
  std::vector<int64_t> updates_per_second;
  std::vector<PerItemCounts> per_item;
  SimDuration total_demand = 0;
  bool any_query = false;
  bool any_update = false;
  SimDuration query_exec_min = 0, query_exec_max = 0;
  SimDuration update_exec_min = 0, update_exec_max = 0;
};

PartialStats ComputePartial(const Trace& trace, size_t seconds,
                            size_t query_begin, size_t query_end,
                            size_t update_begin, size_t update_end) {
  PartialStats partial;
  partial.queries_per_second.assign(seconds, 0);
  partial.updates_per_second.assign(seconds, 0);
  partial.per_item.resize(static_cast<size_t>(trace.num_items));
  for (size_t i = query_begin; i < query_end; ++i) {
    const QueryRecord& q = trace.queries[i];
    partial.queries_per_second[static_cast<size_t>(q.arrival / Seconds(1))]++;
    for (ItemId item : q.items) {
      partial.per_item[static_cast<size_t>(item)].queries++;
    }
    partial.total_demand += q.exec_time;
    if (!partial.any_query) {
      partial.query_exec_min = partial.query_exec_max = q.exec_time;
      partial.any_query = true;
    } else {
      partial.query_exec_min = std::min(partial.query_exec_min, q.exec_time);
      partial.query_exec_max = std::max(partial.query_exec_max, q.exec_time);
    }
  }
  for (size_t i = update_begin; i < update_end; ++i) {
    const UpdateRecord& u = trace.updates[i];
    partial.updates_per_second[static_cast<size_t>(u.arrival / Seconds(1))]++;
    partial.per_item[static_cast<size_t>(u.item)].updates++;
    partial.total_demand += u.exec_time;
    if (!partial.any_update) {
      partial.update_exec_min = partial.update_exec_max = u.exec_time;
      partial.any_update = true;
    } else {
      partial.update_exec_min = std::min(partial.update_exec_min, u.exec_time);
      partial.update_exec_max = std::max(partial.update_exec_max, u.exec_time);
    }
  }
  return partial;
}

TraceStats MergePartials(const Trace& trace, size_t seconds,
                         std::vector<PartialStats>& partials) {
  TraceStats stats;
  stats.num_queries = static_cast<int64_t>(trace.queries.size());
  stats.num_updates = static_cast<int64_t>(trace.updates.size());
  stats.num_items = trace.num_items;
  stats.duration = trace.EndTime();
  stats.queries_per_second.assign(seconds, 0);
  stats.updates_per_second.assign(seconds, 0);
  stats.per_item.resize(static_cast<size_t>(trace.num_items));

  SimDuration total_demand = 0;
  bool any_query = false, any_update = false;
  for (const PartialStats& partial : partials) {
    for (size_t s = 0; s < seconds; ++s) {
      stats.queries_per_second[s] += partial.queries_per_second[s];
      stats.updates_per_second[s] += partial.updates_per_second[s];
    }
    for (size_t i = 0; i < stats.per_item.size(); ++i) {
      stats.per_item[i].queries += partial.per_item[i].queries;
      stats.per_item[i].updates += partial.per_item[i].updates;
    }
    total_demand += partial.total_demand;
    if (partial.any_query) {
      if (!any_query) {
        stats.query_exec_min = partial.query_exec_min;
        stats.query_exec_max = partial.query_exec_max;
        any_query = true;
      } else {
        stats.query_exec_min =
            std::min(stats.query_exec_min, partial.query_exec_min);
        stats.query_exec_max =
            std::max(stats.query_exec_max, partial.query_exec_max);
      }
    }
    if (partial.any_update) {
      if (!any_update) {
        stats.update_exec_min = partial.update_exec_min;
        stats.update_exec_max = partial.update_exec_max;
        any_update = true;
      } else {
        stats.update_exec_min =
            std::min(stats.update_exec_min, partial.update_exec_min);
        stats.update_exec_max =
            std::max(stats.update_exec_max, partial.update_exec_max);
      }
    }
  }

  for (const PerItemCounts& counts : stats.per_item) {
    if (counts.queries > 0) ++stats.stocks_queried;
    if (counts.updates > 0) ++stats.stocks_updated;
  }
  if (stats.duration > 0) {
    stats.offered_utilization = static_cast<double>(total_demand) /
                                static_cast<double>(stats.duration);
  }
  return stats;
}

}  // namespace

TraceStats ComputeTraceStats(const Trace& trace) {
  return ComputeTraceStats(trace, 1);
}

TraceStats ComputeTraceStats(const Trace& trace, int jobs) {
  if (jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw == 0 ? 1 : static_cast<int>(hw);
  }
  const size_t seconds =
      static_cast<size_t>(trace.EndTime() / Seconds(1)) + 1;
  const size_t workers = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(jobs),
                          std::max(trace.queries.size(), size_t{1})));

  // Threading contract (no locks, nothing to annotate GUARDED_BY): `trace`
  // is shared read-only, and worker w writes exactly `partials[w]` — slot
  // ownership is by index, the slots are distinct objects, and the joins
  // below publish them to the merging thread. Any richer sharing here must
  // move to util::Mutex + WEBDB_GUARDED_BY so -Wthread-safety sees it.
  std::vector<PartialStats> partials(workers);
  if (workers == 1) {
    partials[0] = ComputePartial(trace, seconds, 0, trace.queries.size(), 0,
                                 trace.updates.size());
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&trace, &partials, seconds, workers, w] {
        const size_t nq = trace.queries.size();
        const size_t nu = trace.updates.size();
        partials[w] = ComputePartial(trace, seconds, nq * w / workers,
                                     nq * (w + 1) / workers, nu * w / workers,
                                     nu * (w + 1) / workers);
      });
    }
    for (std::thread& t : pool) t.join();
  }
  return MergePartials(trace, seconds, partials);
}

double TraceStats::FractionUpdateDominated() const {
  int64_t active = 0, dominated = 0;
  for (const PerItemCounts& counts : per_item) {
    if (counts.queries == 0 && counts.updates == 0) continue;
    ++active;
    if (counts.updates > counts.queries) ++dominated;
  }
  return active == 0 ? 0.0
                     : static_cast<double>(dominated) /
                           static_cast<double>(active);
}

std::string TraceStats::Summary() const {
  std::ostringstream out;
  out << "# queries           " << num_queries << '\n';
  out << "# updates           " << num_updates << '\n';
  out << "# stocks            " << num_items << " (queried: " << stocks_queried
      << ", updated: " << stocks_updated << ")\n";
  out << "duration            " << ToSeconds(duration) << " s\n";
  out << "query exec time     " << ToMillis(query_exec_min) << " ~ "
      << ToMillis(query_exec_max) << " ms\n";
  out << "update exec time    " << ToMillis(update_exec_min) << " ~ "
      << ToMillis(update_exec_max) << " ms\n";
  out << "offered utilization " << offered_utilization << '\n';
  return out.str();
}

}  // namespace webdb
