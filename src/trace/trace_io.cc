#include "trace/trace_io.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/csv.h"
#include "util/logging.h"

namespace webdb {

namespace {

std::string JoinItems(const std::vector<ItemId>& items) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ';';
    out += std::to_string(items[i]);
  }
  return out;
}

bool ParseItems(const std::string& field, std::vector<ItemId>* items) {
  items->clear();
  size_t start = 0;
  while (start <= field.size()) {
    const size_t pos = field.find(';', start);
    const std::string part =
        field.substr(start, pos == std::string::npos ? pos : pos - start);
    if (part.empty()) return false;
    items->push_back(static_cast<ItemId>(std::strtol(part.c_str(), nullptr, 10)));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return !items->empty();
}

}  // namespace

bool SaveTrace(const Trace& trace, const std::string& base) {
  {
    CsvWriter meta(base + ".meta.csv");
    if (!meta.ok()) return false;
    meta.WriteRow({std::to_string(trace.num_items)});
    if (!meta.Close()) return false;
  }
  {
    CsvWriter queries(base + ".queries.csv");
    if (!queries.ok()) return false;
    for (const QueryRecord& q : trace.queries) {
      queries.WriteRow({std::to_string(q.arrival),
                        std::to_string(static_cast<int>(q.type)),
                        std::to_string(q.exec_time), JoinItems(q.items)});
    }
    if (!queries.Close()) return false;
  }
  {
    CsvWriter updates(base + ".updates.csv");
    if (!updates.ok()) return false;
    char value[32];
    for (const UpdateRecord& u : trace.updates) {
      std::snprintf(value, sizeof(value), "%.6f", u.value);
      updates.WriteRow({std::to_string(u.arrival), std::to_string(u.item),
                        value, std::to_string(u.exec_time)});
    }
    if (!updates.Close()) return false;
  }
  return true;
}

bool LoadTrace(const std::string& base, Trace* trace) {
  WEBDB_CHECK(trace != nullptr);
  *trace = Trace();
  std::vector<std::string> row;
  {
    CsvReader meta(base + ".meta.csv");
    if (!meta.ok() || !meta.ReadRow(row) || row.size() != 1) return false;
    trace->num_items = static_cast<int32_t>(std::strtol(row[0].c_str(),
                                                        nullptr, 10));
  }
  {
    CsvReader queries(base + ".queries.csv");
    if (!queries.ok()) return false;
    while (queries.ReadRow(row)) {
      if (row.size() != 4) return false;
      QueryRecord q;
      q.arrival = std::strtoll(row[0].c_str(), nullptr, 10);
      q.type = static_cast<QueryType>(std::strtol(row[1].c_str(), nullptr, 10));
      q.exec_time = std::strtoll(row[2].c_str(), nullptr, 10);
      if (!ParseItems(row[3], &q.items)) return false;
      trace->queries.push_back(std::move(q));
    }
  }
  {
    CsvReader updates(base + ".updates.csv");
    if (!updates.ok()) return false;
    while (updates.ReadRow(row)) {
      if (row.size() != 4) return false;
      UpdateRecord u;
      u.arrival = std::strtoll(row[0].c_str(), nullptr, 10);
      u.item = static_cast<ItemId>(std::strtol(row[1].c_str(), nullptr, 10));
      u.value = std::strtod(row[2].c_str(), nullptr);
      u.exec_time = std::strtoll(row[3].c_str(), nullptr, 10);
      trace->updates.push_back(u);
    }
  }
  trace->CheckValid();
  return true;
}

}  // namespace webdb
