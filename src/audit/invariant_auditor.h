// Runtime invariant auditor: deep consistency checks for the
// simulator/scheduler core, plus the FNV-1a end-state hashing that pins
// whole-run outcomes in the regression tests.
//
// The auditor has two activation levels (DESIGN.md §8):
//
//   * The audit *functions* (LockManager::AuditConsistency,
//     WebDatabaseServer::AuditInvariants, ...) are always compiled and can
//     be called from any build — tests invoke them directly.
//   * The automatic *hooks* on the hot paths (simulator pop loop, dispatch
//     loop, update registration) fire only when the tree is configured with
//     -DWEBDB_AUDIT=ON, which defines WEBDB_AUDIT globally and turns
//     audit::kEnabled into true. A disabled build pays nothing: every hook
//     sits behind `if constexpr (audit::kEnabled)`.
//
// A violated invariant aborts via audit::Fail with the invariant name —
// same policy as WEBDB_CHECK, because a broken conservation law means every
// number downstream is garbage.
//
// Counters are relaxed atomics: parallel sweeps (exp/sweep_runner.h) run
// one server per worker thread, and the per-invariant tallies are global.

#ifndef WEBDB_AUDIT_INVARIANT_AUDITOR_H_
#define WEBDB_AUDIT_INVARIANT_AUDITOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace webdb {
namespace audit {

#ifdef WEBDB_AUDIT
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

// The invariant catalogue. Every deep check accounts to one of these, so
// tests can assert that a scenario actually exercised the auditor.
enum class Invariant {
  kSimTimeMonotonic = 0,    // event pops never move the clock backwards
  kLockTableConsistent,     // locks_ and held_ agree; no S+X on one item
  kConflictFree,            // 2PL-HP: acquisitions only after resolution
  kDualQueueConservation,   // admitted txn is exactly one lifecycle state
  kRegisterNewestWins,      // pending register entry is the newest arrival
  kLedgerConservation,      // profit ledger totals match obs registry
  kEventArenaConsistent,    // simulator slot arena / heap bookkeeping agrees
  kTxnQueueConsistent,      // TxnQueue live_ matches the non-stale heap count
  kAdmissionConservation,   // arrived = admitted + rejected + shed, per
                            // tenant; DBF demand nodes match tracked entries
  kFusionGroup,             // fused members <-> live groups: disjoint
                            // membership, live lock-free members, leader
                            // still in flight; no member settles before its
                            // group's scan completes
  kFusionCache,             // every cache hit maps to exactly one committed
                            // scan, is settled against that scan's commit
                            // time, and was served within TTL; live entries
                            // never outlive an update to a cached symbol
  kRendezvousGroup,         // cross-shard groups: members share the
                            // leader's rendezvous domain and shape (or are
                            // covered single-item lookups)
  kCount,                   // sentinel
};

const char* InvariantName(Invariant invariant);

// Number of times `invariant` has been audited (process-wide, all builds).
uint64_t ChecksPerformed(Invariant invariant);
uint64_t TotalChecksPerformed();
// Test isolation helper; not for library code.
void ResetCounters();

// Records one audited instance of `invariant`.
void Count(Invariant invariant);

// Aborts with the invariant name and location. Marked noreturn so audit
// call sites read like assertions.
[[noreturn]] void Fail(Invariant invariant, const char* file, int line,
                       const std::string& detail);

// Checks `cond`, accounting the check to `invariant` and aborting with
// `detail` on violation. For use inside always-compiled audit functions;
// hot-path hooks additionally gate on audit::kEnabled.
#define WEBDB_AUDIT_THAT(invariant, cond, detail)                       \
  do {                                                                  \
    ::webdb::audit::Count(invariant);                                   \
    if (!(cond)) {                                                      \
      ::webdb::audit::Fail(invariant, __FILE__, __LINE__, detail);      \
    }                                                                   \
  } while (0)

// --- FNV-1a end-state hashing ----------------------------------------------
// 64-bit Fowler–Noll–Vo 1a. Used to reduce a whole run's end state (every
// transaction outcome, every data item, every lifecycle counter) to one
// number that the regression suite pins. Only integer state is mixed via
// MixU64; raw double bit patterns go through MixDouble and are reserved for
// values that are moved, never computed (so the hash stays stable across
// libm/compiler differences).
class Fnv1aHasher {
 public:
  static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr uint64_t kPrime = 0x100000001b3ULL;

  void MixByte(uint8_t byte) {
    hash_ ^= byte;
    hash_ *= kPrime;
  }
  void MixBytes(const void* data, size_t size);
  void MixU64(uint64_t value);
  void MixI64(int64_t value) { MixU64(static_cast<uint64_t>(value)); }
  // Bit-pattern mix; canonicalizes -0.0 to +0.0.
  void MixDouble(double value);

  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = kOffsetBasis;
};

}  // namespace audit
}  // namespace webdb

#endif  // WEBDB_AUDIT_INVARIANT_AUDITOR_H_
