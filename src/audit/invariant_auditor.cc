#include "audit/invariant_auditor.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/mutex.h"

namespace webdb {
namespace audit {

namespace {

constexpr size_t kNumInvariants = static_cast<size_t>(Invariant::kCount);

std::atomic<uint64_t>& CounterFor(Invariant invariant) {
  static std::atomic<uint64_t> counters[kNumInvariants];
  return counters[static_cast<size_t>(invariant)];
}

}  // namespace

const char* InvariantName(Invariant invariant) {
  switch (invariant) {
    case Invariant::kSimTimeMonotonic:
      return "sim-time-monotonic";
    case Invariant::kLockTableConsistent:
      return "lock-table-consistent";
    case Invariant::kConflictFree:
      return "conflict-free";
    case Invariant::kDualQueueConservation:
      return "dual-queue-conservation";
    case Invariant::kRegisterNewestWins:
      return "register-newest-wins";
    case Invariant::kLedgerConservation:
      return "ledger-conservation";
    case Invariant::kEventArenaConsistent:
      return "event-arena-consistent";
    case Invariant::kTxnQueueConsistent:
      return "txn-queue-consistent";
    case Invariant::kAdmissionConservation:
      return "admission-conservation";
    case Invariant::kFusionGroup:
      return "fusion-group";
    case Invariant::kFusionCache:
      return "fusion-cache";
    case Invariant::kRendezvousGroup:
      return "rendezvous-group";
    case Invariant::kCount:
      break;
  }
  return "unknown";
}

uint64_t ChecksPerformed(Invariant invariant) {
  return CounterFor(invariant).load(std::memory_order_relaxed);
}

uint64_t TotalChecksPerformed() {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumInvariants; ++i) {
    total += CounterFor(static_cast<Invariant>(i))
                 .load(std::memory_order_relaxed);
  }
  return total;
}

void ResetCounters() {
  for (size_t i = 0; i < kNumInvariants; ++i) {
    CounterFor(static_cast<Invariant>(i)).store(0, std::memory_order_relaxed);
  }
}

void Count(Invariant invariant) {
  CounterFor(invariant).fetch_add(1, std::memory_order_relaxed);
}

void Fail(Invariant invariant, const char* file, int line,
          const std::string& detail) {
  // Audited experiments run concurrently under SweepRunner; serialize the
  // report so simultaneous failures on two workers cannot interleave the
  // message (the first reporter aborts while still holding the lock, which
  // is exactly the freeze-everyone-else behavior we want).
  static util::Mutex report_mu;
  report_mu.Lock();
  std::fprintf(stderr, "AUDIT failed at %s:%d: invariant [%s] violated: %s\n",
               file, line, InvariantName(invariant), detail.c_str());
  std::abort();
}

void Fnv1aHasher::MixBytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) MixByte(bytes[i]);
}

void Fnv1aHasher::MixU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    MixByte(static_cast<uint8_t>(value >> shift));
  }
}

void Fnv1aHasher::MixDouble(double value) {
  if (value == 0.0) value = 0.0;  // collapse -0.0 and +0.0
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  MixU64(bits);
}

}  // namespace audit
}  // namespace webdb
