#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace webdb {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  WEBDB_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    WEBDB_CHECK(bounds_[i] > bounds_[i - 1]);
  }
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram Histogram::Exponential(double first, double factor, int count) {
  WEBDB_CHECK(first > 0 && factor > 1.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double b = first;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return Histogram(std::move(bounds));
}

void Histogram::Add(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<size_t>(it - bounds_.begin())] += 1;
  ++total_;
}

double Histogram::BucketUpperBound(size_t i) const {
  WEBDB_CHECK(i < counts_.size());
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

double Histogram::Quantile(double q) const {
  WEBDB_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  int64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const int64_t next = cum + counts_[i];
    if (static_cast<double>(next) >= target && counts_[i] > 0) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi =
          i < bounds_.size() ? bounds_[i] : bounds_.back() * 2.0;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bounds_.back();
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  int64_t maxc = 1;
  for (int64_t c : counts_) maxc = std::max(maxc, c);
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i < bounds_.size()) {
      out << "<= " << bounds_[i];
    } else {
      out << ">  " << bounds_.back();
    }
    out << "  " << counts_[i] << "  ";
    const int bar =
        static_cast<int>(40.0 * static_cast<double>(counts_[i]) /
                         static_cast<double>(maxc));
    for (int b = 0; b < bar; ++b) out << '#';
    out << '\n';
  }
  return out.str();
}

}  // namespace webdb
