// Deterministic random number generation for simulation and trace synthesis.
//
// We implement xoshiro256++ (public-domain algorithm by Blackman & Vigna)
// seeded through SplitMix64 so that a single 64-bit seed fully determines
// every experiment. std::mt19937_64 would also work, but a hand-rolled
// generator guarantees bit-identical traces across standard library
// implementations, which the tests rely on.

#ifndef WEBDB_UTIL_RNG_H_
#define WEBDB_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace webdb {

// xoshiro256++ pseudo-random generator. Not thread-safe; use one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponential variate with the given rate (events per unit).
  // Requires rate > 0.
  double Exponential(double rate);

  // Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  // Creates an independent child generator (stream split). Deterministic:
  // each call advances this generator once.
  Rng Split();

 private:
  uint64_t s_[4];
};

// Zipf(s) sampler over {0, 1, ..., n-1} using the inverse-CDF table method.
// Rank 0 is the most popular item. O(log n) per sample after O(n) setup.
class ZipfDistribution {
 public:
  // Requires n >= 1 and exponent >= 0 (0 means uniform).
  ZipfDistribution(int64_t n, double exponent);

  int64_t Sample(Rng& rng) const;

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }
  double exponent() const { return exponent_; }

  // Probability mass of rank `k`.
  double Pmf(int64_t k) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace webdb

#endif  // WEBDB_UTIL_RNG_H_
