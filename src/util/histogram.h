// Fixed-boundary and log-scale histograms for response-time / staleness
// distributions in the metrics layer and the micro-benchmarks.

#ifndef WEBDB_UTIL_HISTOGRAM_H_
#define WEBDB_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace webdb {

// Histogram over explicit ascending bucket upper bounds; values above the
// last bound land in an overflow bucket.
class Histogram {
 public:
  // `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  // Convenience factory: `count` buckets growing geometrically from `first`
  // by `factor` (e.g. 1ms, 2ms, 4ms, ... for latency).
  static Histogram Exponential(double first, double factor, int count);

  void Add(double value);

  int64_t TotalCount() const { return total_; }
  size_t NumBuckets() const { return counts_.size(); }  // includes overflow
  int64_t BucketCount(size_t i) const { return counts_[i]; }
  // Upper bound of bucket i; the overflow bucket returns +inf.
  double BucketUpperBound(size_t i) const;

  // Linear-interpolated quantile, q in [0, 1].
  double Quantile(double q) const;

  // Multi-line human-readable rendering (bound, count, bar).
  std::string ToString() const;

 private:
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;  // bounds_.size() + 1 (overflow)
  int64_t total_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_UTIL_HISTOGRAM_H_
