#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace webdb {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WEBDB_CHECK(!headers_.empty());
}

void AsciiTable::AddRow(std::vector<std::string> row) {
  WEBDB_CHECK(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      out << std::string(widths[c] - row[c].size() + 1, ' ') << '|';
    }
    out << '\n';
  };
  auto emit_sep = [&]() {
    out << '+';
    for (size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };

  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return out.str();
}

}  // namespace webdb
