// util::SequenceGuard: a compiler-checked "single-threaded per instance"
// capability for the obs layer (Chromium's SEQUENCE_CHECKER idiom).
//
// Tracer and MetricRegistry are deliberately unlocked: the simulator is
// single-threaded and parallelism happens at the run level, where every run
// owns its own instances (DESIGN.md §7). That contract used to live in
// comments only. A SequenceGuard member turns it into a capability the
// thread-safety analysis enforces:
//
//     class MetricRegistry {
//       ...
//      private:
//       util::SequenceGuard sequence_;
//       std::map<std::string, Entry> entries_ WEBDB_GUARDED_BY(sequence_);
//     };
//
// Every method that touches guarded members must first call
// `sequence_.Check()` — annotated WEBDB_ASSERT_CAPABILITY, so under Clang's
// -Wthread-safety a new method that forgets the call fails to compile. At
// runtime Check() is free in release builds; in Debug or -DWEBDB_AUDIT=ON
// builds it verifies thread affinity: the instance attaches to the first
// thread that checks and aborts if a different thread checks later.
//
// Sequential cross-thread handoff (build on a sweep worker, export from the
// submitting thread after the pool joins) is legal — the handing-off side
// calls Detach() at the synchronization point and the next Check()
// re-attaches.

#ifndef WEBDB_UTIL_SEQUENCE_GUARD_H_
#define WEBDB_UTIL_SEQUENCE_GUARD_H_

#include "util/thread_annotations.h"

#if !defined(NDEBUG) || defined(WEBDB_AUDIT)
#define WEBDB_SEQUENCE_RUNTIME_CHECKS 1
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#else
#define WEBDB_SEQUENCE_RUNTIME_CHECKS 0
#endif

namespace webdb {
namespace util {

class WEBDB_CAPABILITY("sequence") SequenceGuard {
 public:
  SequenceGuard() = default;
  SequenceGuard(const SequenceGuard&) = delete;
  SequenceGuard& operator=(const SequenceGuard&) = delete;

  // Asserts that the calling thread owns this instance's sequence; the
  // thread-safety analysis treats the capability as held from here to the
  // end of the calling function.
  void Check() const WEBDB_ASSERT_CAPABILITY(this) {
#if WEBDB_SEQUENCE_RUNTIME_CHECKS
    const std::thread::id me = std::this_thread::get_id();
    std::thread::id expected{};  // "not attached"
    if (!owner_.compare_exchange_strong(expected, me,
                                        std::memory_order_relaxed) &&
        expected != me) {
      std::fprintf(stderr,
                   "SequenceGuard: cross-thread access to a single-threaded "
                   "instance (obs objects are one-per-run; see DESIGN.md "
                   "§7). Call Detach() at legitimate handoff points.\n");
      std::abort();
    }
#endif
  }

  // Releases thread affinity at a synchronization point (e.g. after a
  // thread pool joins); the next Check() attaches to its calling thread.
  void Detach() const {
#if WEBDB_SEQUENCE_RUNTIME_CHECKS
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
#endif
  }

#if WEBDB_SEQUENCE_RUNTIME_CHECKS
 private:
  mutable std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace util
}  // namespace webdb

#endif  // WEBDB_UTIL_SEQUENCE_GUARD_H_
