// Simulation time types.
//
// All simulation timestamps and durations are signed 64-bit microsecond
// counts. A dedicated alias (rather than std::chrono) keeps the
// discrete-event core trivially serializable and fast to compare, while the
// helpers below keep call sites readable (`Millis(50)` instead of `50000`).

#ifndef WEBDB_UTIL_TIME_H_
#define WEBDB_UTIL_TIME_H_

#include <cstdint>

namespace webdb {

// A point in simulated time, in microseconds since simulation start.
using SimTime = int64_t;

// A span of simulated time, in microseconds.
using SimDuration = int64_t;

constexpr SimTime kSimTimeMax = INT64_MAX;

constexpr SimDuration Micros(int64_t us) { return us; }
constexpr SimDuration Millis(int64_t ms) { return ms * 1000; }
constexpr SimDuration Seconds(int64_t s) { return s * 1000 * 1000; }

// Fractional-seconds constructor, useful for sweep parameters like ω = 0.1s.
constexpr SimDuration SecondsF(double s) {
  return static_cast<SimDuration>(s * 1e6);
}

constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e6; }

}  // namespace webdb

#endif  // WEBDB_UTIL_TIME_H_
