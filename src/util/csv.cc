#include "util/csv.h"

#include "util/logging.h"

namespace webdb {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    WEBDB_CHECK_MSG(fields[i].find(',') == std::string::npos &&
                        fields[i].find('\n') == std::string::npos,
                    "CSV fields must not contain separators");
    if (i > 0) out_ << ',';
    out_ << fields[i];
  }
  out_ << '\n';
}

bool CsvWriter::Close() {
  out_.flush();
  const bool good = out_.good();
  out_.close();
  return good;
}

CsvReader::CsvReader(const std::string& path) : in_(path), ok_(in_.good()) {}

bool CsvReader::ReadRow(std::vector<std::string>& fields) {
  std::string line;
  if (!std::getline(in_, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  fields = SplitCsvLine(line);
  return true;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t pos = line.find(',', start);
    if (pos == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

}  // namespace webdb
