// Chunked pool with stable element addresses and std-style surface.
//
// The server hands out Query*/Update* pointers that must survive every
// later submission, so its transaction storage needs address stability
// under growth. std::deque provides that but allocates a fixed small block
// size chosen by the library (512 bytes in libstdc++ — a handful of
// transactions per allocation) and cannot pre-size itself: a full-trace run
// performs thousands of node allocations on the submission path.
// StableVector keeps the deque's guarantee — elements never move — but
// allocates power-of-two chunks of kChunkSize elements and supports
// reserve(), so a run of known shape performs a handful of allocations up
// front and none after.
//
// Deliberately minimal: append-only (emplace_back), indexed access,
// forward iteration. No erase, no insert — the server never removes a
// transaction once submitted.

#ifndef WEBDB_UTIL_STABLE_VECTOR_H_
#define WEBDB_UTIL_STABLE_VECTOR_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace webdb {

template <typename T, size_t kChunkSize = 1024>
class StableVector {
  static_assert((kChunkSize & (kChunkSize - 1)) == 0,
                "chunk size must be a power of two");

 public:
  StableVector() = default;

  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  ~StableVector() {
    for (size_t i = 0; i < size_; ++i) std::destroy_at(&(*this)[i]);
    for (T* chunk : chunks_) {
      std::allocator<T>().deallocate(chunk, kChunkSize);
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) {
    return chunks_[i >> kShift][i & (kChunkSize - 1)];
  }
  const T& operator[](size_t i) const {
    return chunks_[i >> kShift][i & (kChunkSize - 1)];
  }

  T& back() {
    WEBDB_DCHECK(size_ > 0);
    return (*this)[size_ - 1];
  }
  const T& back() const {
    WEBDB_DCHECK(size_ > 0);
    return (*this)[size_ - 1];
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    const size_t i = size_;
    if ((i >> kShift) == chunks_.size()) AddChunk();
    T* slot = &chunks_[i >> kShift][i & (kChunkSize - 1)];
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  // Pre-allocates chunks for at least `n` elements. Never shrinks; element
  // addresses are unaffected (they always are).
  void reserve(size_t n) {
    while (chunks_.size() * kChunkSize < n) AddChunk();
  }

  template <typename V>
  class Iterator {
   public:
    Iterator(V* vec, size_t i) : vec_(vec), i_(i) {}
    auto& operator*() const { return (*vec_)[i_]; }
    auto* operator->() const { return &(*vec_)[i_]; }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const Iterator& o) const { return i_ == o.i_; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }

   private:
    V* vec_;
    size_t i_;
  };

  Iterator<StableVector> begin() { return {this, 0}; }
  Iterator<StableVector> end() { return {this, size_}; }
  Iterator<const StableVector> begin() const { return {this, 0}; }
  Iterator<const StableVector> end() const { return {this, size_}; }

 private:
  static constexpr size_t kShift = [] {
    size_t shift = 0;
    while ((size_t{1} << shift) < kChunkSize) ++shift;
    return shift;
  }();

  void AddChunk() { chunks_.push_back(std::allocator<T>().allocate(kChunkSize)); }

  std::vector<T*> chunks_;
  size_t size_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_UTIL_STABLE_VECTOR_H_
