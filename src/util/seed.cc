#include "util/seed.h"

namespace webdb {

uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t DeriveSeed(uint64_t base_seed, uint64_t run_id) {
  uint64_t state = base_seed;
  const uint64_t base_hash = SplitMix64Next(state);
  state ^= run_id * 0xBF58476D1CE4E5B9ULL;
  return SplitMix64Next(state) ^ (base_hash >> 32);
}

}  // namespace webdb
