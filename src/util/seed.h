// Deterministic seed derivation for parallel experiment sweeps.
//
// A sweep of independent runs must give every run its own RNG stream, and
// that stream must depend only on (base_seed, run_id) — never on which
// worker thread picks the run up or in what order runs finish. Otherwise
// the "same" sweep produces different figures at different --jobs values.
//
// DeriveSeed is the single contract: it is a pure function, stable across
// platforms and releases (golden-pinned by tests/seed_derivation_test.cc),
// and injective in run_id for a fixed base seed, so no two runs of a sweep
// can ever collide onto the same stream.

#ifndef WEBDB_UTIL_SEED_H_
#define WEBDB_UTIL_SEED_H_

#include <cstdint>

namespace webdb {

// One step of Sebastiano Vigna's SplitMix64: advances `state` by the golden
// gamma and returns the mixed output. This is the same mixer Rng uses for
// seeding, shared here so every seeding path in the repo agrees.
uint64_t SplitMix64Next(uint64_t& state);

// Derives the RNG seed for run `run_id` of a sweep seeded with `base_seed`.
//
// Definition (frozen — changing it silently re-rolls every figure):
//   state  = base_seed
//   h      = SplitMix64Next(state)         // decorrelate small bases
//   state ^= run_id * 0xBF58476D1CE4E5B9   // odd multiplier: injective
//   return SplitMix64Next(state) ^ (h >> 32)
//
// For a fixed base seed the map run_id -> seed is injective (every step is
// a bijection of the 64-bit state), so distinct runs always get distinct
// seeds; the final xor folds the base hash back in so related bases do not
// produce aligned streams.
uint64_t DeriveSeed(uint64_t base_seed, uint64_t run_id);

}  // namespace webdb

#endif  // WEBDB_UTIL_SEED_H_
