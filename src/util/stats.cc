#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace webdb {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void RunningStats::Reset() { *this = RunningStats(); }

TimeSeries::TimeSeries(int64_t bucket_width) : bucket_width_(bucket_width) {
  WEBDB_CHECK(bucket_width > 0);
}

void TimeSeries::Add(int64_t t, double value) {
  WEBDB_CHECK(t >= 0);
  const size_t i = static_cast<size_t>(t / bucket_width_);
  if (i >= buckets_.size()) buckets_.resize(i + 1);
  buckets_[i].sum += value;
  buckets_[i].count += 1;
}

double TimeSeries::BucketSum(size_t i) const {
  return i < buckets_.size() ? buckets_[i].sum : 0.0;
}

int64_t TimeSeries::BucketCount(size_t i) const {
  return i < buckets_.size() ? buckets_[i].count : 0;
}

double TimeSeries::BucketMean(size_t i) const {
  if (i >= buckets_.size() || buckets_[i].count == 0) return 0.0;
  return buckets_[i].sum / static_cast<double>(buckets_[i].count);
}

std::vector<double> TimeSeries::SmoothedSums(size_t w) const {
  WEBDB_CHECK(w >= 1);
  std::vector<double> out(buckets_.size(), 0.0);
  if (buckets_.empty()) return out;
  const int64_t n = static_cast<int64_t>(buckets_.size());
  const int64_t half = static_cast<int64_t>(w) / 2;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t lo = std::max<int64_t>(0, i - half);
    const int64_t hi = std::min<int64_t>(n - 1, i + half);
    double acc = 0.0;
    for (int64_t j = lo; j <= hi; ++j) {
      acc += buckets_[static_cast<size_t>(j)].sum;
    }
    out[static_cast<size_t>(i)] = acc / static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace webdb
