// util::Mutex / util::MutexLock: std::mutex with thread-safety-analysis
// capability annotations (util/thread_annotations.h).
//
// The standard library's mutex types carry no annotations, so Clang's
// -Wthread-safety cannot connect a std::lock_guard to the WEBDB_GUARDED_BY
// members it protects. This thin wrapper closes that gap: declare shared
// state as
//
//     util::Mutex mu_;
//     std::exception_ptr error_ WEBDB_GUARDED_BY(mu_);
//
// and every access outside a MutexLock scope (or a function annotated
// WEBDB_REQUIRES(mu_)) becomes a compile error under the analysis.
//
// The simulator core itself is single-threaded by design and must stay
// lock-free (the lint pack's `lock-on-sim-path` rule bans these types from
// src/sim, src/core, src/sched and src/server); Mutex is for the genuinely
// threaded shell — sweep fan-out, error capture, audit failure reporting.

#ifndef WEBDB_UTIL_MUTEX_H_
#define WEBDB_UTIL_MUTEX_H_

#include <mutex>

#include "util/thread_annotations.h"

namespace webdb {
namespace util {

class WEBDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WEBDB_ACQUIRE() { mu_.lock(); }
  void Unlock() WEBDB_RELEASE() { mu_.unlock(); }
  bool TryLock() WEBDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock; the scoped-capability annotation makes the analysis track the
// critical section between construction and destruction.
class WEBDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WEBDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() WEBDB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace util
}  // namespace webdb

#endif  // WEBDB_UTIL_MUTEX_H_
