// Minimal assertion / logging macros used throughout the library.
//
// Two tiers (policy in DESIGN.md §8):
//
//   WEBDB_CHECK(cond)   always on, every build. For cheap checks guarding
//                       externally-observable corruption (API misuse,
//                       impossible lifecycle transitions): the library is a
//                       research artifact where silent invariant violations
//                       are far more expensive than the branch.
//   WEBDB_DCHECK(cond)  debug tier: compiled out in optimized builds
//                       (NDEBUG) unless the invariant auditor is enabled
//                       (-DWEBDB_AUDIT=ON). For hot-loop checks — the
//                       simulator pop loop, lock-table probes — whose cost
//                       is measurable at full trace scale, and for O(n)
//                       verification passes.
//
// In a WEBDB_DCHECK-disabled build the condition is not evaluated but stays
// inside an unevaluated operand, so it cannot bit-rot.

#ifndef WEBDB_UTIL_LOGGING_H_
#define WEBDB_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define WEBDB_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define WEBDB_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,   \
                   __LINE__, #cond, msg);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#if !defined(NDEBUG) || defined(WEBDB_AUDIT)
#define WEBDB_DCHECK_ENABLED 1
#else
#define WEBDB_DCHECK_ENABLED 0
#endif

#if WEBDB_DCHECK_ENABLED
#define WEBDB_DCHECK(cond) WEBDB_CHECK(cond)
#define WEBDB_DCHECK_MSG(cond, msg) WEBDB_CHECK_MSG(cond, msg)
#else
#define WEBDB_DCHECK(cond) \
  do {                     \
    (void)sizeof(cond);    \
  } while (0)
#define WEBDB_DCHECK_MSG(cond, msg) \
  do {                              \
    (void)sizeof(cond);             \
    (void)sizeof(msg);              \
  } while (0)
#endif

#endif  // WEBDB_UTIL_LOGGING_H_
