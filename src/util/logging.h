// Minimal assertion / logging macros used throughout the library.
//
// WEBDB_CHECK(cond) aborts with a message when `cond` is false. Checks are
// kept in release builds: the library is a research artifact where silent
// invariant violations are far more expensive than the branch.

#ifndef WEBDB_UTIL_LOGGING_H_
#define WEBDB_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define WEBDB_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define WEBDB_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,   \
                   __LINE__, #cond, msg);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // WEBDB_UTIL_LOGGING_H_
