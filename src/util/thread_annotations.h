// Clang thread-safety analysis annotations (Abseil-style macro layer).
//
// These macros let the locking discipline that DESIGN.md describes in prose
// — which members a mutex guards, which functions must (not) hold it —
// be written on the declarations themselves and enforced by the compiler.
// Under Clang with -Wthread-safety (CMake: -DWEBDB_THREAD_SAFETY=ON, run by
// the CI static-analysis job) every annotated contract is checked on every
// TU; under GCC, or Clang without the flag, the macros expand to nothing
// and cost nothing.
//
// The vocabulary (names follow Abseil/LLVM so the diagnostics read like the
// upstream documentation):
//
//   WEBDB_CAPABILITY(x)        class is a lockable capability (util::Mutex,
//                              util::SequenceGuard)
//   WEBDB_SCOPED_CAPABILITY    RAII class that acquires in its constructor
//                              and releases in its destructor (MutexLock)
//   WEBDB_GUARDED_BY(mu)       member may only be read/written while `mu`
//                              is held (or asserted — see SequenceGuard)
//   WEBDB_PT_GUARDED_BY(mu)    pointee of a pointer member is guarded
//   WEBDB_REQUIRES(mu)         function may only be called with `mu` held
//   WEBDB_EXCLUDES(mu)         function must be called with `mu` NOT held
//                              (it acquires internally; re-entry deadlocks)
//   WEBDB_ACQUIRE(mu)/WEBDB_RELEASE(mu)
//                              function acquires/releases `mu`
//   WEBDB_TRY_ACQUIRE(b, mu)   acquires iff the return value equals b
//   WEBDB_ASSERT_CAPABILITY(mu)
//                              runtime assertion that `mu` is held; tells
//                              the analysis to treat it as held from here on
//   WEBDB_RETURN_CAPABILITY(mu)
//                              function returns a reference to `mu`
//   WEBDB_NO_THREAD_SAFETY_ANALYSIS
//                              opt a function out (constructors/destructors
//                              of the capability types themselves)

#ifndef WEBDB_UTIL_THREAD_ANNOTATIONS_H_
#define WEBDB_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define WEBDB_THREAD_ANNOTATION_(x) __has_attribute(x)
#else
#define WEBDB_THREAD_ANNOTATION_(x) 0
#endif

#if WEBDB_THREAD_ANNOTATION_(capability)
#define WEBDB_TS_ATTR_(x) __attribute__((x))
#else
#define WEBDB_TS_ATTR_(x)  // no-op outside Clang
#endif

#define WEBDB_CAPABILITY(x) WEBDB_TS_ATTR_(capability(x))
#define WEBDB_SCOPED_CAPABILITY WEBDB_TS_ATTR_(scoped_lockable)
#define WEBDB_GUARDED_BY(x) WEBDB_TS_ATTR_(guarded_by(x))
#define WEBDB_PT_GUARDED_BY(x) WEBDB_TS_ATTR_(pt_guarded_by(x))
#define WEBDB_REQUIRES(...) \
  WEBDB_TS_ATTR_(requires_capability(__VA_ARGS__))
#define WEBDB_REQUIRES_SHARED(...) \
  WEBDB_TS_ATTR_(requires_shared_capability(__VA_ARGS__))
#define WEBDB_ACQUIRE(...) WEBDB_TS_ATTR_(acquire_capability(__VA_ARGS__))
#define WEBDB_ACQUIRE_SHARED(...) \
  WEBDB_TS_ATTR_(acquire_shared_capability(__VA_ARGS__))
#define WEBDB_RELEASE(...) WEBDB_TS_ATTR_(release_capability(__VA_ARGS__))
#define WEBDB_RELEASE_SHARED(...) \
  WEBDB_TS_ATTR_(release_shared_capability(__VA_ARGS__))
#define WEBDB_TRY_ACQUIRE(...) \
  WEBDB_TS_ATTR_(try_acquire_capability(__VA_ARGS__))
#define WEBDB_EXCLUDES(...) WEBDB_TS_ATTR_(locks_excluded(__VA_ARGS__))
#define WEBDB_ASSERT_CAPABILITY(x) WEBDB_TS_ATTR_(assert_capability(x))
#define WEBDB_RETURN_CAPABILITY(x) WEBDB_TS_ATTR_(lock_returned(x))
#define WEBDB_NO_THREAD_SAFETY_ANALYSIS \
  WEBDB_TS_ATTR_(no_thread_safety_analysis)

#endif  // WEBDB_UTIL_THREAD_ANNOTATIONS_H_
