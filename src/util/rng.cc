#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/seed.h"

namespace webdb {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64Next(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  WEBDB_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double rate) {
  WEBDB_CHECK(rate > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Split() { return Rng(NextU64()); }

ZipfDistribution::ZipfDistribution(int64_t n, double exponent)
    : exponent_(exponent) {
  WEBDB_CHECK(n >= 1);
  WEBDB_CHECK(exponent >= 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[static_cast<size_t>(k)] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(int64_t k) const {
  WEBDB_CHECK(k >= 0 && k < n());
  const size_t i = static_cast<size_t>(k);
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace webdb
