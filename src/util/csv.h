// Minimal CSV reading/writing for trace persistence and experiment output.
//
// The dialect is deliberately simple (comma separator, no quoting) because
// all persisted fields are numeric or ticker symbols; a field containing a
// comma is rejected at write time.

#ifndef WEBDB_UTIL_CSV_H_
#define WEBDB_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace webdb {

class CsvWriter {
 public:
  // Opens (truncates) `path`. Check ok() before writing.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.good(); }

  // Writes one row; fields must not contain commas or newlines.
  void WriteRow(const std::vector<std::string>& fields);

  // Flushes and closes. Returns false if any write failed.
  bool Close();

 private:
  std::ofstream out_;
};

class CsvReader {
 public:
  explicit CsvReader(const std::string& path);

  bool ok() const { return ok_; }

  // Reads the next row into `fields`; returns false at EOF.
  bool ReadRow(std::vector<std::string>& fields);

 private:
  std::ifstream in_;
  bool ok_;
};

// Splits `line` on commas (no quoting). Exposed for tests.
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace webdb

#endif  // WEBDB_UTIL_CSV_H_
