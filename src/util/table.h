// ASCII table rendering for the benchmark harness output. Every figure/table
// bench prints its rows through this so the output stays aligned and easy to
// diff against the paper.

#ifndef WEBDB_UTIL_TABLE_H_
#define WEBDB_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace webdb {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 3);

  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace webdb

#endif  // WEBDB_UTIL_TABLE_H_
