// Streaming statistical accumulators and time-bucketed series used by the
// metrics layer and the experiment reports.

#ifndef WEBDB_UTIL_STATS_H_
#define WEBDB_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace webdb {

// Welford-style streaming accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const;
  double StdDev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  void Reset();

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// A series of (bucket_start, value) samples on a fixed bucket width; used for
// the per-second rate plots (Fig. 5) and profit-over-time plots (Fig. 9).
class TimeSeries {
 public:
  // bucket_width in the same unit the caller uses for timestamps.
  explicit TimeSeries(int64_t bucket_width);

  // Adds `value` to the bucket containing `t`. t must be >= 0.
  void Add(int64_t t, double value);

  // Number of buckets spanned so far (trailing empty buckets included).
  size_t NumBuckets() const { return buckets_.size(); }
  int64_t bucket_width() const { return bucket_width_; }

  // Sum accumulated in bucket i (0 if never touched).
  double BucketSum(size_t i) const;
  // Count of samples in bucket i.
  int64_t BucketCount(size_t i) const;
  // Mean of samples in bucket i (0 for empty buckets).
  double BucketMean(size_t i) const;

  // Centered moving-window average of bucket sums, window of `w` buckets
  // (as used for the 5-second smoothing filter in Fig. 9).
  std::vector<double> SmoothedSums(size_t w) const;

 private:
  struct Bucket {
    double sum = 0.0;
    int64_t count = 0;
  };
  int64_t bucket_width_;
  std::vector<Bucket> buckets_;
};

}  // namespace webdb

#endif  // WEBDB_UTIL_STATS_H_
