#include "core/quts_scheduler.h"

#include <algorithm>

#include "core/rho.h"
#include "obs/metric_registry.h"
#include "util/logging.h"

namespace webdb {

QutsScheduler::QutsScheduler(Options options)
    : options_(options), rng_(options.seed), rho_(options.initial_rho) {
  WEBDB_CHECK(options_.atom_time > 0);
  WEBDB_CHECK(options_.adaptation_period > 0);
  WEBDB_CHECK(options_.alpha > 0.0 && options_.alpha <= 1.0);
  WEBDB_CHECK(options_.initial_rho >= 0.0 && options_.initial_rho <= 1.0);
  WEBDB_CHECK(options_.scan_atom_factor > 0.0);
  if (options_.update_policy == UpdatePolicy::kDemandWeighted) {
    WEBDB_CHECK(options_.item_weights != nullptr);
  }
  if (options_.record_rho_series) rho_series_.emplace_back(0, rho_);
}

void QutsScheduler::MaybeAdapt(SimTime now) {
  if (options_.freeze_rho) {
    // No adaptation; just keep the window anchor moving so the math stays
    // bounded on long runs.
    if (now >= window_start_ + options_.adaptation_period) {
      window_start_ +=
          ((now - window_start_) / options_.adaptation_period) *
          options_.adaptation_period;
      window_qos_max_ = 0.0;
      window_qod_max_ = 0.0;
    }
    return;
  }
  while (now >= window_start_ + options_.adaptation_period) {
    // Eq. 5: ρ_new from the QCs submitted during the window that just
    // closed. A window with no QoD demand pushes toward ρ = 1; a window
    // with no submissions at all leaves ρ untouched (nothing to learn).
    if (window_qod_max_ > 0.0) {
      const double rho_new = OptimalRho(window_qos_max_, window_qod_max_);
      rho_ = SmoothRho(rho_, rho_new, options_.alpha);  // Eq. 6
    } else if (window_qos_max_ > 0.0) {
      rho_ = SmoothRho(rho_, 1.0, options_.alpha);
    }
    window_qos_max_ = 0.0;
    window_qod_max_ = 0.0;
    window_start_ += options_.adaptation_period;
    ++adaptations_;
    if (options_.record_rho_series) {
      rho_series_.emplace_back(window_start_, rho_);
    }
  }
}

TxnKind QutsScheduler::DrawSide(SimTime now) {
  TxnKind drawn;
  if (options_.slicing == QutsSlicing::kRandom) {
    const double xi = rng_.NextDouble();
    drawn = xi < rho_ ? TxnKind::kQuery : TxnKind::kUpdate;
  } else {
    slice_credit_ += rho_;
    if (slice_credit_ >= 1.0) {
      slice_credit_ -= 1.0;
      drawn = TxnKind::kQuery;
    } else {
      drawn = TxnKind::kUpdate;
    }
  }
  atom_expiry_ = now + AtomLength(drawn);
  ++redraws_;
  return drawn;
}

SimDuration QutsScheduler::AtomLength(TxnKind side) const {
  if (options_.scan_atom_factor == 1.0 || side != TxnKind::kQuery) {
    return options_.atom_time;
  }
  const Transaction* head = queries_.Peek();
  if (head == nullptr) return options_.atom_time;
  return AtomLengthFor(*head);
}

SimDuration QutsScheduler::AtomLengthFor(const Transaction& txn) const {
  if (options_.scan_atom_factor == 1.0 || txn.kind != TxnKind::kQuery ||
      ServiceClassOf(static_cast<const Query&>(txn).type) !=
          ServiceClass::kScan) {
    return options_.atom_time;
  }
  return std::max<SimDuration>(
      1, static_cast<SimDuration>(options_.scan_atom_factor *
                                  static_cast<double>(options_.atom_time)));
}

void QutsScheduler::Redraw(SimTime now) {
  side_ = DrawSide(now);
  // If the picked queue is empty the state changes immediately (Table 2:
  // "or the current running queue is empty"): fall over to the other side.
  // This is the idle-CPU path (PopNext), so the queues alone decide.
  if (QueueFor(side_).Empty() && !QueueFor(side_ == TxnKind::kQuery
                                               ? TxnKind::kUpdate
                                               : TxnKind::kQuery)
                                      .Empty()) {
    side_ = side_ == TxnKind::kQuery ? TxnKind::kUpdate : TxnKind::kQuery;
  }
}

void QutsScheduler::EnsureSide(SimTime now) {
  MaybeAdapt(now);
  if (now >= atom_expiry_) Redraw(now);
}

TxnQueue& QutsScheduler::QueueFor(TxnKind side) {
  return side == TxnKind::kQuery ? queries_ : updates_;
}

const TxnQueue& QutsScheduler::QueueFor(TxnKind side) const {
  return side == TxnKind::kQuery ? queries_ : updates_;
}

void QutsScheduler::OnQueryArrival(Query* query, SimTime now) {
  MaybeAdapt(now);
  window_qos_max_ += query->qc.qos_max();
  window_qod_max_ += query->qc.qod_max();
  queries_.Push(query, QueryPriority(*query, options_.query_policy));
}

void QutsScheduler::OnUpdateArrival(Update* update, SimTime now) {
  MaybeAdapt(now);
  updates_.Push(update, UpdatePriority(*update, options_.update_policy,
                                       options_.item_weights));
}

void QutsScheduler::Requeue(Transaction* txn, SimTime now) {
  MaybeAdapt(now);
  if (txn->kind == TxnKind::kQuery) {
    auto* query = static_cast<Query*>(txn);
    queries_.Push(query, QueryPriority(*query, options_.query_policy));
  } else {
    auto* update = static_cast<Update*>(txn);
    updates_.Push(update, UpdatePriority(*update, options_.update_policy,
                                         options_.item_weights));
  }
}

Transaction* QutsScheduler::PopNext(SimTime now) {
  EnsureSide(now);
  Transaction* txn = QueueFor(side_).Pop();
  if (txn != nullptr) return txn;
  // The picked queue is empty: immediate state change to the other side.
  const TxnKind other =
      side_ == TxnKind::kQuery ? TxnKind::kUpdate : TxnKind::kQuery;
  txn = QueueFor(other).Pop();
  if (txn != nullptr) {
    side_ = other;
    atom_expiry_ = now + AtomLengthFor(*txn);
  }
  return txn;
}

bool QutsScheduler::ShouldPreempt(const Transaction& running, SimTime now) {
  // Mid-atom the queue priority is fixed: no preemption before the atom
  // expires (that bound on switching frequency is the whole point of τ).
  MaybeAdapt(now);
  if (now < atom_expiry_) return false;
  // Atom boundary with `running` on the CPU: draw the next atom's side
  // (Table 2 — one draw per atom, consumed here). The running transaction
  // counts as work on its side, so a draw for the running side, or for a
  // side with an empty queue, keeps the CPU where it is: Table 2's
  // immediate state change on an empty queue falls back to the only
  // non-empty "queue" — the one whose transaction is running.
  const TxnKind drawn = DrawSide(now);
  if (drawn == running.kind || QueueFor(drawn).Empty()) {
    side_ = running.kind;
    return false;
  }
  side_ = drawn;
  return true;
}

SimTime QutsScheduler::NextDecisionTime(SimTime now) {
  // A wake-up is only useful if some transaction is waiting to take over at
  // the atom boundary.
  if (!HasWork()) return kSimTimeMax;
  // An already-expired atom means the boundary decision is due at the next
  // scheduling event, which ShouldPreempt/PopNext handle by redrawing; a
  // wake-up at `now` would be a zero-delay event that can respin every
  // step without making progress. Clamp to a full atom from now — the
  // redraw that any intervening scheduling event performs moves the expiry
  // to the same point.
  if (atom_expiry_ <= now) return now + options_.atom_time;
  return atom_expiry_;
}

bool QutsScheduler::HasWork() const {
  return !queries_.Empty() || !updates_.Empty();
}

void QutsScheduler::RemoveQueued(Transaction* txn, SimTime) {
  QueueFor(txn->kind).Remove(txn);
}

void QutsScheduler::ExportStats(MetricRegistry& registry) const {
  Scheduler::ExportStats(registry);
  registry.GetGauge("scheduler.quts.rho").Set(rho_);
  registry.GetGauge("scheduler.quts.adaptations")
      .Set(static_cast<double>(adaptations_));
  registry.GetGauge("scheduler.quts.atom.redraws")
      .Set(static_cast<double>(redraws_));
  registry.GetGauge("scheduler.quts.queue.queries")
      .Set(static_cast<double>(queries_.Size()));
  registry.GetGauge("scheduler.quts.queue.updates")
      .Set(static_cast<double>(updates_.Size()));
}

}  // namespace webdb
