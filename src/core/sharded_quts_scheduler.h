// Sharded QUTS — the multi-core generalization of the paper's two-level
// scheduler (core/quts_scheduler.h) behind the CPU-set protocol
// (sched/cpu_set_scheduler.h).
//
// The symbol space is hash-partitioned into shards; each shard is a full
// QUTS instance in miniature — its own dual queues, ρ, atom clock, slicing
// accumulator and ξ stream — so per-shard decisions are exactly the paper's
// Table 2 run against that shard's workload. A transaction's home shard is
// the shard of its first item (queries) or its item (updates); restarts and
// preempt-resumes always requeue home, so a shard's queues hold exactly its
// symbols' backlog. CPU c primarily serves shard c % num_shards.
//
// Two multi-core mechanisms sit on top:
//
//   * Global ρ allocation. Shard windows share one adaptation clock. At
//     each boundary every shard derives its local Eq. 5 optimum and the
//     allocator blends it with the fleet-wide optimum, weighted by the
//     shard's fraction of the window's submitted profit mass: busy shards
//     trust their local demand mix, idle shards inherit the global share
//     instead of free-running on stale state. The blend then ages through
//     Eq. 6 as usual.
//
//   * Pull-based work stealing. A CPU whose home shard is empty on both
//     sides steals from the first non-empty victim, scanning shards in
//     ascending order from a start position drawn from a dedicated seeded
//     stream. The steal pops through the victim's own side logic, so the
//     victim's ρ split is respected even under stealing. Stolen work still
//     requeues home on preemption/restart.
//
// Determinism: all shard seeds and the steal stream derive from the base
// seed through the frozen DeriveSeed contract (util/seed.h), and the server
// drives CPUs in fixed ascending order, so a (seed, trace) pair fully
// determines the schedule at any CPU count.

#ifndef WEBDB_CORE_SHARDED_QUTS_SCHEDULER_H_
#define WEBDB_CORE_SHARDED_QUTS_SCHEDULER_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/quts_scheduler.h"
#include "sched/cpu_set_scheduler.h"
#include "sched/txn_queue.h"
#include "util/rng.h"
#include "util/time.h"

namespace webdb {

class ShardedQutsScheduler final : public CpuSetScheduler {
 public:
  struct Options {
    // Per-shard QUTS knobs (τ, ω, α, slicing, policies, base seed, ...).
    QutsScheduler::Options quts;
    int num_cpus = 1;
    // 0 means one shard per CPU.
    int num_shards = 0;
    bool enable_stealing = true;
  };

  explicit ShardedQutsScheduler(Options options);

  std::string Name() const override { return "ShardedQUTS"; }
  int num_cpus() const override { return num_cpus_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  void OnQueryArrival(Query* query, SimTime now) override;
  void OnUpdateArrival(Update* update, SimTime now) override;
  void Requeue(Transaction* txn, SimTime now) override;
  Transaction* PopNext(CpuId cpu, SimTime now) override;
  bool ShouldPreempt(CpuId cpu, const Transaction& running,
                     SimTime now) override;
  SimTime NextDecisionTime(CpuId cpu, SimTime now) override;
  bool HasWork() const override;
  int64_t NumQueuedQueries() const override;
  int64_t NumQueuedUpdates() const override;
  void RemoveQueued(Transaction* txn, SimTime now) override;

  // Fusion is per-shard: the domain is the home shard when every item of
  // the query lives there, -1 (never fuse) when the item set spans shards.
  int FusionDomain(const Query& query) const override;

  // Cross-shard rendezvous (DESIGN.md §14): queries spanning shards get a
  // stable domain id interned per sorted-unique shard set, so look-alikes
  // with matching shard-set signatures may fuse. Ids start at num_shards()
  // (disjoint from FusionDomain's range) and grow in first-sight order —
  // deterministic because arrivals are.
  int RendezvousDomain(const Query& query) override;

  // Generic queue gauges plus scheduler.quts.{rho, adaptations,
  // atom.redraws, steals} and per-shard scheduler.quts.shard<k>.rho.
  void ExportStats(MetricRegistry& registry) const override;

  // Load-weighted mean ρ across shards, recorded at every adaptation
  // boundary (the multi-core analogue of QutsScheduler::rho_series()).
  const std::vector<std::pair<SimTime, double>>& rho_series() const {
    return rho_series_;
  }
  double rho(int shard) const { return shards_[shard].rho; }
  int64_t steals() const { return steals_; }
  const Options& options() const { return options_; }

  // Home shard of a transaction: shard of its first item (query) or its
  // item (update). Exposed for the determinism tests.
  int ShardOf(const Transaction& txn) const;
  int ShardOfItem(ItemId item) const;

 private:
  // One QUTS instance in miniature; see core/quts_scheduler.h for the
  // meaning of the high-level fields.
  struct Shard {
    Rng rng;
    double rho;
    double slice_credit = 0.0;
    TxnKind side = TxnKind::kQuery;
    SimTime atom_expiry = 0;
    double window_qos_max = 0.0;
    double window_qod_max = 0.0;
    int64_t redraws = 0;
    TxnQueue queries;
    TxnQueue updates;

    explicit Shard(uint64_t seed, double initial_rho)
        : rng(seed), rho(initial_rho) {}

    TxnQueue& QueueFor(TxnKind side_kind) {
      return side_kind == TxnKind::kQuery ? queries : updates;
    }
    bool Empty() const { return queries.Empty() && updates.Empty(); }
  };

  // Folds in every shared adaptation boundary elapsed up to `now`,
  // rebalancing each shard's ρ through the global allocator.
  void MaybeAdapt(SimTime now);
  // Draws shard `s`'s next atom side from its ρ; does not commit it.
  TxnKind DrawSide(Shard& shard, SimTime now);
  // Idle-CPU redraw on shard `s`, with empty-queue fallover.
  void Redraw(Shard& shard, SimTime now);
  // Pops shard `s`'s next transaction exactly as single-CPU QUTS would.
  Transaction* PopFromShard(Shard& shard, SimTime now);
  // Atom length for an atom opening on `side` of `shard`: τ, scaled by
  // scan_atom_factor when a scan-class query is at that side's head.
  SimDuration AtomLength(Shard& shard, TxnKind side) const;
  SimDuration AtomLengthFor(const Transaction& txn) const;

  Options options_;
  int num_cpus_;
  Rng steal_rng_;
  std::vector<Shard> shards_;
  uint64_t shard_salt_;

  SimTime window_start_ = 0;
  int64_t adaptations_ = 0;
  int64_t steals_ = 0;
  std::vector<std::pair<SimTime, double>> rho_series_;

  // Sorted-unique shard set -> interned rendezvous domain id. std::map for
  // deterministic audits; grows only while cross_shard_rendezvous is on.
  std::map<std::vector<int>, int> rendezvous_domains_;
};

}  // namespace webdb

#endif  // WEBDB_CORE_SHARDED_QUTS_SCHEDULER_H_
