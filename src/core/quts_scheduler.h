// QUTS — Query-Update Time-Sharing, the paper's two-level scheduler
// (Section 4, pseudo-code in Table 2).
//
// High level: the query CPU share ρ is re-derived every adaptation period ω
// from the QCs submitted during the previous period (Eq. 5) and smoothed
// with aging factor α (Eq. 6). Time is sliced into atoms of length τ; at
// each atom boundary (or whenever the picked queue empties) the query queue
// is chosen with probability ρ, the update queue otherwise.
//
// Low level: each queue orders its transactions independently — VRD for
// queries and FIFO for updates by default, any policy from
// sched/query_policy.h / sched/update_policy.h otherwise.
//
// Adaptation is processed lazily: every entry point first folds in the
// adaptation-period boundaries that elapsed since the last call, so the
// scheduler needs no direct handle on the simulator; the server wakes it at
// atom boundaries via NextDecisionTime().

#ifndef WEBDB_CORE_QUTS_SCHEDULER_H_
#define WEBDB_CORE_QUTS_SCHEDULER_H_

#include <string>
#include <utility>
#include <vector>

#include "sched/query_policy.h"
#include "sched/scheduler.h"
#include "sched/txn_queue.h"
#include "sched/update_policy.h"
#include "util/rng.h"
#include "util/time.h"

namespace webdb {

// How the side of each atom is chosen from ρ.
enum class QutsSlicing {
  kRandom,         // Table 2: ξ ~ U[0,1), query side iff ξ < ρ (paper)
  kDeterministic,  // error-accumulator (Bresenham) slicing: same long-run
                   // share, no variance — an ablation of the paper's
                   // randomized choice
};

class QutsScheduler final : public Scheduler {
 public:
  struct Options {
    SimDuration atom_time = Millis(10);         // τ (paper default)
    SimDuration adaptation_period = Millis(1000);  // ω (paper default)
    double alpha = 0.2;     // aging factor (paper: "a small value")
    double initial_rho = 0.75;
    QutsSlicing slicing = QutsSlicing::kRandom;
    // When true, ρ stays at initial_rho forever (Eq. 5-6 adaptation off).
    // Used to validate the Eq. 3 profit model: sweep a forced ρ and compare
    // the measured profit curve against QOSmax·ρ + QODmax·ρ(1-ρ).
    bool freeze_rho = false;
    // Class-aware atom sizing (DESIGN.md §13): when the query-side head is
    // a scan-class query (moving-average / aggregation), the atom opening
    // on the query side runs for scan_atom_factor * τ, so heavy scans — and
    // the fusion groups riding on them — finish within one atom instead of
    // paying extra preempt/resume switches. 1.0 (the default) disables the
    // scaling bit-for-bit.
    double scan_atom_factor = 1.0;
    QueryPolicy query_policy = QueryPolicy::kVrd;
    UpdatePolicy update_policy = UpdatePolicy::kFifo;
    const std::vector<double>* item_weights = nullptr;
    uint64_t seed = 42;     // for the ξ draws
    // Record (time, ρ) at every adaptation (Figure 9d). Cheap; on by
    // default.
    bool record_rho_series = true;
  };

  explicit QutsScheduler(Options options);

  std::string Name() const override { return "QUTS"; }

  void OnQueryArrival(Query* query, SimTime now) override;
  void OnUpdateArrival(Update* update, SimTime now) override;
  void Requeue(Transaction* txn, SimTime now) override;
  Transaction* PopNext(SimTime now) override;
  bool ShouldPreempt(const Transaction& running, SimTime now) override;
  SimTime NextDecisionTime(SimTime now) override;
  bool HasWork() const override;
  int64_t NumQueuedQueries() const override {
    return static_cast<int64_t>(queries_.Size());
  }
  int64_t NumQueuedUpdates() const override {
    return static_cast<int64_t>(updates_.Size());
  }
  void RemoveQueued(Transaction* txn, SimTime now) override;

  // Generic queue gauges plus scheduler.quts.{rho, adaptations,
  // atom.redraws, queue.queries, queue.updates}.
  void ExportStats(MetricRegistry& registry) const override;

  double rho() const { return rho_; }
  TxnKind current_side() const { return side_; }
  const std::vector<std::pair<SimTime, double>>& rho_series() const {
    return rho_series_;
  }
  const Options& options() const { return options_; }

 private:
  // Folds in every adaptation boundary elapsed up to `now` (Eq. 5-6).
  void MaybeAdapt(SimTime now);
  // Redraws the side if the current atom expired.
  void EnsureSide(SimTime now);
  // Draws a side from ρ (ξ in random mode, the credit accumulator in
  // deterministic mode) and starts a fresh atom. Does not commit `side_`:
  // the caller decides how an empty drawn queue falls over (idle CPU vs a
  // running transaction occupying its side).
  TxnKind DrawSide(SimTime now);
  // Idle-CPU redraw at `now`: commits the drawn side, falling over to the
  // other side if the drawn queue is empty and the other is not.
  void Redraw(SimTime now);
  TxnQueue& QueueFor(TxnKind side);
  const TxnQueue& QueueFor(TxnKind side) const;
  // Atom length for an atom opening on `side`: τ, scaled by
  // scan_atom_factor when a scan-class query heads the query queue.
  SimDuration AtomLength(TxnKind side) const;
  SimDuration AtomLengthFor(const Transaction& txn) const;

  Options options_;
  Rng rng_;

  // High-level state.
  double rho_;
  double slice_credit_ = 0.0;  // deterministic slicing accumulator
  TxnKind side_ = TxnKind::kQuery;
  SimTime atom_expiry_ = 0;  // <= now means "no atom in progress"
  SimTime window_start_ = 0;
  double window_qos_max_ = 0.0;
  double window_qod_max_ = 0.0;
  int64_t adaptations_ = 0;  // Eq. 5-6 boundaries folded in so far
  int64_t redraws_ = 0;      // atoms started (side redraws)
  std::vector<std::pair<SimTime, double>> rho_series_;

  // Low-level queues.
  TxnQueue queries_;
  TxnQueue updates_;
};

}  // namespace webdb

#endif  // WEBDB_CORE_QUTS_SCHEDULER_H_
