#include "core/sharded_quts_scheduler.h"

#include <algorithm>

#include "core/rho.h"
#include "obs/metric_registry.h"
#include "util/logging.h"
#include "util/seed.h"

namespace webdb {

ShardedQutsScheduler::ShardedQutsScheduler(Options options)
    : options_(options),
      num_cpus_(options.num_cpus),
      steal_rng_(DeriveSeed(options.quts.seed, 0xC0DE)) {
  WEBDB_CHECK(num_cpus_ >= 1);
  WEBDB_CHECK(options_.num_shards >= 0);
  WEBDB_CHECK(options_.quts.atom_time > 0);
  WEBDB_CHECK(options_.quts.adaptation_period > 0);
  WEBDB_CHECK(options_.quts.alpha > 0.0 && options_.quts.alpha <= 1.0);
  WEBDB_CHECK(options_.quts.initial_rho >= 0.0 &&
              options_.quts.initial_rho <= 1.0);
  if (options_.quts.update_policy == UpdatePolicy::kDemandWeighted) {
    WEBDB_CHECK(options_.quts.item_weights != nullptr);
  }
  const int num_shards =
      options_.num_shards == 0 ? num_cpus_ : options_.num_shards;
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    // Every shard gets its own ξ stream off the frozen derivation, so each
    // stream depends only on (base seed, shard index).
    shards_.emplace_back(DeriveSeed(options_.quts.seed, s),
                         options_.quts.initial_rho);
  }
  // Item -> shard placement must not correlate with the per-shard ξ
  // streams; salt it with a distinct derived constant.
  uint64_t salt_state = DeriveSeed(options_.quts.seed, 0x5A17);
  shard_salt_ = SplitMix64Next(salt_state);
  if (options_.quts.record_rho_series) {
    rho_series_.emplace_back(0, options_.quts.initial_rho);
  }
}

int ShardedQutsScheduler::ShardOfItem(ItemId item) const {
  uint64_t state = shard_salt_ ^ (static_cast<uint64_t>(item) + 1);
  return static_cast<int>(SplitMix64Next(state) % shards_.size());
}

int ShardedQutsScheduler::ShardOf(const Transaction& txn) const {
  if (txn.kind == TxnKind::kUpdate) {
    return ShardOfItem(static_cast<const Update&>(txn).item);
  }
  const auto& query = static_cast<const Query&>(txn);
  WEBDB_CHECK(!query.items.empty());
  return ShardOfItem(query.items[0]);
}

void ShardedQutsScheduler::MaybeAdapt(SimTime now) {
  const SimDuration period = options_.quts.adaptation_period;
  if (options_.quts.freeze_rho) {
    if (now >= window_start_ + period) {
      window_start_ += ((now - window_start_) / period) * period;
      for (Shard& shard : shards_) {
        shard.window_qos_max = 0.0;
        shard.window_qod_max = 0.0;
      }
    }
    return;
  }
  while (now >= window_start_ + period) {
    // Fleet-wide demand mix of the window that just closed.
    double total_qos = 0.0;
    double total_qod = 0.0;
    for (const Shard& shard : shards_) {
      total_qos += shard.window_qos_max;
      total_qod += shard.window_qod_max;
    }
    const double total_mass = total_qos + total_qod;
    if (total_mass > 0.0) {
      const double global_opt =
          total_qod > 0.0 ? OptimalRho(total_qos, total_qod) : 1.0;
      for (Shard& shard : shards_) {
        const double mass = shard.window_qos_max + shard.window_qod_max;
        double local_opt = global_opt;
        if (shard.window_qod_max > 0.0) {
          local_opt = OptimalRho(shard.window_qos_max, shard.window_qod_max);
        } else if (shard.window_qos_max > 0.0) {
          local_opt = 1.0;
        }
        // Trust the local estimate in proportion to the shard's share of
        // the window's profit mass relative to a fair split: a shard
        // carrying at least 1/S of the demand uses its own optimum, an
        // idle shard inherits the global one.
        const double weight = std::min(
            1.0, mass * static_cast<double>(shards_.size()) / total_mass);
        const double target =
            weight * local_opt + (1.0 - weight) * global_opt;
        shard.rho = SmoothRho(shard.rho, target, options_.quts.alpha);
      }
    }
    for (Shard& shard : shards_) {
      shard.window_qos_max = 0.0;
      shard.window_qod_max = 0.0;
    }
    window_start_ += period;
    ++adaptations_;
    if (options_.quts.record_rho_series && total_mass > 0.0) {
      double mean = 0.0;
      for (const Shard& shard : shards_) mean += shard.rho;
      rho_series_.emplace_back(window_start_,
                               mean / static_cast<double>(shards_.size()));
    }
  }
}

TxnKind ShardedQutsScheduler::DrawSide(Shard& shard, SimTime now) {
  TxnKind drawn;
  if (options_.quts.slicing == QutsSlicing::kRandom) {
    drawn = shard.rng.NextDouble() < shard.rho ? TxnKind::kQuery
                                               : TxnKind::kUpdate;
  } else {
    shard.slice_credit += shard.rho;
    if (shard.slice_credit >= 1.0) {
      shard.slice_credit -= 1.0;
      drawn = TxnKind::kQuery;
    } else {
      drawn = TxnKind::kUpdate;
    }
  }
  shard.atom_expiry = now + AtomLength(shard, drawn);
  ++shard.redraws;
  return drawn;
}

SimDuration ShardedQutsScheduler::AtomLength(Shard& shard,
                                             TxnKind side) const {
  if (options_.quts.scan_atom_factor == 1.0 || side != TxnKind::kQuery) {
    return options_.quts.atom_time;
  }
  const Transaction* head = shard.queries.Peek();
  if (head == nullptr) return options_.quts.atom_time;
  return AtomLengthFor(*head);
}

SimDuration ShardedQutsScheduler::AtomLengthFor(const Transaction& txn) const {
  if (options_.quts.scan_atom_factor == 1.0 ||
      txn.kind != TxnKind::kQuery ||
      ServiceClassOf(static_cast<const Query&>(txn).type) !=
          ServiceClass::kScan) {
    return options_.quts.atom_time;
  }
  return std::max<SimDuration>(
      1,
      static_cast<SimDuration>(options_.quts.scan_atom_factor *
                               static_cast<double>(options_.quts.atom_time)));
}

void ShardedQutsScheduler::Redraw(Shard& shard, SimTime now) {
  shard.side = DrawSide(shard, now);
  const TxnKind other =
      shard.side == TxnKind::kQuery ? TxnKind::kUpdate : TxnKind::kQuery;
  if (shard.QueueFor(shard.side).Empty() && !shard.QueueFor(other).Empty()) {
    shard.side = other;
  }
}

Transaction* ShardedQutsScheduler::PopFromShard(Shard& shard, SimTime now) {
  if (now >= shard.atom_expiry) Redraw(shard, now);
  Transaction* txn = shard.QueueFor(shard.side).Pop();
  if (txn != nullptr) return txn;
  const TxnKind other =
      shard.side == TxnKind::kQuery ? TxnKind::kUpdate : TxnKind::kQuery;
  txn = shard.QueueFor(other).Pop();
  if (txn != nullptr) {
    shard.side = other;
    shard.atom_expiry = now + AtomLengthFor(*txn);
  }
  return txn;
}

void ShardedQutsScheduler::OnQueryArrival(Query* query, SimTime now) {
  MaybeAdapt(now);
  Shard& shard = shards_[ShardOf(*query)];
  shard.window_qos_max += query->qc.qos_max();
  shard.window_qod_max += query->qc.qod_max();
  shard.queries.Push(query, QueryPriority(*query, options_.quts.query_policy));
}

void ShardedQutsScheduler::OnUpdateArrival(Update* update, SimTime now) {
  MaybeAdapt(now);
  Shard& shard = shards_[ShardOf(*update)];
  shard.updates.Push(update, UpdatePriority(*update, options_.quts.update_policy,
                                            options_.quts.item_weights));
}

void ShardedQutsScheduler::Requeue(Transaction* txn, SimTime now) {
  MaybeAdapt(now);
  Shard& shard = shards_[ShardOf(*txn)];
  if (txn->kind == TxnKind::kQuery) {
    auto* query = static_cast<Query*>(txn);
    shard.queries.Push(query,
                       QueryPriority(*query, options_.quts.query_policy));
  } else {
    auto* update = static_cast<Update*>(txn);
    shard.updates.Push(update,
                       UpdatePriority(*update, options_.quts.update_policy,
                                      options_.quts.item_weights));
  }
}

Transaction* ShardedQutsScheduler::PopNext(CpuId cpu, SimTime now) {
  MaybeAdapt(now);
  const int num_shards = static_cast<int>(shards_.size());
  const int home = cpu % num_shards;
  Transaction* txn = PopFromShard(shards_[home], now);
  if (txn != nullptr || !options_.enable_stealing) return txn;
  // Home shard dry: steal. The scan start comes from a dedicated stream so
  // victims rotate instead of shard (home+1) absorbing every thief; the
  // scan itself is ascending-with-wraparound, so a (seed, event sequence)
  // pair fully determines the victim.
  const uint64_t start = steal_rng_.NextU64() % num_shards;
  for (int i = 0; i < num_shards; ++i) {
    const int victim = static_cast<int>((start + i) % num_shards);
    if (victim == home || shards_[victim].Empty()) continue;
    txn = PopFromShard(shards_[victim], now);
    if (txn != nullptr) {
      ++steals_;
      return txn;
    }
  }
  return nullptr;
}

bool ShardedQutsScheduler::ShouldPreempt(CpuId cpu, const Transaction& running,
                                         SimTime now) {
  MaybeAdapt(now);
  Shard& shard = shards_[cpu % shards_.size()];
  if (now < shard.atom_expiry) return false;
  // Atom boundary on this CPU's home shard: one draw per atom, consumed
  // here exactly as in the single-CPU scheduler. The running transaction —
  // stolen or not — counts as work on its side.
  const TxnKind drawn = DrawSide(shard, now);
  if (drawn == running.kind || shard.QueueFor(drawn).Empty()) {
    shard.side = running.kind;
    return false;
  }
  shard.side = drawn;
  return true;
}

SimTime ShardedQutsScheduler::NextDecisionTime(CpuId cpu, SimTime now) {
  if (!HasWork()) return kSimTimeMax;
  const Shard& shard = shards_[cpu % shards_.size()];
  // Same clamping rationale as the single-CPU scheduler: an expired atom is
  // handled by the redraw of the next scheduling event, so the earliest
  // useful wake-up is a full atom away.
  if (shard.atom_expiry <= now) return now + options_.quts.atom_time;
  return shard.atom_expiry;
}

bool ShardedQutsScheduler::HasWork() const {
  for (const Shard& shard : shards_) {
    if (!shard.Empty()) return true;
  }
  return false;
}

int64_t ShardedQutsScheduler::NumQueuedQueries() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += static_cast<int64_t>(shard.queries.Size());
  }
  return total;
}

int64_t ShardedQutsScheduler::NumQueuedUpdates() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += static_cast<int64_t>(shard.updates.Size());
  }
  return total;
}

void ShardedQutsScheduler::RemoveQueued(Transaction* txn, SimTime) {
  Shard& shard = shards_[ShardOf(*txn)];
  shard.QueueFor(txn->kind).Remove(txn);
}

int ShardedQutsScheduler::FusionDomain(const Query& query) const {
  WEBDB_CHECK(!query.items.empty());
  const int home = ShardOfItem(query.items[0]);
  for (size_t i = 1; i < query.items.size(); ++i) {
    if (ShardOfItem(query.items[i]) != home) return -1;
  }
  return home;
}

int ShardedQutsScheduler::RendezvousDomain(const Query& query) {
  WEBDB_CHECK(!query.items.empty());
  std::vector<int> shard_set;
  shard_set.reserve(query.items.size());
  for (ItemId item : query.items) shard_set.push_back(ShardOfItem(item));
  std::sort(shard_set.begin(), shard_set.end());
  shard_set.erase(std::unique(shard_set.begin(), shard_set.end()),
                  shard_set.end());
  // Single-shard queries keep their per-shard fusion domain: identical to
  // FusionDomain's answer, so rendezvous never re-homes them.
  if (shard_set.size() == 1) return shard_set[0];
  const auto it = rendezvous_domains_.find(shard_set);
  if (it != rendezvous_domains_.end()) return it->second;
  // Intern in first-sight order, offset past the per-shard domain range so
  // the two id spaces never collide.
  const int domain =
      num_shards() + static_cast<int>(rendezvous_domains_.size());
  rendezvous_domains_.emplace(std::move(shard_set), domain);
  return domain;
}

void ShardedQutsScheduler::ExportStats(MetricRegistry& registry) const {
  CpuSetScheduler::ExportStats(registry);
  double mean_rho = 0.0;
  int64_t redraws = 0;
  for (const Shard& shard : shards_) {
    mean_rho += shard.rho;
    redraws += shard.redraws;
  }
  mean_rho /= static_cast<double>(shards_.size());
  registry.GetGauge("scheduler.quts.rho").Set(mean_rho);
  registry.GetGauge("scheduler.quts.adaptations")
      .Set(static_cast<double>(adaptations_));
  registry.GetGauge("scheduler.quts.atom.redraws")
      .Set(static_cast<double>(redraws));
  registry.GetGauge("scheduler.quts.steals")
      .Set(static_cast<double>(steals_));
  registry.GetGauge("scheduler.quts.shards")
      .Set(static_cast<double>(shards_.size()));
  for (size_t s = 0; s < shards_.size(); ++s) {
    registry.GetGauge("scheduler.quts.shard" + std::to_string(s) + ".rho")
        .Set(shards_[s].rho);
  }
}

}  // namespace webdb
