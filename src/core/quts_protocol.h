// Declarative QUTS protocol: the paper's Table 2 as a machine-checkable
// transition table.
//
// The last two QUTS bugs (atom-boundary preemption onto an empty side,
// zero-delay wake-ups) were found by hand-diffing quts_scheduler.cc against
// the paper — protocol drift that type-checks fine and only shows up as a
// shifted profit curve thousands of events later. This header removes the
// hand from that loop: it states, as a pure function, what Table 2 requires
// for EVERY (scheduler state, event) pair, and tests/quts_protocol_test.cc
// exhaustively enumerates the pairs against the real schedulers
// (QutsScheduler and ShardedQutsScheduler) through a small driver
// interface.
//
// The abstract state collapses QUTS to the facts Table 2 branches on:
//
//   side     which queue owns the current atom (Q or U)
//   atom     whether the atom is still running or has expired at the event
//   queues   which of the two queues hold waiting work
//   draw     the side the next ξ draw will pick *if* the event consumes one
//            (ξ < ρ → query; arranged deterministically by the drivers)
//   running  CPU occupancy: idle, or running a query/update. On the
//            single-CPU protocol a running transaction was necessarily
//            dispatched from the current side, so running != idle implies
//            running kind == side (StateValidFor enforces this).
//
// and the events are the scheduler's decision entry points: PopNext
// (idle CPU), ShouldPreempt (busy CPU, after an arrival or at a wake-up)
// and NextDecisionTime (wake-up request). Arrival entry points are pure
// enqueues in Table 2 — they never move the atom clock or the side — and
// the checker verifies that as part of arranging each state.
//
// ModelQutsDriver is a ~traceable reference implementation of the table
// with injectable historical bugs (QutsBug); the regression fixtures prove
// the checker rejects exactly the two hand-fixed defects when reintroduced.

#ifndef WEBDB_CORE_QUTS_PROTOCOL_H_
#define WEBDB_CORE_QUTS_PROTOCOL_H_

#include <string>
#include <vector>

#include "txn/transaction.h"
#include "util/time.h"

namespace webdb {

// --- abstract state --------------------------------------------------------

enum class QutsAtom {
  kInProgress,  // now < atom_expiry: mid-atom, priorities are frozen
  kExpired,     // now >= atom_expiry: boundary decision is due
};

enum class QutsQueues {
  kBothEmpty,
  kQueryOnly,
  kUpdateOnly,
  kBoth,
};

enum class QutsRunning {
  kIdle,
  kQuery,
  kUpdate,
};

struct QutsProtoState {
  TxnKind side = TxnKind::kQuery;
  QutsAtom atom = QutsAtom::kInProgress;
  QutsQueues queues = QutsQueues::kBothEmpty;
  TxnKind draw = TxnKind::kQuery;
  QutsRunning running = QutsRunning::kIdle;
};

enum class QutsProtoEvent {
  kPopNext,           // idle CPU asks for the next transaction
  kShouldPreempt,     // busy CPU asks whether to yield
  kNextDecisionTime,  // server asks when to wake the CPU
};

// --- required actions (Table 2) --------------------------------------------

enum class QutsAction {
  // PopNext outcomes.
  kPopQuery,
  kPopUpdate,
  kPopNone,
  // ShouldPreempt outcomes.
  kKeepRunning,
  kPreempt,
  // NextDecisionTime outcomes.
  kWakeAtAtomExpiry,   // mid-atom: wake exactly at the boundary
  kWakeAfterFullAtom,  // expired atom: earliest useful wake is now + τ
  kWakeImmediate,      // wake at or before now — the zero-delay defect
  kNoWake,             // kSimTimeMax: nothing queued, nothing to switch to
};

std::string ToString(QutsAction action);
std::string ToString(QutsProtoEvent event);
std::string Describe(const QutsProtoState& state);

// True when the pair is reachable on the protocol (see the running/side
// invariant above). The checker skips invalid pairs; everything else MUST
// be checked.
bool StateValidFor(const QutsProtoState& state, QutsProtoEvent event);

// The transition table: the action Table 2 requires in `state` when `event`
// fires. Pure; total over valid pairs.
QutsAction RequiredAction(const QutsProtoState& state, QutsProtoEvent event);

// Convenience enumerations for exhaustive sweeps.
const std::vector<QutsProtoState>& AllQutsProtoStates();
constexpr QutsProtoEvent kAllQutsProtoEvents[] = {
    QutsProtoEvent::kPopNext,
    QutsProtoEvent::kShouldPreempt,
    QutsProtoEvent::kNextDecisionTime,
};

// --- checker ---------------------------------------------------------------

// Adapter that puts a concrete scheduler into an abstract state and fires
// one event against it. Arrange() always builds a fresh scheduler, so one
// driver instance serves the whole sweep.
class QutsProtocolDriver {
 public:
  virtual ~QutsProtocolDriver() = default;
  virtual void Arrange(const QutsProtoState& state) = 0;
  virtual QutsAction Fire(QutsProtoEvent event) = 0;
};

struct QutsProtoViolation {
  QutsProtoState state;
  QutsProtoEvent event;
  QutsAction required;
  QutsAction observed;

  std::string Describe() const;
};

// Enumerates every valid (state, event) pair, arranges `driver` into the
// state, fires the event and collects the pairs where the observed action
// differs from RequiredAction. Empty result == the implementation matches
// Table 2 on the whole state space.
std::vector<QutsProtoViolation> CheckQutsProtocol(QutsProtocolDriver& driver);

// Maps a NextDecisionTime() return value to its wake action, for drivers:
// kSimTimeMax → kNoWake, wake <= now → kWakeImmediate, now + τ →
// kWakeAfterFullAtom, anything else (a genuine future boundary) →
// kWakeAtAtomExpiry.
QutsAction ClassifyWake(SimTime wake, SimTime now, SimDuration atom_time);

// --- reference model + historical-bug injection ----------------------------

enum class QutsBug {
  kNone,
  // Pre-hotfix defect 1: the atom-boundary draw preempted the running
  // transaction even when the drawn side's queue was empty, over-serving
  // that side beyond its ρ share (fixed in ShouldPreempt).
  kPreemptOntoEmptySide,
  // Pre-hotfix defect 2: NextDecisionTime returned the stale atom expiry
  // (<= now) instead of clamping a full atom ahead, scheduling zero-delay
  // wake-ups that spin without progress (fixed in NextDecisionTime).
  kZeroDelayWakeup,
};

// Minimal reference implementation of the Table 2 loop (two counters for
// the queues, one side, one atom clock, a scripted draw) with injectable
// historical bugs. With QutsBug::kNone it passes CheckQutsProtocol by
// construction; with a bug injected the checker must reject it — that
// round trip is what proves the checker would have caught the real
// defects.
class ModelQutsDriver final : public QutsProtocolDriver {
 public:
  explicit ModelQutsDriver(QutsBug bug = QutsBug::kNone) : bug_(bug) {}

  void Arrange(const QutsProtoState& state) override;
  QutsAction Fire(QutsProtoEvent event) override;

 private:
  QutsBug bug_;
  QutsProtoState state_;
};

}  // namespace webdb

#endif  // WEBDB_CORE_QUTS_PROTOCOL_H_
