#include "core/quts_protocol.h"

#include "util/logging.h"
#include "util/time.h"

namespace webdb {

namespace {

TxnKind Other(TxnKind kind) {
  return kind == TxnKind::kQuery ? TxnKind::kUpdate : TxnKind::kQuery;
}

bool HasQueued(QutsQueues queues, TxnKind kind) {
  switch (queues) {
    case QutsQueues::kBothEmpty:
      return false;
    case QutsQueues::kQueryOnly:
      return kind == TxnKind::kQuery;
    case QutsQueues::kUpdateOnly:
      return kind == TxnKind::kUpdate;
    case QutsQueues::kBoth:
      return true;
  }
  return false;
}

TxnKind RunningKind(QutsRunning running) {
  WEBDB_CHECK(running != QutsRunning::kIdle);
  return running == QutsRunning::kQuery ? TxnKind::kQuery : TxnKind::kUpdate;
}

}  // namespace

std::string ToString(QutsAction action) {
  switch (action) {
    case QutsAction::kPopQuery:
      return "pop-query";
    case QutsAction::kPopUpdate:
      return "pop-update";
    case QutsAction::kPopNone:
      return "pop-none";
    case QutsAction::kKeepRunning:
      return "keep-running";
    case QutsAction::kPreempt:
      return "preempt";
    case QutsAction::kWakeAtAtomExpiry:
      return "wake-at-atom-expiry";
    case QutsAction::kWakeAfterFullAtom:
      return "wake-after-full-atom";
    case QutsAction::kWakeImmediate:
      return "wake-immediate";
    case QutsAction::kNoWake:
      return "no-wake";
  }
  return "?";
}

std::string ToString(QutsProtoEvent event) {
  switch (event) {
    case QutsProtoEvent::kPopNext:
      return "PopNext";
    case QutsProtoEvent::kShouldPreempt:
      return "ShouldPreempt";
    case QutsProtoEvent::kNextDecisionTime:
      return "NextDecisionTime";
  }
  return "?";
}

std::string Describe(const QutsProtoState& state) {
  std::string out = "side=";
  out += state.side == TxnKind::kQuery ? "Q" : "U";
  out += " atom=";
  out += state.atom == QutsAtom::kInProgress ? "in-progress" : "expired";
  out += " queues=";
  switch (state.queues) {
    case QutsQueues::kBothEmpty:
      out += "none";
      break;
    case QutsQueues::kQueryOnly:
      out += "Q";
      break;
    case QutsQueues::kUpdateOnly:
      out += "U";
      break;
    case QutsQueues::kBoth:
      out += "QU";
      break;
  }
  out += " draw=";
  out += state.draw == TxnKind::kQuery ? "Q" : "U";
  out += " running=";
  switch (state.running) {
    case QutsRunning::kIdle:
      out += "idle";
      break;
    case QutsRunning::kQuery:
      out += "Q";
      break;
    case QutsRunning::kUpdate:
      out += "U";
      break;
  }
  return out;
}

std::string QutsProtoViolation::Describe() const {
  std::string out = "[";
  out += webdb::Describe(state);
  out += "] ";
  out += ToString(event);
  out += ": required ";
  out += ToString(required);
  out += ", observed ";
  out += ToString(observed);
  return out;
}

bool StateValidFor(const QutsProtoState& state, QutsProtoEvent event) {
  // A running transaction was dispatched from (or kept ownership of) the
  // current atom's side: PopNext commits the side it pops from and the
  // keep-running branch of ShouldPreempt re-commits the running side, so
  // running != idle implies running kind == side on the single-CPU
  // protocol. States that break the invariant are unreachable and are not
  // part of the table.
  if (state.running != QutsRunning::kIdle &&
      RunningKind(state.running) != state.side) {
    return false;
  }
  switch (event) {
    case QutsProtoEvent::kPopNext:
      // The server only asks an idle CPU for work.
      return state.running == QutsRunning::kIdle;
    case QutsProtoEvent::kShouldPreempt:
      // Preemption is only a question while something runs.
      return state.running != QutsRunning::kIdle;
    case QutsProtoEvent::kNextDecisionTime:
      return true;
  }
  return false;
}

QutsAction RequiredAction(const QutsProtoState& state, QutsProtoEvent event) {
  WEBDB_CHECK(StateValidFor(state, event));
  switch (event) {
    case QutsProtoEvent::kPopNext: {
      // Table 2, idle-CPU dispatch: past the atom boundary the side is
      // redrawn (ξ < ρ → query side); mid-atom it stands. Either way an
      // empty picked queue is an immediate state change to the other side
      // ("...or the current running queue is empty"); only two empty
      // queues leave the CPU idle.
      TxnKind side = state.atom == QutsAtom::kExpired ? state.draw : state.side;
      if (!HasQueued(state.queues, side)) {
        if (!HasQueued(state.queues, Other(side))) return QutsAction::kPopNone;
        side = Other(side);
      }
      return side == TxnKind::kQuery ? QutsAction::kPopQuery
                                     : QutsAction::kPopUpdate;
    }
    case QutsProtoEvent::kShouldPreempt: {
      // Mid-atom the slice is inviolate — bounding the switching frequency
      // is the whole point of τ.
      if (state.atom == QutsAtom::kInProgress) return QutsAction::kKeepRunning;
      // Atom boundary with a running transaction: one draw per atom. The
      // running transaction counts as work on its side, so the CPU yields
      // only when the draw picks the *other* side AND that side has queued
      // work — a draw for an empty side falls straight back to the only
      // non-empty "queue", the one whose transaction is running
      // (over-serving the drawn side beyond ρ was historical defect 1).
      const TxnKind drawn = state.draw;
      if (drawn != RunningKind(state.running) &&
          HasQueued(state.queues, drawn)) {
        return QutsAction::kPreempt;
      }
      return QutsAction::kKeepRunning;
    }
    case QutsProtoEvent::kNextDecisionTime: {
      // A wake-up is only useful when queued work could take the CPU at the
      // boundary.
      if (state.queues == QutsQueues::kBothEmpty) return QutsAction::kNoWake;
      // Mid-atom: wake exactly at the boundary. Expired atom: the boundary
      // decision belongs to the next scheduling event; the earliest useful
      // timer is a full atom out (a wake at `now` is a zero-delay event
      // that spins without progress — historical defect 2).
      return state.atom == QutsAtom::kInProgress
                 ? QutsAction::kWakeAtAtomExpiry
                 : QutsAction::kWakeAfterFullAtom;
    }
  }
  WEBDB_CHECK(false);
  return QutsAction::kPopNone;
}

const std::vector<QutsProtoState>& AllQutsProtoStates() {
  static const std::vector<QutsProtoState> states = [] {
    std::vector<QutsProtoState> all;
    for (TxnKind side : {TxnKind::kQuery, TxnKind::kUpdate}) {
      for (QutsAtom atom : {QutsAtom::kInProgress, QutsAtom::kExpired}) {
        for (QutsQueues queues :
             {QutsQueues::kBothEmpty, QutsQueues::kQueryOnly,
              QutsQueues::kUpdateOnly, QutsQueues::kBoth}) {
          for (TxnKind draw : {TxnKind::kQuery, TxnKind::kUpdate}) {
            for (QutsRunning running :
                 {QutsRunning::kIdle, QutsRunning::kQuery,
                  QutsRunning::kUpdate}) {
              all.push_back(QutsProtoState{side, atom, queues, draw, running});
            }
          }
        }
      }
    }
    return all;
  }();
  return states;
}

std::vector<QutsProtoViolation> CheckQutsProtocol(QutsProtocolDriver& driver) {
  std::vector<QutsProtoViolation> violations;
  for (const QutsProtoState& state : AllQutsProtoStates()) {
    for (QutsProtoEvent event : kAllQutsProtoEvents) {
      if (!StateValidFor(state, event)) continue;
      driver.Arrange(state);
      const QutsAction observed = driver.Fire(event);
      const QutsAction required = RequiredAction(state, event);
      if (observed != required) {
        violations.push_back(QutsProtoViolation{state, event, required,
                                                observed});
      }
    }
  }
  return violations;
}

QutsAction ClassifyWake(SimTime wake, SimTime now, SimDuration atom_time) {
  if (wake == kSimTimeMax) return QutsAction::kNoWake;
  if (wake <= now) return QutsAction::kWakeImmediate;
  if (wake == now + atom_time) return QutsAction::kWakeAfterFullAtom;
  return QutsAction::kWakeAtAtomExpiry;
}

// --- reference model -------------------------------------------------------

void ModelQutsDriver::Arrange(const QutsProtoState& state) { state_ = state; }

QutsAction ModelQutsDriver::Fire(QutsProtoEvent event) {
  // A concrete miniature of the Table 2 machine: the atom started at 0 with
  // length τ; the event fires either mid-atom or exactly at the boundary.
  const SimDuration tau = Millis(10);
  const SimTime expiry = tau;
  const SimTime now = state_.atom == QutsAtom::kExpired ? expiry : tau / 2;
  TxnKind side = state_.side;
  switch (event) {
    case QutsProtoEvent::kPopNext: {
      if (now >= expiry) side = state_.draw;  // boundary redraw
      if (!HasQueued(state_.queues, side)) {
        if (!HasQueued(state_.queues, Other(side))) return QutsAction::kPopNone;
        side = Other(side);  // immediate state change on an empty queue
      }
      return side == TxnKind::kQuery ? QutsAction::kPopQuery
                                     : QutsAction::kPopUpdate;
    }
    case QutsProtoEvent::kShouldPreempt: {
      if (now < expiry) return QutsAction::kKeepRunning;
      const TxnKind drawn = state_.draw;
      const TxnKind running = RunningKind(state_.running);
      if (bug_ == QutsBug::kPreemptOntoEmptySide) {
        // Defect 1 verbatim: the draw alone decides — an empty drawn queue
        // still evicts the running transaction.
        return drawn != running ? QutsAction::kPreempt
                                : QutsAction::kKeepRunning;
      }
      if (drawn != running && HasQueued(state_.queues, drawn)) {
        return QutsAction::kPreempt;
      }
      return QutsAction::kKeepRunning;
    }
    case QutsProtoEvent::kNextDecisionTime: {
      if (state_.queues == QutsQueues::kBothEmpty) return QutsAction::kNoWake;
      if (bug_ == QutsBug::kZeroDelayWakeup) {
        // Defect 2 verbatim: hand back the raw expiry even when it is
        // already due, i.e. a zero-delay wake-up.
        return ClassifyWake(expiry, now, tau);
      }
      const SimTime wake = expiry <= now ? now + tau : expiry;
      return ClassifyWake(wake, now, tau);
    }
  }
  WEBDB_CHECK(false);
  return QutsAction::kPopNone;
}

}  // namespace webdb
