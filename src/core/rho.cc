#include "core/rho.h"

#include <algorithm>

#include "util/logging.h"

namespace webdb {

double ModeledTotalProfit(double qos_max, double qod_max, double rho) {
  WEBDB_CHECK(qos_max >= 0.0 && qod_max >= 0.0);
  WEBDB_CHECK(rho >= 0.0 && rho <= 1.0);
  return qos_max * rho + qod_max * rho * (1.0 - rho);
}

double OptimalRho(double qos_max, double qod_max) {
  WEBDB_CHECK(qos_max >= 0.0);
  WEBDB_CHECK(qod_max > 0.0);
  return std::min(qos_max / (2.0 * qod_max) + 0.5, 1.0);
}

double SmoothRho(double prev_rho, double new_rho, double alpha) {
  WEBDB_CHECK(alpha > 0.0 && alpha <= 1.0);
  WEBDB_CHECK(prev_rho >= 0.0 && prev_rho <= 1.0);
  WEBDB_CHECK(new_rho >= 0.0 && new_rho <= 1.0);
  return (1.0 - alpha) * prev_rho + alpha * new_rho;
}

}  // namespace webdb
