// The CPU-allocation model of QUTS (Section 4.1 of the paper).
//
// With query CPU share ρ, the paper models the total profit as
//   Q(ρ) ≈ QOSmax·ρ + QODmax·ρ·(1-ρ)                      (Eq. 3)
// whose maximizer under 0 ≤ ρ ≤ 1 is
//   ρ* = min(QOSmax / (2·QODmax) + 0.5, 1)                 (Eq. 4)
// smoothed across adaptation periods with an aging factor α:
//   ρ_k = (1-α)·ρ_{k-1} + α·ρ_new                          (Eq. 6)
//
// These are pure functions so the math is unit-testable in isolation.

#ifndef WEBDB_CORE_RHO_H_
#define WEBDB_CORE_RHO_H_

namespace webdb {

// Eq. 3: modeled total profit for a given allocation. Requires 0 <= rho <= 1
// and non-negative maxima.
double ModeledTotalProfit(double qos_max, double qod_max, double rho);

// Eq. 4: profit-maximizing query CPU share. Requires non-negative maxima
// with qod_max > 0; note the result always lies in [0.5, 1].
double OptimalRho(double qos_max, double qod_max);

// Eq. 6: exponential aging. Requires 0 < alpha <= 1 and inputs in [0, 1].
double SmoothRho(double prev_rho, double new_rho, double alpha);

}  // namespace webdb

#endif  // WEBDB_CORE_RHO_H_
