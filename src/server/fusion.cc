#include "server/fusion.h"

#include <algorithm>

#include "util/logging.h"

namespace webdb {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixU64(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

std::vector<ItemId> SortedItems(const Query& query) {
  std::vector<ItemId> items = query.items;
  std::sort(items.begin(), items.end());
  return items;
}

// Exact-match compatibility behind the signature: same service class and
// same item multiset. The signature is a fast filter; this is the truth.
bool ExactCompatible(const Query& a, const Query& b) {
  if (ServiceClassOf(a.type) != ServiceClassOf(b.type)) return false;
  if (a.items.size() != b.items.size()) return false;
  return SortedItems(a) == SortedItems(b);
}

bool IsSubsetJoiner(const Query& query) {
  return query.items.size() == 1 &&
         ServiceClassOf(query.type) == ServiceClass::kInteractive;
}

}  // namespace

uint64_t FusionIndex::Signature(const Query& query) {
  uint64_t hash = kFnvOffset;
  hash = MixU64(hash, static_cast<uint64_t>(ServiceClassOf(query.type)));
  for (ItemId item : SortedItems(query)) {
    hash = MixU64(hash, static_cast<uint64_t>(item) + 1);
  }
  return hash;
}

void FusionIndex::Insert(Query* query) {
  WEBDB_CHECK(query != nullptr && !query->items.empty());
  exact_[Signature(*query)].entries.emplace_back(query->id, query);
  if (IsSubsetJoiner(*query)) {
    single_[query->items[0]].push_back(query->id);
  }
  ++size_;
}

void FusionIndex::Remove(const Query& query) {
  const auto it = exact_.find(Signature(query));
  if (it == exact_.end()) return;
  auto& entries = it->second.entries;
  const auto entry = std::find_if(
      entries.begin(), entries.end(),
      [&](const std::pair<TxnId, const Query*>& e) {
        return e.first == query.id;
      });
  if (entry == entries.end()) return;
  entries.erase(entry);
  if (entries.empty()) exact_.erase(it);
  if (IsSubsetJoiner(query)) {
    const auto single_it = single_.find(query.items[0]);
    WEBDB_CHECK(single_it != single_.end());
    auto& ids = single_it->second;
    const auto id_it = std::find(ids.begin(), ids.end(), query.id);
    WEBDB_CHECK(id_it != ids.end());
    ids.erase(id_it);
    if (ids.empty()) single_.erase(single_it);
  }
  --size_;
}

bool FusionIndex::Contains(const Query& query) const {
  const auto it = exact_.find(Signature(query));
  if (it == exact_.end()) return false;
  for (const auto& [id, entry] : it->second.entries) {
    if (id == query.id) return true;
  }
  return false;
}

void FusionIndex::CollectCandidates(const Query& leader, bool subset,
                                    int max_members,
                                    std::vector<TxnId>* out) const {
  if (max_members <= 0) return;
  const auto taken = [out, &leader](TxnId id) {
    if (id == leader.id) return true;
    return std::find(out->begin(), out->end(), id) != out->end();
  };

  const auto exact_it = exact_.find(Signature(leader));
  if (exact_it != exact_.end()) {
    for (const auto& [id, candidate] : exact_it->second.entries) {
      if (static_cast<int>(out->size()) >= max_members) return;
      if (taken(id) || !ExactCompatible(leader, *candidate)) continue;
      out->push_back(id);
    }
  }
  if (!subset) return;
  // Subset pass in the leader's own item order: a lookup on item X joins
  // because the covering scan reads X anyway.
  for (ItemId item : leader.items) {
    const auto single_it = single_.find(item);
    if (single_it == single_.end()) continue;
    for (TxnId id : single_it->second) {
      if (static_cast<int>(out->size()) >= max_members) return;
      if (taken(id)) continue;
      out->push_back(id);
    }
  }
}

}  // namespace webdb
