#include "server/fusion.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "db/database.h"
#include "util/logging.h"

namespace webdb {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixU64(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

std::vector<ItemId> SortedItems(const Query& query) {
  std::vector<ItemId> items = query.items;
  std::sort(items.begin(), items.end());
  return items;
}

// Exact-match compatibility behind the signature: same service class and
// same item multiset. The signature is a fast filter; this is the truth.
bool ExactCompatible(const Query& a, const Query& b) {
  if (ServiceClassOf(a.type) != ServiceClassOf(b.type)) return false;
  if (a.items.size() != b.items.size()) return false;
  return SortedItems(a) == SortedItems(b);
}

bool IsSubsetJoiner(const Query& query) {
  return query.items.size() == 1 &&
         ServiceClassOf(query.type) == ServiceClass::kInteractive;
}

}  // namespace

uint64_t FusionIndex::Signature(const Query& query) {
  uint64_t hash = kFnvOffset;
  hash = MixU64(hash, static_cast<uint64_t>(ServiceClassOf(query.type)));
  for (ItemId item : SortedItems(query)) {
    hash = MixU64(hash, static_cast<uint64_t>(item) + 1);
  }
  return hash;
}

void FusionIndex::Insert(Query* query) {
  WEBDB_CHECK(query != nullptr && !query->items.empty());
  // Double-indexing would double-count size_ and leave a dangling id in
  // whichever bucket Remove cleans second; refuse loudly instead.
  WEBDB_CHECK(!Contains(*query));
  exact_[Signature(*query)].entries.emplace_back(query->id, query);
  if (IsSubsetJoiner(*query)) {
    single_[query->items[0]].push_back(query->id);
  }
  ++size_;
}

void FusionIndex::Remove(const Query& query) {
  // Symmetrically idempotent: each side erases its entry iff present, so
  // every dequeue path may call this untracked and a repeated Remove is a
  // no-op on both bucket tables. size_ follows the exact_ side, which holds
  // one entry per indexed query.
  bool was_indexed = false;
  const auto it = exact_.find(Signature(query));
  if (it != exact_.end()) {
    auto& entries = it->second.entries;
    const auto entry = std::find_if(
        entries.begin(), entries.end(),
        [&](const std::pair<TxnId, const Query*>& e) {
          return e.first == query.id;
        });
    if (entry != entries.end()) {
      was_indexed = true;
      entries.erase(entry);
      if (entries.empty()) exact_.erase(it);
    }
  }
  if (IsSubsetJoiner(query)) {
    const auto single_it = single_.find(query.items[0]);
    if (single_it != single_.end()) {
      auto& ids = single_it->second;
      const auto id_it = std::find(ids.begin(), ids.end(), query.id);
      if (id_it != ids.end()) {
        ids.erase(id_it);
        if (ids.empty()) single_.erase(single_it);
      }
    }
  }
  if (was_indexed) --size_;
}

bool FusionIndex::Contains(const Query& query) const {
  const auto it = exact_.find(Signature(query));
  if (it == exact_.end()) return false;
  for (const auto& [id, entry] : it->second.entries) {
    if (id == query.id) return true;
  }
  return false;
}

void FusionIndex::CollectCandidates(const Query& leader, bool subset,
                                    int max_members,
                                    std::vector<TxnId>* out) const {
  if (max_members <= 0) return;
  // "Already collected" membership: linear scan of `out` while it is small
  // (the common case — groups of a handful), a hash set once it grows past
  // kLinearTakenScan so large max_group_size stays O(n) per dispatch. The
  // set is membership-only — never iterated — so determinism is untouched.
  constexpr size_t kLinearTakenScan = 16;
  std::unordered_set<TxnId> taken_set;
  bool use_set = out->size() > kLinearTakenScan;
  if (use_set) taken_set.insert(out->begin(), out->end());
  const auto taken = [&](TxnId id) {
    if (id == leader.id) return true;
    if (use_set) return taken_set.count(id) != 0;
    return std::find(out->begin(), out->end(), id) != out->end();
  };
  const auto take = [&](TxnId id) {
    out->push_back(id);
    if (!use_set && out->size() > kLinearTakenScan) {
      use_set = true;
      taken_set.insert(out->begin(), out->end());
    } else if (use_set) {
      taken_set.insert(id);
    }
  };

  const auto exact_it = exact_.find(Signature(leader));
  if (exact_it != exact_.end()) {
    for (const auto& [id, candidate] : exact_it->second.entries) {
      if (static_cast<int>(out->size()) >= max_members) return;
      if (taken(id) || !ExactCompatible(leader, *candidate)) continue;
      take(id);
    }
  }
  if (!subset) return;
  // Subset pass in the leader's own item order: a lookup on item X joins
  // because the covering scan reads X anyway. Repeated leader items scan
  // their single_ bucket once (first occurrence wins; duplicates used to
  // rescan the bucket only for taken() to drop every hit again).
  for (size_t i = 0; i < leader.items.size(); ++i) {
    const ItemId item = leader.items[i];
    bool duplicate = false;
    for (size_t j = 0; j < i; ++j) {
      if (leader.items[j] == item) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    const auto single_it = single_.find(item);
    if (single_it == single_.end()) continue;
    for (TxnId id : single_it->second) {
      if (static_cast<int>(out->size()) >= max_members) return;
      if (taken(id)) continue;
      take(id);
    }
  }
}

void FusionResultCache::Fill(const Query& query,
                             std::shared_ptr<const FusionResult> result,
                             int domain, SimTime now, SimDuration ttl,
                             const Database& db) {
  WEBDB_CHECK(result != nullptr && !query.items.empty());
  const uint64_t sig = FusionIndex::Signature(query);
  const auto existing = entries_.find(sig);
  if (existing != entries_.end()) EraseEntry(existing);

  Entry entry;
  entry.source = query.id;
  entry.result = std::move(result);
  entry.service_class = ServiceClassOf(query.type);
  entry.sorted_items = SortedItems(query);
  entry.domain = domain;
  entry.commit_time = now;
  entry.expiry = now + ttl;
  entry.arrival_seqs.reserve(entry.sorted_items.size());
  entry.applied_seqs.reserve(entry.sorted_items.size());
  for (ItemId item : entry.sorted_items) {
    const DataItem& data = db.Item(item);
    entry.arrival_seqs.push_back(data.arrival_seq);
    entry.applied_seqs.push_back(data.applied_seq);
  }
  // Reverse-index rows, one per distinct item (sorted_items may carry
  // duplicates; EraseEntry skips them the same way).
  ItemId prev = kInvalidItem;
  for (ItemId item : entry.sorted_items) {
    if (item == prev) continue;
    prev = item;
    by_item_[item].push_back(sig);
  }
  entries_[sig] = std::move(entry);
}

const FusionResultCache::Entry* FusionResultCache::Lookup(const Query& query,
                                                          bool subset,
                                                          SimTime now) {
  // Exact shape first: same signature, verified by class + sorted items
  // (the signature is a fast filter, the compare is the truth).
  const uint64_t sig = FusionIndex::Signature(query);
  const auto it = entries_.find(sig);
  if (it != entries_.end() &&
      it->second.service_class == ServiceClassOf(query.type) &&
      it->second.sorted_items == SortedItems(query)) {
    // TTL is inclusive: a lookup exactly at expiry still hits.
    if (now <= it->second.expiry) return &it->second;
    EraseEntry(it);
  }
  if (!subset || !IsSubsetJoiner(query)) return nullptr;
  const auto row = by_item_.find(query.items[0]);
  if (row == by_item_.end()) return nullptr;
  // Reap expired covering entries, then pick the freshest survivor (ties
  // broken by lowest signature — a total, host-independent order).
  const std::vector<uint64_t> sigs = row->second;  // copy: EraseEntry edits
  for (uint64_t s : sigs) {
    const auto e = entries_.find(s);
    if (e != entries_.end() && now > e->second.expiry) EraseEntry(e);
  }
  const auto live_row = by_item_.find(query.items[0]);
  if (live_row == by_item_.end()) return nullptr;
  const Entry* best = nullptr;
  uint64_t best_sig = 0;
  for (uint64_t s : live_row->second) {
    const auto e = entries_.find(s);
    WEBDB_CHECK(e != entries_.end());
    const Entry& entry = e->second;
    if (best == nullptr || entry.commit_time > best->commit_time ||
        (entry.commit_time == best->commit_time && s < best_sig)) {
      best = &entry;
      best_sig = s;
    }
  }
  return best;
}

void FusionResultCache::InvalidateItem(ItemId item) {
  const auto row = by_item_.find(item);
  if (row == by_item_.end()) return;
  const std::vector<uint64_t> sigs = row->second;  // copy: EraseEntry edits
  for (uint64_t sig : sigs) {
    const auto it = entries_.find(sig);
    WEBDB_CHECK(it != entries_.end());
    EraseEntry(it);
  }
}

void FusionResultCache::EraseEntry(std::map<uint64_t, Entry>::iterator it) {
  const uint64_t sig = it->first;
  ItemId prev = kInvalidItem;
  for (ItemId item : it->second.sorted_items) {
    if (item == prev) continue;
    prev = item;
    const auto row = by_item_.find(item);
    WEBDB_CHECK(row != by_item_.end());
    auto& sigs = row->second;
    const auto sig_it = std::find(sigs.begin(), sigs.end(), sig);
    WEBDB_CHECK(sig_it != sigs.end());
    sigs.erase(sig_it);
    if (sigs.empty()) by_item_.erase(row);
  }
  entries_.erase(it);
}

}  // namespace webdb
