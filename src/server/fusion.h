// Shared execution over hot symbols (DESIGN.md §13).
//
// Flash-crowd traces queue many queries over the same Zipf-popular items at
// once. Instead of scanning the same symbols once per query, the server
// fuses queued look-alikes onto the query being dispatched (the *leader*):
// the leader's scan runs once and its cost is charged once, and when it
// commits every attached *member* settles its own quality contract at that
// same instant — own response time, own staleness over its own item set,
// own tenant/admission accounting — so the profit ledger and every
// conservation audit stay exact.
//
// Two fusion shapes, both decided at dispatch time (no late joiners):
//   * exact match  — identical sorted item set and identical service class;
//   * subset       — a single-item interactive lookup rides on any leader
//                    whose item set covers its item (the covering scan
//                    already reads that symbol).
// Eligibility is conservative: only queued queries with no partial progress
// and no locks ever enter the index, and under the sharded scheduler a
// query is only indexed when its whole item set lives on one shard
// (FusionDomain >= 0) — cross-shard queries never fuse.
//
// FusionIndex is the deterministic candidate store: buckets are keyed by an
// FNV-1a signature over (service class, sorted items) plus a per-item table
// of single-item lookups, each bucket in insertion order, so the member set
// of every group is a pure function of the event sequence.
//
// FusionResultCache (DESIGN.md §14) extends sharing past the commit
// instant: a committed scan's result is retained for a short sim-time TTL
// so a look-alike arriving one event later still shares it. The cache is
// honest by construction — a hit settles its QoD contract against the
// *cached* commit time, never against "now", and any update touching a
// cached symbol (at arrival and again at apply) evicts every covering
// entry, so a served answer is never staler than its recorded age.

#ifndef WEBDB_SERVER_FUSION_H_
#define WEBDB_SERVER_FUSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "txn/transaction.h"

namespace webdb {

class Database;

struct FusionConfig {
  // Master switch; default off keeps every schedule bit-identical to the
  // pre-fusion server.
  bool enabled = false;
  // Allow single-item interactive lookups to join a covering scan.
  bool subset_fusion = true;
  // Most members one leader may carry (leader excluded).
  int max_group_size = 64;
  // Queries with more items than this never lead nor join exact-match.
  int max_leader_items = 16;
  // Retain committed scan results for `cache_ttl` of sim time and answer
  // exact/subset-compatible arrivals from the cache at zero scan cost.
  // Requires `enabled`; off by default for bit-identity with PR 9.
  bool result_cache = false;
  SimDuration cache_ttl = Millis(50);
  // Let queries whose item sets span shards fuse when their shard-set
  // signatures match (ShardedQutsScheduler rendezvous domains). No effect
  // on single-shard topologies. Off by default for bit-identity.
  bool cross_shard_rendezvous = false;
};

class FusionIndex {
 public:
  // FNV-1a over the service class and the sorted item set; equal signatures
  // (plus the verifying compare in CollectCandidates) define exact-match
  // fusion compatibility.
  static uint64_t Signature(const Query& query);

  // Indexes a queued, fusion-eligible query (caller checks eligibility; the
  // query must not already be indexed).
  void Insert(Query* query);

  // Removes `query` from every bucket it occupies. Idempotent: unindexed
  // queries are a no-op, so every dequeue path may call it untracked.
  void Remove(const Query& query);

  // Collects up to `max_members` fusion candidates for `leader`, in
  // deterministic order: exact matches first (insertion order), then —
  // when `subset` is set — single-item lookups covered by the leader's
  // item set, scanned in the leader's item order. The leader itself must
  // already be unindexed. Candidates are not removed.
  void CollectCandidates(const Query& leader, bool subset, int max_members,
                         std::vector<TxnId>* out) const;

  bool Contains(const Query& query) const;
  // Total number of indexed queries. O(1).
  int64_t Size() const { return size_; }

 private:
  struct ExactBucket {
    std::vector<std::pair<TxnId, const Query*>> entries;
  };

  // Signature -> exact-match bucket. std::map for deterministic audits.
  std::map<uint64_t, ExactBucket> exact_;
  // Item -> queued single-item interactive lookups on it (subset joiners).
  std::map<ItemId, std::vector<TxnId>> single_;
  int64_t size_ = 0;
};

// Short-TTL cache of committed scan results, keyed by the same FNV-1a
// signature the FusionIndex uses. One entry per (service class, sorted
// items) shape; a later fill over the same shape overwrites the older
// entry. Entries die at `commit_time + ttl` (inclusive: a lookup exactly
// at expiry still hits) and are evicted eagerly whenever an update touches
// any cached symbol. Deterministic throughout: std::map storage, and
// expired entries are reaped lazily on the lookups that find them, so the
// cache's state is a pure function of the event sequence.
class FusionResultCache {
 public:
  struct Entry {
    // The committed scan that produced this result (group leader or a
    // cacheable solo query). Exactly one committed scan per entry — the
    // auditor's cache-conservation invariant leans on this.
    TxnId source = 0;
    std::shared_ptr<const FusionResult> result;
    ServiceClass service_class = ServiceClass::kInteractive;
    std::vector<ItemId> sorted_items;
    // Fusion (or rendezvous) domain the producing scan belonged to.
    int domain = -1;
    SimTime commit_time = 0;
    SimTime expiry = 0;
    // Per-item (arrival_seq, applied_seq) snapshot at fill time, in
    // sorted_items order. Invalidation at update arrival *and* apply makes
    // these provably unchanged while the entry lives; the auditor checks.
    std::vector<uint64_t> arrival_seqs;
    std::vector<uint64_t> applied_seqs;
  };

  // Retains `result` for `query`'s shape until `now + ttl`, snapshotting
  // per-item update sequence numbers from `db`. Overwrites any entry with
  // the same signature (the newer commit is at least as fresh).
  void Fill(const Query& query, std::shared_ptr<const FusionResult> result,
            int domain, SimTime now, SimDuration ttl, const Database& db);

  // Finds a live entry answering `query` at `now`: an exact shape match
  // first, else — when `subset` is set and `query` is a single-item
  // interactive lookup — the freshest covering entry (ties broken by
  // lowest signature). Expired entries encountered on the way are erased.
  // Returns nullptr on miss; the pointer is valid until the next mutating
  // call.
  const Entry* Lookup(const Query& query, bool subset, SimTime now);

  // Evicts every entry whose item set contains `item`.
  void InvalidateItem(ItemId item);

  int64_t Size() const { return static_cast<int64_t>(entries_.size()); }

  // Audit-only view of the live entries (deterministic order).
  const std::map<uint64_t, Entry>& EntriesForAudit() const {
    return entries_;
  }

 private:
  void EraseEntry(std::map<uint64_t, Entry>::iterator it);

  // Signature -> cached result. std::map for deterministic audits.
  std::map<uint64_t, Entry> entries_;
  // Item -> signatures of entries covering it (eviction reverse index).
  std::map<ItemId, std::vector<uint64_t>> by_item_;
};

}  // namespace webdb

#endif  // WEBDB_SERVER_FUSION_H_
