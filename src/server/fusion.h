// Shared execution over hot symbols (DESIGN.md §13).
//
// Flash-crowd traces queue many queries over the same Zipf-popular items at
// once. Instead of scanning the same symbols once per query, the server
// fuses queued look-alikes onto the query being dispatched (the *leader*):
// the leader's scan runs once and its cost is charged once, and when it
// commits every attached *member* settles its own quality contract at that
// same instant — own response time, own staleness over its own item set,
// own tenant/admission accounting — so the profit ledger and every
// conservation audit stay exact.
//
// Two fusion shapes, both decided at dispatch time (no late joiners):
//   * exact match  — identical sorted item set and identical service class;
//   * subset       — a single-item interactive lookup rides on any leader
//                    whose item set covers its item (the covering scan
//                    already reads that symbol).
// Eligibility is conservative: only queued queries with no partial progress
// and no locks ever enter the index, and under the sharded scheduler a
// query is only indexed when its whole item set lives on one shard
// (FusionDomain >= 0) — cross-shard queries never fuse.
//
// FusionIndex is the deterministic candidate store: buckets are keyed by an
// FNV-1a signature over (service class, sorted items) plus a per-item table
// of single-item lookups, each bucket in insertion order, so the member set
// of every group is a pure function of the event sequence.

#ifndef WEBDB_SERVER_FUSION_H_
#define WEBDB_SERVER_FUSION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "txn/transaction.h"

namespace webdb {

struct FusionConfig {
  // Master switch; default off keeps every schedule bit-identical to the
  // pre-fusion server.
  bool enabled = false;
  // Allow single-item interactive lookups to join a covering scan.
  bool subset_fusion = true;
  // Most members one leader may carry (leader excluded).
  int max_group_size = 64;
  // Queries with more items than this never lead nor join exact-match.
  int max_leader_items = 16;
};

class FusionIndex {
 public:
  // FNV-1a over the service class and the sorted item set; equal signatures
  // (plus the verifying compare in CollectCandidates) define exact-match
  // fusion compatibility.
  static uint64_t Signature(const Query& query);

  // Indexes a queued, fusion-eligible query (caller checks eligibility; the
  // query must not already be indexed).
  void Insert(Query* query);

  // Removes `query` from every bucket it occupies. Idempotent: unindexed
  // queries are a no-op, so every dequeue path may call it untracked.
  void Remove(const Query& query);

  // Collects up to `max_members` fusion candidates for `leader`, in
  // deterministic order: exact matches first (insertion order), then —
  // when `subset` is set — single-item lookups covered by the leader's
  // item set, scanned in the leader's item order. The leader itself must
  // already be unindexed. Candidates are not removed.
  void CollectCandidates(const Query& leader, bool subset, int max_members,
                         std::vector<TxnId>* out) const;

  bool Contains(const Query& query) const;
  // Total number of indexed queries. O(1).
  int64_t Size() const { return size_; }

 private:
  struct ExactBucket {
    std::vector<std::pair<TxnId, const Query*>> entries;
  };

  // Signature -> exact-match bucket. std::map for deterministic audits.
  std::map<uint64_t, ExactBucket> exact_;
  // Item -> queued single-item interactive lookups on it (subset joiners).
  std::map<ItemId, std::vector<TxnId>> single_;
  int64_t size_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_SERVER_FUSION_H_
