#include "server/web_database_server.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "audit/invariant_auditor.h"
#include "util/logging.h"

namespace webdb {

namespace {

// Every 2^k-th scheduling event runs the deep audit in WEBDB_AUDIT builds.
constexpr uint64_t kAuditStrideMask = 63;

}  // namespace

WebDatabaseServer::WebDatabaseServer(Database* database,
                                     CpuSetScheduler* scheduler,
                                     ServerConfig config)
    : db_(database),
      sched_(scheduler),
      config_(config),
      owned_sim_(std::make_unique<Simulator>()),
      sim_(owned_sim_.get()),
      cpus_(sim_, scheduler == nullptr ? 1 : scheduler->num_cpus()),
      wake_events_(cpus_.num_cpus(), 0),
      wake_times_(cpus_.num_cpus(), kSimTimeMax) {
  WEBDB_CHECK(database != nullptr && scheduler != nullptr);
}

WebDatabaseServer::WebDatabaseServer(Simulator* simulator, Database* database,
                                     CpuSetScheduler* scheduler,
                                     ServerConfig config)
    : db_(database),
      sched_(scheduler),
      config_(config),
      sim_(simulator),
      cpus_(sim_, scheduler == nullptr ? 1 : scheduler->num_cpus()),
      wake_events_(cpus_.num_cpus(), 0),
      wake_times_(cpus_.num_cpus(), kSimTimeMax) {
  WEBDB_CHECK(simulator != nullptr);
  WEBDB_CHECK(database != nullptr && scheduler != nullptr);
}

WebDatabaseServer::WebDatabaseServer(Database* database, Scheduler* scheduler,
                                     ServerConfig config)
    : db_(database),
      sched_(nullptr),
      config_(config),
      owned_sim_(std::make_unique<Simulator>()),
      sim_(owned_sim_.get()),
      owned_adapter_(std::make_unique<SingleCpuAdapter>(scheduler)),
      cpus_(sim_, 1),
      wake_events_(1, 0),
      wake_times_(1, kSimTimeMax) {
  WEBDB_CHECK(database != nullptr);
  sched_ = owned_adapter_.get();
}

WebDatabaseServer::WebDatabaseServer(Simulator* simulator, Database* database,
                                     Scheduler* scheduler, ServerConfig config)
    : db_(database),
      sched_(nullptr),
      config_(config),
      sim_(simulator),
      owned_adapter_(std::make_unique<SingleCpuAdapter>(scheduler)),
      cpus_(sim_, 1),
      wake_events_(1, 0),
      wake_times_(1, kSimTimeMax) {
  WEBDB_CHECK(simulator != nullptr);
  WEBDB_CHECK(database != nullptr);
  sched_ = owned_adapter_.get();
}

void WebDatabaseServer::ReserveCapacity(size_t num_queries,
                                        size_t num_updates) {
  queries_.reserve(num_queries);
  updates_.reserve(num_updates);
  // Concurrently pending events are bounded by one lifetime-deadline per
  // in-flight query plus a completion and a wake-up; queries dominate.
  sim_->Reserve(num_queries + 16);
}

Transaction* WebDatabaseServer::Lookup(TxnId id) {
  WEBDB_CHECK(id != 0);
  const uint64_t index = TxnIndex(id);
  if (IsUpdateTxnId(id)) {
    WEBDB_CHECK(index < updates_.size());
    return &updates_[index];
  }
  WEBDB_CHECK(index < queries_.size());
  return &queries_[index];
}

Query& WebDatabaseServer::QueryFor(TxnId id) {
  WEBDB_CHECK(!IsUpdateTxnId(id));
  return *static_cast<Query*>(Lookup(id));
}

Update& WebDatabaseServer::UpdateFor(TxnId id) {
  WEBDB_CHECK(IsUpdateTxnId(id));
  return *static_cast<Update*>(Lookup(id));
}

Query* WebDatabaseServer::SubmitQuery(QueryType type,
                                      std::vector<ItemId> items,
                                      QualityContract qc,
                                      SimDuration exec_time, TenantId tenant) {
  WEBDB_CHECK(exec_time > 0);
  WEBDB_CHECK(tenant >= 0);
  for (ItemId item : items) {
    WEBDB_CHECK(item >= 0 && item < db_->NumItems());
  }
  queries_.emplace_back();
  Query& query = queries_.back();
  query.id = QueryTxnId(queries_.size() - 1);
  query.kind = TxnKind::kQuery;
  query.state = TxnState::kQueued;
  query.arrival = sim_->Now();
  query.service_time = exec_time;
  query.remaining = exec_time;
  query.type = type;
  query.items = std::move(items);
  query.qc = std::move(qc);
  query.tenant = tenant;

  ++metrics_.queries_submitted;
  ServerMetrics::TenantCounters* tenant_counters =
      config_.tenants != nullptr ? &metrics_.Tenant(tenant) : nullptr;
  if (tenant_counters != nullptr) ++*tenant_counters->submitted;
  Trace(query, TraceEventType::kSubmit);
  // Rejected queries still count against the submitted maximum: turning a
  // user away is not free profit-wise.
  ledger_.OnQuerySubmitted(query.qc, sim_->Now());
  // A cached answer costs no scan and holds no resources, so it is served
  // before admission: a query the controller would have turned away (or
  // shed queued work for) still gets its zero-cost answer.
  if (TryServeFromCache(query)) return &query;
  if (config_.admission != nullptr) {
    AdmissionContext context{sim_->Now(), sched_->NumQueuedQueries(),
                             sched_->NumQueuedUpdates(), cpus_.AnyBusy(),
                             cpus_.num_cpus(), this};
    // Admit may shed queued work through the ShedSink before answering.
    if (!config_.admission->Admit(query, context)) {
      query.state = TxnState::kRejected;
      ++metrics_.queries_rejected;
      if (tenant_counters != nullptr) ++*tenant_counters->rejected;
      Trace(query, TraceEventType::kReject);
      return &query;
    }
  }

  if (config_.lifetime_factor > 0.0) {
    const auto lifetime = std::max<SimDuration>(
        config_.min_lifetime,
        static_cast<SimDuration>(config_.lifetime_factor *
                                 static_cast<double>(query.qc.rt_max())));
    query.lifetime_deadline = query.arrival + lifetime;
    const TxnId id = query.id;
    sim_->ScheduleAt(query.lifetime_deadline,
                    [this, id] { OnLifetimeDeadline(id); });
  }

  sched_->OnQueryArrival(&query, sim_->Now());
  Trace(query, TraceEventType::kEnqueue);
  MaybeIndexForFusion(query);
  OnSchedulingEvent();
  return &query;
}

Update* WebDatabaseServer::SubmitUpdate(ItemId item, double value,
                                        SimDuration exec_time) {
  WEBDB_CHECK(exec_time > 0);
  WEBDB_CHECK(item >= 0 && item < db_->NumItems());
  updates_.emplace_back();
  Update& update = updates_.back();
  update.id = UpdateTxnId(updates_.size() - 1);
  update.kind = TxnKind::kUpdate;
  update.state = TxnState::kQueued;
  update.arrival = sim_->Now();
  update.service_time = exec_time;
  update.remaining = exec_time;
  update.item = item;
  update.value = value;
  update.item_arrival_seq = db_->RecordUpdateArrival(item, value, sim_->Now());
  update.fifo_rank = update.arrival;
  // Cache honesty: the instant an update *arrives* on a cached symbol the
  // cached answer's recorded staleness is stale itself — evict eagerly
  // (and again at apply, which changes the committed value).
  if (config_.fusion.result_cache) result_cache_.InvalidateItem(item);
  ++metrics_.updates_submitted;
  Trace(update, TraceEventType::kSubmit);

  // Write-write handling (Section 2.1): the new arrival supersedes both a
  // pending (queued) update and an already-dispatched one on the same item —
  // the older update is simply dropped. The register table has one entry per
  // item, so the new update inherits the dropped one's queue position
  // (fifo_rank) instead of starting over at the tail.
  const uint64_t superseded = register_.Register(item, update.id);
  if constexpr (audit::kEnabled) {
    // Newest-wins at the registration boundary: the register must now hold
    // this update, and anything it displaced must be a strictly older
    // arrival on the same item.
    WEBDB_AUDIT_THAT(audit::Invariant::kRegisterNewestWins,
                     register_.PendingFor(item) == update.id,
                     "register did not retain the newest update");
    if (superseded != 0) {
      const Update& old = UpdateFor(superseded);
      WEBDB_AUDIT_THAT(audit::Invariant::kRegisterNewestWins,
                       old.item == item &&
                           old.item_arrival_seq < update.item_arrival_seq,
                       "superseded update is not an older arrival on item " +
                           std::to_string(item));
    }
  }
  if (superseded != 0) {
    Update& old = UpdateFor(superseded);
    update.fifo_rank = old.fifo_rank;
    InvalidateUpdate(old);
  }
  auto active_it = active_updates_.find(item);
  if (active_it != active_updates_.end()) {
    Update& old = *active_it->second;
    update.fifo_rank = std::min(update.fifo_rank, old.fifo_rank);
    InvalidateUpdate(old);
  }

  sched_->OnUpdateArrival(&update, sim_->Now());
  Trace(update, TraceEventType::kEnqueue);
  OnSchedulingEvent();
  return &update;
}

void WebDatabaseServer::InvalidateUpdate(Update& update) {
  WEBDB_CHECK(update.state == TxnState::kQueued ||
              update.state == TxnState::kRunning);
  if (update.state == TxnState::kRunning) {
    Processor& cpu = cpus_.cpu(update.cpu);
    WEBDB_CHECK(cpu.busy() && cpu.current_task() == update.id);
    cpu.Abort();
    update.cpu = -1;
  } else {
    sched_->RemoveQueued(&update, sim_->Now());
  }
  locks_.ReleaseAll(update.id);
  active_updates_.erase(update.item);
  register_.Remove(update.item, update.id);
  update.state = TxnState::kInvalidated;
  ++metrics_.updates_invalidated;
  Trace(update, TraceEventType::kInvalidate);
  db_->RecordInvalidation(update.item);
}

void WebDatabaseServer::OnSchedulingEvent() {
  // Completion/abort callbacks and arrivals both land here; the guard keeps
  // accidental re-entry (e.g. through a future scheduler callback) harmless.
  if (in_scheduling_event_) return;
  in_scheduling_event_ = true;

  const int32_t num_cpus = cpus_.num_cpus();
  // Preemption sweep, then idle-CPU fill, both in ascending CPU order so the
  // schedule is a pure function of the event sequence.
  for (CpuId c = 0; c < num_cpus; ++c) {
    if (!cpus_.cpu(c).busy()) continue;
    Transaction* running = Lookup(cpus_.cpu(c).current_task());
    if (sched_->ShouldPreempt(c, *running, sim_->Now())) {
      PreemptRunning(c);
    }
  }
  for (CpuId c = 0; c < num_cpus; ++c) {
    while (!cpus_.cpu(c).busy()) {
      Transaction* next = sched_->PopNext(c, sim_->Now());
      if (next == nullptr) break;
      if (num_cpus > 1 && config_.enable_2plhp && HasRunningConflict(next)) {
        // Deferred dispatch: aborting a transaction mid-flight on another
        // CPU from inside this sweep would discard real progress for a
        // conflict that resolves by itself when the holder commits. Put the
        // candidate back and leave this CPU idle until the next event.
        sched_->Requeue(next, sim_->Now());
        break;
      }
      Dispatch(c, next);
    }
  }

  in_scheduling_event_ = false;
  ScheduleWake();
  MaybeStartSampling();
  MaybeStartSnapshots();
  if constexpr (audit::kEnabled) {
    if ((++audit_tick_ & kAuditStrideMask) == 0) AuditInvariants();
  }
}

void WebDatabaseServer::MaybeStartSampling() {
  if (config_.queue_sample_period <= 0 || sampling_active_) return;
  if (!cpus_.AnyBusy() && !sched_->HasWork()) return;
  sampling_active_ = true;
  sim_->ScheduleAfter(config_.queue_sample_period, [this] { SampleQueues(); });
}

void WebDatabaseServer::SampleQueues() {
  metrics_.queue_samples.push_back(ServerMetrics::QueueSample{
      sim_->Now(), sched_->NumQueuedQueries(), sched_->NumQueuedUpdates()});
  if (cpus_.AnyBusy() || sched_->HasWork()) {
    sim_->ScheduleAfter(config_.queue_sample_period,
                       [this] { SampleQueues(); });
  } else {
    sampling_active_ = false;
  }
}

void WebDatabaseServer::MaybeStartSnapshots() {
  if (config_.metric_snapshot_period <= 0 || snapshots_active_) return;
  if (!cpus_.AnyBusy() && !sched_->HasWork()) return;
  snapshots_active_ = true;
  sim_->ScheduleAfter(config_.metric_snapshot_period,
                     [this] { SnapshotMetrics(); });
}

void WebDatabaseServer::SnapshotMetrics() {
  sched_->ExportStats(metrics_.registry());
  metrics_.registry().RecordSnapshot(sim_->Now());
  if (cpus_.AnyBusy() || sched_->HasWork()) {
    sim_->ScheduleAfter(config_.metric_snapshot_period,
                       [this] { SnapshotMetrics(); });
  } else {
    snapshots_active_ = false;
  }
}

bool WebDatabaseServer::IsQuiescent() const {
  return !cpus_.AnyBusy() && !sched_->HasWork() &&
         locks_.NumLockedItems() == 0 && register_.Size() == 0 &&
         active_updates_.empty() && fusion_groups_.empty() &&
         fusion_index_.Size() == 0;
}

void WebDatabaseServer::PreemptRunning(CpuId cpu) {
  Processor& proc = cpus_.cpu(cpu);
  Transaction* running = Lookup(proc.current_task());
  running->remaining = std::max<SimDuration>(1, proc.Preempt());
  running->state = TxnState::kQueued;  // preempt-resume: locks are retained
  running->cpu = -1;
  ++metrics_.preemptions;
  Trace(*running, TraceEventType::kPreempt, ToMillis(running->remaining));
  sched_->Requeue(running, sim_->Now());
  Trace(*running, TraceEventType::kEnqueue);
}

void WebDatabaseServer::ResolveConflicts(Transaction* txn, LockMode mode,
                                         const std::vector<ItemId>& items) {
  // The transaction being dispatched embodies the scheduler's current
  // priority, so under 2PL-HP every conflicting holder is the loser and
  // restarts (releasing its locks and its progress). On a single CPU the
  // only possible holders are transactions preempted mid-execution; the
  // idle-CPU fill defers dispatch against RUNNING holders (multi-core), so
  // a running loser can only appear here via a wake-up-driven dispatch race
  // and is aborted off its CPU before restarting.
  for (TxnId holder_id : locks_.Conflicts(txn->id, mode, items)) {
    Transaction* holder = Lookup(holder_id);
    WEBDB_CHECK_MSG(holder->state == TxnState::kQueued ||
                        holder->state == TxnState::kRunning,
                    "lock held by a transaction that is neither preempted "
                    "nor running");
    Restart(holder);
  }
}

bool WebDatabaseServer::HasRunningConflict(Transaction* txn) {
  LockMode mode = LockMode::kShared;
  const std::vector<ItemId>* items = nullptr;
  std::vector<ItemId> update_items;
  if (txn->kind == TxnKind::kQuery) {
    items = &static_cast<Query*>(txn)->items;
  } else {
    mode = LockMode::kExclusive;
    update_items.push_back(static_cast<Update*>(txn)->item);
    items = &update_items;
  }
  for (TxnId holder_id : locks_.Conflicts(txn->id, mode, *items)) {
    if (Lookup(holder_id)->state == TxnState::kRunning) return true;
  }
  return false;
}

void WebDatabaseServer::Restart(Transaction* txn) {
  if (txn->kind == TxnKind::kQuery) {
    auto& query = *static_cast<Query*>(txn);
    // A restarted leader's scan never completes: its group dissolves and
    // the members go back to their queues before the leader re-enters its
    // own. (Members hold no locks, so they are never 2PL-HP losers
    // themselves.) The unindex is defensive — lock holders are not
    // candidates — and idempotent.
    DissolveFusionGroup(query);
    UnindexForFusion(query);
  }
  locks_.ReleaseAll(txn->id);
  if (txn->state == TxnState::kRunning) {
    // Multi-core loser caught mid-flight on another CPU: abort the attempt
    // (the processor discards the completion event) and fall through to the
    // normal requeue. It has no live queue entry to remove.
    Processor& proc = cpus_.cpu(txn->cpu);
    WEBDB_CHECK(proc.busy() && proc.current_task() == txn->id);
    proc.Abort();
    txn->cpu = -1;
  } else {
    // The loser was preempted mid-execution, so it still has a live entry in
    // its scheduler queue; drop it before requeueing or the queue's O(1)
    // depth counter overcounts (Push assumes no live entry).
    sched_->RemoveQueued(txn, sim_->Now());
  }
  // CPU time already sunk into the discarded attempt (2PL-HP loser cost).
  Trace(*txn, TraceEventType::kRestart,
        ToMillis(txn->service_time - txn->remaining));
  txn->remaining = txn->service_time;
  ++txn->restarts;
  if (txn->kind == TxnKind::kQuery) {
    ++metrics_.query_restarts;
  } else {
    // A restarted update is still the newest arrival for its item (a newer
    // one would have invalidated it), so it goes back to pending state.
    auto& update = *static_cast<Update*>(txn);
    active_updates_.erase(update.item);
    register_.Register(update.item, update.id);
    ++metrics_.update_restarts;
  }
  txn->state = TxnState::kQueued;
  sched_->Requeue(txn, sim_->Now());
  Trace(*txn, TraceEventType::kEnqueue);
  if (txn->kind == TxnKind::kQuery) {
    // Back at full service time with no locks: eligible to fuse again.
    MaybeIndexForFusion(*static_cast<Query*>(txn));
  }
}

void WebDatabaseServer::Dispatch(CpuId cpu, Transaction* txn) {
  WEBDB_CHECK(txn->state == TxnState::kQueued);
  if (txn->kind == TxnKind::kQuery) {
    auto& query = *static_cast<Query*>(txn);
    UnindexForFusion(query);
    if (config_.enable_2plhp) {
      ResolveConflicts(txn, LockMode::kShared, query.items);
      locks_.Acquire(txn->id, LockMode::kShared, query.items);
    }
    // Attach after conflict resolution so members join a scan that holds
    // its read locks (a restarted holder may even re-join as a member).
    AttachFusionMembers(query);
  } else {
    auto& update = *static_cast<Update*>(txn);
    const std::vector<ItemId> items = {update.item};
    if (config_.enable_2plhp) {
      ResolveConflicts(txn, LockMode::kExclusive, items);
      locks_.Acquire(txn->id, LockMode::kExclusive, items);
    }
    register_.Remove(update.item, update.id);
    active_updates_[update.item] = &update;
  }
  txn->state = TxnState::kRunning;
  txn->cpu = cpu;
  txn->remaining = std::max<SimDuration>(1, txn->remaining);
  Trace(*txn, TraceEventType::kDispatch);
  const TxnId id = txn->id;
  cpus_.cpu(cpu).Start(id, txn->remaining + config_.dispatch_overhead,
                       [this, cpu, id] { OnTxnComplete(cpu, id); });
}

void WebDatabaseServer::OnTxnComplete(CpuId cpu, TxnId id) {
  Transaction* txn = Lookup(id);
  WEBDB_CHECK(txn->state == TxnState::kRunning && txn->cpu == cpu);
  txn->cpu = -1;
  txn->remaining = 0;
  if (txn->kind == TxnKind::kQuery) {
    auto& query = *static_cast<Query*>(txn);
    CommitQuery(query);
    SettleFusionGroup(query);
    MaybeFillResultCache(query);
  } else {
    ApplyUpdate(*static_cast<Update*>(txn));
  }
  locks_.ReleaseAll(id);
  sched_->OnTxnFinished(*txn, sim_->Now());
  OnSchedulingEvent();
}

void WebDatabaseServer::CommitQuery(Query& query) {
  query.state = TxnState::kCommitted;
  query.commit_time = sim_->Now();
  // Cache honesty rule (DESIGN.md §14): a cache hit settles its QoD
  // contract against the cached data's age — staleness is anchored at the
  // producing scan's commit time, never at "now". Eager invalidation (at
  // update arrival and apply) guarantees the covered items are unchanged
  // since that instant, so this is the exact staleness the producing scan
  // itself was charged.
  const SimTime staleness_anchor =
      query.cache_source != 0 ? query.cached_commit_time : sim_->Now();
  query.staleness =
      QueryStaleness(*db_, query.items, config_.staleness_metric,
                     config_.staleness_combiner, staleness_anchor);
  if (sim_->Now() > query.lifetime_deadline) {
    // Finished past the maximum lifetime: QoS-Independent QCs pay nothing.
    query.profit = QualityContract::Evaluation{};
    ++metrics_.queries_expired;
  } else {
    query.profit = query.qc.Evaluate(query.ResponseTime(), query.staleness);
  }
  ++metrics_.queries_committed;
  metrics_.OnQueryCommitted(query.ResponseTime(), query.staleness);
  if (config_.tenants != nullptr) {
    ServerMetrics::TenantCounters& tenant = metrics_.Tenant(query.tenant);
    ++*tenant.committed;
    tenant.profit->Set(tenant.profit->value() + query.profit.Total());
  }
  Trace(query, TraceEventType::kCommit, query.staleness);
  ledger_.OnQueryCommitted(query.profit, sim_->Now());
  if (config_.admission != nullptr) {
    config_.admission->OnQueryFinished(query, sim_->Now());
  }
}

void WebDatabaseServer::ApplyUpdate(Update& update) {
  update.state = TxnState::kCommitted;
  update.commit_time = sim_->Now();
  db_->ApplyUpdate(update.item, update.item_arrival_seq, update.value,
                   sim_->Now());
  // An entry filled after this update's arrival (on a then-fresh item)
  // must not survive the value changing underneath it.
  if (config_.fusion.result_cache) result_cache_.InvalidateItem(update.item);
  active_updates_.erase(update.item);
  ++metrics_.updates_applied;
  metrics_.update_latency_ms.Add(ToMillis(update.ApplyLatency()));
  Trace(update, TraceEventType::kCommit, ToMillis(update.ApplyLatency()));
}

void WebDatabaseServer::OnLifetimeDeadline(TxnId id) {
  Query& query = QueryFor(id);
  // Not queued: committed, running, shed — or fused, in which case it
  // settles with the scan it rides on (zero profit when expired) or is
  // dropped at dissolution.
  if (query.state != TxnState::kQueued) return;
  // A preempted leader dropped at its deadline takes its scan with it.
  DissolveFusionGroup(query);
  UnindexForFusion(query);
  sched_->RemoveQueued(&query, sim_->Now());
  locks_.ReleaseAll(id);  // it may have been preempted while holding locks
  query.state = TxnState::kDropped;
  ++metrics_.queries_dropped;
  if (config_.tenants != nullptr) ++*metrics_.Tenant(query.tenant).dropped;
  Trace(query, TraceEventType::kDrop);
  if (config_.admission != nullptr) {
    config_.admission->OnQueryFinished(query, sim_->Now());
  }
  OnSchedulingEvent();
}

bool WebDatabaseServer::Shed(TxnId id) {
  Query& query = QueryFor(id);
  // Fused members report unsheddable (like running queries): their cost is
  // already sunk into the leader's scan, so evicting them frees no CPU.
  if (query.state != TxnState::kQueued) return false;
  DissolveFusionGroup(query);
  UnindexForFusion(query);
  sched_->RemoveQueued(&query, sim_->Now());
  locks_.ReleaseAll(id);  // it may have been preempted while holding locks
  query.state = TxnState::kShed;
  ++metrics_.queries_shed;
  if (config_.tenants != nullptr) ++*metrics_.Tenant(query.tenant).shed;
  Trace(query, TraceEventType::kShed);
  if (config_.admission != nullptr) {
    config_.admission->OnQueryFinished(query, sim_->Now());
  }
  // No OnSchedulingEvent: shedding only ever happens synchronously inside
  // SubmitQuery's admission check, which runs one after enqueueing the
  // admitted query — and removing queued (never running) work opens no
  // dispatch opportunity by itself.
  return true;
}

void WebDatabaseServer::MaybeIndexForFusion(Query& query) {
  if (!config_.fusion.enabled) return;
  if (query.state != TxnState::kQueued) return;
  if (query.items.empty() ||
      static_cast<int>(query.items.size()) >
          config_.fusion.max_leader_items) {
    return;
  }
  // Preempt-resumed queries carry progress and (under 2PL-HP) locks;
  // fusing one would discard real work or attach a lock holder. Only fresh
  // arrivals and clean restarts are candidates.
  if (query.remaining != query.service_time || locks_.HoldsAny(query.id)) {
    return;
  }
  if (EffectiveFusionDomain(query) < 0) return;
  fusion_index_.Insert(&query);
}

void WebDatabaseServer::UnindexForFusion(Query& query) {
  if (!config_.fusion.enabled) return;
  fusion_index_.Remove(query);
}

void WebDatabaseServer::AttachFusionMembers(Query& leader) {
  if (!config_.fusion.enabled || fusion_index_.Size() == 0) return;
  if (leader.items.empty() ||
      static_cast<int>(leader.items.size()) >
          config_.fusion.max_leader_items ||
      EffectiveFusionDomain(leader) < 0) {
    return;
  }
  auto group_it = fusion_groups_.find(leader.id);
  const int carried = group_it == fusion_groups_.end()
                          ? 0
                          : static_cast<int>(group_it->second.size());
  std::vector<TxnId> joined;
  fusion_index_.CollectCandidates(leader, config_.fusion.subset_fusion,
                                  config_.fusion.max_group_size - carried,
                                  &joined);
  if (joined.empty()) return;
  if (group_it == fusion_groups_.end()) {
    group_it = fusion_groups_.emplace(leader.id, std::vector<TxnId>()).first;
    ++metrics_.fusion_groups;
  }
  for (TxnId id : joined) {
    Query& member = QueryFor(id);
    WEBDB_CHECK(member.state == TxnState::kQueued && id != leader.id);
    UnindexForFusion(member);
    sched_->RemoveQueued(&member, sim_->Now());
    member.state = TxnState::kFused;
    member.fused_into = leader.id;
    group_it->second.push_back(id);
    Trace(member, TraceEventType::kFuse);
  }
}

void WebDatabaseServer::SettleFusionGroup(Query& leader) {
  const auto it = fusion_groups_.find(leader.id);
  if (it == fusion_groups_.end()) return;
  std::vector<TxnId> members = std::move(it->second);
  fusion_groups_.erase(it);
  // Snapshot the scan's answer once; every waiter shares the immutable
  // buffer (fused-result-mutation lint rule keeps aliases const).
  FusionResult answer;
  answer.leader = leader.id;
  answer.items = leader.items;
  answer.values.reserve(leader.items.size());
  for (ItemId item : leader.items) {
    answer.values.push_back(db_->Item(item).value);
  }
  answer.scan_complete = sim_->Now();
  const auto result = std::make_shared<const FusionResult>(std::move(answer));
  leader.fused_result = result;
  for (TxnId id : members) {
    Query& member = QueryFor(id);
    WEBDB_CHECK(member.state == TxnState::kFused &&
                member.fused_into == leader.id);
    // The member settles like any commit — own response time, own-item
    // staleness, own QC / tenant / admission books — at the scan's finish
    // time; only the fused marker and the shared answer differ. Its CPU
    // demand was never charged: the whole point.
    member.remaining = 0;
    member.fused_result = result;
    CommitQuery(member);
    ++metrics_.queries_fused;
  }
}

void WebDatabaseServer::DissolveFusionGroup(Query& leader) {
  const auto it = fusion_groups_.find(leader.id);
  if (it == fusion_groups_.end()) return;
  std::vector<TxnId> members = std::move(it->second);
  fusion_groups_.erase(it);
  for (TxnId id : members) {
    Query& member = QueryFor(id);
    WEBDB_CHECK(member.state == TxnState::kFused &&
                member.fused_into == leader.id);
    member.fused_into = 0;
    if (config_.lifetime_factor > 0.0 &&
        sim_->Now() >= member.lifetime_deadline) {
      // Its lifetime-deadline event fired while it was fused (and found
      // nothing queued to drop): settle the drop at dissolution instead of
      // requeueing a corpse that can never earn profit.
      member.state = TxnState::kDropped;
      ++metrics_.queries_dropped;
      if (config_.tenants != nullptr) {
        ++*metrics_.Tenant(member.tenant).dropped;
      }
      Trace(member, TraceEventType::kDrop);
      if (config_.admission != nullptr) {
        config_.admission->OnQueryFinished(member, sim_->Now());
      }
      continue;
    }
    member.state = TxnState::kQueued;
    sched_->Requeue(&member, sim_->Now());
    Trace(member, TraceEventType::kEnqueue);
    MaybeIndexForFusion(member);
  }
}

int WebDatabaseServer::EffectiveFusionDomain(const Query& query) const {
  const int domain = sched_->FusionDomain(query);
  if (domain >= 0 || !config_.fusion.cross_shard_rendezvous) return domain;
  return sched_->RendezvousDomain(query);
}

bool WebDatabaseServer::TryServeFromCache(Query& query) {
  if (!config_.fusion.enabled || !config_.fusion.result_cache) return false;
  if (query.items.empty() ||
      static_cast<int>(query.items.size()) >
          config_.fusion.max_leader_items) {
    return false;
  }
  // Same domain gate as queue fusion: a shape that could never fuse (e.g.
  // cross-shard without rendezvous) is never cache-served either.
  if (EffectiveFusionDomain(query) < 0) return false;
  const FusionResultCache::Entry* entry =
      result_cache_.Lookup(query, config_.fusion.subset_fusion, sim_->Now());
  if (entry == nullptr) return false;
  // Zero scan cost: the producing scan's CPU demand was charged once, at
  // its own commit. The answer's age is what this query pays — CommitQuery
  // anchors its staleness at the cached commit time.
  query.cache_source = entry->source;
  query.cached_commit_time = entry->commit_time;
  query.fused_result = entry->result;
  query.remaining = 0;
  ++metrics_.queries_cache_hits;
  Trace(query, TraceEventType::kCacheHit,
        ToMillis(sim_->Now() - entry->commit_time));
  CommitQuery(query);
  return true;
}

void WebDatabaseServer::MaybeFillResultCache(Query& query) {
  if (!config_.fusion.enabled || !config_.fusion.result_cache) return;
  if (config_.fusion.cache_ttl <= 0) return;
  if (query.items.empty() ||
      static_cast<int>(query.items.size()) >
          config_.fusion.max_leader_items) {
    return;
  }
  const int domain = EffectiveFusionDomain(query);
  if (domain < 0) return;
  std::shared_ptr<const FusionResult> result = query.fused_result;
  if (result == nullptr) {
    // Cacheable solo commit: snapshot the answer exactly as a group settle
    // would, without marking the query itself as fused.
    FusionResult answer;
    answer.leader = query.id;
    answer.items = query.items;
    answer.values.reserve(query.items.size());
    for (ItemId item : query.items) {
      answer.values.push_back(db_->Item(item).value);
    }
    answer.scan_complete = sim_->Now();
    result = std::make_shared<const FusionResult>(std::move(answer));
  }
  result_cache_.Fill(query, std::move(result), domain, sim_->Now(),
                     config_.fusion.cache_ttl, *db_);
  ++metrics_.cache_fills;
}

void WebDatabaseServer::ScheduleWake() {
  const int32_t num_cpus = cpus_.num_cpus();
  for (CpuId c = 0; c < num_cpus; ++c) {
    const SimTime t = sched_->NextDecisionTime(c, sim_->Now());
    if (t == wake_times_[c] && wake_events_[c] != 0 &&
        sim_->IsPending(wake_events_[c])) {
      continue;
    }
    if (wake_events_[c] != 0) sim_->Cancel(wake_events_[c]);
    wake_events_[c] = 0;
    wake_times_[c] = kSimTimeMax;
    if (t == kSimTimeMax) continue;
    wake_times_[c] = std::max(t, sim_->Now());
    wake_events_[c] = sim_->ScheduleAt(wake_times_[c], [this, c] {
      wake_events_[c] = 0;
      wake_times_[c] = kSimTimeMax;
      OnSchedulingEvent();
    });
  }
}

double WebDatabaseServer::CpuUtilization() const {
  const SimTime now = sim_->Now();
  if (now <= 0) return 0.0;
  return static_cast<double>(cpus_.TotalBusyTime()) /
         (static_cast<double>(now) * cpus_.num_cpus());
}

void WebDatabaseServer::AuditInvariants() const {
  using audit::Invariant;

  // --- dual-queue conservation: queries ------------------------------------
  int64_t queued_queries = 0;
  int64_t running = 0;
  int64_t committed = 0;
  int64_t dropped = 0;
  int64_t rejected = 0;
  int64_t shed = 0;
  int64_t fused = 0;
  // Per-tenant lifecycle tallies: submitted / still-live / committed /
  // dropped / rejected / shed, keyed by tenant id (only filled when the
  // run is tenant-aware).
  struct TenantTally {
    int64_t submitted = 0;
    int64_t live = 0;
    int64_t committed = 0;
    int64_t dropped = 0;
    int64_t rejected = 0;
    int64_t shed = 0;
  };
  std::map<TenantId, TenantTally> tenant_tallies;
  for (const Query& query : queries_) {
    TenantTally* tally = nullptr;
    if (config_.tenants != nullptr) {
      tally = &tenant_tallies[query.tenant];
      ++tally->submitted;
    }
    switch (query.state) {
      case TxnState::kQueued:
        ++queued_queries;
        if (tally != nullptr) ++tally->live;
        break;
      case TxnState::kRunning:
        ++running;
        if (tally != nullptr) ++tally->live;
        break;
      case TxnState::kCommitted:
        ++committed;
        if (tally != nullptr) ++tally->committed;
        break;
      case TxnState::kDropped:
        ++dropped;
        if (tally != nullptr) ++tally->dropped;
        break;
      case TxnState::kRejected:
        ++rejected;
        if (tally != nullptr) ++tally->rejected;
        break;
      case TxnState::kShed:
        ++shed;
        if (tally != nullptr) ++tally->shed;
        break;
      case TxnState::kFused:
        // Riding a live fused scan: out of every queue, off every CPU, but
        // still live for tenant/admission conservation purposes.
        ++fused;
        if (tally != nullptr) ++tally->live;
        break;
      case TxnState::kPending:
      case TxnState::kPreempted:
      case TxnState::kInvalidated:
        audit::Fail(Invariant::kDualQueueConservation, __FILE__, __LINE__,
                    "query " + std::to_string(query.id) +
                        " in impossible state " + ToString(query.state));
    }
  }
  WEBDB_AUDIT_THAT(Invariant::kDualQueueConservation,
                   metrics_.queries_submitted ==
                       static_cast<int64_t>(queries_.size()),
                   "queries_submitted counter disagrees with storage");
  WEBDB_AUDIT_THAT(
      Invariant::kDualQueueConservation,
      metrics_.queries_committed == committed &&
          metrics_.queries_dropped == dropped &&
          metrics_.queries_rejected == rejected,
      "query lifecycle counters disagree with per-transaction states");
  WEBDB_AUDIT_THAT(Invariant::kDualQueueConservation,
                   queued_queries == sched_->NumQueuedQueries(),
                   std::to_string(queued_queries) +
                       " queries in state queued but scheduler reports " +
                       std::to_string(sched_->NumQueuedQueries()));

  // --- admission conservation ----------------------------------------------
  // Arrived = admitted + rejected + shed: every submitted query is either
  // still live (queued/running), finished (committed/dropped), or was
  // turned away (rejected) or evicted (shed) by admission control — and the
  // shed counter matches the per-query states exactly.
  WEBDB_AUDIT_THAT(Invariant::kAdmissionConservation,
                   metrics_.queries_shed == shed,
                   "queries_shed counter disagrees with per-query states");
  WEBDB_AUDIT_THAT(
      Invariant::kAdmissionConservation,
      metrics_.queries_submitted == queued_queries + running + fused +
                                        committed + dropped + rejected + shed,
      "admission conservation: submitted != live + finished + refused");
  if (config_.tenants != nullptr) {
    for (const auto& [tenant, tally] : tenant_tallies) {
      const ServerMetrics::TenantCounters* counters =
          metrics_.FindTenant(tenant);
      WEBDB_AUDIT_THAT(Invariant::kAdmissionConservation, counters != nullptr,
                       "tenant " + std::to_string(tenant) +
                           " submitted queries but has no counters");
      WEBDB_AUDIT_THAT(
          Invariant::kAdmissionConservation,
          counters->submitted->value() == tally.submitted &&
              counters->committed->value() == tally.committed &&
              counters->dropped->value() == tally.dropped &&
              counters->rejected->value() == tally.rejected &&
              counters->shed->value() == tally.shed,
          "tenant " + std::to_string(tenant) +
              " lifecycle counters disagree with per-query states");
      WEBDB_AUDIT_THAT(
          Invariant::kAdmissionConservation,
          tally.submitted == tally.live + tally.committed + tally.dropped +
                                 tally.rejected + tally.shed,
          "tenant " + std::to_string(tenant) +
              " admission conservation violated");
    }
  }
  if (config_.admission != nullptr) {
    // Controller-internal bookkeeping (e.g. DBF demand nodes vs tracked
    // entries, per CPU lane).
    config_.admission->AuditInvariants(sim_->Now());
  }

  // --- dual-queue conservation: updates ------------------------------------
  int64_t queued_updates = 0;
  int64_t applied = 0;
  int64_t invalidated = 0;
  for (const Update& update : updates_) {
    switch (update.state) {
      case TxnState::kQueued:
        ++queued_updates;
        break;
      case TxnState::kRunning:
        ++running;
        break;
      case TxnState::kCommitted:
        ++applied;
        break;
      case TxnState::kInvalidated:
        ++invalidated;
        break;
      case TxnState::kPending:
      case TxnState::kPreempted:
      case TxnState::kDropped:
      case TxnState::kRejected:
      case TxnState::kShed:
      case TxnState::kFused:
        audit::Fail(Invariant::kDualQueueConservation, __FILE__, __LINE__,
                    "update " + std::to_string(update.id) +
                        " in impossible state " + ToString(update.state));
    }
  }
  WEBDB_AUDIT_THAT(Invariant::kDualQueueConservation,
                   metrics_.updates_submitted ==
                       static_cast<int64_t>(updates_.size()),
                   "updates_submitted counter disagrees with storage");
  WEBDB_AUDIT_THAT(
      Invariant::kDualQueueConservation,
      metrics_.updates_applied == applied &&
          metrics_.updates_invalidated == invalidated,
      "update lifecycle counters disagree with per-transaction states");
  // A dispatched-then-preempted update is state kQueued *and* still in the
  // scheduler queue, so queue depths match exactly as for queries.
  WEBDB_AUDIT_THAT(Invariant::kDualQueueConservation,
                   queued_updates == sched_->NumQueuedUpdates(),
                   std::to_string(queued_updates) +
                       " updates in state queued but scheduler reports " +
                       std::to_string(sched_->NumQueuedUpdates()));

  // --- CPU set -----------------------------------------------------------
  // Per-CPU conservation: the transactions in state running are exactly the
  // occupants of the busy CPUs, each agreeing on who runs where.
  WEBDB_AUDIT_THAT(Invariant::kDualQueueConservation,
                   running == cpus_.NumBusy(),
                   std::to_string(running) +
                       " transactions in state running but " +
                       std::to_string(cpus_.NumBusy()) + " CPUs busy");
  for (CpuId c = 0; c < cpus_.num_cpus(); ++c) {
    if (!cpus_.cpu(c).busy()) continue;
    const Transaction* on_cpu = const_cast<WebDatabaseServer*>(this)->Lookup(
        cpus_.cpu(c).current_task());
    WEBDB_AUDIT_THAT(Invariant::kDualQueueConservation,
                     on_cpu->state == TxnState::kRunning && on_cpu->cpu == c,
                     "occupant of CPU " + std::to_string(c) +
                         " is not running there");
  }
  for (const Query& query : queries_) {
    WEBDB_AUDIT_THAT(Invariant::kDualQueueConservation,
                     (query.state == TxnState::kRunning) == (query.cpu >= 0),
                     "query " + std::to_string(query.id) +
                         " cpu binding disagrees with its state");
  }
  for (const Update& update : updates_) {
    WEBDB_AUDIT_THAT(Invariant::kDualQueueConservation,
                     (update.state == TxnState::kRunning) == (update.cpu >= 0),
                     "update " + std::to_string(update.id) +
                         " cpu binding disagrees with its state");
  }

  // --- update-register newest-wins ----------------------------------------
  auto* self = const_cast<WebDatabaseServer*>(this);
  for (const auto& [item, txn_id] : register_.PendingEntries()) {
    const Update& pending = self->UpdateFor(txn_id);
    WEBDB_AUDIT_THAT(Invariant::kRegisterNewestWins,
                     pending.item == item &&
                         pending.state == TxnState::kQueued,
                     "register entry for item " + std::to_string(item) +
                         " is not a queued update on that item");
    // Any newer arrival would have superseded this entry at submission, so
    // the pending update must carry the item's newest arrival sequence.
    WEBDB_AUDIT_THAT(Invariant::kRegisterNewestWins,
                     pending.item_arrival_seq == db_->Item(item).arrival_seq,
                     "register entry for item " + std::to_string(item) +
                         " is not the newest arrival");
  }
  // lint:allow(unordered-serialization) per-entry audit, order-free
  for (const auto& [item, update] : active_updates_) {
    WEBDB_AUDIT_THAT(Invariant::kRegisterNewestWins,
                     update->item == item &&
                         (update->state == TxnState::kQueued ||
                          update->state == TxnState::kRunning),
                     "active update on item " + std::to_string(item) +
                         " is neither running nor preempted");
  }

  // --- lock table ---------------------------------------------------------
  locks_.AuditConsistency();
  for (const Query& query : queries_) {
    if (query.state == TxnState::kCommitted ||
        query.state == TxnState::kDropped ||
        query.state == TxnState::kRejected ||
        query.state == TxnState::kShed) {
      WEBDB_AUDIT_THAT(Invariant::kLockTableConsistent,
                       !locks_.HoldsAny(query.id),
                       "finished query " + std::to_string(query.id) +
                           " leaked locks");
    }
  }
  for (const Update& update : updates_) {
    if (update.state == TxnState::kCommitted ||
        update.state == TxnState::kInvalidated) {
      WEBDB_AUDIT_THAT(Invariant::kLockTableConsistent,
                       !locks_.HoldsAny(update.id),
                       "finished update " + std::to_string(update.id) +
                           " leaked locks");
    }
  }

  // --- fusion groups (shared execution, DESIGN.md §13) ---------------------
  // The kFused population is exactly the union of the live groups' members,
  // membership is disjoint, members are lock-free and unsettled (no member
  // settles before its group's scan completes), and every leader is still
  // in flight (running, or preempted back to queued).
  {
    int64_t group_members = 0;
    std::set<TxnId> seen;
    for (const auto& [leader_id, members] : fusion_groups_) {
      const Query& leader = self->QueryFor(leader_id);
      WEBDB_AUDIT_THAT(Invariant::kFusionGroup,
                       leader.state == TxnState::kRunning ||
                           leader.state == TxnState::kQueued,
                       "fusion leader " + std::to_string(leader_id) +
                           " is no longer in flight");
      WEBDB_AUDIT_THAT(Invariant::kFusionGroup, leader.fused_into == 0,
                       "fusion leader " + std::to_string(leader_id) +
                           " is itself fused into another group");
      WEBDB_AUDIT_THAT(Invariant::kFusionGroup, !members.empty(),
                       "empty fusion group led by " +
                           std::to_string(leader_id));
      for (TxnId member_id : members) {
        const Query& member = self->QueryFor(member_id);
        WEBDB_AUDIT_THAT(Invariant::kFusionGroup,
                         seen.insert(member_id).second,
                         "fusion membership not disjoint: query " +
                             std::to_string(member_id) + " in two groups");
        WEBDB_AUDIT_THAT(Invariant::kFusionGroup,
                         member.state == TxnState::kFused,
                         "member " + std::to_string(member_id) +
                             " settled before its group's scan completed");
        WEBDB_AUDIT_THAT(Invariant::kFusionGroup,
                         member.fused_into == leader_id,
                         "member " + std::to_string(member_id) +
                             " does not point back at its leader");
        WEBDB_AUDIT_THAT(Invariant::kFusionGroup, !locks_.HoldsAny(member_id),
                         "fused member " + std::to_string(member_id) +
                             " holds locks");
        WEBDB_AUDIT_THAT(Invariant::kFusionGroup,
                         member.fused_result == nullptr,
                         "member " + std::to_string(member_id) +
                             " holds a result before the scan completed");
        ++group_members;
      }
    }
    WEBDB_AUDIT_THAT(Invariant::kFusionGroup, group_members == fused,
                     std::to_string(fused) +
                         " queries in state fused but live groups hold " +
                         std::to_string(group_members) + " members");
    WEBDB_AUDIT_THAT(Invariant::kFusionGroup,
                     metrics_.queries_fused <= metrics_.queries_committed,
                     "more fused settlements than commits");
  }

  // --- fused-result cache conservation (DESIGN.md §14) ---------------------
  // Every cache hit maps to exactly one committed scan (its source), is
  // settled against that scan's commit time, and was served within TTL of
  // it; live entries never outlive an update (arrival or apply) to any
  // cached symbol — the per-item sequence snapshots must still match the
  // database exactly.
  {
    int64_t hits = 0;
    for (const Query& query : queries_) {
      if (query.cache_source == 0) continue;
      ++hits;
      const std::string who = "cache hit " + std::to_string(query.id);
      WEBDB_AUDIT_THAT(Invariant::kFusionCache,
                       query.state == TxnState::kCommitted,
                       who + " is not committed");
      WEBDB_AUDIT_THAT(Invariant::kFusionCache, query.fused_result != nullptr,
                       who + " carries no shared result");
      const Query& source = self->QueryFor(query.cache_source);
      WEBDB_AUDIT_THAT(Invariant::kFusionCache,
                       source.state == TxnState::kCommitted,
                       who + " maps to an uncommitted source");
      WEBDB_AUDIT_THAT(Invariant::kFusionCache, source.cache_source == 0,
                       who + " maps to another cache hit, not a scan");
      WEBDB_AUDIT_THAT(Invariant::kFusionCache,
                       query.cached_commit_time == source.commit_time,
                       who + " settled against the wrong commit time");
      WEBDB_AUDIT_THAT(
          Invariant::kFusionCache,
          query.commit_time >= query.cached_commit_time &&
              query.commit_time - query.cached_commit_time <=
                  config_.fusion.cache_ttl,
          who + " was served outside the cache TTL");
    }
    WEBDB_AUDIT_THAT(Invariant::kFusionCache,
                     metrics_.queries_cache_hits == hits,
                     "cache-hit counter disagrees with per-query states");
    WEBDB_AUDIT_THAT(Invariant::kFusionCache,
                     metrics_.cache_fills >= result_cache_.Size(),
                     "more live cache entries than fills");
    for (const auto& [signature, entry] : result_cache_.EntriesForAudit()) {
      const std::string which = "cache entry " + std::to_string(signature);
      const Query& source = self->QueryFor(entry.source);
      WEBDB_AUDIT_THAT(Invariant::kFusionCache,
                       source.state == TxnState::kCommitted &&
                           source.cache_source == 0,
                       which + " was not produced by a committed scan");
      WEBDB_AUDIT_THAT(Invariant::kFusionCache,
                       entry.result != nullptr && entry.domain >= 0,
                       which + " has no shareable result");
      WEBDB_AUDIT_THAT(Invariant::kFusionCache,
                       entry.expiry ==
                           entry.commit_time + config_.fusion.cache_ttl,
                       which + " has a TTL the config does not explain");
      WEBDB_AUDIT_THAT(Invariant::kFusionCache,
                       entry.arrival_seqs.size() ==
                               entry.sorted_items.size() &&
                           entry.applied_seqs.size() ==
                               entry.sorted_items.size(),
                       which + " sequence snapshot is malformed");
      for (size_t i = 0; i < entry.sorted_items.size(); ++i) {
        const DataItem& item = db_->Item(entry.sorted_items[i]);
        WEBDB_AUDIT_THAT(
            Invariant::kFusionCache,
            item.arrival_seq == entry.arrival_seqs[i] &&
                item.applied_seq == entry.applied_seqs[i],
            which + " outlived an update to item " +
                std::to_string(entry.sorted_items[i]));
      }
    }
  }

  // --- rendezvous groups (cross-shard fusion, DESIGN.md §14) ---------------
  // A live group whose leader spans shards only exists under the rendezvous
  // flag, and every member shares the leader's shareable domain: either an
  // exact look-alike (same class, same sorted items — hence the same shard
  // set) or a single-item lookup the leader's scan covers.
  {
    for (const auto& [leader_id, members] : fusion_groups_) {
      const Query& leader = self->QueryFor(leader_id);
      if (sched_->FusionDomain(leader) >= 0) continue;  // single-shard group
      const std::string who =
          "rendezvous group led by " + std::to_string(leader_id);
      WEBDB_AUDIT_THAT(Invariant::kRendezvousGroup,
                       config_.fusion.cross_shard_rendezvous,
                       who + " exists with rendezvous disabled");
      const int domain = EffectiveFusionDomain(leader);
      WEBDB_AUDIT_THAT(Invariant::kRendezvousGroup, domain >= 0,
                       who + " has no shareable domain");
      std::vector<ItemId> leader_sorted = leader.items;
      std::sort(leader_sorted.begin(), leader_sorted.end());
      for (TxnId member_id : members) {
        const Query& member = self->QueryFor(member_id);
        const bool covered_lookup =
            member.items.size() == 1 &&
            std::binary_search(leader_sorted.begin(), leader_sorted.end(),
                               member.items[0]);
        if (covered_lookup) continue;
        std::vector<ItemId> member_sorted = member.items;
        std::sort(member_sorted.begin(), member_sorted.end());
        WEBDB_AUDIT_THAT(
            Invariant::kRendezvousGroup,
            ServiceClassOf(member.type) == ServiceClassOf(leader.type) &&
                member_sorted == leader_sorted &&
                EffectiveFusionDomain(member) == domain,
            who + ": member " + std::to_string(member_id) +
                " is neither an exact look-alike nor covered");
      }
    }
  }

  // --- profit-ledger conservation against the metric registry -------------
  WEBDB_AUDIT_THAT(Invariant::kLedgerConservation,
                   static_cast<int64_t>(ledger_.queries_submitted()) ==
                       metrics_.queries_submitted,
                   "ledger submissions disagree with registry counter");
  WEBDB_AUDIT_THAT(Invariant::kLedgerConservation,
                   static_cast<int64_t>(ledger_.queries_committed()) ==
                       metrics_.queries_committed,
                   "ledger commits disagree with registry counter");
  // Gained profit can never exceed the submitted maximum (per query the
  // evaluation is clamped to [0, max]; totals inherit it). The series are
  // bucket sums of the same samples, so they must re-add to the totals.
  const auto series_total = [](const TimeSeries& series) {
    double sum = 0.0;
    for (size_t i = 0; i < series.NumBuckets(); ++i) {
      sum += series.BucketSum(i);
    }
    return sum;
  };
  const double tolerance =
      1e-6 * (1.0 + ledger_.total_max());  // FP re-association slack
  WEBDB_AUDIT_THAT(Invariant::kLedgerConservation,
                   ledger_.qos_gained() <= ledger_.qos_max() + tolerance &&
                       ledger_.qod_gained() <= ledger_.qod_max() + tolerance,
                   "gained profit exceeds the submitted maximum");
  WEBDB_AUDIT_THAT(
      Invariant::kLedgerConservation,
      std::abs(series_total(ledger_.qos_gained_series()) -
               ledger_.qos_gained()) <= tolerance &&
          std::abs(series_total(ledger_.qod_gained_series()) -
                   ledger_.qod_gained()) <= tolerance &&
          std::abs(series_total(ledger_.qos_max_series()) -
                   ledger_.qos_max()) <= tolerance &&
          std::abs(series_total(ledger_.qod_max_series()) -
                   ledger_.qod_max()) <= tolerance,
      "profit time series do not re-add to the ledger totals");
}

uint64_t WebDatabaseServer::EndStateHash() const {
  audit::Fnv1aHasher hasher;
  hasher.MixU64(queries_.size());
  for (const Query& query : queries_) {
    hasher.MixByte(static_cast<uint8_t>(query.state));
    hasher.MixI64(query.arrival);
    hasher.MixI64(query.state == TxnState::kCommitted ? query.commit_time
                                                      : 0);
    hasher.MixU64(static_cast<uint64_t>(query.restarts));
  }
  hasher.MixU64(updates_.size());
  for (const Update& update : updates_) {
    hasher.MixByte(static_cast<uint8_t>(update.state));
    hasher.MixI64(update.arrival);
    hasher.MixI64(update.state == TxnState::kCommitted ? update.commit_time
                                                       : 0);
    hasher.MixU64(static_cast<uint64_t>(update.item));
    hasher.MixU64(update.item_arrival_seq);
  }
  const int32_t num_items = db_->NumItems();
  hasher.MixU64(static_cast<uint64_t>(num_items));
  for (ItemId item = 0; item < num_items; ++item) {
    const DataItem& data = db_->Item(item);
    hasher.MixU64(data.arrival_seq);
    hasher.MixU64(data.applied_seq);
    hasher.MixU64(data.applied_count);
    hasher.MixU64(data.invalidated_count);
    // Installed verbatim from the trace (never computed), so the bit
    // pattern is compiler-independent.
    hasher.MixDouble(data.value);
  }
  hasher.MixI64(metrics_.queries_committed);
  hasher.MixI64(metrics_.queries_dropped);
  hasher.MixI64(metrics_.queries_expired);
  hasher.MixI64(metrics_.queries_rejected);
  hasher.MixI64(metrics_.query_restarts);
  hasher.MixI64(metrics_.updates_applied);
  hasher.MixI64(metrics_.updates_invalidated);
  hasher.MixI64(metrics_.update_restarts);
  hasher.MixI64(metrics_.preemptions);
  hasher.MixI64(sim_->Now());
  return hasher.hash();
}

}  // namespace webdb
