#include "server/metrics.h"

#include <sstream>

namespace webdb {

ServerMetrics::ServerMetrics()
    : queries_submitted(registry_.GetCounter("server.queries.submitted")),
      queries_committed(registry_.GetCounter("server.queries.committed")),
      queries_expired(registry_.GetCounter("server.queries.expired")),
      queries_dropped(registry_.GetCounter("server.queries.dropped")),
      queries_rejected(registry_.GetCounter("server.queries.rejected")),
      queries_shed(registry_.GetCounter("server.queries.shed")),
      queries_fused(registry_.GetCounter("server.queries.fused")),
      fusion_groups(registry_.GetCounter("server.fusion.groups")),
      queries_cache_hits(registry_.GetCounter("server.queries.cache_hits")),
      cache_fills(registry_.GetCounter("server.fusion.cache_fills")),
      query_restarts(registry_.GetCounter("txn.restarts.query")),
      updates_submitted(registry_.GetCounter("server.updates.submitted")),
      updates_applied(registry_.GetCounter("server.updates.applied")),
      updates_invalidated(registry_.GetCounter("server.updates.invalidated")),
      update_restarts(registry_.GetCounter("txn.restarts.update")),
      preemptions(registry_.GetCounter("txn.preemptions")),
      // 1 ms .. ~9.3 hours in 25 geometric buckets.
      response_time_hist(registry_.GetHistogram(
          "server.response_time_ms", Histogram::Exponential(1.0, 2.0, 25))) {}

ServerMetrics::TenantCounters& ServerMetrics::Tenant(TenantId tenant) {
  auto it = tenant_counters_.find(tenant);
  if (it != tenant_counters_.end()) return it->second;
  const std::string prefix =
      "server.tenant" + std::to_string(tenant) + ".";
  TenantCounters counters;
  counters.submitted = &registry_.GetCounter(prefix + "queries.submitted");
  counters.committed = &registry_.GetCounter(prefix + "queries.committed");
  counters.rejected = &registry_.GetCounter(prefix + "queries.rejected");
  counters.shed = &registry_.GetCounter(prefix + "queries.shed");
  counters.dropped = &registry_.GetCounter(prefix + "queries.dropped");
  counters.profit = &registry_.GetGauge(prefix + "profit");
  return tenant_counters_.emplace(tenant, counters).first->second;
}

const ServerMetrics::TenantCounters* ServerMetrics::FindTenant(
    TenantId tenant) const {
  const auto it = tenant_counters_.find(tenant);
  return it == tenant_counters_.end() ? nullptr : &it->second;
}

void ServerMetrics::OnQueryCommitted(SimDuration response_time,
                                     double staleness_value) {
  const double rt_ms = ToMillis(response_time);
  response_time_ms.Add(rt_ms);
  response_time_hist.Add(rt_ms);
  staleness.Add(staleness_value);
}

std::string ServerMetrics::Summary() const {
  std::ostringstream out;
  out << "queries: submitted=" << queries_submitted.value()
      << " committed=" << queries_committed.value()
      << " expired=" << queries_expired.value()
      << " dropped=" << queries_dropped.value()
      << " rejected=" << queries_rejected.value()
      << " shed=" << queries_shed.value()
      << " restarts=" << query_restarts.value() << '\n';
  out << "updates: submitted=" << updates_submitted.value()
      << " applied=" << updates_applied.value()
      << " invalidated=" << updates_invalidated.value()
      << " restarts=" << update_restarts.value() << '\n';
  out << "preemptions=" << preemptions.value() << '\n';
  out << "avg response time = " << response_time_ms.mean() << " ms (p50 "
      << response_time_hist.Quantile(0.5) << ", p99 "
      << response_time_hist.Quantile(0.99) << ")\n";
  out << "avg staleness = " << staleness.mean() << '\n';
  return out.str();
}

}  // namespace webdb
