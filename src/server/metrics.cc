#include "server/metrics.h"

#include <sstream>

namespace webdb {

ServerMetrics::ServerMetrics()
    // 1 ms .. ~9.3 hours in 25 geometric buckets.
    : response_time_hist(Histogram::Exponential(1.0, 2.0, 25)) {}

void ServerMetrics::OnQueryCommitted(SimDuration response_time,
                                     double staleness_value) {
  const double rt_ms = ToMillis(response_time);
  response_time_ms.Add(rt_ms);
  response_time_hist.Add(rt_ms);
  staleness.Add(staleness_value);
}

std::string ServerMetrics::Summary() const {
  std::ostringstream out;
  out << "queries: submitted=" << queries_submitted
      << " committed=" << queries_committed << " expired=" << queries_expired
      << " dropped=" << queries_dropped << " rejected=" << queries_rejected
      << " restarts=" << query_restarts << '\n';
  out << "updates: submitted=" << updates_submitted
      << " applied=" << updates_applied
      << " invalidated=" << updates_invalidated
      << " restarts=" << update_restarts << '\n';
  out << "preemptions=" << preemptions << '\n';
  out << "avg response time = " << response_time_ms.mean() << " ms (p50 "
      << response_time_hist.Quantile(0.5) << ", p99 "
      << response_time_hist.Quantile(0.99) << ")\n";
  out << "avg staleness = " << staleness.mean() << '\n';
  return out.str();
}

}  // namespace webdb
