// Server-side performance counters and distributions: everything the
// experiment harness reports that is not profit (profit lives in
// qc/ProfitLedger).

#ifndef WEBDB_SERVER_METRICS_H_
#define WEBDB_SERVER_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/stats.h"
#include "util/time.h"

namespace webdb {

class ServerMetrics {
 public:
  ServerMetrics();

  // --- transaction lifecycle counters -------------------------------------
  int64_t queries_submitted = 0;
  int64_t queries_committed = 0;
  // Committed, but after the lifetime deadline: earns zero profit.
  int64_t queries_expired = 0;
  // Dropped from the queue at the lifetime deadline.
  int64_t queries_dropped = 0;
  // Refused by admission control at submission time.
  int64_t queries_rejected = 0;
  int64_t query_restarts = 0;

  int64_t updates_submitted = 0;
  int64_t updates_applied = 0;
  int64_t updates_invalidated = 0;
  int64_t update_restarts = 0;

  int64_t preemptions = 0;

  // --- distributions over committed queries --------------------------------
  RunningStats response_time_ms;
  RunningStats staleness;  // in the configured metric's unit
  Histogram response_time_hist;
  // Arrival -> applied lag of committed updates (the freshness pipeline).
  RunningStats update_latency_ms;

  // Periodic queue-depth samples (only when ServerConfig::
  // queue_sample_period > 0).
  struct QueueSample {
    SimTime time;
    int64_t queries;
    int64_t updates;
  };
  std::vector<QueueSample> queue_samples;

  // --- recorders ------------------------------------------------------------
  void OnQueryCommitted(SimDuration response_time, double staleness_value);

  // Multi-line summary for examples and debugging.
  std::string Summary() const;
};

}  // namespace webdb

#endif  // WEBDB_SERVER_METRICS_H_
