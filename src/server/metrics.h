// Server-side performance counters and distributions: everything the
// experiment harness reports that is not profit (profit lives in
// qc/ProfitLedger).
//
// ServerMetrics is a thin view over an obs::MetricRegistry: every lifecycle
// counter is a registry-owned metric with a stable `server.*` / `txn.*`
// name, so the same numbers are reachable both through the familiar field
// names below (`metrics.queries_committed`) and through registry snapshots
// (`registry().Snap(now)`), alongside whatever the scheduler exports under
// `scheduler.*`.

#ifndef WEBDB_SERVER_METRICS_H_
#define WEBDB_SERVER_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metric_registry.h"
#include "txn/transaction.h"
#include "util/histogram.h"
#include "util/stats.h"
#include "util/time.h"

namespace webdb {

class ServerMetrics {
  // Declared first: the counter references below bind into it.
  MetricRegistry registry_;

 public:
  ServerMetrics();
  ServerMetrics(const ServerMetrics&) = delete;
  ServerMetrics& operator=(const ServerMetrics&) = delete;

  // The registry backing every counter below; the server also feeds it
  // periodic snapshots and scheduler exports.
  MetricRegistry& registry() { return registry_; }
  const MetricRegistry& registry() const { return registry_; }

  // --- transaction lifecycle counters (registry-backed) --------------------
  Counter& queries_submitted;  // server.queries.submitted
  Counter& queries_committed;  // server.queries.committed
  // Committed, but after the lifetime deadline: earns zero profit.
  Counter& queries_expired;  // server.queries.expired
  // Dropped from the queue at the lifetime deadline.
  Counter& queries_dropped;  // server.queries.dropped
  // Refused by admission control at submission time.
  Counter& queries_rejected;  // server.queries.rejected
  // Admitted, then evicted from the queue by admission control (DbfAdmission
  // load shedding).
  Counter& queries_shed;    // server.queries.shed
  // Committed as members of a fused scan (shared execution); a subset of
  // queries_committed. The leader of a group counts as a normal commit.
  Counter& queries_fused;  // server.queries.fused
  // Fusion groups formed (leaders that attached at least one member).
  Counter& fusion_groups;   // server.fusion.groups
  // Answered from the fused-result cache at submit (zero scan cost); a
  // subset of queries_committed, disjoint from queries_fused.
  Counter& queries_cache_hits;  // server.queries.cache_hits
  // Committed scans retained in the fused-result cache.
  Counter& cache_fills;     // server.fusion.cache_fills
  Counter& query_restarts;  // txn.restarts.query

  Counter& updates_submitted;    // server.updates.submitted
  Counter& updates_applied;      // server.updates.applied
  Counter& updates_invalidated;  // server.updates.invalidated
  Counter& update_restarts;      // txn.restarts.update

  Counter& preemptions;  // txn.preemptions

  // --- distributions over committed queries --------------------------------
  RunningStats response_time_ms;
  RunningStats staleness;  // in the configured metric's unit
  Histogram& response_time_hist;  // server.response_time_ms (registry-owned)
  // Arrival -> applied lag of committed updates (the freshness pipeline).
  RunningStats update_latency_ms;

  // Periodic queue-depth samples (only when ServerConfig::
  // queue_sample_period > 0).
  struct QueueSample {
    SimTime time;
    int64_t queries;
    int64_t updates;
  };
  std::vector<QueueSample> queue_samples;

  // --- per-tenant lifecycle accounting (registry-backed, lazily created) ----
  // Registered under "server.tenant<k>.*" on first use of tenant k, so
  // tenant-unaware runs carry no extra metrics (and no snapshot noise).
  struct TenantCounters {
    Counter* submitted = nullptr;  // server.tenant<k>.queries.submitted
    Counter* committed = nullptr;  // server.tenant<k>.queries.committed
    Counter* rejected = nullptr;   // server.tenant<k>.queries.rejected
    Counter* shed = nullptr;       // server.tenant<k>.queries.shed
    Counter* dropped = nullptr;    // server.tenant<k>.queries.dropped
    Gauge* profit = nullptr;       // server.tenant<k>.profit (running total)
  };
  TenantCounters& Tenant(TenantId tenant);
  // nullptr when tenant `tenant` never submitted.
  const TenantCounters* FindTenant(TenantId tenant) const;
  const std::map<TenantId, TenantCounters>& tenants() const {
    return tenant_counters_;
  }

  // --- recorders ------------------------------------------------------------
  void OnQueryCommitted(SimDuration response_time, double staleness_value);

  // Multi-line summary for examples and debugging.
  std::string Summary() const;

 private:
  std::map<TenantId, TenantCounters> tenant_counters_;
};

}  // namespace webdb

#endif  // WEBDB_SERVER_METRICS_H_
