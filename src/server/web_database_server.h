// WebDatabaseServer: the simulated main-memory web-database of Section 2,
// generalized from the paper's single preemptible CPU to a CPU set.
//
// Owns the event loop glue between the discrete-event simulator, a pool of
// preemptible CPUs, the database (+ update register), the 2PL-HP lock
// manager, a pluggable CPU-set scheduler, and the profit ledger. Clients
// submit read-only queries (with Quality Contracts) and blind updates; the
// server plays out the schedule and accounts response time, staleness, and
// profit. The pool is sized from the scheduler's num_cpus(); legacy
// single-CPU policies enter through an internally owned SingleCpuAdapter,
// which reproduces the paper's single-CPU server call-for-call.
//
// Lifecycle of a query:
//   Submit -> scheduler queue -> dispatch (read-lock item set) -> [preempt /
//   2PL-HP restart]* -> commit (measure response time + staleness, evaluate
//   QC) | drop at lifetime deadline.
// Lifecycle of an update:
//   Submit (register; invalidate older pending/active update on the item)
//   -> dispatch (write-lock item) -> [preempt / restart]* -> apply | be
//   invalidated by a newer arrival.

#ifndef WEBDB_SERVER_WEB_DATABASE_SERVER_H_
#define WEBDB_SERVER_WEB_DATABASE_SERVER_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "db/staleness.h"
#include "db/update_register.h"
#include "qc/profit_ledger.h"
#include "qc/quality_contract.h"
#include "server/fusion.h"
#include "sched/cpu_set_scheduler.h"
#include "sched/scheduler.h"
#include "server/metrics.h"
#include "server/server_config.h"
#include "sim/processor_pool.h"
#include "sim/simulator.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "util/stable_vector.h"

namespace webdb {

class WebDatabaseServer : private ShedSink {
 public:
  // `database` and `scheduler` must outlive the server; not owned. The
  // server owns its simulator and sizes its CPU pool from
  // scheduler->num_cpus().
  WebDatabaseServer(Database* database, CpuSetScheduler* scheduler,
                    ServerConfig config = ServerConfig());

  // Shares an external simulator (several servers on one clock — the
  // replicated-cluster substrate). `simulator` must outlive the server.
  WebDatabaseServer(Simulator* simulator, Database* database,
                    CpuSetScheduler* scheduler,
                    ServerConfig config = ServerConfig());

  // Single-CPU compatibility: wraps `scheduler` in an internally owned
  // SingleCpuAdapter (num_cpus = 1). Behaviour is bit-identical to the
  // pre-CPU-set server.
  WebDatabaseServer(Database* database, Scheduler* scheduler,
                    ServerConfig config = ServerConfig());
  WebDatabaseServer(Simulator* simulator, Database* database,
                    Scheduler* scheduler, ServerConfig config = ServerConfig());

  WebDatabaseServer(const WebDatabaseServer&) = delete;
  WebDatabaseServer& operator=(const WebDatabaseServer&) = delete;

  // --- submission (at the simulator's current time) ------------------------
  // Returns the created query; the pointer stays valid for the server's
  // lifetime. `items` must be valid ids of the database. `tenant` selects
  // the tenant tier (only meaningful when ServerConfig::tenants is set).
  Query* SubmitQuery(QueryType type, std::vector<ItemId> items,
                     QualityContract qc, SimDuration exec_time,
                     TenantId tenant = 0);

  Update* SubmitUpdate(ItemId item, double value, SimDuration exec_time);

  // Pre-sizes the transaction pools and the event arena for a run of known
  // shape (e.g. a generated trace), so the submission/commit hot path never
  // grows storage mid-flight. Purely a performance hint.
  void ReserveCapacity(size_t num_queries, size_t num_updates);

  // --- simulation control ---------------------------------------------------
  Simulator& sim() { return *sim_; }
  SimTime Now() const { return sim_->Now(); }
  // Runs until every pending event (arrivals already submitted, executions,
  // deadlines) has fired.
  void Run() { sim_->Run(); }
  void RunUntil(SimTime t) { sim_->RunUntil(t); }

  // --- results ---------------------------------------------------------------
  const ProfitLedger& ledger() const { return ledger_; }
  const ServerMetrics& metrics() const { return metrics_; }
  // The registry backing the metrics, mutable so callers can pull a final
  // Scheduler::ExportStats into it and snapshot (see exp/experiment.cc).
  MetricRegistry& metric_registry() { return metrics_.registry(); }
  const Database& database() const { return *db_; }
  const CpuSetScheduler& scheduler() const { return *sched_; }
  const ServerConfig& config() const { return config_; }
  const StableVector<Query>& queries() const { return queries_; }
  const StableVector<Update>& updates() const { return updates_; }
  int NumCpus() const { return cpus_.num_cpus(); }
  // Mean utilization across the CPU set: total busy time / (now * CPUs).
  double CpuUtilization() const;
  // Total CPU busy time accumulated across the pool — the denominator of
  // profit-per-CPU-second (the fusion headline metric).
  SimDuration TotalBusyTime() const { return cpus_.TotalBusyTime(); }
  // Live fusion groups, keyed by leader id (empty once drained; the
  // fusion tests and the auditor death-tests inspect it).
  const std::map<TxnId, std::vector<TxnId>>& fusion_groups() const {
    return fusion_groups_;
  }
  // Fused-result cache (DESIGN.md §14); empty unless
  // FusionConfig::result_cache is on. The cache tests inspect it.
  const FusionResultCache& result_cache() const { return result_cache_; }

  // True when no transaction is in flight and no resource is held: every
  // CPU idle, scheduler queues empty, no locks, no pending register
  // entries, no active updates. Holds after Run() drains; the stress tests
  // assert it.
  bool IsQuiescent() const;

  // True while a transaction occupies any CPU.
  bool IsCpuBusy() const { return cpus_.AnyBusy(); }

  // --- invariant auditing (DESIGN.md §8) -----------------------------------
  // Deep whole-server audit, O(submitted transactions + locks). Checks, and
  // aborts on violation of:
  //   * dual-queue conservation — every admitted transaction is in exactly
  //     one lifecycle state, the per-state populations match the scheduler
  //     queue depths / CPU occupancy, and the lifecycle counters add up to
  //     the submissions;
  //   * update-register newest-wins — each pending register entry points at
  //     a queued update carrying its item's newest arrival sequence;
  //   * lock-table consistency (LockManager::AuditConsistency), and that
  //     every lock holder is still queued (preempted) or running;
  //   * profit-ledger conservation — the ledger's per-query counters and
  //     series totals agree with the obs::MetricRegistry lifecycle counters.
  // Compiled in every build and callable from tests; runs automatically
  // (strided on scheduling events, and at every submission boundary) when
  // configured with -DWEBDB_AUDIT=ON.
  void AuditInvariants() const;

  // FNV-1a hash over the server's end state: every transaction outcome
  // (state, commit time, restarts), every data item's sequence numbers and
  // value, the lifecycle counters and the simulation clock. Two runs agree
  // on this hash iff they took the same schedule — the regression suite
  // pins it (tests/regression_test.cc) and the benches expose it through
  // --audit-hash. Only integer state and moved (never computed) doubles are
  // mixed, so the hash is stable across compilers and libm versions.
  uint64_t EndStateHash() const;

 private:
  Transaction* Lookup(TxnId id);
  Query& QueryFor(TxnId id);
  Update& UpdateFor(TxnId id);

  // Re-evaluates preemption / dispatch after any state change: per-CPU
  // preemption checks, then idle-CPU fill, both in ascending CPU order.
  void OnSchedulingEvent();
  // Dispatches `txn` onto CPU `cpu`, resolving 2PL-HP conflicts first.
  void Dispatch(CpuId cpu, Transaction* txn);
  void ResolveConflicts(Transaction* txn, LockMode mode,
                        const std::vector<ItemId>& items);
  // True when dispatching `txn` would conflict with a transaction running
  // on another CPU right now (multi-core only; an idle single-CPU server
  // has no running holders).
  bool HasRunningConflict(Transaction* txn);
  // 2PL-HP loser path: releases locks, resets progress, re-queues. The
  // loser may be preempted (queued) or running on another CPU (aborted).
  void Restart(Transaction* txn);
  void PreemptRunning(CpuId cpu);
  void OnTxnComplete(CpuId cpu, TxnId id);
  void CommitQuery(Query& query);
  void ApplyUpdate(Update& update);
  // --- shared execution (DESIGN.md §13); all no-ops when fusion is off ----
  // Indexes `query` as a fusion candidate if eligible: queued, no partial
  // progress, no locks, item set within bounds and on one fusion domain.
  void MaybeIndexForFusion(Query& query);
  void UnindexForFusion(Query& query);
  // Attaches queued look-alikes to `leader` at dispatch: exact item-set
  // matches first, then covered single-item lookups. Members leave their
  // scheduler queues (state -> kFused) and settle when the leader commits.
  void AttachFusionMembers(Query& leader);
  // Leader committed: fan the scan result out and commit every member at
  // the same instant, each settling its own QC / tenant / admission books.
  void SettleFusionGroup(Query& leader);
  // Leader left the running/queued path without committing (2PL-HP
  // restart, lifetime drop, shed): members go back to their queues — or
  // straight to kDropped when their own lifetime already expired.
  void DissolveFusionGroup(Query& leader);
  // Fusion (or, when cross_shard_rendezvous is on and the per-shard domain
  // rejects the query, rendezvous) domain — the single gate every fusion
  // and cache path uses. Negative means "never share". Const but able to
  // intern rendezvous domains through sched_; the auditor only ever asks
  // about queries whose domains were interned at index/attach time.
  int EffectiveFusionDomain(const Query& query) const;
  // Answers `query` from the fused-result cache when a live compatible
  // entry exists: commits it immediately at zero scan cost, with staleness
  // charged from the cached commit time. Returns true on a hit (the query
  // never reaches admission or a scheduler queue).
  bool TryServeFromCache(Query& query);
  // Retains `query`'s committed scan result in the cache when cacheable
  // (fusion + cache on, in-bounds item set, shareable domain).
  void MaybeFillResultCache(Query& query);
  // Drops a superseded update (pending or preempted/running-active).
  void InvalidateUpdate(Update& update);
  void OnLifetimeDeadline(TxnId id);
  // ShedSink: evicts the queued query `id` on behalf of the admission
  // controller (state -> kShed); returns false when no longer queued.
  bool Shed(TxnId id) override;
  // Keeps one wake-up event per CPU armed for that CPU's next decision
  // time (QUTS atom boundaries are per-shard, hence per-CPU).
  void ScheduleWake();

  Database* db_;
  CpuSetScheduler* sched_;
  ServerConfig config_;

  std::unique_ptr<Simulator> owned_sim_;  // null when sharing
  Simulator* sim_;
  // Owned adapter when constructed with a legacy single-CPU Scheduler.
  std::unique_ptr<SingleCpuAdapter> owned_adapter_;
  ProcessorPool cpus_;
  LockManager locks_;
  UpdateRegister register_;
  ProfitLedger ledger_;
  ServerMetrics metrics_;

  // Owned transaction storage; chunked pool with stable addresses
  // (util/stable_vector.h), reservable via ReserveCapacity.
  StableVector<Query> queries_;
  StableVector<Update> updates_;

  // Updates that were dispatched at least once and are still alive (running
  // or preempted); at most one per item. Needed for write-write drops of
  // already-dispatched updates.
  std::unordered_map<ItemId, Update*> active_updates_;

  // Shared execution: candidate index over queued fusible queries, and the
  // live groups keyed by leader id (std::map: the auditor walks it).
  FusionIndex fusion_index_;
  std::map<TxnId, std::vector<TxnId>> fusion_groups_;
  // Short-TTL cache of committed scan results (DESIGN.md §14). Entries do
  // not hold resources, so a non-empty cache never blocks quiescence.
  FusionResultCache result_cache_;

  // One armed wake-up event per CPU (index == CpuId), rearmed after every
  // scheduling event from the scheduler's per-CPU NextDecisionTime.
  std::vector<EventId> wake_events_;
  std::vector<SimTime> wake_times_;
  bool in_scheduling_event_ = false;
  bool sampling_active_ = false;
  bool snapshots_active_ = false;
  // Strides the O(n) AuditInvariants pass across scheduling events so audit
  // builds stay usable on full traces. Mutated only under WEBDB_AUDIT.
  mutable uint64_t audit_tick_ = 0;

  void MaybeStartSampling();
  void SampleQueues();
  void MaybeStartSnapshots();
  void SnapshotMetrics();

  // Lifecycle tracing hook; a single branch when tracing is off.
  void Trace(const Transaction& txn, TraceEventType type,
             double detail = 0.0) {
    if (config_.tracer != nullptr) {
      config_.tracer->Record(sim_->Now(), txn.id,
                             txn.kind == TxnKind::kUpdate, type, detail);
    }
  }
};

}  // namespace webdb

#endif  // WEBDB_SERVER_WEB_DATABASE_SERVER_H_
