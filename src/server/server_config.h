// Server-level model parameters (everything the paper leaves to the system
// rather than to the scheduler). Defaults follow the paper where specified
// and DESIGN.md section 2 where not.

#ifndef WEBDB_SERVER_SERVER_CONFIG_H_
#define WEBDB_SERVER_SERVER_CONFIG_H_

#include "db/staleness.h"
#include "obs/tracer.h"
#include "sched/admission.h"
#include "server/fusion.h"
#include "util/time.h"

namespace webdb {

struct ServerConfig {
  // Optional admission controller consulted for every incoming query.
  // Not owned; must outlive the server. nullptr admits everything.
  AdmissionController* admission = nullptr;

  // Optional tenant tiers. When set, the server keeps per-tenant lifecycle
  // counters and profit ("server.tenant<k>.*"), audited against the
  // per-tenant conservation law; when null, runs stay tenant-unaware and
  // registry contents are unchanged. Not owned; must outlive the server.
  const TenantSet* tenants = nullptr;

  // Optional lifecycle tracer fed one TraceEvent per transaction
  // transition (submit / enqueue / dispatch / preempt / restart / commit /
  // drop / invalidate / reject). Not owned; must outlive the server.
  // nullptr (the default) keeps every hook a single branch.
  Tracer* tracer = nullptr;

  StalenessMetric staleness_metric = StalenessMetric::kUnappliedUpdates;
  StalenessCombiner staleness_combiner = StalenessCombiner::kMax;

  // QoS-Independent QCs require a maximum query lifetime; we derive it as
  // max(min_lifetime, lifetime_factor * rt_max). The paper does not give a
  // number, but its UH results (near-maximal QoD despite second-scale
  // response times) imply a lifetime far above rt_max: a query that returns
  // late still earns QoD profit for fresh data. 30 s matches that regime
  // while still bounding queue residence. A non-positive factor disables
  // lifetime drops entirely (used for the naive Figure 1 policies, which
  // predate QCs).
  double lifetime_factor = 10.0;
  SimDuration min_lifetime = Seconds(30);

  // Shared execution (DESIGN.md §13): fuse queued look-alike queries onto
  // the query being dispatched and settle them all when its scan commits.
  // Off by default — fusion-off schedules are bit-identical to the
  // pre-fusion server.
  FusionConfig fusion;

  // 2PL-HP concurrency control. Disabling it (ablation) dispatches blindly:
  // data conflicts are ignored, queries may read mid-update values.
  bool enable_2plhp = true;

  // When positive, the server samples the scheduler's queue depths at this
  // period while work is in flight (ServerMetrics::queue_samples).
  SimDuration queue_sample_period = 0;

  // When positive, the server records a full metric-registry snapshot
  // (server.* / txn.* counters plus the scheduler's ExportStats) at this
  // period while work is in flight (MetricRegistry::series). This is the
  // time-series view of e.g. QUTS's rho against the queue depths.
  SimDuration metric_snapshot_period = 0;

  // Fixed CPU cost charged every time a transaction is (re)dispatched onto
  // the CPU — context switch, cache refill, lock table work. Zero keeps the
  // scheduling model pure (unit tests assert exact timings); the QC
  // experiment harness uses a small value so that very small atom times pay
  // a real switching price, as the paper observes in Figure 10b.
  SimDuration dispatch_overhead = 0;
};

}  // namespace webdb

#endif  // WEBDB_SERVER_SERVER_CONFIG_H_
