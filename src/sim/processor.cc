#include "sim/processor.h"

#include <utility>

#include "util/logging.h"

namespace webdb {

Processor::Processor(Simulator* sim) : sim_(sim) { WEBDB_CHECK(sim != nullptr); }

void Processor::Start(uint64_t task_id, SimDuration remaining,
                      EventCallback on_complete) {
  WEBDB_CHECK_MSG(!busy_, "Start on a busy processor");
  WEBDB_CHECK(remaining > 0);
  busy_ = true;
  task_ = task_id;
  start_time_ = sim_->Now();
  budget_ = remaining;
  on_complete_ = std::move(on_complete);
  completion_event_ = sim_->ScheduleAfter(remaining, [this] {
    total_busy_ += budget_;
    busy_ = false;
    completion_event_ = 0;
    EventCallback cb = std::move(on_complete_);
    on_complete_ = EventCallback();
    cb();
  });
}

SimDuration Processor::Preempt() {
  WEBDB_CHECK_MSG(busy_, "Preempt on an idle processor");
  const SimDuration remaining = Remaining();
  Stop();
  return remaining;
}

void Processor::Abort() {
  WEBDB_CHECK_MSG(busy_, "Abort on an idle processor");
  Stop();
}

void Processor::Stop() {
  total_busy_ += Elapsed();
  sim_->Cancel(completion_event_);
  completion_event_ = 0;
  busy_ = false;
  on_complete_ = EventCallback();
}

uint64_t Processor::current_task() const {
  WEBDB_CHECK(busy_);
  return task_;
}

SimDuration Processor::Elapsed() const {
  WEBDB_CHECK(busy_);
  return sim_->Now() - start_time_;
}

SimDuration Processor::Remaining() const {
  WEBDB_CHECK(busy_);
  return budget_ - Elapsed();
}

SimDuration Processor::TotalBusyTime() const { return total_busy_; }

}  // namespace webdb
