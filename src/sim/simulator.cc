#include "sim/simulator.h"

#include <string>
#include <utility>

#include "audit/invariant_auditor.h"
#include "util/logging.h"

namespace webdb {

EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  // Hot path (every arrival, completion and wake-up): debug tier.
  WEBDB_DCHECK_MSG(t >= now_, "cannot schedule into the past");
  const uint64_t seq = next_seq_++;
  const EventId id = seq;  // seq doubles as the id; both are unique
  heap_.push(HeapEntry{t, seq, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  WEBDB_DCHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool Simulator::IsPending(EventId id) const {
  return callbacks_.count(id) > 0;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // cancelled
    if constexpr (audit::kEnabled) {
      // Event-queue time monotonicity: the heap order (time, seq) must
      // never hand us an event behind the clock — if it does, every
      // response time and staleness sample afterwards is garbage.
      WEBDB_AUDIT_THAT(audit::Invariant::kSimTimeMonotonic, top.time >= now_,
                       "event at t=" + std::to_string(top.time) +
                           " popped behind clock t=" + std::to_string(now_));
      WEBDB_AUDIT_THAT(audit::Invariant::kSimTimeMonotonic,
                       callbacks_.size() <= next_seq_,
                       "more pending callbacks than issued ids");
    }
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  while (!heap_.empty()) {
    // Skip cancelled heads without advancing time.
    if (callbacks_.find(heap_.top().id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (heap_.top().time > t) break;
    Step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace webdb
