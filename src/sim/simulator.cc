#include "sim/simulator.h"

#include <string>
#include <utility>

#include "audit/invariant_auditor.h"
#include "util/logging.h"

namespace webdb {

EventId Simulator::ScheduleAt(SimTime t, EventCallback fn) {
  // Hot path (every arrival, completion and wake-up): debug tier.
  WEBDB_DCHECK_MSG(t >= now_, "cannot schedule into the past");
  WEBDB_DCHECK_MSG(static_cast<bool>(fn), "cannot schedule an empty callback");
  const uint64_t seq = next_seq_++;

  uint32_t slot;
  if (free_head_ != kNoFreeSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoFreeSlot;
  } else {
    WEBDB_CHECK_MSG(slots_.size() < kNoFreeSlot, "event arena exhausted");
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    stats_.slots_allocated = slots_.size();
  }

  Slot& s = slots_[slot];
  if (fn.on_heap()) ++stats_.callback_heap_spills;
  s.fn = std::move(fn);
  const uint32_t gen = s.gen;

  heap_.push_back(HeapEntry{t, seq, slot});
  SiftUp(heap_.size() - 1);
  ++stats_.scheduled;
  return MakeId(slot, gen);
}

EventId Simulator::ScheduleAfter(SimDuration delay, EventCallback fn) {
  WEBDB_DCHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  const uint32_t slot = SlotOf(id);
  if (slot >= slots_.size() || slots_[slot].gen != GenOf(id)) return false;
  // Eager removal: the slot knows where its heap entry sits, so the entry
  // comes out now instead of lingering as a tombstone until its (possibly
  // far-future) timestamp is reached.
  RemoveAt(slots_[slot].heap_pos);
  ReleaseSlot(slot);
  ++stats_.cancelled;
  return true;
}

bool Simulator::IsPending(EventId id) const {
  const uint32_t slot = SlotOf(id);
  return slot < slots_.size() && slots_[slot].gen == GenOf(id);
}

bool Simulator::Step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  if constexpr (audit::kEnabled) {
    // Event-queue time monotonicity: the heap order (time, seq) must
    // never hand us an event behind the clock — if it does, every
    // response time and staleness sample afterwards is garbage.
    WEBDB_AUDIT_THAT(audit::Invariant::kSimTimeMonotonic, top.time >= now_,
                     "event at t=" + std::to_string(top.time) +
                         " popped behind clock t=" + std::to_string(now_));
    // Arena bookkeeping: every heap entry's slot must point back at it, and
    // the heap can never hold more events than the arena has slots.
    WEBDB_AUDIT_THAT(audit::Invariant::kEventArenaConsistent,
                     top.slot < slots_.size() &&
                         slots_[top.slot].heap_pos == 0,
                     "heap root's slot does not point back at the root");
    WEBDB_AUDIT_THAT(audit::Invariant::kEventArenaConsistent,
                     heap_.size() <= slots_.size(),
                     "more pending events than arena slots");
  }
  RemoveAt(0);
  // Move the callback out and release the slot BEFORE invoking: the
  // callback may schedule new events, growing slots_ and invalidating
  // references — and its own slot must already be reusable.
  EventCallback fn = std::move(slots_[top.slot].fn);
  ReleaseSlot(top.slot);
  now_ = top.time;
  ++executed_;
  fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  while (!heap_.empty() && heap_.front().time <= t) {
    Step();
  }
  if (now_ < t) now_ = t;
}

void Simulator::Reserve(size_t pending_events) {
  heap_.reserve(pending_events);
  if (slots_.size() >= pending_events) return;
  // Grow the arena up front and chain the new slots onto the free list in
  // reverse, so the list pops them in ascending index order — the same order
  // on-demand growth would have used. Reserve is therefore invisible to
  // event ids and to anything downstream of them.
  const uint32_t old_size = static_cast<uint32_t>(slots_.size());
  slots_.resize(pending_events);
  stats_.slots_allocated = slots_.size();
  for (uint32_t i = static_cast<uint32_t>(pending_events); i > old_size; --i) {
    slots_[i - 1].next_free = free_head_;
    free_head_ = i - 1;
  }
}

void Simulator::RemoveAt(size_t pos) {
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the last entry
  heap_[pos] = moved;
  slots_[moved.slot].heap_pos = static_cast<uint32_t>(pos);
  if (pos > 0 && moved.Before(heap_[(pos - 1) / 2])) {
    SiftUp(pos);
  } else {
    SiftDown(pos);
  }
}

void Simulator::SiftUp(size_t i) {
  const HeapEntry item = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!item.Before(heap_[parent])) break;
    heap_[i] = heap_[parent];
    slots_[heap_[i].slot].heap_pos = static_cast<uint32_t>(i);
    i = parent;
  }
  heap_[i] = item;
  slots_[item.slot].heap_pos = static_cast<uint32_t>(i);
}

void Simulator::SiftDown(size_t i) {
  const size_t n = heap_.size();
  const HeapEntry item = heap_[i];
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_[child + 1].Before(heap_[child])) ++child;
    if (!heap_[child].Before(item)) break;
    heap_[i] = heap_[child];
    slots_[heap_[i].slot].heap_pos = static_cast<uint32_t>(i);
    i = child;
  }
  heap_[i] = item;
  slots_[item.slot].heap_pos = static_cast<uint32_t>(i);
}

void Simulator::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = EventCallback();
  // Bumping the generation invalidates every outstanding id for this slot.
  // On the (astronomically unlikely) wrap, skip 0 so ids are never 0.
  if (++s.gen == 0) s.gen = 1;
  s.next_free = free_head_;
  free_head_ = slot;
}

}  // namespace webdb
