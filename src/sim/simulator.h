// Discrete-event simulation core.
//
// The simulator owns a priority queue of timestamped callbacks. Events with
// equal timestamps fire in scheduling order (stable (time, seq) ordering), so
// runs are fully deterministic. Cancellation is lazy: a cancelled event stays
// in the heap but its callback is dropped.

#ifndef WEBDB_SIM_SIMULATOR_H_
#define WEBDB_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace webdb {

// Handle for cancelling a scheduled event. 0 is never a valid id.
using EventId = uint64_t;

class Simulator {
 public:
  Simulator() = default;

  // Non-copyable: event callbacks capture `this`-adjacent state.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `t` (must be >= Now()).
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  // Schedules `fn` to run `delay` (>= 0) after Now().
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancels a pending event. Returns false if it already fired or was
  // cancelled before.
  bool Cancel(EventId id);

  // True if `id` is still pending.
  bool IsPending(EventId id) const;

  // Runs the next pending event, advancing the clock. Returns false when the
  // queue is empty.
  bool Step();

  // Runs events until the queue drains.
  void Run();

  // Runs events with timestamp <= `t`, then advances the clock to `t` (if it
  // is not already past).
  void RunUntil(SimTime t);

  size_t NumPending() const { return callbacks_.size(); }
  uint64_t NumExecuted() const { return executed_; }

 private:
  struct HeapEntry {
    SimTime time;
    uint64_t seq;
    EventId id;
    bool operator>(const HeapEntry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace webdb

#endif  // WEBDB_SIM_SIMULATOR_H_
