// Discrete-event simulation core.
//
// The simulator owns a priority queue of timestamped callbacks. Events with
// equal timestamps fire in scheduling order (stable (time, seq) ordering), so
// runs are fully deterministic.
//
// Hot-path layout (DESIGN.md §9): callbacks live in a slot arena — a pooled
// vector of fixed slots recycled through a free list — instead of a
// node-allocating map, and each slot stores its closure in an EventCallback
// small buffer. Scheduling, firing and cancelling an event therefore touch
// no allocator once the pool and the heap vector have reached their
// high-water marks; the common server closures (processor completion,
// arrival pump, decision wake-up) never touch the heap at all. EventIds
// carry a per-slot generation so a recycled slot can never be cancelled or
// queried through a stale handle.
//
// Each slot also records its event's position in the heap (the sift
// primitives keep it current), so Cancel removes the heap entry eagerly in
// O(log n) instead of leaving a tombstone. The heap always holds exactly
// the pending events: a workload that schedules far-future deadlines and
// cancels nearly all of them (the server's lifetime-deadline pattern) keeps
// a heap of live size, not live size plus a long tail of dead entries.

#ifndef WEBDB_SIM_SIMULATOR_H_
#define WEBDB_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_callback.h"
#include "util/time.h"

namespace webdb {

// Handle for cancelling a scheduled event: (generation << 32) | slot index.
// Generations start at 1, so 0 is never a valid id.
using EventId = uint64_t;

class Simulator {
 public:
  Simulator() = default;

  // Non-copyable: event callbacks capture `this`-adjacent state.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `t` (must be >= Now()).
  EventId ScheduleAt(SimTime t, EventCallback fn);

  // Schedules `fn` to run `delay` (>= 0) after Now().
  EventId ScheduleAfter(SimDuration delay, EventCallback fn);

  // Cancels a pending event. Returns false if it already fired or was
  // cancelled before.
  bool Cancel(EventId id);

  // True if `id` is still pending.
  bool IsPending(EventId id) const;

  // Runs the next pending event, advancing the clock. Returns false when the
  // queue is empty.
  bool Step();

  // Runs events until the queue drains.
  void Run();

  // Runs events with timestamp <= `t`, then advances the clock to `t` (if it
  // is not already past).
  void RunUntil(SimTime t);

  // Pre-sizes the heap and the slot arena for `pending_events` concurrently
  // pending events, so a run of known shape never grows them mid-flight.
  void Reserve(size_t pending_events);

  size_t NumPending() const { return heap_.size(); }
  uint64_t NumExecuted() const { return executed_; }

  // Allocation / pool instrumentation for the hot-path benchmarks.
  struct Stats {
    uint64_t scheduled = 0;       // ScheduleAt calls
    uint64_t cancelled = 0;       // successful Cancels
    // Closures too large for the EventCallback inline buffer (each one is a
    // heap allocation; 0 on the server hot path).
    uint64_t callback_heap_spills = 0;
    size_t slots_allocated = 0;   // slot-arena high-water mark
  };
  const Stats& stats() const { return stats_; }

 private:
  static constexpr uint32_t kNoFreeSlot = UINT32_MAX;

  struct Slot {
    EventCallback fn;
    uint32_t gen = 1;                 // bumped when the slot is released
    uint32_t next_free = kNoFreeSlot; // free-list link while unarmed
    uint32_t heap_pos = 0;            // index of this slot's heap entry
  };

  struct HeapEntry {
    SimTime time;
    uint64_t seq;
    uint32_t slot;

    // Strict total order on (time, seq): seq is unique, so the pop sequence
    // is independent of the heap's internal layout — any correct heap
    // yields the same deterministic schedule.
    bool Before(const HeapEntry& o) const {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }
  static uint32_t SlotOf(EventId id) { return static_cast<uint32_t>(id); }
  static uint32_t GenOf(EventId id) { return static_cast<uint32_t>(id >> 32); }

  // Removes heap_[pos], restoring the heap property. Used by both Step
  // (pos 0) and Cancel (arbitrary pos via the slot's heap_pos).
  void RemoveAt(size_t pos);
  // Sift primitives of the binary min-heap. Both keep every touched slot's
  // heap_pos current, which is what makes eager O(log n) cancellation
  // possible. Pop order is identical to any other correct heap because
  // Before() is a total order.
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  // Returns `slot` to the free list and invalidates outstanding ids.
  void ReleaseSlot(uint32_t slot);

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  std::vector<HeapEntry> heap_; // binary min-heap on (time, seq); all live
  std::vector<Slot> slots_;     // arena; index = low 32 bits of EventId
  uint32_t free_head_ = kNoFreeSlot;
  Stats stats_;
};

}  // namespace webdb

#endif  // WEBDB_SIM_SIMULATOR_H_
