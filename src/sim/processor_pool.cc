#include "sim/processor_pool.h"

#include "util/logging.h"

namespace webdb {

ProcessorPool::ProcessorPool(Simulator* sim, int num_cpus) {
  WEBDB_CHECK(sim != nullptr);
  WEBDB_CHECK_MSG(num_cpus >= 1, "a server needs at least one CPU");
  for (int c = 0; c < num_cpus; ++c) cpus_.emplace_back(sim);
}

Processor& ProcessorPool::cpu(int32_t c) {
  WEBDB_DCHECK(c >= 0 && c < num_cpus());
  return cpus_[static_cast<size_t>(c)];
}

const Processor& ProcessorPool::cpu(int32_t c) const {
  WEBDB_DCHECK(c >= 0 && c < num_cpus());
  return cpus_[static_cast<size_t>(c)];
}

int ProcessorPool::NumBusy() const {
  int busy = 0;
  for (const Processor& cpu : cpus_) busy += cpu.busy() ? 1 : 0;
  return busy;
}

SimDuration ProcessorPool::TotalBusyTime() const {
  SimDuration total = 0;
  for (const Processor& cpu : cpus_) total += cpu.TotalBusyTime();
  return total;
}

}  // namespace webdb
