// Preemptible single-CPU processor model.
//
// The processor runs one task at a time. A task is identified by an opaque
// id and has a remaining service time; preemption returns the remaining time
// so a preempt-resume scheduler can re-dispatch the task later without losing
// progress, while a 2PL-HP restart simply discards it.

#ifndef WEBDB_SIM_PROCESSOR_H_
#define WEBDB_SIM_PROCESSOR_H_

#include <cstdint>

#include "sim/event_callback.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace webdb {

class Processor {
 public:
  explicit Processor(Simulator* sim);

  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  // Begins executing `task_id` for `remaining` (> 0) microseconds. The
  // processor must be idle. `on_complete` fires when the service time
  // elapses uninterrupted; the processor is idle again by the time it runs
  // (the owner captures whatever identifies the task — current_task() is
  // gone by then). EventCallback keeps the dispatch hot path
  // allocation-free: the server's completion closures fit the 48-byte
  // inline buffer that std::function would not guarantee.
  void Start(uint64_t task_id, SimDuration remaining,
             EventCallback on_complete);

  // Stops the current task and returns its remaining service time (>= 0).
  // The processor must be busy.
  SimDuration Preempt();

  // Stops and discards the current task (2PL-HP restart / abort path).
  // The processor must be busy.
  void Abort();

  bool busy() const { return busy_; }
  // Id of the task currently executing. Requires busy().
  uint64_t current_task() const;
  // Time already spent on the current task in this dispatch. Requires busy().
  SimDuration Elapsed() const;
  // Remaining service time of the current task. Requires busy().
  SimDuration Remaining() const;

  // Cumulative busy time, for utilization accounting.
  SimDuration TotalBusyTime() const;

 private:
  void Stop();

  Simulator* sim_;
  bool busy_ = false;
  uint64_t task_ = 0;
  SimTime start_time_ = 0;
  SimDuration budget_ = 0;
  EventId completion_event_ = 0;
  EventCallback on_complete_;
  SimDuration total_busy_ = 0;
};

}  // namespace webdb

#endif  // WEBDB_SIM_PROCESSOR_H_
