// Small-buffer callback for simulator events.
//
// The discrete-event hot path schedules millions of tiny closures — processor
// completions, arrival pumps, decision wake-ups — that capture one or two
// pointers. std::function would be workable for those (libstdc++ inlines
// 16-byte trivially-copyable captures), but it gives no control over the
// buffer size and no visibility into when it silently falls back to the
// heap. EventCallback is a move-only type-erased void() callable with a
// 48-byte inline buffer: every common event closure is stored in place, and
// larger captures (test lambdas hauling vectors around) degrade to a single
// heap cell that the owner can observe via on_heap() and count.
//
// Invariants:
//   * move-only; a moved-from callback is empty (operator bool() == false)
//   * invoking an empty callback is undefined (the simulator never does)
//   * relocation is noexcept — callables with throwing move constructors are
//     stored on the heap so the slot arena can grow by plain moves

#ifndef WEBDB_SIM_EVENT_CALLBACK_H_
#define WEBDB_SIM_EVENT_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace webdb {

class EventCallback {
 public:
  // Large enough for a capture of six pointers; small enough that a pooled
  // event slot stays within one cache line pair.
  static constexpr size_t kInlineSize = 48;

  EventCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (FitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  // Requires *this to be non-empty.
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // True when the callable fell back to a heap cell (capture larger than
  // kInlineSize or with a throwing move). The simulator counts these.
  bool on_heap() const noexcept { return ops_ != nullptr && ops_->heap; }

 private:
  template <typename Fn>
  static constexpr bool FitsInline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs `to` from `from` and destroys `from`.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* storage) { (*static_cast<Fn*>(storage))(); }
    static void Relocate(void* from, void* to) noexcept {
      ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
      static_cast<Fn*>(from)->~Fn();
    }
    static void Destroy(void* storage) noexcept {
      static_cast<Fn*>(storage)->~Fn();
    }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy, false};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Cell(void* storage) {
      return *std::launder(static_cast<Fn**>(storage));
    }
    static void Invoke(void* storage) { (*Cell(storage))(); }
    static void Relocate(void* from, void* to) noexcept {
      ::new (to) Fn*(Cell(from));
    }
    static void Destroy(void* storage) noexcept { delete Cell(storage); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy, true};
  };

  void MoveFrom(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace webdb

#endif  // WEBDB_SIM_EVENT_CALLBACK_H_
