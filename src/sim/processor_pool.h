// A set of independent preemptible CPUs on one simulator clock.
//
// Each CPU is a plain Processor (one task at a time, preempt/abort with
// remaining-time accounting); the pool adds the CPU-set view the multi-core
// server drives: indexed access, busy census, and aggregate utilization.
// There is no cross-CPU coupling here — scheduling policy (which CPU runs
// what, work stealing, preemption) lives entirely in the CpuSetScheduler
// and the server loop, both of which iterate CPUs in fixed ascending order
// so multi-core schedules stay seeded-deterministic.

#ifndef WEBDB_SIM_PROCESSOR_POOL_H_
#define WEBDB_SIM_PROCESSOR_POOL_H_

#include <cstdint>
#include <deque>

#include "sim/processor.h"
#include "util/time.h"

namespace webdb {

class ProcessorPool {
 public:
  // `num_cpus` >= 1; `sim` must outlive the pool.
  ProcessorPool(Simulator* sim, int num_cpus);

  ProcessorPool(const ProcessorPool&) = delete;
  ProcessorPool& operator=(const ProcessorPool&) = delete;

  int num_cpus() const { return static_cast<int>(cpus_.size()); }

  Processor& cpu(int32_t c);
  const Processor& cpu(int32_t c) const;

  // Number of CPUs currently executing a task. O(num_cpus).
  int NumBusy() const;
  bool AnyBusy() const { return NumBusy() > 0; }

  // Cumulative busy time summed over all CPUs; divide by
  // (now * num_cpus) for mean utilization.
  SimDuration TotalBusyTime() const;

 private:
  // deque: Processor is pinned (non-copyable, non-movable — its completion
  // closures capture `this`) and a deque never relocates elements.
  std::deque<Processor> cpus_;
};

}  // namespace webdb

#endif  // WEBDB_SIM_PROCESSOR_POOL_H_
